package securitykg

// Replication benchmarks, run by `make bench` and recorded in
// BENCH_cypher.json: follower catch-up throughput (how many WAL
// records per second a fresh replica folds while tailing a leader over
// HTTP) and steady-state lag (how far behind a connected replica sits
// the moment the leader finishes a burst of writes).

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"securitykg/internal/replication"
	"securitykg/internal/storage"
)

// benchLeader opens a durable leader with n logged mutations and
// serves its replication endpoints.
func benchLeader(b *testing.B, n int) (*storage.DB, *httptest.Server) {
	b.Helper()
	db, err := storage.Open(b.TempDir(), storage.Options{
		Sync: storage.SyncNever, CompactBytes: -1, TailRecords: n + 1024, TailBytes: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	st := db.Store()
	seed, _ := st.MergeNode("Seed", "seed", nil)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			st.MergeNode("Malware", fmt.Sprintf("m-%d", i), map[string]string{"seen": "1"})
		} else {
			id, _ := st.MergeNode("IP", fmt.Sprintf("10.0.%d.%d", (i/250)%250, i%250), nil)
			st.AddEdge(seed, "CONNECT", id, nil)
		}
	}
	mux := http.NewServeMux()
	(&replication.Leader{DB: db}).Register(mux)
	srv := httptest.NewServer(mux)
	b.Cleanup(srv.Close)
	b.Cleanup(func() { db.Close() })
	return db, srv
}

// BenchmarkReplicationCatchUp measures a cold follower consuming a 20k
// record WAL tail over the stream — snapshotless catch-up, the path a
// restarted replica takes. records/s is the headline metric.
func BenchmarkReplicationCatchUp(b *testing.B) {
	const records = 20_000
	ldb, srv := benchLeader(b, records)
	target := ldb.CommittedSeq()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fdb, err := storage.Open(b.TempDir(), storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		repl := replication.NewReplicator(fdb, srv.URL)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		b.StartTimer()
		start := time.Now()
		go func() { done <- repl.Run(ctx) }()
		if err := repl.WaitApplied(ctx, target); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		b.StopTimer()
		b.ReportMetric(float64(target)/elapsed.Seconds(), "records/s")
		cancel()
		<-done
		fdb.Close()
		b.StartTimer()
	}
}

// BenchmarkReplicationSteadyLag measures how far behind a connected
// replica sits under write load: the leader applies a 2k-record burst,
// and the moment the burst ends the replica's lag (committed minus
// applied) is sampled, then drained to zero. lag-records is the
// snapshot at burst end; catchup-ms is how long the drain took.
func BenchmarkReplicationSteadyLag(b *testing.B) {
	ldb, srv := benchLeader(b, 1000)
	fdb, err := storage.Open(b.TempDir(), storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	repl := replication.NewReplicator(fdb, srv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- repl.Run(ctx) }()
	defer func() { cancel(); <-done; fdb.Close() }()
	if err := repl.WaitApplied(ctx, ldb.CommittedSeq()); err != nil {
		b.Fatal(err)
	}
	st := ldb.Store()
	var lagSum, rounds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 2000; j++ {
			st.MergeNode("Malware", fmt.Sprintf("burst-%d-%d", i, j), nil)
		}
		burstEnd := ldb.CommittedSeq()
		lagSum += float64(burstEnd - repl.AppliedSeq())
		rounds++
		start := time.Now()
		if err := repl.WaitApplied(ctx, burstEnd); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(time.Since(start).Milliseconds()), "catchup-ms")
	}
	b.ReportMetric(lagSum/rounds, "lag-records")
}
