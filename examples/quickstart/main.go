// Quickstart: build a small SecurityKG system, ingest the synthetic OSCTI
// web end to end, and ask it questions — the minimal public-API tour.
package main

import (
	"context"
	"fmt"
	"log"

	"securitykg"
)

func main() {
	// 1. Build the system. This assembles the 42-source synthetic OSCTI
	// web and trains the CRF entity recognizer with programmatically
	// synthesized labels (data programming) — no manual annotation.
	sys, err := securitykg.New(securitykg.Options{ReportsPerSource: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system ready: %d OSCTI sources\n", len(sys.Sources()))

	// 2. Collect: crawl every source and run the porter → checker →
	// parser → extractor → connector pipeline into the knowledge graph.
	st, err := sys.Collect(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d reports (%d rejected as ads/empty)\n",
		st.Process.Connected, st.Process.Rejected)

	// 3. Fuse: merge entities that different vendors name differently.
	fstats, err := sys.Fuse()
	if err != nil {
		log.Fatal(err)
	}
	gs := sys.Store.Stats()
	fmt.Printf("knowledge graph: %d nodes, %d edges (%d aliases fused)\n",
		gs.Nodes, gs.Edges, fstats.NodesMerged)

	// 4. Keyword search (the Elasticsearch role).
	hits, err := sys.Search("ransomware campaign", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop reports for \"ransomware campaign\":")
	for _, h := range hits {
		fmt.Printf("  %.2f  %s\n", h.Score, h.Title)
	}

	// 5. Cypher queries (the Neo4j role), streamed through the cursor
	// API: rows print as the executor matches them, and Close after the
	// LIMIT stops the traversal early.
	rows, err := sys.CypherRows(`match (m:Malware)-[:CONNECT]->(ip:IP) return m.name, ip.name limit 5`, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	fmt.Println("\nmalware → C2 addresses:")
	for rows.Next() {
		var mal, ip string
		if err := rows.Scan(&mal, &ip); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> %s\n", mal, ip)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
}
