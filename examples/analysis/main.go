// Analysis demonstrates the threat-analysis application layer: after a
// full ingest it ranks the most important threats by PageRank, discovers
// campaign clusters via connected components, profiles a threat actor's
// portfolio, finds actors with overlapping tradecraft, and plots a
// threat's reporting timeline.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"securitykg"
	"securitykg/internal/analytics"
	"securitykg/internal/ontology"
)

func main() {
	sys, err := securitykg.New(securitykg.Options{ReportsPerSource: 15, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Collect(context.Background()); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Fuse(); err != nil {
		log.Fatal(err)
	}
	gs := sys.Store.Stats()
	fmt.Printf("knowledge graph: %d nodes, %d edges\n\n", gs.Nodes, gs.Edges)

	// 1. Most important threats by PageRank over the KG.
	fmt.Println("=== top threats by graph importance ===")
	for _, r := range analytics.TopThreats(sys.Store, 8,
		[]ontology.EntityType{ontology.TypeMalware, ontology.TypeThreatActor}) {
		fmt.Printf("  %.5f  [%s] %s\n", r.Score, r.Node.Type, r.Node.Name)
	}

	// 2. Campaign clusters.
	comps := analytics.ConnectedComponents(sys.Store)
	fmt.Printf("\n=== campaign structure: %d connected components ===\n", len(comps))
	for i, c := range comps {
		if i >= 3 {
			fmt.Printf("  ... and %d smaller clusters\n", len(comps)-3)
			break
		}
		fmt.Printf("  cluster %d: %d nodes\n", i+1, c.Size)
	}

	// 3. Actor profile: pick the actor with the most attributed malware.
	var best *analytics.ActorProfile
	for _, n := range sys.Store.NodesByType(string(ontology.TypeThreatActor)) {
		p := analytics.ProfileActor(sys.Store, n.Name)
		if best == nil || len(p.Malware)+len(p.Techniques) > len(best.Malware)+len(best.Techniques) {
			best = p
		}
	}
	if best == nil {
		log.Fatal("no actors in graph")
	}
	fmt.Printf("\n=== actor profile: %s ===\n", best.Actor.Name)
	fmt.Printf("  techniques: %s\n", strings.Join(best.Techniques, ", "))
	fmt.Printf("  tools:      %s\n", strings.Join(best.Tools, ", "))
	fmt.Printf("  malware:    %s\n", strings.Join(best.Malware, ", "))
	fmt.Printf("  targets:    %s\n", strings.Join(best.Targets, ", "))

	// 4. Tradecraft overlap.
	fmt.Printf("\n=== actors with overlapping tradecraft (Jaccard) ===\n")
	sims := analytics.SimilarActors(sys.Store, best.Actor.Name, 5)
	if len(sims) == 0 {
		fmt.Println("  (none)")
	}
	for _, r := range sims {
		fmt.Printf("  %.3f  %s\n", r.Score, r.Node.Name)
	}

	// 5. Reporting timeline for the top malware.
	top := analytics.TopThreats(sys.Store, 1, []ontology.EntityType{ontology.TypeMalware})
	if len(top) > 0 {
		fmt.Printf("\n=== reporting timeline: %s ===\n", top[0].Node.Name)
		for _, b := range analytics.Timeline(sys.Store, top[0].Node.ID) {
			fmt.Printf("  %s %s (%d)\n", b.Period, strings.Repeat("#", b.Count), b.Count)
		}
	}
}
