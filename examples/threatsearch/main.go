// Threatsearch replays the three demonstration scenarios from Section 3 of
// the paper against a freshly built knowledge graph:
//
//  1. keyword search for "wannacry" and exploration of its neighborhood;
//  2. keyword search for "cozyduke" and the shared-techniques question
//     ("are there other threat actors that use the same set of techniques?");
//  3. the literal Cypher query
//     match (n) where n.name = "wannacry" return n.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"securitykg"
	"securitykg/internal/graph"
)

func main() {
	sys, err := securitykg.New(securitykg.Options{ReportsPerSource: 20, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Collect(context.Background()); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Fuse(); err != nil {
		log.Fatal(err)
	}
	gs := sys.Store.Stats()
	fmt.Printf("knowledge graph ready: %d nodes, %d edges\n\n", gs.Nodes, gs.Edges)

	// --- Scenario 1: keyword search for "wannacry" -------------------
	fmt.Println("=== scenario 1: keyword search \"wannacry\" ===")
	hits, _ := sys.Search("wannacry", 5)
	for _, h := range hits {
		fmt.Printf("  report %.2f  %s\n", h.Score, h.Title)
	}
	// Find the WannaCry malware node and expand its neighborhood, the way
	// double-clicking does in the UI.
	wc := findMalware(sys, "wannacry")
	if wc != nil {
		sub := sys.Store.ExpandFrom([]graph.NodeID{wc.ID}, 1, 10, 40)
		fmt.Printf("  expanding %q: %d neighbors\n", wc.Name, len(sub.Nodes)-1)
		for _, n := range sub.Nodes {
			if n.ID != wc.ID {
				fmt.Printf("    [%s] %s\n", n.Type, n.Name)
			}
		}
	} else {
		fmt.Println("  (WannaCry not sampled into this corpus — rerun with more reports)")
	}

	// --- Scenario 2: keyword search for "cozyduke" -------------------
	fmt.Println("\n=== scenario 2: threat actor \"cozyduke\" ===")
	hits, _ = sys.Search("cozyduke", 5)
	for _, h := range hits {
		fmt.Printf("  report %.2f  %s\n", h.Score, h.Title)
	}
	res, err := sys.CypherP(`match (a:ThreatActor {name: $actor})-[:USE]->(t)<-[:USE]-(other:ThreatActor)
		where other.name <> $actor
		return distinct other.name, t.name`, map[string]any{"actor": "CozyDuke"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  other actors sharing CozyDuke's techniques:")
	if len(res.Rows) == 0 {
		fmt.Println("    (none in this corpus)")
	}
	for _, row := range res.Rows {
		fmt.Printf("    %s (via %s)\n", row[0], row[1])
	}

	// --- Scenario 3: the literal demo Cypher query --------------------
	fmt.Println("\n=== scenario 3: cypher point query ===")
	name := "wannacry"
	if wc != nil {
		name = wc.Name
	}
	// The looked-up name binds as a $parameter — no value splicing, and
	// the statement text (hence its cached plan) is the same every run.
	q := `match (n) where n.name = $name return n`
	fmt.Printf("  %s  ($name = %q)\n", q, name)
	res, err = sys.CypherP(q, map[string]any{"name": name})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  -> %s\n", row[0])
	}
}

// findMalware locates a malware node whose (possibly fused) name or alias
// matches the query, case-insensitively.
func findMalware(sys *securitykg.System, q string) *graph.Node {
	var found *graph.Node
	sys.Store.ForEachNode(func(n *graph.Node) bool {
		if n.Type != "Malware" {
			return true
		}
		if strings.Contains(strings.ToLower(n.Name), q) ||
			strings.Contains(strings.ToLower(n.Attrs["aliases"]), q) {
			found = n
			return false
		}
		return true
	})
	return found
}
