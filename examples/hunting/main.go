// Hunting shows a downstream application from the paper's motivation: a
// threat-hunting assistant. Given indicators observed in an "incident"
// (here: IOCs lifted from one report, simulating endpoint telemetry), it
// pivots through the knowledge graph to identify the likely threat, its
// actor, and the additional indicators a responder should hunt for next.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"securitykg"
	"securitykg/internal/graph"
	"securitykg/internal/ontology"
)

func main() {
	sys, err := securitykg.New(securitykg.Options{ReportsPerSource: 15, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Collect(context.Background()); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Fuse(); err != nil {
		log.Fatal(err)
	}
	gs := sys.Store.Stats()
	fmt.Printf("knowledge graph: %d nodes, %d edges\n\n", gs.Nodes, gs.Edges)

	// Simulated incident telemetry: take the network IOCs of one malware
	// in the graph as "what the EDR saw".
	observed := sampleIncidentIOCs(sys)
	if len(observed) == 0 {
		log.Fatal("no IOCs in graph; increase reports per source")
	}
	fmt.Println("observed indicators from the incident:")
	for _, ioc := range observed {
		fmt.Printf("  [%s] %s\n", ioc.Type, ioc.Name)
	}

	// Hunt: score threat-concept nodes by how many observed IOCs connect
	// to them (1-hop pivot).
	scores := map[graph.NodeID]int{}
	for _, ioc := range observed {
		for _, nb := range sys.Store.Neighbors(ioc.ID, graph.Both) {
			if ontology.IsThreatConcept(ontology.EntityType(nb.Type)) {
				scores[nb.ID]++
			}
		}
	}
	type scored struct {
		n *graph.Node
		s int
	}
	var ranked []scored
	for id, s := range scores {
		ranked = append(ranked, scored{sys.Store.Node(id), s})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].s != ranked[j].s {
			return ranked[i].s > ranked[j].s
		}
		return ranked[i].n.ID < ranked[j].n.ID
	})
	fmt.Println("\nhypotheses (threat concepts linked to the observed IOCs):")
	for i, r := range ranked {
		if i >= 3 {
			break
		}
		fmt.Printf("  %d/%d indicators -> [%s] %s\n", r.s, len(observed), r.n.Type, r.n.Name)
	}
	if len(ranked) == 0 {
		log.Fatal("no hypothesis found")
	}
	top := ranked[0].n
	fmt.Printf("\nbest hypothesis: %s (%s)\n", top.Name, top.Type)

	// Expand the hypothesis: what else does the KG know about this threat?
	fmt.Println("\nadditional indicators and behaviors to hunt for:")
	for _, e := range sys.Store.Edges(top.ID, graph.Out) {
		dst := sys.Store.Node(e.To)
		already := false
		for _, o := range observed {
			if o.ID == dst.ID {
				already = true
			}
		}
		marker := " "
		if already {
			marker = "*" // already observed in the incident
		}
		fmt.Printf("  %s %-14s -> [%s] %s\n", marker, e.Type, dst.Type, dst.Name)
	}

	// Multi-hop sweep via Cypher: a variable-length traversal pulls in
	// the assets within two edges of the hypothesis (the classic
	// "what is ≤ k hops from this IOC" hunt), with the actors that use
	// each asset collected alongside — OPTIONAL MATCH keeps assets no
	// actor touches, WITH + collect folds the actor sets per asset. The
	// hypothesis name binds as $threat: hunted values (which come from
	// the graph, i.e. from crawled CTI text) are never spliced into
	// query strings.
	threat := map[string]any{"threat": top.Name}
	res, err := sys.CypherP(`
		match (m {name: $threat})-[*1..2]-(x)
		optional match (x)<-[:USE]-(a:ThreatActor)
		with x, collect(a.name) as actors
		return x.type, x.name, actors
		order by x.type, x.name limit 15`, threat)
	if err == nil {
		fmt.Println("\nhunting surface within 2 hops (Cypher var-length sweep):")
		for _, row := range res.Rows {
			fmt.Printf("  [%s] %s  actors=%s\n", row[0], row[1], row[2])
		}
	}

	// Attribution and reporting context via Cypher, streamed through the
	// cursor API: the DESCRIBES sweep prints reports as they match.
	res, err = sys.CypherP(
		`match (m {name: $threat})-[:ATTRIBUTED_TO]->(a:ThreatActor) return a.name`, threat)
	if err == nil && len(res.Rows) > 0 {
		fmt.Printf("\nattribution: %s\n", res.Rows[0][0])
	}
	rows, err := sys.CypherRows(
		`match (r)-[:DESCRIBES]->(m {name: $threat}) return r.name, r.source`, threat)
	if err == nil {
		fmt.Println("reports describing this threat:")
		for rows.Next() {
			var name, source string
			if err := rows.Scan(&name, &source); err != nil {
				break
			}
			fmt.Printf("  %s (%s)\n", name, source)
		}
		rows.Close()
	}
}

// sampleIncidentIOCs picks the network/file IOCs adjacent to the first
// malware node that has at least three of them.
func sampleIncidentIOCs(sys *securitykg.System) []*graph.Node {
	var out []*graph.Node
	sys.Store.ForEachNode(func(n *graph.Node) bool {
		if n.Type != "Malware" {
			return true
		}
		var iocs []*graph.Node
		for _, nb := range sys.Store.Neighbors(n.ID, graph.Out) {
			if ontology.IsIOCType(ontology.EntityType(nb.Type)) {
				iocs = append(iocs, nb)
			}
		}
		if len(iocs) >= 3 {
			out = iocs[:3]
			return false
		}
		return true
	})
	return out
}
