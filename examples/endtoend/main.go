// Endtoend demonstrates the automated gathering-and-management procedure
// from the demo outline: start from an empty database, watch reports flow
// through every pipeline stage, then ingest a second batch and show the
// knowledge graph growing continuously — with every intermediate stage's
// counters printed.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"securitykg/internal/connector"
	"securitykg/internal/crawler"
	"securitykg/internal/ctirep"
	"securitykg/internal/graph"
	"securitykg/internal/ner"
	"securitykg/internal/pipeline"
	"securitykg/internal/search"
	"securitykg/internal/sources"
)

func main() {
	// Assemble the pieces by hand (rather than via the facade) to show
	// each component the architecture diagram names.
	specs := sources.DefaultSources(8)[:10]
	web := sources.NewWeb(42, specs)
	web.FailEveryN = 5 // inject transient fetch failures: retries recover

	fmt.Println("training extractor (data programming over unlabeled reports)...")
	var texts []string
	for _, spec := range specs {
		for i := 0; i < 4; i++ {
			truth := web.GenerateTruth(spec, i)
			for _, p := range truth.Paragraphs {
				_ = p
			}
			texts = append(texts, join(truth.Paragraphs))
		}
	}
	ext, err := ner.Train(texts, ner.TrainOptions{Epochs: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	store := graph.New()
	idx := search.NewIndex(map[string]float64{"title": 2})
	pipe := func() *pipeline.Pipeline {
		return &pipeline.Pipeline{
			Porter:   pipeline.NewGroupingPorter(),
			Checkers: []pipeline.Checker{pipeline.NonemptyChecker{}, pipeline.NotAdsChecker{}},
			Parsers:  pipeline.DefaultParsers(specs),
			Extractors: []pipeline.Extractor{
				pipeline.EntityExtractor{NER: ext},
				pipeline.RelationExtractor{NER: ext},
			},
			Connectors: []connector.Connector{connector.NewGraphConnector(store, idx)},
			Cfg:        pipeline.Config{ExtractWorkers: 4, Serialize: true},
		}
	}

	fw := crawler.New(web, specs, crawler.Config{Workers: 6})
	runBatch := func(label string) {
		files := make(chan ctirep.RawFile, 128)
		p := pipe()
		var wg sync.WaitGroup
		wg.Add(1)
		var pst pipeline.Stats
		go func() {
			defer wg.Done()
			pst, _ = p.Run(context.Background(), files)
		}()
		if err := fw.RunOnce(context.Background(), func(rf ctirep.RawFile) { files <- rf }); err != nil {
			log.Fatal(err)
		}
		close(files)
		wg.Wait()
		cst := fw.Stats()
		fmt.Printf("%s:\n", label)
		fmt.Printf("  crawler:   %d files collected, %d retries after transient failures\n",
			cst.Collected, cst.Retries)
		fmt.Printf("  porter:    %d report representations\n", pst.Ported)
		fmt.Printf("  checkers:  %d rejected (ads, empty pages)\n", pst.Rejected)
		fmt.Printf("  parsers:   %d CTI representations (%d errors)\n", pst.Parsed, pst.ParseErrs)
		fmt.Printf("  extractor: %d refined with entities+relations\n", pst.Extracted)
		fmt.Printf("  connector: %d merged into storage\n", pst.Connected)
		gs := store.Stats()
		fmt.Printf("  graph now: %d nodes, %d edges (merge hits so far: %d)\n\n",
			gs.Nodes, gs.Edges, gs.MergeHits)
	}

	fmt.Println("=== batch 1: initial collection (empty database) ===")
	runBatch("batch 1")

	// New reports appear on every source. The crawler framework is
	// incremental: re-running it emits only URLs it has not collected yet,
	// and the storage stage's exact merge keeps re-processed knowledge
	// deduplicated — so the same graph grows continuously.
	fmt.Println("=== batch 2: sources published more reports; incremental re-crawl ===")
	for i := range specs {
		specs[i].Reports = 14 // each source now has 6 more reports
	}
	web2 := sources.NewWeb(42, specs)
	web2.FailEveryN = 5
	fw2 := crawler.New(web2, specs, crawler.Config{Workers: 6})
	// Seed the new framework's dedup state by replaying batch 1's URLs:
	// a long-running deployment keeps one framework alive instead.
	firstBatch := sources.NewWeb(42, withReports(specs, 8))
	seedFw := crawler.New(firstBatch, withReports(specs, 8), crawler.Config{Workers: 6})
	var seen []string
	seedFw.RunOnce(context.Background(), func(rf ctirep.RawFile) { seen = append(seen, rf.URL) })
	fw2.MarkSeen(seen)
	fw = fw2
	runBatch("batch 2 (incremental)")

	fmt.Println("the same knowledge graph served both batches: it grows continuously.")
}

func withReports(specs []sources.SourceSpec, n int) []sources.SourceSpec {
	out := make([]sources.SourceSpec, len(specs))
	copy(out, specs)
	for i := range out {
		out[i].Reports = n
	}
	return out
}

func join(ps []string) string {
	out := ""
	for i, p := range ps {
		if i > 0 {
			out += "\n"
		}
		out += p
	}
	return out
}
