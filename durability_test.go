package securitykg

// End-to-end durability: the exploration server over a write-ahead
// logged store round-trips state across a simulated restart — the
// acceptance path `skg-server --data-dir` exercises, minus the
// process boundary (internal/storage's crash tests cover that half).

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"securitykg/internal/server"
	"securitykg/internal/storage"
)

func TestServerDurableRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Session 1: open a durable store, serve it, write through the API.
	db, err := storage.Open(dir, storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Options{ReportsPerSource: 1, SourceSlugs: []string{"acme-encyclopedia"}})
	if err != nil {
		t.Fatal(err)
	}
	sys.AdoptStore(db.Store())
	srv := server.New(sys.Store, sys.Index)
	post := func(q string, params map[string]any) map[string]any {
		body, _ := json.Marshal(map[string]any{"query": q, "params": params})
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
		if rec.Code != 200 {
			t.Fatalf("cypher %q: status %d: %s", q, rec.Code, rec.Body.String())
		}
		var out map[string]any
		json.Unmarshal(rec.Body.Bytes(), &out)
		return out
	}
	out := post(`create (m:Malware {name: $ioc})-[:CONNECT]->(ip:IP {name: "203.0.113.7"})`,
		map[string]any{"ioc": "restart-probe"})
	if ws := out["writes"].(map[string]any); ws["nodes_created"].(float64) != 2 {
		t.Fatalf("writes: %v", out)
	}
	post(`match (m:Malware {name: $ioc}) set m.triaged = "true"`, map[string]any{"ioc": "restart-probe"})
	if err := db.Checkpoint(); err != nil { // the SIGTERM path
		t.Fatal(err)
	}
	// More writes after the checkpoint land only in the WAL tail.
	post(`merge (t:Tool {name: "tail-tool"})`, nil)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 2: recover and verify snapshot + tail both survived.
	db2, err := storage.Open(dir, storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	sys2, err := New(Options{ReportsPerSource: 1, SourceSlugs: []string{"acme-encyclopedia"}})
	if err != nil {
		t.Fatal(err)
	}
	sys2.AdoptStore(db2.Store())
	res, err := sys2.CypherP(`match (m:Malware {name: $ioc})-[:CONNECT]->(ip) return m.triaged, ip.name`,
		map[string]any{"ioc": "restart-probe"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "true" || res.Rows[0][1].String() != "203.0.113.7" {
		t.Fatalf("checkpointed state lost: %+v", res.Rows)
	}
	if sys2.Store.FindNode("Tool", "tail-tool") == nil {
		t.Fatal("WAL-tail write lost across restart")
	}
}
