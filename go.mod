module securitykg

go 1.24
