package securitykg

// Live-ingest benchmarks, run by `make bench` and recorded in
// BENCH_cypher.json: UNWIND batch mutation throughput against the
// equivalent per-statement CREATE loop (the batch path owes its margin
// to one parse/plan, one transaction, one group-committed WAL append
// and one stats judgement per batch instead of per row), and soak arms
// measuring ingest rows/s through a live leader/follower pair under
// concurrent readers, with writer/reader counts in the arm names.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"securitykg/internal/cypher"
	"securitykg/internal/graph"
	"securitykg/internal/replication"
	"securitykg/internal/search"
	"securitykg/internal/server"
	"securitykg/internal/storage"
)

// ingestStores yields the in-memory and WAL-backed stores the
// engine-level batch benchmarks run against.
func ingestStores(b *testing.B) map[string]*graph.Store {
	b.Helper()
	db, err := storage.Open(b.TempDir(), storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return map[string]*graph.Store{"mem": graph.New(), "wal": db.Store()}
}

// ingestHTTPServer stands up the real serving surface — /api/cypher
// over a durable group-committed (interval-fsync) store — which is
// where the batch path's margin lives: one HTTP round trip, one
// parse/plan, one transaction, one WAL tx group per batch instead of
// per row.
func ingestHTTPServer(b *testing.B) *httptest.Server {
	b.Helper()
	db, err := storage.Open(b.TempDir(), storage.Options{Sync: storage.SyncInterval, CompactBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	srv := server.NewWith(db.Store(), search.NewIndex(nil), cypher.DefaultOptions())
	srv.SetReplication(server.Replication{Role: "primary", Seq: db.CommittedSeq, Lag: func() int64 { return 0 }})
	mux := http.NewServeMux()
	mux.Handle("/api/", srv)
	ts := httptest.NewServer(mux)
	b.Cleanup(ts.Close)
	return ts
}

// postIngest posts one /api/cypher payload and fails the benchmark on
// any non-200.
func postIngest(b *testing.B, url string, payload map[string]any) {
	b.Helper()
	body, _ := json.Marshal(payload)
	resp, err := http.Post(url+"/api/cypher", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		b.Fatalf("ingest status %d: %v", resp.StatusCode, out["error"])
	}
}

// benchInvocation distinguishes repeated invocations of one benchmark
// closure (the harness probes with b.N=1 before the measured run, against
// the same store): node names carry it so every CREATE is genuinely new
// — a repeat would merge-hit and create nothing.
var benchInvocation atomic.Int64

// BenchmarkCypherBatchUnwind: one UNWIND $batch statement creating 1024
// nodes per op — the tentpole ingest path. rows/s is the headline.
func BenchmarkCypherBatchUnwind(b *testing.B) {
	const rows = 1024
	for name, s := range ingestStores(b) {
		b.Run(name, func(b *testing.B) {
			run := benchInvocation.Add(1)
			eng := cypher.NewEngine(s, cypher.Options{UseIndexes: true, MaxRows: 1 << 20})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := make([]any, 0, rows)
				for j := 0; j < rows; j++ {
					batch = append(batch, map[string]any{"name": fmt.Sprintf("bu-%d-%d-%d", run, i, j)})
				}
				res, err := eng.Query(
					`UNWIND $batch AS row CREATE (h:Host {name: row.name})`,
					map[string]any{"batch": batch})
				if err != nil {
					b.Fatal(err)
				}
				if res.Writes == nil || res.Writes.NodesCreated != rows {
					b.Fatalf("writes = %+v, want %d nodes", res.Writes, rows)
				}
			}
			b.ReportMetric(float64(b.N)*rows/b.Elapsed().Seconds(), "rows/s")
		})
	}
	// The serving surface: one POST carrying the whole batch.
	b.Run("http", func(b *testing.B) {
		ts := ingestHTTPServer(b)
		run := benchInvocation.Add(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := make([]any, 0, rows)
			for j := 0; j < rows; j++ {
				batch = append(batch, map[string]any{"name": fmt.Sprintf("bh-%d-%d-%d", run, i, j)})
			}
			postIngest(b, ts.URL, map[string]any{
				"query":  `UNWIND $batch AS row CREATE (h:Host {name: row.name})`,
				"params": map[string]any{"batch": batch},
			})
		}
		b.ReportMetric(float64(b.N)*rows/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkCypherPerStatementCreate is the baseline the batch path is
// measured against: the same 1024 rows as 1024 individual
// parameterized CREATE statements (plan-cached, so the margin is real
// per-statement overhead — round trip, transaction, WAL record — not
// re-parsing). The acceptance bar for the batch path is >=5x this
// baseline's rows/s on the http arm.
func BenchmarkCypherPerStatementCreate(b *testing.B) {
	const rows = 1024
	for name, s := range ingestStores(b) {
		b.Run(name, func(b *testing.B) {
			run := benchInvocation.Add(1)
			eng := cypher.NewEngine(s, cypher.Options{UseIndexes: true, MaxRows: 1 << 20})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < rows; j++ {
					if _, err := eng.Query(
						`CREATE (h:Host {name: $name})`,
						map[string]any{"name": fmt.Sprintf("ps-%d-%d-%d", run, i, j)}); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.N)*rows/b.Elapsed().Seconds(), "rows/s")
		})
	}
	// The serving surface: 1024 POSTs, one per row. This is the arm the
	// batch path's >=5x margin is measured against — each row pays an
	// HTTP round trip, a transaction and a WAL record of its own.
	b.Run("http", func(b *testing.B) {
		ts := ingestHTTPServer(b)
		run := benchInvocation.Add(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < rows; j++ {
				postIngest(b, ts.URL, map[string]any{
					"query":  `CREATE (h:Host {name: $name})`,
					"params": map[string]any{"name": fmt.Sprintf("ph-%d-%d-%d", run, i, j)},
				})
			}
		}
		b.ReportMetric(float64(b.N)*rows/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkReplicationSoakIngest: live-ingest throughput over HTTP
// through a leader with a tailing follower, while reader clients query
// the follower concurrently. Arms record the writer/reader counts in
// their names; rows/s counts only acknowledged batch rows.
func BenchmarkReplicationSoakIngest(b *testing.B) {
	const rowsPerBatch = 256
	arms := []struct{ writers, readers int }{{1, 1}, {2, 2}, {4, 2}}
	for _, arm := range arms {
		b.Run(fmt.Sprintf("w%d-r%d", arm.writers, arm.readers), func(b *testing.B) {
			// Leader serving the Cypher API and its WAL tail.
			ldb, err := storage.Open(b.TempDir(), storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer ldb.Close()
			lsrv := server.NewWith(ldb.Store(), search.NewIndex(nil), cypher.DefaultOptions())
			lsrv.SetReplication(server.Replication{
				Role: "primary", Seq: ldb.CommittedSeq, Lag: func() int64 { return 0 },
			})
			lmux := http.NewServeMux()
			lmux.Handle("/api/", lsrv)
			(&replication.Leader{DB: ldb, HeartbeatEvery: 10 * time.Millisecond}).Register(lmux)
			leader := httptest.NewServer(lmux)
			defer leader.Close()

			// Tailing follower serving reads.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			fdir := b.TempDir()
			if err := replication.Bootstrap(ctx, fdir, leader.URL, nil, nil); err != nil {
				b.Fatal(err)
			}
			fdb, err := storage.Open(fdir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer fdb.Close()
			repl := replication.NewReplicator(fdb, leader.URL)
			done := make(chan error, 1)
			go func() { done <- repl.Run(ctx) }()
			defer func() { cancel(); <-done }()
			ropts := cypher.DefaultOptions()
			ropts.ReadOnly = true
			fsrv := server.NewWith(fdb.Store(), search.NewIndex(nil), ropts)
			fsrv.SetReplication(server.Replication{
				Role: "replica", LeaderURL: leader.URL,
				Seq: repl.AppliedSeq, WaitSeq: repl.WaitApplied,
				Lag: func() int64 { return repl.Status().LagRecords },
			})
			fmux := http.NewServeMux()
			fmux.Handle("/api/", fsrv)
			follower := httptest.NewServer(fmux)
			defer follower.Close()

			// Background readers against the follower.
			stop := make(chan struct{})
			var readersWG sync.WaitGroup
			readBody, _ := json.Marshal(map[string]any{"query": `match (h:Host) return count(*)`})
			for r := 0; r < arm.readers; r++ {
				readersWG.Add(1)
				go func() {
					defer readersWG.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						resp, err := http.Post(follower.URL+"/api/cypher", "application/json", bytes.NewReader(readBody))
						if err != nil {
							return
						}
						resp.Body.Close()
					}
				}()
			}
			defer func() { close(stop); readersWG.Wait() }()

			// b.N batches of rowsPerBatch rows, spread across the writers.
			var batchNo atomic.Int64
			var maxSeq atomic.Uint64
			var writersWG sync.WaitGroup
			var writeErr atomic.Value
			b.ResetTimer()
			for w := 0; w < arm.writers; w++ {
				writersWG.Add(1)
				go func(w int) {
					defer writersWG.Done()
					for {
						bn := batchNo.Add(1) - 1
						if bn >= int64(b.N) {
							return
						}
						batch := make([]any, 0, rowsPerBatch)
						for j := 0; j < rowsPerBatch; j++ {
							batch = append(batch, map[string]any{
								"name": fmt.Sprintf("soak-w%d-b%d-r%d", w, bn, j)})
						}
						body, _ := json.Marshal(map[string]any{
							"query":  `UNWIND $batch AS row CREATE (h:Host {name: row.name})`,
							"params": map[string]any{"batch": batch},
						})
						resp, err := http.Post(leader.URL+"/api/cypher", "application/json", bytes.NewReader(body))
						if err != nil {
							writeErr.Store(err)
							return
						}
						var out map[string]any
						json.NewDecoder(resp.Body).Decode(&out)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							writeErr.Store(fmt.Errorf("ingest status %d: %v", resp.StatusCode, out["error"]))
							return
						}
						if seq, ok := out["seq"].(float64); ok {
							for {
								cur := maxSeq.Load()
								if uint64(seq) <= cur || maxSeq.CompareAndSwap(cur, uint64(seq)) {
									break
								}
							}
						}
					}
				}(w)
			}
			writersWG.Wait()
			rowsPerSec := float64(b.N) * rowsPerBatch / b.Elapsed().Seconds()
			b.StopTimer()
			if err, _ := writeErr.Load().(error); err != nil {
				b.Fatal(err)
			}
			// Follower must drain to the last acknowledged seq — a soak
			// arm that leaves the replica behind is not a passing arm.
			wctx, wcancel := context.WithTimeout(ctx, 60*time.Second)
			defer wcancel()
			if err := repl.WaitApplied(wctx, maxSeq.Load()); err != nil {
				b.Fatalf("follower never drained to %d: %v", maxSeq.Load(), err)
			}
			b.ReportMetric(rowsPerSec, "rows/s")
		})
	}
}
