// Package stix exports the security knowledge graph as a STIX 2.1-style
// bundle. The paper's related work positions the ontology against STIX
// (Structured Threat Information eXpression); this exporter makes the KG
// interoperable with tooling that consumes STIX JSON: each graph node maps
// to a STIX Domain Object or Cyber-observable, each edge to a STIX
// Relationship Object.
package stix

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"securitykg/internal/graph"
	"securitykg/internal/ontology"
)

// Object is one STIX object (domain object, observable, or relationship).
type Object struct {
	Type        string            `json:"type"`
	SpecVersion string            `json:"spec_version"`
	ID          string            `json:"id"`
	Name        string            `json:"name,omitempty"`
	Value       string            `json:"value,omitempty"`
	Pattern     string            `json:"pattern,omitempty"`
	RelType     string            `json:"relationship_type,omitempty"`
	SourceRef   string            `json:"source_ref,omitempty"`
	TargetRef   string            `json:"target_ref,omitempty"`
	Labels      []string          `json:"labels,omitempty"`
	CustomProps map[string]string `json:"x_securitykg_attrs,omitempty"`
	Aliases     []string          `json:"aliases,omitempty"`
}

// Bundle is a STIX bundle document.
type Bundle struct {
	Type    string   `json:"type"`
	ID      string   `json:"id"`
	Objects []Object `json:"objects"`
}

// typeMap maps ontology entity types to STIX object types.
var typeMap = map[ontology.EntityType]string{
	ontology.TypeMalware:             "malware",
	ontology.TypeMalwareFamily:       "malware",
	ontology.TypeThreatActor:         "threat-actor",
	ontology.TypeTechnique:           "attack-pattern",
	ontology.TypeTool:                "tool",
	ontology.TypeSoftware:            "software",
	ontology.TypeMalwarePlatform:     "infrastructure",
	ontology.TypeVulnerability:       "vulnerability",
	ontology.TypeAttack:              "campaign",
	ontology.TypeCTIVendor:           "identity",
	ontology.TypeMalwareReport:       "report",
	ontology.TypeVulnerabilityReport: "report",
	ontology.TypeAttackReport:        "report",
	ontology.TypeIP:                  "ipv4-addr",
	ontology.TypeDomain:              "domain-name",
	ontology.TypeURL:                 "url",
	ontology.TypeEmail:               "email-addr",
	ontology.TypeFileName:            "file",
	ontology.TypeFilePath:            "file",
	ontology.TypeRegistry:            "windows-registry-key",
	ontology.TypeHash:                "file",
}

// relMap maps ontology relation types to STIX relationship types; unmapped
// relations export as "related-to".
var relMap = map[ontology.RelationType]string{
	ontology.RelUses:         "uses",
	ontology.RelTargets:      "targets",
	ontology.RelExploits:     "exploits",
	ontology.RelAttributedTo: "attributed-to",
	ontology.RelIndicates:    "indicates",
	ontology.RelBelongsTo:    "variant-of",
	ontology.RelVariantOf:    "variant-of",
	ontology.RelCommunicates: "communicates-with",
	ontology.RelConnectsTo:   "communicates-with",
	ontology.RelDrops:        "drops",
	ontology.RelDownloads:    "downloads",
	ontology.RelMitigates:    "mitigates",
	ontology.RelDescribes:    "object-ref",
	ontology.RelMentions:     "object-ref",
	ontology.RelReportedBy:   "created-by",
}

// stixID derives a deterministic STIX identifier from the node identity so
// repeated exports are stable and diffable.
func stixID(stixType, typ, name string) string {
	sum := sha256.Sum256([]byte(typ + "\x00" + name))
	h := hex.EncodeToString(sum[:16])
	// UUID-shaped deterministic suffix.
	return fmt.Sprintf("%s--%s-%s-%s-%s-%s",
		stixType, h[0:8], h[8:12], h[12:16], h[16:20], h[20:32])
}

// Export writes the whole graph as one STIX bundle.
func Export(s *graph.Store, w io.Writer) error {
	b, err := BuildBundle(s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("stix: encode: %w", err)
	}
	return nil
}

// BuildBundle converts the graph into a STIX bundle in memory.
func BuildBundle(s *graph.Store) (*Bundle, error) {
	bundle := &Bundle{Type: "bundle"}
	ids := map[graph.NodeID]string{}

	var nodeErr error
	s.ForEachNode(func(n *graph.Node) bool {
		st, ok := typeMap[ontology.EntityType(n.Type)]
		if !ok {
			return true // unknown types are skipped, not fatal
		}
		id := stixID(st, n.Type, n.Name)
		ids[n.ID] = id
		obj := Object{
			Type:        st,
			SpecVersion: "2.1",
			ID:          id,
			Labels:      []string{strings.ToLower(n.Type)},
		}
		switch st {
		case "ipv4-addr", "domain-name", "url", "email-addr":
			obj.Value = n.Name
		case "windows-registry-key":
			obj.CustomProps = map[string]string{"key": n.Name}
		case "file":
			if ontology.EntityType(n.Type) == ontology.TypeHash {
				obj.CustomProps = map[string]string{"hash": n.Name}
			} else {
				obj.Name = n.Name
			}
		default:
			obj.Name = n.Name
		}
		if aliases, ok := n.Attrs["aliases"]; ok && aliases != "" {
			obj.Aliases = strings.Split(aliases, "|")
		}
		if len(n.Attrs) > 0 && obj.CustomProps == nil {
			props := map[string]string{}
			for k, v := range n.Attrs {
				if k != "aliases" {
					props[k] = v
				}
			}
			if len(props) > 0 {
				obj.CustomProps = props
			}
		}
		bundle.Objects = append(bundle.Objects, obj)
		return true
	})
	if nodeErr != nil {
		return nil, nodeErr
	}

	s.ForEachEdge(func(e *graph.Edge) bool {
		src, okS := ids[e.From]
		dst, okD := ids[e.To]
		if !okS || !okD {
			return true
		}
		rel, ok := relMap[ontology.RelationType(e.Type)]
		if !ok {
			rel = "related-to"
		}
		id := stixID("relationship", e.Type, src+dst)
		bundle.Objects = append(bundle.Objects, Object{
			Type:        "relationship",
			SpecVersion: "2.1",
			ID:          id,
			RelType:     rel,
			SourceRef:   src,
			TargetRef:   dst,
		})
		return true
	})

	sort.Slice(bundle.Objects, func(i, j int) bool {
		return bundle.Objects[i].ID < bundle.Objects[j].ID
	})
	bundle.ID = "bundle--" + bundleDigest(bundle)
	return bundle, nil
}

func bundleDigest(b *Bundle) string {
	h := sha256.New()
	for _, o := range b.Objects {
		io.WriteString(h, o.ID)
	}
	d := hex.EncodeToString(h.Sum(nil))
	return fmt.Sprintf("%s-%s-%s-%s-%s", d[0:8], d[8:12], d[12:16], d[16:20], d[20:32])
}
