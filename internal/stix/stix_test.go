package stix

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"securitykg/internal/graph"
)

func sampleGraph(t *testing.T) *graph.Store {
	t.Helper()
	s := graph.New()
	mal, _ := s.MergeNode("Malware", "WannaCry", map[string]string{"aliases": "W32/WannaCry|WANNACRY"})
	actor, _ := s.MergeNode("ThreatActor", "Lazarus Group", nil)
	ip, _ := s.MergeNode("IP", "10.0.0.5", nil)
	tech, _ := s.MergeNode("Technique", "credential dumping", nil)
	rep, _ := s.MergeNode("MalwareReport", "r1", map[string]string{"report_id": "r1"})
	s.AddEdge(mal, "ATTRIBUTED_TO", actor, nil)
	s.AddEdge(mal, "CONNECT", ip, nil)
	s.AddEdge(actor, "USE", tech, nil)
	s.AddEdge(rep, "DESCRIBES", mal, nil)
	return s
}

func TestBuildBundleShapes(t *testing.T) {
	b, err := BuildBundle(sampleGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if b.Type != "bundle" || !strings.HasPrefix(b.ID, "bundle--") {
		t.Errorf("bundle header: %+v", b.Type)
	}
	byType := map[string]int{}
	for _, o := range b.Objects {
		byType[o.Type]++
		if o.SpecVersion != "2.1" {
			t.Errorf("object %s missing spec_version", o.ID)
		}
		if !strings.HasPrefix(o.ID, o.Type+"--") {
			t.Errorf("id %s does not embed type %s", o.ID, o.Type)
		}
	}
	want := map[string]int{
		"malware": 1, "threat-actor": 1, "ipv4-addr": 1,
		"attack-pattern": 1, "report": 1, "relationship": 4,
	}
	for typ, n := range want {
		if byType[typ] != n {
			t.Errorf("%s: %d objects, want %d (all: %v)", typ, byType[typ], n, byType)
		}
	}
}

func TestBundleRelationshipsResolve(t *testing.T) {
	b, err := BuildBundle(sampleGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, o := range b.Objects {
		if o.Type != "relationship" {
			ids[o.ID] = true
		}
	}
	for _, o := range b.Objects {
		if o.Type != "relationship" {
			continue
		}
		if !ids[o.SourceRef] || !ids[o.TargetRef] {
			t.Errorf("dangling relationship refs: %+v", o)
		}
		if o.RelType == "" {
			t.Errorf("relationship without type: %+v", o)
		}
	}
}

func TestAliasesAndObservableValues(t *testing.T) {
	b, _ := BuildBundle(sampleGraph(t))
	var mal, ip *Object
	for i := range b.Objects {
		switch b.Objects[i].Type {
		case "malware":
			mal = &b.Objects[i]
		case "ipv4-addr":
			ip = &b.Objects[i]
		}
	}
	if mal == nil || len(mal.Aliases) != 2 {
		t.Errorf("malware aliases: %+v", mal)
	}
	if ip == nil || ip.Value != "10.0.0.5" || ip.Name != "" {
		t.Errorf("observable should use value field: %+v", ip)
	}
}

func TestExportDeterministic(t *testing.T) {
	var a, c bytes.Buffer
	if err := Export(sampleGraph(t), &a); err != nil {
		t.Fatal(err)
	}
	if err := Export(sampleGraph(t), &c); err != nil {
		t.Fatal(err)
	}
	if a.String() != c.String() {
		t.Error("export is not deterministic")
	}
	// Output is valid JSON.
	var parsed Bundle
	if err := json.Unmarshal(a.Bytes(), &parsed); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if len(parsed.Objects) == 0 {
		t.Error("empty bundle")
	}
}

func TestEmptyGraphExports(t *testing.T) {
	b, err := BuildBundle(graph.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Objects) != 0 {
		t.Errorf("empty graph produced %d objects", len(b.Objects))
	}
}

func TestRelationshipMappingFallback(t *testing.T) {
	s := graph.New()
	a, _ := s.MergeNode("Malware", "a", nil)
	bn, _ := s.MergeNode("Malware", "b", nil)
	s.AddEdge(a, "SOME_CUSTOM_REL", bn, nil)
	bundle, _ := BuildBundle(s)
	for _, o := range bundle.Objects {
		if o.Type == "relationship" && o.RelType != "related-to" {
			t.Errorf("unmapped relation should fall back to related-to: %+v", o)
		}
	}
}
