// Package crf implements the linear-chain Conditional Random Field
// (Lafferty et al., ICML 2001) that SecurityKG uses for security-related
// entity recognition. Training maximizes L2-regularized conditional
// log-likelihood with AdaGrad over exact forward-backward gradients;
// decoding is exact Viterbi.
//
// Observations are sparse string features per token (lemmas, POS tags,
// shapes, embedding cluster ids, gazetteer flags — produced by package
// ner). Labels are BIO tags.
package crf

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
)

// Sequence is one training example: per-position sparse features and the
// gold label per position.
type Sequence struct {
	Features [][]string
	Labels   []string
}

// Model is a trained linear-chain CRF.
type Model struct {
	labels   []string
	labelIdx map[string]int
	// unary[feature][label] weight; sparse over features.
	unary map[string][]float64
	// trans[prev][cur] transition weight, with an extra virtual start
	// state at index len(labels).
	trans [][]float64
}

// Labels returns the model's label set in index order.
func (m *Model) Labels() []string {
	out := make([]string, len(m.labels))
	copy(out, m.labels)
	return out
}

// TrainConfig controls optimization.
type TrainConfig struct {
	Epochs       int     // passes over the data (default 8)
	LearningRate float64 // AdaGrad base step (default 0.2)
	L2           float64 // L2 regularization strength (default 1e-4)
	Seed         int64   // shuffling seed (default 1)
	Verbose      io.Writer
}

func (c *TrainConfig) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.2
	}
	if c.L2 < 0 {
		c.L2 = 0
	} else if c.L2 == 0 {
		c.L2 = 1e-4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Train fits a CRF on the sequences. The label set is collected from the
// data. Sequences with mismatched feature/label lengths are rejected.
func Train(seqs []Sequence, cfg TrainConfig) (*Model, error) {
	cfg.defaults()
	if len(seqs) == 0 {
		return nil, errors.New("crf: no training sequences")
	}
	labelSet := map[string]bool{}
	for i, s := range seqs {
		if len(s.Features) != len(s.Labels) {
			return nil, fmt.Errorf("crf: sequence %d: %d feature vectors vs %d labels",
				i, len(s.Features), len(s.Labels))
		}
		for _, l := range s.Labels {
			labelSet[l] = true
		}
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	m := &Model{
		labels:   labels,
		labelIdx: make(map[string]int, len(labels)),
		unary:    make(map[string][]float64),
	}
	for i, l := range labels {
		m.labelIdx[l] = i
	}
	L := len(labels)
	m.trans = make([][]float64, L+1) // +1 virtual start row
	for i := range m.trans {
		m.trans[i] = make([]float64, L)
	}

	// AdaGrad accumulators, mirroring weight layout.
	gUnary := make(map[string][]float64)
	gTrans := make([][]float64, L+1)
	for i := range gTrans {
		gTrans[i] = make([]float64, L)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(seqs))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Reshuffle each epoch.
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var totalNLL float64
		for _, si := range order {
			nll := m.sgdStep(&seqs[si], cfg, gUnary, gTrans)
			totalNLL += nll
		}
		if cfg.Verbose != nil {
			fmt.Fprintf(cfg.Verbose, "crf: epoch %d nll=%.2f\n", epoch+1, totalNLL)
		}
	}
	return m, nil
}

// sgdStep computes the gradient of one sequence via forward-backward and
// applies an AdaGrad update. It returns the sequence NLL before the update.
func (m *Model) sgdStep(s *Sequence, cfg TrainConfig, gUnary map[string][]float64, gTrans [][]float64) float64 {
	T := len(s.Labels)
	if T == 0 {
		return 0
	}
	L := len(m.labels)
	start := L

	scores := m.scoreMatrix(s.Features)

	// Forward (log space): alpha[t][y].
	alpha := make([][]float64, T)
	for t := range alpha {
		alpha[t] = make([]float64, L)
	}
	for y := 0; y < L; y++ {
		alpha[0][y] = scores[0][y] + m.trans[start][y]
	}
	for t := 1; t < T; t++ {
		for y := 0; y < L; y++ {
			acc := make([]float64, L)
			for yp := 0; yp < L; yp++ {
				acc[yp] = alpha[t-1][yp] + m.trans[yp][y]
			}
			alpha[t][y] = logSumExp(acc) + scores[t][y]
		}
	}
	logZ := logSumExp(alpha[T-1])

	// Backward: beta[t][y].
	beta := make([][]float64, T)
	for t := range beta {
		beta[t] = make([]float64, L)
	}
	for t := T - 2; t >= 0; t-- {
		for y := 0; y < L; y++ {
			acc := make([]float64, L)
			for yn := 0; yn < L; yn++ {
				acc[yn] = m.trans[y][yn] + scores[t+1][yn] + beta[t+1][yn]
			}
			beta[t][y] = logSumExp(acc)
		}
	}

	// Gold path score for NLL reporting.
	gold := make([]int, T)
	goldScore := 0.0
	prev := start
	for t := 0; t < T; t++ {
		y, ok := m.labelIdx[s.Labels[t]]
		if !ok {
			return 0 // label unseen at collection time cannot happen in Train
		}
		gold[t] = y
		goldScore += scores[t][y] + m.trans[prev][y]
		prev = y
	}
	nll := logZ - goldScore

	lr := cfg.LearningRate
	l2 := cfg.L2
	updateUnary := func(feat string, y int, grad float64) {
		w, ok := m.unary[feat]
		if !ok {
			w = make([]float64, L)
			m.unary[feat] = w
		}
		g, ok := gUnary[feat]
		if !ok {
			g = make([]float64, L)
			gUnary[feat] = g
		}
		grad += l2 * w[y]
		g[y] += grad * grad
		w[y] -= lr * grad / (1e-8 + math.Sqrt(g[y]))
	}
	updateTrans := func(a, b int, grad float64) {
		grad += l2 * m.trans[a][b]
		gTrans[a][b] += grad * grad
		m.trans[a][b] -= lr * grad / (1e-8 + math.Sqrt(gTrans[a][b]))
	}

	// Unary gradients: P(y_t) - 1{y_t = gold}.
	for t := 0; t < T; t++ {
		p := make([]float64, L)
		for y := 0; y < L; y++ {
			p[y] = math.Exp(alpha[t][y] + beta[t][y] - logZ)
		}
		for y := 0; y < L; y++ {
			grad := p[y]
			if y == gold[t] {
				grad -= 1
			}
			if grad == 0 {
				continue
			}
			for _, feat := range s.Features[t] {
				updateUnary(feat, y, grad)
			}
		}
	}

	// Transition gradients.
	// Start transition: P(y_0) - 1{gold}.
	for y := 0; y < L; y++ {
		p := math.Exp(alpha[0][y] + beta[0][y] - logZ)
		grad := p
		if y == gold[0] {
			grad -= 1
		}
		if grad != 0 {
			updateTrans(start, y, grad)
		}
	}
	for t := 1; t < T; t++ {
		for yp := 0; yp < L; yp++ {
			for y := 0; y < L; y++ {
				p := math.Exp(alpha[t-1][yp] + m.trans[yp][y] + scores[t][y] + beta[t][y] - logZ)
				grad := p
				if yp == gold[t-1] && y == gold[t] {
					grad -= 1
				}
				if grad != 0 {
					updateTrans(yp, y, grad)
				}
			}
		}
	}
	return nll
}

// scoreMatrix computes unary scores for every position and label.
func (m *Model) scoreMatrix(features [][]string) [][]float64 {
	T := len(features)
	L := len(m.labels)
	scores := make([][]float64, T)
	for t := 0; t < T; t++ {
		row := make([]float64, L)
		for _, feat := range features[t] {
			if w, ok := m.unary[feat]; ok {
				for y := 0; y < L; y++ {
					row[y] += w[y]
				}
			}
		}
		scores[t] = row
	}
	return scores
}

// Decode returns the Viterbi-optimal label sequence for the features.
func (m *Model) Decode(features [][]string) []string {
	T := len(features)
	if T == 0 {
		return nil
	}
	L := len(m.labels)
	start := L
	scores := m.scoreMatrix(features)
	delta := make([][]float64, T)
	back := make([][]int, T)
	for t := range delta {
		delta[t] = make([]float64, L)
		back[t] = make([]int, L)
	}
	for y := 0; y < L; y++ {
		delta[0][y] = scores[0][y] + m.trans[start][y]
	}
	for t := 1; t < T; t++ {
		for y := 0; y < L; y++ {
			best, bestPrev := math.Inf(-1), 0
			for yp := 0; yp < L; yp++ {
				v := delta[t-1][yp] + m.trans[yp][y]
				if v > best {
					best, bestPrev = v, yp
				}
			}
			delta[t][y] = best + scores[t][y]
			back[t][y] = bestPrev
		}
	}
	bestY, bestV := 0, math.Inf(-1)
	for y := 0; y < L; y++ {
		if delta[T-1][y] > bestV {
			bestV, bestY = delta[T-1][y], y
		}
	}
	out := make([]string, T)
	y := bestY
	for t := T - 1; t >= 0; t-- {
		out[t] = m.labels[y]
		y = back[t][y]
	}
	return out
}

// MarginalProbs returns per-position label marginal probabilities
// P(y_t = l | x), useful for confidence thresholds.
func (m *Model) MarginalProbs(features [][]string) [][]float64 {
	T := len(features)
	if T == 0 {
		return nil
	}
	L := len(m.labels)
	start := L
	scores := m.scoreMatrix(features)
	alpha := make([][]float64, T)
	beta := make([][]float64, T)
	for t := range alpha {
		alpha[t] = make([]float64, L)
		beta[t] = make([]float64, L)
	}
	for y := 0; y < L; y++ {
		alpha[0][y] = scores[0][y] + m.trans[start][y]
	}
	for t := 1; t < T; t++ {
		for y := 0; y < L; y++ {
			acc := make([]float64, L)
			for yp := 0; yp < L; yp++ {
				acc[yp] = alpha[t-1][yp] + m.trans[yp][y]
			}
			alpha[t][y] = logSumExp(acc) + scores[t][y]
		}
	}
	for t := T - 2; t >= 0; t-- {
		for y := 0; y < L; y++ {
			acc := make([]float64, L)
			for yn := 0; yn < L; yn++ {
				acc[yn] = m.trans[y][yn] + scores[t+1][yn] + beta[t+1][yn]
			}
			beta[t][y] = logSumExp(acc)
		}
	}
	logZ := logSumExp(alpha[T-1])
	out := make([][]float64, T)
	for t := 0; t < T; t++ {
		out[t] = make([]float64, L)
		for y := 0; y < L; y++ {
			out[t][y] = math.Exp(alpha[t][y] + beta[t][y] - logZ)
		}
	}
	return out
}

func logSumExp(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// --- persistence ---

type persistModel struct {
	Magic  string               `json:"magic"`
	Labels []string             `json:"labels"`
	Unary  map[string][]float64 `json:"unary"`
	Trans  [][]float64          `json:"trans"`
}

const modelMagic = "securitykg-crf-v1"

// Save serializes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	err := json.NewEncoder(bw).Encode(persistModel{
		Magic: modelMagic, Labels: m.labels, Unary: m.unary, Trans: m.trans,
	})
	if err != nil {
		return fmt.Errorf("crf: save: %w", err)
	}
	return bw.Flush()
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var p persistModel
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&p); err != nil {
		return nil, fmt.Errorf("crf: load: %w", err)
	}
	if p.Magic != modelMagic {
		return nil, errors.New("crf: not a securitykg CRF model")
	}
	m := &Model{
		labels:   p.Labels,
		labelIdx: make(map[string]int, len(p.Labels)),
		unary:    p.Unary,
		trans:    p.Trans,
	}
	if m.unary == nil {
		m.unary = map[string][]float64{}
	}
	for i, l := range p.Labels {
		m.labelIdx[l] = i
	}
	if len(m.trans) != len(p.Labels)+1 {
		return nil, errors.New("crf: corrupt transition matrix")
	}
	return m, nil
}
