package crf

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// makeToySeqs builds a synthetic tagging task where the observation feature
// fully determines the label (with some noise words tagged O).
func makeToySeqs(n int, seed int64) []Sequence {
	rng := rand.New(rand.NewSource(seed))
	entities := map[string]string{
		"wannacry": "B-MAL", "emotet": "B-MAL", "trickbot": "B-MAL",
		"apt29": "B-ACT", "lazarus": "B-ACT",
		"mimikatz": "B-TOOL", "cobaltstrike": "B-TOOL",
	}
	fillers := []string{"the", "malware", "uses", "infrastructure", "and",
		"was", "observed", "targeting", "victims", "across", "sectors"}
	ents := make([]string, 0, len(entities))
	for e := range entities {
		ents = append(ents, e)
	}
	var seqs []Sequence
	for i := 0; i < n; i++ {
		var feats [][]string
		var labels []string
		slen := 5 + rng.Intn(8)
		for t := 0; t < slen; t++ {
			var w, lab string
			if rng.Float64() < 0.3 {
				w = ents[rng.Intn(len(ents))]
				lab = entities[w]
			} else {
				w = fillers[rng.Intn(len(fillers))]
				lab = "O"
			}
			feats = append(feats, []string{"w=" + w, "len=" + fmt.Sprint(len(w))})
			labels = append(labels, lab)
		}
		seqs = append(seqs, Sequence{Features: feats, Labels: labels})
	}
	return seqs
}

func TestTrainDecodeLearnsSeparableTask(t *testing.T) {
	train := makeToySeqs(200, 1)
	test := makeToySeqs(50, 2)
	m, err := Train(train, TrainConfig{Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, s := range test {
		got := m.Decode(s.Features)
		if len(got) != len(s.Labels) {
			t.Fatalf("decode length mismatch: %d vs %d", len(got), len(s.Labels))
		}
		for i := range got {
			total++
			if got[i] == s.Labels[i] {
				correct++
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.97 {
		t.Errorf("separable task accuracy %.3f, want >= 0.97", acc)
	}
}

func TestTrainLearnsTransitionStructure(t *testing.T) {
	// Task where the observation is ambiguous but transitions disambiguate:
	// label alternates strictly A,B,A,B... while every token has the same
	// observation feature. A unigram classifier cannot beat 50%; the CRF's
	// transition weights can reach ~100%.
	var seqs []Sequence
	for i := 0; i < 60; i++ {
		var feats [][]string
		var labels []string
		for t := 0; t < 10; t++ {
			feats = append(feats, []string{"x"})
			if t%2 == 0 {
				labels = append(labels, "A")
			} else {
				labels = append(labels, "B")
			}
		}
		seqs = append(seqs, Sequence{Features: feats, Labels: labels})
	}
	m, err := Train(seqs, TrainConfig{Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Decode(seqs[0].Features)
	want := strings.Join(seqs[0].Labels, ",")
	if strings.Join(got, ",") != want {
		t.Errorf("transition structure not learned: got %v", got)
	}
}

func TestGeneralizationToUnseenFeatureCombos(t *testing.T) {
	// Entities carry a shared contextual cue feature ("prevword=group").
	// A held-out entity word with the cue should still be tagged as entity
	// — the paper's claim that the CRF "generalizes to entities not in the
	// training set" via token-level features.
	var seqs []Sequence
	for i := 0; i < 120; i++ {
		w := fmt.Sprintf("actor%d", i%10)
		seqs = append(seqs, Sequence{
			Features: [][]string{
				{"w=the"}, {"w=group", "cue"}, {"w=" + w, "shape=Xx", "after-cue"}, {"w=attacked"},
			},
			Labels: []string{"O", "O", "B-ACT", "O"},
		})
	}
	m, err := Train(seqs, TrainConfig{Epochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Decode([][]string{
		{"w=the"}, {"w=group", "cue"}, {"w=neverseen", "shape=Xx", "after-cue"}, {"w=attacked"},
	})
	if got[2] != "B-ACT" {
		t.Errorf("unseen entity with known context mislabeled: %v", got)
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); err == nil {
		t.Error("empty training set should error")
	}
	bad := []Sequence{{Features: [][]string{{"a"}}, Labels: []string{"O", "O"}}}
	if _, err := Train(bad, TrainConfig{}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestDecodeEmptySequence(t *testing.T) {
	m, err := Train(makeToySeqs(10, 3), TrainConfig{Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Decode(nil); got != nil {
		t.Errorf("empty decode: %v", got)
	}
}

func TestDecodeUnknownFeaturesFallsBackToPrior(t *testing.T) {
	m, err := Train(makeToySeqs(100, 4), TrainConfig{Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Decode([][]string{{"w=zzz_unknown"}, {"w=qqq_unknown"}})
	// With only unknown features, the majority label O should win.
	for _, l := range got {
		if l != "O" {
			t.Errorf("unknown features should decode to O, got %v", got)
		}
	}
}

func TestMarginalProbsSumToOne(t *testing.T) {
	m, err := Train(makeToySeqs(50, 5), TrainConfig{Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	feats := [][]string{{"w=wannacry"}, {"w=uses"}, {"w=mimikatz"}}
	probs := m.MarginalProbs(feats)
	if len(probs) != 3 {
		t.Fatalf("marginals length: %d", len(probs))
	}
	for t_, row := range probs {
		sum := 0.0
		for _, p := range row {
			if p < -1e-9 || p > 1+1e-9 {
				t.Errorf("probability out of range: %f", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("position %d marginals sum to %f", t_, sum)
		}
	}
}

func TestMarginalsAgreeWithViterbiOnConfidentInput(t *testing.T) {
	m, err := Train(makeToySeqs(200, 6), TrainConfig{Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	feats := [][]string{{"w=the"}, {"w=wannacry"}, {"w=observed"}}
	path := m.Decode(feats)
	probs := m.MarginalProbs(feats)
	labels := m.Labels()
	for t_ := range feats {
		best, bestP := "", -1.0
		for y, p := range probs[t_] {
			if p > bestP {
				bestP, best = p, labels[y]
			}
		}
		if best != path[t_] {
			t.Errorf("position %d: viterbi %s vs argmax-marginal %s (p=%.2f)",
				t_, path[t_], best, bestP)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, err := Train(makeToySeqs(80, 7), TrainConfig{Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	feats := [][]string{{"w=wannacry"}, {"w=uses"}, {"w=mimikatz"}, {"w=and"}}
	a := strings.Join(m.Decode(feats), ",")
	b := strings.Join(m2.Decode(feats), ",")
	if a != b {
		t.Errorf("loaded model decodes differently: %s vs %s", a, b)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString(`{"magic":"wrong"}`)); err == nil {
		t.Error("wrong magic accepted")
	}
	if _, err := Load(bytes.NewBufferString("junk")); err == nil {
		t.Error("non-JSON accepted")
	}
}

func TestTrainingIsDeterministicForSeed(t *testing.T) {
	seqs := makeToySeqs(60, 8)
	m1, _ := Train(seqs, TrainConfig{Epochs: 2, Seed: 42})
	m2, _ := Train(seqs, TrainConfig{Epochs: 2, Seed: 42})
	feats := [][]string{{"w=emotet"}, {"w=was"}, {"w=observed"}}
	if strings.Join(m1.Decode(feats), ",") != strings.Join(m2.Decode(feats), ",") {
		t.Error("same seed should give identical decisions")
	}
}

func TestL2ShrinksWeights(t *testing.T) {
	seqs := makeToySeqs(60, 9)
	weak, _ := Train(seqs, TrainConfig{Epochs: 3, L2: 1e-6})
	strong, _ := Train(seqs, TrainConfig{Epochs: 3, L2: 0.5})
	norm := func(m *Model) float64 {
		var s float64
		for _, ws := range m.unary {
			for _, w := range ws {
				s += w * w
			}
		}
		return s
	}
	if norm(strong) >= norm(weak) {
		t.Errorf("strong L2 should shrink weights: %.3f vs %.3f", norm(strong), norm(weak))
	}
}

func TestLogSumExpStability(t *testing.T) {
	// Large values must not overflow.
	v := logSumExp([]float64{1000, 1000})
	if math.IsInf(v, 1) || math.Abs(v-(1000+math.Log(2))) > 1e-9 {
		t.Errorf("logSumExp(1000,1000) = %f", v)
	}
	if !math.IsInf(logSumExp([]float64{math.Inf(-1)}), -1) {
		t.Error("logSumExp of -inf should be -inf")
	}
}
