// Package fusion implements the knowledge-fusion stage (Section 2.5): a
// pass separate from the main storage pipeline that merges nodes which
// refer to the same entity under different description texts (vendor
// naming conventions, case variants), creating a unified node, migrating
// all relation edges, and recording aliases — without risking the early
// deletion of information that eager merging in the storage stage would.
package fusion

import (
	"sort"
	"strings"

	"securitykg/internal/graph"
)

// Options tune the fusion pass.
type Options struct {
	// Types restricts fusion to the given node types (nil = all types).
	Types []string
	// MinGroup is the smallest alias-group size worth fusing (default 2).
	MinGroup int
}

// Stats reports what a fusion pass did.
type Stats struct {
	Groups        int // alias groups found
	NodesMerged   int // duplicate nodes folded into canonicals
	EdgesBefore   int
	EdgesAfter    int
	AliasesStored int
}

// vendor naming prefixes stripped during normalization; mirrored from the
// conventions real AV vendors use (and the synthetic generator emits).
var aliasPrefixes = []string{
	"w32/", "w64/", "win32/", "win64/",
	"ransom.win32.", "ransom.win64.", "trojan.win32.", "trojan.",
	"backdoor.", "worm.", "mal/", "ransom:",
}

// Normalize reduces an entity name to its alias-group key: lowercase,
// vendor prefixes stripped, separators removed.
func Normalize(name string) string {
	n := strings.ToLower(strings.TrimSpace(name))
	for _, p := range aliasPrefixes {
		if strings.HasPrefix(n, p) {
			n = strings.TrimPrefix(n, p)
			break
		}
	}
	var b strings.Builder
	for _, r := range n {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Fuse runs one fusion pass over the store. Within each node type, nodes
// whose normalized names agree form an alias group; the group member with
// the highest degree (ties: lowest ID, i.e. earliest inserted) becomes the
// canonical node, every other member's edges migrate to it, alias names
// are recorded in the canonical's "aliases" attribute, and the duplicates
// are removed.
func Fuse(s *graph.Store, opts Options) (Stats, error) {
	if opts.MinGroup < 2 {
		opts.MinGroup = 2
	}
	typeFilter := map[string]bool{}
	for _, t := range opts.Types {
		typeFilter[t] = true
	}

	var st Stats
	st.EdgesBefore = s.Stats().Edges

	// Group nodes by (type, normalized name).
	groups := map[string][]*graph.Node{}
	s.ForEachNode(func(n *graph.Node) bool {
		if len(typeFilter) > 0 && !typeFilter[n.Type] {
			return true
		}
		key := n.Type + "\x00" + Normalize(n.Name)
		if Normalize(n.Name) == "" {
			return true
		}
		groups[key] = append(groups[key], n)
		return true
	})

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, k := range keys {
		members := groups[k]
		if len(members) < opts.MinGroup {
			continue
		}
		st.Groups++
		// Pick the canonical: highest degree, then lowest ID.
		best := members[0]
		bestDeg := len(s.Edges(best.ID, graph.Both))
		for _, m := range members[1:] {
			deg := len(s.Edges(m.ID, graph.Both))
			if deg > bestDeg || (deg == bestDeg && m.ID < best.ID) {
				best, bestDeg = m, deg
			}
		}
		aliases := collectAliases(s, best)
		for _, m := range members {
			if m.ID == best.ID {
				continue
			}
			if err := s.MigrateEdges(m.ID, best.ID); err != nil {
				return st, err
			}
			// Unify attributes: keep canonical's values, adopt new keys.
			for ak, av := range m.Attrs {
				if cur := s.Node(best.ID); cur != nil {
					if _, has := cur.Attrs[ak]; !has {
						if err := s.SetAttr(best.ID, ak, av); err != nil {
							return st, err
						}
					}
				}
			}
			if m.Name != best.Name {
				aliases[m.Name] = true
			}
			if err := s.DeleteNode(m.ID); err != nil {
				return st, err
			}
			st.NodesMerged++
		}
		if len(aliases) > 0 {
			names := make([]string, 0, len(aliases))
			for a := range aliases {
				names = append(names, a)
			}
			sort.Strings(names)
			if err := s.SetAttr(best.ID, "aliases", strings.Join(names, "|")); err != nil {
				return st, err
			}
			st.AliasesStored += len(names)
		}
	}
	st.EdgesAfter = s.Stats().Edges
	return st, nil
}

func collectAliases(s *graph.Store, n *graph.Node) map[string]bool {
	out := map[string]bool{}
	if cur := s.Node(n.ID); cur != nil {
		if prev, ok := cur.Attrs["aliases"]; ok && prev != "" {
			for _, a := range strings.Split(prev, "|") {
				out[a] = true
			}
		}
	}
	return out
}
