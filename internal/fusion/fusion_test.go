package fusion

import (
	"testing"

	"securitykg/internal/graph"
)

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"WannaCry":              "wannacry",
		"WANNACRY":              "wannacry",
		"W32/WannaCry":          "wannacry",
		"Ransom.Win32.WannaCry": "wannacry",
		"Trojan.Emotet":         "emotet",
		"Agent Tesla":           "agenttesla",
		"agent-tesla":           "agenttesla",
		"  Spaced Out  ":        "spacedout",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func buildAliasGraph(t *testing.T) (*graph.Store, graph.NodeID, graph.NodeID, graph.NodeID) {
	t.Helper()
	s := graph.New()
	canon, _ := s.MergeNode("Malware", "WannaCry", map[string]string{"seen": "2017"})
	v1, _ := s.MergeNode("Malware", "W32/WannaCry", map[string]string{"av": "vendor1"})
	v2, _ := s.MergeNode("Malware", "WANNACRY", nil)
	ip, _ := s.MergeNode("IP", "9.9.9.9", nil)
	dom, _ := s.MergeNode("Domain", "kill.sw", nil)
	rep, _ := s.MergeNode("MalwareReport", "r1", nil)
	rep2, _ := s.MergeNode("MalwareReport", "r2", nil)
	mustEdge(t, s, canon, "CONNECT", ip)
	mustEdge(t, s, canon, "CONNECT", dom)
	mustEdge(t, s, v1, "CONNECT", ip) // duplicate edge via alias
	mustEdge(t, s, rep, "DESCRIBES", v1)
	mustEdge(t, s, rep2, "DESCRIBES", v2)
	return s, canon, v1, v2
}

func mustEdge(t *testing.T, s *graph.Store, a graph.NodeID, rel string, b graph.NodeID) {
	t.Helper()
	if _, _, err := s.AddEdge(a, rel, b, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFuseMergesAliasGroup(t *testing.T) {
	s, canon, v1, v2 := buildAliasGraph(t)
	st, err := Fuse(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Groups != 1 || st.NodesMerged != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if s.Node(v1) != nil || s.Node(v2) != nil {
		t.Error("alias nodes should be deleted")
	}
	n := s.Node(canon)
	if n == nil {
		t.Fatal("canonical node gone")
	}
	// Aliases recorded.
	if n.Attrs["aliases"] != "W32/WannaCry|WANNACRY" {
		t.Errorf("aliases attr: %q", n.Attrs["aliases"])
	}
	// Attributes unified (first writer wins, new keys adopted).
	if n.Attrs["seen"] != "2017" || n.Attrs["av"] != "vendor1" {
		t.Errorf("attrs not unified: %+v", n.Attrs)
	}
}

func TestFuseMigratesAllEdgesWithoutLoss(t *testing.T) {
	s, canon, _, _ := buildAliasGraph(t)
	before := s.Stats()
	st, err := Fuse(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Edge count may shrink only due to dedup (v1->ip duplicated canon->ip).
	if st.EdgesBefore != before.Edges {
		t.Errorf("EdgesBefore %d vs %d", st.EdgesBefore, before.Edges)
	}
	// Both reports must now describe the canonical node: no information
	// lost, only unified.
	ins := s.Edges(canon, graph.In)
	if len(ins) != 2 {
		t.Fatalf("canonical in-edges: %+v", ins)
	}
	outs := s.Edges(canon, graph.Out)
	if len(outs) != 2 { // CONNECT ip (deduped), CONNECT dom
		t.Fatalf("canonical out-edges: %+v", outs)
	}
}

func TestFuseChoosesHighestDegreeCanonical(t *testing.T) {
	s := graph.New()
	// The alias (inserted first) has more edges: it must win.
	popular, _ := s.MergeNode("Malware", "W32/Emotet", nil)
	lonely, _ := s.MergeNode("Malware", "Emotet", nil)
	for i := 0; i < 3; i++ {
		ip, _ := s.MergeNode("IP", string(rune('a'+i))+".ip", nil)
		mustEdge(t, s, popular, "CONNECT", ip)
	}
	if _, err := Fuse(s, Options{}); err != nil {
		t.Fatal(err)
	}
	if s.Node(popular) == nil {
		t.Error("high-degree node should be canonical")
	}
	if s.Node(lonely) != nil {
		t.Error("low-degree duplicate should be merged away")
	}
}

func TestFuseTypeFilter(t *testing.T) {
	s := graph.New()
	s.MergeNode("Malware", "Ryuk", nil)
	s.MergeNode("Malware", "RYUK", nil)
	s.MergeNode("Tool", "PsExec", nil)
	s.MergeNode("Tool", "psexec", nil)
	st, err := Fuse(s, Options{Types: []string{"Tool"}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Groups != 1 {
		t.Fatalf("type filter ignored: %+v", st)
	}
	if got := len(s.NodesByType("Malware")); got != 2 {
		t.Errorf("malware should be untouched: %d nodes", got)
	}
	if got := len(s.NodesByType("Tool")); got != 1 {
		t.Errorf("tools should be fused: %d nodes", got)
	}
}

func TestFuseNoFalseMerges(t *testing.T) {
	s := graph.New()
	s.MergeNode("Malware", "Petya", nil)
	s.MergeNode("Malware", "NotPetya", nil) // different normalized names
	s.MergeNode("Malware", "Ryuk", nil)
	s.MergeNode("Tool", "Ryuk", nil) // same name, different type: no merge
	st, err := Fuse(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Groups != 0 || st.NodesMerged != 0 {
		t.Errorf("false merges: %+v", st)
	}
	if s.Stats().Nodes != 4 {
		t.Errorf("nodes lost: %+v", s.Stats())
	}
}

func TestFuseIdempotent(t *testing.T) {
	s, _, _, _ := buildAliasGraph(t)
	if _, err := Fuse(s, Options{}); err != nil {
		t.Fatal(err)
	}
	mid := s.Stats()
	st2, err := Fuse(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.NodesMerged != 0 {
		t.Errorf("second pass merged again: %+v", st2)
	}
	if after := s.Stats(); after.Nodes != mid.Nodes || after.Edges != mid.Edges {
		t.Errorf("second pass changed the graph: %+v vs %+v", mid, after)
	}
}

func TestFuseEmptyStore(t *testing.T) {
	s := graph.New()
	st, err := Fuse(s, Options{})
	if err != nil || st.Groups != 0 {
		t.Errorf("empty store: %+v err=%v", st, err)
	}
}
