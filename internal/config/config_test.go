package config

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.ReportsPerSource <= 0 || c.NER.Strategy != "labelmodel" {
		t.Errorf("defaults wrong: %+v", c)
	}
}

func TestParseOverridesDefaults(t *testing.T) {
	c, err := Parse([]byte(`{
		"seed": 7,
		"reports_per_source": 5,
		"sources": ["acme-encyclopedia"],
		"pipeline": {"extract_workers": 8, "serialize": false},
		"ner": {"strategy": "majority", "epochs": 2, "train_docs": 30},
		"connectors": ["graph", "log"],
		"fusion": {"enabled": false}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 7 || c.ReportsPerSource != 5 {
		t.Errorf("scalar overrides: %+v", c)
	}
	if c.Pipeline.ExtractWorkers != 8 || c.Pipeline.Serialize {
		t.Errorf("pipeline overrides: %+v", c.Pipeline)
	}
	if c.NER.Strategy != "majority" || c.NER.Epochs != 2 {
		t.Errorf("ner overrides: %+v", c.NER)
	}
	if len(c.Connectors) != 2 {
		t.Errorf("connectors: %v", c.Connectors)
	}
	if c.Fusion.Enabled {
		t.Error("fusion should be disabled")
	}
	// Untouched defaults survive.
	if c.Crawler.Workers != 8 {
		t.Errorf("crawler default lost: %+v", c.Crawler)
	}
}

func TestParseRejectsBadValues(t *testing.T) {
	bad := []string{
		`{not json`,
		`{"reports_per_source": -1}`,
		`{"ner": {"strategy": "quantum"}}`,
		`{"checkers": ["nonexistent"]}`,
		`{"connectors": ["mongodb"]}`,
	}
	for _, b := range bad {
		if _, err := Parse([]byte(b)); err == nil {
			t.Errorf("accepted bad config: %s", b)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	if err := os.WriteFile(path, []byte(`{"seed": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 99 {
		t.Errorf("seed: %d", c.Seed)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
