// Package config loads the user-provided configuration file that selects
// pipeline components and their parameters (Section 2.1: "the system can
// be configured through a user-provided configuration file, which
// specifies the set of components to use and the additional parameters").
package config

import (
	"encoding/json"
	"fmt"
	"os"
)

// Config is the root configuration document (JSON).
type Config struct {
	Seed             int64 `json:"seed"`
	ReportsPerSource int   `json:"reports_per_source"`
	// Sources restricts collection to the named source slugs (empty = all).
	Sources []string `json:"sources,omitempty"`

	Crawler struct {
		Workers    int `json:"workers"`
		MaxRetries int `json:"max_retries"`
	} `json:"crawler"`

	Pipeline struct {
		PortWorkers    int  `json:"port_workers"`
		CheckWorkers   int  `json:"check_workers"`
		ParseWorkers   int  `json:"parse_workers"`
		ExtractWorkers int  `json:"extract_workers"`
		ConnectWorkers int  `json:"connect_workers"`
		Serialize      bool `json:"serialize"`
	} `json:"pipeline"`

	NER struct {
		Strategy   string `json:"strategy"`   // labelmodel | majority | gazetteer
		Epochs     int    `json:"epochs"`     // CRF epochs
		TrainDocs  int    `json:"train_docs"` // corpus sample used to train
		Embeddings bool   `json:"embeddings"` // add embedding cluster features
	} `json:"ner"`

	// Checkers and Connectors select components by name (Section 2.1's
	// modular design); empty means defaults.
	Checkers   []string `json:"checkers,omitempty"`
	Connectors []string `json:"connectors,omitempty"`

	Fusion struct {
		Enabled bool     `json:"enabled"`
		Types   []string `json:"types,omitempty"`
	} `json:"fusion"`

	GraphPath string `json:"graph_path,omitempty"` // persistence location
	LogPath   string `json:"log_path,omitempty"`   // log connector target
}

// Default returns the configuration used when no file is given.
func Default() Config {
	var c Config
	c.Seed = 42
	c.ReportsPerSource = 25
	c.Crawler.Workers = 8
	c.Crawler.MaxRetries = 3
	c.Pipeline.ExtractWorkers = 4
	c.Pipeline.Serialize = true
	c.NER.Strategy = "labelmodel"
	c.NER.Epochs = 5
	c.NER.TrainDocs = 120
	c.Checkers = []string{"nonempty", "not-ads"}
	c.Connectors = []string{"graph"}
	c.Fusion.Enabled = true
	return c
}

// Load reads and validates a JSON config file, filling defaults for
// omitted fields.
func Load(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	return Parse(b)
}

// Parse decodes and validates config bytes.
func Parse(b []byte) (Config, error) {
	c := Default()
	if err := json.Unmarshal(b, &c); err != nil {
		return Config{}, fmt.Errorf("config: parse: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate checks component names and parameter ranges.
func (c *Config) Validate() error {
	if c.ReportsPerSource <= 0 {
		return fmt.Errorf("config: reports_per_source must be positive")
	}
	switch c.NER.Strategy {
	case "", "labelmodel", "majority", "gazetteer":
	default:
		return fmt.Errorf("config: unknown ner.strategy %q", c.NER.Strategy)
	}
	for _, ch := range c.Checkers {
		switch ch {
		case "nonempty", "not-ads":
		default:
			return fmt.Errorf("config: unknown checker %q", ch)
		}
	}
	for _, cn := range c.Connectors {
		switch cn {
		case "graph", "log", "relational":
		default:
			return fmt.Errorf("config: unknown connector %q", cn)
		}
	}
	if c.NER.TrainDocs <= 0 {
		c.NER.TrainDocs = 120
	}
	return nil
}
