package server

import (
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"securitykg/internal/metrics"
)

// Observability surface: GET /metrics (Prometheus text exposition),
// the enriched /healthz fields, and slow-query logging.
//
// Counters live on the metrics package's process-wide registry — they
// count events, and events from every instance in the process belong in
// one stream. Point-in-time gauges (store sizes, MVCC overlay sizes,
// plan-cache entries, replication lag) are registered on a per-server
// registry instead, because one process can host both a leader and a
// follower (tests do) and their gauges must not collide. A scrape
// renders both, process-wide first.

// registerInstanceGauges wires this server's point-in-time gauges. The
// callbacks run per scrape; each is O(labels) or cheaper.
func (s *Server) registerInstanceGauges() {
	s.reg.GaugeFunc("skg_store_nodes",
		"Live nodes in this instance's store.",
		func() float64 { return float64(s.store.Stats().Nodes) })
	s.reg.GaugeFunc("skg_store_edges",
		"Live edges in this instance's store.",
		func() float64 { return float64(s.store.Stats().Edges) })
	s.reg.GaugeFunc("skg_store_stats_version",
		"Planner statistics version (bumps invalidate cached plans).",
		func() float64 { return float64(s.store.StatsVersion()) })
	s.reg.GaugeFunc("skg_mvcc_open_snapshots",
		"Open MVCC snapshots pinning history.",
		func() float64 { return float64(s.store.MVCCStats().Snapshots) })
	s.reg.GaugeFunc("skg_mvcc_node_versions",
		"Superseded node versions retained for open snapshots.",
		func() float64 { return float64(s.store.MVCCStats().NodeVersions) })
	s.reg.GaugeFunc("skg_mvcc_edge_versions",
		"Superseded edge versions retained for open snapshots.",
		func() float64 { return float64(s.store.MVCCStats().EdgeVersions) })
	s.reg.GaugeFunc("skg_plan_cache_entries",
		"Plans held by this store's shared plan cache.",
		func() float64 { return float64(s.eng.PlanCacheStats().Entries) })
	s.reg.GaugeFunc("skg_ingest_inflight_bytes",
		"Request-body bytes of write statements currently executing.",
		func() float64 { return float64(s.writeInflight.Load()) })
	s.reg.GaugeFunc("skg_uptime_seconds",
		"Seconds since this server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })
}

// handleMetrics serves the Prometheus text exposition: process-wide
// counters and histograms first, then this instance's gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.Render(w)
	s.reg.Render(w)
}

// Metrics renders the full exposition this server's /metrics endpoint
// serves (process-wide + instance), for embedding callers.
func (s *Server) Metrics() string {
	return metrics.String() + s.reg.String()
}

var buildVersion = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "(devel)"
})

// healthInfo contributes the build/uptime/stats fields to /healthz.
func (s *Server) healthInfo(out map[string]any) {
	out["uptime_s"] = int64(time.Since(s.started).Seconds())
	out["go_version"] = runtime.Version()
	out["version"] = buildVersion()
	out["stats_version"] = s.store.StatsVersion()
}

// SetSlowQueryLog enables slow-statement logging: any /api/cypher
// statement (plain or streamed) running at least threshold is logged
// with its kind, duration, row count, byte-budget usage, and statement
// text. The text is safe to log — values bind through $params, which
// are never echoed; only the placeholder names appear. A zero or
// negative threshold disables logging. Call before serving.
func (s *Server) SetSlowQueryLog(threshold time.Duration, lg *log.Logger) {
	if lg == nil {
		lg = log.Default()
	}
	s.slowLog = lg
	s.slowNs.Store(int64(threshold))
}

// noteSlow logs one finished statement if it crossed the slow
// threshold. Parameter values are deliberately absent: query texts
// reference them as $name only.
func (s *Server) noteSlow(query string, kind string, began time.Time, rows int, budget int64) {
	th := s.slowNs.Load()
	if th <= 0 {
		return
	}
	elapsed := time.Since(began)
	if elapsed < time.Duration(th) {
		return
	}
	s.slowLog.Printf("slow query: kind=%s duration=%s rows=%d budget_bytes=%d stmt=%q",
		kind, elapsed.Round(time.Microsecond), rows, budget, query)
}

// statementKind labels a finished result for the slow log.
func statementKind(writes bool) string {
	if writes {
		return "write"
	}
	return "read"
}
