package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"time"

	"securitykg/internal/cypher"
)

// Transaction sessions: a BEGIN statement on /api/cypher opens an
// explicit multi-statement transaction and returns an opaque token;
// subsequent requests carrying {"tx": token} run inside it until COMMIT
// or ROLLBACK. Sessions idle past txSessionIdle are rolled back and
// reaped (a client that went away must not hold the store's writer lock
// forever), and at most txSessionMax may be open at once.

const (
	txSessionIdle = 5 * time.Minute
	txSessionMax  = 32
)

// txSession is one open transaction bound to a token. mu serializes
// requests on the same token (a cypher.Tx is single-goroutine).
type txSession struct {
	mu   sync.Mutex
	tx   *cypher.Tx
	last time.Time
}

// beginTxSession opens a transaction and registers it under a fresh
// random token.
func (s *Server) beginTxSession() (string, error) {
	s.txMu.Lock()
	defer s.txMu.Unlock()
	s.sweepTxLocked(time.Now())
	if len(s.txs) >= txSessionMax {
		return "", fmt.Errorf("too many open transactions (%d); COMMIT or ROLLBACK one first", len(s.txs))
	}
	tx, err := s.eng.Begin()
	if err != nil {
		return "", err
	}
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		tx.Rollback()
		return "", err
	}
	token := hex.EncodeToString(buf[:])
	if s.txs == nil {
		s.txs = map[string]*txSession{}
	}
	s.txs[token] = &txSession{tx: tx, last: time.Now()}
	return token, nil
}

// lookupTx resolves a token (sweeping expired sessions on the way).
func (s *Server) lookupTx(token string) *txSession {
	s.txMu.Lock()
	defer s.txMu.Unlock()
	s.sweepTxLocked(time.Now())
	return s.txs[token]
}

// dropTx removes a finished session.
func (s *Server) dropTx(token string) {
	s.txMu.Lock()
	defer s.txMu.Unlock()
	delete(s.txs, token)
}

// sweepTxLocked rolls back and reaps sessions idle past txSessionIdle.
// A session currently executing a request (mu held) is skipped — its
// last-use time refreshes when the request finishes.
//
// The TryLock comes FIRST: sess.last is written by the request path
// under sess.mu (not txMu), so judging idleness before acquiring
// sess.mu is a data race — and a session whose statement is still
// executing (a long streaming drain included) could be reaped off a
// stale timestamp it was about to refresh. Busy is never idle, however
// old the last-use time reads.
func (s *Server) sweepTxLocked(now time.Time) {
	for token, sess := range s.txs {
		if !sess.mu.TryLock() {
			continue // a statement is executing right now
		}
		if now.Sub(sess.last) < txSessionIdle {
			sess.mu.Unlock()
			continue
		}
		sess.tx.Rollback() // aborted/finished rollbacks are no-ops or errors we don't care about
		sess.mu.Unlock()
		delete(s.txs, token)
	}
}

// txCypher executes one request inside an open transaction session.
func (s *Server) txCypher(w http.ResponseWriter, r *http.Request, req *cypherRequest, op cypher.TxOp) {
	sess := s.lookupTx(req.Tx)
	if sess == nil {
		httpErr(w, http.StatusBadRequest, "unknown or expired transaction %q", req.Tx)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	defer func() { sess.last = time.Now() }()
	if req.Stream && op == cypher.TxNone {
		rows, err := sess.tx.QueryRows(req.Query, req.Params)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.streamRows(w, r, rows, false)
		return
	}
	res, err := sess.tx.Query(req.Query, req.Params)
	if sess.tx.Done() {
		s.dropTx(req.Tx)
	}
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// COMMIT is the moment the transaction's writes reach the WAL, so
	// its response (not the in-tx write statements') carries the
	// read-your-writes token.
	s.writeCypherResult(w, res, op == cypher.TxCommit)
}
