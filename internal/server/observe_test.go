package server

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseExposition validates Prometheus text format 0.0.4 structurally —
// every sample line parses as `name[{labels}] value`, every family is
// declared with # HELP and # TYPE before its first sample — and returns
// the samples keyed by their full name (labels included) plus the
// declared family types.
func parseExposition(t *testing.T, body string) (map[string]float64, map[string]string) {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	var lastHelp string
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(f) < 2 || f[1] == "" {
				t.Fatalf("HELP line without text: %q", line)
			}
			lastHelp = f[0]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(f) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if f[0] != lastHelp {
				t.Fatalf("TYPE %s not preceded by its HELP (last HELP %s)", f[0], lastHelp)
			}
			switch f[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			types[f[0]] = f[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		family := name
		if i := strings.IndexByte(family, '{'); i >= 0 {
			if !strings.HasSuffix(family, "}") {
				t.Fatalf("unbalanced label braces: %q", line)
			}
			family = family[:i]
		}
		// Histogram children sample under the family name + suffix.
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(family, "_bucket"), "_sum"), "_count")
		if _, ok := types[family]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("sample %q has no TYPE declaration", line)
			}
		}
		samples[name] = v
	}
	return samples, types
}

func scrape(t *testing.T, s *Server) (map[string]float64, map[string]string) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	res := rec.Result()
	if res.StatusCode != 200 {
		t.Fatalf("/metrics: %v", res.Status)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("wrong content type %q", ct)
	}
	return parseExposition(t, rec.Body.String())
}

func postCy(t *testing.T, s *Server, body map[string]any) map[string]any {
	t.Helper()
	b, _ := json.Marshal(body)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(b)))
	if rec.Code != 200 {
		t.Fatalf("cypher %v: %v %s", body, rec.Code, rec.Body.String())
	}
	var out map[string]any
	json.NewDecoder(rec.Body).Decode(&out)
	return out
}

// TestMetricsEndpoint scrapes /metrics on a standalone server around
// real traffic: valid exposition, the advertised families present, and
// every counter monotonically non-decreasing across work.
func TestMetricsEndpoint(t *testing.T) {
	s, store, _ := testServer(t)

	before, types := scrape(t, s)
	// WAL and replication families only exist when those packages are
	// linked into the process; the replication e2e metrics test covers
	// them on a real leader/follower pair.
	for _, fam := range []string{
		"skg_query_seconds", "skg_query_rows",
		"skg_plan_cache_hits_total", "skg_plan_cache_misses_total",
		"skg_query_budget_aborts_total",
		"skg_mvcc_snapshots_opened_total",
		"skg_tx_begin_total", "skg_tx_commit_total", "skg_tx_rollback_total",
		"skg_cardinality_drift_total",
		"skg_store_nodes", "skg_store_edges", "skg_store_stats_version",
		"skg_mvcc_open_snapshots", "skg_plan_cache_entries", "skg_uptime_seconds",
	} {
		if _, ok := types[fam]; !ok {
			t.Errorf("family %s missing from scrape", fam)
		}
	}
	if types["skg_query_seconds"] != "histogram" {
		t.Errorf("skg_query_seconds type = %s, want histogram", types["skg_query_seconds"])
	}
	if got := before["skg_store_nodes"]; got != float64(store.Stats().Nodes) {
		t.Errorf("skg_store_nodes = %v, want %d", got, store.Stats().Nodes)
	}

	// Traffic: reads (twice, so the second hits the plan cache), one
	// write, one statement through a transaction session.
	for i := 0; i < 2; i++ {
		postCy(t, s, map[string]any{
			"query":  `match (m:Malware {name: $n}) return m.name`,
			"params": map[string]any{"n": "wannacry"}})
	}
	postCy(t, s, map[string]any{"query": `create (x:IP {name: "1.2.3.4"})`})
	tx := postCy(t, s, map[string]any{"query": "BEGIN"})
	postCy(t, s, map[string]any{"tx": tx["tx"], "query": `create (x:IP {name: "5.6.7.8"})`})
	postCy(t, s, map[string]any{"tx": tx["tx"], "query": "COMMIT"})

	after, _ := scrape(t, s)
	for name, v := range before {
		fam := name
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(fam, "_bucket"), "_sum"), "_count")
		if types[base] == "gauge" || types[fam] == "gauge" {
			continue // gauges may move either way
		}
		if after[name] < v {
			t.Errorf("counter %s went backwards: %v -> %v", name, v, after[name])
		}
	}
	if after[`skg_query_seconds_count{kind="read"}`] < before[`skg_query_seconds_count{kind="read"}`]+2 {
		t.Errorf("read latency histogram did not record the reads: %v -> %v",
			before[`skg_query_seconds_count{kind="read"}`], after[`skg_query_seconds_count{kind="read"}`])
	}
	if after["skg_plan_cache_hits_total"] <= before["skg_plan_cache_hits_total"] {
		t.Errorf("repeated statement did not count a plan-cache hit")
	}
	if after["skg_tx_commit_total"] <= before["skg_tx_commit_total"] {
		t.Errorf("transaction commit not counted")
	}
	if got := after["skg_store_nodes"]; got != float64(store.Stats().Nodes) {
		t.Errorf("post-write skg_store_nodes = %v, want %d", got, store.Stats().Nodes)
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	s, _, _ := testServer(t)
	var out map[string]any
	res := get(t, s, "/healthz", &out)
	if res.StatusCode != 200 {
		t.Fatalf("healthz: %v", res.Status)
	}
	for _, k := range []string{"uptime_s", "go_version", "version", "stats_version"} {
		if _, ok := out[k]; !ok {
			t.Errorf("healthz missing %q: %v", k, out)
		}
	}
	if gv, _ := out["go_version"].(string); !strings.HasPrefix(gv, "go") {
		t.Errorf("go_version = %v", out["go_version"])
	}
}

// TestSlowQueryLog pins the slow log's contract: kind, duration, rows
// and budget appear; bound parameter values never do.
func TestSlowQueryLog(t *testing.T) {
	s, _, _ := testServer(t)
	var buf bytes.Buffer
	s.SetSlowQueryLog(time.Nanosecond, log.New(&buf, "", 0))

	postCy(t, s, map[string]any{
		"query":  `match (m:Malware {name: $ioc}) where m.name <> $decoy return m.name`,
		"params": map[string]any{"ioc": "wannacry", "decoy": "hunted-secret-binding"}})
	line := buf.String()
	if line == "" {
		t.Fatal("1ns threshold logged nothing")
	}
	for _, want := range []string{"slow query:", "kind=read", "duration=", "rows=1", "budget_bytes=", "$ioc", "$decoy"} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log line missing %q: %s", want, line)
		}
	}
	if strings.Contains(line, "hunted-secret-binding") {
		t.Fatalf("slow log leaked a parameter value: %s", line)
	}

	// The streaming path logs too, with its row count.
	buf.Reset()
	b, _ := json.Marshal(map[string]any{"query": `match (m:Malware) return m.name`, "stream": true})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(b)))
	if !strings.Contains(buf.String(), "kind=read") || !strings.Contains(buf.String(), "rows=") {
		t.Errorf("stream path not logged: %q", buf.String())
	}

	// Disabled again: silent.
	s.SetSlowQueryLog(0, log.New(&buf, "", 0))
	buf.Reset()
	postCy(t, s, map[string]any{"query": `match (m:Malware) return m.name`})
	if buf.Len() != 0 {
		t.Errorf("disabled slow log still wrote: %q", buf.String())
	}
}
