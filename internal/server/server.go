// Package server exposes the exploration API the paper's web UI consumes:
// keyword search (Elasticsearch role), Cypher queries (Neo4j role),
// node detail, neighbor expansion and collapse, random subgraphs, view
// history (the UI's back button), and Barnes-Hut layout positions for
// every returned subgraph.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"securitykg/internal/cypher"
	"securitykg/internal/graph"
	"securitykg/internal/layout"
	"securitykg/internal/metrics"
	"securitykg/internal/search"
)

// Server wires the exploration endpoints over a graph store and a search
// index.
type Server struct {
	store *graph.Store
	index *search.Index
	eng   *cypher.Engine
	mux   *http.ServeMux

	mu      sync.Mutex
	history []*ViewGraph // view stack for the back button

	txMu sync.Mutex            // guards txs (session.go)
	txs  map[string]*txSession // open transaction sessions by token

	repl Replication // replication role wiring (standalone when zero)

	started time.Time         // for /healthz uptime and the uptime gauge
	reg     *metrics.Registry // per-instance gauges; /metrics renders std + this
	slowNs  atomic.Int64      // slow-query threshold in ns, 0 = disabled
	slowLog *log.Logger       // destination for slow-query lines (observe.go)

	// Ingest backpressure: writeInflight tracks the request-body bytes
	// of write statements currently executing; writeLimit bounds them
	// (0 = unbounded). A write arriving over the bound is shed with 429
	// + Retry-After instead of queueing without limit on the store's
	// single writer — overload answers fast and cheap, and the client's
	// retry loop becomes the queue.
	writeLimit    atomic.Int64
	writeInflight atomic.Int64
}

// defaultIngestLimit bounds in-flight write bytes unless overridden
// with SetIngestLimit: generous for interactive use, small enough that
// a misbehaving bulk loader cannot buffer the heap away.
const defaultIngestLimit = 32 << 20

var mIngestRejected = metrics.NewCounter("skg_ingest_backpressure_total",
	"Write requests rejected with 429 because in-flight write bytes exceeded the ingest limit.")

// Replication tells the server its place in a replicated deployment.
// The zero value is a standalone server: reads are always current,
// writes are governed only by the engine's ReadOnly option, and
// responses carry no sequence numbers.
type Replication struct {
	// Role is "primary", "replica", or "" (standalone). On a replica,
	// write statements and BEGIN get an HTTP 421 {"code":"not_leader"}
	// response naming LeaderURL instead of the engine's read-only error.
	Role      string
	LeaderURL string

	// Seq returns the committed (primary) or applied (replica) WAL
	// sequence number. When set, write responses carry {"seq": n} — the
	// read-your-writes token a client passes back as min_seq.
	Seq func() uint64

	// WaitSeq blocks until local reads observe at least seq. Set on
	// replicas (the primary's reads are always current); a min_seq
	// read waits through it, bounded by MaxWait, before executing.
	WaitSeq func(ctx context.Context, seq uint64) error

	// MaxWait bounds a min_seq read's wait (default 5s). Clients may
	// shorten it per-request with wait_ms.
	MaxWait time.Duration

	// Health contributes extra fields to /healthz (data-dir lock
	// status, durability errors, applied seq) — whatever the process
	// wiring knows that the server core does not.
	Health func() map[string]any

	// Lag returns this node's replication lag in records (0 on a
	// primary). When set, /metrics exports it as
	// skg_replication_lag_records.
	Lag func() int64
}

// SetReplication wires the server's replication role. Call before
// serving; the configuration is read, not copied, by handlers. When the
// role carries Seq/Lag callbacks, the matching per-instance gauges are
// registered so /metrics covers replication position and lag.
func (s *Server) SetReplication(cfg Replication) {
	s.repl = cfg
	if cfg.Seq != nil {
		s.reg.GaugeFunc("skg_replication_seq",
			"Committed (primary) or applied (replica) WAL sequence number.",
			func() float64 { return float64(cfg.Seq()) })
	}
	if cfg.Lag != nil {
		s.reg.GaugeFunc("skg_replication_lag_records",
			"Records this replica trails the leader by (0 on a primary).",
			func() float64 { return float64(cfg.Lag()) })
	}
}

// New builds the server with the default query options.
func New(store *graph.Store, index *search.Index) *Server {
	return NewWith(store, index, cypher.DefaultOptions())
}

// NewWith builds the server with explicit query options (row caps,
// index toggles), so deployments can tune the Cypher safety valve.
func NewWith(store *graph.Store, index *search.Index, opts cypher.Options) *Server {
	s := &Server{
		store:   store,
		index:   index,
		eng:     cypher.NewEngine(store, opts),
		mux:     http.NewServeMux(),
		started: time.Now(),
		reg:     metrics.NewRegistry(),
	}
	s.writeLimit.Store(defaultIngestLimit)
	s.registerInstanceGauges()
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/search", s.handleSearch)
	s.mux.HandleFunc("/api/cypher", s.handleCypher)
	s.mux.HandleFunc("/api/node", s.handleNode)
	s.mux.HandleFunc("/api/expand", s.handleExpand)
	s.mux.HandleFunc("/api/collapse", s.handleCollapse)
	s.mux.HandleFunc("/api/random", s.handleRandom)
	s.mux.HandleFunc("/api/back", s.handleBack)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// handleHealthz is the liveness/role probe: cheap, dependency-free,
// and safe to poll. Role and sequence numbers come from the
// replication wiring; process-level facts (data-dir lock, durability
// errors) are merged in from Replication.Health.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"status": "ok",
		"role":   s.repl.Role,
	}
	if out["role"] == "" {
		out["role"] = "standalone"
	}
	s.healthInfo(out)
	if s.repl.Seq != nil {
		out["seq"] = s.repl.Seq()
	}
	if s.repl.Health != nil {
		for k, v := range s.repl.Health() {
			out[k] = v
		}
	}
	writeJSON(w, out)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ViewGraph is a subgraph plus layout positions, the unit the UI renders.
type ViewGraph struct {
	Nodes []ViewNode    `json:"nodes"`
	Edges []*graph.Edge `json:"edges"`
}

// ViewNode is a node with its layout position and display color group.
type ViewNode struct {
	*graph.Node
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Color string  `json:"color"`
}

// colorFor groups node types into display colors (the UI colors nodes by
// type).
func colorFor(typ string) string {
	switch {
	case strings.HasSuffix(typ, "Report"):
		return "blue"
	case typ == "CTIVendor":
		return "gray"
	case typ == "Malware" || typ == "MalwareFamily":
		return "red"
	case typ == "ThreatActor":
		return "purple"
	case typ == "Technique" || typ == "Tool":
		return "orange"
	case typ == "Vulnerability":
		return "brown"
	}
	return "green" // IOCs and the rest
}

// Layout positions a subgraph with Barnes-Hut and wraps it as a ViewGraph.
func Layout(sg *graph.Subgraph, seed int64) *ViewGraph {
	idx := make(map[graph.NodeID]int, len(sg.Nodes))
	for i, n := range sg.Nodes {
		idx[n.ID] = i
	}
	lg := layout.Graph{N: len(sg.Nodes)}
	for _, e := range sg.Edges {
		lg.Edges = append(lg.Edges, [2]int{idx[e.From], idx[e.To]})
	}
	eng := layout.NewEngine(lg, layout.Config{}, seed)
	eng.Run(300, 0.01)
	vg := &ViewGraph{Edges: sg.Edges}
	for i, n := range sg.Nodes {
		vg.Nodes = append(vg.Nodes, ViewNode{
			Node: n, X: eng.Pos[i].X, Y: eng.Pos[i].Y, Color: colorFor(n.Type),
		})
	}
	return vg
}

func (s *Server) pushHistory(vg *ViewGraph) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.history = append(s.history, vg)
	if len(s.history) > 50 {
		s.history = s.history[1:]
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// notLeader rejects a write on a replica with a typed redirect: HTTP
// 421 (Misdirected Request) and the leader's URL, so a client library
// can transparently re-issue against the leader.
func (s *Server) notLeader(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusMisdirectedRequest)
	json.NewEncoder(w).Encode(map[string]string{
		"error":  "this node is a read-only replica; send writes to the leader",
		"code":   "not_leader",
		"leader": s.repl.LeaderURL,
	})
}

// isReplica reports whether writes should be redirected to a leader.
func (s *Server) isReplica() bool { return s.repl.Role == "replica" }

// SetIngestLimit bounds the total request-body bytes of write
// statements executing at once; writes arriving over the bound answer
// 429 with Retry-After until in-flight work drains. n <= 0 removes the
// bound. Call before serving.
func (s *Server) SetIngestLimit(n int64) {
	if n < 0 {
		n = 0
	}
	s.writeLimit.Store(n)
}

// looksLikeWrite is the cheap ingest-classification heuristic the
// backpressure gate runs before parsing: any statement that could
// mutate (UNWIND batch ingest included) counts against the in-flight
// write budget for its duration. A false positive costs a read a brief
// reservation; a false negative is impossible — the grammar requires
// one of these keywords for every mutating statement.
func looksLikeWrite(q string) bool {
	lq := strings.ToLower(q)
	for _, kw := range []string{"create", "merge", "delete", "set", "unwind"} {
		if strings.Contains(lq, kw) {
			return true
		}
	}
	return false
}

// acquireIngest reserves n in-flight write bytes, or sheds the request
// with 429 + Retry-After when the reservation would exceed the limit.
// A single request larger than the whole limit is admitted when it is
// alone — it could never run otherwise. Returns false when the
// response has been written.
func (s *Server) acquireIngest(w http.ResponseWriter, n int64) bool {
	limit := s.writeLimit.Load()
	cur := s.writeInflight.Add(n)
	if limit > 0 && cur > limit && cur != n {
		s.writeInflight.Add(-n)
		mIngestRejected.Inc()
		w.Header().Set("Retry-After", "1")
		httpErr(w, http.StatusTooManyRequests,
			"ingest backpressure: %d bytes of writes already in flight (limit %d); retry shortly", cur-n, limit)
		return false
	}
	return true
}

func (s *Server) releaseIngest(n int64) { s.writeInflight.Add(-n) }

// awaitSeq enforces the read-your-writes token: when minSeq is nonzero
// and this node's reads can lag (a replica), block until the local
// store has applied at least minSeq. The wait is bounded — MaxWait by
// default, shortened per-request with wait_ms — and a timeout answers
// 504 so the client can retry or fall back to the leader. Returns
// false when the response has been written.
func (s *Server) awaitSeq(w http.ResponseWriter, r *http.Request, minSeq uint64) bool {
	if minSeq == 0 || s.repl.WaitSeq == nil {
		return true
	}
	wait := s.repl.MaxWait
	if wait <= 0 {
		wait = 5 * time.Second
	}
	if ms := intParam(r, "wait_ms", 0); ms > 0 && time.Duration(ms)*time.Millisecond < wait {
		wait = time.Duration(ms) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	if err := s.repl.WaitSeq(ctx, minSeq); err != nil {
		httpErr(w, http.StatusGatewayTimeout,
			"replica has not caught up to seq %d within %v (applied %d)", minSeq, wait, s.appliedSeq())
		return false
	}
	return true
}

func (s *Server) appliedSeq() uint64 {
	if s.repl.Seq == nil {
		return 0
	}
	return s.repl.Seq()
}

// minSeqParam reads the min_seq read-your-writes token off the query
// string (all read endpoints accept it).
func minSeqParam(r *http.Request) uint64 {
	v := r.URL.Query().Get("min_seq")
	if v == "" {
		return 0
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !s.awaitSeq(w, r, minSeqParam(r)) {
		return
	}
	writeJSON(w, s.store.Stats())
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if !s.awaitSeq(w, r, minSeqParam(r)) {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		httpErr(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	k := intParam(r, "k", 10)
	hits := s.index.Search(q, k)
	type hitOut struct {
		ID    string  `json:"id"`
		Score float64 `json:"score"`
	}
	out := make([]hitOut, 0, len(hits))
	for _, h := range hits {
		out = append(out, hitOut{ID: h.ID, Score: h.Score})
	}
	writeJSON(w, out)
}

// cypherRequest is the /api/cypher request body.
type cypherRequest struct {
	Query   string         `json:"query"`
	Params  map[string]any `json:"params"`
	Explain bool           `json:"explain"` // render the plan instead of executing
	Stream  bool           `json:"stream"`  // NDJSON row-by-row response
	Tx      string         `json:"tx"`      // transaction token (session.go)
	MinSeq  uint64         `json:"min_seq"` // read-your-writes token: wait for this seq on a replica
}

// handleCypher executes a Cypher statement POSTed as JSON:
//
//	{"query": "match (m {name: $ioc})-[r]-(x) return x.name",
//	 "params": {"ioc": "wannacry"}}
//
// Values bind via "params" instead of being spliced into the query
// text, so one cached plan serves every binding and IOC strings never
// need escaping. Write statements (CREATE/MERGE/SET/DELETE) are
// accepted; their response carries a "writes" counter object, and when
// the server runs over a durable store every mutation is write-ahead
// logged before the response. {"explain": true} renders the plan;
// {"stream": true} switches the response to NDJSON (one JSON object per
// line: a columns header, then {"row": [...]} per result row as it is
// matched, then a {"done": n} trailer with the write counters when the
// statement wrote — or {"error": ...} if the stream fails mid-way).
//
// Transactions: {"query": "BEGIN"} opens a session and returns
// {"tx": "<token>"}; subsequent requests carrying that token run inside
// the transaction (consistent snapshot + own writes, nothing visible to
// others until COMMIT). COMMIT / ROLLBACK with the token end it; idle
// sessions expire after a few minutes (session.go).
func (s *Server) handleCypher(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "read request body: %v", err)
		return
	}
	var req cypherRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Ingest backpressure: write-shaped statements reserve their body
	// size against the in-flight write budget for the whole request —
	// batch application and streaming drain included (the deferred
	// release runs after the handler's streaming paths return). Replicas
	// skip the gate; their writes are redirected, not executed.
	if !s.isReplica() && !req.Explain && looksLikeWrite(req.Query) {
		n := int64(len(body))
		if !s.acquireIngest(w, n) {
			return
		}
		defer s.releaseIngest(n)
	}
	if !s.awaitSeq(w, r, req.MinSeq) {
		return
	}
	if req.Explain {
		plan, err := s.eng.Explain(req.Query)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, map[string]string{"plan": plan})
		return
	}
	op, err := cypher.TxOpOf(req.Query)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Tx == "" {
		switch op {
		case cypher.TxBegin:
			if s.isReplica() {
				// A transaction session exists to write; a replica
				// cannot accept one, so redirect before a token is
				// minted and a writer slot consumed.
				s.notLeader(w)
				return
			}
			token, err := s.beginTxSession()
			if err != nil {
				httpErr(w, http.StatusServiceUnavailable, "%v", err)
				return
			}
			writeJSON(w, map[string]string{"tx": token})
			return
		case cypher.TxCommit, cypher.TxRollback:
			httpErr(w, http.StatusBadRequest, "no open transaction — BEGIN first and pass its tx token")
			return
		}
	} else {
		s.txCypher(w, r, &req, op)
		return
	}
	if req.Stream {
		s.streamCypher(w, r, req.Query, req.Params)
		return
	}
	began := time.Now()
	res, err := s.eng.Query(req.Query, req.Params)
	if err != nil {
		s.cypherErr(w, err)
		return
	}
	s.noteSlow(req.Query, statementKind(res.Writes != nil), began, len(res.Rows), res.BudgetUsed)
	s.writeCypherResult(w, res, res.Writes != nil)
}

// cypherErr maps an engine error onto the transport: a read-only
// rejection on a replica becomes the not_leader redirect, everything
// else a 400.
func (s *Server) cypherErr(w http.ResponseWriter, err error) {
	if s.isReplica() && errors.Is(err, cypher.ErrReadOnly) {
		s.notLeader(w)
		return
	}
	httpErr(w, http.StatusBadRequest, "%v", err)
}

// writeCypherResult renders a materialized result for transport, rows
// as strings. (An "EXPLAIN match ..." statement flows through here too,
// returning plan lines as rows.) When committed is true and the server
// knows its WAL position, the response carries {"seq": n} — the
// read-your-writes token a client passes as min_seq on later reads
// (possibly against a replica) to be guaranteed to see this write.
func (s *Server) writeCypherResult(w http.ResponseWriter, res *cypher.Result, committed bool) {
	out := struct {
		Columns   []string           `json:"columns"`
		Rows      [][]string         `json:"rows"`
		Truncated bool               `json:"truncated,omitempty"`
		Writes    *cypher.WriteStats `json:"writes,omitempty"`
		Seq       uint64             `json:"seq,omitempty"`
	}{Columns: res.Columns, Truncated: res.Truncated, Writes: res.Writes}
	if committed && s.repl.Seq != nil {
		out.Seq = s.repl.Seq()
	}
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		out.Rows = append(out.Rows, cells)
	}
	writeJSON(w, out)
}

// streamCypher writes the result as NDJSON, flushing after every row so
// a hunting client sees matches as the executor produces them. Rows are
// not capped by MaxRows here — the cursor streams until exhaustion, an
// error (e.g. the byte budget), or the client going away: a failed
// write or a canceled request context closes the cursor, which stops
// all remaining pattern matching.
func (s *Server) streamCypher(w http.ResponseWriter, r *http.Request, query string, params map[string]any) {
	began := time.Now()
	rows, err := s.eng.QueryRows(query, params)
	if err != nil {
		s.cypherErr(w, err)
		return
	}
	n := s.streamRows(w, r, rows, true)
	s.noteSlow(query, statementKind(rows.Writes() != nil), began, n, rows.BudgetUsed())
}

// streamRows drains a cursor as NDJSON (shared by the plain and
// transaction-session streaming paths), returning the number of rows
// written (for the slow-query log). seqOnWrites attaches the
// read-your-writes token to the done-trailer of a writing statement;
// the transaction path passes false because in-tx writes only become
// visible (and WAL-logged) at COMMIT.
func (s *Server) streamRows(w http.ResponseWriter, r *http.Request, rows *cypher.Rows, seqOnWrites bool) int {
	defer rows.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	if err := enc.Encode(map[string]any{"columns": rows.Columns()}); err != nil {
		return 0
	}
	if flusher != nil {
		flusher.Flush()
	}
	done := r.Context().Done()
	n := 0
	for rows.Next() {
		select {
		case <-done:
			return n
		default:
		}
		vals := rows.Row()
		cells := make([]string, len(vals))
		for i, v := range vals {
			cells[i] = v.String()
		}
		if err := enc.Encode(map[string]any{"row": cells}); err != nil {
			return n
		}
		if flusher != nil {
			flusher.Flush()
		}
		n++
	}
	if err := rows.Err(); err != nil {
		enc.Encode(map[string]any{"error": err.Error()})
		return n
	}
	trailer := map[string]any{"done": n}
	if ws := rows.Writes(); ws != nil {
		trailer["writes"] = ws
		if seqOnWrites && s.repl.Seq != nil {
			trailer["seq"] = s.repl.Seq()
		}
	}
	enc.Encode(trailer)
	return n
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	if !s.awaitSeq(w, r, minSeqParam(r)) {
		return
	}
	id, err := nodeIDParam(r, "id")
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	n := s.store.Node(id)
	if n == nil {
		httpErr(w, http.StatusNotFound, "node %d not found", id)
		return
	}
	// Detailed info on hover: node plus its incident edge summary.
	type out struct {
		Node      *graph.Node   `json:"node"`
		Degree    int           `json:"degree"`
		Neighbors []*graph.Node `json:"neighbors"`
	}
	nbs := s.store.Neighbors(id, graph.Both)
	writeJSON(w, out{Node: n, Degree: len(s.store.Edges(id, graph.Both)), Neighbors: nbs})
}

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	if !s.awaitSeq(w, r, minSeqParam(r)) {
		return
	}
	id, err := nodeIDParam(r, "id")
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.store.Node(id) == nil {
		httpErr(w, http.StatusNotFound, "node %d not found", id)
		return
	}
	depth := intParam(r, "depth", 1)
	maxNb := intParam(r, "neighbors", 25)
	maxNodes := intParam(r, "nodes", 100)
	sg := s.store.ExpandFrom([]graph.NodeID{id}, depth, maxNb, maxNodes)
	vg := Layout(sg, int64(id))
	s.pushHistory(vg)
	writeJSON(w, vg)
}

func (s *Server) handleCollapse(w http.ResponseWriter, r *http.Request) {
	if !s.awaitSeq(w, r, minSeqParam(r)) {
		return
	}
	id, err := nodeIDParam(r, "id")
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	view, err := idListParam(r, "view")
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	anchors, err := idListParam(r, "anchors")
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	hidden := s.store.CollapseFrom(id, view, anchors)
	writeJSON(w, map[string]any{"hidden": hidden})
}

func (s *Server) handleRandom(w http.ResponseWriter, r *http.Request) {
	if !s.awaitSeq(w, r, minSeqParam(r)) {
		return
	}
	n := intParam(r, "n", 20)
	seed := int64(intParam(r, "seed", 1))
	sg := s.store.RandomSubgraph(seed, n)
	vg := Layout(sg, seed)
	s.pushHistory(vg)
	writeJSON(w, vg)
}

func (s *Server) handleBack(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.history) < 2 {
		httpErr(w, http.StatusNotFound, "no earlier view")
		return
	}
	s.history = s.history[:len(s.history)-1]
	writeJSON(w, s.history[len(s.history)-1])
}

func intParam(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

func nodeIDParam(r *http.Request, name string) (graph.NodeID, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing %s parameter", name)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s parameter: %v", name, err)
	}
	return graph.NodeID(n), nil
}

func idListParam(r *http.Request, name string) ([]graph.NodeID, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return nil, nil
	}
	parts := strings.Split(v, ",")
	out := make([]graph.NodeID, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q", name, p)
		}
		out = append(out, graph.NodeID(n))
	}
	return out, nil
}
