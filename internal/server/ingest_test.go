package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestIngestBackpressure: once the in-flight write-byte budget is
// exceeded, further write statements answer 429 with a Retry-After
// header; reads pass untouched; a single oversized request is admitted
// when it is alone (a limit must never deadlock a client whose one
// batch is bigger than the budget); and capacity frees when requests
// finish.
func TestIngestBackpressure(t *testing.T) {
	s, _, _ := testServer(t)
	s.SetIngestLimit(64)

	// Fake another write mid-flight so the budget is already consumed.
	s.writeInflight.Add(60)

	body, _ := json.Marshal(map[string]any{
		"query": `create (m:Malware {name: "pushed-back-far-enough-to-cross-64-bytes"})`,
	})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded write: status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	// Reads are never gated.
	readBody, _ := json.Marshal(map[string]any{"query": `match (m:Malware) return m.name`})
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(readBody)))
	if rec.Code != http.StatusOK {
		t.Fatalf("read under backpressure: status %d: %s", rec.Code, rec.Body.String())
	}

	// Budget frees: drop the fake in-flight bytes and the same write goes
	// through even though its body alone exceeds the 64-byte limit —
	// oversized-when-alone is admitted.
	s.writeInflight.Add(-60)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("write after drain: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := s.writeInflight.Load(); got != 0 {
		t.Errorf("writeInflight = %d after completion, want 0", got)
	}

	// Limit 0 disables the gate entirely.
	s.SetIngestLimit(0)
	s.writeInflight.Add(1 << 30)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("write with limit disabled: status %d: %s", rec.Code, rec.Body.String())
	}
	s.writeInflight.Add(-(1 << 30))
}

// TestSweepSkipsExecutingSession is the regression test for the
// sweep-vs-long-statement race: a transaction session whose statement
// is STILL EXECUTING past txSessionIdle (a long streaming drain) must
// never be reaped, however stale its last-use stamp reads — the sweep
// must TryLock before judging idleness, because sess.last is written
// under sess.mu and a mid-statement session is about to refresh it.
func TestSweepSkipsExecutingSession(t *testing.T) {
	s, _, _ := testServer(t)
	tok, err := s.beginTxSession()
	if err != nil {
		t.Fatal(err)
	}
	sess := s.lookupTx(tok)

	// Put the session in exactly the state a long-running statement has:
	// mu held for the statement's duration, last-use stamp older than
	// the idle deadline (it was set when the PREVIOUS statement ended).
	sess.mu.Lock()
	sess.last = time.Now().Add(-2 * txSessionIdle)

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.txMu.Lock()
		s.sweepTxLocked(time.Now())
		s.txMu.Unlock()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sweep blocked on an executing session instead of skipping it")
	}
	s.txMu.Lock()
	_, alive := s.txs[tok]
	s.txMu.Unlock()
	if !alive {
		t.Fatal("sweep reaped a session whose statement was still executing")
	}

	// Statement finishes: stamp refreshes, lock releases — and a sweep
	// now sees a FRESH session, not a stale one.
	sess.last = time.Now()
	sess.mu.Unlock()
	s.txMu.Lock()
	s.sweepTxLocked(time.Now())
	_, alive = s.txs[tok]
	s.txMu.Unlock()
	if !alive {
		t.Fatal("sweep reaped a fresh session right after its statement finished")
	}

	// Only a session that is BOTH unlocked and stale is reaped.
	sess.mu.Lock()
	sess.last = time.Now().Add(-2 * txSessionIdle)
	sess.mu.Unlock()
	s.txMu.Lock()
	s.sweepTxLocked(time.Now())
	_, alive = s.txs[tok]
	s.txMu.Unlock()
	if alive {
		t.Fatal("idle unlocked session survived the sweep")
	}
}

// TestSweepRaceUnderLoad drives real tx-session statements through the
// HTTP handler while concurrent goroutines run the sweep; the race
// detector (make test runs this package under -race) proves sess.last
// is never judged off-lock.
func TestSweepRaceUnderLoad(t *testing.T) {
	s, _, _ := testServer(t)
	rec, out := postCypher(t, s, map[string]any{"query": "BEGIN"})
	_ = out
	var begin struct{ Tx string }
	json.Unmarshal(rec.Body.Bytes(), &begin)
	if begin.Tx == "" {
		t.Fatalf("BEGIN: %s", rec.Body.String())
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.lookupTx("no-such-token") // sweeps on the way
			}
		}
	}()

	for i := 0; i < 100; i++ {
		stmt := fmt.Sprintf(`create (m:Malware {name: "sweep-race-%d"})`, i)
		rec, _ := postCypher(t, s, map[string]any{"tx": begin.Tx, "query": stmt})
		if rec.Code != http.StatusOK {
			t.Fatalf("statement %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	rec, _ = postCypher(t, s, map[string]any{"tx": begin.Tx, "query": "ROLLBACK"})
	if rec.Code != http.StatusOK {
		t.Fatalf("ROLLBACK: status %d: %s", rec.Code, rec.Body.String())
	}
	close(stop)
	wg.Wait()
}
