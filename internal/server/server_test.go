package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"securitykg/internal/cypher"
	"securitykg/internal/graph"
	"securitykg/internal/search"
)

func testServer(t *testing.T) (*Server, *graph.Store, graph.NodeID) {
	t.Helper()
	store := graph.New()
	idx := search.NewIndex(nil)
	wc, _ := store.MergeNode("Malware", "wannacry", nil)
	fam, _ := store.MergeNode("MalwareFamily", "ransomware", nil)
	ip, _ := store.MergeNode("IP", "10.0.0.1", nil)
	rep, _ := store.MergeNode("MalwareReport", "r1", map[string]string{"report_id": "r1"})
	store.AddEdge(wc, "BELONG_TO", fam, nil)
	store.AddEdge(wc, "CONNECT", ip, nil)
	store.AddEdge(rep, "DESCRIBES", wc, nil)
	idx.Add(search.Document{ID: "r1", Fields: map[string]string{"title": "wannacry analysis"}})
	return New(store, idx), store, wc
}

func get(t *testing.T, s *Server, path string, out any) *http.Response {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	res := rec.Result()
	if out != nil && res.StatusCode == 200 {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return res
}

func TestStatsEndpoint(t *testing.T) {
	s, _, _ := testServer(t)
	var st graph.Stats
	if res := get(t, s, "/api/stats", &st); res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if st.Nodes != 4 || st.Edges != 3 {
		t.Errorf("stats: %+v", st)
	}
}

func TestSearchEndpoint(t *testing.T) {
	s, _, _ := testServer(t)
	var hits []struct {
		ID    string  `json:"id"`
		Score float64 `json:"score"`
	}
	if res := get(t, s, "/api/search?q=wannacry", &hits); res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if len(hits) != 1 || hits[0].ID != "r1" {
		t.Errorf("hits: %+v", hits)
	}
	if res := get(t, s, "/api/search", nil); res.StatusCode != 400 {
		t.Errorf("missing q should 400, got %d", res.StatusCode)
	}
}

func TestCypherEndpoint(t *testing.T) {
	s, _, _ := testServer(t)
	body, _ := json.Marshal(map[string]string{
		"query": `match (n) where n.name = "wannacry" return n.name, n.type`,
	})
	req := httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Columns []string
		Rows    [][]string
	}
	json.Unmarshal(rec.Body.Bytes(), &out)
	if len(out.Rows) != 1 || out.Rows[0][0] != "wannacry" || out.Rows[0][1] != "Malware" {
		t.Errorf("cypher result: %+v", out)
	}
	// Bad query -> 400 with error payload.
	bad, _ := json.Marshal(map[string]string{"query": "nonsense"})
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(bad)))
	if rec2.Code != 400 {
		t.Errorf("bad query status %d", rec2.Code)
	}
	// GET not allowed.
	rec3 := httptest.NewRecorder()
	s.ServeHTTP(rec3, httptest.NewRequest("GET", "/api/cypher", nil))
	if rec3.Code != 405 {
		t.Errorf("GET cypher status %d", rec3.Code)
	}
}

func TestCypherExplainEndpoint(t *testing.T) {
	s, _, _ := testServer(t)
	body, _ := json.Marshal(map[string]any{
		"query":   `match (m:Malware)-[:CONNECT]->(ip) return ip.name limit 3`,
		"explain": true,
	})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Plan string `json:"plan"`
	}
	json.Unmarshal(rec.Body.Bytes(), &out)
	if !strings.Contains(out.Plan, "Expand") || !strings.Contains(out.Plan, "Limit 3") {
		t.Errorf("plan output: %q", out.Plan)
	}
	// An inline EXPLAIN statement returns plan lines as rows.
	body2, _ := json.Marshal(map[string]string{"query": `explain match (n) return n`})
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body2)))
	var out2 struct {
		Columns []string
		Rows    [][]string
	}
	json.Unmarshal(rec2.Body.Bytes(), &out2)
	if len(out2.Columns) != 1 || out2.Columns[0] != "plan" || len(out2.Rows) == 0 {
		t.Errorf("inline explain result: %+v", out2)
	}
}

func TestNodeEndpoint(t *testing.T) {
	s, _, wc := testServer(t)
	var out struct {
		Node      *graph.Node
		Degree    int
		Neighbors []*graph.Node
	}
	if res := get(t, s, fmt.Sprintf("/api/node?id=%d", wc), &out); res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if out.Node.Name != "wannacry" || out.Degree != 3 || len(out.Neighbors) != 3 {
		t.Errorf("node detail: %+v", out)
	}
	if res := get(t, s, "/api/node?id=9999", nil); res.StatusCode != 404 {
		t.Errorf("missing node status %d", res.StatusCode)
	}
	if res := get(t, s, "/api/node?id=abc", nil); res.StatusCode != 400 {
		t.Errorf("bad id status %d", res.StatusCode)
	}
}

func TestExpandEndpointReturnsLayout(t *testing.T) {
	s, _, wc := testServer(t)
	var vg ViewGraph
	if res := get(t, s, fmt.Sprintf("/api/expand?id=%d", wc), &vg); res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if len(vg.Nodes) != 4 {
		t.Fatalf("expanded nodes: %d", len(vg.Nodes))
	}
	// Positions must be laid out (not all zero) and colored by type.
	nonZero := false
	for _, n := range vg.Nodes {
		if n.X != 0 || n.Y != 0 {
			nonZero = true
		}
		if n.Color == "" {
			t.Errorf("node %s missing color", n.Name)
		}
	}
	if !nonZero {
		t.Error("layout did not assign positions")
	}
	// Distinct node types get distinct color groups.
	colors := map[string]string{}
	for _, n := range vg.Nodes {
		colors[n.Type] = n.Color
	}
	if colors["Malware"] == colors["IP"] {
		t.Error("malware and IOC share a color")
	}
}

func TestCollapseEndpoint(t *testing.T) {
	s, store, wc := testServer(t)
	rep := store.FindNode("MalwareReport", "r1")
	fam := store.FindNode("MalwareFamily", "ransomware")
	ip := store.FindNode("IP", "10.0.0.1")
	view := fmt.Sprintf("%d,%d,%d,%d", rep.ID, wc, fam.ID, ip.ID)
	var out struct {
		Hidden []graph.NodeID `json:"hidden"`
	}
	path := fmt.Sprintf("/api/collapse?id=%d&view=%s&anchors=%d", wc, view, rep.ID)
	if res := get(t, s, path, &out); res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if len(out.Hidden) != 2 {
		t.Errorf("collapse should hide the 2 leaves: %+v", out.Hidden)
	}
}

func TestRandomAndBackEndpoints(t *testing.T) {
	s, _, wc := testServer(t)
	var first ViewGraph
	if res := get(t, s, "/api/random?n=3&seed=7", &first); res.StatusCode != 200 {
		t.Fatalf("random status %d", res.StatusCode)
	}
	if len(first.Nodes) == 0 {
		t.Fatal("random subgraph empty")
	}
	// A second view, then back returns the first.
	var second ViewGraph
	get(t, s, fmt.Sprintf("/api/expand?id=%d", wc), &second)
	var back ViewGraph
	if res := get(t, s, "/api/back", &back); res.StatusCode != 200 {
		t.Fatalf("back status %d", res.StatusCode)
	}
	if len(back.Nodes) != len(first.Nodes) {
		t.Errorf("back returned wrong view: %d vs %d nodes", len(back.Nodes), len(first.Nodes))
	}
	// Exhausting history 404s.
	get(t, s, "/api/back", nil)
	if res := get(t, s, "/api/back", nil); res.StatusCode != 404 {
		t.Errorf("empty history should 404, got %d", res.StatusCode)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	s, _, _ := testServer(t)
	var a, b ViewGraph
	get(t, s, "/api/random?n=3&seed=9", &a)
	get(t, s, "/api/random?n=3&seed=9", &b)
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("same seed different sizes")
	}
	for i := range a.Nodes {
		if a.Nodes[i].ID != b.Nodes[i].ID {
			t.Fatal("same seed different subgraph")
		}
	}
}

// postCypher posts a query and decodes the result payload.
func postCypher(t *testing.T, s *Server, payload map[string]any) (*httptest.ResponseRecorder, struct {
	Columns   []string
	Rows      [][]string
	Truncated bool
	Error     string
}) {
	t.Helper()
	body, _ := json.Marshal(payload)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
	var out struct {
		Columns   []string
		Rows      [][]string
		Truncated bool
		Error     string
	}
	json.Unmarshal(rec.Body.Bytes(), &out)
	return rec, out
}

func TestCypherErrorPaths(t *testing.T) {
	s, _, _ := testServer(t)
	cases := []struct {
		name  string
		query string
	}{
		{"lex error", `match (n) where n.name = "unterminated return n`},
		{"parse error", `match (n)-[r->(m) return n`},
		{"missing return", `match (n) where n.name = "x"`},
		{"var-length binds var", `match (a)-[r:T*1..3]->(b) return a`},
		{"empty hop range", `match (a)-[:T*3..1]->(b) return a`},
		{"order-by under distinct", `match (n) return distinct n.name order by n.type`},
		{"with after return", `match (n) return n with n`},
	}
	for _, c := range cases {
		rec, out := postCypher(t, s, map[string]any{"query": c.query})
		if rec.Code != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, rec.Code, rec.Body.String())
		}
		if out.Error == "" {
			t.Errorf("%s: missing error payload: %s", c.name, rec.Body.String())
		}
	}
	// Malformed body (not JSON) is a 400 too.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", strings.NewReader("{not json")))
	if rec.Code != 400 {
		t.Errorf("malformed body status %d", rec.Code)
	}
	// Explain of an invalid query reports the error instead of a plan.
	rec2, out2 := postCypher(t, s, map[string]any{"query": "nope", "explain": true})
	if rec2.Code != 400 || out2.Error == "" {
		t.Errorf("explain of bad query: status %d body %s", rec2.Code, rec2.Body.String())
	}
}

func TestCypherTruncatedFlag(t *testing.T) {
	// A MaxRows-capped server truncates mid-stream and surfaces the flag.
	store := graph.New()
	hub, _ := store.MergeNode("Malware", "hub", nil)
	for i := 0; i < 40; i++ {
		ip, _ := store.MergeNode("IP", fmt.Sprintf("10.0.0.%d", i), nil)
		store.AddEdge(hub, "CONNECT", ip, nil)
	}
	s := NewWith(store, search.NewIndex(nil), cypher.Options{UseIndexes: true, MaxRows: 5})
	rec, out := postCypher(t, s, map[string]any{
		"query": `match (m:Malware)-[:CONNECT]->(ip) return ip.name`,
	})
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if len(out.Rows) != 5 || !out.Truncated {
		t.Errorf("rows=%d truncated=%v, want 5/true", len(out.Rows), out.Truncated)
	}
	// An explicit LIMIT under the cap is not a truncation.
	rec, out = postCypher(t, s, map[string]any{
		"query": `match (m:Malware)-[:CONNECT]->(ip) return ip.name limit 3`,
	})
	if rec.Code != 200 || len(out.Rows) != 3 || out.Truncated {
		t.Errorf("limit: status=%d rows=%d truncated=%v, want 200/3/false", rec.Code, len(out.Rows), out.Truncated)
	}
}

func TestCypherExplainNewOperators(t *testing.T) {
	store := graph.New()
	x, _ := store.MergeNode("Malware", "X", nil)
	tl, _ := store.MergeNode("Tool", "t1", nil)
	store.AddEdge(x, "uses", tl, nil)
	s := New(store, search.NewIndex(nil))
	body, _ := json.Marshal(map[string]any{
		"query": `match (m:Malware {name:"X"})-[:uses*1..3]->(b)
			optional match (b)-[:uses]->(c)
			with b, collect(c.name) as deps
			return b.name, deps`,
		"explain": true,
	})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Plan string `json:"plan"`
	}
	json.Unmarshal(rec.Body.Bytes(), &out)
	for _, want := range []string{"VarExpand", "[:uses*1..3]", "Optional", "With (aggregating)"} {
		if !strings.Contains(out.Plan, want) {
			t.Errorf("plan missing %q:\n%s", want, out.Plan)
		}
	}
	// The new forms also execute through the endpoint, list rendering included.
	rec2, res := postCypher(t, s, map[string]any{
		"query": `match (m:Malware) optional match (m)-[:uses*1..2]->(b) with m, collect(b.name) as bs return m.name, bs`,
	})
	if rec2.Code != 200 || len(res.Rows) != 1 || res.Rows[0][1] != "[t1]" {
		t.Errorf("var-length via endpoint: status=%d rows=%+v", rec2.Code, res.Rows)
	}
}

func TestCypherParams(t *testing.T) {
	// Values bind via "params" instead of being spliced into the text.
	s, _, _ := testServer(t)
	rec, out := postCypher(t, s, map[string]any{
		"query":  `match (m {name: $ioc})-[r]-(x) return type(r), x.name order by x.name`,
		"params": map[string]any{"ioc": "wannacry"},
	})
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if len(out.Rows) != 3 {
		t.Fatalf("rows: %v", out.Rows)
	}
	// A hostile value binds literally: no syntax leaks into the query.
	rec, out = postCypher(t, s, map[string]any{
		"query":  `match (m {name: $ioc}) return m.name`,
		"params": map[string]any{"ioc": `x" return m //`},
	})
	if rec.Code != 200 || len(out.Rows) != 0 {
		t.Errorf("hostile binding: status=%d rows=%v", rec.Code, out.Rows)
	}
	// A missing binding is a 400 with the parameter named.
	rec, out = postCypher(t, s, map[string]any{
		"query": `match (m {name: $ioc}) return m.name`,
	})
	if rec.Code != 400 || !strings.Contains(out.Error, "$ioc") {
		t.Errorf("missing param: status=%d error=%q", rec.Code, out.Error)
	}
}

// ndjsonLines posts a streaming cypher request and decodes each NDJSON
// line into a generic map.
func ndjsonLines(t *testing.T, s *Server, payload map[string]any) (*httptest.ResponseRecorder, []map[string]any) {
	t.Helper()
	body, _ := json.Marshal(payload)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
	var lines []map[string]any
	for _, ln := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		if ln == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", ln, err)
		}
		lines = append(lines, m)
	}
	return rec, lines
}

func TestCypherStreamNDJSON(t *testing.T) {
	s, _, _ := testServer(t)
	rec, lines := ndjsonLines(t, s, map[string]any{
		"query":  `match (m {name: $ioc})-[r]-(x) return x.name order by x.name`,
		"params": map[string]any{"ioc": "wannacry"},
		"stream": true,
	})
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	if len(lines) != 5 { // columns + 3 rows + done
		t.Fatalf("lines: %v", lines)
	}
	if cols, ok := lines[0]["columns"].([]any); !ok || len(cols) != 1 {
		t.Errorf("header line: %v", lines[0])
	}
	var names []string
	for _, ln := range lines[1:4] {
		row, ok := ln["row"].([]any)
		if !ok || len(row) != 1 {
			t.Fatalf("row line: %v", ln)
		}
		names = append(names, row[0].(string))
	}
	if names[0] != "10.0.0.1" || names[1] != "r1" || names[2] != "ransomware" {
		t.Errorf("streamed rows: %v", names)
	}
	if done, ok := lines[4]["done"].(float64); !ok || done != 3 {
		t.Errorf("trailer: %v", lines[4])
	}
	// A bad query fails before any bytes stream: plain 400 JSON error.
	rec, _ = ndjsonLines(t, s, map[string]any{"query": `match (n`, "stream": true})
	if rec.Code != 400 {
		t.Errorf("bad query stream status %d", rec.Code)
	}
}

func TestCypherStreamBudgetErrorTrailer(t *testing.T) {
	// A mid-stream failure (byte budget) surfaces as an {"error": ...}
	// trailer after the rows that did fit — not a silent cut.
	store := graph.New()
	for i := 0; i < 5000; i++ {
		store.MergeNode("T", fmt.Sprintf("some-quite-long-node-name-%d", i), nil)
	}
	s := NewWith(store, search.NewIndex(nil), cypher.Options{UseIndexes: true, MaxBytes: 16 << 10})
	rec, lines := ndjsonLines(t, s, map[string]any{
		"query":  `match (n) return n.name`,
		"stream": true,
	})
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	last := lines[len(lines)-1]
	errMsg, ok := last["error"].(string)
	if !ok || !strings.Contains(errMsg, "byte budget") {
		t.Errorf("want budget error trailer, got %v", last)
	}
	if len(lines) < 3 {
		t.Errorf("no rows streamed before the budget tripped: %v", lines)
	}
}

func TestCypherStreamStopsOnClientGone(t *testing.T) {
	// A canceled request context stops the stream instead of driving the
	// cursor to exhaustion on behalf of a client that went away.
	store := graph.New()
	for i := 0; i < 1000; i++ {
		store.MergeNode("T", fmt.Sprintf("n%d", i), nil)
	}
	s := New(store, search.NewIndex(nil))
	body, _ := json.Marshal(map[string]any{"query": `match (n) return n.name`, "stream": true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) > 2 {
		t.Errorf("canceled stream still wrote %d lines", len(lines))
	}
	if strings.Contains(rec.Body.String(), `"done"`) {
		t.Error("canceled stream reached the done trailer")
	}
}

// TestCypherWriteEndpoint: /api/cypher accepts write statements, the
// store actually mutates, and the response carries the write counters.
func TestCypherWriteEndpoint(t *testing.T) {
	s, store, _ := testServer(t)
	body, _ := json.Marshal(map[string]any{
		"query":  `merge (m:Malware {name: $ioc}) set m.triaged = "yes"`,
		"params": map[string]any{"ioc": "petya"},
	})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Columns []string
		Writes  *cypher.WriteStats
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Writes == nil || out.Writes.NodesCreated != 1 || out.Writes.PropsSet != 1 {
		t.Fatalf("writes: %+v", out.Writes)
	}
	n := store.FindNode("Malware", "petya")
	if n == nil || n.Attrs["triaged"] != "yes" {
		t.Fatalf("mutation did not reach the store: %+v", n)
	}
	// Read-back through the same endpoint.
	_, res := postCypher(t, s, map[string]any{
		"query":  `match (m:Malware {name: $ioc}) return m.triaged`,
		"params": map[string]any{"ioc": "petya"},
	})
	if len(res.Rows) != 1 || res.Rows[0][0] != "yes" {
		t.Fatalf("read-back: %+v", res.Rows)
	}
}

// TestCypherWriteStreamTrailer: the NDJSON trailer of a streamed write
// statement carries the write counters.
func TestCypherWriteStreamTrailer(t *testing.T) {
	s, _, _ := testServer(t)
	_, lines := ndjsonLines(t, s, map[string]any{
		"query":  `match (m:Malware {name: "wannacry"}) set m.mark = "1" return m.name`,
		"stream": true,
	})
	last := lines[len(lines)-1]
	if _, ok := last["done"]; !ok {
		t.Fatalf("missing done trailer: %v", last)
	}
	ws, ok := last["writes"].(map[string]any)
	if !ok {
		t.Fatalf("missing writes in trailer: %v", last)
	}
	if ws["props_set"].(float64) != 1 {
		t.Fatalf("trailer writes: %v", ws)
	}
}

// TestCypherReadOnlyServer: a server built with ReadOnly options (the
// -graph snapshot mode) rejects write statements and still reads.
func TestCypherReadOnlyServer(t *testing.T) {
	store := graph.New()
	store.MergeNode("Malware", "wannacry", nil)
	opts := cypher.DefaultOptions()
	opts.ReadOnly = true
	s := NewWith(store, search.NewIndex(nil), opts)
	rec, out := postCypher(t, s, map[string]any{"query": `create (x:T {name: "nope"})`})
	if rec.Code != 400 || !strings.Contains(out.Error, "read-only") {
		t.Fatalf("write on read-only server: code=%d out=%+v", rec.Code, out)
	}
	if store.CountNodes() != 1 {
		t.Fatal("read-only server mutated the store")
	}
	_, out = postCypher(t, s, map[string]any{"query": `match (n) return n.name`})
	if len(out.Rows) != 1 {
		t.Fatalf("read on read-only server: %+v", out)
	}
}

// TestCypherTxSession drives a multi-statement transaction over the
// API: BEGIN returns a token, statements carrying it see their own
// uncommitted writes while plain requests do not, COMMIT publishes
// atomically and invalidates the token.
func TestCypherTxSession(t *testing.T) {
	s, store, _ := testServer(t)

	// BEGIN -> {"tx": token}.
	body, _ := json.Marshal(map[string]any{"query": "BEGIN"})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("BEGIN status %d: %s", rec.Code, rec.Body.String())
	}
	var begin struct{ Tx string }
	if err := json.Unmarshal(rec.Body.Bytes(), &begin); err != nil || begin.Tx == "" {
		t.Fatalf("BEGIN response %s (err %v)", rec.Body.String(), err)
	}

	// A write inside the session...
	if rec, _ := postCypher(t, s, map[string]any{
		"tx":    begin.Tx,
		"query": `merge (m:Malware {name: "intx"}) set m.stage = "draft"`,
	}); rec.Code != 200 {
		t.Fatalf("tx write status %d: %s", rec.Code, rec.Body.String())
	}
	// ...is visible to the session...
	if _, res := postCypher(t, s, map[string]any{
		"tx":    begin.Tx,
		"query": `match (m:Malware {name: "intx"}) return m.stage`,
	}); len(res.Rows) != 1 || res.Rows[0][0] != "draft" {
		t.Fatalf("own write invisible inside tx: %+v", res.Rows)
	}
	// ...but not to plain requests, which pin their own committed
	// snapshot. (Store.FindNode deliberately reads latest state beneath
	// MVCC, so snapshot isolation is asserted through the query path.)
	if _, res := postCypher(t, s, map[string]any{
		"query": `match (m:Malware {name: "intx"}) return m.stage`,
	}); len(res.Rows) != 0 {
		t.Fatalf("uncommitted write leaked outside the session: %+v", res.Rows)
	}

	// COMMIT publishes and ends the session.
	if rec, _ := postCypher(t, s, map[string]any{"tx": begin.Tx, "query": "COMMIT"}); rec.Code != 200 {
		t.Fatalf("COMMIT status %d: %s", rec.Code, rec.Body.String())
	}
	if n := store.FindNode("Malware", "intx"); n == nil || n.Attrs["stage"] != "draft" {
		t.Fatalf("committed write missing from the store: %+v", n)
	}
	if rec, _ := postCypher(t, s, map[string]any{
		"tx":    begin.Tx,
		"query": `match (m) return count(m)`,
	}); rec.Code != http.StatusBadRequest {
		t.Fatalf("finished token still accepted: status %d", rec.Code)
	}
}

// TestCypherTxSessionErrors covers the refusal paths: unknown tokens,
// COMMIT with no session, and rollback discarding the session's writes.
func TestCypherTxSessionErrors(t *testing.T) {
	s, store, _ := testServer(t)

	if rec, _ := postCypher(t, s, map[string]any{
		"tx":    "deadbeef",
		"query": `match (m) return count(m)`,
	}); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown token: status %d", rec.Code)
	}
	if rec, _ := postCypher(t, s, map[string]any{"query": "COMMIT"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("bare COMMIT: status %d, want 400", rec.Code)
	}

	body, _ := json.Marshal(map[string]any{"query": "begin transaction"})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
	var begin struct{ Tx string }
	json.Unmarshal(rec.Body.Bytes(), &begin)
	if begin.Tx == "" {
		t.Fatalf("begin transaction: %s", rec.Body.String())
	}
	postCypher(t, s, map[string]any{"tx": begin.Tx, "query": `create (m:Malware {name: "ghost"})`})
	if rec, _ := postCypher(t, s, map[string]any{"tx": begin.Tx, "query": "ROLLBACK"}); rec.Code != 200 {
		t.Fatalf("ROLLBACK status %d: %s", rec.Code, rec.Body.String())
	}
	if store.FindNode("Malware", "ghost") != nil {
		t.Fatal("rolled-back write reached the store")
	}
}

// TestCypherTxSessionStream: NDJSON streaming works inside a session
// and sees the session's uncommitted writes.
func TestCypherTxSessionStream(t *testing.T) {
	s, _, _ := testServer(t)
	body, _ := json.Marshal(map[string]any{"query": "BEGIN"})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
	var begin struct{ Tx string }
	json.Unmarshal(rec.Body.Bytes(), &begin)
	if begin.Tx == "" {
		t.Fatalf("BEGIN: %s", rec.Body.String())
	}
	postCypher(t, s, map[string]any{"tx": begin.Tx, "query": `create (m:Malware {name: "streamed"})`})

	body, _ = json.Marshal(map[string]any{
		"tx":     begin.Tx,
		"stream": true,
		"query":  `match (m:Malware {name: "streamed"}) return m.name`,
	})
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "streamed") {
		t.Fatalf("tx stream status %d: %s", rec.Code, rec.Body.String())
	}
	// A malformed statement inside the stream path reports 400.
	body, _ = json.Marshal(map[string]any{"tx": begin.Tx, "stream": true, "query": `match (`})
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/api/cypher", bytes.NewReader(body)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("tx stream parse error: status %d", rec.Code)
	}
	postCypher(t, s, map[string]any{"tx": begin.Tx, "query": "ROLLBACK"})
}

// TestTxSessionCapAndSweep exercises the session limit and the idle
// reaper directly against the session table.
func TestTxSessionCapAndSweep(t *testing.T) {
	s, _, _ := testServer(t)
	tokens := make([]string, 0, txSessionMax)
	for i := 0; i < txSessionMax; i++ {
		tok, err := s.beginTxSession()
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		tokens = append(tokens, tok)
	}
	if _, err := s.beginTxSession(); err == nil {
		t.Fatalf("session %d opened past the cap", txSessionMax+1)
	}
	// Pretend every session has been idle past the deadline: the sweep
	// rolls them back and frees the table.
	s.txMu.Lock()
	for _, sess := range s.txs {
		sess.last = time.Now().Add(-2 * txSessionIdle)
	}
	s.sweepTxLocked(time.Now())
	left := len(s.txs)
	s.txMu.Unlock()
	if left != 0 {
		t.Fatalf("%d sessions survived the idle sweep", left)
	}
	if sess := s.lookupTx(tokens[0]); sess != nil {
		t.Fatal("swept token still resolves")
	}
	// The cap has room again.
	tok, err := s.beginTxSession()
	if err != nil {
		t.Fatalf("begin after sweep: %v", err)
	}
	if sess := s.lookupTx(tok); sess == nil {
		t.Fatal("fresh token does not resolve")
	} else {
		sess.tx.Rollback()
		s.dropTx(tok)
	}
}
