// Package labelmodel implements data programming (Ratner et al., NeurIPS
// 2016) as SecurityKG uses it: labeling functions vote on candidate items
// (token spans), a generative label model estimates each function's
// accuracy without ground truth via EM, and the resulting probabilistic
// labels become the CRF's training annotations.
//
// Votes use the convention: -1 abstain, 0..K-1 class index.
package labelmodel

import (
	"errors"
	"fmt"
	"math"
)

// Abstain is the vote value meaning "no opinion".
const Abstain = -1

// Matrix is the label matrix: one row per item, one column per labeling
// function; entries are class votes or Abstain.
type Matrix [][]int

// Validate checks matrix shape and vote ranges for k classes.
func (m Matrix) Validate(k int) error {
	if k < 2 {
		return errors.New("labelmodel: need at least 2 classes")
	}
	if len(m) == 0 {
		return errors.New("labelmodel: empty label matrix")
	}
	cols := len(m[0])
	if cols == 0 {
		return errors.New("labelmodel: no labeling functions")
	}
	for i, row := range m {
		if len(row) != cols {
			return fmt.Errorf("labelmodel: row %d has %d votes, want %d", i, len(row), cols)
		}
		for j, v := range row {
			if v < Abstain || v >= k {
				return fmt.Errorf("labelmodel: row %d lf %d vote %d out of range", i, j, v)
			}
		}
	}
	return nil
}

// MajorityVote returns the per-item posterior implied by simple majority
// voting over non-abstaining functions: probability mass proportional to
// vote counts, uniform when every function abstains.
func MajorityVote(m Matrix, k int) ([][]float64, error) {
	if err := m.Validate(k); err != nil {
		return nil, err
	}
	out := make([][]float64, len(m))
	for i, row := range m {
		dist := make([]float64, k)
		total := 0
		for _, v := range row {
			if v >= 0 {
				dist[v]++
				total++
			}
		}
		if total == 0 {
			for c := range dist {
				dist[c] = 1 / float64(k)
			}
		} else {
			for c := range dist {
				dist[c] /= float64(total)
			}
		}
		out[i] = dist
	}
	return out, nil
}

// Model is the fitted generative label model: per-function accuracy and
// propensity plus class priors.
type Model struct {
	K          int
	Accuracy   []float64 // P(vote = y | vote != abstain), per function
	Propensity []float64 // P(vote != abstain), per function
	Prior      []float64 // class prior
}

// FitConfig controls EM.
type FitConfig struct {
	Iters  int     // EM iterations (default 25)
	Smooth float64 // additive smoothing for M-step counts (default 1.0)
	MinAcc float64 // accuracy floor to keep functions informative (default 0.05)
	MaxAcc float64 // accuracy ceiling to avoid degenerate certainty (default 0.995)
	// ClassBalance, when non-nil, fixes the class prior instead of learning
	// it. Length must equal k and entries must sum to ~1. Fixing the
	// balance is essential when one class dominates (e.g. the O tag in
	// token labeling): a learned prior otherwise drowns out minority-class
	// votes and EM collapses.
	ClassBalance []float64
}

func (c *FitConfig) defaults() {
	if c.Iters <= 0 {
		c.Iters = 25
	}
	if c.Smooth <= 0 {
		c.Smooth = 1.0
	}
	if c.MinAcc <= 0 {
		c.MinAcc = 0.05
	}
	if c.MaxAcc <= 0 || c.MaxAcc >= 1 {
		c.MaxAcc = 0.995
	}
}

// Fit estimates function accuracies and class priors by EM, initialized
// from majority vote. The model assumes functions err uniformly across
// wrong classes (the standard conditionally-independent formulation).
func Fit(m Matrix, k int, cfg FitConfig) (*Model, error) {
	if err := m.Validate(k); err != nil {
		return nil, err
	}
	cfg.defaults()
	if cfg.ClassBalance != nil && len(cfg.ClassBalance) != k {
		return nil, fmt.Errorf("labelmodel: class balance has %d entries, want %d",
			len(cfg.ClassBalance), k)
	}
	nLF := len(m[0])
	model := &Model{
		K:          k,
		Accuracy:   make([]float64, nLF),
		Propensity: make([]float64, nLF),
		Prior:      make([]float64, k),
	}
	// Init from majority vote posteriors.
	post, _ := MajorityVote(m, k)
	for j := 0; j < nLF; j++ {
		model.Accuracy[j] = 0.7
	}
	for iter := 0; iter < cfg.Iters; iter++ {
		// M-step from current posteriors.
		accNum := make([]float64, nLF)
		accDen := make([]float64, nLF)
		propNum := make([]float64, nLF)
		prior := make([]float64, k)
		for i, row := range m {
			for c := 0; c < k; c++ {
				prior[c] += post[i][c]
			}
			for j, v := range row {
				if v == Abstain {
					continue
				}
				propNum[j]++
				accDen[j]++
				accNum[j] += post[i][v] // prob the vote was correct
			}
		}
		n := float64(len(m))
		for j := 0; j < nLF; j++ {
			model.Propensity[j] = propNum[j] / n
			a := (accNum[j] + cfg.Smooth*0.7) / (accDen[j] + cfg.Smooth)
			model.Accuracy[j] = clamp(a, cfg.MinAcc, cfg.MaxAcc)
		}
		if cfg.ClassBalance != nil {
			copy(model.Prior, cfg.ClassBalance)
		} else {
			var priorSum float64
			for c := 0; c < k; c++ {
				prior[c] += cfg.Smooth
				priorSum += prior[c]
			}
			for c := 0; c < k; c++ {
				model.Prior[c] = prior[c] / priorSum
			}
		}
		// E-step: recompute posteriors under new parameters.
		for i, row := range m {
			post[i] = model.Posterior(row)
		}
	}
	return model, nil
}

// Posterior returns P(y | votes) under the fitted model.
func (mo *Model) Posterior(votes []int) []float64 {
	k := mo.K
	logp := make([]float64, k)
	for c := 0; c < k; c++ {
		logp[c] = math.Log(mo.Prior[c] + 1e-12)
	}
	for j, v := range votes {
		if v == Abstain || j >= len(mo.Accuracy) {
			continue
		}
		acc := mo.Accuracy[j]
		wrong := (1 - acc) / float64(k-1)
		for c := 0; c < k; c++ {
			if c == v {
				logp[c] += math.Log(acc + 1e-12)
			} else {
				logp[c] += math.Log(wrong + 1e-12)
			}
		}
	}
	// Normalize.
	max := math.Inf(-1)
	for _, lp := range logp {
		if lp > max {
			max = lp
		}
	}
	var sum float64
	out := make([]float64, k)
	for c, lp := range logp {
		out[c] = math.Exp(lp - max)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
	return out
}

// MAP returns the most probable class for the votes, with ok=false when
// every function abstained (no signal).
func (mo *Model) MAP(votes []int) (int, bool) {
	any := false
	for _, v := range votes {
		if v != Abstain {
			any = true
			break
		}
	}
	if !any {
		return 0, false
	}
	post := mo.Posterior(votes)
	best, bestP := 0, -1.0
	for c, p := range post {
		if p > bestP {
			best, bestP = c, p
		}
	}
	return best, true
}

// ProbLabels applies the model to every row of the matrix.
func (mo *Model) ProbLabels(m Matrix) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = mo.Posterior(row)
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
