package labelmodel

import (
	"math"
	"math/rand"
	"testing"
)

// synth generates a label matrix from ground truth with known per-LF
// accuracies and abstain rates; returns matrix and truth.
func synth(n, k int, accs, props []float64, seed int64) (Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	truth := make([]int, n)
	m := make(Matrix, n)
	for i := 0; i < n; i++ {
		truth[i] = rng.Intn(k)
		row := make([]int, len(accs))
		for j := range accs {
			if rng.Float64() > props[j] {
				row[j] = Abstain
				continue
			}
			if rng.Float64() < accs[j] {
				row[j] = truth[i]
			} else {
				wrong := rng.Intn(k - 1)
				if wrong >= truth[i] {
					wrong++
				}
				row[j] = wrong
			}
		}
		m[i] = row
	}
	return m, truth
}

func accuracy(post [][]float64, truth []int) float64 {
	correct := 0
	for i, dist := range post {
		best, bestP := 0, -1.0
		for c, p := range dist {
			if p > bestP {
				best, bestP = c, p
			}
		}
		if best == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(truth))
}

func TestValidate(t *testing.T) {
	good := Matrix{{0, 1, Abstain}, {1, 1, 0}}
	if err := good.Validate(2); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
	cases := []struct {
		m Matrix
		k int
	}{
		{Matrix{}, 2},
		{Matrix{{}}, 2},
		{Matrix{{0}, {0, 1}}, 2}, // ragged
		{Matrix{{2}}, 2},         // vote out of range
		{Matrix{{-2}}, 2},        // below abstain
		{Matrix{{0}}, 1},         // k too small
	}
	for i, c := range cases {
		if err := c.m.Validate(c.k); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestMajorityVoteBasics(t *testing.T) {
	m := Matrix{
		{0, 0, 1},
		{Abstain, Abstain, Abstain},
		{1, Abstain, 1},
	}
	post, err := MajorityVote(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if post[0][0] <= post[0][1] {
		t.Errorf("row 0 should favor class 0: %+v", post[0])
	}
	if post[1][0] != 0.5 || post[1][1] != 0.5 {
		t.Errorf("all-abstain row should be uniform: %+v", post[1])
	}
	if post[2][1] != 1.0 {
		t.Errorf("unanimous row: %+v", post[2])
	}
}

func TestFitRecoversAccuracyOrdering(t *testing.T) {
	accs := []float64{0.95, 0.70, 0.55}
	props := []float64{0.8, 0.8, 0.8}
	m, _ := synth(3000, 3, accs, props, 7)
	model, err := Fit(m, 3, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !(model.Accuracy[0] > model.Accuracy[1] && model.Accuracy[1] > model.Accuracy[2]) {
		t.Errorf("EM did not recover accuracy ordering: %+v", model.Accuracy)
	}
	if math.Abs(model.Accuracy[0]-0.95) > 0.08 {
		t.Errorf("best LF accuracy estimate off: %.3f", model.Accuracy[0])
	}
	for j, p := range model.Propensity {
		if math.Abs(p-0.8) > 0.05 {
			t.Errorf("propensity %d estimate off: %.3f", j, p)
		}
	}
}

func TestFitBeatsMajorityVoteWithHeterogeneousLFs(t *testing.T) {
	// One excellent LF drowned out by three mediocre ones: weighting by
	// estimated accuracy must beat unweighted majority vote.
	accs := []float64{0.97, 0.55, 0.55, 0.55}
	props := []float64{0.9, 0.9, 0.9, 0.9}
	m, truth := synth(4000, 4, accs, props, 11)
	mv, _ := MajorityVote(m, 4)
	model, err := Fit(m, 4, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	em := model.ProbLabels(m)
	accMV := accuracy(mv, truth)
	accEM := accuracy(em, truth)
	if accEM <= accMV {
		t.Errorf("EM (%.3f) should beat majority vote (%.3f)", accEM, accMV)
	}
	if accEM < 0.80 {
		t.Errorf("EM accuracy too low: %.3f", accEM)
	}
}

func TestPosteriorSumsToOne(t *testing.T) {
	m, _ := synth(200, 3, []float64{0.8, 0.7}, []float64{0.7, 0.7}, 3)
	model, err := Fit(m, 3, FitConfig{Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range m {
		post := model.Posterior(row)
		sum := 0.0
		for _, p := range post {
			if p < 0 || p > 1 {
				t.Fatalf("posterior out of range: %+v", post)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posterior sums to %f", sum)
		}
	}
}

func TestPosteriorAllAbstainIsPrior(t *testing.T) {
	m, _ := synth(500, 2, []float64{0.9}, []float64{0.5}, 5)
	model, err := Fit(m, 2, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	post := model.Posterior([]int{Abstain})
	for c := range post {
		if math.Abs(post[c]-model.Prior[c]) > 1e-9 {
			t.Errorf("all-abstain posterior should equal prior: %+v vs %+v", post, model.Prior)
		}
	}
}

func TestMAP(t *testing.T) {
	m, _ := synth(1000, 2, []float64{0.9, 0.85}, []float64{0.9, 0.9}, 9)
	model, err := Fit(m, 2, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := model.MAP([]int{Abstain, Abstain}); ok {
		t.Error("all-abstain MAP should report no signal")
	}
	cls, ok := model.MAP([]int{1, 1})
	if !ok || cls != 1 {
		t.Errorf("unanimous MAP: cls=%d ok=%v", cls, ok)
	}
}

func TestHighAccuracyLFDominatesConflict(t *testing.T) {
	accs := []float64{0.98, 0.55}
	props := []float64{0.95, 0.95}
	m, _ := synth(4000, 2, accs, props, 13)
	model, err := Fit(m, 2, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// When the two disagree, the high-accuracy function should win.
	cls, ok := model.MAP([]int{0, 1})
	if !ok || cls != 0 {
		t.Errorf("conflict resolution: cls=%d (accs %+v)", cls, model.Accuracy)
	}
}

func TestFitDeterministic(t *testing.T) {
	m, _ := synth(300, 3, []float64{0.8, 0.6}, []float64{0.8, 0.8}, 17)
	m1, _ := Fit(m, 3, FitConfig{})
	m2, _ := Fit(m, 3, FitConfig{})
	for j := range m1.Accuracy {
		if m1.Accuracy[j] != m2.Accuracy[j] {
			t.Fatal("Fit is not deterministic")
		}
	}
}

func TestFitErrorPropagation(t *testing.T) {
	if _, err := Fit(Matrix{}, 2, FitConfig{}); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := MajorityVote(Matrix{{5}}, 2); err == nil {
		t.Error("bad vote accepted")
	}
}
