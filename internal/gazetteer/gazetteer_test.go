package gazetteer

import "testing"

func TestListsNonEmptyAndDistinct(t *testing.T) {
	lists := map[string][]string{
		"actors": ThreatActors(), "techniques": Techniques(),
		"tools": Tools(), "malware": Malware(), "families": MalwareFamilies(),
		"platforms": Platforms(), "software": Software(), "vendors": Vendors(),
	}
	for name, l := range lists {
		if len(l) < 10 {
			t.Errorf("list %s too small: %d", name, len(l))
		}
		seen := map[string]bool{}
		for _, x := range l {
			if seen[Normalize(x)] {
				t.Errorf("list %s has duplicate %q", name, x)
			}
			seen[Normalize(x)] = true
		}
	}
}

func TestListsReturnCopies(t *testing.T) {
	a := Malware()
	a[0] = "MUTATED"
	if Malware()[0] == "MUTATED" {
		t.Error("Malware() exposes internal slice")
	}
}

func TestLookupMatching(t *testing.T) {
	l := NewLookup()
	cases := []struct {
		phrase string
		class  Class
	}{
		{"WannaCry", ClassMalware},
		{"wannacry", ClassMalware},
		{"Lazarus Group", ClassActor},
		{"lazarus   group", ClassActor},
		{"credential dumping", ClassTechnique},
		{"Mimikatz", ClassTool},
		{"Microsoft Exchange", ClassSoftware},
		{"Windows", ClassPlatform},
		{"Kaspersky", ClassVendor},
		{"ransomware", ClassFamily},
	}
	for _, c := range cases {
		got, ok := l.Match(c.phrase)
		if !ok || got != c.class {
			t.Errorf("Match(%q) = %v,%v want %v", c.phrase, got, ok, c.class)
		}
	}
	if _, ok := l.Match("definitely not curated"); ok {
		t.Error("matched uncurated phrase")
	}
}

func TestLookupMatchTokens(t *testing.T) {
	l := NewLookup()
	toks := []string{"the", "lazarus", "group", "used", "mimikatz"}
	if c, ok := l.MatchTokens(toks, 1, 2); !ok || c != ClassActor {
		t.Errorf("MatchTokens span: %v %v", c, ok)
	}
	if c, ok := l.MatchTokens(toks, 4, 1); !ok || c != ClassTool {
		t.Errorf("single token: %v %v", c, ok)
	}
	if _, ok := l.MatchTokens(toks, 4, 3); ok {
		t.Error("out-of-range span matched")
	}
	if _, ok := l.MatchTokens(toks, -1, 1); ok {
		t.Error("negative index matched")
	}
}

func TestLookupMaxPhraseLen(t *testing.T) {
	l := NewLookup()
	if l.MaxPhraseLen() < 3 {
		t.Errorf("max phrase len %d, expected >= 3 (e.g. multi-word techniques)", l.MaxPhraseLen())
	}
	if l.Size() < 200 {
		t.Errorf("lookup too small: %d phrases", l.Size())
	}
}

func TestClassesStable(t *testing.T) {
	cs := Classes()
	if len(cs) != 8 {
		t.Fatalf("expected 8 classes, got %d", len(cs))
	}
	if cs[0] != ClassMalware || cs[7] != ClassVendor {
		t.Errorf("class order changed: %v", cs)
	}
}

func TestNormalize(t *testing.T) {
	if Normalize("  Lazarus   GROUP ") != "lazarus group" {
		t.Errorf("normalize failed: %q", Normalize("  Lazarus   GROUP "))
	}
}
