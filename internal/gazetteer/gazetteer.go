// Package gazetteer holds the curated entity-name lists SecurityKG's data
// programming step builds its labeling functions from. The paper constructs
// the threat-actor, technique, and tool lists from MITRE ATT&CK; the lists
// here use the same public naming universe (group aliases, technique names,
// utility names) plus well-known malware and vendor names, so labeling
// functions behave like the paper's.
package gazetteer

import "strings"

// ThreatActors lists known adversary group names (ATT&CK-style).
func ThreatActors() []string { return copyList(threatActors) }

var threatActors = []string{
	"APT28", "APT29", "APT33", "APT37", "APT41", "Lazarus Group",
	"CozyDuke", "Fancy Bear", "Cozy Bear", "Equation Group", "Turla",
	"Sandworm", "FIN7", "FIN8", "Carbanak", "OilRig", "MuddyWater",
	"Kimsuky", "Gamaredon", "Sofacy", "DarkHydrus", "TA505", "TA542",
	"Wizard Spider", "Winnti Group", "Leviathan", "Dragonfly",
	"Silent Librarian", "Machete", "Patchwork", "SideWinder",
	"Transparent Tribe", "Gorgon Group", "Inception", "Naikon",
	"PLATINUM", "Deep Panda", "Putter Panda", "Axiom", "Night Dragon",
	"Elderwood", "Scarlet Mimic", "Moafee", "Threat Group-3390",
	"BlackTech", "Chimera", "Evilnum", "GALLIUM", "HAFNIUM", "Nomadic Octopus",
}

// Techniques lists adversary technique names (ATT&CK-style).
func Techniques() []string { return copyList(techniques) }

var techniques = []string{
	"spearphishing", "spearphishing attachment", "credential dumping",
	"process injection", "lateral movement", "privilege escalation",
	"scheduled task", "registry run keys", "dll side-loading",
	"dll injection", "powershell execution", "command-line interface",
	"remote desktop protocol", "pass the hash", "pass the ticket",
	"brute force", "keylogging", "screen capture", "data staging",
	"data encrypted for impact", "exfiltration over c2 channel",
	"masquerading", "obfuscated files", "process hollowing",
	"bootkit", "rootkit", "web shell", "supply chain compromise",
	"drive-by compromise", "watering hole", "domain fronting",
	"dns tunneling", "port knocking", "living off the land",
	"token impersonation", "kerberoasting", "password spraying",
	"phishing", "valid accounts", "external remote services",
	"exploitation for client execution", "user execution",
	"windows management instrumentation", "component object model hijacking",
	"accessibility features", "application shimming", "bits jobs",
	"clipboard data", "audio capture", "video capture", "input capture",
}

// Tools lists dual-use and attacker utility names.
func Tools() []string { return copyList(tools) }

var tools = []string{
	"Mimikatz", "Cobalt Strike", "PsExec", "PowerShell Empire",
	"Metasploit", "BloodHound", "SharpHound", "LaZagne", "Pupy",
	"QuasarRAT", "netcat", "Nmap", "Responder", "Rubeus", "Certutil",
	"BITSAdmin", "Impacket", "CrackMapExec", "PowerSploit", "Koadic",
	"Meterpreter", "ProcDump", "PsList", "AdFind", "Ngrok", "Plink",
	"WinRAR", "7-Zip", "RemCom", "Windows Credential Editor", "gsecdump",
	"pwdump", "htran", "FRP", "EarthWorm", "reGeorg", "China Chopper",
}

// Malware lists well-known malware names.
func Malware() []string { return copyList(malware) }

var malware = []string{
	"WannaCry", "NotPetya", "Emotet", "TrickBot", "Ryuk", "Dridex",
	"Qakbot", "IcedID", "Zeus", "SpyEye", "Conficker", "Stuxnet",
	"Duqu", "Flame", "Shamoon", "BlackEnergy", "Industroyer",
	"Triton", "LockBit", "REvil", "Sodinokibi", "Maze", "Conti",
	"DoppelPaymer", "Egregor", "NetWalker", "Clop", "DarkSide",
	"BadRabbit", "SamSam", "GandCrab", "Cerber", "Locky", "Jaff",
	"CryptoLocker", "TeslaCrypt", "Petya", "Mirai", "Gafgyt",
	"VPNFilter", "Slingshot", "PlugX", "Gh0st RAT", "njRAT",
	"NanoCore", "Agent Tesla", "FormBook", "LokiBot", "AZORult",
	"Raccoon Stealer", "RedLine Stealer", "Vidar", "Ursnif", "Gozi",
	"Carberp", "Ramnit", "Sality", "Virut", "Andromeda", "Necurs",
	"Kelihos", "Gameover Zeus", "Cridex", "Hancitor", "BazarLoader",
	"Cutwail", "Pushdo", "Waledac", "Storm Worm", "Code Red", "Slammer",
	"Sasser", "Blaster", "MyDoom", "Netsky", "Bagle", "Klez",
}

// MalwareFamilies lists family/category names.
func MalwareFamilies() []string { return copyList(families) }

var families = []string{
	"ransomware", "banking trojan", "infostealer", "botnet", "wiper",
	"downloader", "dropper", "loader", "backdoor", "rootkit family",
	"worm", "RAT", "adware", "spyware", "cryptominer", "bootkit family",
	"keylogger", "scareware", "point-of-sale malware", "mobile banker",
}

// Platforms lists execution platforms.
func Platforms() []string { return copyList(platforms) }

var platforms = []string{
	"Windows", "Linux", "macOS", "Android", "iOS", "Windows Server",
	"VMware ESXi", "IoT devices", "network appliances", "ICS systems",
}

// Software lists commonly targeted legitimate software.
func Software() []string { return copyList(software) }

var software = []string{
	"Microsoft Office", "Microsoft Word", "Microsoft Excel",
	"Microsoft Outlook", "Internet Explorer", "Google Chrome",
	"Mozilla Firefox", "Adobe Reader", "Adobe Flash Player",
	"Apache Struts", "Apache Tomcat", "Microsoft Exchange",
	"Exchange Server", "Windows Defender", "Active Directory",
	"Remote Desktop Services", "SMBv1", "OpenSSL", "Java Runtime",
	"WordPress", "Drupal", "Joomla", "Citrix ADC", "Pulse Secure VPN",
	"Fortinet FortiOS", "Oracle WebLogic", "Jenkins", "Confluence",
	"SolarWinds Orion", "Kaseya VSA", "Microsoft SQL Server", "MySQL",
	"PostgreSQL", "Docker Engine", "Kubernetes", "Elasticsearch Server",
}

// Vendors lists CTI vendor names used for report attribution.
func Vendors() []string { return copyList(vendors) }

var vendors = []string{
	"Kaspersky", "Symantec", "McAfee", "TrendMicro", "FireEye",
	"CrowdStrike", "Palo Alto Networks", "Unit 42", "Cisco Talos",
	"ESET", "Sophos", "Bitdefender", "Check Point", "Fortinet",
	"SecureWorks", "Mandiant", "RecordedFuture", "Proofpoint",
	"Microsoft Security", "IBM X-Force", "Malwarebytes", "Avast",
	"F-Secure", "Group-IB", "SentinelOne", "Dragos", "Claroty",
}

func copyList(xs []string) []string {
	out := make([]string, len(xs))
	copy(out, xs)
	return out
}

// Class identifies which curated list a phrase came from.
type Class string

// Gazetteer classes, aligned with the CRF's entity classes.
const (
	ClassMalware   Class = "MAL"
	ClassFamily    Class = "FAM"
	ClassActor     Class = "ACT"
	ClassTechnique Class = "TEC"
	ClassTool      Class = "TOOL"
	ClassSoftware  Class = "SW"
	ClassPlatform  Class = "PLAT"
	ClassVendor    Class = "VEND"
)

// Classes returns all gazetteer classes in stable order.
func Classes() []Class {
	return []Class{ClassMalware, ClassFamily, ClassActor, ClassTechnique,
		ClassTool, ClassSoftware, ClassPlatform, ClassVendor}
}

// Lookup is a normalized multi-word phrase matcher over the curated lists.
type Lookup struct {
	phrases map[string]Class // normalized phrase -> class
	maxLen  int              // longest phrase in tokens
}

// NewLookup builds the default lookup over every curated list.
func NewLookup() *Lookup {
	l := &Lookup{phrases: make(map[string]Class)}
	addAll := func(xs []string, c Class) {
		for _, x := range xs {
			key := Normalize(x)
			l.phrases[key] = c
			if n := len(strings.Fields(key)); n > l.maxLen {
				l.maxLen = n
			}
		}
	}
	addAll(malware, ClassMalware)
	addAll(families, ClassFamily)
	addAll(threatActors, ClassActor)
	addAll(techniques, ClassTechnique)
	addAll(tools, ClassTool)
	addAll(software, ClassSoftware)
	addAll(platforms, ClassPlatform)
	addAll(vendors, ClassVendor)
	return l
}

// Normalize lowercases and collapses internal whitespace so matching is
// insensitive to case and spacing.
func Normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// MaxPhraseLen returns the longest phrase length in tokens.
func (l *Lookup) MaxPhraseLen() int { return l.maxLen }

// Match returns the class of the normalized phrase, if curated.
func (l *Lookup) Match(phrase string) (Class, bool) {
	c, ok := l.phrases[Normalize(phrase)]
	return c, ok
}

// MatchTokens checks the token span [i, i+n) of lowercased tokens.
func (l *Lookup) MatchTokens(tokens []string, i, n int) (Class, bool) {
	if i < 0 || i+n > len(tokens) {
		return "", false
	}
	return l.Match(strings.Join(tokens[i:i+n], " "))
}

// Size returns the number of curated phrases.
func (l *Lookup) Size() int { return len(l.phrases) }
