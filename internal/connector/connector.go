// Package connector implements the storage stage of the pipeline: each
// connector refactors intermediate CTI representations into the security
// knowledge ontology and merges them into one backend. Connectors are
// swappable per the paper's extensibility goal: the default graph
// connector (Neo4j's role), a relational connector, and a log connector
// all share one interface.
package connector

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"securitykg/internal/ctirep"
	"securitykg/internal/graph"
	"securitykg/internal/ontology"
	"securitykg/internal/relstore"
	"securitykg/internal/search"
)

// Connector merges one CTI representation into a storage backend.
type Connector interface {
	Name() string
	Connect(c *ctirep.CTIRep) error
}

// --- graph connector ---

// GraphConnector writes to the embedded property graph and, optionally,
// a full-text index over report title/body (the Elasticsearch role).
type GraphConnector struct {
	store *graph.Store
	index *search.Index // may be nil
}

// NewGraphConnector builds the default connector. index may be nil.
func NewGraphConnector(store *graph.Store, index *search.Index) *GraphConnector {
	return &GraphConnector{store: store, index: index}
}

// Name implements Connector.
func (g *GraphConnector) Name() string { return "graph" }

// Connect refactors the CTI rep into ontology form: a report node, a
// REPORTED_BY edge to the vendor, MENTIONS edges to every entity,
// DESCRIBES edges to threat concepts, and the extracted relations.
// Storage-time merging is exact (type, name) per Section 2.5.
func (g *GraphConnector) Connect(c *ctirep.CTIRep) error {
	repEnt := c.ReportEntity()
	repID, _ := g.store.MergeNode(string(repEnt.Type), repEnt.Name, repEnt.Attrs)

	if c.Vendor != "" {
		vID, _ := g.store.MergeNode(string(ontology.TypeCTIVendor), c.Vendor, nil)
		if _, _, err := g.store.AddEdge(repID, string(ontology.RelReportedBy), vID,
			map[string]string{"report_id": c.ReportID}); err != nil {
			return fmt.Errorf("connector: graph: %w", err)
		}
	}
	for _, e := range c.Entities {
		if err := e.Validate(); err != nil {
			continue // skip malformed extractions, never poison the graph
		}
		attrs := map[string]string{"first_report": c.ReportID}
		for k, v := range e.Attrs {
			attrs[k] = v
		}
		eID, _ := g.store.MergeNode(string(e.Type), e.Name, attrs)
		rel := ontology.RelMentions
		if ontology.IsThreatConcept(e.Type) {
			rel = ontology.RelDescribes
		}
		if _, _, err := g.store.AddEdge(repID, string(rel), eID,
			map[string]string{"report_id": c.ReportID}); err != nil {
			return fmt.Errorf("connector: graph: %w", err)
		}
	}
	for _, r := range c.Relations {
		if err := r.Validate(); err != nil {
			continue
		}
		sID, _ := g.store.MergeNode(string(r.Src.Type), r.Src.Name, nil)
		dID, _ := g.store.MergeNode(string(r.Dst.Type), r.Dst.Name, nil)
		attrs := map[string]string{"report_id": c.ReportID}
		for k, v := range r.Attrs {
			attrs[k] = v
		}
		if _, _, err := g.store.AddEdge(sID, string(r.Type), dID, attrs); err != nil {
			return fmt.Errorf("connector: graph: %w", err)
		}
	}
	if g.index != nil {
		g.index.Add(search.Document{
			ID: c.ReportID,
			Fields: map[string]string{
				"title": c.Title,
				"body":  c.Text,
			},
		})
	}
	return nil
}

// --- log connector ---

// LogConnector appends each CTI rep as one JSON line, useful for audit
// trails and for feeding external systems.
type LogConnector struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewLogConnector writes JSON lines to w.
func NewLogConnector(w io.Writer) *LogConnector {
	return &LogConnector{w: w, enc: json.NewEncoder(w)}
}

// Name implements Connector.
func (l *LogConnector) Name() string { return "log" }

// Connect implements Connector.
func (l *LogConnector) Connect(c *ctirep.CTIRep) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.enc.Encode(c); err != nil {
		return fmt.Errorf("connector: log: %w", err)
	}
	return nil
}

// --- relational connector ---

// RelConnector flattens the knowledge into relational tables: reports,
// entities, mentions, and relations.
type RelConnector struct {
	store *relstore.Store
	mu    sync.Mutex
	seq   int
}

// Relational schema created by NewRelConnector.
const (
	TableReports   = "reports"
	TableEntities  = "entities"
	TableMentions  = "mentions"
	TableRelations = "relations"
)

// NewRelConnector creates the schema in the store (idempotent only on a
// fresh store) and returns the connector.
func NewRelConnector(store *relstore.Store) (*RelConnector, error) {
	mk := func(name string, cols ...string) error {
		err := store.CreateTable(name, cols...)
		if err != nil {
			return err
		}
		return nil
	}
	if err := mk(TableReports, "report_id", "title", "vendor", "kind", "source", "url", "published_at"); err != nil {
		return nil, err
	}
	if err := mk(TableEntities, "type", "name"); err != nil {
		return nil, err
	}
	if err := mk(TableMentions, "report_id", "type", "name"); err != nil {
		return nil, err
	}
	if err := mk(TableRelations, "src_type", "src_name", "rel", "dst_type", "dst_name", "report_id"); err != nil {
		return nil, err
	}
	if err := store.CreateIndex(TableEntities, "name"); err != nil {
		return nil, err
	}
	if err := store.CreateIndex(TableMentions, "report_id"); err != nil {
		return nil, err
	}
	return &RelConnector{store: store}, nil
}

// Name implements Connector.
func (r *RelConnector) Name() string { return "relational" }

// Connect implements Connector.
func (r *RelConnector) Connect(c *ctirep.CTIRep) error {
	if err := r.store.Insert(TableReports, relstore.Row{
		"report_id": c.ReportID, "title": c.Title, "vendor": c.Vendor,
		"kind": c.Kind, "source": c.Source, "url": c.URL,
		"published_at": c.PublishedAt,
	}); err != nil {
		return fmt.Errorf("connector: relational: %w", err)
	}
	for _, e := range c.Entities {
		if e.Validate() != nil {
			continue
		}
		// Entity table dedup: insert only when absent.
		rows, err := r.store.Select(TableEntities, relstore.Row{"name": e.Name})
		if err != nil {
			return fmt.Errorf("connector: relational: %w", err)
		}
		exists := false
		for _, row := range rows {
			if row["type"] == string(e.Type) {
				exists = true
			}
		}
		if !exists {
			if err := r.store.Insert(TableEntities, relstore.Row{
				"type": string(e.Type), "name": e.Name,
			}); err != nil {
				return fmt.Errorf("connector: relational: %w", err)
			}
		}
		if err := r.store.Insert(TableMentions, relstore.Row{
			"report_id": c.ReportID, "type": string(e.Type), "name": e.Name,
		}); err != nil {
			return fmt.Errorf("connector: relational: %w", err)
		}
	}
	for _, rel := range c.Relations {
		if rel.Validate() != nil {
			continue
		}
		if err := r.store.Insert(TableRelations, relstore.Row{
			"src_type": string(rel.Src.Type), "src_name": rel.Src.Name,
			"rel":      string(rel.Type),
			"dst_type": string(rel.Dst.Type), "dst_name": rel.Dst.Name,
			"report_id": c.ReportID,
		}); err != nil {
			return fmt.Errorf("connector: relational: %w", err)
		}
	}
	r.mu.Lock()
	r.seq++
	r.mu.Unlock()
	return nil
}

// Connected returns how many reps this connector has stored.
func (r *RelConnector) Connected() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}
