package connector

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"securitykg/internal/ctirep"
	"securitykg/internal/graph"
	"securitykg/internal/ontology"
	"securitykg/internal/relstore"
	"securitykg/internal/search"
)

func sampleCTI() *ctirep.CTIRep {
	return &ctirep.CTIRep{
		ReportID:    "rep-1",
		Source:      "acme",
		URL:         "https://acme/r/1",
		Title:       "WannaCry analysis",
		Vendor:      "AcmeSec",
		Kind:        "malware",
		PublishedAt: "2021-02-26",
		Text:        "WannaCry encrypts files and connects to 10.0.0.5.",
		Entities: []ontology.Entity{
			{Type: ontology.TypeMalware, Name: "WannaCry"},
			{Type: ontology.TypeIP, Name: "10.0.0.5"},
			{Type: "Bogus", Name: "skipme"}, // must be skipped, not fail
		},
		Relations: []ontology.Relation{
			{
				Src:  ontology.Entity{Type: ontology.TypeMalware, Name: "WannaCry"},
				Type: ontology.RelConnectsTo,
				Dst:  ontology.Entity{Type: ontology.TypeIP, Name: "10.0.0.5"},
			},
			{ // schema-invalid: skipped
				Src:  ontology.Entity{Type: ontology.TypeIP, Name: "10.0.0.5"},
				Type: ontology.RelEncrypts,
				Dst:  ontology.Entity{Type: ontology.TypeMalware, Name: "WannaCry"},
			},
		},
	}
}

func TestGraphConnectorRefactorsToOntology(t *testing.T) {
	store := graph.New()
	idx := search.NewIndex(nil)
	gc := NewGraphConnector(store, idx)
	if err := gc.Connect(sampleCTI()); err != nil {
		t.Fatal(err)
	}
	// Report node with attrs.
	rep := store.FindNode(string(ontology.TypeMalwareReport), "WannaCry analysis")
	if rep == nil || rep.Attrs["report_id"] != "rep-1" {
		t.Fatalf("report node: %+v", rep)
	}
	// Vendor attribution.
	vendor := store.FindNode(string(ontology.TypeCTIVendor), "AcmeSec")
	if vendor == nil {
		t.Fatal("vendor node missing")
	}
	// DESCRIBES for threat concept, MENTIONS for IOC.
	mal := store.FindNode(string(ontology.TypeMalware), "WannaCry")
	ip := store.FindNode(string(ontology.TypeIP), "10.0.0.5")
	if mal == nil || ip == nil {
		t.Fatal("entity nodes missing")
	}
	edgeTypes := map[string]bool{}
	for _, e := range store.Edges(rep.ID, graph.Out) {
		edgeTypes[e.Type] = true
	}
	if !edgeTypes[string(ontology.RelReportedBy)] || !edgeTypes[string(ontology.RelDescribes)] ||
		!edgeTypes[string(ontology.RelMentions)] {
		t.Errorf("report edge types: %+v", edgeTypes)
	}
	// Extracted relation became an edge; invalid one skipped.
	outs := store.Edges(mal.ID, graph.Out)
	if len(outs) != 1 || outs[0].Type != string(ontology.RelConnectsTo) {
		t.Errorf("malware out edges: %+v", outs)
	}
	if ins := store.Edges(mal.ID, graph.In); len(ins) != 1 {
		t.Errorf("invalid relation leaked: %+v", ins)
	}
	// Bogus entity skipped silently.
	if n := store.NodesByName("skipme"); len(n) != 0 {
		t.Error("invalid entity stored")
	}
	// Search index covers the report.
	if hits := idx.Search("wannacry", 5); len(hits) != 1 || hits[0].ID != "rep-1" {
		t.Errorf("index: %+v", hits)
	}
}

func TestGraphConnectorIdempotent(t *testing.T) {
	store := graph.New()
	gc := NewGraphConnector(store, nil)
	if err := gc.Connect(sampleCTI()); err != nil {
		t.Fatal(err)
	}
	first := store.Stats()
	if err := gc.Connect(sampleCTI()); err != nil {
		t.Fatal(err)
	}
	second := store.Stats()
	if first.Nodes != second.Nodes || first.Edges != second.Edges {
		t.Errorf("re-connect changed graph: %+v vs %+v", first, second)
	}
}

func TestLogConnectorWritesJSONLines(t *testing.T) {
	var buf bytes.Buffer
	lc := NewLogConnector(&buf)
	if lc.Name() != "log" {
		t.Error("name")
	}
	if err := lc.Connect(sampleCTI()); err != nil {
		t.Fatal(err)
	}
	if err := lc.Connect(sampleCTI()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %d", len(lines))
	}
	var c ctirep.CTIRep
	if err := json.Unmarshal([]byte(lines[0]), &c); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if c.ReportID != "rep-1" {
		t.Errorf("round trip: %+v", c)
	}
}

func TestRelConnectorTables(t *testing.T) {
	rs := relstore.New()
	rc, err := NewRelConnector(rs)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Connect(sampleCTI()); err != nil {
		t.Fatal(err)
	}
	second := sampleCTI()
	second.ReportID = "rep-2"
	second.URL = "https://acme/r/2"
	if err := rc.Connect(second); err != nil {
		t.Fatal(err)
	}
	if rc.Connected() != 2 {
		t.Errorf("connected count: %d", rc.Connected())
	}
	if n, _ := rs.Count(TableReports); n != 2 {
		t.Errorf("reports rows: %d", n)
	}
	// Entities table dedups across reports.
	ents, err := rs.Select(TableEntities, relstore.Row{"name": "WannaCry"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("entity dedup: %+v", ents)
	}
	// Mentions accumulate per report.
	mentions, _ := rs.Select(TableMentions, relstore.Row{"report_id": "rep-1"})
	if len(mentions) != 2 { // WannaCry + IP (bogus skipped)
		t.Errorf("mentions: %+v", mentions)
	}
	rels, _ := rs.Select(TableRelations, nil)
	if len(rels) != 2 { // one valid relation per Connect call
		t.Errorf("relations rows: %d", len(rels))
	}
}

func TestRelConnectorSchemaConflict(t *testing.T) {
	rs := relstore.New()
	if _, err := NewRelConnector(rs); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRelConnector(rs); err == nil {
		t.Error("second schema creation on same store should fail")
	}
}
