// Package depparse implements the dependency-parsing-based relation
// extraction pipeline of the paper (Section 2.4): a deterministic
// rule-based arc builder over POS-tagged tokens, and an unsupervised
// extractor that finds the relation verb connecting two recognized
// entities (subject-verb-object and verb-preposition-object paths,
// including passive voice and object conjunctions).
package depparse

import (
	"securitykg/internal/ontology"
	"securitykg/internal/textproc"
)

// Arc is one dependency edge: Head and Dep are token indices; Label is a
// Universal-Dependencies-flavored relation name.
type Arc struct {
	Head  int
	Dep   int
	Label string // nsubj, nsubjpass, dobj, prep, pobj, agent, conj, det, amod, aux
}

// Parse builds dependency arcs for one sentence of annotated tokens
// (textproc.Annotate output). The grammar is intentionally small: it
// resolves exactly the structures relation extraction consumes.
func Parse(toks []textproc.Token) []Arc {
	var arcs []Arc
	chunks := chunkNouns(toks)
	headOf := make([]int, len(toks)) // token -> its chunk head (or self)
	for i := range headOf {
		headOf[i] = i
	}
	for _, c := range chunks {
		for i := c.start; i < c.end; i++ {
			headOf[i] = c.head
		}
		// Internal chunk arcs: det/amod to the head.
		for i := c.start; i < c.end; i++ {
			if i == c.head {
				continue
			}
			label := "compound"
			switch toks[i].POS {
			case textproc.TagDT:
				label = "det"
			case textproc.TagJJ:
				label = "amod"
			}
			arcs = append(arcs, Arc{Head: c.head, Dep: i, Label: label})
		}
	}

	groups := verbGroups(toks)
	for _, g := range groups {
		// Auxiliaries attach to the main verb.
		for i := g.start; i < g.end; i++ {
			if i != g.main {
				arcs = append(arcs, Arc{Head: g.main, Dep: i, Label: "aux"})
			}
		}
		// Subject: nearest chunk head to the left, not crossing another verb.
		if subj := findSubject(toks, chunks, groups, g); subj >= 0 {
			label := "nsubj"
			if g.passive {
				label = "nsubjpass"
			}
			arcs = append(arcs, Arc{Head: g.main, Dep: subj, Label: label})
		}
		// Objects to the right until the next verb group.
		arcs = append(arcs, findObjects(toks, chunks, groups, g, headOf)...)
	}
	return arcs
}

// nounChunk is a maximal DT/JJ/NN* run; head is the last noun.
type nounChunk struct {
	start, end, head int
}

func chunkNouns(toks []textproc.Token) []nounChunk {
	var out []nounChunk
	i := 0
	for i < len(toks) {
		if !chunkable(toks[i].POS) {
			i++
			continue
		}
		j := i
		head := -1
		for j < len(toks) && chunkable(toks[j].POS) {
			// Nouns and pronouns head chunks; numbers can too (IOCs such
			// as IP addresses tokenize as CD).
			if textproc.IsNounTag(toks[j].POS) || toks[j].POS == textproc.TagPRP ||
				toks[j].POS == textproc.TagCD {
				head = j
			}
			j++
		}
		if head >= 0 {
			out = append(out, nounChunk{start: i, end: j, head: head})
		}
		i = j
	}
	return out
}

func chunkable(pos string) bool {
	return textproc.IsNounTag(pos) || pos == textproc.TagDT ||
		pos == textproc.TagJJ || pos == textproc.TagPRP ||
		pos == textproc.TagPRPS || pos == textproc.TagCD
}

// verbGroup is a run of verb/aux/modal tokens; main is the lexical head
// (last verb); passive when the head is VBN preceded by a be-form.
type verbGroup struct {
	start, end, main int
	passive          bool
}

func verbGroups(toks []textproc.Token) []verbGroup {
	var out []verbGroup
	i := 0
	for i < len(toks) {
		if !verbish(toks[i]) {
			i++
			continue
		}
		j := i
		for j < len(toks) && (verbish(toks[j]) || toks[j].POS == textproc.TagRB ||
			toks[j].POS == textproc.TagTO) {
			j++
		}
		// Trim trailing adverbs/TO from the group.
		end := j
		for end > i && !verbish(toks[end-1]) {
			end--
		}
		main := end - 1
		g := verbGroup{start: i, end: end, main: main}
		if toks[main].POS == textproc.TagVBN {
			for k := i; k < main; k++ {
				if toks[k].Lemma == "be" {
					g.passive = true
					break
				}
			}
		}
		out = append(out, g)
		i = j
	}
	return out
}

func verbish(t textproc.Token) bool {
	return textproc.IsVerbTag(t.POS) || t.POS == textproc.TagMD
}

func findSubject(toks []textproc.Token, chunks []nounChunk, groups []verbGroup, g verbGroup) int {
	best := -1
	for _, c := range chunks {
		if c.end > g.start {
			break
		}
		// Subject must not be separated from the verb by another verb group.
		blocked := false
		for _, og := range groups {
			if og.start >= c.end && og.end <= g.start {
				blocked = true
				break
			}
		}
		if !blocked {
			best = c.head
		}
	}
	return best
}

func findObjects(toks []textproc.Token, chunks []nounChunk, groups []verbGroup, g verbGroup, headOf []int) []Arc {
	var arcs []Arc
	// Scan region: from end of verb group to start of next verb group (or EOS).
	limit := len(toks)
	for _, og := range groups {
		if og.start >= g.end && og.start < limit {
			limit = og.start
		}
	}
	pendingPrep := -1 // token index of an open preposition
	firstDirect := true
	var lastObjArc *int // index into arcs of the last object arc, for conj
	for i := g.end; i < limit; i++ {
		t := toks[i]
		switch {
		case t.POS == textproc.TagIN || t.POS == textproc.TagTO:
			pendingPrep = i
		case t.POS == textproc.TagCC || t.Text == ",":
			// Conjunction continues the previous object role.
		case textproc.IsNounTag(t.POS) || t.POS == textproc.TagPRP ||
			t.POS == textproc.TagCD:
			h := headOf[i]
			if h != i {
				// Only attach once per chunk, at its head.
				if i != h {
					continue
				}
			}
			if pendingPrep >= 0 {
				arcs = append(arcs, Arc{Head: g.main, Dep: pendingPrep, Label: "prep"})
				label := "pobj"
				if g.passive && toks[pendingPrep].Lemma == "by" {
					label = "agent"
				}
				arcs = append(arcs, Arc{Head: pendingPrep, Dep: h, Label: label})
				idx := len(arcs) - 1
				lastObjArc = &idx
				pendingPrep = -1
			} else if firstDirect {
				arcs = append(arcs, Arc{Head: g.main, Dep: h, Label: "dobj"})
				idx := len(arcs) - 1
				lastObjArc = &idx
				firstDirect = false
			} else if lastObjArc != nil {
				// Conjoined object: inherit the previous role's head.
				prev := arcs[*lastObjArc]
				arcs = append(arcs, Arc{Head: prev.Head, Dep: h, Label: prev.Label + ":conj"})
			}
			// Skip to the end of this chunk.
			for i+1 < limit && headOf[i+1] == h {
				i++
			}
		}
	}
	return arcs
}

// EntitySpan is a recognized entity anchored to token positions
// [Start, End) in the sentence.
type EntitySpan struct {
	Type  ontology.EntityType
	Name  string
	Start int
	End   int
}

// Triple is one extracted relation between two entity spans.
type Triple struct {
	Src  EntitySpan
	Verb string // lemmatized relation verb
	Rel  ontology.RelationType
	Dst  EntitySpan
}

// ExtractRelations finds relation verbs connecting entity pairs along
// dependency paths: subject->verb->object, subject->verb->prep->pobj, and
// passive constructions ("X was dropped by Y" yields <Y, DROP, X>). Verbs
// map to ontology relation types via the curated verb table; pairs whose
// specific relation the schema rejects fall back to RELATED_TO.
func ExtractRelations(toks []textproc.Token, spans []EntitySpan) []Triple {
	if len(spans) < 2 {
		return nil
	}
	arcs := Parse(toks)
	// Chunk map for head-to-span fallback: "The CozyDuke group" has chunk
	// head "group" while the entity span covers only "CozyDuke"; a head
	// token resolves to any entity span overlapping its chunk.
	chunks := chunkNouns(toks)
	chunkAt := make([]int, len(toks))
	for i := range chunkAt {
		chunkAt[i] = -1
	}
	for ci, c := range chunks {
		for i := c.start; i < c.end; i++ {
			chunkAt[i] = ci
		}
	}
	spanOf := func(tokIdx int) *EntitySpan {
		for i := range spans {
			if tokIdx >= spans[i].Start && tokIdx < spans[i].End {
				return &spans[i]
			}
		}
		if tokIdx >= 0 && tokIdx < len(chunkAt) && chunkAt[tokIdx] >= 0 {
			c := chunks[chunkAt[tokIdx]]
			for i := range spans {
				if spans[i].Start < c.end && spans[i].End > c.start {
					return &spans[i]
				}
			}
		}
		return nil
	}
	// Collect per-verb roles.
	type roles struct {
		subj, obj, agent []*EntitySpan
		dobj, pobj       []*EntitySpan
		passiveSubj      []*EntitySpan
	}
	verbRoles := map[int]*roles{}
	get := func(v int) *roles {
		r, ok := verbRoles[v]
		if !ok {
			r = &roles{}
			verbRoles[v] = r
		}
		return r
	}
	prepHead := map[int]int{} // prep token -> verb
	for _, a := range arcs {
		switch a.Label {
		case "nsubj":
			if sp := spanOf(a.Dep); sp != nil {
				get(a.Head).subj = append(get(a.Head).subj, sp)
			}
		case "nsubjpass":
			if sp := spanOf(a.Dep); sp != nil {
				get(a.Head).passiveSubj = append(get(a.Head).passiveSubj, sp)
			}
		case "dobj", "dobj:conj":
			if sp := spanOf(a.Dep); sp != nil {
				r := get(a.Head)
				r.obj = append(r.obj, sp)
				r.dobj = append(r.dobj, sp)
			}
		case "prep":
			prepHead[a.Dep] = a.Head
		case "pobj", "pobj:conj":
			verb, ok := prepHead[a.Head]
			if !ok {
				// conj inherits its prep's verb via the same prep token
				continue
			}
			if sp := spanOf(a.Dep); sp != nil {
				r := get(verb)
				r.obj = append(r.obj, sp)
				r.pobj = append(r.pobj, sp)
			}
		case "agent", "agent:conj":
			verb, ok := prepHead[a.Head]
			if !ok {
				continue
			}
			if sp := spanOf(a.Dep); sp != nil {
				get(verb).agent = append(get(verb).agent, sp)
			}
		}
	}
	var out []Triple
	emit := func(src, dst *EntitySpan, verb int) {
		if src == nil || dst == nil || src == dst {
			return
		}
		lemma := toks[verb].Lemma
		rel := ontology.VerbRelation(lemma)
		if !ontology.Admissible(src.Type, rel, dst.Type) {
			rel = ontology.RelRelatedTo
		}
		out = append(out, Triple{Src: *src, Verb: lemma, Rel: rel, Dst: *dst})
	}
	for v, r := range verbRoles {
		for _, s := range r.subj {
			for _, o := range r.obj {
				emit(s, o, v)
			}
		}
		// Non-entity subject with entity dobj and pobj: the direct object
		// relates to the prepositional object ("Researchers attributed
		// MALWARE to ACTOR" -> <MALWARE, ATTRIBUTED_TO, ACTOR>).
		if len(r.subj) == 0 {
			for _, d := range r.dobj {
				for _, p := range r.pobj {
					emit(d, p, v)
				}
			}
		}
		// Passive: agent is the semantic subject, passive subject the object.
		for _, ag := range r.agent {
			for _, ps := range r.passiveSubj {
				emit(ag, ps, v)
			}
		}
		// Passive without agent but with prep objects: passive subject acts
		// as semantic object of the verb ("X was observed in ...") — no
		// entity pair, skip.
	}
	return dedupeTriples(out)
}

func dedupeTriples(ts []Triple) []Triple {
	seen := map[string]bool{}
	out := ts[:0]
	for _, t := range ts {
		k := string(t.Src.Type) + t.Src.Name + string(t.Rel) + string(t.Dst.Type) + t.Dst.Name
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}
