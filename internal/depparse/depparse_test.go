package depparse

import (
	"testing"

	"securitykg/internal/ontology"
	"securitykg/internal/textproc"
)

func annotate(s string) []textproc.Token { return textproc.Annotate(s) }

func findArc(arcs []Arc, label string) (Arc, bool) {
	for _, a := range arcs {
		if a.Label == label {
			return a, true
		}
	}
	return Arc{}, false
}

func TestParseSubjectVerbObject(t *testing.T) {
	toks := annotate("The malware dropped a payload")
	arcs := Parse(toks)
	subj, ok := findArc(arcs, "nsubj")
	if !ok {
		t.Fatalf("no nsubj arc: %+v", arcs)
	}
	if toks[subj.Dep].Text != "malware" || toks[subj.Head].Text != "dropped" {
		t.Errorf("nsubj wrong: %s <- %s", toks[subj.Head].Text, toks[subj.Dep].Text)
	}
	obj, ok := findArc(arcs, "dobj")
	if !ok {
		t.Fatalf("no dobj arc: %+v", arcs)
	}
	if toks[obj.Dep].Text != "payload" {
		t.Errorf("dobj wrong: %s", toks[obj.Dep].Text)
	}
}

func TestParsePrepositionalObject(t *testing.T) {
	toks := annotate("The worm connects to the server")
	arcs := Parse(toks)
	prep, ok := findArc(arcs, "prep")
	if !ok {
		t.Fatalf("no prep arc: %+v", arcs)
	}
	if toks[prep.Dep].Text != "to" {
		t.Errorf("prep wrong: %s", toks[prep.Dep].Text)
	}
	pobj, ok := findArc(arcs, "pobj")
	if !ok {
		t.Fatalf("no pobj arc: %+v", arcs)
	}
	if toks[pobj.Dep].Text != "server" {
		t.Errorf("pobj wrong: %s", toks[pobj.Dep].Text)
	}
}

func TestParsePassiveWithAgent(t *testing.T) {
	toks := annotate("The payload was dropped by the malware")
	arcs := Parse(toks)
	if _, ok := findArc(arcs, "nsubjpass"); !ok {
		t.Errorf("no nsubjpass arc: %+v", arcs)
	}
	ag, ok := findArc(arcs, "agent")
	if !ok {
		t.Fatalf("no agent arc: %+v", arcs)
	}
	if toks[ag.Dep].Text != "malware" {
		t.Errorf("agent wrong: %s", toks[ag.Dep].Text)
	}
}

func TestParseSubjectNotCrossedByVerb(t *testing.T) {
	// "researchers" is subject of "observed"; "malware" is subject of
	// "connects" in the relative continuation.
	toks := annotate("Researchers observed the malware and the malware connects to servers")
	arcs := Parse(toks)
	var nsubjs []Arc
	for _, a := range arcs {
		if a.Label == "nsubj" {
			nsubjs = append(nsubjs, a)
		}
	}
	if len(nsubjs) != 2 {
		t.Fatalf("expected 2 nsubj arcs, got %+v", nsubjs)
	}
	if toks[nsubjs[0].Dep].Text != "Researchers" {
		t.Errorf("first subject: %s", toks[nsubjs[0].Dep].Text)
	}
}

func TestParseDetAmodAttachToChunkHead(t *testing.T) {
	toks := annotate("The malicious payload executed")
	arcs := Parse(toks)
	det, ok := findArc(arcs, "det")
	if !ok {
		t.Fatalf("no det arc: %+v", arcs)
	}
	if toks[det.Head].Text != "payload" {
		t.Errorf("det head: %s", toks[det.Head].Text)
	}
	amod, ok := findArc(arcs, "amod")
	if !ok || toks[amod.Dep].Text != "malicious" {
		t.Errorf("amod: %+v", amod)
	}
}

func span(t ontology.EntityType, name string, start, end int) EntitySpan {
	return EntitySpan{Type: t, Name: name, Start: start, End: end}
}

func TestExtractRelationsSVO(t *testing.T) {
	// "WannaCry dropped tasksche.exe"  (0,1,2 after tokenization? verify)
	toks := annotate("WannaCry dropped the file quickly")
	spans := []EntitySpan{
		span(ontology.TypeMalware, "WannaCry", 0, 1),
		span(ontology.TypeFileName, "the file", 2, 4),
	}
	triples := ExtractRelations(toks, spans)
	if len(triples) != 1 {
		t.Fatalf("triples: %+v", triples)
	}
	tr := triples[0]
	if tr.Src.Name != "WannaCry" || tr.Rel != ontology.RelDrops || tr.Verb != "drop" {
		t.Errorf("triple wrong: %+v", tr)
	}
}

func TestExtractRelationsPrepPath(t *testing.T) {
	toks := annotate("Emotet connects to badhost daily")
	spans := []EntitySpan{
		span(ontology.TypeMalware, "Emotet", 0, 1),
		span(ontology.TypeDomain, "badhost", 3, 4),
	}
	triples := ExtractRelations(toks, spans)
	if len(triples) != 1 {
		t.Fatalf("triples: %+v", triples)
	}
	if triples[0].Rel != ontology.RelConnectsTo {
		t.Errorf("relation: %+v", triples[0])
	}
}

func TestExtractRelationsPassive(t *testing.T) {
	toks := annotate("The implant was deployed by Sandworm")
	spans := []EntitySpan{
		span(ontology.TypeTool, "implant", 0, 3),
		span(ontology.TypeThreatActor, "Sandworm", 5, 6),
	}
	triples := ExtractRelations(toks, spans)
	if len(triples) != 1 {
		t.Fatalf("triples: %+v", triples)
	}
	tr := triples[0]
	if tr.Src.Name != "Sandworm" || tr.Dst.Name != "implant" {
		t.Errorf("passive direction wrong: %+v", tr)
	}
	if tr.Rel != ontology.RelUses { // deploy -> USE
		t.Errorf("verb mapping: %+v", tr)
	}
}

func TestExtractRelationsConjoinedObjects(t *testing.T) {
	toks := annotate("TrickBot contacts alpha and beta")
	spans := []EntitySpan{
		span(ontology.TypeMalware, "TrickBot", 0, 1),
		span(ontology.TypeDomain, "alpha", 2, 3),
		span(ontology.TypeDomain, "beta", 4, 5),
	}
	triples := ExtractRelations(toks, spans)
	if len(triples) != 2 {
		t.Fatalf("expected 2 triples for conjunction: %+v", triples)
	}
}

func TestExtractRelationsInadmissibleFallsBack(t *testing.T) {
	// "encrypt" maps to ENCRYPT which requires file-ish targets; an IP
	// target must fall back to RELATED_TO rather than emit an invalid edge.
	toks := annotate("WannaCry encrypts 10.0.0.1")
	spans := []EntitySpan{
		span(ontology.TypeMalware, "WannaCry", 0, 1),
		span(ontology.TypeIP, "10.0.0.1", 2, 3),
	}
	triples := ExtractRelations(toks, spans)
	if len(triples) != 1 {
		t.Fatalf("triples: %+v", triples)
	}
	if triples[0].Rel != ontology.RelRelatedTo {
		t.Errorf("expected RELATED_TO fallback, got %s", triples[0].Rel)
	}
}

func TestExtractRelationsNeedsTwoSpans(t *testing.T) {
	toks := annotate("WannaCry spreads")
	spans := []EntitySpan{span(ontology.TypeMalware, "WannaCry", 0, 1)}
	if got := ExtractRelations(toks, spans); got != nil {
		t.Errorf("single span produced triples: %+v", got)
	}
}

func TestExtractRelationsNoVerbBetween(t *testing.T) {
	toks := annotate("WannaCry NotPetya Emotet")
	spans := []EntitySpan{
		span(ontology.TypeMalware, "WannaCry", 0, 1),
		span(ontology.TypeMalware, "NotPetya", 1, 2),
	}
	if got := ExtractRelations(toks, spans); len(got) != 0 {
		t.Errorf("no-verb case produced triples: %+v", got)
	}
}

func TestExtractRelationsDedupes(t *testing.T) {
	toks := annotate("Ryuk encrypts files and encrypts files")
	spans := []EntitySpan{
		span(ontology.TypeMalware, "Ryuk", 0, 1),
		span(ontology.TypeFileName, "files", 2, 3),
		span(ontology.TypeFileName, "files", 5, 6),
	}
	triples := ExtractRelations(toks, spans)
	seen := map[string]int{}
	for _, tr := range triples {
		seen[tr.Src.Name+string(tr.Rel)+tr.Dst.Name]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("duplicate triple %s x%d", k, n)
		}
	}
}

func TestParseEmptyAndVerbless(t *testing.T) {
	if arcs := Parse(nil); len(arcs) != 0 {
		t.Errorf("empty input: %+v", arcs)
	}
	arcs := Parse(annotate("the quick brown fox"))
	for _, a := range arcs {
		if a.Label == "nsubj" || a.Label == "dobj" {
			t.Errorf("verbless sentence has clause arcs: %+v", arcs)
		}
	}
}
