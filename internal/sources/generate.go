package sources

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"securitykg/internal/gazetteer"
	"securitykg/internal/ontology"
)

// Truth is the ground truth behind one generated report: the entities and
// relations its text encodes. Experiments score extraction against it.
type Truth struct {
	Source      string
	Index       int
	URL         string
	Title       string
	Vendor      string
	Kind        string // malware | vulnerability | attack
	PublishedAt string
	Entities    []ontology.Entity
	Relations   []ontology.Relation
	Paragraphs  []string
	MultiPage   bool
	// UnseenMalware is set when the malware name was generated rather than
	// drawn from the gazetteer (tests CRF generalization).
	UnseenMalware bool
	// AliasOf is set when the malware name is a vendor-convention variant
	// of a canonical curated name (exercise for the fusion stage).
	AliasOf string
}

// novel name parts for malware/actors outside every gazetteer.
var novelPrefix = []string{"Frost", "Night", "Dusk", "Grim", "Pale", "Hollow",
	"Iron", "Crimson", "Silent", "Amber", "Ghost", "Shadow", "Ember", "Rust"}
var novelSuffix = []string{"bite", "shade", "lockr", "spider", "fang", "claw",
	"viper", "wasp", "lynx", "moth", "crow", "howl", "root", "drift"}

func novelName(rng *rand.Rand) string {
	return novelPrefix[rng.Intn(len(novelPrefix))] + novelSuffix[rng.Intn(len(novelSuffix))]
}

// aliasVariant renders a curated malware name in a different vendor naming
// convention; the fusion stage should merge it back onto the canonical.
func aliasVariant(name string, rng *rand.Rand) string {
	condensed := strings.ReplaceAll(name, " ", "")
	switch rng.Intn(3) {
	case 0:
		return strings.ToUpper(condensed)
	case 1:
		return "W32/" + condensed
	default:
		return "Ransom.Win32." + condensed
	}
}

func hashSeed(parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// relTemplate is one sentence template plus the relation it encodes.
type relTemplate struct {
	format string // placeholders: %[1]s src name, %[2]s dst name
	rel    ontology.RelationType
	verb   string
}

// GenerateTruth deterministically generates the ground truth for report
// idx of the given source under the web's seed.
func (w *Web) GenerateTruth(spec SourceSpec, idx int) *Truth {
	rng := rand.New(rand.NewSource(hashSeed(fmt.Sprint(w.seed), spec.Slug, fmt.Sprint(idx))))
	t := &Truth{
		Source: spec.Slug,
		Index:  idx,
		URL:    fmt.Sprintf("%s/report/%d", spec.BaseURL(), idx),
		Vendor: spec.Vendor,
	}
	switch spec.Category {
	case "encyclopedia":
		t.Kind = "malware"
	case "news":
		t.Kind = []string{"attack", "attack", "vulnerability", "malware"}[rng.Intn(4)]
	default:
		t.Kind = []string{"malware", "malware", "attack", "vulnerability"}[rng.Intn(4)]
	}
	t.PublishedAt = fmt.Sprintf("20%02d-%02d-%02d", 18+rng.Intn(4), 1+rng.Intn(12), 1+rng.Intn(28))

	// --- entity selection ---
	malList := gazetteer.Malware()
	malName := malList[rng.Intn(len(malList))]
	switch {
	case rng.Float64() < 0.12:
		malName = novelName(rng)
		t.UnseenMalware = true
	case rng.Float64() < 0.25:
		canonical := malName
		malName = aliasVariant(canonical, rng)
		t.AliasOf = canonical
	}
	actors := gazetteer.ThreatActors()
	actor := actors[rng.Intn(len(actors))]
	fams := gazetteer.MalwareFamilies()
	family := fams[rng.Intn(len(fams))]
	techs := gazetteer.Techniques()
	tech1 := techs[rng.Intn(len(techs))]
	tech2 := techs[rng.Intn(len(techs))]
	tools := gazetteer.Tools()
	tool := tools[rng.Intn(len(tools))]
	sw := gazetteer.Software()
	software := sw[rng.Intn(len(sw))]
	plats := gazetteer.Platforms()
	platform := plats[rng.Intn(len(plats))]
	cve := fmt.Sprintf("CVE-20%02d-%04d", 15+rng.Intn(7), 1000+rng.Intn(9000))

	ip := fmt.Sprintf("%d.%d.%d.%d", 1+rng.Intn(222), rng.Intn(255), rng.Intn(255), 1+rng.Intn(254))
	domain := fmt.Sprintf("%s-%s.%s",
		strings.ToLower(novelPrefix[rng.Intn(len(novelPrefix))]),
		[]string{"panel", "cdn", "update", "mail", "gate"}[rng.Intn(5)],
		[]string{"com", "net", "ru", "top", "xyz"}[rng.Intn(5)])
	url := fmt.Sprintf("http://%s/%s", domain, []string{"gate.php", "load", "u/x", "cfg.bin"}[rng.Intn(4)])
	fileName := fmt.Sprintf("%s.%s",
		strings.ToLower(novelSuffix[rng.Intn(len(novelSuffix))])+fmt.Sprint(rng.Intn(90)),
		[]string{"exe", "dll", "docm", "js", "ps1"}[rng.Intn(5)])
	hash := randomHex(rng, []int{32, 40, 64}[rng.Intn(3)])
	registry := `HKEY_LOCAL_MACHINE\Software\Microsoft\Windows\CurrentVersion\Run\` +
		novelPrefix[rng.Intn(len(novelPrefix))]
	email := fmt.Sprintf("%s@%s",
		strings.ToLower(novelSuffix[rng.Intn(len(novelSuffix))]), domain)
	filePath := fmt.Sprintf(`C:\Users\Public\%s\%s`,
		novelPrefix[rng.Intn(len(novelPrefix))], fileName)

	mal := ontology.Entity{Type: ontology.TypeMalware, Name: malName}
	act := ontology.Entity{Type: ontology.TypeThreatActor, Name: actor}
	fam := ontology.Entity{Type: ontology.TypeMalwareFamily, Name: family}
	te1 := ontology.Entity{Type: ontology.TypeTechnique, Name: tech1}
	te2 := ontology.Entity{Type: ontology.TypeTechnique, Name: tech2}
	tl := ontology.Entity{Type: ontology.TypeTool, Name: tool}
	sws := ontology.Entity{Type: ontology.TypeSoftware, Name: software}
	plat := ontology.Entity{Type: ontology.TypeMalwarePlatform, Name: platform}
	vuln := ontology.Entity{Type: ontology.TypeVulnerability, Name: cve}
	eip := ontology.Entity{Type: ontology.TypeIP, Name: ip}
	edom := ontology.Entity{Type: ontology.TypeDomain, Name: domain}
	eurl := ontology.Entity{Type: ontology.TypeURL, Name: url}
	efile := ontology.Entity{Type: ontology.TypeFileName, Name: fileName}
	ehash := ontology.Entity{Type: ontology.TypeHash, Name: hash}
	ereg := ontology.Entity{Type: ontology.TypeRegistry, Name: registry}
	eemail := ontology.Entity{Type: ontology.TypeEmail, Name: email}
	epath := ontology.Entity{Type: ontology.TypeFilePath, Name: filePath}

	// --- sentence templates; each contributes text + a ground relation ---
	type sentence struct {
		text string
		rels []ontology.Relation
		ents []ontology.Entity
	}
	mk := func(text string, rel ontology.RelationType, src, dst ontology.Entity) sentence {
		return sentence{text: text,
			rels: []ontology.Relation{{Src: src, Type: rel, Dst: dst}},
			ents: []ontology.Entity{src, dst}}
	}
	pool := []sentence{
		mk(fmt.Sprintf("%s connects to %s for command and control.", malName, ip),
			ontology.RelConnectsTo, mal, eip),
		mk(fmt.Sprintf("%s contacts %s every six hours.", malName, domain),
			ontology.RelConnectsTo, mal, edom),
		mk(fmt.Sprintf("%s downloads additional payloads from %s.", malName, url),
			ontology.RelDownloads, mal, eurl),
		mk(fmt.Sprintf("%s drops %s in the system directory.", malName, fileName),
			ontology.RelDrops, mal, efile),
		mk(fmt.Sprintf("%s modifies %s to persist across reboots.", malName, registry),
			ontology.RelModifies, mal, ereg),
		mk(fmt.Sprintf("%s exploits %s to gain initial access.", malName, cve),
			ontology.RelExploits, mal, vuln),
		mk(fmt.Sprintf("The %s group deployed the tool %s during the intrusion.", actor, tool),
			ontology.RelUses, act, tl),
		mk(fmt.Sprintf("%s uses %s to move laterally inside victim networks.", malName, tech1),
			ontology.RelUses, mal, te1),
		mk(fmt.Sprintf("%s targets %s installations worldwide.", actor, software),
			ontology.RelTargets, act, sws),
		mk(fmt.Sprintf("%s runs on %s systems.", malName, platform),
			ontology.RelRunsOn, mal, plat),
		mk(fmt.Sprintf("%s spreads via %s against unpatched hosts.", malName, tech2),
			ontology.RelSpreadsVia, mal, te2),
		{
			text: fmt.Sprintf("Researchers attributed %s to %s after infrastructure overlap.", malName, actor),
			rels: []ontology.Relation{{Src: mal, Type: ontology.RelAttributedTo, Dst: act}},
			ents: []ontology.Entity{mal, act},
		},
		mk(fmt.Sprintf("%s sends stolen data to %s nightly.", malName, email),
			ontology.RelSends, mal, eemail),
		mk(fmt.Sprintf("%s creates %s on startup.", malName, filePath),
			ontology.RelCreates, mal, epath),
	}
	fillers := []string{
		"Telemetry volume increased sharply over the observation window.",
		"Victims reported degraded performance and unusual network activity.",
		"The operators rotated infrastructure several times during the campaign.",
		"Defenders are advised to review authentication logs for anomalies.",
		"Patches for the affected components were released last quarter.",
		"Incident responders recovered several artifacts from disk images.",
	}

	// Pick 5-8 relation sentences; always include the first (C2) and the
	// family sentence for encyclopedia-style reports.
	n := 5 + rng.Intn(4)
	perm := rng.Perm(len(pool))
	chosen := make([]sentence, 0, n+2)
	chosen = append(chosen, mk(
		fmt.Sprintf("%s belongs to the %s family.", malName, family),
		ontology.RelBelongsTo, mal, fam))
	for _, pi := range perm {
		if len(chosen) >= n {
			break
		}
		chosen = append(chosen, pool[pi])
	}
	// Hash sentence (entity only, no verb relation we extract).
	chosen = append(chosen, sentence{
		text: fmt.Sprintf("A sample with hash %s was recovered from an infected host.", hash),
		rels: []ontology.Relation{{Src: mal, Type: ontology.RelHasHash, Dst: ehash}},
		ents: []ontology.Entity{ehash},
	})

	// Title per kind.
	switch t.Kind {
	case "malware":
		t.Title = fmt.Sprintf("%s: analysis of a %s campaign", malName, family)
	case "vulnerability":
		t.Title = fmt.Sprintf("%s exploited in the wild by %s", cve, malName)
	default:
		t.Title = fmt.Sprintf("New %s campaign by %s targets %s", malName, actor, software)
	}

	// Paragraphs: intro + grouped sentences + fillers.
	intro := fmt.Sprintf("Researchers observed the %s ransomware in a new campaign. This report by %s summarizes the activity.",
		malName, spec.Vendor)
	var paras []string
	paras = append(paras, intro)
	var cur []string
	for i, s := range chosen {
		cur = append(cur, s.text)
		if len(cur) == 3 || i == len(chosen)-1 {
			paras = append(paras, strings.Join(cur, " "))
			cur = nil
		}
	}
	paras = append(paras, fillers[rng.Intn(len(fillers))]+" "+fillers[rng.Intn(len(fillers))])
	t.Paragraphs = paras
	t.MultiPage = idx%7 == 3 && spec.Format == "html"

	// Assemble ground truth entity/relation sets.
	seen := map[string]bool{}
	addEnt := func(e ontology.Entity) {
		if !seen[e.Key()] {
			seen[e.Key()] = true
			t.Entities = append(t.Entities, e)
		}
	}
	addEnt(mal)
	addEnt(fam)
	for _, s := range chosen {
		for _, e := range s.ents {
			addEnt(e)
		}
		t.Relations = append(t.Relations, s.rels...)
	}
	vendorEnt := ontology.Entity{Type: ontology.TypeCTIVendor, Name: spec.Vendor}
	addEnt(vendorEnt)
	return t
}

func randomHex(rng *rand.Rand, n int) string {
	const hex = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = hex[rng.Intn(16)]
	}
	return string(b)
}
