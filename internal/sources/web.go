package sources

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"securitykg/internal/pdf"
)

// Page is one fetched synthetic document.
type Page struct {
	URL         string
	ContentType string // text/html or application/pdf
	Body        []byte
}

// Fetcher is the access interface the crawler framework consumes. The
// synthetic web implements it in-process; a production deployment would
// implement it with net/http.
type Fetcher interface {
	Fetch(url string) (*Page, error)
}

// TransientError marks a fetch failure worth retrying.
type TransientError struct{ URL string }

func (e *TransientError) Error() string {
	return fmt.Sprintf("sources: transient fetch failure for %s", e.URL)
}

// Web is the deterministic synthetic OSCTI web.
type Web struct {
	seed    int64
	sources []SourceSpec
	bySlug  map[string]*SourceSpec

	// FailEveryN injects one transient failure on the first fetch of every
	// URL whose hash is divisible by N (0 disables). Exercises the
	// crawler's retry/reboot behaviour.
	FailEveryN int
	// Latency simulates network delay per fetch.
	Latency time.Duration

	mu       sync.Mutex
	attempts map[string]int
	fetches  int64
}

// NewWeb builds a synthetic web over the given sources.
func NewWeb(seed int64, specs []SourceSpec) *Web {
	w := &Web{seed: seed, sources: specs, bySlug: map[string]*SourceSpec{},
		attempts: map[string]int{}}
	for i := range specs {
		w.bySlug[specs[i].Slug] = &specs[i]
	}
	return w
}

// Sources returns the source specs.
func (w *Web) Sources() []SourceSpec {
	out := make([]SourceSpec, len(w.sources))
	copy(out, w.sources)
	return out
}

// Source returns the spec for a slug.
func (w *Web) Source(slug string) (SourceSpec, bool) {
	s, ok := w.bySlug[slug]
	if !ok {
		return SourceSpec{}, false
	}
	return *s, true
}

// FetchCount returns how many fetches the web has served (metric for
// throughput experiments).
func (w *Web) FetchCount() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fetches
}

// IndexURL returns the URL of the p-th index page of a source.
func (w *Web) IndexURL(slug string, p int) string {
	return fmt.Sprintf("https://%s.osint.test/index/%d", slug, p)
}

// Fetch resolves a synthetic URL, generating content on demand.
func (w *Web) Fetch(url string) (*Page, error) {
	if w.Latency > 0 {
		time.Sleep(w.Latency)
	}
	w.mu.Lock()
	w.fetches++
	if w.FailEveryN > 0 && int(hashSeed(url))%w.FailEveryN == 0 && w.attempts[url] == 0 {
		w.attempts[url]++
		w.mu.Unlock()
		return nil, &TransientError{URL: url}
	}
	w.attempts[url]++
	w.mu.Unlock()

	slug, path, err := splitURL(url)
	if err != nil {
		return nil, err
	}
	spec, ok := w.bySlug[slug]
	if !ok {
		return nil, fmt.Errorf("sources: unknown source %q in %s", slug, url)
	}
	switch {
	case strings.HasPrefix(path, "index/"):
		p, err := strconv.Atoi(strings.TrimPrefix(path, "index/"))
		if err != nil || p < 0 {
			return nil, fmt.Errorf("sources: bad index page in %s", url)
		}
		return w.renderIndex(*spec, p)
	case strings.HasPrefix(path, "report/"):
		rest := strings.TrimPrefix(path, "report/")
		parts := strings.Split(rest, "/")
		idx, err := strconv.Atoi(parts[0])
		if err != nil || idx < 0 || idx >= spec.Reports {
			return nil, fmt.Errorf("sources: bad report id in %s", url)
		}
		page := 1
		if len(parts) == 2 {
			page, err = strconv.Atoi(parts[1])
			if err != nil || page < 1 {
				return nil, fmt.Errorf("sources: bad report page in %s", url)
			}
		}
		return w.renderReport(*spec, idx, page, url)
	case strings.HasPrefix(path, "ad/"):
		return w.renderAd(*spec, url)
	case strings.HasPrefix(path, "empty/"):
		return &Page{URL: url, ContentType: "text/html",
			Body: []byte("<html><head><title></title></head><body></body></html>")}, nil
	}
	return nil, fmt.Errorf("sources: not found: %s", url)
}

func splitURL(url string) (slug, path string, err error) {
	const scheme = "https://"
	if !strings.HasPrefix(url, scheme) {
		return "", "", fmt.Errorf("sources: unsupported URL %q", url)
	}
	rest := strings.TrimPrefix(url, scheme)
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return "", "", fmt.Errorf("sources: no path in %q", url)
	}
	host := rest[:slash]
	path = rest[slash+1:]
	slug = strings.TrimSuffix(host, ".osint.test")
	if slug == host {
		return "", "", fmt.Errorf("sources: foreign host %q", host)
	}
	return slug, path, nil
}

// IndexPages returns the number of index pages for a source.
func (w *Web) IndexPages(spec SourceSpec) int {
	return (spec.Reports + spec.PerPage - 1) / spec.PerPage
}

func (w *Web) renderIndex(spec SourceSpec, p int) (*Page, error) {
	nPages := w.IndexPages(spec)
	if p >= nPages {
		return nil, fmt.Errorf("sources: index page %d out of range for %s", p, spec.Slug)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s — page %d</title></head><body>", spec.Name, p)
	fmt.Fprintf(&b, "<h1>%s</h1><ul class=\"reports\">", spec.Name)
	start := p * spec.PerPage
	end := start + spec.PerPage
	if end > spec.Reports {
		end = spec.Reports
	}
	for i := start; i < end; i++ {
		fmt.Fprintf(&b, `<li><a class="report-link" href="%s/report/%d">Report %d</a></li>`,
			spec.BaseURL(), i, i)
	}
	b.WriteString("</ul>")
	// Noise links the checker must screen out.
	fmt.Fprintf(&b, `<a class="sponsored" href="%s/ad/%d">Sponsored content</a>`, spec.BaseURL(), p)
	fmt.Fprintf(&b, `<a href="%s/empty/%d">placeholder</a>`, spec.BaseURL(), p)
	if p+1 < nPages {
		fmt.Fprintf(&b, `<a class="next-index" href="%s">older posts</a>`, w.IndexURL(spec.Slug, p+1))
	}
	b.WriteString("</body></html>")
	return &Page{URL: w.IndexURL(spec.Slug, p), ContentType: "text/html", Body: []byte(b.String())}, nil
}

func (w *Web) renderAd(spec SourceSpec, url string) (*Page, error) {
	body := `<html><head><title>Sponsored: Limited offer</title></head><body>
<div class="ad">Buy SuperAV Pro now! Discount ends soon. Click here to subscribe and win a prize.</div>
</body></html>`
	return &Page{URL: url, ContentType: "text/html", Body: []byte(body)}, nil
}

func (w *Web) renderReport(spec SourceSpec, idx, page int, url string) (*Page, error) {
	truth := w.GenerateTruth(spec, idx)
	if spec.Format == "pdf" {
		if page != 1 {
			return nil, fmt.Errorf("sources: pdf reports are single-URL: %s", url)
		}
		return &Page{URL: url, ContentType: "application/pdf",
			Body: pdf.Generate(truth.Title, append(
				[]string{"Vendor: " + spec.Vendor, "Published: " + truth.PublishedAt, "Kind: " + truth.Kind},
				truth.Paragraphs...))}, nil
	}
	maxPage := 1
	if truth.MultiPage {
		maxPage = 2
	}
	if page > maxPage {
		return nil, fmt.Errorf("sources: report page %d out of range: %s", page, url)
	}
	// Split paragraphs across pages when multi-page.
	paras := truth.Paragraphs
	var shown []string
	if truth.MultiPage {
		half := (len(paras) + 1) / 2
		if page == 1 {
			shown = paras[:half]
		} else {
			shown = paras[half:]
		}
	} else {
		shown = paras
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>", htmlEscape(truth.Title))
	switch spec.Layout {
	case LayoutEncyclopedia:
		fmt.Fprintf(&b, `<h1 class="entry-title">%s</h1>`, htmlEscape(truth.Title))
		if page == 1 {
			b.WriteString(`<table class="meta">`)
			rows := [][2]string{
				{"Vendor", spec.Vendor},
				{"Published", truth.PublishedAt},
				{"Kind", truth.Kind},
			}
			for _, r := range rows {
				fmt.Fprintf(&b, `<tr><td class="key">%s</td><td class="val">%s</td></tr>`,
					r[0], htmlEscape(r[1]))
			}
			b.WriteString("</table>")
		}
		b.WriteString(`<div class="body">`)
		for _, p := range shown {
			fmt.Fprintf(&b, "<p>%s</p>", htmlEscape(p))
		}
		b.WriteString("</div>")
	case LayoutBlog:
		fmt.Fprintf(&b, `<h1 class="post-title">%s</h1>`, htmlEscape(truth.Title))
		fmt.Fprintf(&b, `<div class="byline">By %s on <span class="date">%s</span> · <span class="kind">%s</span></div>`,
			spec.Vendor, truth.PublishedAt, truth.Kind)
		b.WriteString(`<article class="post-body">`)
		for _, p := range shown {
			fmt.Fprintf(&b, "<p>%s</p>", htmlEscape(p))
		}
		b.WriteString("</article>")
	case LayoutNews:
		fmt.Fprintf(&b, `<h1 class="headline">%s</h1>`, htmlEscape(truth.Title))
		fmt.Fprintf(&b, `<div class="meta" data-vendor="%s" data-date="%s" data-kind="%s"></div>`,
			htmlEscape(spec.Vendor), truth.PublishedAt, truth.Kind)
		b.WriteString(`<div class="story">`)
		for _, p := range shown {
			fmt.Fprintf(&b, "<p>%s</p>", htmlEscape(p))
		}
		b.WriteString("</div>")
	}
	if truth.MultiPage && page == 1 {
		fmt.Fprintf(&b, `<a class="next-page" href="%s/report/%d/2">continue reading</a>`,
			spec.BaseURL(), idx)
	}
	b.WriteString("</body></html>")
	return &Page{URL: url, ContentType: "text/html", Body: []byte(b.String())}, nil
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// ServeHTTP exposes the synthetic web over real HTTP for demos: the path
// scheme is /s/<slug>/<path...>, translated to the canonical https URL.
func (w *Web) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	parts := strings.SplitN(strings.TrimPrefix(r.URL.Path, "/"), "/", 3)
	if len(parts) != 3 || parts[0] != "s" {
		http.NotFound(rw, r)
		return
	}
	page, err := w.Fetch(fmt.Sprintf("https://%s.osint.test/%s", parts[1], parts[2]))
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadGateway)
		return
	}
	rw.Header().Set("Content-Type", page.ContentType)
	rw.Write(page.Body)
}
