// Package sources implements the synthetic OSCTI web that substitutes for
// the paper's 40+ live security websites: deterministic source definitions
// (threat encyclopedias, vendor blogs, security news), a report generator
// with full ground truth (entities and relations), HTML and PDF rendering
// in several site layouts, and an in-process Fetcher (plus an http.Handler)
// the crawler framework collects from.
//
// Determinism matters twice: the same seed regenerates the same corpus for
// reproducible experiments, and ground truth lets the NER/RE experiments
// compute precision and recall, which live pages cannot.
package sources

import "fmt"

// Layout selects the page structure a source renders reports with.
type Layout string

const (
	// LayoutEncyclopedia has a metadata table, an IOC list, and body
	// paragraphs (threat encyclopedia style).
	LayoutEncyclopedia Layout = "encyclopedia"
	// LayoutBlog has a headline, a byline, and body paragraphs.
	LayoutBlog Layout = "blog"
	// LayoutNews has a headline, a meta div, body paragraphs, and a
	// related-links list.
	LayoutNews Layout = "news"
)

// SourceSpec defines one synthetic OSCTI source.
type SourceSpec struct {
	Slug     string // subdomain-safe identifier
	Name     string // display name
	Vendor   string // CTI vendor credited on reports
	Layout   Layout
	Format   string // "html" or "pdf"
	Category string // encyclopedia | blog | news
	Reports  int    // number of reports the source publishes
	PerPage  int    // index pagination size
}

// BaseURL returns the synthetic site root for the source.
func (s SourceSpec) BaseURL() string {
	return fmt.Sprintf("https://%s.osint.test", s.Slug)
}

// DefaultSources returns the canonical 42-source universe, mirroring the
// paper's "40+ major security websites". reportsPerSource scales corpus
// size (the paper's 120K+ corpus is 42 sources x ~2900 reports).
func DefaultSources(reportsPerSource int) []SourceSpec {
	if reportsPerSource <= 0 {
		reportsPerSource = 50
	}
	type def struct {
		slug, name, vendor string
		layout             Layout
		format             string
		category           string
	}
	defs := []def{
		{"acme-encyclopedia", "Acme Threat Encyclopedia", "AcmeSec", LayoutEncyclopedia, "html", "encyclopedia"},
		{"virex-wiki", "Virex Malware Wiki", "Virex Labs", LayoutEncyclopedia, "html", "encyclopedia"},
		{"threatpedia", "Threatpedia", "Threatpedia Org", LayoutEncyclopedia, "html", "encyclopedia"},
		{"malcat-db", "Malcat Database", "Malcat", LayoutEncyclopedia, "html", "encyclopedia"},
		{"infectindex", "Infect Index", "InfectIndex", LayoutEncyclopedia, "html", "encyclopedia"},
		{"wormbase", "Wormbase Encyclopedia", "Wormbase", LayoutEncyclopedia, "html", "encyclopedia"},
		{"trojan-atlas", "Trojan Atlas", "Atlas Security", LayoutEncyclopedia, "html", "encyclopedia"},
		{"riskcodex", "Risk Codex", "RiskCodex", LayoutEncyclopedia, "html", "encyclopedia"},

		{"redcanary-blog", "Red Canary Notes", "Red Canary", LayoutBlog, "html", "blog"},
		{"kasper-blog", "Kasper Research Blog", "Kaspersky", LayoutBlog, "html", "blog"},
		{"unit51", "Unit 51 Research", "Unit 42", LayoutBlog, "html", "blog"},
		{"talos-notes", "Talos Field Notes", "Cisco Talos", LayoutBlog, "html", "blog"},
		{"fireglow", "FireGlow Research", "FireEye", LayoutBlog, "html", "blog"},
		{"crowdwatch", "CrowdWatch Blog", "CrowdStrike", LayoutBlog, "html", "blog"},
		{"sentinel-lab", "Sentinel Laboratory", "SentinelOne", LayoutBlog, "html", "blog"},
		{"sophoslabs-x", "SophosLabs Uncut", "Sophos", LayoutBlog, "html", "blog"},
		{"esentire-blog", "eSentire Threat Blog", "eSentire", LayoutBlog, "html", "blog"},
		{"proof-insights", "Proof Insights", "Proofpoint", LayoutBlog, "html", "blog"},
		{"mandiant-notes", "Mandiant Notes", "Mandiant", LayoutBlog, "html", "blog"},
		{"bitdef-lab", "Bitdefender Lab Notes", "Bitdefender", LayoutBlog, "html", "blog"},
		{"checkpt-research", "CheckPoint Research", "Check Point", LayoutBlog, "html", "blog"},
		{"welivesec", "WeLiveSec", "ESET", LayoutBlog, "html", "blog"},
		{"trendlab", "TrendLab Intelligence", "TrendMicro", LayoutBlog, "html", "blog"},
		{"securelist-x", "SecureList Weekly", "Kaspersky", LayoutBlog, "html", "blog"},

		{"hack-daily", "Hack Daily News", "Hack Daily", LayoutNews, "html", "news"},
		{"breach-wire", "Breach Wire", "Breach Wire", LayoutNews, "html", "news"},
		{"cyber-ledger", "Cyber Ledger", "Cyber Ledger", LayoutNews, "html", "news"},
		{"threatpost-x", "ThreatPost Mirror", "ThreatPost", LayoutNews, "html", "news"},
		{"darkread", "DarkRead", "DarkRead", LayoutNews, "html", "news"},
		{"zdi-news", "ZDI News Desk", "ZDI", LayoutNews, "html", "news"},
		{"bleep-mirror", "Bleep Mirror", "BleepingComputer", LayoutNews, "html", "news"},
		{"krebs-watch", "Krebs Watch", "KrebsWatch", LayoutNews, "html", "news"},
		{"secweek", "Security Week Digest", "SecurityWeek", LayoutNews, "html", "news"},
		{"infosec-times", "InfoSec Times", "InfoSec Times", LayoutNews, "html", "news"},
		{"packet-herald", "Packet Herald", "Packet Herald", LayoutNews, "html", "news"},
		{"exploit-gazette", "Exploit Gazette", "Exploit Gazette", LayoutNews, "html", "news"},

		{"ibm-xforce-pdf", "X-Force Advisories", "IBM X-Force", LayoutBlog, "pdf", "blog"},
		{"govcert-pdf", "GovCERT Bulletins", "GovCERT", LayoutBlog, "pdf", "news"},
		{"nsa-advisories", "National Advisories", "NSA CSD", LayoutBlog, "pdf", "news"},
		{"cisa-alerts-pdf", "CISA Alert Archive", "CISA", LayoutBlog, "pdf", "news"},
		{"jpcert-pdf", "JPCERT Reports", "JPCERT/CC", LayoutBlog, "pdf", "blog"},
		{"cert-eu-pdf", "CERT-EU Threat Memos", "CERT-EU", LayoutBlog, "pdf", "blog"},
	}
	out := make([]SourceSpec, len(defs))
	for i, d := range defs {
		out[i] = SourceSpec{
			Slug: d.slug, Name: d.name, Vendor: d.vendor, Layout: d.layout,
			Format: d.format, Category: d.category,
			Reports: reportsPerSource, PerPage: 20,
		}
	}
	return out
}
