package sources

import (
	"net/http/httptest"
	"strings"
	"testing"

	"securitykg/internal/htmlparse"
	"securitykg/internal/ontology"
	"securitykg/internal/pdf"
)

func testWeb(reports int) *Web {
	return NewWeb(42, DefaultSources(reports))
}

func TestDefaultSourcesShape(t *testing.T) {
	srcs := DefaultSources(10)
	if len(srcs) < 40 {
		t.Fatalf("paper promises 40+ sources, got %d", len(srcs))
	}
	slugs := map[string]bool{}
	pdfCount := 0
	layouts := map[Layout]bool{}
	for _, s := range srcs {
		if slugs[s.Slug] {
			t.Errorf("duplicate slug %s", s.Slug)
		}
		slugs[s.Slug] = true
		if s.Format == "pdf" {
			pdfCount++
		}
		layouts[s.Layout] = true
		if s.Reports != 10 || s.PerPage <= 0 {
			t.Errorf("bad spec: %+v", s)
		}
	}
	if pdfCount < 3 {
		t.Errorf("need several PDF sources, got %d", pdfCount)
	}
	if len(layouts) != 3 {
		t.Errorf("expected all 3 layouts, got %v", layouts)
	}
}

func TestGenerateTruthDeterministic(t *testing.T) {
	w := testWeb(20)
	spec := w.Sources()[0]
	a := w.GenerateTruth(spec, 7)
	b := w.GenerateTruth(spec, 7)
	if a.Title != b.Title || len(a.Entities) != len(b.Entities) || len(a.Relations) != len(b.Relations) {
		t.Fatal("generation not deterministic")
	}
	c := w.GenerateTruth(spec, 8)
	if a.Title == c.Title {
		t.Error("different indices should differ")
	}
	w2 := NewWeb(43, DefaultSources(20))
	d := w2.GenerateTruth(spec, 7)
	if a.Title == d.Title {
		t.Error("different seeds should differ")
	}
}

func TestTruthRelationsValidateAgainstOntology(t *testing.T) {
	w := testWeb(30)
	for _, spec := range w.Sources()[:6] {
		for i := 0; i < 10; i++ {
			truth := w.GenerateTruth(spec, i)
			for _, e := range truth.Entities {
				if err := e.Validate(); err != nil {
					t.Fatalf("%s/%d entity: %v", spec.Slug, i, err)
				}
			}
			for _, r := range truth.Relations {
				if err := r.Validate(); err != nil {
					t.Fatalf("%s/%d relation: %v (%+v)", spec.Slug, i, err, r)
				}
			}
		}
	}
}

func TestTruthCoversEveryOntologyEntityType(t *testing.T) {
	w := testWeb(60)
	seen := map[ontology.EntityType]bool{}
	for _, spec := range w.Sources() {
		for i := 0; i < 20 && i < spec.Reports; i++ {
			truth := w.GenerateTruth(spec, i)
			seen[ontology.ReportTypeFor(truth.Kind)] = true
			for _, e := range truth.Entities {
				seen[e.Type] = true
			}
		}
	}
	for _, et := range ontology.EntityTypes() {
		if et == ontology.TypeAttack || et == ontology.TypeFilePath ||
			et == ontology.TypeEmail || et == ontology.TypeURL {
			continue // covered probabilistically or via IOC scanning paths
		}
		if !seen[et] {
			t.Errorf("generator never produces entity type %s", et)
		}
	}
}

func TestFetchIndexAndFollowReportLinks(t *testing.T) {
	w := testWeb(25)
	spec := w.Sources()[0]
	page, err := w.Fetch(w.IndexURL(spec.Slug, 0))
	if err != nil {
		t.Fatal(err)
	}
	doc := htmlparse.Parse(string(page.Body))
	links := doc.FindAll("a.report-link")
	if len(links) != spec.PerPage {
		t.Fatalf("index links: %d, want %d", len(links), spec.PerPage)
	}
	href, _ := links[0].Attr("href")
	rep, err := w.Fetch(href)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ContentType != "text/html" || !strings.Contains(string(rep.Body), "<h1") {
		t.Errorf("report page malformed")
	}
	// Next index page exists for 25 reports at 20/page.
	if next := doc.Find("a.next-index"); next == nil {
		t.Error("missing next-index link")
	}
}

func TestIndexPagination(t *testing.T) {
	w := testWeb(45)
	spec := w.Sources()[0]
	if n := w.IndexPages(spec); n != 3 {
		t.Fatalf("45 reports at 20/page should be 3 pages, got %d", n)
	}
	if _, err := w.Fetch(w.IndexURL(spec.Slug, 3)); err == nil {
		t.Error("out-of-range index page should fail")
	}
}

func TestMultiPageReports(t *testing.T) {
	w := testWeb(30)
	var spec SourceSpec
	for _, s := range w.Sources() {
		if s.Format == "html" {
			spec = s
			break
		}
	}
	// idx%7==3 is multi-page for HTML sources.
	truth := w.GenerateTruth(spec, 3)
	if !truth.MultiPage {
		t.Fatal("report 3 should be multi-page")
	}
	p1, err := w.Fetch(spec.BaseURL() + "/report/3")
	if err != nil {
		t.Fatal(err)
	}
	doc := htmlparse.Parse(string(p1.Body))
	next := doc.Find("a.next-page")
	if next == nil {
		t.Fatal("multi-page report missing next link")
	}
	href, _ := next.Attr("href")
	p2, err := w.Fetch(href)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(p2.Body), "next-page") {
		t.Error("page 2 should not link further")
	}
	// Page 1 and 2 split the paragraphs.
	text1 := htmlparse.Parse(string(p1.Body)).InnerText()
	text2 := htmlparse.Parse(string(p2.Body)).InnerText()
	joined := text1 + "\n" + text2
	for _, para := range truth.Paragraphs {
		probe := para[:40]
		if !strings.Contains(strings.ReplaceAll(joined, "\n", " "), probe[:20]) {
			t.Errorf("paragraph missing across pages: %q", probe)
		}
	}
}

func TestPDFSourcesRoundTrip(t *testing.T) {
	w := testWeb(10)
	var spec SourceSpec
	for _, s := range w.Sources() {
		if s.Format == "pdf" {
			spec = s
			break
		}
	}
	page, err := w.Fetch(spec.BaseURL() + "/report/1")
	if err != nil {
		t.Fatal(err)
	}
	if page.ContentType != "application/pdf" || !pdf.IsPDF(page.Body) {
		t.Fatalf("expected PDF response")
	}
	text, err := pdf.ExtractText(page.Body)
	if err != nil {
		t.Fatal(err)
	}
	truth := w.GenerateTruth(spec, 1)
	if !strings.Contains(text, "Vendor: "+spec.Vendor) {
		t.Errorf("vendor line missing in PDF text")
	}
	probe := strings.Fields(truth.Paragraphs[1])[0]
	if !strings.Contains(text, probe) {
		t.Errorf("body text missing from PDF: %q", probe)
	}
}

func TestAdAndEmptyPages(t *testing.T) {
	w := testWeb(10)
	spec := w.Sources()[0]
	ad, err := w.Fetch(spec.BaseURL() + "/ad/0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ad.Body), "Sponsored") {
		t.Error("ad page should be identifiable")
	}
	empty, err := w.Fetch(spec.BaseURL() + "/empty/0")
	if err != nil {
		t.Fatal(err)
	}
	if txt := htmlparse.Parse(string(empty.Body)).InnerText(); strings.TrimSpace(txt) != "" {
		t.Errorf("empty page has text: %q", txt)
	}
}

func TestFetchErrors(t *testing.T) {
	w := testWeb(5)
	spec := w.Sources()[0]
	bad := []string{
		"http://insecure.osint.test/index/0",
		"https://unknown.osint.test/index/0",
		spec.BaseURL() + "/report/999",
		spec.BaseURL() + "/report/abc",
		spec.BaseURL() + "/nope",
		"garbage",
	}
	for _, u := range bad {
		if _, err := w.Fetch(u); err == nil {
			t.Errorf("expected error for %s", u)
		}
	}
}

func TestTransientFailureInjection(t *testing.T) {
	w := testWeb(10)
	w.FailEveryN = 1 // every URL fails once
	spec := w.Sources()[0]
	url := spec.BaseURL() + "/report/1"
	if _, err := w.Fetch(url); err == nil {
		t.Fatal("first fetch should fail")
	} else if _, ok := err.(*TransientError); !ok {
		t.Fatalf("expected TransientError, got %T", err)
	}
	if _, err := w.Fetch(url); err != nil {
		t.Fatalf("second fetch should succeed: %v", err)
	}
}

func TestAliasAndUnseenGeneration(t *testing.T) {
	w := testWeb(300)
	spec := w.Sources()[0]
	aliases, unseen := 0, 0
	for i := 0; i < 300; i++ {
		truth := w.GenerateTruth(spec, i)
		if truth.AliasOf != "" {
			aliases++
			mal := truth.Entities[0]
			if mal.Type != ontology.TypeMalware {
				t.Fatalf("first entity should be the malware: %+v", mal)
			}
			if mal.Name == truth.AliasOf {
				t.Error("alias should differ from canonical")
			}
		}
		if truth.UnseenMalware {
			unseen++
		}
	}
	if aliases < 20 {
		t.Errorf("too few alias variants: %d/300", aliases)
	}
	if unseen < 10 {
		t.Errorf("too few unseen malware names: %d/300", unseen)
	}
}

func TestServeHTTP(t *testing.T) {
	w := testWeb(5)
	spec := w.Sources()[0]
	srv := httptest.NewServer(w)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/s/" + spec.Slug + "/index/0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	buf := make([]byte, 64)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "<html>") {
		t.Errorf("unexpected body: %q", buf[:n])
	}
	if resp2, _ := srv.Client().Get(srv.URL + "/bogus"); resp2 != nil && resp2.StatusCode == 200 {
		t.Error("bogus path should not be 200")
	}
}

func TestFetchCountMetric(t *testing.T) {
	w := testWeb(5)
	spec := w.Sources()[0]
	before := w.FetchCount()
	w.Fetch(spec.BaseURL() + "/report/0")
	w.Fetch(spec.BaseURL() + "/report/1")
	if got := w.FetchCount() - before; got != 2 {
		t.Errorf("fetch count delta %d, want 2", got)
	}
}
