// Package replication ships the write-ahead log from a leader to
// read-only followers over HTTP, turning N processes into N× read
// throughput for the same graph.
//
// The WAL is already everything a replication stream needs — CRC-
// checked, strictly sequenced, deterministically replayable, with
// transaction groups recovery applies atomically — so the protocol is
// thin: a follower bootstraps from a binary snapshot transfer
// (byte-compatible with the snapshot.skg checkpoint format), then
// holds a chunked HTTP stream open from its last applied sequence
// number, applying each record through the same store machinery
// recovery uses. The leader never ships past the last transaction-
// group boundary, so a follower can never observe an uncommitted
// prefix; sequence numbers are verified on every apply, so any
// divergence tears the stream down loudly instead of proceeding
// silently.
//
// Protocol (all endpoints on the leader):
//
//	GET /replication/snapshot
//	    200: binary snapshot stream (snapshot.skg format); the
//	    X-Skg-Seq header carries the covering WAL seq.
//	GET /replication/wal?from=N
//	    200: unbounded chunked stream of frames (see below), records
//	    with seq >= N in order, pausing at transaction-group
//	    boundaries until more commits land; heartbeat frames carry
//	    the leader's committed seq while idle.
//	    409: the leader no longer has records back to N (checkpoint
//	    truncation) — re-bootstrap from a snapshot. Body is a JSON
//	    {"error": ..., "snapshot_required": true}.
//	GET /replication/status
//	    200: JSON Status.
//
// Frame wire format mirrors the WAL's own framing: a uint32
// little-endian payload length, a uint32 CRC-32 (IEEE) of the payload,
// then the payload — a JSON frame envelope holding either a WAL record
// or a heartbeat. JSON (not the binary WAL codec) keeps the wire
// format independent of the on-disk codec and its in-band dictionary
// state.
package replication

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"securitykg/internal/storage"
)

// maxFrameLen bounds one frame so a corrupt length prefix cannot ask
// the reader to allocate gigabytes; WAL records are far smaller.
const maxFrameLen = 32 << 20

// frame is the stream envelope: exactly one field is set.
type frame struct {
	Rec *storage.Record `json:"rec,omitempty"`
	HB  *heartbeat      `json:"hb,omitempty"`
}

// heartbeat keeps an idle stream alive and carries the leader's
// replication watermarks so followers can report lag without extra
// round trips.
type heartbeat struct {
	Committed uint64 `json:"committed"` // leader committed seq
	WALBytes  int64  `json:"wal_bytes"` // leader log size
}

// frameWriter frames JSON payloads onto one stream.
type frameWriter struct {
	w   io.Writer
	hdr [8]byte
}

func (fw *frameWriter) write(f *frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("replication: encode frame: %w", err)
	}
	binary.LittleEndian.PutUint32(fw.hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fw.hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return err
	}
	_, err = fw.w.Write(payload)
	return err
}

// errBadFrame marks stream damage: a length out of bounds or a CRC
// mismatch. The reader cannot resynchronize past it (framing is how
// boundaries are known), so the connection is torn down and re-dialed.
var errBadFrame = errors.New("replication: damaged frame")

// frameReader decodes one stream of frames.
type frameReader struct {
	br  *bufio.Reader
	hdr [8]byte
	buf []byte
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// next reads one frame. io.EOF (possibly wrapped) means the stream
// ended cleanly between frames.
func (fr *frameReader) next(f *frame) error {
	if _, err := io.ReadFull(fr.br, fr.hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return io.EOF // stream cut mid-header: treat as end, re-dial
		}
		return err
	}
	n := binary.LittleEndian.Uint32(fr.hdr[0:4])
	want := binary.LittleEndian.Uint32(fr.hdr[4:8])
	if n == 0 || n > maxFrameLen {
		return errBadFrame
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.br, fr.buf); err != nil {
		return io.EOF // cut mid-frame
	}
	if crc32.ChecksumIEEE(fr.buf) != want {
		return errBadFrame
	}
	*f = frame{}
	if err := json.Unmarshal(fr.buf, f); err != nil {
		return fmt.Errorf("replication: decode frame: %w", err)
	}
	return nil
}

// Status is the /replication/status payload, shared by both roles.
type Status struct {
	Role         string `json:"role"`                 // "primary" | "replica"
	State        string `json:"state,omitempty"`      // replica: bootstrap | snapshot | tail | reconnect | stale
	Leader       string `json:"leader,omitempty"`     // replica: leader base URL; primary: advertise URL
	LastSeq      uint64 `json:"last_seq"`             // local WAL last seq
	CommittedSeq uint64 `json:"committed_seq"`        // primary: group-boundary watermark; replica: applied seq
	WALBytes     int64  `json:"wal_bytes"`            // local log size
	LeaderSeq    uint64 `json:"leader_seq,omitempty"` // replica: leader committed seq as of the last frame
	LagRecords   int64  `json:"lag_records"`          // replica: leader_seq - committed_seq (0 on primary)
	LagBytes     int64  `json:"lag_bytes"`            // replica: estimated bytes behind (avg record size × lag)
	Snapshot     bool   `json:"snapshot_catchup"`     // replica: currently in snapshot transfer
	LastError    string `json:"last_error,omitempty"` // replica: most recent stream error
	Reconnects   uint64 `json:"reconnects,omitempty"` // replica: times the tail stream was re-dialed
}
