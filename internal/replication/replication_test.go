package replication

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"securitykg/internal/backoff"
	"securitykg/internal/graph"
	"securitykg/internal/storage"
)

// ---- helpers ----

func openDB(t *testing.T, dir string, opts storage.Options) *storage.DB {
	t.Helper()
	db, err := storage.Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return db
}

func saveBytes(t *testing.T, st *graph.Store) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := st.Save(&b); err != nil {
		t.Fatalf("save: %v", err)
	}
	return b.Bytes()
}

// leaderServer mounts a Leader over db on a live HTTP listener.
func leaderServer(t *testing.T, db *storage.DB) *httptest.Server {
	t.Helper()
	l := &Leader{DB: db, HeartbeatEvery: 50 * time.Millisecond}
	mux := http.NewServeMux()
	l.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// fastBackoff keeps reconnect-heavy tests quick.
func fastBackoff() *backoff.Policy {
	return &backoff.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, Factor: 2, Jitter: 0.5}
}

// startFollower bootstraps dir from the leader, opens it, and starts a
// replicator tailing in the background.
func startFollower(t *testing.T, dir, leaderURL string) (*storage.DB, *Replicator, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	bctx, bcancel := context.WithTimeout(ctx, 30*time.Second)
	if err := Bootstrap(bctx, dir, leaderURL, nil, nil); err != nil {
		bcancel()
		cancel()
		t.Fatalf("bootstrap: %v", err)
	}
	bcancel()
	db := openDB(t, dir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	repl := NewReplicator(db, leaderURL)
	repl.Backoff = fastBackoff()
	done := make(chan error, 1)
	go func() { done <- repl.Run(ctx) }()
	stopped := false
	stop := func() error {
		stopped = true
		cancel()
		err := <-done
		db.Close()
		return err
	}
	t.Cleanup(func() {
		if stopped {
			return
		}
		cancel()
		<-done
		db.Close()
	})
	return db, repl, stop
}

// writer drives a deterministic mutation mix — bare records and
// multi-mutation transaction groups — against a store.
type writer struct {
	rng   *rand.Rand
	nodes []graph.NodeID
	n     int
}

func newWriter(seed int64) *writer { return &writer{rng: rand.New(rand.NewSource(seed))} }

var wTypes = []string{"Malware", "IP", "Tool", "ThreatActor"}

func (w *writer) name() string {
	return string(rune('a'+w.rng.Intn(26))) + string(rune('a'+w.rng.Intn(26))) + string(rune('0'+w.rng.Intn(10)))
}

func (w *writer) step(st *graph.Store) {
	w.n++
	if w.rng.Intn(4) == 0 && len(w.nodes) >= 2 {
		// Multi-mutation transaction: merges plus an edge, committed as
		// one WAL group.
		tx := st.BeginTx()
		var created []graph.NodeID
		for i := 0; i < 2+w.rng.Intn(3); i++ {
			typ := wTypes[w.rng.Intn(len(wTypes))]
			id, ok := tx.MergeNode(typ, typ+"-"+w.name(), map[string]string{"round": w.name()})
			if ok {
				created = append(created, id)
			}
		}
		if len(created) >= 2 {
			tx.AddEdge(created[0], "USE", created[1], nil)
		}
		if err := tx.Commit(); err != nil {
			panic(err)
		}
		w.nodes = append(w.nodes, created...)
		return
	}
	switch r := w.rng.Intn(100); {
	case r < 50 || len(w.nodes) < 2:
		typ := wTypes[w.rng.Intn(len(wTypes))]
		id, ok := st.MergeNode(typ, typ+"-"+w.name(), nil)
		if ok {
			w.nodes = append(w.nodes, id)
		}
	case r < 80:
		from := w.nodes[w.rng.Intn(len(w.nodes))]
		to := w.nodes[w.rng.Intn(len(w.nodes))]
		st.AddEdge(from, "CONNECT", to, nil)
	case r < 92:
		st.SetAttr(w.nodes[w.rng.Intn(len(w.nodes))], "score", w.name())
	default:
		if len(w.nodes) > 4 {
			i := w.rng.Intn(len(w.nodes))
			st.DeleteNode(w.nodes[i])
			w.nodes = append(w.nodes[:i], w.nodes[i+1:]...)
		}
	}
}

func waitCaughtUp(t *testing.T, repl *Replicator, seq uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := repl.WaitApplied(ctx, seq); err != nil {
		t.Fatalf("follower never reached seq %d (applied %d): %v", seq, repl.AppliedSeq(), err)
	}
}

// ---- frame codec ----

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := &frameWriter{w: &buf}
	rec := storage.Record{Seq: 7, Op: graph.OpMergeNode, Type: "Malware", Name: "x", Attrs: map[string]string{"a": "1"}}
	if err := fw.write(&frame{Rec: &rec}); err != nil {
		t.Fatal(err)
	}
	if err := fw.write(&frame{HB: &heartbeat{Committed: 9, WALBytes: 1024}}); err != nil {
		t.Fatal(err)
	}
	fr := newFrameReader(bytes.NewReader(buf.Bytes()))
	var f frame
	if err := fr.next(&f); err != nil || f.Rec == nil {
		t.Fatalf("first frame: %v %+v", err, f)
	}
	if f.Rec.Seq != 7 || f.Rec.Name != "x" || f.Rec.Attrs["a"] != "1" {
		t.Fatalf("record did not round-trip: %+v", f.Rec)
	}
	if err := fr.next(&f); err != nil || f.HB == nil || f.HB.Committed != 9 {
		t.Fatalf("heartbeat frame: %v %+v", err, f)
	}
	if err := fr.next(&f); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	fw := &frameWriter{w: &buf}
	rec := storage.Record{Seq: 1, Op: graph.OpMergeNode, Type: "IP", Name: "y"}
	if err := fw.write(&frame{Rec: &rec}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-1] ^= 0xff // payload corruption: CRC must catch it
	var f frame
	if err := newFrameReader(bytes.NewReader(b)).next(&f); !errors.Is(err, errBadFrame) {
		t.Fatalf("corrupt payload: got %v, want errBadFrame", err)
	}
	// Truncation mid-frame reads as a clean end (the follower re-dials).
	if err := newFrameReader(bytes.NewReader(b[:len(b)-3])).next(&f); err != io.EOF {
		t.Fatalf("truncated frame: got %v, want io.EOF", err)
	}
}

// ---- end-to-end streaming ----

// TestReplicateConverges is the core property: a follower bootstrapped
// from a snapshot and tailing the WAL stream converges to the leader's
// exact state — Save output byte-identical, WAL positions equal —
// through bare records and transaction groups alike, including writes
// that land while the stream is live.
func TestReplicateConverges(t *testing.T) {
	ldir := t.TempDir()
	ldb := openDB(t, ldir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	defer ldb.Close()
	wr := newWriter(42)
	for i := 0; i < 300; i++ {
		wr.step(ldb.Store())
	}
	srv := leaderServer(t, ldb)

	fdb, repl, _ := startFollower(t, t.TempDir(), srv.URL)
	waitCaughtUp(t, repl, ldb.CommittedSeq())
	if got, want := saveBytes(t, fdb.Store()), saveBytes(t, ldb.Store()); !bytes.Equal(got, want) {
		t.Fatalf("follower state differs from leader after catch-up")
	}

	// Live tail: more writes while the stream is connected.
	for i := 0; i < 200; i++ {
		wr.step(ldb.Store())
	}
	waitCaughtUp(t, repl, ldb.CommittedSeq())
	if got, want := saveBytes(t, fdb.Store()), saveBytes(t, ldb.Store()); !bytes.Equal(got, want) {
		t.Fatalf("follower state differs from leader after live tail")
	}
	if fdb.LastSeq() != ldb.LastSeq() {
		t.Fatalf("follower WAL at seq %d, leader at %d", fdb.LastSeq(), ldb.LastSeq())
	}
	st := repl.Status()
	if st.Role != "replica" || st.State != "tail" {
		t.Fatalf("unexpected status: %+v", st)
	}
}

// TestFollowerRestartResumes: a follower stopped at an arbitrary point
// resumes from its own durable state — no snapshot re-transfer — and
// converges.
func TestFollowerRestartResumes(t *testing.T) {
	ldir := t.TempDir()
	ldb := openDB(t, ldir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	defer ldb.Close()
	wr := newWriter(7)
	for i := 0; i < 150; i++ {
		wr.step(ldb.Store())
	}
	srv := leaderServer(t, ldb)

	fdir := t.TempDir()
	_, repl, stop := startFollower(t, fdir, srv.URL)
	waitCaughtUp(t, repl, ldb.CommittedSeq())
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}

	// Leader advances while the follower is down.
	for i := 0; i < 150; i++ {
		wr.step(ldb.Store())
	}

	// Restart: Bootstrap must be a no-op (state exists), the tail
	// resumes from the follower's own WAL position.
	fdb2, repl2, _ := startFollower(t, fdir, srv.URL)
	waitCaughtUp(t, repl2, ldb.CommittedSeq())
	if got, want := saveBytes(t, fdb2.Store()), saveBytes(t, ldb.Store()); !bytes.Equal(got, want) {
		t.Fatalf("restarted follower did not converge")
	}
}

// TestSnapshotRequired: when the leader checkpoints past a stopped
// follower's position, the resumed follower gets the snapshot-required
// rejection and parks stale; wiping its directory and re-bootstrapping
// converges.
func TestSnapshotRequired(t *testing.T) {
	ldir := t.TempDir()
	// A tiny in-memory tail forces the disk path, and the checkpoint
	// truncates the disk too.
	ldb := openDB(t, ldir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1, TailRecords: 4})
	defer ldb.Close()
	wr := newWriter(11)
	for i := 0; i < 100; i++ {
		wr.step(ldb.Store())
	}
	srv := leaderServer(t, ldb)

	fdir := t.TempDir()
	_, repl, stop := startFollower(t, fdir, srv.URL)
	waitCaughtUp(t, repl, ldb.CommittedSeq())
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}

	for i := 0; i < 100; i++ {
		wr.step(ldb.Store())
	}
	if err := ldb.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for i := 0; i < 20; i++ {
		wr.step(ldb.Store()) // a short post-checkpoint tail
	}

	// Resume: the follower's position predates the re-based WAL.
	fdb2 := openDB(t, fdir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	repl2 := NewReplicator(fdb2, srv.URL)
	repl2.Backoff = fastBackoff()
	err := repl2.Run(context.Background())
	if !errors.Is(err, ErrSnapshotRequired) {
		t.Fatalf("Run = %v, want ErrSnapshotRequired", err)
	}
	if st := repl2.Status(); st.State != "stale" {
		t.Fatalf("state = %q, want stale", st.State)
	}
	fdb2.Close()

	// Operator remedy: wipe and re-bootstrap.
	if err := os.RemoveAll(fdir); err != nil {
		t.Fatal(err)
	}
	fdb3, repl3, _ := startFollower(t, fdir, srv.URL)
	waitCaughtUp(t, repl3, ldb.CommittedSeq())
	if got, want := saveBytes(t, fdb3.Store()), saveBytes(t, ldb.Store()); !bytes.Equal(got, want) {
		t.Fatalf("re-bootstrapped follower did not converge")
	}
}

// TestLeaderRestartMidStream: the leader process goes away mid-stream
// and comes back on the same address (recovering its own state); the
// follower rides it out through reconnect backoff and converges on the
// post-restart writes.
func TestLeaderRestartMidStream(t *testing.T) {
	ldir := t.TempDir()
	ldb := openDB(t, ldir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	wr := newWriter(23)
	for i := 0; i < 100; i++ {
		wr.step(ldb.Store())
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	// A plain http.Server whose Close does NOT wait for in-flight
	// handlers: the long-poll stream handler only exits when its client
	// goes away, and the follower reconnects fast enough to race an
	// httptest graceful close.
	startLeader := func(db *storage.DB, l net.Listener) *http.Server {
		mux := http.NewServeMux()
		(&Leader{DB: db, HeartbeatEvery: 50 * time.Millisecond}).Register(mux)
		hs := &http.Server{Handler: mux}
		go hs.Serve(l)
		return hs
	}
	srv := startLeader(ldb, ln)

	fdb, repl, _ := startFollower(t, t.TempDir(), "http://"+addr)
	// Post-bootstrap writes: the follower can only see these over a live
	// tail stream, so catching up proves the stream is established (and
	// the restart below therefore severs it).
	for i := 0; i < 20; i++ {
		wr.step(ldb.Store())
	}
	waitCaughtUp(t, repl, ldb.CommittedSeq())

	// Kill the leader: listener and connections drop at once, the
	// checkpoint-on-shutdown mirrors skg-server's SIGTERM path, then it
	// comes back on the same address with recovered state.
	srv.Close()
	if err := ldb.Checkpoint(); err != nil {
		t.Fatalf("shutdown checkpoint: %v", err)
	}
	if err := ldb.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	ldb2 := openDB(t, ldir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	defer ldb2.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	srv2 := startLeader(ldb2, ln2)
	defer srv2.Close()

	for i := 0; i < 100; i++ {
		wr.step(ldb2.Store())
	}
	waitCaughtUp(t, repl, ldb2.CommittedSeq())
	if got, want := saveBytes(t, fdb.Store()), saveBytes(t, ldb2.Store()); !bytes.Equal(got, want) {
		t.Fatalf("follower did not converge across leader restart")
	}
	if repl.Status().Reconnects == 0 {
		t.Fatalf("expected at least one reconnect, status %+v", repl.Status())
	}
}

// TestBootstrapVerifiesSnapshot: a leader that serves garbage must not
// poison the follower's data directory.
func TestBootstrapVerifiesSnapshot(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not a snapshot"))
	}))
	defer bad.Close()
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if err := Bootstrap(ctx, dir, bad.URL, nil, nil); err == nil {
		t.Fatal("bootstrap accepted a garbage snapshot")
	}
	if storage.HasState(dir) {
		t.Fatal("garbage snapshot left state behind")
	}
	ents, err := os.ReadDir(dir)
	if err == nil {
		for _, e := range ents {
			if filepath.Ext(e.Name()) != ".tmp" && e.Name() != "" {
				t.Fatalf("unexpected file %q installed from garbage stream", e.Name())
			}
		}
	}
}
