package replication

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"securitykg/internal/storage"
)

// Leader serves the replication endpoints on a primary: snapshot
// transfers for follower bootstrap and the long-lived WAL tail stream.
// It holds no state of its own beyond configuration — the DB's tail
// buffer and log file are the sources of truth — so any number of
// followers can stream concurrently and a leader restart loses
// nothing but open connections.
type Leader struct {
	DB        *storage.DB
	Advertise string // base URL followers should be told about, e.g. http://host:8080

	// HeartbeatEvery bounds how long an idle stream stays silent.
	// Zero means a 2s default.
	HeartbeatEvery time.Duration

	// BatchMax caps records fetched from the tail per iteration.
	// Zero means 512.
	BatchMax int

	Log *log.Logger
}

func (l *Leader) heartbeatEvery() time.Duration {
	if l.HeartbeatEvery > 0 {
		return l.HeartbeatEvery
	}
	return 2 * time.Second
}

func (l *Leader) batchMax() int {
	if l.BatchMax > 0 {
		return l.BatchMax
	}
	return 512
}

func (l *Leader) logf(format string, args ...any) {
	if l.Log != nil {
		l.Log.Printf(format, args...)
	}
}

// Register mounts the replication endpoints on mux.
func (l *Leader) Register(mux *http.ServeMux) {
	mux.HandleFunc("/replication/snapshot", l.handleSnapshot)
	mux.HandleFunc("/replication/wal", l.handleWAL)
	mux.HandleFunc("/replication/status", l.handleStatus)
}

// Status reports the primary-side replication state.
func (l *Leader) Status() Status {
	return Status{
		Role:         "primary",
		Leader:       l.Advertise,
		LastSeq:      l.DB.LastSeq(),
		CommittedSeq: l.DB.CommittedSeq(),
		WALBytes:     l.DB.WALSize(),
	}
}

func (l *Leader) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(l.Status())
}

// handleSnapshot streams a binary snapshot of the current store. The
// covering WAL seq rides in the X-Skg-Seq header; the body is the
// snapshot.skg format verbatim, so the follower installs it untouched.
func (l *Leader) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	// The covering seq is only known once the store is quiesced, but
	// headers must precede the body. Send the committed watermark as a
	// hint header; the authoritative seq is inside the stream header
	// the follower verifies on install.
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Skg-Seq", strconv.FormatUint(l.DB.CommittedSeq(), 10))
	seq, err := l.DB.WriteSnapshotTo(w)
	if err != nil {
		// Headers are gone; all we can do is cut the connection so the
		// follower sees a short body and fails header verification.
		l.logf("replication: snapshot transfer failed: %v", err)
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
		return
	}
	l.logf("replication: served snapshot through seq %d to %s", seq, r.RemoteAddr)
}

// handleWAL serves the tail stream: committed records with seq >= from,
// then heartbeats and more records as commits land, until the client
// disconnects. A from below what the leader can still serve gets 409
// with snapshot_required — the one case the follower cannot recover
// from by retrying.
func (l *Leader) handleWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "bad from parameter", http.StatusBadRequest)
		return
	}
	if from == 0 {
		from = 1
	}

	// Resolve the first batch before committing to a 200: this is where
	// "leader can't serve that far back" surfaces as a clean 409.
	batch, src, err := l.firstBatch(from)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if src == srcSnapshot {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(map[string]any{
			"error":             fmt.Sprintf("records from seq %d no longer available", from),
			"snapshot_required": true,
		})
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	fw := &frameWriter{w: w}

	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	ship := func(recs []Record) bool {
		for i := range recs {
			if err := fw.write(&frame{Rec: &recs[i]}); err != nil {
				return false
			}
			mFramesShipped.Inc()
			from = recs[i].Seq + 1
		}
		return true
	}

	if !ship(batch) {
		return
	}
	flush()

	ctx := r.Context()
	hb := time.NewTicker(l.heartbeatEvery())
	defer hb.Stop()
	for {
		// Drain everything currently committed before sleeping.
		recs, ok := l.DB.TailSince(from, l.batchMax())
		if !ok {
			// Evicted under a live stream: the follower fell behind the
			// buffer while connected. Try disk before giving up.
			var err error
			recs, ok, err = l.DB.TailFromDisk(from)
			if err != nil || !ok {
				l.logf("replication: stream to %s lost seq %d (checkpoint passed it): %v", r.RemoteAddr, from, err)
				return // follower reconnects and gets the 409 + snapshot
			}
		}
		if len(recs) > 0 {
			if !ship(recs) {
				return
			}
			flush()
			continue
		}
		notify := l.DB.TailNotify()
		select {
		case <-ctx.Done():
			return
		case <-notify:
		case <-hb.C:
			if err := fw.write(&frame{HB: &heartbeat{
				Committed: l.DB.CommittedSeq(),
				WALBytes:  l.DB.WALSize(),
			}}); err != nil {
				return
			}
			flush()
		}
	}
}

type batchSrc int

const (
	srcTail batchSrc = iota
	srcDisk
	srcSnapshot
)

// Record aliases storage.Record for the ship helper's signature.
type Record = storage.Record

// firstBatch resolves where a stream starting at from can be fed from:
// the in-memory tail, a disk scan, or nowhere (snapshot required). An
// empty batch with srcTail means from is simply ahead of the committed
// watermark — a caught-up follower reconnecting.
func (l *Leader) firstBatch(from uint64) ([]Record, batchSrc, error) {
	if recs, ok := l.DB.TailSince(from, l.batchMax()); ok {
		return recs, srcTail, nil
	}
	recs, ok, err := l.DB.TailFromDisk(from)
	if err != nil {
		return nil, srcDisk, err
	}
	if !ok {
		return nil, srcSnapshot, nil
	}
	return recs, srcDisk, nil
}
