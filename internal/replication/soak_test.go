package replication

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"securitykg/internal/cypher"
	"securitykg/internal/search"
	"securitykg/internal/server"
	"securitykg/internal/storage"
)

// Soak harness: N writer goroutines batch-ingest through UNWIND on a
// live leader while M query clients stream reads (against the leader
// AND a tailing follower) and scrapers hammer /metrics on both nodes —
// all under the race detector when run through `make test`. Afterwards
// the two stores must be byte-identical (zero divergence), every
// acknowledged row must be present (429 backpressure is retryable, not
// lossy), and the follower's lag must have drained to zero.

type soakProfile struct {
	writers, readers  int
	batches, rowsEach int
	// One extra "hog" writer ships hogBatches batches of hogRows rows
	// each. A hog batch executes long enough (tens of milliseconds) that
	// the other writers' requests genuinely overlap it, so the 429
	// backpressure path is exercised for real — small fast batches
	// almost never overlap on a single-core box, where a sub-millisecond
	// handler runs to completion before the scheduler lets the next
	// request in.
	hogBatches, hogRows int
}

func soakConfig(short bool) soakProfile {
	if short {
		return soakProfile{writers: 2, readers: 2, batches: 6, rowsEach: 64, hogBatches: 2, hogRows: 2048}
	}
	return soakProfile{writers: 4, readers: 3, batches: 16, rowsEach: 128, hogBatches: 4, hogRows: 4096}
}

// soakIngest posts one UNWIND batch, retrying on 429 backpressure until
// accepted. It returns the write's read-your-writes seq token.
func soakIngest(t *testing.T, url string, batch []any, rejected *atomic.Int64) (uint64, error) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"query": `UNWIND $batch AS row ` +
			`CREATE (h:Host {name: row.name, os: row.os})-[:SCANS]->(t:IP {name: row.ip})`,
		"params": map[string]any{"batch": batch},
	})
	for attempt := 0; attempt < 2000; attempt++ {
		resp, err := http.Post(url+"/api/cypher", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Bounded-backpressure contract: the reject carries Retry-After
			// and a later retry succeeds.
			ra := resp.Header.Get("Retry-After")
			resp.Body.Close()
			rejected.Add(1)
			if ra == "" {
				return 0, fmt.Errorf("429 without Retry-After")
			}
			time.Sleep(2 * time.Millisecond)
			continue
		}
		var out map[string]any
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("ingest: status %d: %v", resp.StatusCode, out["error"])
		}
		seq, _ := out["seq"].(float64)
		return uint64(seq), nil
	}
	return 0, fmt.Errorf("batch still rejected after 2000 backpressure retries")
}

func TestSoakLiveIngestLeaderFollower(t *testing.T) {
	cfg := soakConfig(testing.Short())

	// Leader with a deliberately small ingest budget so backpressure
	// actually fires under the concurrent writers.
	ldb := openDB(t, t.TempDir(), storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	defer ldb.Close()
	lsrv := server.NewWith(ldb.Store(), search.NewIndex(nil), cypher.DefaultOptions())
	lsrv.SetReplication(server.Replication{
		Role: "primary",
		Seq:  ldb.CommittedSeq,
		Lag:  func() int64 { return 0 },
	})
	// Every batch body exceeds this limit, so a batch is admitted only
	// while no other write is in flight — the writers contend, 429s fire,
	// and the retry loop proves backpressure is bounded and lossless.
	lsrv.SetIngestLimit(1 << 10)
	lmux := http.NewServeMux()
	lmux.Handle("/api/", lsrv)
	lmux.Handle("/metrics", lsrv)
	(&Leader{DB: ldb, HeartbeatEvery: 10 * time.Millisecond}).Register(lmux)
	leader := httptest.NewServer(lmux)
	defer leader.Close()

	// Tailing follower serving reads.
	fdir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := Bootstrap(ctx, fdir, leader.URL, nil, nil); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	fdb := openDB(t, fdir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	defer fdb.Close()
	repl := NewReplicator(fdb, leader.URL)
	repl.Backoff = fastBackoff()
	done := make(chan error, 1)
	go func() { done <- repl.Run(ctx) }()
	defer func() { cancel(); <-done }()
	ropts := cypher.DefaultOptions()
	ropts.ReadOnly = true
	fsrv := server.NewWith(fdb.Store(), search.NewIndex(nil), ropts)
	fsrv.SetReplication(server.Replication{
		Role:      "replica",
		LeaderURL: leader.URL,
		Seq:       repl.AppliedSeq,
		WaitSeq:   repl.WaitApplied,
		Lag:       func() int64 { return repl.Status().LagRecords },
	})
	fmux := http.NewServeMux()
	fmux.Handle("/api/", fsrv)
	fmux.Handle("/metrics", fsrv)
	replica := httptest.NewServer(fmux)
	defer replica.Close()

	var (
		writersWG sync.WaitGroup
		auxWG     sync.WaitGroup
		stop      = make(chan struct{})
		maxSeq    atomic.Uint64
		rejected  atomic.Int64
	)

	// Writers: each ingests its own namespace of hosts, batch by batch.
	for w := 0; w < cfg.writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for bn := 0; bn < cfg.batches; bn++ {
				batch := make([]any, 0, cfg.rowsEach)
				for i := 0; i < cfg.rowsEach; i++ {
					batch = append(batch, map[string]any{
						"name": fmt.Sprintf("host-w%d-b%d-r%d", w, bn, i),
						"os":   []string{"linux", "windows", "bsd"}[i%3],
						"ip":   fmt.Sprintf("10.%d.%d.%d", w, bn, i),
					})
				}
				seq, err := soakIngest(t, leader.URL, batch, &rejected)
				if err != nil {
					t.Errorf("writer %d batch %d: %v", w, bn, err)
					return
				}
				for {
					cur := maxSeq.Load()
					if seq <= cur || maxSeq.CompareAndSwap(cur, seq) {
						break
					}
				}
			}
		}(w)
	}

	// The hog: large batches whose execution spans many scheduler
	// quanta, guaranteeing the small writers collide with an in-flight
	// reservation and see 429s.
	writersWG.Add(1)
	go func() {
		defer writersWG.Done()
		for bn := 0; bn < cfg.hogBatches; bn++ {
			batch := make([]any, 0, cfg.hogRows)
			for i := 0; i < cfg.hogRows; i++ {
				batch = append(batch, map[string]any{
					"name": fmt.Sprintf("hog-b%d-r%d", bn, i),
					"os":   "linux",
					"ip":   fmt.Sprintf("ip-hog-%d-%d", bn, i),
				})
			}
			seq, err := soakIngest(t, leader.URL, batch, &rejected)
			if err != nil {
				t.Errorf("hog batch %d: %v", bn, err)
				return
			}
			for {
				cur := maxSeq.Load()
				if seq <= cur || maxSeq.CompareAndSwap(cur, seq) {
					break
				}
			}
		}
	}()

	// Readers: streamed reads against the leader, read-your-writes
	// (min_seq) reads against the follower — a 504 there means the
	// replica's lag outran the bounded wait, which is the failure the
	// soak exists to catch.
	readBody := func(minSeq uint64, stream bool) []byte {
		b, _ := json.Marshal(map[string]any{
			"query":   `match (h:Host) return count(*)`,
			"min_seq": minSeq,
			"stream":  stream,
		})
		return b
	}
	for rdr := 0; rdr < cfg.readers; rdr++ {
		auxWG.Add(1)
		go func(rdr int) {
			defer auxWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url, seq := leader.URL, uint64(0)
				if i%2 == 1 {
					url, seq = replica.URL, maxSeq.Load()
				}
				resp, err := http.Post(url+"/api/cypher", "application/json",
					bytes.NewReader(readBody(seq, i%4 == 0)))
				if err != nil {
					t.Errorf("reader %d: %v", rdr, err)
					return
				}
				_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: status %d from %s", rdr, resp.StatusCode, url)
					return
				}
			}
		}(rdr)
	}

	// Metrics scrapers on both roles, concurrent with everything above.
	for _, url := range []string{leader.URL, replica.URL} {
		auxWG.Add(1)
		go func(url string) {
			defer auxWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					scrapeMetrics(t, url)
					time.Sleep(5 * time.Millisecond)
				}
			}
		}(url)
	}

	// Wait for the writers, then release readers and scrapers.
	writersDone := make(chan struct{})
	go func() {
		writersWG.Wait()
		close(writersDone)
	}()
	select {
	case <-writersDone:
	case <-time.After(120 * time.Second):
		close(stop)
		t.Fatal("soak writers did not finish within 120s")
	}
	close(stop)
	auxWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Drain: the follower must reach the last acknowledged seq.
	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	defer wcancel()
	if err := repl.WaitApplied(wctx, maxSeq.Load()); err != nil {
		t.Fatalf("follower never drained to seq %d (lag unbounded): %v", maxSeq.Load(), err)
	}

	// Zero divergence: the two stores serialize byte-identically.
	if lb, fb := saveBytes(t, ldb.Store()), saveBytes(t, fdb.Store()); !bytes.Equal(lb, fb) {
		t.Fatalf("leader and follower stores diverged (%d vs %d bytes)", len(lb), len(fb))
	}

	// No lost writes: every acknowledged host row exists exactly once —
	// 429-rejected attempts retried until acknowledged, never duplicated
	// (each row creates a uniquely named node pair).
	wantHosts := cfg.writers*cfg.batches*cfg.rowsEach + cfg.hogBatches*cfg.hogRows
	if got := ldb.Store().CountNodes(); got != 2*wantHosts {
		t.Errorf("leader CountNodes = %d, want %d (%d hosts + %d IPs)", got, 2*wantHosts, wantHosts, wantHosts)
	}
	if rejected.Load() == 0 {
		t.Error("soak saw zero backpressure rejects: the 429 arm was not exercised")
	}

	// The in-flight gauge drained with the load.
	lm := scrapeMetrics(t, leader.URL)
	if got := lm["skg_ingest_inflight_bytes"]; got != 0 {
		t.Errorf("skg_ingest_inflight_bytes = %v after drain, want 0", got)
	}
	if got := lm["skg_replication_lag_records"]; got != 0 {
		t.Errorf("leader lag gauge = %v, want 0", got)
	}
	t.Logf("soak: %d writers x %d batches x %d rows; %d backpressure rejects (retried); final seq %d",
		cfg.writers, cfg.batches, cfg.rowsEach, rejected.Load(), maxSeq.Load())
}

// TestSoakMetricsScrapeStandalone runs the same scrape-under-write
// contention on a single node (no replication): concurrent /metrics
// GETs while UNWIND batches land, under the race detector via `make
// test`.
func TestSoakMetricsScrapeStandalone(t *testing.T) {
	db := openDB(t, t.TempDir(), storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	defer db.Close()
	srv := server.NewWith(db.Store(), search.NewIndex(nil), cypher.DefaultOptions())
	srv.SetReplication(server.Replication{Role: "primary", Seq: db.CommittedSeq, Lag: func() int64 { return 0 }})
	mux := http.NewServeMux()
	mux.Handle("/api/", srv)
	mux.Handle("/metrics", srv)
	node := httptest.NewServer(mux)
	defer node.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					scrapeMetrics(t, node.URL)
				}
			}
		}()
	}

	batches := 20
	if testing.Short() {
		batches = 8
	}
	for bn := 0; bn < batches; bn++ {
		batch := make([]any, 0, 32)
		for i := 0; i < 32; i++ {
			batch = append(batch, map[string]any{"name": fmt.Sprintf("scrape-b%d-r%d", bn, i)})
		}
		body, _ := json.Marshal(map[string]any{
			"query":  `UNWIND $batch AS row CREATE (h:Host {name: row.name})`,
			"params": map[string]any{"batch": batch},
		})
		resp, err := http.Post(node.URL+"/api/cypher", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", bn, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()

	m := scrapeMetrics(t, node.URL)
	if got, want := m["skg_store_nodes"], float64(batches*32); got != want {
		t.Errorf("skg_store_nodes = %v, want %v", got, want)
	}
	if got := m["skg_ingest_inflight_bytes"]; got != 0 {
		t.Errorf("skg_ingest_inflight_bytes = %v after drain, want 0", got)
	}
}
