package replication

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"

	"securitykg/internal/backoff"
	"securitykg/internal/graph"
	"securitykg/internal/storage"
)

// ErrSnapshotRequired reports that the leader no longer holds WAL
// records back to the follower's position: a checkpoint truncated past
// it. Recovery requires a fresh snapshot bootstrap, which means an
// empty data directory — a running follower cannot swap its store
// in place, so it parks in the "stale" state (still serving its last
// applied snapshot of the graph) until restarted.
var ErrSnapshotRequired = errors.New("replication: leader requires snapshot bootstrap")

// ErrDiverged reports that applying a shipped record did not reproduce
// the leader's sequence numbering — the replica's state is not the
// leader's state. This should be impossible while replay determinism
// holds; treating it as fatal (rather than limping on) is the point.
var ErrDiverged = errors.New("replication: replica diverged from leader")

// Bootstrap prepares dir for a follower: if it already holds durable
// state, it is left alone (the follower resumes from its own WAL);
// otherwise a snapshot is fetched from leaderURL and installed,
// retrying with jittered backoff until it succeeds or ctx is done.
// Call before storage.Open — install requires the directory unlocked.
func Bootstrap(ctx context.Context, dir, leaderURL string, client *http.Client, lg *log.Logger) error {
	if storage.HasState(dir) {
		return nil
	}
	if client == nil {
		client = http.DefaultClient
	}
	pol := backoff.Default()
	for {
		err := fetchSnapshot(ctx, dir, leaderURL, client)
		if err == nil {
			if lg != nil {
				lg.Printf("replication: snapshot bootstrap from %s complete", leaderURL)
			}
			return nil
		}
		if lg != nil {
			lg.Printf("replication: snapshot bootstrap: %v (retrying)", err)
		}
		if serr := pol.SleepNext(ctx); serr != nil {
			return fmt.Errorf("replication: bootstrap abandoned: %w (last error: %v)", serr, err)
		}
	}
}

func fetchSnapshot(ctx context.Context, dir, leaderURL string, client *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, leaderURL+"/replication/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("snapshot fetch: %s: %s", resp.Status, body)
	}
	// InstallSnapshot verifies the embedded header before renaming into
	// place, so a connection cut mid-transfer cannot install garbage.
	return storage.InstallSnapshot(dir, resp.Body)
}

// Replicator tails a leader's WAL into a local DB. All reads of the
// local store see exactly the prefixes the leader committed: records
// inside a transaction group buffer in memory and reach the store only
// when the group's commit marker arrives, through a real graph
// transaction — so concurrent readers get atomic visibility and the
// follower's own WAL ends up byte-compatible with the leader's.
type Replicator struct {
	DB     *storage.DB
	Leader string // leader base URL
	Client *http.Client
	Log    *log.Logger

	// Backoff paces reconnects; nil means backoff.Default().
	Backoff *backoff.Policy

	applied   atomic.Uint64 // last fully applied (group-boundary) seq
	waitMu    sync.Mutex
	waitCh    chan struct{} // closed and replaced when applied advances
	stateMu   sync.Mutex
	state     string
	lastErr   string
	leaderSeq uint64
	leaderWAL int64
	reconnect uint64

	pending []storage.Record // open tx group, begin marker first

	// catchingUp is true while the store is held in bulk mode because
	// this replica is far behind the leader. Touched only by the
	// streaming goroutine (streamOnce / handleRecord run sequentially),
	// so it needs no lock.
	catchingUp bool
}

// catchUpBulkLag is the record lag past which a replica switches its
// store into bulk mode for the duration of the catch-up: adjacency
// rebuilds and planner-stats judgements are deferred until it draws
// level with the leader, then settled exactly once. Without this, a
// replica replaying a long WAL tail re-runs the per-mutation
// materiality check on every record and can bump StatsVersion (and
// invalidate every cached plan) hundreds of times mid-load.
const catchUpBulkLag = 256

// NewReplicator wires a replicator over an already-open follower DB.
func NewReplicator(db *storage.DB, leaderURL string) *Replicator {
	r := &Replicator{
		DB:     db,
		Leader: leaderURL,
		Client: http.DefaultClient,
		waitCh: make(chan struct{}),
		state:  "connect",
	}
	r.applied.Store(db.LastSeq())
	return r
}

func (r *Replicator) logf(format string, args ...any) {
	if r.Log != nil {
		r.Log.Printf(format, args...)
	}
}

// AppliedSeq returns the last fully applied sequence number — the
// replica-side read-your-writes watermark.
func (r *Replicator) AppliedSeq() uint64 { return r.applied.Load() }

// WaitApplied blocks until the replica has applied at least seq, or
// ctx is done.
func (r *Replicator) WaitApplied(ctx context.Context, seq uint64) error {
	for {
		if r.applied.Load() >= seq {
			return nil
		}
		r.waitMu.Lock()
		ch := r.waitCh
		r.waitMu.Unlock()
		if r.applied.Load() >= seq { // re-check: advance may have raced the fetch
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

func (r *Replicator) advanceApplied(seq uint64) {
	r.applied.Store(seq)
	r.waitMu.Lock()
	ch := r.waitCh
	r.waitCh = make(chan struct{})
	r.waitMu.Unlock()
	close(ch)
}

func (r *Replicator) setState(state string) {
	r.stateMu.Lock()
	r.state = state
	r.stateMu.Unlock()
}

func (r *Replicator) noteErr(err error) {
	r.stateMu.Lock()
	r.lastErr = err.Error()
	r.stateMu.Unlock()
}

// Status reports the replica-side replication state.
func (r *Replicator) Status() Status {
	r.stateMu.Lock()
	state, lastErr := r.state, r.lastErr
	leaderSeq, leaderWAL, reconnects := r.leaderSeq, r.leaderWAL, r.reconnect
	r.stateMu.Unlock()
	applied := r.applied.Load()
	st := Status{
		Role:         "replica",
		State:        state,
		Leader:       r.Leader,
		LastSeq:      r.DB.LastSeq(),
		CommittedSeq: applied,
		WALBytes:     r.DB.WALSize(),
		LeaderSeq:    leaderSeq,
		LastError:    lastErr,
		Reconnects:   reconnects,
	}
	if leaderSeq > applied {
		st.LagRecords = int64(leaderSeq - applied)
		if leaderSeq > 0 && leaderWAL > 0 {
			st.LagBytes = st.LagRecords * (leaderWAL / int64(leaderSeq))
		}
	}
	return st
}

// Run tails the leader until ctx is done, reconnecting with jittered
// backoff across stream failures. It returns nil on context
// cancellation, ErrSnapshotRequired when the leader can no longer
// serve the replica's position (the replica is parked "stale" — a
// restart re-bootstraps), and ErrDiverged if replay stops reproducing
// the leader's sequence numbers.
func (r *Replicator) Run(ctx context.Context) error {
	pol := r.Backoff
	if pol == nil {
		pol = backoff.Default()
	}
	if r.Client == nil {
		r.Client = http.DefaultClient
	}
	for {
		err := r.streamOnce(ctx, pol)
		switch {
		case ctx.Err() != nil:
			r.setState("stopped")
			return nil
		case errors.Is(err, ErrSnapshotRequired):
			r.setState("stale")
			r.noteErr(err)
			r.logf("replication: leader %s has truncated past seq %d; replica is STALE and read-only on old data — restart with an empty data dir to re-bootstrap", r.Leader, r.DB.LastSeq())
			return err
		case errors.Is(err, ErrDiverged):
			r.setState("diverged")
			r.noteErr(err)
			r.logf("replication: FATAL: %v", err)
			return err
		default:
			r.setState("reconnect")
			if err != nil {
				r.noteErr(err)
				r.logf("replication: stream from %s: %v (reconnecting)", r.Leader, err)
			}
			r.stateMu.Lock()
			r.reconnect++
			r.stateMu.Unlock()
			mReconnects.Inc()
			if serr := pol.SleepNext(ctx); serr != nil {
				r.setState("stopped")
				return nil
			}
		}
	}
}

// streamOnce holds one tail connection: dial from the last applied
// seq + 1, then apply frames until the stream breaks. A clean EOF
// (leader closed, e.g. restart) returns nil and the caller re-dials.
func (r *Replicator) streamOnce(ctx context.Context, pol *backoff.Policy) error {
	// Any partially buffered group from a previous connection is
	// discarded: the new stream restarts from the last group boundary.
	r.pending = r.pending[:0]
	from := r.DB.LastSeq() + 1
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/replication/wal?from=%d", r.Leader, from), nil)
	if err != nil {
		return err
	}
	resp, err := r.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return ErrSnapshotRequired
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("tail stream: %s: %s", resp.Status, body)
	}

	r.setState("tail")
	// Whatever ends this stream — error, EOF, divergence — the bulk
	// bracket must close, or the store would defer adjacency sealing and
	// stats forever.
	defer r.exitBulk()
	fr := newFrameReader(resp.Body)
	var f frame
	first := true
	for {
		if err := fr.next(&f); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if first {
			// The connection produced a valid frame: it is healthy, so
			// the next failure starts backoff from the base again.
			pol.Reset()
			first = false
		}
		switch {
		case f.Rec != nil:
			if err := r.handleRecord(f.Rec); err != nil {
				return err
			}
		case f.HB != nil:
			r.stateMu.Lock()
			r.leaderSeq = f.HB.Committed
			r.leaderWAL = f.HB.WALBytes
			r.stateMu.Unlock()
			r.maybeBulk()
		default:
			return fmt.Errorf("replication: empty frame")
		}
	}
}

// maybeBulk enters or leaves store-level bulk mode based on how far
// behind the last heartbeat says this replica is. Hysteresis: enter
// only when the lag exceeds catchUpBulkLag, leave only once level with
// the leader's last-known head — so a steady trickle of writes never
// flaps the bracket.
func (r *Replicator) maybeBulk() {
	r.stateMu.Lock()
	leaderSeq := r.leaderSeq
	r.stateMu.Unlock()
	applied := r.applied.Load()
	switch {
	case !r.catchingUp && leaderSeq > applied+catchUpBulkLag:
		r.DB.Store().BeginBulk()
		r.catchingUp = true
		r.logf("replication: %d records behind leader; bulk catch-up (stats and adjacency seal once, when level)", leaderSeq-applied)
	case r.catchingUp && leaderSeq <= applied:
		r.exitBulk()
	}
}

// exitBulk closes the catch-up bracket if open, sealing adjacency and
// running the single deferred stats judgement.
func (r *Replicator) exitBulk() {
	if !r.catchingUp {
		return
	}
	r.DB.Store().EndBulk()
	r.catchingUp = false
	r.logf("replication: caught up with leader at seq %d", r.applied.Load())
}

// handleRecord folds one shipped record. Bare records apply
// immediately; transaction groups buffer from their begin marker and
// apply atomically at the commit marker through a real graph
// transaction — which re-emits the group through this DB's own WAL
// hook, reproducing the leader's records (markers included) with the
// same sequence numbers. Every apply is followed by a seq check; a
// mismatch is divergence and fatal.
func (r *Replicator) handleRecord(rec *storage.Record) error {
	expect := r.DB.LastSeq() + uint64(len(r.pending)) + 1
	if rec.Seq != expect {
		return fmt.Errorf("%w: leader shipped seq %d, expected %d", ErrDiverged, rec.Seq, expect)
	}
	if len(r.pending) > 0 {
		r.pending = append(r.pending, *rec)
		switch rec.Op {
		case graph.OpTxCommit:
			group := r.pending
			r.pending = r.pending[:0]
			return r.applyGroup(group)
		case graph.OpTxBegin:
			return fmt.Errorf("%w: nested tx_begin at seq %d", ErrDiverged, rec.Seq)
		case graph.OpTxRollback:
			// Rolled-back transactions are never logged, so a leader can
			// never ship one (mutation.go).
			return fmt.Errorf("%w: tx_rollback at seq %d", ErrDiverged, rec.Seq)
		}
		return nil
	}
	switch rec.Op {
	case graph.OpTxBegin:
		r.pending = append(r.pending, *rec)
		return nil
	case graph.OpTxCommit, graph.OpTxRollback:
		return fmt.Errorf("%w: stray %s at seq %d", ErrDiverged, rec.Op, rec.Seq)
	}
	// Bare record: apply through the store; the mutation hook logs it
	// to the local WAL, assigning the next seq.
	if err := r.DB.Store().Apply(rec.Mutation()); err != nil {
		return fmt.Errorf("%w: apply seq %d (%s): %v", ErrDiverged, rec.Seq, rec.Op, err)
	}
	if got := r.DB.LastSeq(); got != rec.Seq {
		return fmt.Errorf("%w: applied seq %d but local WAL is at %d (no-op replay?)", ErrDiverged, rec.Seq, got)
	}
	mRecordsApplied.Inc()
	r.advanceApplied(rec.Seq)
	r.maybeBulk()
	return nil
}

// applyGroup replays one complete shipped transaction group —
// [tx_begin, mutations..., tx_commit] — through a graph transaction,
// so readers see it atomically and the commit re-emits the identical
// group into the local WAL.
func (r *Replicator) applyGroup(group []storage.Record) error {
	commitSeq := group[len(group)-1].Seq
	// SetBulk: a shipped group was one batch on the leader; replaying it
	// re-judges stats materiality once at commit, like the leader did —
	// not once per mutation.
	tx := r.DB.Store().BeginTx()
	tx.SetBulk()
	for _, rec := range group[1 : len(group)-1] {
		if err := tx.Apply(rec.Mutation()); err != nil {
			tx.Rollback()
			return fmt.Errorf("%w: tx replay at seq %d (%s): %v", ErrDiverged, rec.Seq, rec.Op, err)
		}
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("%w: tx commit for seq %d: %v", ErrDiverged, commitSeq, err)
	}
	if got := r.DB.LastSeq(); got != commitSeq {
		return fmt.Errorf("%w: tx group through seq %d left local WAL at %d", ErrDiverged, commitSeq, got)
	}
	mRecordsApplied.Add(int64(len(group)))
	r.advanceApplied(commitSeq)
	r.maybeBulk()
	return nil
}

// RegisterStatus mounts /replication/status for a replica.
func (r *Replicator) RegisterStatus(mux *http.ServeMux) {
	mux.HandleFunc("/replication/status", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.Status())
	})
}
