package replication

import "securitykg/internal/metrics"

// Process-wide replication counters. In a single-process deployment a
// leader and a follower can coexist (tests do exactly that), so these
// count events for whichever roles are active; the per-instance lag and
// seq gauges live on each server's own registry.
var (
	mFramesShipped = metrics.NewCounter("skg_replication_frames_shipped_total",
		"WAL record frames written to follower tail streams by a leader.")
	mRecordsApplied = metrics.NewCounter("skg_replication_records_applied_total",
		"Shipped records applied by a replica (transaction groups count each member).")
	mReconnects = metrics.NewCounter("skg_replication_reconnects_total",
		"Replica tail-stream reconnect attempts after a broken stream.")
)
