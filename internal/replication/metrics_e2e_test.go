package replication

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"securitykg/internal/cypher"
	"securitykg/internal/search"
	"securitykg/internal/server"
	"securitykg/internal/storage"
)

// scrapeMetrics fetches and parses a node's /metrics exposition into
// full-sample-name -> value. Format validity is pinned by the server
// package's scrape test; here we care that a real two-node deployment
// exports the WAL, MVCC, and replication families on both roles.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics on %s: %v", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestMetricsTwoNodeScrape runs a leader and a tailing follower in one
// process and scrapes /metrics on both: the WAL counters move with
// writes, the follower's applied-records counter moves with
// replication, and each node exports its own seq/lag gauges.
func TestMetricsTwoNodeScrape(t *testing.T) {
	// Leader.
	ldb := openDB(t, t.TempDir(), storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	defer ldb.Close()
	lsrv := server.NewWith(ldb.Store(), search.NewIndex(nil), cypher.DefaultOptions())
	lsrv.SetReplication(server.Replication{
		Role: "primary",
		Seq:  ldb.CommittedSeq,
		Lag:  func() int64 { return 0 },
	})
	lmux := http.NewServeMux()
	lmux.Handle("/api/", lsrv)
	lmux.Handle("/metrics", lsrv)
	(&Leader{DB: ldb, HeartbeatEvery: 20 * time.Millisecond}).Register(lmux)
	leader := httptest.NewServer(lmux)
	defer leader.Close()

	// Follower.
	fdir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := Bootstrap(ctx, fdir, leader.URL, nil, nil); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	fdb := openDB(t, fdir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	defer fdb.Close()
	repl := NewReplicator(fdb, leader.URL)
	repl.Backoff = fastBackoff()
	done := make(chan error, 1)
	go func() { done <- repl.Run(ctx) }()
	defer func() { cancel(); <-done }()
	ropts := cypher.DefaultOptions()
	ropts.ReadOnly = true
	fsrv := server.NewWith(fdb.Store(), search.NewIndex(nil), ropts)
	fsrv.SetReplication(server.Replication{
		Role:      "replica",
		LeaderURL: leader.URL,
		Seq:       repl.AppliedSeq,
		WaitSeq:   repl.WaitApplied,
		Lag:       func() int64 { return repl.Status().LagRecords },
	})
	fmux := http.NewServeMux()
	fmux.Handle("/api/", fsrv)
	fmux.Handle("/metrics", fsrv)
	replica := httptest.NewServer(fmux)
	defer replica.Close()

	before := scrapeMetrics(t, leader.URL)
	for _, fam := range []string{
		"skg_wal_appends_total", "skg_wal_bytes_total",
		"skg_tx_commit_total", "skg_mvcc_snapshots_opened_total",
		"skg_replication_frames_shipped_total", "skg_replication_records_applied_total",
		"skg_replication_seq", "skg_replication_lag_records",
		"skg_store_nodes", "skg_plan_cache_entries",
	} {
		if _, ok := before[fam]; !ok {
			t.Errorf("leader scrape missing %s", fam)
		}
	}

	// Write through the leader, read-your-writes on the replica so the
	// records are known applied before the second scrape.
	var lastSeq uint64
	for i := 0; i < 5; i++ {
		b, _ := json.Marshal(map[string]any{
			"query": fmt.Sprintf(`create (m:Malware {name: "metrics-%d"})`, i)})
		resp, err := http.Post(leader.URL+"/api/cypher", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if seq, ok := out["seq"].(float64); ok {
			lastSeq = uint64(seq)
		}
	}
	if err := repl.WaitApplied(ctx, lastSeq); err != nil {
		t.Fatalf("follower never applied seq %d: %v", lastSeq, err)
	}

	after := scrapeMetrics(t, leader.URL)
	if after["skg_wal_appends_total"] < before["skg_wal_appends_total"]+5 {
		t.Errorf("WAL appends %v -> %v, want +5", before["skg_wal_appends_total"], after["skg_wal_appends_total"])
	}
	if after["skg_wal_bytes_total"] <= before["skg_wal_bytes_total"] {
		t.Errorf("WAL bytes did not grow: %v -> %v", before["skg_wal_bytes_total"], after["skg_wal_bytes_total"])
	}
	if after["skg_replication_frames_shipped_total"] < before["skg_replication_frames_shipped_total"]+5 {
		t.Errorf("shipped frames %v -> %v, want +5",
			before["skg_replication_frames_shipped_total"], after["skg_replication_frames_shipped_total"])
	}
	if after["skg_replication_records_applied_total"] < before["skg_replication_records_applied_total"]+5 {
		t.Errorf("applied records %v -> %v, want +5",
			before["skg_replication_records_applied_total"], after["skg_replication_records_applied_total"])
	}
	for name, v := range before {
		if strings.HasSuffix(name, "_total") && after[name] < v {
			t.Errorf("counter %s went backwards: %v -> %v", name, v, after[name])
		}
	}

	// Role-specific gauges: the leader reports its committed seq and
	// zero lag; the caught-up follower reports its applied seq and the
	// lag gauge exists (0 once caught up).
	if got := after["skg_replication_seq"]; got != float64(ldb.CommittedSeq()) {
		t.Errorf("leader seq gauge = %v, want %d", got, ldb.CommittedSeq())
	}
	if got := after["skg_replication_lag_records"]; got != 0 {
		t.Errorf("leader lag gauge = %v, want 0", got)
	}
	fm := scrapeMetrics(t, replica.URL)
	if got := fm["skg_replication_seq"]; got != float64(repl.AppliedSeq()) {
		t.Errorf("follower seq gauge = %v, want %d", got, repl.AppliedSeq())
	}
	if _, ok := fm["skg_replication_lag_records"]; !ok {
		t.Error("follower scrape missing skg_replication_lag_records")
	}
	if fm["skg_store_nodes"] != after["skg_store_nodes"] {
		t.Errorf("follower store gauge %v != leader %v after catch-up",
			fm["skg_store_nodes"], after["skg_store_nodes"])
	}
}
