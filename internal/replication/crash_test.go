package replication

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"testing"
	"time"

	"securitykg/internal/storage"
)

// TestFollowerCrashKill is the replication half of the crash-recovery
// property (the storage package proves the single-node half): a
// follower process is SIGKILLed at an arbitrary moment — mid snapshot
// install, mid recovery, or mid tail apply, wherever the random timer
// lands — and after restart it must converge to the leader's exact
// state. The follower's durability machinery is the same WAL the
// leader's is, so recovery truncates any torn tail back to a
// transaction-group boundary and the resumed stream re-ships the rest.
//
// The child process is this test binary re-exec'd in follower mode; the
// parent hosts the leader, murders the child, then finishes the
// catch-up in-process and compares Save output byte for byte.
func TestFollowerCrashKill(t *testing.T) {
	if dir := os.Getenv("SKG_REPL_CHILD_DIR"); dir != "" {
		replCrashChild(dir)
		return
	}
	if testing.Short() {
		t.Skip("process-kill replication test skipped in -short mode")
	}

	ldir := t.TempDir()
	ldb := openDB(t, ldir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	defer ldb.Close()
	wr := newWriter(time.Now().UnixNano())
	for i := 0; i < 1500; i++ {
		wr.step(ldb.Store())
	}
	mux := http.NewServeMux()
	(&Leader{DB: ldb, HeartbeatEvery: 50 * time.Millisecond}).Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	fdir := t.TempDir() // reused across rounds: later kills hit a mid-catch-up dir
	for round := 0; round < 3; round++ {
		cmd := exec.Command(exe, "-test.run", "^TestFollowerCrashKill$")
		cmd.Env = append(os.Environ(),
			"SKG_REPL_CHILD_DIR="+fdir,
			"SKG_REPL_LEADER_URL="+srv.URL)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Writes keep flowing while the child replicates, so the kill
		// can land mid tail-apply, not just mid catch-up.
		killAt := time.After(time.Duration(20+rng.Intn(150)) * time.Millisecond)
	loop:
		for {
			select {
			case <-killAt:
				break loop
			default:
				wr.step(ldb.Store())
			}
		}
		cmd.Process.Kill()
		cmd.Wait()

		// Finish the catch-up in-process from whatever state the child
		// left: possibly nothing (killed mid snapshot install), possibly
		// a WAL cut at an arbitrary byte.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := Bootstrap(ctx, fdir, srv.URL, nil, nil); err != nil {
			cancel()
			t.Fatalf("round %d: bootstrap after kill: %v", round, err)
		}
		fdb, err := storage.Open(fdir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
		if err != nil {
			t.Fatalf("round %d: recovery after kill failed: %v", round, err)
		}
		repl := NewReplicator(fdb, srv.URL)
		repl.Backoff = fastBackoff()
		rctx, rcancel := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func() { done <- repl.Run(rctx) }()
		if err := repl.WaitApplied(ctx, ldb.CommittedSeq()); err != nil {
			t.Fatalf("round %d: catch-up after kill: %v (applied %d, want %d)",
				round, err, repl.AppliedSeq(), ldb.CommittedSeq())
		}
		got := saveBytes(t, fdb.Store())
		want := saveBytes(t, ldb.Store())
		rcancel()
		<-done
		fdb.Close()
		cancel()
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: follower state differs from leader after crash recovery", round)
		}
		t.Logf("round %d: killed follower recovered and converged at seq %d", round, ldb.CommittedSeq())
	}
}

// replCrashChild is the follower the parent kills: bootstrap, open,
// tail as fast as possible until murdered.
func replCrashChild(dir string) {
	url := os.Getenv("SKG_REPL_LEADER_URL")
	if url == "" {
		fmt.Fprintln(os.Stderr, "repl crash child: no leader URL")
		os.Exit(2)
	}
	ctx := context.Background()
	if err := Bootstrap(ctx, dir, url, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "repl crash child: bootstrap:", err)
		os.Exit(2)
	}
	db, err := storage.Open(dir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "repl crash child: open:", err)
		os.Exit(2)
	}
	repl := NewReplicator(db, url)
	if err := repl.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "repl crash child: run:", err)
		os.Exit(2)
	}
}
