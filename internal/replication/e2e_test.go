package replication

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"securitykg/internal/cypher"
	"securitykg/internal/search"
	"securitykg/internal/server"
	"securitykg/internal/storage"
)

// TestTwoNodeReadYourWrites is the whole deployment in one process:
// a leader node serving writes and the replication endpoints, a
// replica node tailing it, and a client that writes to the leader and
// immediately reads from the replica carrying the seq token from the
// write response. The token contract says such a read is never stale
// — no sleeps, no retries, every single iteration must see its write.
func TestTwoNodeReadYourWrites(t *testing.T) {
	// Leader node.
	ldb := openDB(t, t.TempDir(), storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	defer ldb.Close()
	lsrv := server.NewWith(ldb.Store(), search.NewIndex(nil), cypher.DefaultOptions())
	lsrv.SetReplication(server.Replication{Role: "primary", Seq: ldb.CommittedSeq})
	lmux := http.NewServeMux()
	lmux.Handle("/api/", lsrv)
	lmux.Handle("/healthz", lsrv)
	(&Leader{DB: ldb, HeartbeatEvery: 20 * time.Millisecond}).Register(lmux)
	leader := httptest.NewServer(lmux)
	defer leader.Close()

	// Replica node.
	fdir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := Bootstrap(ctx, fdir, leader.URL, nil, nil); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	fdb := openDB(t, fdir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
	defer fdb.Close()
	repl := NewReplicator(fdb, leader.URL)
	repl.Backoff = fastBackoff()
	done := make(chan error, 1)
	go func() { done <- repl.Run(ctx) }()
	defer func() { cancel(); <-done }()
	ropts := cypher.DefaultOptions()
	ropts.ReadOnly = true
	fsrv := server.NewWith(fdb.Store(), search.NewIndex(nil), ropts)
	fsrv.SetReplication(server.Replication{
		Role:      "replica",
		LeaderURL: leader.URL,
		Seq:       repl.AppliedSeq,
		WaitSeq:   repl.WaitApplied,
	})
	fmux := http.NewServeMux()
	fmux.Handle("/api/", fsrv)
	fmux.Handle("/healthz", fsrv)
	repl.RegisterStatus(fmux)
	replica := httptest.NewServer(fmux)
	defer replica.Close()

	post := func(url string, body map[string]any) (*http.Response, map[string]any) {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(url+"/api/cypher", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
		return resp, out
	}

	// Write on the leader, read-your-write on the replica, 25 times in
	// a row with zero allowance for replication delay.
	for i := 0; i < 25; i++ {
		name := fmt.Sprintf("rw-%02d", i)
		resp, out := post(leader.URL, map[string]any{
			"query": fmt.Sprintf(`create (m:Malware {name: %q})`, name),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("write %d: %v %v", i, resp.Status, out)
		}
		seq, ok := out["seq"].(float64)
		if !ok || seq == 0 {
			t.Fatalf("write %d response carries no seq token: %v", i, out)
		}
		resp, out = post(replica.URL, map[string]any{
			"query":   fmt.Sprintf(`match (m:Malware {name: %q}) return m.name`, name),
			"min_seq": uint64(seq),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d: %v %v", i, resp.Status, out)
		}
		rows, _ := out["rows"].([]any)
		if len(rows) != 1 {
			t.Fatalf("read %d with min_seq=%d did not see the write: %v", i, uint64(seq), out)
		}
	}

	// Transactional write: the COMMIT response carries the seq token.
	_, begin := post(leader.URL, map[string]any{"query": "BEGIN"})
	token, _ := begin["tx"].(string)
	if token == "" {
		t.Fatalf("BEGIN returned no token: %v", begin)
	}
	post(leader.URL, map[string]any{"tx": token, "query": `create (m:Malware {name: "tx-a"})`})
	post(leader.URL, map[string]any{"tx": token, "query": `create (m:Malware {name: "tx-b"})`})
	_, committed := post(leader.URL, map[string]any{"tx": token, "query": "COMMIT"})
	cseq, ok := committed["seq"].(float64)
	if !ok || cseq == 0 {
		t.Fatalf("COMMIT response carries no seq token: %v", committed)
	}
	resp, out := post(replica.URL, map[string]any{
		"query":   `match (m:Malware {name: "tx-b"}) return m.name`,
		"min_seq": uint64(cseq),
	})
	if rows, _ := out["rows"].([]any); resp.StatusCode != http.StatusOK || len(rows) != 1 {
		t.Fatalf("replica read after COMMIT: %v %v", resp.Status, out)
	}

	// Writes and BEGIN on the replica: typed redirect naming the leader.
	for _, q := range []string{`create (m:Malware {name: "nope"})`, "BEGIN"} {
		resp, out := post(replica.URL, map[string]any{"query": q})
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("replica %q: status %v, want 421", q, resp.Status)
		}
		if out["code"] != "not_leader" || out["leader"] != leader.URL {
			t.Fatalf("replica %q redirect body: %v", q, out)
		}
	}

	// min_seq past anything the leader has committed: bounded wait, 504.
	start := time.Now()
	b, _ := json.Marshal(map[string]any{
		"query":   `match (m:Malware) return m.name`,
		"min_seq": ldb.CommittedSeq() + 100000,
	})
	waitResp, err := http.Post(replica.URL+"/api/cypher?wait_ms=80", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var waitOut map[string]any
	json.NewDecoder(waitResp.Body).Decode(&waitOut)
	waitResp.Body.Close()
	if waitResp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("unreachable min_seq: status %v (%v), want 504", waitResp.Status, waitOut)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("bounded wait took %v", time.Since(start))
	}

	// Health and status endpoints on both nodes.
	var health map[string]any
	for _, tc := range []struct{ url, role string }{{leader.URL, "primary"}, {replica.URL, "replica"}} {
		r, err := http.Get(tc.url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		health = map[string]any{}
		json.NewDecoder(r.Body).Decode(&health)
		r.Body.Close()
		if health["role"] != tc.role || health["status"] != "ok" {
			t.Fatalf("healthz on %s: %v", tc.role, health)
		}
	}
	r, err := http.Get(replica.URL + "/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	json.NewDecoder(r.Body).Decode(&st)
	r.Body.Close()
	if st.Role != "replica" || st.State != "tail" {
		t.Fatalf("replica status: %+v", st)
	}
	r, err = http.Get(leader.URL + "/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	st = Status{}
	json.NewDecoder(r.Body).Decode(&st)
	r.Body.Close()
	if st.Role != "primary" || st.CommittedSeq != ldb.CommittedSeq() {
		t.Fatalf("leader status: %+v", st)
	}
}
