// Package textproc implements the natural-language preprocessing substrate
// SecurityKG's extractors depend on: tokenization, sentence segmentation,
// part-of-speech tagging, lemmatization, and word-shape features.
//
// The paper notes that security text is full of nuances (dots, underscores
// and other special characters inside IOCs) that break generic NLP modules.
// SecurityKG solves that with "IOC protection" (package ioc): IOCs are
// replaced with plain placeholder words before this package runs and
// restored afterwards, so everything here may assume mostly well-formed
// English tokens.
package textproc

import (
	"strings"
	"unicode"
)

// Token is one tokenized unit of text with its byte span in the original
// string and the linguistic annotations filled in by the tagging passes.
type Token struct {
	Text  string // surface form
	Start int    // byte offset of first byte in the source text
	End   int    // byte offset one past the last byte
	POS   string // Penn-style part-of-speech tag (after Tag)
	Lemma string // lemmatized form (after Lemmatize)
	Shape string // word shape, e.g. "Xxxx", "dd.dd" (after Shapes)
}

// IsPunct reports whether the token is pure punctuation.
func (t Token) IsPunct() bool {
	for _, r := range t.Text {
		if !unicode.IsPunct(r) && !unicode.IsSymbol(r) {
			return false
		}
	}
	return len(t.Text) > 0
}

// Tokenize splits text into word, number, and punctuation tokens with byte
// offsets. Contractions are kept whole ("don't"), hyphenated compounds are
// kept whole ("command-and-control"), and runs of identical punctuation
// ("..." or "--") form a single token. Underscore is treated as a word
// character so protected placeholders and identifiers survive intact.
func Tokenize(text string) []Token {
	var toks []Token
	i := 0
	n := len(text)
	for i < n {
		r := rune(text[i])
		switch {
		case r < 128 && (unicode.IsSpace(r)):
			i++
		case isWordByte(text[i]):
			j := i + 1
			for j < n {
				if isWordByte(text[j]) {
					j++
					continue
				}
				// Keep internal apostrophes, hyphens and periods between
				// word characters: "don't", "anti-virus", "U.S." — but a
				// period followed by space/end is sentence punctuation.
				if (text[j] == '\'' || text[j] == '-' || text[j] == '.') &&
					j+1 < n && isWordByte(text[j+1]) {
					j += 2
					continue
				}
				// Keep thousands separators inside numbers: "120,000".
				if text[j] == ',' && j+1 < n && isDigitByte(text[j-1]) && isDigitByte(text[j+1]) {
					j += 2
					continue
				}
				break
			}
			toks = append(toks, Token{Text: text[i:j], Start: i, End: j})
			i = j
		case r >= 128:
			// Non-ASCII: take the full rune sequence of letters.
			j := i
			for j < n && text[j] >= 128 {
				j++
			}
			toks = append(toks, Token{Text: text[i:j], Start: i, End: j})
			i = j
		default:
			// Punctuation: group runs of the same character.
			j := i + 1
			for j < n && text[j] == text[i] {
				j++
			}
			toks = append(toks, Token{Text: text[i:j], Start: i, End: j})
			i = j
		}
	}
	return toks
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
		b >= '0' && b <= '9' || b == '_'
}

func isDigitByte(b byte) bool { return b >= '0' && b <= '9' }

// abbreviations that should not terminate a sentence even though they end
// with a period.
var abbreviations = map[string]bool{
	"e.g": true, "i.e": true, "etc": true, "vs": true, "cf": true,
	"dr": true, "mr": true, "mrs": true, "ms": true, "prof": true,
	"inc": true, "ltd": true, "co": true, "corp": true, "fig": true,
	"no": true, "vol": true, "ver": true, "approx": true, "dept": true,
	"est": true, "jan": true, "feb": true, "mar": true, "apr": true,
	"jun": true, "jul": true, "aug": true, "sep": true, "sept": true,
	"oct": true, "nov": true, "dec": true, "u.s": true, "u.k": true,
}

// Sentence is a span of text (byte offsets into the source).
type Sentence struct {
	Start int
	End   int
	Text  string
}

// SplitSentences segments text into sentences. A sentence ends at '.', '!',
// or '?' when followed by whitespace and an uppercase letter, digit or end
// of text, unless the preceding word is a known abbreviation or a single
// capital initial. Newpara breaks (blank lines) always end a sentence.
func SplitSentences(text string) []Sentence {
	var out []Sentence
	start := 0
	n := len(text)
	flush := func(end int) {
		seg := strings.TrimSpace(text[start:end])
		if seg != "" {
			// Recompute trimmed offsets.
			s := start
			for s < end && unicode.IsSpace(rune(text[s])) {
				s++
			}
			e := end
			for e > s && unicode.IsSpace(rune(text[e-1])) {
				e--
			}
			out = append(out, Sentence{Start: s, End: e, Text: text[s:e]})
		}
		start = end
	}
	for i := 0; i < n; i++ {
		c := text[i]
		if c == '\n' {
			// Paragraph break: blank line.
			j := i + 1
			sawBlank := false
			for j < n && (text[j] == ' ' || text[j] == '\t' || text[j] == '\r') {
				j++
			}
			if j < n && text[j] == '\n' {
				sawBlank = true
			}
			if sawBlank || j >= n {
				flush(i)
			}
			continue
		}
		if c != '.' && c != '!' && c != '?' {
			continue
		}
		// Consume a run of terminal punctuation.
		j := i
		for j+1 < n && (text[j+1] == '.' || text[j+1] == '!' || text[j+1] == '?' || text[j+1] == '"' || text[j+1] == ')') {
			j++
		}
		if j+1 >= n {
			flush(n)
			i = j
			continue
		}
		if text[j+1] != ' ' && text[j+1] != '\t' && text[j+1] != '\n' {
			continue // mid-token period (version numbers, filenames)
		}
		if c == '.' {
			w := precedingWord(text, i)
			lw := strings.ToLower(w)
			if abbreviations[lw] || (len(w) == 1 && w[0] >= 'A' && w[0] <= 'Z') {
				continue
			}
		}
		// Peek the next non-space character.
		k := j + 1
		for k < n && (text[k] == ' ' || text[k] == '\t' || text[k] == '\n' || text[k] == '\r') {
			k++
		}
		if k >= n {
			flush(n)
			i = n
			break
		}
		nr := rune(text[k])
		if unicode.IsUpper(nr) || unicode.IsDigit(nr) || nr == '"' || nr == '\'' {
			flush(j + 1)
			i = j
		}
	}
	flush(n)
	return out
}

func precedingWord(text string, i int) string {
	j := i
	for j > 0 {
		b := text[j-1]
		if isWordByte(b) || b == '.' && j >= 2 && isWordByte(text[j-2]) {
			j--
			continue
		}
		break
	}
	return text[j:i]
}

// Shapes fills the Shape field of every token. The shape maps uppercase
// letters to 'X', lowercase to 'x', digits to 'd', and keeps other
// characters; runs longer than 4 are truncated so "Mimikatz" and
// "Powershell" share the shape "Xxxxx" -> "Xxxx+"-style generalization.
func Shapes(toks []Token) {
	for i := range toks {
		toks[i].Shape = Shape(toks[i].Text)
	}
}

// Shape computes the word shape of a single string.
func Shape(s string) string {
	var b strings.Builder
	var last rune
	run := 0
	for _, r := range s {
		var c rune
		switch {
		case unicode.IsUpper(r):
			c = 'X'
		case unicode.IsLower(r):
			c = 'x'
		case unicode.IsDigit(r):
			c = 'd'
		default:
			c = r
		}
		if c == last {
			run++
			if run > 4 {
				continue
			}
		} else {
			run = 1
			last = c
		}
		b.WriteRune(c)
	}
	return b.String()
}
