package textproc

import (
	"strings"
	"testing"
	"testing/quick"
)

func tokenTexts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("The malware dropped a file.")
	want := []string{"The", "malware", "dropped", "a", "file", "."}
	got := tokenTexts(toks)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenizeOffsetsRoundTrip(t *testing.T) {
	src := "WannaCry encrypts files, then demands $300 in bitcoin!"
	for _, tok := range Tokenize(src) {
		if src[tok.Start:tok.End] != tok.Text {
			t.Errorf("offset mismatch: %q vs src[%d:%d]=%q",
				tok.Text, tok.Start, tok.End, src[tok.Start:tok.End])
		}
	}
}

func TestTokenizeKeepsContractionsAndHyphens(t *testing.T) {
	toks := tokenTexts(Tokenize("don't use command-and-control servers"))
	want := []string{"don't", "use", "command-and-control", "servers"}
	if strings.Join(toks, "|") != strings.Join(want, "|") {
		t.Errorf("got %v, want %v", toks, want)
	}
}

func TestTokenizeKeepsUnderscoreWordsWhole(t *testing.T) {
	// IOC protection replaces IOCs with placeholder words that can contain
	// underscores; the tokenizer must not split them.
	toks := tokenTexts(Tokenize("process accessed IOCPROTECTED_0007 yesterday"))
	found := false
	for _, tk := range toks {
		if tk == "IOCPROTECTED_0007" {
			found = true
		}
	}
	if !found {
		t.Errorf("placeholder token was split: %v", toks)
	}
}

func TestTokenizeInternalDots(t *testing.T) {
	toks := tokenTexts(Tokenize("Version 2.1.7 was observed. Next sentence."))
	joined := strings.Join(toks, "|")
	if !strings.Contains(joined, "2.1.7") {
		t.Errorf("version number split apart: %v", toks)
	}
}

func TestTokenizePunctuationRuns(t *testing.T) {
	toks := tokenTexts(Tokenize("Wait... what?!"))
	want := []string{"Wait", "...", "what", "?", "!"}
	if strings.Join(toks, "|") != strings.Join(want, "|") {
		t.Errorf("got %v, want %v", toks, want)
	}
}

func TestTokenizeEmptyAndWhitespace(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("empty input produced tokens: %v", got)
	}
	if got := Tokenize("   \n\t  "); len(got) != 0 {
		t.Errorf("whitespace produced tokens: %v", got)
	}
}

func TestSplitSentencesBasic(t *testing.T) {
	text := "The trojan connects to its server. It then downloads a payload. Analysts observed this in March."
	sents := SplitSentences(text)
	if len(sents) != 3 {
		t.Fatalf("expected 3 sentences, got %d: %+v", len(sents), sents)
	}
	if !strings.HasPrefix(sents[1].Text, "It then") {
		t.Errorf("second sentence wrong: %q", sents[1].Text)
	}
}

func TestSplitSentencesAbbreviations(t *testing.T) {
	text := "Tools e.g. scanners were used. A second attack followed."
	sents := SplitSentences(text)
	if len(sents) != 2 {
		t.Fatalf("abbreviation split wrongly: %d sentences %+v", len(sents), sents)
	}
}

func TestSplitSentencesOffsets(t *testing.T) {
	text := "First sentence here. Second one there!"
	for _, s := range SplitSentences(text) {
		if text[s.Start:s.End] != s.Text {
			t.Errorf("offset mismatch: %q vs %q", s.Text, text[s.Start:s.End])
		}
	}
}

func TestSplitSentencesParagraphBreak(t *testing.T) {
	text := "Heading without period\n\nBody sentence follows here"
	sents := SplitSentences(text)
	if len(sents) != 2 {
		t.Fatalf("paragraph break not honored: %d sentences: %+v", len(sents), sents)
	}
}

func TestShape(t *testing.T) {
	cases := map[string]string{
		"WannaCry": "XxxxxXxx",
		"malware":  "xxxx",
		"CVE":      "XXX",
		"12345678": "dddd",
		"Ab3":      "Xxd",
		"a.b":      "x.x",
	}
	for in, want := range cases {
		if got := Shape(in); got != want {
			t.Errorf("Shape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTagClosedClass(t *testing.T) {
	toks := Annotate("The malware will connect to the server")
	byText := map[string]string{}
	for _, tk := range toks {
		byText[tk.Text] = tk.POS
	}
	if byText["The"] != TagDT {
		t.Errorf("The tagged %s", byText["The"])
	}
	if byText["will"] != TagMD {
		t.Errorf("will tagged %s", byText["will"])
	}
	if byText["connect"] != TagVB {
		t.Errorf("connect after modal tagged %s, want VB", byText["connect"])
	}
	if byText["to"] != TagTO {
		t.Errorf("to tagged %s", byText["to"])
	}
}

func TestTagVerbMorphology(t *testing.T) {
	toks := Annotate("The malware dropped files and encrypts documents while spreading quickly")
	byText := map[string]string{}
	for _, tk := range toks {
		byText[tk.Text] = tk.POS
	}
	if byText["dropped"] != TagVBD {
		t.Errorf("dropped tagged %s, want VBD", byText["dropped"])
	}
	if byText["encrypts"] != TagVBZ {
		t.Errorf("encrypts tagged %s, want VBZ", byText["encrypts"])
	}
	if byText["spreading"] != TagVBG {
		t.Errorf("spreading tagged %s, want VBG", byText["spreading"])
	}
	if byText["quickly"] != TagRB {
		t.Errorf("quickly tagged %s, want RB", byText["quickly"])
	}
}

func TestTagProperNounMidSentence(t *testing.T) {
	toks := Annotate("Researchers attributed Emotet to the group")
	var emotet string
	for _, tk := range toks {
		if tk.Text == "Emotet" {
			emotet = tk.POS
		}
	}
	if emotet != TagNNP {
		t.Errorf("Emotet tagged %s, want NNP", emotet)
	}
}

func TestTagNumbers(t *testing.T) {
	toks := Annotate("Over 120,000 reports and 3.5 million samples")
	count := 0
	for _, tk := range toks {
		if tk.POS == TagCD {
			count++
		}
	}
	if count != 2 {
		t.Errorf("expected 2 CD tokens, got %d: %+v", count, toks)
	}
}

func TestLemmaIrregulars(t *testing.T) {
	cases := []struct{ word, pos, want string }{
		{"sent", TagVBD, "send"},
		{"was", TagVBD, "be"},
		{"written", TagVBN, "write"},
		{"stole", TagVBD, "steal"},
		{"vulnerabilities", TagNNS, "vulnerability"},
		{"families", TagNNS, "family"},
	}
	for _, c := range cases {
		if got := Lemma(c.word, c.pos); got != c.want {
			t.Errorf("Lemma(%q,%s) = %q, want %q", c.word, c.pos, got, c.want)
		}
	}
}

func TestLemmaRegularMorphology(t *testing.T) {
	cases := []struct{ word, pos, want string }{
		{"drops", TagVBZ, "drop"},
		{"dropped", TagVBD, "drop"},
		{"dropping", TagVBG, "drop"},
		{"uses", TagVBZ, "use"},
		{"using", TagVBG, "use"},
		{"encrypted", TagVBN, "encrypt"},
		{"connects", TagVBZ, "connect"},
		{"files", TagNNS, "file"},
		{"servers", TagNNS, "server"},
		{"patches", TagVBZ, "patch"},
	}
	for _, c := range cases {
		if got := Lemma(c.word, c.pos); got != c.want {
			t.Errorf("Lemma(%q,%s) = %q, want %q", c.word, c.pos, got, c.want)
		}
	}
}

func TestAnnotatePipelineFillsAllFields(t *testing.T) {
	toks := Annotate("The worm spreads rapidly.")
	for _, tk := range toks {
		if tk.POS == "" {
			t.Errorf("token %q missing POS", tk.Text)
		}
		if tk.Lemma == "" {
			t.Errorf("token %q missing lemma", tk.Text)
		}
		if tk.Shape == "" {
			t.Errorf("token %q missing shape", tk.Text)
		}
	}
}

func TestIsVerbIsNounTag(t *testing.T) {
	for _, v := range []string{TagVB, TagVBD, TagVBG, TagVBN, TagVBZ, TagVBP} {
		if !IsVerbTag(v) {
			t.Errorf("%s should be a verb tag", v)
		}
	}
	for _, n := range []string{TagNN, TagNNS, TagNNP} {
		if IsVerbTag(n) {
			t.Errorf("%s should not be a verb tag", n)
		}
		if !IsNounTag(n) {
			t.Errorf("%s should be a noun tag", n)
		}
	}
}

// Property: tokenization never loses non-whitespace bytes — concatenating
// token texts yields the input with whitespace removed (ASCII inputs).
func TestTokenizeLosslessQuick(t *testing.T) {
	f := func(words []uint16) bool {
		var sb strings.Builder
		for _, w := range words {
			// Build printable ASCII strings from fuzz input.
			sb.WriteByte(byte('a' + w%26))
			if w%7 == 0 {
				sb.WriteByte(' ')
			}
			if w%11 == 0 {
				sb.WriteByte('.')
			}
		}
		src := sb.String()
		var joined strings.Builder
		for _, tok := range Tokenize(src) {
			joined.WriteString(tok.Text)
		}
		stripped := strings.Map(func(r rune) rune {
			if r == ' ' {
				return -1
			}
			return r
		}, src)
		return joined.String() == stripped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: token spans are non-overlapping and strictly increasing.
func TestTokenizeSpansMonotonicQuick(t *testing.T) {
	f := func(s string) bool {
		prevEnd := -1
		for _, tok := range Tokenize(s) {
			if tok.Start < prevEnd || tok.End <= tok.Start {
				return false
			}
			prevEnd = tok.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
