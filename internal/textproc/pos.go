package textproc

import "strings"

// Part-of-speech tags (a compact Penn-Treebank-style set).
const (
	TagNN    = "NN"   // noun, singular
	TagNNS   = "NNS"  // noun, plural
	TagNNP   = "NNP"  // proper noun
	TagVB    = "VB"   // verb, base
	TagVBD   = "VBD"  // verb, past
	TagVBG   = "VBG"  // verb, gerund
	TagVBN   = "VBN"  // verb, past participle
	TagVBZ   = "VBZ"  // verb, 3rd person singular
	TagVBP   = "VBP"  // verb, non-3rd singular present
	TagMD    = "MD"   // modal
	TagJJ    = "JJ"   // adjective
	TagRB    = "RB"   // adverb
	TagIN    = "IN"   // preposition / subordinating conjunction
	TagDT    = "DT"   // determiner
	TagPRP   = "PRP"  // pronoun
	TagPRPS  = "PRP$" // possessive pronoun
	TagCC    = "CC"   // coordinating conjunction
	TagCD    = "CD"   // cardinal number
	TagTO    = "TO"   // "to"
	TagWDT   = "WDT"  // wh-determiner
	TagPunct = "."    // punctuation
)

// closed-class lexicon: function words with unambiguous tags.
var closedClass = map[string]string{
	"the": TagDT, "a": TagDT, "an": TagDT, "this": TagDT, "that": TagDT,
	"these": TagDT, "those": TagDT, "each": TagDT, "every": TagDT,
	"some": TagDT, "any": TagDT, "no": TagDT, "all": TagDT, "both": TagDT,
	"another": TagDT, "such": TagDT,

	"in": TagIN, "on": TagIN, "at": TagIN, "by": TagIN, "for": TagIN,
	"with": TagIN, "from": TagIN, "into": TagIN, "through": TagIN,
	"over": TagIN, "under": TagIN, "against": TagIN, "via": TagIN,
	"of": TagIN, "as": TagIN, "after": TagIN, "before": TagIN,
	"during": TagIN, "between": TagIN, "within": TagIN, "without": TagIN,
	"upon": TagIN, "across": TagIN, "toward": TagIN, "towards": TagIN,
	"onto": TagIN, "if": TagIN, "because": TagIN, "while": TagIN,
	"when": TagIN, "since": TagIN, "until": TagIN, "once": TagIN,

	"and": TagCC, "or": TagCC, "but": TagCC, "nor": TagCC, "yet": TagCC,
	"plus": TagCC,

	"i": TagPRP, "you": TagPRP, "he": TagPRP, "she": TagPRP, "it": TagPRP,
	"we": TagPRP, "they": TagPRP, "them": TagPRP, "him": TagPRP,
	"her": TagPRP, "us": TagPRP, "itself": TagPRP, "themselves": TagPRP,

	"its": TagPRPS, "their": TagPRPS, "his": TagPRPS, "our": TagPRPS,
	"your": TagPRPS, "my": TagPRPS,

	"to": TagTO,

	"can": TagMD, "could": TagMD, "may": TagMD, "might": TagMD,
	"must": TagMD, "shall": TagMD, "should": TagMD, "will": TagMD,
	"would": TagMD,

	"which": TagWDT, "what": TagWDT, "whose": TagWDT, "who": TagWDT,

	"not": TagRB, "also": TagRB, "then": TagRB, "now": TagRB,
	"here": TagRB, "there": TagRB, "very": TagRB, "often": TagRB,
	"typically": TagRB, "subsequently": TagRB, "later": TagRB,
	"first": TagRB, "finally": TagRB, "additionally": TagRB,
	"remotely": TagRB, "silently": TagRB, "actively": TagRB,
}

// open-class lexicon: frequent domain words with their usual tags. The
// security-verb entries matter most: relation extraction hinges on verbs.
var openClass = map[string]string{
	"is": TagVBZ, "are": TagVBP, "was": TagVBD, "were": TagVBD,
	"be": TagVB, "been": TagVBN, "being": TagVBG,
	"has": TagVBZ, "have": TagVBP, "had": TagVBD, "having": TagVBG,
	"does": TagVBZ, "do": TagVBP, "did": TagVBD,

	"malware": TagNN, "ransomware": TagNN, "trojan": TagNN, "worm": TagNN,
	"backdoor": TagNN, "botnet": TagNN, "campaign": TagNN, "attacker": TagNN,
	"attackers": TagNNS, "victim": TagNN, "victims": TagNNS,
	"payload": TagNN, "sample": TagNN, "samples": TagNNS, "file": TagNN,
	"files": TagNNS, "server": TagNN, "servers": TagNNS, "domain": TagNN,
	"domains": TagNNS, "address": TagNN, "addresses": TagNNS,
	"vulnerability": TagNN, "vulnerabilities": TagNNS, "exploit": TagNN,
	"technique": TagNN, "techniques": TagNNS, "tool": TagNN, "tools": TagNNS,
	"registry": TagNN, "key": TagNN, "keys": TagNNS, "email": TagNN,
	"emails": TagNNS, "phishing": TagNN, "spearphishing": TagNN,
	"group": TagNN, "actor": TagNN, "actors": TagNNS, "threat": TagNN,
	"report": TagNN, "researchers": TagNNS, "system": TagNN,
	"systems": TagNNS, "network": TagNN, "networks": TagNNS,
	"data": TagNNS, "credentials": TagNNS, "persistence": TagNN,
	"command": TagN_, "control": TagN_,

	"malicious": TagJJ, "suspicious": TagJJ, "remote": TagJJ,
	"new": TagJJ, "recent": TagJJ, "known": TagJJ, "unknown": TagJJ,
	"infected": TagJJ, "compromised": TagJJ, "encrypted": TagJJ,
	"sophisticated": TagJJ, "several": TagJJ, "multiple": TagJJ,
	"additional": TagJJ, "initial": TagJJ, "final": TagJJ, "same": TagJJ,
}

// TagN_ aliases TagNN for table compactness above.
const TagN_ = TagNN

// verbLemmas lists base forms treated as verbs when matched after
// morphological stripping; heavily weighted toward security relation verbs.
var verbLemmas = map[string]bool{
	"drop": true, "use": true, "leverage": true, "employ": true,
	"utilize": true, "deploy": true, "target": true, "attack": true,
	"compromise": true, "infect": true, "exploit": true, "abuse": true,
	"communicate": true, "beacon": true, "contact": true, "connect": true,
	"belong": true, "run": true, "affect": true, "indicate": true,
	"modify": true, "alter": true, "download": true, "fetch": true,
	"retrieve": true, "send": true, "transmit": true, "create": true,
	"write": true, "install": true, "delete": true, "remove": true,
	"encrypt": true, "decrypt": true, "inject": true, "attribute": true,
	"implement": true, "mitigate": true, "patch": true, "phish": true,
	"persist": true, "spread": true, "propagate": true, "exfiltrate": true,
	"upload": true, "steal": true, "host": true, "resolve": true,
	"observe": true, "detect": true, "discover": true, "identify": true,
	"distribute": true, "execute": true, "launch": true, "perform": true,
	"contain": true, "include": true, "appear": true, "begin": true,
	"start": true, "continue": true, "attempt": true, "try": true,
	"allow": true, "enable": true, "disable": true, "establish": true,
	"maintain": true, "gain": true, "obtain": true, "access": true,
	"scan": true, "spoof": true, "masquerade": true, "encode": true,
	"decode": true, "harvest": true, "collect": true, "deliver": true,
}

// Tag assigns a POS tag to every token in place using a lexicon plus
// suffix and context heuristics (a compact rule tagger in the spirit of
// Brill's transformation-based tagger).
func Tag(toks []Token) {
	for i := range toks {
		toks[i].POS = lexicalTag(toks[i].Text)
	}
	// Contextual repair passes.
	for i := range toks {
		t := &toks[i]
		prev := ""
		if i > 0 {
			prev = toks[i-1].POS
		}
		switch {
		// DT/JJ followed by an ambiguous verb-tagged word -> noun reading
		// ("the drop", "a download").
		case (prev == TagDT || prev == TagJJ || prev == TagPRPS) &&
			(t.POS == TagVB || t.POS == TagVBP):
			t.POS = TagNN
		// TO + base verb stays VB; TO + noun that is also a verb -> VB
		// ("to download").
		case prev == TagTO && t.POS == TagNN && verbLemmas[strings.ToLower(t.Text)]:
			t.POS = TagVB
		// Modal + anything verbish -> base verb.
		case prev == TagMD && (t.POS == TagNN || t.POS == TagVBP):
			t.POS = TagVB
		}
		// Past form after a be-auxiliary is a passive participle:
		// "was dropped" -> VBN.
		if t.POS == TagVBD && i > 0 {
			switch strings.ToLower(toks[i-1].Text) {
			case "is", "are", "was", "were", "been", "being", "be":
				t.POS = TagVBN
			}
		}
		// Capitalized mid-sentence word defaults to proper noun unless a
		// closed-class word.
		if i > 0 && t.POS == TagNN && isCapitalized(t.Text) {
			if _, closed := closedClass[strings.ToLower(t.Text)]; !closed {
				t.POS = TagNNP
			}
		}
	}
}

func lexicalTag(w string) string {
	if w == "" {
		return TagPunct
	}
	if isNumberToken(w) {
		return TagCD
	}
	lw := strings.ToLower(w)
	if tag, ok := closedClass[lw]; ok {
		return tag
	}
	if tag, ok := openClass[lw]; ok {
		return tag
	}
	if (Token{Text: w}).IsPunct() {
		return TagPunct
	}
	// Morphological suffix analysis against the verb lexicon.
	if verbLemmas[lw] {
		return TagVBP
	}
	if strings.HasSuffix(lw, "s") && verbLemmas[strapSuffix(lw, "s")] {
		return TagVBZ
	}
	if strings.HasSuffix(lw, "ies") && verbLemmas[lw[:len(lw)-3]+"y"] {
		return TagVBZ
	}
	if strings.HasSuffix(lw, "es") && verbLemmas[strapSuffix(lw, "es")] {
		return TagVBZ
	}
	if strings.HasSuffix(lw, "ed") && verbLemmas[edStem(lw)] {
		return TagVBD
	}
	if strings.HasSuffix(lw, "ing") && verbLemmas[ingStem(lw)] {
		return TagVBG
	}
	// Generic suffix heuristics.
	switch {
	case strings.HasSuffix(lw, "ly"):
		return TagRB
	case strings.HasSuffix(lw, "ous"), strings.HasSuffix(lw, "ful"),
		strings.HasSuffix(lw, "able"), strings.HasSuffix(lw, "ible"),
		strings.HasSuffix(lw, "ive"), strings.HasSuffix(lw, "al"),
		strings.HasSuffix(lw, "ic"):
		return TagJJ
	case strings.HasSuffix(lw, "ing"):
		return TagVBG
	case strings.HasSuffix(lw, "ed"):
		return TagVBN
	case strings.HasSuffix(lw, "tion"), strings.HasSuffix(lw, "sion"),
		strings.HasSuffix(lw, "ment"), strings.HasSuffix(lw, "ness"),
		strings.HasSuffix(lw, "ity"), strings.HasSuffix(lw, "ware"):
		return TagNN
	case strings.HasSuffix(lw, "s") && !strings.HasSuffix(lw, "ss"):
		return TagNNS
	}
	if isCapitalized(w) {
		return TagNNP
	}
	return TagNN
}

func isCapitalized(w string) bool {
	return len(w) > 0 && w[0] >= 'A' && w[0] <= 'Z'
}

func isNumberToken(w string) bool {
	digits := 0
	for i := 0; i < len(w); i++ {
		c := w[i]
		switch {
		case c >= '0' && c <= '9':
			digits++
		case c == '.' || c == ',' || c == '-' || c == '%':
		default:
			return false
		}
	}
	return digits > 0
}

func strapSuffix(w, suf string) string { return strings.TrimSuffix(w, suf) }

func edStem(w string) string {
	base := strings.TrimSuffix(w, "ed")
	if verbLemmas[base] {
		return base
	}
	if verbLemmas[base+"e"] { // encrypt-ed vs us-ed (use)
		return base + "e"
	}
	if len(base) > 1 && base[len(base)-1] == base[len(base)-2] &&
		verbLemmas[base[:len(base)-1]] { // dropp-ed
		return base[:len(base)-1]
	}
	return base
}

func ingStem(w string) string {
	base := strings.TrimSuffix(w, "ing")
	if verbLemmas[base] {
		return base
	}
	if verbLemmas[base+"e"] { // us-ing -> use
		return base + "e"
	}
	if len(base) > 1 && base[len(base)-1] == base[len(base)-2] &&
		verbLemmas[base[:len(base)-1]] { // dropp-ing
		return base[:len(base)-1]
	}
	return base
}

// IsVerbTag reports whether the tag denotes a verb form.
func IsVerbTag(tag string) bool {
	switch tag {
	case TagVB, TagVBD, TagVBG, TagVBN, TagVBZ, TagVBP:
		return true
	}
	return false
}

// IsNounTag reports whether the tag denotes a noun form.
func IsNounTag(tag string) bool {
	return tag == TagNN || tag == TagNNS || tag == TagNNP
}
