package textproc

import "strings"

// irregular maps irregular inflected forms to their lemmas.
var irregular = map[string]string{
	"is": "be", "are": "be", "was": "be", "were": "be", "been": "be",
	"being": "be", "am": "be",
	"has": "have", "had": "have", "having": "have",
	"does": "do", "did": "do", "done": "do", "doing": "do",
	"sent": "send", "wrote": "write", "written": "write",
	"stole": "steal", "stolen": "steal", "ran": "run", "running": "run",
	"began": "begin", "begun": "begin", "spread": "spread",
	"built": "build", "made": "make", "making": "make", "took": "take",
	"taken": "take", "went": "go", "gone": "go", "got": "get",
	"gotten": "get", "found": "find", "left": "leave", "kept": "keep",
	"held": "hold", "saw": "see", "seen": "see", "came": "come",
	"gave": "give", "given": "give", "knew": "know", "known": "know",
	"led": "lead", "met": "meet", "put": "put", "read": "read",
	"said": "say", "sold": "sell", "set": "set", "shut": "shut",
	"children": "child", "people": "person", "men": "man", "women": "woman",
	"data": "data", "media": "media", "indices": "index",
	"analyses": "analysis", "families": "family", "registries": "registry",
	"vulnerabilities": "vulnerability", "binaries": "binary",
	"utilities": "utility", "capabilities": "capability",
	"activities": "activity", "entities": "entity", "proxies": "proxy",
}

// Lemmatize fills the Lemma field of every token, using the POS tag when
// present to choose noun vs verb morphology. Call after Tag for best
// results; without tags it applies generic suffix stripping.
func Lemmatize(toks []Token) {
	for i := range toks {
		toks[i].Lemma = Lemma(toks[i].Text, toks[i].POS)
	}
}

// Lemma computes the lemma of a single word given its POS tag (may be "").
func Lemma(word, pos string) string {
	lw := strings.ToLower(word)
	if lem, ok := irregular[lw]; ok {
		return lem
	}
	if pos == TagCD || pos == TagPunct || pos == TagNNP {
		return lw
	}
	switch {
	case IsVerbTag(pos) || pos == "":
		if l := verbLemma(lw); l != "" {
			return l
		}
	}
	if IsNounTag(pos) || pos == "" {
		if l := nounLemma(lw); l != "" {
			return l
		}
	}
	return lw
}

func verbLemma(w string) string {
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "sses"), strings.HasSuffix(w, "ches"),
		strings.HasSuffix(w, "shes"), strings.HasSuffix(w, "xes"),
		strings.HasSuffix(w, "zes"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && len(w) > 3:
		return w[:len(w)-1]
	case strings.HasSuffix(w, "ing") && len(w) > 4:
		base := w[:len(w)-3]
		return undouble(base)
	case strings.HasSuffix(w, "ed") && len(w) > 4:
		base := w[:len(w)-2]
		return undouble(base)
	}
	return ""
}

func undouble(base string) string {
	if verbLemmas[base] {
		return base
	}
	if verbLemmas[base+"e"] {
		return base + "e"
	}
	if len(base) > 1 && base[len(base)-1] == base[len(base)-2] {
		if verbLemmas[base[:len(base)-1]] {
			return base[:len(base)-1]
		}
	}
	// Generic fallback: prefer the shortest plausible base.
	if len(base) > 2 && base[len(base)-1] == base[len(base)-2] &&
		!strings.ContainsRune("aeiou", rune(base[len(base)-1])) {
		return base[:len(base)-1]
	}
	return base
}

func nounLemma(w string) string {
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "ses"), strings.HasSuffix(w, "xes"),
		strings.HasSuffix(w, "zes"), strings.HasSuffix(w, "ches"),
		strings.HasSuffix(w, "shes"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") &&
		!strings.HasSuffix(w, "us") && !strings.HasSuffix(w, "is") && len(w) > 3:
		return w[:len(w)-1]
	}
	return ""
}

// Stopwords is the default English stopword set used by search indexing
// and feature extraction.
var Stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true,
	"but": true, "of": true, "to": true, "in": true, "on": true,
	"at": true, "by": true, "for": true, "with": true, "from": true,
	"is": true, "are": true, "was": true, "were": true, "be": true,
	"been": true, "it": true, "its": true, "this": true, "that": true,
	"these": true, "those": true, "as": true, "which": true, "we": true,
	"they": true, "their": true, "has": true, "have": true, "had": true,
	"will": true, "would": true, "can": true, "could": true, "may": true,
	"not": true, "no": true, "also": true, "such": true, "than": true,
	"then": true, "there": true, "into": true, "over": true, "about": true,
	"after": true, "before": true, "when": true, "while": true, "where": true,
	"who": true, "what": true, "how": true, "all": true, "any": true,
	"each": true, "other": true, "some": true, "more": true, "most": true,
	"so": true, "if": true, "via": true, "per": true, "both": true,
	"do": true, "does": true, "did": true, "s": true, "t": true,
}

// Annotate runs the full preprocessing stack on text: tokenize, tag,
// lemmatize, and compute shapes.
func Annotate(text string) []Token {
	toks := Tokenize(text)
	Tag(toks)
	Lemmatize(toks)
	Shapes(toks)
	return toks
}
