package cypher

// Unit tests for the expanded Cypher surface: variable-length patterns,
// OPTIONAL MATCH, WITH chaining, and the min/max/sum/collect aggregates.
// Each behavior is asserted on the planned engine and cross-checked
// against the legacy matcher where the shape allows it.

import (
	"fmt"
	"strings"
	"testing"

	"securitykg/internal/graph"
)

// chainStore is a 4-deep uses-chain with a side branch:
//
//	X -uses-> t1 -uses-> t2 -uses-> h1
//	X -drops-> f1
func chainStore(t *testing.T) *graph.Store {
	t.Helper()
	s := graph.New()
	x, _ := s.MergeNode("Malware", "X", nil)
	t1, _ := s.MergeNode("Tool", "t1", nil)
	t2, _ := s.MergeNode("Tool", "t2", nil)
	h1, _ := s.MergeNode("Host", "h1", nil)
	f1, _ := s.MergeNode("FileName", "f1", nil)
	for _, e := range [][2]graph.NodeID{{x, t1}, {t1, t2}, {t2, h1}} {
		if _, _, err := s.AddEdge(e[0], "uses", e[1], nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.AddEdge(x, "drops", f1, nil); err != nil {
		t.Fatal(err)
	}
	return s
}

// bothEngines runs q on the planned and legacy engines and asserts row
// multiset parity before returning the planned result.
func bothEngines(t *testing.T, s *graph.Store, q string) *Result {
	t.Helper()
	planned, err := NewEngine(s, DefaultOptions()).Run(q)
	if err != nil {
		t.Fatalf("planned %q: %v", q, err)
	}
	legacy, err := NewEngine(s, Options{UseIndexes: true, MaxRows: 100000, Legacy: true}).Run(q)
	if err != nil {
		t.Fatalf("legacy %q: %v", q, err)
	}
	if !sameMultiset(renderRows(planned), renderRows(legacy)) {
		t.Fatalf("engines disagree on %q:\nplanned: %v\nlegacy:  %v",
			q, renderRows(planned), renderRows(legacy))
	}
	return planned
}

func TestVarLengthBounds(t *testing.T) {
	s := chainStore(t)
	cases := []struct {
		q    string
		want []string
	}{
		{`match (a:Malware {name:"X"})-[:uses*1..3]->(b) return b.name order by b.name`, []string{"h1", "t1", "t2"}},
		{`match (a:Malware {name:"X"})-[:uses*2..2]->(b) return b.name`, []string{"t2"}},
		{`match (a:Malware {name:"X"})-[:uses*2]->(b) return b.name`, []string{"t2"}},
		{`match (a:Malware {name:"X"})-[:uses*..2]->(b) return b.name order by b.name`, []string{"t1", "t2"}},
		{`match (a:Malware {name:"X"})-[:uses*2..]->(b) return b.name order by b.name`, []string{"h1", "t2"}},
		{`match (a:Malware {name:"X"})-[:uses*]->(b) return b.name order by b.name`, []string{"h1", "t1", "t2"}},
		{`match (a:Malware {name:"X"})-[:uses*0..1]->(b) return b.name order by b.name`, []string{"X", "t1"}},
		// Label/type constraints on the target filter the reachable set.
		{`match (a:Malware {name:"X"})-[:uses*1..3]->(b:Host) return b.name`, []string{"h1"}},
		// Typed traversal only follows the named relationship.
		{`match (a:Malware {name:"X"})-[:drops*1..3]->(b) return b.name`, []string{"f1"}},
	}
	for _, c := range cases {
		res := bothEngines(t, s, c.q)
		var got []string
		for _, r := range res.Rows {
			got = append(got, r[0].Str)
		}
		if !sameMultiset(got, c.want) {
			t.Errorf("%s: got %v, want %v", c.q, got, c.want)
		}
	}
}

func TestVarLengthDirections(t *testing.T) {
	s := chainStore(t)
	// Reverse arrow walks edges backwards from the anchor.
	res := bothEngines(t, s, `match (h:Host {name:"h1"})<-[:uses*1..3]-(b) return b.name order by b.name`)
	var got []string
	for _, r := range res.Rows {
		got = append(got, r[0].Str)
	}
	if !sameMultiset(got, []string{"X", "t1", "t2"}) {
		t.Errorf("reverse var-length: %v", got)
	}
	// Undirected traversal reaches everything connected within range.
	res = bothEngines(t, s, `match (m {name:"t1"})-[:uses*1..1]-(b) return b.name order by b.name`)
	got = nil
	for _, r := range res.Rows {
		got = append(got, r[0].Str)
	}
	if !sameMultiset(got, []string{"X", "t2"}) {
		t.Errorf("undirected var-length: %v", got)
	}
}

func TestVarLengthReachabilitySemantics(t *testing.T) {
	// Diamond: two paths of length 2 to the same node — reachability
	// semantics bind the endpoint once, not once per path.
	s := graph.New()
	a, _ := s.MergeNode("T", "a", nil)
	b, _ := s.MergeNode("T", "b", nil)
	c, _ := s.MergeNode("T", "c", nil)
	d, _ := s.MergeNode("T", "d", nil)
	s.AddEdge(a, "E", b, nil)
	s.AddEdge(a, "E", c, nil)
	s.AddEdge(b, "E", d, nil)
	s.AddEdge(c, "E", d, nil)
	res := bothEngines(t, s, `match (x {name:"a"})-[:E*1..2]->(y {name:"d"}) return y.name`)
	if len(res.Rows) != 1 {
		t.Errorf("diamond endpoint bound %d times, want 1 (reachability semantics)", len(res.Rows))
	}
	// A node whose shortest distance is below the minimum is excluded
	// even if a longer walk could reach it.
	res = bothEngines(t, s, `match (x {name:"a"})-[:E*2..2]->(y) return y.name`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "d" {
		t.Errorf("min-hop filter by shortest distance: %+v", res.Rows)
	}
}

func TestStarOneIsReachabilityNotEdgeMultiplicity(t *testing.T) {
	// Regression: "*1" must use var-length reachability semantics (one
	// row per distinct neighbor), not plain-edge multiplicity (one row
	// per connecting edge). With a->b and b->a, an undirected plain edge
	// pattern sees b twice; "*1" must see it once.
	s := graph.New()
	a, _ := s.MergeNode("T", "a", nil)
	b, _ := s.MergeNode("T", "b", nil)
	s.AddEdge(a, "E", b, nil)
	s.AddEdge(b, "E", a, nil)
	plain := bothEngines(t, s, `match (x {name:"a"})-[:E]-(y) return y.name`)
	if len(plain.Rows) != 2 {
		t.Errorf("plain edge rows = %d, want 2 (per-edge multiplicity)", len(plain.Rows))
	}
	star1 := bothEngines(t, s, `match (x {name:"a"})-[:E*1]-(y) return y.name`)
	if len(star1.Rows) != 1 || star1.Rows[0][0].Str != "b" {
		t.Errorf("*1 rows = %+v, want single b (reachability semantics)", star1.Rows)
	}
	// And "*1" appears as a VarExpand in the plan, not an Expand.
	plan, err := NewEngine(s, DefaultOptions()).Explain(`match (x {name:"a"})-[:E*1]-(y) return y.name`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "VarExpand") || !strings.Contains(plan, "[:E*1]") {
		t.Errorf("*1 plan:\n%s", plan)
	}
}

func TestVarLengthOnCycle(t *testing.T) {
	// BFS with a visited set terminates on cycles even unbounded.
	s := graph.New()
	a, _ := s.MergeNode("T", "a", nil)
	b, _ := s.MergeNode("T", "b", nil)
	s.AddEdge(a, "E", b, nil)
	s.AddEdge(b, "E", a, nil)
	res := bothEngines(t, s, `match (x {name:"a"})-[:E*]->(y) return y.name`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "b" {
		t.Errorf("cycle traversal: %+v (start node is distance 0, excluded)", res.Rows)
	}
}

func TestOptionalMatchNullPadding(t *testing.T) {
	s := chainStore(t)
	// t2 uses h1; h1 uses nothing — its row survives with a null.
	res := bothEngines(t, s, `match (a:Tool) optional match (a)-[:uses]->(b:Tool) return a.name, b.name order by a.name`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	if res.Rows[0][0].Str != "t1" || res.Rows[0][1].Str != "t2" {
		t.Errorf("matched optional row: %+v", res.Rows[0])
	}
	if res.Rows[1][0].Str != "t2" || res.Rows[1][1].Kind != KindNull {
		t.Errorf("null-padded row: %+v", res.Rows[1])
	}
}

func TestOptionalMatchWhereIsPartOfMatching(t *testing.T) {
	s := chainStore(t)
	// The optional WHERE filters inside the optional match: failing it
	// null-pads instead of dropping the row.
	res := bothEngines(t, s,
		`match (a:Malware) optional match (a)-[:uses]->(b) where b.name = "nope" return a.name, b.name`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "X" || res.Rows[0][1].Kind != KindNull {
		t.Fatalf("optional where: %+v", res.Rows)
	}
}

func TestChainedOptionalMatches(t *testing.T) {
	s := chainStore(t)
	// Second optional anchors on a var the first may have left null.
	res := bothEngines(t, s,
		`match (h:Host) optional match (h)-[:uses]->(x) optional match (x)-[:uses]->(y) return h.name, x.name, y.name`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	row := res.Rows[0]
	if row[0].Str != "h1" || row[1].Kind != KindNull || row[2].Kind != KindNull {
		t.Errorf("chained optional nulls: %+v", row)
	}
}

func TestOptionalMatchVarLength(t *testing.T) {
	s := chainStore(t)
	res := bothEngines(t, s,
		`match (n) optional match (n)-[:uses*2..3]->(far) return n.name, far.name order by n.name`)
	// Every node keeps at least one row; X reaches t2 and h1 two+ hops out.
	byName := map[string][]string{}
	for _, r := range res.Rows {
		v := "null"
		if r[1].Kind != KindNull {
			v = r[1].Str
		}
		byName[r[0].Str] = append(byName[r[0].Str], v)
	}
	if !sameMultiset(byName["X"], []string{"t2", "h1"}) {
		t.Errorf("X far targets: %v", byName["X"])
	}
	if !sameMultiset(byName["h1"], []string{"null"}) {
		t.Errorf("h1 should null-pad: %v", byName["h1"])
	}
}

func TestWithChaining(t *testing.T) {
	s := chainStore(t)
	// WITH renames and filters mid-pipeline; the second MATCH anchors on
	// the carried variable.
	res := bothEngines(t, s,
		`match (a:Malware)-[:uses]->(b) with b as tool match (tool)-[:uses]->(c) return tool.name, c.name`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "t1" || res.Rows[0][1].Str != "t2" {
		t.Fatalf("with chaining: %+v", res.Rows)
	}
	// WITH ... WHERE filters projected values.
	res = bothEngines(t, s,
		`match (n:Tool) with n.name as nm where nm <> "t1" return nm`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "t2" {
		t.Fatalf("with where: %+v", res.Rows)
	}
	// WITH DISTINCT collapses duplicates before the next stage.
	res = bothEngines(t, s,
		`match (n)-[]->(m) with distinct m.type as ty return ty order by ty`)
	if len(res.Rows) != 3 {
		t.Fatalf("with distinct: %+v", res.Rows)
	}
	// Double WITH chains.
	res = bothEngines(t, s,
		`match (n:Tool) with n.name as nm with nm where nm starts with "t" return nm order by nm`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "t1" {
		t.Fatalf("double with: %+v", res.Rows)
	}
}

func TestWithAggregationThenMatch(t *testing.T) {
	s := chainStore(t)
	// Aggregate in WITH, filter on the aggregate, keep matching.
	res := bothEngines(t, s,
		`match (a)-[:uses]->(b) with a, count(b) as fanout where fanout >= 1 match (a)-[:drops]->(f) return a.name, fanout, f.name`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	row := res.Rows[0]
	if row[0].Str != "X" || row[1].Num != 1 || row[2].Str != "f1" {
		t.Errorf("aggregated with: %+v", row)
	}
}

func TestNewAggregates(t *testing.T) {
	s := graph.New()
	a, _ := s.MergeNode("Actor", "apt", nil)
	for i := 1; i <= 3; i++ {
		tl, _ := s.MergeNode("Tool", fmt.Sprintf("t%d", i), nil)
		s.AddEdge(a, "USE", tl, nil)
	}
	res := bothEngines(t, s,
		`match (a:Actor)-[:USE]->(t) return a.name, min(t.name), max(t.name), sum(id(t)), collect(t.name), count(t)`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	row := res.Rows[0]
	if row[1].Str != "t1" || row[2].Str != "t3" {
		t.Errorf("min/max: %+v", row)
	}
	if row[3].Kind != KindNumber || row[3].Num == 0 {
		t.Errorf("sum: %+v", row[3])
	}
	if row[4].Kind != KindList || len(row[4].List) != 3 || row[4].String() != "[t1, t2, t3]" {
		t.Errorf("collect: %+v", row[4])
	}
	if row[5].Num != 3 {
		t.Errorf("count: %+v", row[5])
	}
}

func TestAggregatesSkipNulls(t *testing.T) {
	s := chainStore(t)
	// h1 has no outgoing uses: the optional null must not enter the
	// aggregates; collect of nothing is the empty list, min of nothing
	// is null, count of nothing is 0.
	res := bothEngines(t, s,
		`match (n {name:"h1"}) optional match (n)-[:uses]->(m) return n.name, count(m), min(m.name), collect(m.name)`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	row := res.Rows[0]
	if row[1].Num != 0 || row[2].Kind != KindNull || row[3].Kind != KindList || len(row[3].List) != 0 {
		t.Errorf("null handling: %+v", row)
	}
}

func TestSumOverNonNumericErrors(t *testing.T) {
	s := chainStore(t)
	q := `match (n:Tool) return sum(n.name)`
	for _, legacy := range []bool{false, true} {
		_, err := NewEngine(s, Options{UseIndexes: true, Legacy: legacy}).Run(q)
		if err == nil || !strings.Contains(err.Error(), "sum()") {
			t.Errorf("legacy=%v: want sum() type error, got %v", legacy, err)
		}
	}
}

func TestAggregateExactUnderMaxRows(t *testing.T) {
	// Aggregates fold the full stream regardless of MaxRows (which caps
	// output rows, not consumption): counts are exact and never flagged
	// Truncated — also through a WITH bridge. The old engine silently
	// stopped consuming at MaxRows*4+1000; the byte budget made that an
	// explicit error path instead (see TestAggregateBudgetBoundsEnumeration).
	s := graph.New()
	n := 1005
	for i := 0; i < n; i++ {
		s.MergeNode("T", fmt.Sprintf("n%d", i), nil)
	}
	for _, q := range []string{
		`match (n) return count(*)`,
		`match (n) with count(*) as c return c`,
	} {
		res, err := NewEngine(s, Options{UseIndexes: true, MaxRows: 1}).Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Num != float64(n) || res.Truncated {
			t.Errorf("%s: count=%v truncated=%v, want %d/false", q, res.Rows[0][0].Num, res.Truncated, n)
		}
	}
}

func TestOptionalWithCollectHuntQuery(t *testing.T) {
	// The acceptance-criteria shape: OPTIONAL MATCH + WITH + collect.
	s := chainStore(t)
	res := bothEngines(t, s, `match (m:Malware {name:"X"})
		optional match (m)-[:uses*1..3]->(asset)
		with m, collect(asset.name) as reachable
		return m.name, reachable`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	if res.Rows[0][1].String() != "[h1, t1, t2]" {
		t.Errorf("reachable set: %s", res.Rows[0][1])
	}
}

func TestNewSurfaceParseErrors(t *testing.T) {
	bad := []string{
		`match (a)-[r:T*1..3]->(b) return a`,        // var-length cannot bind
		`match (a)-[:T*3..1]->(b) return a`,         // empty range
		`match (a)-[:T*1.5]->(b) return a`,          // fractional hops
		`match (n) return min(*)`,                   // star only for count
		`match (n) with return n`,                   // WITH needs items
		`optional match (n) return n limit x`,       // bad limit
		`match (n) with n order by n.name return n`, // ORDER BY only on RETURN
		`match (n) return n with n`,                 // WITH after RETURN
	}
	s := graph.New()
	eng := NewEngine(s, DefaultOptions())
	for _, q := range bad {
		if _, err := eng.Run(q); err == nil {
			t.Errorf("query %q should fail to parse/run", q)
		}
	}
	good := []string{
		`match (a)-[:T*]->(b) return a`,
		`match (a)-[:T*..]->(b) return a`, // "*.." = unbounded, same as "*"
		`match (a)-[*2]->(b) return a`,
		`match (a)-[:T*0..]->(b) return a`,
		`optional match (n) return n`,
		`match (n) with n, n.name as x where x = "q" return x`,
	}
	for _, q := range good {
		if _, err := Parse(q); err != nil {
			t.Errorf("query %q should parse: %v", q, err)
		}
	}
}

func TestQueryStartingWithOptionalMatch(t *testing.T) {
	s := graph.New()
	res := bothEngines(t, s, `optional match (n:Nothing) return n.name`)
	if len(res.Rows) != 1 || res.Rows[0][0].Kind != KindNull {
		t.Errorf("leading optional on empty store: %+v", res.Rows)
	}
}

func TestExplainNewOperators(t *testing.T) {
	s := chainStore(t)
	plan, err := NewEngine(s, DefaultOptions()).Explain(`match (m:Malware {name:"X"})-[:uses*1..3]->(b)
		optional match (b)-[:uses]->(c)
		with b, count(c) as deps where deps >= 0
		return b.name, deps order by b.name limit 5`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"VarExpand", "[:uses*1..3]", "Optional [introduces c", "With (aggregating)",
		"where deps >= 0", "Sort b.name", "Limit 5",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("explain output missing %q:\n%s", want, plan)
		}
	}
}
