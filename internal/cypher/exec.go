package cypher

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"securitykg/internal/graph"
)

// Options tune query execution.
type Options struct {
	// UseIndexes enables index-based candidate selection (name, label and
	// exact-property lookups). Disabling it forces full scans — exposed so
	// the E11 ablation can measure the index's effect.
	UseIndexes bool
	// MaxRows caps materialized result size as a safety valve
	// (0 = unlimited): Engine.Query and Stmt.Query drop rows past the cap
	// and set Result.Truncated. Streaming cursors ignore it.
	//
	// Deprecated: MaxRows predates the byte budget and is honored only
	// for compatibility. Bound queries with MaxBytes (which fails loudly
	// instead of silently truncating) and explicit LIMITs.
	MaxRows int
	// MaxBytes is the per-query byte budget (0 = unlimited). Every row
	// the executor streams or materializes — including rows consumed by
	// aggregation or dropped by DISTINCT — is charged against it, and a
	// query that exceeds the budget aborts with a *BudgetError instead
	// of returning silently truncated results.
	MaxBytes int64
	// Legacy selects the pre-planner tree-walking matcher. It exists for
	// differential testing and planner-vs-legacy benchmarks; the planned
	// streaming pipeline is the default.
	Legacy bool
	// ReadOnly rejects statements with writing clauses (CREATE, MERGE,
	// SET, DELETE) at execution time. EXPLAIN of a write statement is
	// still allowed — it never executes.
	ReadOnly bool
	// ScanWorkers caps the partitions of a parallel full scan (0 = one
	// per available CPU, capped at 8; 1 forces sequential scans). Results
	// are merged in ID order either way, so the setting never changes
	// query output — only how many cores a large scan occupies. The
	// partitions retain accepted node IDs only (no node copies), so
	// memory and budget behavior match the sequential scan.
	ScanWorkers int
}

// DefaultOptions enables indexes with a 100k row cap and a 64 MiB
// per-query byte budget.
func DefaultOptions() Options {
	return Options{UseIndexes: true, MaxRows: 100000, MaxBytes: 64 << 20}
}

// Engine executes parsed queries against a graph store. Engines are
// cheap: the compiled-plan cache lives on the store (cache.go), so every
// engine over one store shares it.
//
// Every statement executes against a consistent view of the store
// (tx.go): reads pin an MVCC snapshot for the cursor's lifetime, writes
// run inside an implicit store transaction committed when the cursor
// closes (rolled back wholesale on any error — statements are atomic).
// Engine.Begin opens an explicit multi-statement transaction.
type Engine struct {
	store *graph.Store
	// view is the read surface every match stage and expression reads
	// through: the bare store on an unscoped engine, a pinned Snap (read
	// statements) or graph.Tx (write statements, explicit transactions)
	// on the per-scope engine copies beginScope makes.
	view graph.View
	// w is the write surface (tx.go): the bare store on an unscoped
	// engine, the scope's graph.Tx inside a write scope. Its Latest*
	// reads see the writer's own uncommitted state — the write path must
	// act on latest state, not the pinned snapshot (a MERGE must augment
	// the node as it now is).
	w     graphWriter
	opts  Options
	cache *planCache
	// pinned marks an engine scoped to an explicit transaction
	// (Engine.Begin): beginScope passes statements through to the
	// transaction's view instead of opening per-statement scopes.
	pinned bool
	// failTx, set on explicit-transaction engines, aborts the owning
	// transaction: a failed statement rolls the whole transaction back.
	failTx func(error)
}

// NewEngine builds an engine over the store.
func NewEngine(s *graph.Store, opts Options) *Engine {
	return &Engine{store: s, view: s, w: s, opts: opts, cache: cacheFor(s)}
}

// scanWorkers resolves the partition count a parallel scan may use.
func (e *Engine) scanWorkers() int {
	if e.opts.ScanWorkers > 0 {
		return e.opts.ScanWorkers
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// Result is a rectangular query result.
type Result struct {
	Columns []string
	Rows    [][]Value
	// Truncated reports that rows were dropped by the MaxRows safety
	// valve (never by an explicit LIMIT).
	Truncated bool
	// Writes summarizes what a write statement changed (nil for
	// read-only statements). A write-only statement (no RETURN) yields
	// zero columns and rows; the counts are its result.
	Writes *WriteStats
	// BudgetUsed is the bytes charged against the statement's MaxBytes
	// budget (0 when the budget is unlimited) — the slow-query log's
	// measure of how much the statement enumerated.
	BudgetUsed int64
}

// params are the bound $parameter values for one execution, stored as
// parallel slices: binding sets are tiny (a handful of names), so a
// linear scan beats a map's per-bucket allocation on the hot path —
// prepared-statement workloads bind params on every execution.
type params struct {
	names []string
	vals  []Value
}

// get resolves one $parameter by name.
func (p params) get(name string) (Value, bool) {
	for i, n := range p.names {
		if n == name {
			return p.vals[i], true
		}
	}
	return Value{}, false
}

// bindParams converts the caller's arguments and validates that every
// $parameter the statement references is bound. Extra arguments are
// allowed (a shell can keep one binding set for many statements).
func bindParams(names []string, args map[string]any) (params, error) {
	var ps params
	if len(args) > 0 {
		ps.names = make([]string, 0, len(args))
		ps.vals = make([]Value, 0, len(args))
		for k, v := range args {
			val, err := ToValue(v)
			if err != nil {
				return ps, fmt.Errorf("cypher: parameter $%s: %w", k, err)
			}
			ps.names = append(ps.names, k)
			ps.vals = append(ps.vals, val)
		}
	}
	for _, n := range names {
		if _, ok := ps.get(n); !ok {
			return ps, fmt.Errorf("cypher: missing parameter $%s", n)
		}
	}
	return ps, nil
}

// Run parses and executes a statement with no parameters. Kept as the
// zero-ceremony entry point; parameterized callers use Query/QueryRows.
func (e *Engine) Run(src string) (*Result, error) { return e.Query(src, nil) }

// Query executes a statement with the given parameter bindings and
// materializes the full result — a thin wrapper over QueryRows that
// preserves the MaxRows safety valve and Result.Truncated semantics.
// Repeated statements (same text; parameters do not change the text)
// reuse the store-shared cached plan, skipping parse and planning.
func (e *Engine) Query(src string, args map[string]any) (*Result, error) {
	if e.opts.Legacy {
		q, err := Parse(src)
		if err != nil {
			return nil, err
		}
		if q.TxOp != TxNone {
			return nil, errTxControl
		}
		if q.Explain {
			if q.Analyze {
				// EXPLAIN ANALYZE executes (through the streaming pipeline,
				// which is the plan being profiled), so it needs bindings.
				ps, err := bindParams(q.Params, args)
				if err != nil {
					return nil, err
				}
				return e.runPlanned(q, ps)
			}
			// EXPLAIN never executes, so it needs no bindings.
			return e.runPlanned(q, params{})
		}
		ps, err := bindParams(q.Params, args)
		if err != nil {
			return nil, err
		}
		return e.runLegacy(q, ps)
	}
	rows, err := e.QueryRows(src, args)
	if err != nil {
		return nil, err
	}
	return materialize(rows, e.opts.MaxRows)
}

// QueryRows executes a statement and returns an incremental cursor: the
// first row is available without materializing the match set, and
// closing the cursor early stops all upstream matching. The legacy
// engine has no streaming pipeline, so it materializes first and the
// cursor merely iterates the buffer.
func (e *Engine) QueryRows(src string, args map[string]any) (*Rows, error) {
	if e.opts.Legacy {
		res, err := e.Query(src, args)
		if err != nil {
			return nil, err
		}
		return rowsFromResult(res), nil
	}
	if pl := e.cachedPlan(src); pl != nil {
		ps, err := bindParams(pl.Params, args)
		if err != nil {
			return nil, err
		}
		return e.rowsForPlan(pl, ps)
	}
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if q.TxOp != TxNone {
		return nil, errTxControl
	}
	pl, err := e.planQuery(q)
	if err != nil {
		return nil, err
	}
	if q.Explain {
		if q.Analyze {
			// EXPLAIN ANALYZE executes fully (writes included), then
			// returns the annotated plan lines as the result rows.
			ps, err := bindParams(q.Params, args)
			if err != nil {
				return nil, err
			}
			res, err := e.analyzeResult(pl, ps)
			if err != nil {
				return nil, err
			}
			return rowsFromResult(res), nil
		}
		// EXPLAIN renders the plan without executing: no bindings needed.
		return rowsFromResult(explainResult(pl)), nil
	}
	ps, err := bindParams(q.Params, args)
	if err != nil {
		return nil, err
	}
	e.storePlan(src, pl)
	return e.rowsForPlan(pl, ps)
}

// Explain parses src and renders the plan the streaming engine would run,
// without executing it.
func (e *Engine) Explain(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	pl, err := e.planQuery(q)
	if err != nil {
		return "", err
	}
	return pl.String(), nil
}

// binding maps pattern variables to runtime values during matching.
type binding map[string]Value

func (b binding) clone() binding {
	c := make(binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// RunQuery executes a parsed query through the planned streaming
// pipeline (planner.go + iter.go), or through the legacy tree-walking
// matcher when Options.Legacy is set. EXPLAIN always reports the
// streaming plan. Queries with $parameters need bindings — use
// Query/QueryRows/Prepare instead.
func (e *Engine) RunQuery(q *Query) (*Result, error) {
	if q.TxOp != TxNone {
		return nil, errTxControl
	}
	if len(q.Parts) == 0 {
		return nil, fmt.Errorf("cypher: empty query")
	}
	if fin := &q.Parts[len(q.Parts)-1]; len(fin.Items) == 0 && !fin.HasWrites() {
		return nil, fmt.Errorf("cypher: empty RETURN")
	}
	if q.Explain && !q.Analyze {
		return e.runPlanned(q, params{})
	}
	ps, err := bindParams(q.Params, nil)
	if err != nil {
		return nil, err
	}
	if e.opts.Legacy && !q.Explain {
		return e.runLegacy(q, ps)
	}
	return e.runPlanned(q, ps)
}

// runLegacy is the original recursive matcher, extended with the same
// dialect as the streaming engine (variable-length BFS, OPTIONAL MATCH
// null-padding, WITH segment chaining): it materializes every complete
// match of a segment before projecting it into the next. Each
// materialized binding is charged against the byte budget, so an
// over-budget query fails with *BudgetError instead of being silently
// truncated (the old MaxRows*4+1000 match cap). Kept as the
// differential baseline the property tests and benchmarks compare the
// streaming executor against.
func (e *Engine) runLegacy(q *Query, ps params) (*Result, error) {
	if q.HasWrites() && e.opts.ReadOnly {
		return nil, ErrReadOnly
	}
	batch := false
	for pi := range q.Parts {
		if q.Parts[pi].Unwind != nil && q.Parts[pi].HasWrites() {
			batch = true
		}
	}
	ex, finish, err := e.beginScope(q.HasWrites(), batch)
	if err != nil {
		return nil, err
	}
	res, err := ex.runLegacyScoped(q, ps)
	// finish commits (or, on error, rolls back) the statement's implicit
	// transaction / releases its snapshot; a commit failure loses the
	// result — the mutations did not land.
	if err := finish(err); err != nil {
		return nil, err
	}
	return res, nil
}

// runLegacyScoped is runLegacy's body, running on the per-statement
// scoped engine.
func (e *Engine) runLegacyScoped(q *Query, ps params) (*Result, error) {
	bud := newBudget(e.opts.MaxBytes)
	var stats *WriteStats
	if q.HasWrites() {
		stats = &WriteStats{}
	}
	bindings := []binding{{}}
	for pi := range q.Parts {
		part := &q.Parts[pi]
		var err error
		if part.Unwind != nil {
			bindings, err = e.legacyUnwind(part.Unwind, bindings, ps, bud)
			if err != nil {
				return nil, err
			}
		}
		bindings, err = e.legacyMatchPart(part, bindings, ps, bud)
		if err != nil {
			return nil, err
		}
		// Writes run after the part's reads have fully materialized —
		// the same eager barrier the planned MutationStage provides.
		if wc := writeClausesOf(part); wc != nil {
			for _, b := range bindings {
				if err := e.applyWrites(wc, b, ps, stats); err != nil {
					return nil, err
				}
			}
		}
		if pi == len(q.Parts)-1 {
			return e.legacyFinal(part, bindings, ps, bud, stats)
		}
		bindings, err = e.legacyWith(part, bindings, ps, bud)
		if err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("cypher: query has no RETURN part")
}

// ErrReadOnly is the uniform rejection both engines return for write
// statements on a ReadOnly engine. Exported so callers can recognize it
// with errors.Is — a replica server turns it into a leader redirect.
var ErrReadOnly = fmt.Errorf("cypher: write clauses (CREATE/MERGE/SET/DELETE) are disabled on this read-only engine")

// legacyUnwind expands each input binding into one clone per element of
// the UNWIND expression's list, with the element bound to the alias —
// the same semantics as the streaming unwindIter (null unwinds to zero
// rows, a non-list value to one).
func (e *Engine) legacyUnwind(uc *UnwindClause, in []binding, ps params, bud *byteBudget) ([]binding, error) {
	var out []binding
	for _, b := range in {
		v, err := evalExpr(uc.Expr, b, ps)
		if err != nil {
			return nil, err
		}
		var elems []Value
		switch v.Kind {
		case KindNull:
			continue
		case KindList:
			elems = v.List
		default:
			elems = []Value{v}
		}
		for _, el := range elems {
			b2 := b.clone()
			b2[uc.Alias] = el
			if err := bud.charge(bindingBytes(b2)); err != nil {
				return nil, err
			}
			out = append(out, b2)
		}
	}
	return out, nil
}

// legacyMatchPart enumerates the bindings for one part's reading
// clauses, processing the same clause runs the planner emits
// (requiredRuns is shared, so grouping cannot drift): required runs
// join, OPTIONAL MATCH null-pads.
func (e *Engine) legacyMatchPart(part *QueryPart, in []binding, ps params, bud *byteBudget) ([]binding, error) {
	out := in
	for _, run := range requiredRuns(part.Matches) {
		if run.optional != nil {
			var err error
			out, err = e.legacyOptional(*run.optional, out, ps, bud)
			if err != nil {
				return nil, err
			}
			continue
		}
		hints := extractEqualityHints(run.where)
		var next []binding
		var matchErr error
		for _, b := range out {
			e.matchPatterns(run.pats, 0, b, hints, ps, func(b2 binding) bool {
				if run.where != nil {
					v, err := evalExpr(run.where, b2, ps)
					if err != nil {
						matchErr = err
						return false
					}
					if !v.Truthy() {
						return true
					}
				}
				if err := bud.charge(bindingBytes(b2)); err != nil {
					matchErr = err
					return false
				}
				next = append(next, b2.clone())
				return true
			})
			if matchErr != nil {
				return nil, matchErr
			}
		}
		out = next
	}
	return out, nil
}

// legacyOptional extends each input binding with every match of the
// optional clause, or with a single null-padded copy when none exists.
func (e *Engine) legacyOptional(mc MatchClause, in []binding, ps params, bud *byteBudget) ([]binding, error) {
	hints := extractEqualityHints(mc.Where)
	optVars := map[string]bool{}
	for _, p := range mc.Patterns {
		for _, np := range p.Nodes {
			if np.Var != "" {
				optVars[np.Var] = true
			}
		}
		for _, ep := range p.Edges {
			if ep.Var != "" {
				optVars[ep.Var] = true
			}
		}
	}
	var out []binding
	var matchErr error
	for _, b := range in {
		found := false
		e.matchPatterns(mc.Patterns, 0, b, hints, ps, func(b2 binding) bool {
			if mc.Where != nil {
				v, err := evalExpr(mc.Where, b2, ps)
				if err != nil {
					matchErr = err
					return false
				}
				if !v.Truthy() {
					return true
				}
			}
			found = true
			if err := bud.charge(bindingBytes(b2)); err != nil {
				matchErr = err
				return false
			}
			out = append(out, b2.clone())
			return true
		})
		if matchErr != nil {
			return nil, matchErr
		}
		if !found {
			b2 := b.clone()
			for v := range optVars {
				if _, bound := b2[v]; !bound {
					b2[v] = NullValue()
				}
			}
			if err := bud.charge(bindingBytes(b2)); err != nil {
				return nil, err
			}
			out = append(out, b2)
		}
	}
	return out, nil
}

// legacyWith projects a part's bindings through its WITH items into
// fresh bindings for the next part, applying DISTINCT and the post-WITH
// WHERE filter.
func (e *Engine) legacyWith(part *QueryPart, matches []binding, ps params, bud *byteBudget) ([]binding, error) {
	hasAgg := false
	for _, it := range part.Items {
		if isAggregate(it.Expr) {
			hasAgg = true
		}
	}
	var rows [][]Value
	if hasAgg {
		res := &Result{}
		if err := aggregateRows(part.Items, res, pullFromSlice(matches), ps); err != nil {
			return nil, err
		}
		rows = res.Rows
	} else {
		for _, b := range matches {
			row, err := projectRow(part.Items, b, ps)
			if err != nil {
				return nil, err
			}
			if err := bud.charge(rowBytes(row)); err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		if part.Distinct {
			rows = distinctRows(rows)
		}
	}
	var out []binding
	for _, row := range rows {
		nb := make(binding, len(part.Items))
		for i, it := range part.Items {
			nb[it.Alias] = row[i]
		}
		if part.Where != nil {
			v, err := evalExpr(part.Where, nb, ps)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		out = append(out, nb)
	}
	return out, nil
}

// legacyFinal projects, aggregates, sorts and pages the final part.
func (e *Engine) legacyFinal(part *QueryPart, matches []binding, ps params, bud *byteBudget, stats *WriteStats) (*Result, error) {
	res := &Result{Writes: stats}
	if len(part.Items) == 0 {
		// Write-only statement: the counts are the result.
		return res, nil
	}
	hasAgg := false
	for _, it := range part.Items {
		res.Columns = append(res.Columns, it.Alias)
		if isAggregate(it.Expr) {
			hasAgg = true
		}
	}
	op, err := resolveOrderKeys(part.OrderBy, part.Items, part.Distinct, hasAgg)
	if err != nil {
		return nil, err
	}
	if hasAgg {
		if err := aggregateRows(part.Items, res, pullFromSlice(matches), ps); err != nil {
			return nil, err
		}
	} else {
		for _, b := range matches {
			row, err := projectRow(part.Items, b, ps)
			if err != nil {
				return nil, err
			}
			row, err = appendHiddenKeys(row, op, b, ps)
			if err != nil {
				return nil, err
			}
			if err := bud.charge(rowBytes(row)); err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
		if part.Distinct {
			res.Rows = distinctRows(res.Rows)
		}
	}
	finishRows(part.OrderBy, part.Skip, part.Limit, res, op, e.opts.MaxRows)
	return res, nil
}

// --- pattern matching ---

// equality hints pushed down from WHERE: var -> prop -> literal or
// $parameter string value (hintVal).
func extractEqualityHints(w Expr) map[string]map[string]hintVal {
	var conjs []Expr
	splitConjuncts(w, &conjs)
	return equalityHints(conjs)
}

func (e *Engine) matchPatterns(pats []Pattern, idx int, b binding,
	hints map[string]map[string]hintVal, ps params, emit func(binding) bool) bool {
	if idx >= len(pats) {
		return emit(b)
	}
	return e.matchChain(pats[idx], 0, b, hints, ps, func(b2 binding) bool {
		return e.matchPatterns(pats, idx+1, b2, hints, ps, emit)
	})
}

// matchChain matches pattern node i and then recursively its outgoing
// edge pattern chain, calling emit for every complete assignment. The
// return value follows the emit protocol: false stops the search.
func (e *Engine) matchChain(p Pattern, i int, b binding,
	hints map[string]map[string]hintVal, ps params, emit func(binding) bool) bool {
	np := p.Nodes[i]

	tryNode := func(n *graph.Node) bool {
		if !nodeMatches(np, n, ps) {
			return true // skip, continue search
		}
		b2 := b
		if np.Var != "" {
			if prev, bound := b[np.Var]; bound {
				if prev.Kind != KindNode || prev.Node.ID != n.ID {
					return true
				}
			} else {
				b2 = b.clone()
				b2[np.Var] = NodeValue(n)
			}
		}
		if i == len(p.Nodes)-1 {
			return emit(b2)
		}
		return e.matchEdge(p, i, n, b2, hints, ps, emit)
	}

	// If the variable is already bound, only that node is a candidate.
	if np.Var != "" {
		if prev, bound := b[np.Var]; bound {
			if prev.Kind != KindNode {
				return true
			}
			return tryNode(prev.Node)
		}
	}
	cont := true
	for _, n := range e.candidates(np, hints, ps) {
		if !tryNode(n) {
			cont = false
			break
		}
	}
	return cont
}

func (e *Engine) matchEdge(p Pattern, i int, from *graph.Node, b binding,
	hints map[string]map[string]hintVal, ps params, emit func(binding) bool) bool {
	ep := p.Edges[i]
	if ep.VarLength() {
		return e.matchVarEdge(p, i, from, b, hints, ps, emit)
	}
	dirs := []graph.Direction{}
	switch ep.Dir {
	case DirRight:
		dirs = append(dirs, graph.Out)
	case DirLeft:
		dirs = append(dirs, graph.In)
	case DirAny:
		dirs = append(dirs, graph.Out, graph.In)
	}
	for _, d := range dirs {
		for _, ed := range e.view.Edges(from.ID, d) {
			if ep.Type != "" && ed.Type != ep.Type {
				continue
			}
			otherID := ed.To
			if d == graph.In {
				otherID = ed.From
			}
			other := e.view.Node(otherID)
			if other == nil {
				continue
			}
			b2 := b
			if ep.Var != "" {
				if prev, bound := b[ep.Var]; bound {
					if prev.Kind != KindEdge || prev.Edge.ID != ed.ID {
						continue
					}
				} else {
					b2 = b.clone()
					b2[ep.Var] = EdgeValue(ed)
				}
			}
			np := p.Nodes[i+1]
			if !nodeMatches(np, other, ps) {
				continue
			}
			b3 := b2
			if np.Var != "" {
				if prev, bound := b2[np.Var]; bound {
					if prev.Kind != KindNode || prev.Node.ID != other.ID {
						continue
					}
				} else {
					b3 = b2.clone()
					b3[np.Var] = NodeValue(other)
				}
			}
			if i+1 == len(p.Nodes)-1 {
				if !emit(b3) {
					return false
				}
			} else {
				if !e.matchEdge(p, i+1, other, b3, hints, ps, emit) {
					return false
				}
			}
		}
	}
	return true
}

// matchVarEdge matches a variable-length edge pattern with the same
// reachability semantics the streaming VarExpand iterator uses: the
// target binds once per distinct node whose shortest distance from the
// start lies within the hop range.
func (e *Engine) matchVarEdge(p Pattern, i int, from *graph.Node, b binding,
	hints map[string]map[string]hintVal, ps params, emit func(binding) bool) bool {
	np := p.Nodes[i+1]
	for _, id := range e.bfsTargets(from.ID, p.Edges[i], false) {
		other := e.view.Node(id)
		if other == nil || !nodeMatches(np, other, ps) {
			continue
		}
		b2 := b
		if np.Var != "" {
			if prev, bound := b[np.Var]; bound {
				if prev.Kind != KindNode || prev.Node.ID != other.ID {
					continue
				}
			} else {
				b2 = b.clone()
				b2[np.Var] = NodeValue(other)
			}
		}
		if i+1 == len(p.Nodes)-1 {
			if !emit(b2) {
				return false
			}
		} else if !e.matchEdge(p, i+1, other, b2, hints, ps, emit) {
			return false
		}
	}
	return true
}

// bfsTargets returns the IDs of the nodes whose shortest distance from
// start — along edges matching the pattern's type and direction — lies
// within [MinHops, MaxHops] (MaxHops < 0 = unbounded). Each node is
// visited at most once, so the walk terminates on any graph. Both
// engines share it, so variable-length semantics cannot drift.
func (e *Engine) bfsTargets(start graph.NodeID, ep EdgePattern, reverse bool) []graph.NodeID {
	dir := expandDir(ep.Dir, reverse)
	visited := map[graph.NodeID]bool{start: true}
	frontier := []graph.NodeID{start}
	var out []graph.NodeID
	var inc []graph.IncidentEdge
	if ep.MinHops == 0 {
		out = append(out, start)
	}
	for depth := 1; len(frontier) > 0 && (ep.MaxHops < 0 || depth <= ep.MaxHops); depth++ {
		var next []graph.NodeID
		for _, id := range frontier {
			inc = e.view.IncidentEdges(inc[:0], id, dir, ep.Type)
			for _, he := range inc {
				if visited[he.Other] {
					continue
				}
				visited[he.Other] = true
				next = append(next, he.Other)
				if depth >= ep.MinHops {
					out = append(out, he.Other)
				}
			}
		}
		frontier = next
	}
	return out
}

// candidates enumerates starting nodes for a node pattern, using indexes
// when allowed: exact (label, name) lookup, name index, label index, then
// full scan as a last resort. Parameter-valued name constraints (inline
// $param props or WHERE hints) resolve against ps before the lookup.
func (e *Engine) candidates(np NodePattern, hints map[string]map[string]hintVal, ps params) []*graph.Node {
	name, hasName := "", false
	if np.Props != nil {
		if v, ok := np.Props["name"]; ok && v.Kind == KindString {
			name, hasName = v.Str, true
		}
	}
	if !hasName && np.ParamProps != nil {
		if pn, ok := np.ParamProps["name"]; ok {
			if v, bound := ps.get(pn); bound && v.Kind == KindString {
				name, hasName = v.Str, true
			}
		}
	}
	if !hasName && np.Var != "" {
		if h, ok := hints[np.Var]; ok {
			if hv, ok := h["name"]; ok {
				if s, ok := hv.resolve(ps); ok {
					name, hasName = s, true
				}
			}
		}
	}
	if e.opts.UseIndexes {
		switch {
		case hasName && np.Label != "":
			if n := e.view.FindNode(np.Label, name); n != nil {
				return []*graph.Node{n}
			}
			return nil
		case hasName:
			return e.view.NodesByName(name)
		case np.Label != "":
			return e.view.NodesByType(np.Label)
		}
	}
	var out []*graph.Node
	e.view.ForEachNode(func(n *graph.Node) bool {
		out = append(out, n)
		return true
	})
	return out
}

// nodeMatches checks label and inline property constraints, resolving
// $parameter-valued properties against the execution's bindings.
func nodeMatches(np NodePattern, n *graph.Node, ps params) bool {
	if np.Label != "" && n.Type != np.Label {
		return false
	}
	for k, want := range np.Props {
		got := nodeProp(n, k)
		if !got.Equal(want) {
			return false
		}
	}
	for k, pn := range np.ParamProps {
		want, ok := ps.get(pn)
		if !ok {
			return false // unbound parameter: bindParams rejects this upfront
		}
		got := nodeProp(n, k)
		if !got.Equal(want) {
			return false
		}
	}
	return true
}

// --- expression evaluation ---

func nodeProp(n *graph.Node, prop string) Value {
	switch prop {
	case "name":
		return StringValue(n.Name)
	case "type", "label":
		return StringValue(n.Type)
	case "id":
		return NumberValue(float64(n.ID))
	}
	if v, ok := n.Attrs[prop]; ok {
		return StringValue(v)
	}
	return NullValue()
}

func edgeProp(ed *graph.Edge, prop string) Value {
	switch prop {
	case "type":
		return StringValue(ed.Type)
	case "id":
		return NumberValue(float64(ed.ID))
	}
	if v, ok := ed.Attrs[prop]; ok {
		return StringValue(v)
	}
	return NullValue()
}

func evalExpr(e Expr, b binding, ps params) (Value, error) {
	switch v := e.(type) {
	case LitExpr:
		return v.Val, nil
	case ParamExpr:
		if val, ok := ps.get(v.Name); ok {
			return val, nil
		}
		return NullValue(), fmt.Errorf("cypher: missing parameter $%s", v.Name)
	case ListExpr:
		elems := make([]Value, len(v.Elems))
		for i, ee := range v.Elems {
			ev, err := evalExpr(ee, b, ps)
			if err != nil {
				return NullValue(), err
			}
			elems[i] = ev
		}
		return Value{Kind: KindList, List: elems}, nil
	case VarExpr:
		if val, ok := b[v.Name]; ok {
			return val, nil
		}
		return NullValue(), fmt.Errorf("cypher: unbound variable %q", v.Name)
	case PropExpr:
		val, ok := b[v.Var]
		if !ok {
			return NullValue(), fmt.Errorf("cypher: unbound variable %q", v.Var)
		}
		switch val.Kind {
		case KindNode:
			return nodeProp(val.Node, v.Prop), nil
		case KindEdge:
			return edgeProp(val.Edge, v.Prop), nil
		case KindMap:
			// UNWIND batch rows: row.name reads the map entry (missing
			// keys are null, like absent node attributes).
			if mv, ok := val.Map[v.Prop]; ok {
				return mv, nil
			}
			return NullValue(), nil
		}
		return NullValue(), nil
	case NotExpr:
		inner, err := evalExpr(v.Inner, b, ps)
		if err != nil {
			return NullValue(), err
		}
		return BoolValue(!inner.Truthy()), nil
	case BoolExpr:
		l, err := evalExpr(v.Left, b, ps)
		if err != nil {
			return NullValue(), err
		}
		if v.Op == "and" && !l.Truthy() {
			return BoolValue(false), nil
		}
		if v.Op == "or" && l.Truthy() {
			return BoolValue(true), nil
		}
		r, err := evalExpr(v.Right, b, ps)
		if err != nil {
			return NullValue(), err
		}
		return BoolValue(r.Truthy()), nil
	case CmpExpr:
		l, err := evalExpr(v.Left, b, ps)
		if err != nil {
			return NullValue(), err
		}
		r, err := evalExpr(v.Right, b, ps)
		if err != nil {
			return NullValue(), err
		}
		switch v.Op {
		case "=":
			return BoolValue(l.Equal(r)), nil
		case "<>":
			if l.Kind == KindNull || r.Kind == KindNull {
				return BoolValue(false), nil
			}
			return BoolValue(!l.Equal(r)), nil
		case "<", ">", "<=", ">=":
			c, ok := l.Compare(r)
			if !ok {
				return BoolValue(false), nil
			}
			switch v.Op {
			case "<":
				return BoolValue(c < 0), nil
			case ">":
				return BoolValue(c > 0), nil
			case "<=":
				return BoolValue(c <= 0), nil
			default:
				return BoolValue(c >= 0), nil
			}
		case "contains":
			return BoolValue(l.Kind == KindString && r.Kind == KindString &&
				strings.Contains(l.Str, r.Str)), nil
		case "starts":
			return BoolValue(l.Kind == KindString && r.Kind == KindString &&
				strings.HasPrefix(l.Str, r.Str)), nil
		case "ends":
			return BoolValue(l.Kind == KindString && r.Kind == KindString &&
				strings.HasSuffix(l.Str, r.Str)), nil
		}
		return NullValue(), fmt.Errorf("cypher: unknown comparison %q", v.Op)
	case FuncExpr:
		switch v.Name {
		case "type":
			arg, err := evalExpr(v.Arg, b, ps)
			if err != nil {
				return NullValue(), err
			}
			if arg.Kind == KindEdge {
				return StringValue(arg.Edge.Type), nil
			}
			return NullValue(), nil
		case "id":
			arg, err := evalExpr(v.Arg, b, ps)
			if err != nil {
				return NullValue(), err
			}
			switch arg.Kind {
			case KindNode:
				return NumberValue(float64(arg.Node.ID)), nil
			case KindEdge:
				return NumberValue(float64(arg.Edge.ID)), nil
			}
			return NullValue(), nil
		case "labels":
			arg, err := evalExpr(v.Arg, b, ps)
			if err != nil {
				return NullValue(), err
			}
			if arg.Kind == KindNode {
				return StringValue(arg.Node.Type), nil
			}
			return NullValue(), nil
		case "lower", "upper":
			arg, err := evalExpr(v.Arg, b, ps)
			if err != nil {
				return NullValue(), err
			}
			if arg.Kind != KindString {
				return NullValue(), nil
			}
			if v.Name == "lower" {
				return StringValue(strings.ToLower(arg.Str)), nil
			}
			return StringValue(strings.ToUpper(arg.Str)), nil
		case "count", "min", "max", "sum", "collect":
			return NullValue(), fmt.Errorf("cypher: %s() outside RETURN/WITH", v.Name)
		}
		return NullValue(), fmt.Errorf("cypher: unknown function %q", v.Name)
	}
	return NullValue(), fmt.Errorf("cypher: unevaluable expression %T", e)
}

// isAggName reports whether name is an aggregate function.
func isAggName(name string) bool {
	switch name {
	case "count", "min", "max", "sum", "collect":
		return true
	}
	return false
}

func isAggregate(e Expr) bool {
	f, ok := e.(FuncExpr)
	return ok && isAggName(f.Name)
}

// --- projection, grouping, ordering ---

// projectRow evaluates the projection items against one binding.
func projectRow(items []ReturnItem, b binding, ps params) ([]Value, error) {
	row := make([]Value, len(items))
	for i, it := range items {
		v, err := evalExpr(it.Expr, b, ps)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// rowKey identifies a row for DISTINCT and grouping.
func rowKey(row []Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.key()
	}
	return strings.Join(parts, "\x00")
}

// aggState accumulates one aggregate column within one group.
type aggState struct {
	count    int
	sum      float64
	min, max Value   // KindNull until a value is seen
	vals     []Value // collect
}

func (a *aggState) add(name string, v Value) error {
	if v.Kind == KindNull {
		return nil
	}
	a.count++
	switch name {
	case "sum":
		if v.Kind != KindNumber {
			return fmt.Errorf("cypher: sum() over non-numeric value %s", v.String())
		}
		a.sum += v.Num
	case "min":
		if a.min.Kind == KindNull || v.totalLess(a.min) {
			a.min = v
		}
	case "max":
		if a.max.Kind == KindNull || a.max.totalLess(v) {
			a.max = v
		}
	case "collect":
		a.vals = append(a.vals, v)
	}
	return nil
}

func (a *aggState) result(name string) Value {
	switch name {
	case "count":
		return NumberValue(float64(a.count))
	case "sum":
		return NumberValue(a.sum) // sum of nothing is 0
	case "min":
		return a.min
	case "max":
		return a.max
	case "collect":
		sort.SliceStable(a.vals, func(i, j int) bool { return a.vals[i].totalLess(a.vals[j]) })
		return ListValue(a.vals)
	}
	return NullValue()
}

// pullFromSlice adapts a materialized match set to aggregateRows' pull
// protocol (nil binding = exhausted).
func pullFromSlice(matches []binding) func() (binding, error) {
	i := 0
	return func() (binding, error) {
		if i >= len(matches) {
			return nil, nil
		}
		b := matches[i]
		i++
		return b, nil
	}
}

// aggregateRows consumes bindings from pull (nil binding = exhausted),
// grouping by the non-aggregate projection items and folding the
// aggregate ones (count/min/max/sum/collect). Groups are emitted in
// first-seen order; collect() lists are canonically ordered so both
// engines agree regardless of enumeration order. The legacy path wraps
// its match slice, the streaming path wraps the iterator pipeline.
func aggregateRows(items []ReturnItem, res *Result, pull func() (binding, error), ps params) error {
	type group struct {
		keyVals []Value
		aggs    []aggState
	}
	groups := map[string]*group{}
	var order []string
	for {
		b, err := pull()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		var keyParts []string
		keyVals := make([]Value, len(items))
		for i, it := range items {
			if isAggregate(it.Expr) {
				continue
			}
			v, err := evalExpr(it.Expr, b, ps)
			if err != nil {
				return err
			}
			keyVals[i] = v
			keyParts = append(keyParts, v.key())
		}
		k := strings.Join(keyParts, "\x00")
		g, ok := groups[k]
		if !ok {
			g = &group{keyVals: keyVals, aggs: make([]aggState, len(items))}
			groups[k] = g
			order = append(order, k)
		}
		for i, it := range items {
			fe, ok := it.Expr.(FuncExpr)
			if !ok || !isAggName(fe.Name) {
				continue
			}
			if fe.Star {
				g.aggs[i].count++
				continue
			}
			v, err := evalExpr(fe.Arg, b, ps)
			if err != nil {
				return err
			}
			if err := g.aggs[i].add(fe.Name, v); err != nil {
				return err
			}
		}
	}
	for _, k := range order {
		g := groups[k]
		row := make([]Value, len(items))
		for i, it := range items {
			if fe, ok := it.Expr.(FuncExpr); ok && isAggName(fe.Name) {
				row[i] = g.aggs[i].result(fe.Name)
			} else {
				row[i] = g.keyVals[i]
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return nil
}

func distinctRows(rows [][]Value) [][]Value {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		k := rowKey(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// orderPlan is the resolved ORDER BY strategy: each key maps to a column
// index in the (visible + hidden) row. Keys naming a returned column by
// alias text sort on it directly; other expressions become hidden
// columns evaluated against the match binding and stripped after the
// sort.
type orderPlan struct {
	keyCols []int
	hidden  []Expr
}

// resolveOrderKeys maps ORDER BY keys onto returned columns or hidden
// expressions. Hidden keys are rejected under DISTINCT or aggregation,
// where the match binding is no longer in scope per output row. Returns
// nil when the query has no ORDER BY.
func resolveOrderKeys(orderBy []OrderKey, items []ReturnItem, distinct, hasAgg bool) (*orderPlan, error) {
	if len(orderBy) == 0 {
		return nil, nil
	}
	op := &orderPlan{keyCols: make([]int, len(orderBy))}
	for i, k := range orderBy {
		txt := exprText(k.Expr)
		col := -1
		for j := range items {
			if items[j].Alias == txt {
				col = j
				break
			}
		}
		if col < 0 {
			if distinct || hasAgg {
				return nil, fmt.Errorf("cypher: ORDER BY %q must reference a returned column when DISTINCT or aggregation is used", txt)
			}
			col = len(items) + len(op.hidden)
			op.hidden = append(op.hidden, k.Expr)
		}
		op.keyCols[i] = col
	}
	return op, nil
}

// appendHiddenKeys evaluates the order plan's hidden expressions against
// the binding and appends them to the row.
func appendHiddenKeys(row []Value, op *orderPlan, b binding, ps params) ([]Value, error) {
	if op == nil || len(op.hidden) == 0 {
		return row, nil
	}
	for _, hx := range op.hidden {
		v, err := evalExpr(hx, b, ps)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

// sortRows sorts rows by the resolved ORDER BY key columns.
func sortRows(orderBy []OrderKey, rows [][]Value, keyCols []int) {
	sort.SliceStable(rows, func(a, b int) bool {
		for i, col := range keyCols {
			c, ok := rows[a][col].Compare(rows[b][col])
			if !ok || c == 0 {
				continue
			}
			if orderBy[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// finishRows applies the trailing row operators shared by both engines:
// sort (stripping any hidden key columns afterwards), SKIP, LIMIT, and
// the MaxRows safety valve (which sets Truncated when it drops rows).
func finishRows(orderBy []OrderKey, skip, limit int, res *Result, op *orderPlan, maxRows int) {
	if op != nil {
		sortRows(orderBy, res.Rows, op.keyCols)
		if len(op.hidden) > 0 {
			visible := len(res.Columns)
			for i, r := range res.Rows {
				res.Rows[i] = r[:visible]
			}
		}
	}
	if skip > 0 {
		if skip >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[skip:]
		}
	}
	if limit >= 0 && len(res.Rows) > limit {
		res.Rows = res.Rows[:limit]
	}
	if maxRows > 0 && len(res.Rows) > maxRows {
		res.Rows = res.Rows[:maxRows]
		res.Truncated = true
	}
}
