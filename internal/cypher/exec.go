package cypher

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"securitykg/internal/graph"
)

// Options tune query execution.
type Options struct {
	// UseIndexes enables index-based candidate selection (name, label and
	// exact-property lookups). Disabling it forces full scans — exposed so
	// the E11 ablation can measure the index's effect.
	UseIndexes bool
	// MaxRows caps result size as a safety valve (0 = unlimited). The
	// streaming engine enforces it during matching: once the cap is hit,
	// pattern enumeration stops and Result.Truncated is set.
	MaxRows int
	// Legacy selects the pre-planner tree-walking matcher. It exists for
	// differential testing and planner-vs-legacy benchmarks; the planned
	// streaming pipeline is the default.
	Legacy bool
}

// DefaultOptions enables indexes with a 100k row cap.
func DefaultOptions() Options { return Options{UseIndexes: true, MaxRows: 100000} }

// Engine executes parsed queries against a graph store.
type Engine struct {
	store *graph.Store
	opts  Options

	mu        sync.Mutex
	planCache map[string]planEntry
}

// planEntry is a cached plan plus the store cardinalities it was costed
// against, so stale plans are re-planned once the graph has drifted.
type planEntry struct {
	pl    *Plan
	nodes int
	edges int
}

const planCacheMax = 512

// NewEngine builds an engine over the store.
func NewEngine(s *graph.Store, opts Options) *Engine {
	return &Engine{store: s, opts: opts, planCache: make(map[string]planEntry)}
}

// cachedPlan returns a previously planned pipeline for src if the store
// cardinalities have not drifted past 2× since it was costed. Cached
// plans stay correct under mutation (access paths never become invalid);
// the bound only protects optimality.
func (e *Engine) cachedPlan(src string) *Plan {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.planCache[src]
	if !ok {
		return nil
	}
	n, m := e.store.CountNodes(), e.store.CountEdges()
	if n > 2*ent.nodes+16 || ent.nodes > 2*n+16 || m > 2*ent.edges+16 || ent.edges > 2*m+16 {
		delete(e.planCache, src)
		return nil
	}
	return ent.pl
}

func (e *Engine) storePlan(src string, pl *Plan) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.planCache) >= planCacheMax {
		for k := range e.planCache {
			delete(e.planCache, k)
			break
		}
	}
	e.planCache[src] = planEntry{pl: pl, nodes: e.store.CountNodes(), edges: e.store.CountEdges()}
}

// Result is a rectangular query result.
type Result struct {
	Columns []string
	Rows    [][]Value
	// Truncated reports that rows were dropped by the MaxRows safety
	// valve (never by an explicit LIMIT).
	Truncated bool
}

// Run parses and executes a Cypher statement. Repeated statements reuse
// the cached plan, skipping parse and planning entirely.
func (e *Engine) Run(src string) (*Result, error) {
	if !e.opts.Legacy {
		if pl := e.cachedPlan(src); pl != nil {
			return e.execPlan(pl)
		}
	}
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if !e.opts.Legacy && !q.Explain {
		pl, err := e.planQuery(q)
		if err != nil {
			return nil, err
		}
		e.storePlan(src, pl)
		return e.execPlan(pl)
	}
	return e.RunQuery(q)
}

// Explain parses src and renders the plan the streaming engine would run,
// without executing it.
func (e *Engine) Explain(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	pl, err := e.planQuery(q)
	if err != nil {
		return "", err
	}
	return pl.String(), nil
}

// binding maps pattern variables to runtime values during matching.
type binding map[string]Value

func (b binding) clone() binding {
	c := make(binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// RunQuery executes a parsed query through the planned streaming
// pipeline (planner.go + iter.go), or through the legacy tree-walking
// matcher when Options.Legacy is set. EXPLAIN always reports the
// streaming plan.
func (e *Engine) RunQuery(q *Query) (*Result, error) {
	if len(q.Returns) == 0 {
		return nil, fmt.Errorf("cypher: empty RETURN")
	}
	if e.opts.Legacy && !q.Explain {
		return e.runLegacy(q)
	}
	return e.runPlanned(q)
}

// runLegacy is the original recursive matcher: it materializes every
// complete match before projection and paging. Kept as the differential
// baseline the property tests and benchmarks compare the streaming
// executor against.
func (e *Engine) runLegacy(q *Query) (*Result, error) {
	pushed := extractEqualityHints(q.Where)

	var matches []binding
	var matchErr error
	e.matchPatterns(q.Patterns, 0, binding{}, pushed, func(b binding) bool {
		if q.Where != nil {
			v, err := evalExpr(q.Where, b)
			if err != nil {
				matchErr = err
				return false
			}
			if !v.Truthy() {
				return true
			}
		}
		matches = append(matches, b.clone())
		return e.opts.MaxRows == 0 || len(matches) < e.opts.MaxRows*4+1000
	})
	if matchErr != nil {
		return nil, matchErr
	}

	res, err := e.project(q, matches)
	if err != nil {
		return nil, err
	}
	keyCols, err := orderKeyColumns(q.OrderBy, res.Columns)
	if err != nil {
		return nil, err
	}
	finishRows(q.OrderBy, q.Skip, q.Limit, res, keyCols, e.opts.MaxRows)
	return res, nil
}

// --- pattern matching ---

// equality hints pushed down from WHERE: var -> prop -> literal string.
func extractEqualityHints(w Expr) map[string]map[string]string {
	var conjs []Expr
	splitConjuncts(w, &conjs)
	return equalityHints(conjs)
}

func (e *Engine) matchPatterns(pats []Pattern, idx int, b binding,
	hints map[string]map[string]string, emit func(binding) bool) bool {
	if idx >= len(pats) {
		return emit(b)
	}
	return e.matchChain(pats[idx], 0, b, hints, func(b2 binding) bool {
		return e.matchPatterns(pats, idx+1, b2, hints, emit)
	})
}

// matchChain matches pattern node i and then recursively its outgoing
// edge pattern chain, calling emit for every complete assignment. The
// return value follows the emit protocol: false stops the search.
func (e *Engine) matchChain(p Pattern, i int, b binding,
	hints map[string]map[string]string, emit func(binding) bool) bool {
	np := p.Nodes[i]

	tryNode := func(n *graph.Node) bool {
		if !nodeMatches(np, n) {
			return true // skip, continue search
		}
		b2 := b
		if np.Var != "" {
			if prev, bound := b[np.Var]; bound {
				if prev.Kind != KindNode || prev.Node.ID != n.ID {
					return true
				}
			} else {
				b2 = b.clone()
				b2[np.Var] = NodeValue(n)
			}
		}
		if i == len(p.Nodes)-1 {
			return emit(b2)
		}
		return e.matchEdge(p, i, n, b2, hints, emit)
	}

	// If the variable is already bound, only that node is a candidate.
	if np.Var != "" {
		if prev, bound := b[np.Var]; bound {
			if prev.Kind != KindNode {
				return true
			}
			return tryNode(prev.Node)
		}
	}
	cont := true
	for _, n := range e.candidates(np, hints) {
		if !tryNode(n) {
			cont = false
			break
		}
	}
	return cont
}

func (e *Engine) matchEdge(p Pattern, i int, from *graph.Node, b binding,
	hints map[string]map[string]string, emit func(binding) bool) bool {
	ep := p.Edges[i]
	dirs := []graph.Direction{}
	switch ep.Dir {
	case DirRight:
		dirs = append(dirs, graph.Out)
	case DirLeft:
		dirs = append(dirs, graph.In)
	case DirAny:
		dirs = append(dirs, graph.Out, graph.In)
	}
	for _, d := range dirs {
		for _, ed := range e.store.Edges(from.ID, d) {
			if ep.Type != "" && ed.Type != ep.Type {
				continue
			}
			otherID := ed.To
			if d == graph.In {
				otherID = ed.From
			}
			other := e.store.Node(otherID)
			if other == nil {
				continue
			}
			b2 := b
			if ep.Var != "" {
				if prev, bound := b[ep.Var]; bound {
					if prev.Kind != KindEdge || prev.Edge.ID != ed.ID {
						continue
					}
				} else {
					b2 = b.clone()
					b2[ep.Var] = EdgeValue(ed)
				}
			}
			np := p.Nodes[i+1]
			if !nodeMatches(np, other) {
				continue
			}
			b3 := b2
			if np.Var != "" {
				if prev, bound := b2[np.Var]; bound {
					if prev.Kind != KindNode || prev.Node.ID != other.ID {
						continue
					}
				} else {
					b3 = b2.clone()
					b3[np.Var] = NodeValue(other)
				}
			}
			if i+1 == len(p.Nodes)-1 {
				if !emit(b3) {
					return false
				}
			} else {
				if !e.matchEdge(p, i+1, other, b3, hints, emit) {
					return false
				}
			}
		}
	}
	return true
}

// candidates enumerates starting nodes for a node pattern, using indexes
// when allowed: exact (label, name) lookup, name index, label index, then
// full scan as a last resort.
func (e *Engine) candidates(np NodePattern, hints map[string]map[string]string) []*graph.Node {
	name, hasName := "", false
	if np.Props != nil {
		if v, ok := np.Props["name"]; ok && v.Kind == KindString {
			name, hasName = v.Str, true
		}
	}
	if !hasName && np.Var != "" {
		if h, ok := hints[np.Var]; ok {
			if v, ok := h["name"]; ok {
				name, hasName = v, true
			}
		}
	}
	if e.opts.UseIndexes {
		switch {
		case hasName && np.Label != "":
			if n := e.store.FindNode(np.Label, name); n != nil {
				return []*graph.Node{n}
			}
			return nil
		case hasName:
			return e.store.NodesByName(name)
		case np.Label != "":
			return e.store.NodesByType(np.Label)
		}
	}
	var out []*graph.Node
	e.store.ForEachNode(func(n *graph.Node) bool {
		out = append(out, n)
		return true
	})
	return out
}

// nodeMatches checks label and inline property constraints.
func nodeMatches(np NodePattern, n *graph.Node) bool {
	if np.Label != "" && n.Type != np.Label {
		return false
	}
	for k, want := range np.Props {
		got := nodeProp(n, k)
		if !got.Equal(want) {
			return false
		}
	}
	return true
}

// --- expression evaluation ---

func nodeProp(n *graph.Node, prop string) Value {
	switch prop {
	case "name":
		return StringValue(n.Name)
	case "type", "label":
		return StringValue(n.Type)
	case "id":
		return NumberValue(float64(n.ID))
	}
	if v, ok := n.Attrs[prop]; ok {
		return StringValue(v)
	}
	return NullValue()
}

func edgeProp(ed *graph.Edge, prop string) Value {
	switch prop {
	case "type":
		return StringValue(ed.Type)
	case "id":
		return NumberValue(float64(ed.ID))
	}
	if v, ok := ed.Attrs[prop]; ok {
		return StringValue(v)
	}
	return NullValue()
}

func evalExpr(e Expr, b binding) (Value, error) {
	switch v := e.(type) {
	case LitExpr:
		return v.Val, nil
	case VarExpr:
		if val, ok := b[v.Name]; ok {
			return val, nil
		}
		return NullValue(), fmt.Errorf("cypher: unbound variable %q", v.Name)
	case PropExpr:
		val, ok := b[v.Var]
		if !ok {
			return NullValue(), fmt.Errorf("cypher: unbound variable %q", v.Var)
		}
		switch val.Kind {
		case KindNode:
			return nodeProp(val.Node, v.Prop), nil
		case KindEdge:
			return edgeProp(val.Edge, v.Prop), nil
		}
		return NullValue(), nil
	case NotExpr:
		inner, err := evalExpr(v.Inner, b)
		if err != nil {
			return NullValue(), err
		}
		return BoolValue(!inner.Truthy()), nil
	case BoolExpr:
		l, err := evalExpr(v.Left, b)
		if err != nil {
			return NullValue(), err
		}
		if v.Op == "and" && !l.Truthy() {
			return BoolValue(false), nil
		}
		if v.Op == "or" && l.Truthy() {
			return BoolValue(true), nil
		}
		r, err := evalExpr(v.Right, b)
		if err != nil {
			return NullValue(), err
		}
		return BoolValue(r.Truthy()), nil
	case CmpExpr:
		l, err := evalExpr(v.Left, b)
		if err != nil {
			return NullValue(), err
		}
		r, err := evalExpr(v.Right, b)
		if err != nil {
			return NullValue(), err
		}
		switch v.Op {
		case "=":
			return BoolValue(l.Equal(r)), nil
		case "<>":
			if l.Kind == KindNull || r.Kind == KindNull {
				return BoolValue(false), nil
			}
			return BoolValue(!l.Equal(r)), nil
		case "<", ">", "<=", ">=":
			c, ok := l.Compare(r)
			if !ok {
				return BoolValue(false), nil
			}
			switch v.Op {
			case "<":
				return BoolValue(c < 0), nil
			case ">":
				return BoolValue(c > 0), nil
			case "<=":
				return BoolValue(c <= 0), nil
			default:
				return BoolValue(c >= 0), nil
			}
		case "contains":
			return BoolValue(l.Kind == KindString && r.Kind == KindString &&
				strings.Contains(l.Str, r.Str)), nil
		case "starts":
			return BoolValue(l.Kind == KindString && r.Kind == KindString &&
				strings.HasPrefix(l.Str, r.Str)), nil
		case "ends":
			return BoolValue(l.Kind == KindString && r.Kind == KindString &&
				strings.HasSuffix(l.Str, r.Str)), nil
		}
		return NullValue(), fmt.Errorf("cypher: unknown comparison %q", v.Op)
	case FuncExpr:
		switch v.Name {
		case "type":
			arg, err := evalExpr(v.Arg, b)
			if err != nil {
				return NullValue(), err
			}
			if arg.Kind == KindEdge {
				return StringValue(arg.Edge.Type), nil
			}
			return NullValue(), nil
		case "id":
			arg, err := evalExpr(v.Arg, b)
			if err != nil {
				return NullValue(), err
			}
			switch arg.Kind {
			case KindNode:
				return NumberValue(float64(arg.Node.ID)), nil
			case KindEdge:
				return NumberValue(float64(arg.Edge.ID)), nil
			}
			return NullValue(), nil
		case "labels":
			arg, err := evalExpr(v.Arg, b)
			if err != nil {
				return NullValue(), err
			}
			if arg.Kind == KindNode {
				return StringValue(arg.Node.Type), nil
			}
			return NullValue(), nil
		case "lower", "upper":
			arg, err := evalExpr(v.Arg, b)
			if err != nil {
				return NullValue(), err
			}
			if arg.Kind != KindString {
				return NullValue(), nil
			}
			if v.Name == "lower" {
				return StringValue(strings.ToLower(arg.Str)), nil
			}
			return StringValue(strings.ToUpper(arg.Str)), nil
		case "count":
			return NullValue(), fmt.Errorf("cypher: count() outside RETURN")
		}
		return NullValue(), fmt.Errorf("cypher: unknown function %q", v.Name)
	}
	return NullValue(), fmt.Errorf("cypher: unevaluable expression %T", e)
}

func isAggregate(e Expr) bool {
	f, ok := e.(FuncExpr)
	return ok && f.Name == "count"
}

// --- projection, grouping, ordering ---

// projectRow evaluates the RETURN items against one binding.
func projectRow(items []ReturnItem, b binding) ([]Value, error) {
	row := make([]Value, len(items))
	for i, it := range items {
		v, err := evalExpr(it.Expr, b)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// rowKey identifies a row for DISTINCT and grouping.
func rowKey(row []Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.key()
	}
	return strings.Join(parts, "\x00")
}

func (e *Engine) project(q *Query, matches []binding) (*Result, error) {
	res := &Result{}
	hasAgg := false
	for _, it := range q.Returns {
		res.Columns = append(res.Columns, it.Alias)
		if isAggregate(it.Expr) {
			hasAgg = true
		}
	}
	if hasAgg {
		i := 0
		err := aggregateRows(q.Returns, res, func() (binding, error) {
			if i >= len(matches) {
				return nil, nil
			}
			b := matches[i]
			i++
			return b, nil
		})
		return res, err
	}
	for _, b := range matches {
		row, err := projectRow(q.Returns, b)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	if q.Distinct {
		res.Rows = distinctRows(res.Rows)
	}
	return res, nil
}

// aggregateRows consumes bindings from pull (nil binding = exhausted),
// grouping by the non-aggregate RETURN items and counting into the
// aggregate ones. Groups are emitted in first-seen order. Both engines
// share it: the legacy path wraps its match slice, the streaming path
// wraps the iterator pipeline.
func aggregateRows(items []ReturnItem, res *Result, pull func() (binding, error)) error {
	type group struct {
		keyVals []Value
		counts  []int
	}
	groups := map[string]*group{}
	var order []string
	for {
		b, err := pull()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		var keyParts []string
		keyVals := make([]Value, len(items))
		for i, it := range items {
			if isAggregate(it.Expr) {
				continue
			}
			v, err := evalExpr(it.Expr, b)
			if err != nil {
				return err
			}
			keyVals[i] = v
			keyParts = append(keyParts, v.key())
		}
		k := strings.Join(keyParts, "\x00")
		g, ok := groups[k]
		if !ok {
			g = &group{keyVals: keyVals, counts: make([]int, len(items))}
			groups[k] = g
			order = append(order, k)
		}
		for i, it := range items {
			fe, ok := it.Expr.(FuncExpr)
			if !ok || fe.Name != "count" {
				continue
			}
			if fe.Star {
				g.counts[i]++
				continue
			}
			v, err := evalExpr(fe.Arg, b)
			if err != nil {
				return err
			}
			if v.Kind != KindNull {
				g.counts[i]++
			}
		}
	}
	for _, k := range order {
		g := groups[k]
		row := make([]Value, len(items))
		for i, it := range items {
			if isAggregate(it.Expr) {
				row[i] = NumberValue(float64(g.counts[i]))
			} else {
				row[i] = g.keyVals[i]
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return nil
}

func distinctRows(rows [][]Value) [][]Value {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		k := rowKey(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// orderKeyColumns resolves ORDER BY keys to returned column indexes
// (keys must reference a returned column by alias text). Returns nil
// when the query has no ORDER BY.
func orderKeyColumns(orderBy []OrderKey, columns []string) ([]int, error) {
	if len(orderBy) == 0 {
		return nil, nil
	}
	keyCols := make([]int, len(orderBy))
	for i, k := range orderBy {
		txt := exprText(k.Expr)
		col := -1
		for j, c := range columns {
			if c == txt {
				col = j
				break
			}
		}
		if col < 0 {
			return nil, fmt.Errorf("cypher: ORDER BY %q must reference a returned column", txt)
		}
		keyCols[i] = col
	}
	return keyCols, nil
}

// sortRows sorts rows by the resolved ORDER BY key columns.
func sortRows(orderBy []OrderKey, rows [][]Value, keyCols []int) {
	sort.SliceStable(rows, func(a, b int) bool {
		for i, col := range keyCols {
			c, ok := rows[a][col].Compare(rows[b][col])
			if !ok || c == 0 {
				continue
			}
			if orderBy[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// finishRows applies the trailing row operators shared by both engines:
// sort (when keyCols is non-empty), SKIP, LIMIT, and the MaxRows safety
// valve (which sets Truncated when it drops rows).
func finishRows(orderBy []OrderKey, skip, limit int, res *Result, keyCols []int, maxRows int) {
	if len(keyCols) > 0 {
		sortRows(orderBy, res.Rows, keyCols)
	}
	if skip > 0 {
		if skip >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[skip:]
		}
	}
	if limit >= 0 && len(res.Rows) > limit {
		res.Rows = res.Rows[:limit]
	}
	if maxRows > 0 && len(res.Rows) > maxRows {
		res.Rows = res.Rows[:maxRows]
		res.Truncated = true
	}
}
