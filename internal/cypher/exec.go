package cypher

import (
	"fmt"
	"sort"
	"strings"

	"securitykg/internal/graph"
)

// Options tune query execution.
type Options struct {
	// UseIndexes enables index-based candidate selection (name, label and
	// exact-property lookups). Disabling it forces full scans — exposed so
	// the E11 ablation can measure the index's effect.
	UseIndexes bool
	// MaxRows caps result size as a safety valve (0 = unlimited).
	MaxRows int
}

// DefaultOptions enables indexes with a 100k row cap.
func DefaultOptions() Options { return Options{UseIndexes: true, MaxRows: 100000} }

// Engine executes parsed queries against a graph store.
type Engine struct {
	store *graph.Store
	opts  Options
}

// NewEngine builds an engine over the store.
func NewEngine(s *graph.Store, opts Options) *Engine {
	return &Engine{store: s, opts: opts}
}

// Result is a rectangular query result.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// Run parses and executes a Cypher statement.
func (e *Engine) Run(src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.RunQuery(q)
}

// binding maps pattern variables to runtime values during matching.
type binding map[string]Value

func (b binding) clone() binding {
	c := make(binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// RunQuery executes a parsed query.
func (e *Engine) RunQuery(q *Query) (*Result, error) {
	if len(q.Returns) == 0 {
		return nil, fmt.Errorf("cypher: empty RETURN")
	}
	pushed := extractEqualityHints(q.Where)

	var matches []binding
	var matchErr error
	e.matchPatterns(q.Patterns, 0, binding{}, pushed, func(b binding) bool {
		if q.Where != nil {
			v, err := evalExpr(q.Where, b)
			if err != nil {
				matchErr = err
				return false
			}
			if !v.Truthy() {
				return true
			}
		}
		matches = append(matches, b.clone())
		return e.opts.MaxRows == 0 || len(matches) < e.opts.MaxRows*4+1000
	})
	if matchErr != nil {
		return nil, matchErr
	}

	res, err := e.project(q, matches)
	if err != nil {
		return nil, err
	}
	if err := e.orderAndPage(q, res, matches); err != nil {
		return nil, err
	}
	return res, nil
}

// --- pattern matching ---

// equality hints pushed down from WHERE: var -> prop -> literal string.
func extractEqualityHints(w Expr) map[string]map[string]string {
	out := map[string]map[string]string{}
	var walk func(e Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case BoolExpr:
			if v.Op == "and" {
				walk(v.Left)
				walk(v.Right)
			}
		case CmpExpr:
			if v.Op != "=" {
				return
			}
			pe, okL := v.Left.(PropExpr)
			lit, okR := v.Right.(LitExpr)
			if !okL || !okR {
				pe, okL = v.Right.(PropExpr)
				lit, okR = v.Left.(LitExpr)
			}
			if okL && okR && lit.Val.Kind == KindString {
				if out[pe.Var] == nil {
					out[pe.Var] = map[string]string{}
				}
				out[pe.Var][pe.Prop] = lit.Val.Str
			}
		}
	}
	if w != nil {
		walk(w)
	}
	return out
}

func (e *Engine) matchPatterns(pats []Pattern, idx int, b binding,
	hints map[string]map[string]string, emit func(binding) bool) bool {
	if idx >= len(pats) {
		return emit(b)
	}
	return e.matchChain(pats[idx], 0, b, hints, func(b2 binding) bool {
		return e.matchPatterns(pats, idx+1, b2, hints, emit)
	})
}

// matchChain matches pattern node i and then recursively its outgoing
// edge pattern chain, calling emit for every complete assignment. The
// return value follows the emit protocol: false stops the search.
func (e *Engine) matchChain(p Pattern, i int, b binding,
	hints map[string]map[string]string, emit func(binding) bool) bool {
	np := p.Nodes[i]

	tryNode := func(n *graph.Node) bool {
		if !e.nodeMatches(np, n, hints) {
			return true // skip, continue search
		}
		b2 := b
		if np.Var != "" {
			if prev, bound := b[np.Var]; bound {
				if prev.Kind != KindNode || prev.Node.ID != n.ID {
					return true
				}
			} else {
				b2 = b.clone()
				b2[np.Var] = NodeValue(n)
			}
		}
		if i == len(p.Nodes)-1 {
			return emit(b2)
		}
		return e.matchEdge(p, i, n, b2, hints, emit)
	}

	// If the variable is already bound, only that node is a candidate.
	if np.Var != "" {
		if prev, bound := b[np.Var]; bound {
			if prev.Kind != KindNode {
				return true
			}
			return tryNode(prev.Node)
		}
	}
	cont := true
	for _, n := range e.candidates(np, hints) {
		if !tryNode(n) {
			cont = false
			break
		}
	}
	return cont
}

func (e *Engine) matchEdge(p Pattern, i int, from *graph.Node, b binding,
	hints map[string]map[string]string, emit func(binding) bool) bool {
	ep := p.Edges[i]
	dirs := []graph.Direction{}
	switch ep.Dir {
	case DirRight:
		dirs = append(dirs, graph.Out)
	case DirLeft:
		dirs = append(dirs, graph.In)
	case DirAny:
		dirs = append(dirs, graph.Out, graph.In)
	}
	for _, d := range dirs {
		for _, ed := range e.store.Edges(from.ID, d) {
			if ep.Type != "" && ed.Type != ep.Type {
				continue
			}
			otherID := ed.To
			if d == graph.In {
				otherID = ed.From
			}
			other := e.store.Node(otherID)
			if other == nil {
				continue
			}
			b2 := b
			if ep.Var != "" {
				if prev, bound := b[ep.Var]; bound {
					if prev.Kind != KindEdge || prev.Edge.ID != ed.ID {
						continue
					}
				} else {
					b2 = b.clone()
					b2[ep.Var] = EdgeValue(ed)
				}
			}
			np := p.Nodes[i+1]
			if !e.nodeMatches(np, other, hints) {
				continue
			}
			b3 := b2
			if np.Var != "" {
				if prev, bound := b2[np.Var]; bound {
					if prev.Kind != KindNode || prev.Node.ID != other.ID {
						continue
					}
				} else {
					b3 = b2.clone()
					b3[np.Var] = NodeValue(other)
				}
			}
			if i+1 == len(p.Nodes)-1 {
				if !emit(b3) {
					return false
				}
			} else {
				if !e.matchEdge(p, i+1, other, b3, hints, emit) {
					return false
				}
			}
		}
	}
	return true
}

// candidates enumerates starting nodes for a node pattern, using indexes
// when allowed: exact (label, name) lookup, name index, label index, then
// full scan as a last resort.
func (e *Engine) candidates(np NodePattern, hints map[string]map[string]string) []*graph.Node {
	name, hasName := "", false
	if np.Props != nil {
		if v, ok := np.Props["name"]; ok && v.Kind == KindString {
			name, hasName = v.Str, true
		}
	}
	if !hasName && np.Var != "" {
		if h, ok := hints[np.Var]; ok {
			if v, ok := h["name"]; ok {
				name, hasName = v, true
			}
		}
	}
	if e.opts.UseIndexes {
		switch {
		case hasName && np.Label != "":
			if n := e.store.FindNode(np.Label, name); n != nil {
				return []*graph.Node{n}
			}
			return nil
		case hasName:
			return e.store.NodesByName(name)
		case np.Label != "":
			return e.store.NodesByType(np.Label)
		}
	}
	var out []*graph.Node
	e.store.ForEachNode(func(n *graph.Node) bool {
		out = append(out, n)
		return true
	})
	return out
}

// nodeMatches checks label and inline property constraints.
func (e *Engine) nodeMatches(np NodePattern, n *graph.Node, _ map[string]map[string]string) bool {
	if np.Label != "" && n.Type != np.Label {
		return false
	}
	for k, want := range np.Props {
		got := nodeProp(n, k)
		if !got.Equal(want) {
			return false
		}
	}
	return true
}

// --- expression evaluation ---

func nodeProp(n *graph.Node, prop string) Value {
	switch prop {
	case "name":
		return StringValue(n.Name)
	case "type", "label":
		return StringValue(n.Type)
	case "id":
		return NumberValue(float64(n.ID))
	}
	if v, ok := n.Attrs[prop]; ok {
		return StringValue(v)
	}
	return NullValue()
}

func edgeProp(ed *graph.Edge, prop string) Value {
	switch prop {
	case "type":
		return StringValue(ed.Type)
	case "id":
		return NumberValue(float64(ed.ID))
	}
	if v, ok := ed.Attrs[prop]; ok {
		return StringValue(v)
	}
	return NullValue()
}

func evalExpr(e Expr, b binding) (Value, error) {
	switch v := e.(type) {
	case LitExpr:
		return v.Val, nil
	case VarExpr:
		if val, ok := b[v.Name]; ok {
			return val, nil
		}
		return NullValue(), fmt.Errorf("cypher: unbound variable %q", v.Name)
	case PropExpr:
		val, ok := b[v.Var]
		if !ok {
			return NullValue(), fmt.Errorf("cypher: unbound variable %q", v.Var)
		}
		switch val.Kind {
		case KindNode:
			return nodeProp(val.Node, v.Prop), nil
		case KindEdge:
			return edgeProp(val.Edge, v.Prop), nil
		}
		return NullValue(), nil
	case NotExpr:
		inner, err := evalExpr(v.Inner, b)
		if err != nil {
			return NullValue(), err
		}
		return BoolValue(!inner.Truthy()), nil
	case BoolExpr:
		l, err := evalExpr(v.Left, b)
		if err != nil {
			return NullValue(), err
		}
		if v.Op == "and" && !l.Truthy() {
			return BoolValue(false), nil
		}
		if v.Op == "or" && l.Truthy() {
			return BoolValue(true), nil
		}
		r, err := evalExpr(v.Right, b)
		if err != nil {
			return NullValue(), err
		}
		return BoolValue(r.Truthy()), nil
	case CmpExpr:
		l, err := evalExpr(v.Left, b)
		if err != nil {
			return NullValue(), err
		}
		r, err := evalExpr(v.Right, b)
		if err != nil {
			return NullValue(), err
		}
		switch v.Op {
		case "=":
			return BoolValue(l.Equal(r)), nil
		case "<>":
			if l.Kind == KindNull || r.Kind == KindNull {
				return BoolValue(false), nil
			}
			return BoolValue(!l.Equal(r)), nil
		case "<", ">", "<=", ">=":
			c, ok := l.Compare(r)
			if !ok {
				return BoolValue(false), nil
			}
			switch v.Op {
			case "<":
				return BoolValue(c < 0), nil
			case ">":
				return BoolValue(c > 0), nil
			case "<=":
				return BoolValue(c <= 0), nil
			default:
				return BoolValue(c >= 0), nil
			}
		case "contains":
			return BoolValue(l.Kind == KindString && r.Kind == KindString &&
				strings.Contains(l.Str, r.Str)), nil
		case "starts":
			return BoolValue(l.Kind == KindString && r.Kind == KindString &&
				strings.HasPrefix(l.Str, r.Str)), nil
		case "ends":
			return BoolValue(l.Kind == KindString && r.Kind == KindString &&
				strings.HasSuffix(l.Str, r.Str)), nil
		}
		return NullValue(), fmt.Errorf("cypher: unknown comparison %q", v.Op)
	case FuncExpr:
		switch v.Name {
		case "type":
			arg, err := evalExpr(v.Arg, b)
			if err != nil {
				return NullValue(), err
			}
			if arg.Kind == KindEdge {
				return StringValue(arg.Edge.Type), nil
			}
			return NullValue(), nil
		case "id":
			arg, err := evalExpr(v.Arg, b)
			if err != nil {
				return NullValue(), err
			}
			switch arg.Kind {
			case KindNode:
				return NumberValue(float64(arg.Node.ID)), nil
			case KindEdge:
				return NumberValue(float64(arg.Edge.ID)), nil
			}
			return NullValue(), nil
		case "labels":
			arg, err := evalExpr(v.Arg, b)
			if err != nil {
				return NullValue(), err
			}
			if arg.Kind == KindNode {
				return StringValue(arg.Node.Type), nil
			}
			return NullValue(), nil
		case "lower", "upper":
			arg, err := evalExpr(v.Arg, b)
			if err != nil {
				return NullValue(), err
			}
			if arg.Kind != KindString {
				return NullValue(), nil
			}
			if v.Name == "lower" {
				return StringValue(strings.ToLower(arg.Str)), nil
			}
			return StringValue(strings.ToUpper(arg.Str)), nil
		case "count":
			return NullValue(), fmt.Errorf("cypher: count() outside RETURN")
		}
		return NullValue(), fmt.Errorf("cypher: unknown function %q", v.Name)
	}
	return NullValue(), fmt.Errorf("cypher: unevaluable expression %T", e)
}

func isAggregate(e Expr) bool {
	f, ok := e.(FuncExpr)
	return ok && f.Name == "count"
}

// --- projection, grouping, ordering ---

func (e *Engine) project(q *Query, matches []binding) (*Result, error) {
	res := &Result{}
	hasAgg := false
	for _, it := range q.Returns {
		res.Columns = append(res.Columns, it.Alias)
		if isAggregate(it.Expr) {
			hasAgg = true
		}
	}
	if hasAgg {
		return e.projectAggregate(q, matches, res)
	}
	for _, b := range matches {
		row := make([]Value, len(q.Returns))
		for i, it := range q.Returns {
			v, err := evalExpr(it.Expr, b)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
	}
	if q.Distinct {
		res.Rows = distinctRows(res.Rows)
	}
	return res, nil
}

func (e *Engine) projectAggregate(q *Query, matches []binding, res *Result) (*Result, error) {
	type group struct {
		keyVals []Value
		counts  []int
		seen    []map[string]bool // for count(DISTINCT …) — not exposed, kept simple
	}
	groups := map[string]*group{}
	var order []string
	for _, b := range matches {
		var keyParts []string
		keyVals := make([]Value, len(q.Returns))
		for i, it := range q.Returns {
			if isAggregate(it.Expr) {
				continue
			}
			v, err := evalExpr(it.Expr, b)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			keyParts = append(keyParts, v.key())
		}
		k := strings.Join(keyParts, "\x00")
		g, ok := groups[k]
		if !ok {
			g = &group{keyVals: keyVals, counts: make([]int, len(q.Returns))}
			groups[k] = g
			order = append(order, k)
		}
		for i, it := range q.Returns {
			fe, ok := it.Expr.(FuncExpr)
			if !ok || fe.Name != "count" {
				continue
			}
			if fe.Star {
				g.counts[i]++
				continue
			}
			v, err := evalExpr(fe.Arg, b)
			if err != nil {
				return nil, err
			}
			if v.Kind != KindNull {
				g.counts[i]++
			}
		}
	}
	for _, k := range order {
		g := groups[k]
		row := make([]Value, len(q.Returns))
		for i, it := range q.Returns {
			if isAggregate(it.Expr) {
				row[i] = NumberValue(float64(g.counts[i]))
			} else {
				row[i] = g.keyVals[i]
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func distinctRows(rows [][]Value) [][]Value {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		var parts []string
		for _, v := range r {
			parts = append(parts, v.key())
		}
		k := strings.Join(parts, "\x00")
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

func (e *Engine) orderAndPage(q *Query, res *Result, _ []binding) error {
	if len(q.OrderBy) > 0 {
		// Resolve each key to a returned column by alias text.
		keyCols := make([]int, len(q.OrderBy))
		for i, k := range q.OrderBy {
			txt := exprText(k.Expr)
			col := -1
			for j, c := range res.Columns {
				if c == txt {
					col = j
					break
				}
			}
			if col < 0 {
				return fmt.Errorf("cypher: ORDER BY %q must reference a returned column", txt)
			}
			keyCols[i] = col
		}
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for i, col := range keyCols {
				c, ok := res.Rows[a][col].Compare(res.Rows[b][col])
				if !ok || c == 0 {
					continue
				}
				if q.OrderBy[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if q.Skip > 0 {
		if q.Skip >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Skip:]
		}
	}
	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	if e.opts.MaxRows > 0 && len(res.Rows) > e.opts.MaxRows {
		res.Rows = res.Rows[:e.opts.MaxRows]
	}
	return nil
}
