package cypher

import (
	"strings"

	"securitykg/internal/graph"
)

// The executor runs plans as lazy pull-based iterators (Volcano style,
// but with a single shared binding per segment mutated in place and
// undone on backtrack instead of cloned per level). Each stage's
// iterator pulls from its input only when it needs another row, so
// LIMIT, MaxRows and aggregate early exits stop pattern matching
// upstream instead of truncating a materialized match set. WITH
// boundaries bridge segments: the upstream segment's projected row
// becomes the downstream segment's entire binding namespace.

// iter advances the shared binding to the next complete extension.
type iter interface {
	next() (bool, error)
}

// execCtx is the shared execution state of one pipeline segment: the
// engine and the one binding all of the segment's stage iterators extend
// and unwind, the execution's parameter bindings and byte budget (both
// shared across every segment of the query), plus a per-execution cache
// of scan ID lists so optional sub-pipelines rebuilt per input row
// (optionalIter) don't re-fetch a constant access path every time.
type execCtx struct {
	e          *Engine
	b          binding
	ps         params
	bud        *byteBudget
	writes     *WriteStats // shared across segments; nil for read-only plans
	cacheScans bool        // segment has optional sub-pipelines: cache scan ID lists
	scanIDs    map[*ScanStage][]graph.NodeID
}

// fetchScanIDs returns the (cached) candidate ID list for a scan stage;
// the access path is constant for the query's lifetime.
func (ec *execCtx) fetchScanIDs(s *scanIter) []graph.NodeID {
	if ec.scanIDs == nil {
		ec.scanIDs = map[*ScanStage][]graph.NodeID{}
	}
	ids, ok := ec.scanIDs[s.st]
	if !ok {
		ids = s.fetchIDs()
		ec.scanIDs[s.st] = ids
	}
	return ids
}

func (s *ScanStage) newIter(ec *execCtx, input iter) iter {
	return &scanIter{ec: ec, st: s, input: input}
}

func (s *ExpandStage) newIter(ec *execCtx, input iter) iter {
	return &expandIter{ec: ec, st: s, input: input}
}

func (s *VarExpandStage) newIter(ec *execCtx, input iter) iter {
	return &varExpandIter{ec: ec, st: s, input: input}
}

func (s *OptionalStage) newIter(ec *execCtx, input iter) iter {
	if input == nil {
		input = &onceIter{}
	}
	return &optionalIter{ec: ec, st: s, input: input}
}

func (s *MutationStage) newIter(ec *execCtx, input iter) iter {
	return &mutationIter{ec: ec, st: s, input: input}
}

// buildStageChain wires a stage list into a pull pipeline. input is nil
// for a pipeline rooted at the virtual single input row.
func buildStageChain(ec *execCtx, stages []Stage, input iter) iter {
	root := input
	for _, st := range stages {
		root = st.newIter(ec, root)
	}
	return root
}

// onceIter emits the single virtual input row.
type onceIter struct{ done bool }

func (o *onceIter) next() (bool, error) {
	if o.done {
		return false, nil
	}
	o.done = true
	return true, nil
}

func evalPreds(preds []Expr, b binding, ps params) (bool, error) {
	for _, p := range preds {
		v, err := evalExpr(p, b, ps)
		if err != nil {
			return false, err
		}
		if !v.Truthy() {
			return false, nil
		}
	}
	return true, nil
}

// --- scan ---

type scanIter struct {
	ec        *execCtx
	st        *ScanStage
	input     iter // nil for the first stage (single virtual input row)
	started   bool
	active    bool
	fetched   bool // ids loaded once; the access path is constant per query
	ids       []graph.NodeID
	i         int
	boundCand *graph.Node // AccessBound: the single candidate
	set       bool        // we bound Node.Var on the last emitted row
}

func (s *scanIter) fetchIDs() []graph.NodeID {
	st := s.ec.e.store
	// Parameter-valued seeks resolve their key at execution time; the
	// access path itself was chosen at plan time and is shared by every
	// binding. A non-string value can never equal a node name or
	// attribute, so the seek is empty.
	name := s.st.Name
	if s.st.NameParam != "" {
		v, ok := s.ec.ps.get(s.st.NameParam)
		if !ok || v.Kind != KindString {
			return nil
		}
		name = v.Str
	}
	attrVal := s.st.AttrVal
	if s.st.AttrParam != "" {
		v, ok := s.ec.ps.get(s.st.AttrParam)
		if !ok || v.Kind != KindString {
			return nil
		}
		attrVal = v.Str
	}
	switch s.st.Access {
	case AccessLabel:
		return st.NodeIDsByType(s.st.Label)
	case AccessName:
		return st.NodeIDsByName(name)
	case AccessLabelName:
		if n := st.FindNode(s.st.Label, name); n != nil {
			return []graph.NodeID{n.ID}
		}
		return nil
	case AccessAttr:
		return st.NodeIDsByAttr(s.st.AttrKey, attrVal)
	case AccessLabelAttr:
		return st.NodeIDsByTypeAttr(s.st.Label, s.st.AttrKey, attrVal)
	}
	return st.AllNodeIDs()
}

func (s *scanIter) next() (bool, error) {
	ec := s.ec
	np := s.st.Node
	for {
		if !s.active {
			if s.input == nil {
				if s.started {
					return false, nil
				}
				s.started = true
			} else {
				ok, err := s.input.next()
				if err != nil || !ok {
					return false, err
				}
			}
			s.active = true
			s.i = 0
			s.boundCand = nil
			if s.st.Access == AccessBound {
				if v, ok := ec.b[np.Var]; ok && v.Kind == KindNode {
					s.boundCand = v.Node
				}
			} else if !s.fetched {
				if ec.cacheScans {
					s.ids = ec.fetchScanIDs(s)
				} else {
					s.ids = s.fetchIDs()
				}
				s.fetched = true
			}
		}
		if s.set {
			delete(ec.b, np.Var)
			s.set = false
		}
		for {
			var n *graph.Node
			if s.st.Access == AccessBound {
				if s.boundCand == nil {
					break
				}
				n, s.boundCand = s.boundCand, nil
			} else {
				if s.i >= len(s.ids) {
					break
				}
				n = ec.e.store.Node(s.ids[s.i])
				s.i++
				if n == nil {
					continue
				}
			}
			if !nodeMatches(np, n, ec.ps) {
				continue
			}
			if s.st.Access != AccessBound {
				if prev, bound := ec.b[np.Var]; bound {
					if prev.Kind != KindNode || prev.Node.ID != n.ID {
						continue
					}
				} else {
					ec.b[np.Var] = NodeValue(n)
					s.set = true
				}
			}
			ok, err := evalPreds(s.st.Filters, ec.b, ec.ps)
			if err != nil {
				return false, err
			}
			if !ok {
				if s.set {
					delete(ec.b, np.Var)
					s.set = false
				}
				continue
			}
			return true, nil
		}
		s.active = false
	}
}

// --- expand ---

type expandIter struct {
	ec      *execCtx
	st      *ExpandStage
	input   iter
	active  bool
	fromID  graph.NodeID
	dirs    []graph.Direction
	di      int
	edges   []*graph.Edge
	ei      int
	setEdge bool
	setNode bool
}

// expandDirs maps an edge pattern direction onto store traversal
// directions from the expansion's starting endpoint. Reverse means the
// chain is being walked right-to-left, flipping the arrow.
func expandDirs(d EdgeDir, reverse bool) []graph.Direction {
	switch d {
	case DirRight:
		if reverse {
			return []graph.Direction{graph.In}
		}
		return []graph.Direction{graph.Out}
	case DirLeft:
		if reverse {
			return []graph.Direction{graph.Out}
		}
		return []graph.Direction{graph.In}
	}
	return []graph.Direction{graph.Out, graph.In}
}

func (x *expandIter) undo() {
	if x.setEdge {
		delete(x.ec.b, x.st.Edge.Var)
		x.setEdge = false
	}
	if x.setNode {
		delete(x.ec.b, x.st.To.Var)
		x.setNode = false
	}
}

func (x *expandIter) next() (bool, error) {
	ec := x.ec
	st := x.st
	for {
		if !x.active {
			ok, err := x.input.next()
			if err != nil || !ok {
				return false, err
			}
			v, ok := ec.b[st.From]
			if !ok || v.Kind != KindNode {
				continue // non-node binding (e.g. optional null): no expansion
			}
			x.fromID = v.Node.ID
			x.dirs = expandDirs(st.Edge.Dir, st.Reverse)
			x.di = 0
			x.edges = ec.e.store.Edges(x.fromID, x.dirs[0])
			x.ei = 0
			x.active = true
		}
		x.undo()
		for {
			if x.ei >= len(x.edges) {
				x.di++
				if x.di >= len(x.dirs) {
					break
				}
				x.edges = ec.e.store.Edges(x.fromID, x.dirs[x.di])
				x.ei = 0
				continue
			}
			ed := x.edges[x.ei]
			x.ei++
			if st.Edge.Type != "" && ed.Type != st.Edge.Type {
				continue
			}
			otherID := ed.To
			if x.dirs[x.di] == graph.In {
				otherID = ed.From
			}
			other := ec.e.store.Node(otherID)
			if other == nil {
				continue
			}
			if prev, bound := ec.b[st.Edge.Var]; bound {
				if prev.Kind != KindEdge || prev.Edge.ID != ed.ID {
					continue
				}
			} else {
				ec.b[st.Edge.Var] = EdgeValue(ed)
				x.setEdge = true
			}
			if !nodeMatches(st.To, other, ec.ps) {
				x.undo()
				continue
			}
			if prev, bound := ec.b[st.To.Var]; bound {
				if prev.Kind != KindNode || prev.Node.ID != other.ID {
					x.undo()
					continue
				}
			} else {
				ec.b[st.To.Var] = NodeValue(other)
				x.setNode = true
			}
			ok, err := evalPreds(st.Filters, ec.b, ec.ps)
			if err != nil {
				return false, err
			}
			if !ok {
				x.undo()
				continue
			}
			return true, nil
		}
		x.active = false
	}
}

// --- variable-length expand ---

// varExpandIter streams the bounded BFS of a variable-length pattern:
// for every input row it computes the set of nodes whose shortest
// distance from the anchor lies within the hop range (bfsTargets, shared
// with the legacy matcher) and binds the target variable once per
// distinct endpoint.
type varExpandIter struct {
	ec      *execCtx
	st      *VarExpandStage
	input   iter
	active  bool
	targets []graph.NodeID
	ti      int
	set     bool
}

func (x *varExpandIter) next() (bool, error) {
	ec := x.ec
	st := x.st
	for {
		if !x.active {
			ok, err := x.input.next()
			if err != nil || !ok {
				return false, err
			}
			v, ok := ec.b[st.From]
			if !ok || v.Kind != KindNode {
				continue // non-node binding (e.g. optional null): nothing reachable
			}
			x.targets = ec.e.bfsTargets(v.Node.ID, st.Edge, st.Reverse)
			x.ti = 0
			x.active = true
		}
		if x.set {
			delete(ec.b, st.To.Var)
			x.set = false
		}
		for x.ti < len(x.targets) {
			n := ec.e.store.Node(x.targets[x.ti])
			x.ti++
			if n == nil || !nodeMatches(st.To, n, ec.ps) {
				continue
			}
			if prev, bound := ec.b[st.To.Var]; bound {
				if prev.Kind != KindNode || prev.Node.ID != n.ID {
					continue
				}
			} else {
				ec.b[st.To.Var] = NodeValue(n)
				x.set = true
			}
			ok, err := evalPreds(st.Filters, ec.b, ec.ps)
			if err != nil {
				return false, err
			}
			if !ok {
				if x.set {
					delete(ec.b, st.To.Var)
					x.set = false
				}
				continue
			}
			return true, nil
		}
		x.active = false
	}
}

// --- optional ---

// optionalIter runs the optional sub-pipeline once per input row. Rows
// with at least one extension stream each of them; rows with none pass
// through once with the sub-pipeline's variables bound to null. The
// inner iterator chain is rebuilt per input row (stage state is cheap)
// and shares the segment's binding, so anchored scans and expands read
// the outer row's variables directly.
type optionalIter struct {
	ec      *execCtx
	st      *OptionalStage
	input   iter
	inner   iter
	matched bool
	padded  bool
}

func (o *optionalIter) clearPad() {
	if o.padded {
		for _, v := range o.st.Vars {
			delete(o.ec.b, v)
		}
		o.padded = false
	}
}

func (o *optionalIter) next() (bool, error) {
	for {
		if o.inner == nil {
			o.clearPad()
			ok, err := o.input.next()
			if err != nil || !ok {
				return false, err
			}
			o.inner = buildStageChain(o.ec, o.st.Inner, nil)
			o.matched = false
		}
		ok, err := o.inner.next()
		if err != nil {
			return false, err
		}
		if ok {
			o.matched = true
			return true, nil
		}
		o.inner = nil
		if !o.matched {
			for _, v := range o.st.Vars {
				o.ec.b[v] = NullValue()
			}
			o.padded = true
			return true, nil
		}
	}
}

// --- mutation (eager write barrier) ---

// mutationIter applies a part's writing clauses: on the first pull it
// drains its entire input, cloning each row (charged to the byte
// budget), applies the writes once per buffered row in input order —
// all mutations complete before the first row leaves the stage — then
// re-streams the rows by installing each buffered (and write-extended)
// binding as the segment's current row. The input is nil for a
// write-only query rooted at the single virtual row.
type mutationIter struct {
	ec      *execCtx
	st      *MutationStage
	input   iter
	started bool
	buf     []binding
	i       int
}

func (m *mutationIter) next() (bool, error) {
	ec := m.ec
	if !m.started {
		m.started = true
		if m.input == nil {
			m.buf = append(m.buf, ec.b.clone())
		} else {
			for {
				ok, err := m.input.next()
				if err != nil {
					return false, err
				}
				if !ok {
					break
				}
				if err := ec.bud.charge(bindingBytes(ec.b)); err != nil {
					return false, err
				}
				m.buf = append(m.buf, ec.b.clone())
			}
		}
		for _, b := range m.buf {
			if err := ec.e.applyWrites(m.st.Writes, b, ec.ps, ec.writes); err != nil {
				return false, err
			}
		}
	}
	if m.i >= len(m.buf) {
		return false, nil
	}
	ec.b = m.buf[m.i]
	m.i++
	return true, nil
}

// --- WITH segment bridge ---

// withIter bridges two pipeline segments: it pulls the upstream
// segment's rows, projects them through the WITH items (aggregating or
// deduplicating when asked), applies the post-WITH WHERE filter, and
// re-roots the downstream segment's binding namespace to exactly the
// projected aliases. Non-aggregating bridges stream row by row, so a
// downstream LIMIT still stops upstream matching early; aggregating
// bridges materialize their group table on first pull, charging the
// query's byte budget for every row consumed and every row projected.
type withIter struct {
	srcEC *execCtx
	dstEC *execCtx
	seg   *PlanSegment
	src   iter

	seen    map[string]bool // DISTINCT
	buf     [][]Value       // aggregate groups
	bi      int
	started bool
}

// emit installs a projected row as the downstream binding and applies
// the WITH ... WHERE filter.
func (w *withIter) emit(row []Value) (bool, error) {
	for i, it := range w.seg.Items {
		w.dstEC.b[it.Alias] = row[i]
	}
	if w.seg.Filter != nil {
		v, err := evalExpr(w.seg.Filter, w.dstEC.b, w.dstEC.ps)
		if err != nil {
			return false, err
		}
		if !v.Truthy() {
			return false, nil
		}
	}
	return true, nil
}

func (w *withIter) next() (bool, error) {
	if w.seg.HasAggregate {
		if !w.started {
			w.started = true
			res := &Result{}
			if err := aggregateRows(w.seg.Items, res, func() (binding, error) {
				ok, err := w.src.next()
				if err != nil || !ok {
					return nil, err
				}
				if err := w.srcEC.bud.charge(aggRowCost); err != nil {
					return nil, err
				}
				return w.srcEC.b, nil
			}, w.srcEC.ps); err != nil {
				return false, err
			}
			w.buf = res.Rows
		}
		for w.bi < len(w.buf) {
			row := w.buf[w.bi]
			w.bi++
			ok, err := w.emit(row)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	for {
		ok, err := w.src.next()
		if err != nil || !ok {
			return false, err
		}
		row, err := projectRow(w.seg.Items, w.srcEC.b, w.srcEC.ps)
		if err != nil {
			return false, err
		}
		if err := w.srcEC.bud.charge(rowBytes(row)); err != nil {
			return false, err
		}
		if w.seen != nil {
			k := rowKey(row)
			if w.seen[k] {
				continue
			}
			w.seen[k] = true
		}
		ok, err = w.emit(row)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
}

// --- plan execution ---

// runPlanned plans and executes q through the streaming pipeline,
// materializing the cursor (Engine.Query's MaxRows semantics).
func (e *Engine) runPlanned(q *Query, ps params) (*Result, error) {
	pl, err := e.planQuery(q)
	if err != nil {
		return nil, err
	}
	if q.Explain {
		return explainResult(pl), nil
	}
	rows, err := e.rowsForPlan(pl, ps)
	if err != nil {
		return nil, err
	}
	return materialize(rows, e.opts.MaxRows)
}

func explainResult(pl *Plan) *Result {
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimSuffix(pl.String(), "\n"), "\n") {
		res.Rows = append(res.Rows, []Value{StringValue(line)})
	}
	return res
}
