package cypher

import (
	"sort"
	"strings"
	"sync"

	"securitykg/internal/graph"
)

// The executor runs plans as lazy pull-based iterators (Volcano style,
// but with a single shared binding per segment mutated in place and
// undone on backtrack instead of cloned per level). Each stage's
// iterator pulls from its input only when it needs another row, so
// LIMIT, MaxRows and aggregate early exits stop pattern matching
// upstream instead of truncating a materialized match set. WITH
// boundaries bridge segments: the upstream segment's projected row
// becomes the downstream segment's entire binding namespace.

// iter advances the shared binding to the next complete extension.
type iter interface {
	next() (bool, error)
}

// execCtx is the shared execution state of one pipeline segment: the
// engine and the one binding all of the segment's stage iterators extend
// and unwind, the execution's parameter bindings and byte budget (both
// shared across every segment of the query), plus a per-execution cache
// of scan ID lists so optional sub-pipelines rebuilt per input row
// (optionalIter) don't re-fetch a constant access path every time.
type execCtx struct {
	e          *Engine
	b          binding
	ps         params
	bud        *byteBudget
	writes     *WriteStats // shared across segments; nil for read-only plans
	cacheScans bool        // segment has optional sub-pipelines: cache scan ID lists
	scanIDs    map[*ScanStage][]graph.NodeID
	// prof, non-nil only under EXPLAIN ANALYZE, makes buildStageChain wrap
	// every stage iterator in a profiling decorator (analyze.go). The nil
	// check happens at pipeline construction, so un-analyzed executions
	// run the exact pre-existing iterator chain.
	prof *planProf
}

// fetchScanIDs returns the (cached) candidate ID list for a scan stage;
// the access path is constant for the query's lifetime.
func (ec *execCtx) fetchScanIDs(s *scanIter) []graph.NodeID {
	if ec.scanIDs == nil {
		ec.scanIDs = map[*ScanStage][]graph.NodeID{}
	}
	ids, ok := ec.scanIDs[s.st]
	if !ok {
		ids = s.fetchIDs()
		ec.scanIDs[s.st] = ids
	}
	return ids
}

func (s *ScanStage) newIter(ec *execCtx, input iter) iter {
	return &scanIter{ec: ec, st: s, input: input}
}

func (s *ExpandStage) newIter(ec *execCtx, input iter) iter {
	return &expandIter{ec: ec, st: s, input: input}
}

func (s *VarExpandStage) newIter(ec *execCtx, input iter) iter {
	return &varExpandIter{ec: ec, st: s, input: input}
}

func (s *HashJoinStage) newIter(ec *execCtx, input iter) iter {
	if input == nil {
		input = &onceIter{}
	}
	return &hashJoinIter{ec: ec, st: s, input: input}
}

func (s *BiExpandStage) newIter(ec *execCtx, input iter) iter {
	return &biExpandIter{ec: ec, st: s, input: input}
}

func (s *OptionalStage) newIter(ec *execCtx, input iter) iter {
	if input == nil {
		input = &onceIter{}
	}
	return &optionalIter{ec: ec, st: s, input: input}
}

func (s *MutationStage) newIter(ec *execCtx, input iter) iter {
	return &mutationIter{ec: ec, st: s, input: input}
}

func (s *UnwindStage) newIter(ec *execCtx, input iter) iter {
	if input == nil {
		input = &onceIter{}
	}
	return &unwindIter{ec: ec, st: s, input: input}
}

// buildStageChain wires a stage list into a pull pipeline. input is nil
// for a pipeline rooted at the virtual single input row.
func buildStageChain(ec *execCtx, stages []Stage, input iter) iter {
	root := input
	for _, st := range stages {
		it := st.newIter(ec, root)
		if ec.prof != nil {
			it = ec.prof.wrap(st, it, root)
		}
		root = it
	}
	return root
}

// onceIter emits the single virtual input row.
type onceIter struct{ done bool }

func (o *onceIter) next() (bool, error) {
	if o.done {
		return false, nil
	}
	o.done = true
	return true, nil
}

func evalPreds(preds []Expr, b binding, ps params) (bool, error) {
	for _, p := range preds {
		v, err := evalExpr(p, b, ps)
		if err != nil {
			return false, err
		}
		if !v.Truthy() {
			return false, nil
		}
	}
	return true, nil
}

// --- scan ---

type scanIter struct {
	ec        *execCtx
	st        *ScanStage
	input     iter // nil for the first stage (single virtual input row)
	started   bool
	active    bool
	fetched   bool // ids loaded once; the access path is constant per query
	ids       []graph.NodeID
	i         int
	boundCand *graph.Node // AccessBound: the single candidate
	set       bool        // we bound Node.Var on the last emitted row
	// Partitioned scan: par holds the IDs of the pattern- and
	// filter-accepted nodes, pre-filtered across workers and merged in
	// ID order; emission re-fetches each node just like the sequential
	// path, so output is byte-identical and the retained buffer is only
	// IDs — strictly smaller than the candidate list the scan already
	// holds, so budget behavior matches the sequential scan exactly.
	// Only used when the planner marked the stage Parallel (root of the
	// pipeline, large scan).
	par    []graph.NodeID
	usePar bool
	parErr error
}

// runParallelScan partitions the ID list across workers, each applying
// the node pattern and the pushed-down filters against a private
// binding, and concatenates the accepted IDs in partition (= ID)
// order. Errors are reported from the lowest partition — the same error
// the sequential scan would have hit first. The stage is only marked
// Parallel when it is the pipeline's root, so the filters can reference
// no variable but the scan's own.
func (s *scanIter) runParallelScan(ids []graph.NodeID) ([]graph.NodeID, error) {
	ec := s.ec
	workers := ec.e.scanWorkers()
	if workers > len(ids)/parallelScanMinRows+1 {
		workers = len(ids)/parallelScanMinRows + 1
	}
	filter := func(part []graph.NodeID) ([]graph.NodeID, error) {
		b := binding{}
		var out []graph.NodeID
		for _, id := range part {
			n := ec.e.view.Node(id)
			if n == nil || !nodeMatches(s.st.Node, n, ec.ps) {
				continue
			}
			b[s.st.Node.Var] = NodeValue(n)
			ok, err := evalPreds(s.st.Filters, b, ec.ps)
			delete(b, s.st.Node.Var)
			if err != nil {
				return out, err
			}
			if ok {
				out = append(out, id)
			}
		}
		return out, nil
	}
	if workers <= 1 {
		return filter(ids)
	}
	chunk := (len(ids) + workers - 1) / workers
	results := make([][]graph.NodeID, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w int, part []graph.NodeID) {
			defer wg.Done()
			results[w], errs[w] = filter(part)
		}(w, ids[lo:hi])
	}
	wg.Wait()
	var out []graph.NodeID
	for w := 0; w < workers; w++ {
		out = append(out, results[w]...)
		if errs[w] != nil {
			// Deterministic: the first error in ID order, exactly where
			// the sequential scan would have stopped.
			return nil, errs[w]
		}
	}
	return out, nil
}

func (s *scanIter) fetchIDs() []graph.NodeID {
	st := s.ec.e.view
	// Parameter-valued seeks resolve their key at execution time; the
	// access path itself was chosen at plan time and is shared by every
	// binding. A non-string value can never equal a node name or
	// attribute, so the seek is empty.
	name := s.st.Name
	if s.st.NameParam != "" {
		v, ok := s.ec.ps.get(s.st.NameParam)
		if !ok || v.Kind != KindString {
			return nil
		}
		name = v.Str
	}
	attrVal := s.st.AttrVal
	if s.st.AttrParam != "" {
		v, ok := s.ec.ps.get(s.st.AttrParam)
		if !ok || v.Kind != KindString {
			return nil
		}
		attrVal = v.Str
	}
	switch s.st.Access {
	case AccessLabel:
		return st.NodeIDsByType(s.st.Label)
	case AccessName:
		return st.NodeIDsByName(name)
	case AccessLabelName:
		if n := st.FindNode(s.st.Label, name); n != nil {
			return []graph.NodeID{n.ID}
		}
		return nil
	case AccessAttr:
		return st.NodeIDsByAttr(s.st.AttrKey, attrVal)
	case AccessLabelAttr:
		return st.NodeIDsByTypeAttr(s.st.Label, s.st.AttrKey, attrVal)
	}
	return st.AllNodeIDs()
}

func (s *scanIter) next() (bool, error) {
	ec := s.ec
	np := s.st.Node
	for {
		if !s.active {
			if s.input == nil {
				if s.started {
					return false, nil
				}
				s.started = true
			} else {
				ok, err := s.input.next()
				if err != nil || !ok {
					return false, err
				}
			}
			s.active = true
			s.i = 0
			s.boundCand = nil
			if s.st.Access == AccessBound {
				if v, ok := ec.b[np.Var]; ok && v.Kind == KindNode {
					s.boundCand = v.Node
				}
			} else if !s.fetched {
				if ec.cacheScans {
					s.ids = ec.fetchScanIDs(s)
				} else {
					s.ids = s.fetchIDs()
				}
				// ScanWorkers: 1 is the documented escape hatch back to the
				// streaming scan; the materializing path only engages when
				// more than one worker can actually run.
				if s.st.Parallel && s.input == nil && len(s.ids) >= parallelScanMinRows &&
					ec.e.scanWorkers() > 1 {
					s.usePar = true
					s.par, s.parErr = s.runParallelScan(s.ids)
				}
				s.fetched = true
			}
			if s.parErr != nil {
				return false, s.parErr
			}
		}
		if s.set {
			delete(ec.b, np.Var)
			s.set = false
		}
		if s.usePar {
			// Pattern and filters were already applied by the workers;
			// emission re-fetches by ID like the sequential path.
			for s.i < len(s.par) {
				n := ec.e.view.Node(s.par[s.i])
				s.i++
				if n == nil {
					continue
				}
				ec.b[np.Var] = NodeValue(n)
				s.set = true
				return true, nil
			}
			s.active = false
			continue
		}
		for {
			var n *graph.Node
			if s.st.Access == AccessBound {
				if s.boundCand == nil {
					break
				}
				n, s.boundCand = s.boundCand, nil
			} else {
				if s.i >= len(s.ids) {
					break
				}
				n = ec.e.view.Node(s.ids[s.i])
				s.i++
				if n == nil {
					continue
				}
			}
			if !nodeMatches(np, n, ec.ps) {
				continue
			}
			if s.st.Access != AccessBound {
				if prev, bound := ec.b[np.Var]; bound {
					if prev.Kind != KindNode || prev.Node.ID != n.ID {
						continue
					}
				} else {
					ec.b[np.Var] = NodeValue(n)
					s.set = true
				}
			}
			ok, err := evalPreds(s.st.Filters, ec.b, ec.ps)
			if err != nil {
				return false, err
			}
			if !ok {
				if s.set {
					delete(ec.b, np.Var)
					s.set = false
				}
				continue
			}
			return true, nil
		}
		s.active = false
	}
}

// --- expand ---

type expandIter struct {
	ec     *execCtx
	st     *ExpandStage
	input  iter
	active bool
	// inc is the reusable incidence buffer: one IncidentEdges call per
	// input row, no per-edge record fetches. The edge record itself is
	// only materialized (store.Edge) when a user-named edge variable
	// must be bound; synthetic "$" variables skip binding entirely —
	// nothing can reference them.
	inc     []graph.IncidentEdge
	ei      int
	synth   bool // st.Edge.Var is planner-synthesized, never bound/read
	setEdge bool
	setNode bool
}

// expandDirs maps an edge pattern direction onto store traversal
// directions from the expansion's starting endpoint. Reverse means the
// chain is being walked right-to-left, flipping the arrow. (Used by the
// legacy matcher; the streaming iterators use expandDir + IncidentEdges,
// whose Both iteration is the same out-block-then-in-block order.)
func expandDirs(d EdgeDir, reverse bool) []graph.Direction {
	switch d {
	case DirRight:
		if reverse {
			return []graph.Direction{graph.In}
		}
		return []graph.Direction{graph.Out}
	case DirLeft:
		if reverse {
			return []graph.Direction{graph.Out}
		}
		return []graph.Direction{graph.In}
	}
	return []graph.Direction{graph.Out, graph.In}
}

// expandDir is expandDirs collapsed to the single direction value the
// CSR incidence iterator traverses natively.
func expandDir(d EdgeDir, reverse bool) graph.Direction {
	switch d {
	case DirRight:
		if reverse {
			return graph.In
		}
		return graph.Out
	case DirLeft:
		if reverse {
			return graph.Out
		}
		return graph.In
	}
	return graph.Both
}

func (x *expandIter) undo() {
	if x.setEdge {
		delete(x.ec.b, x.st.Edge.Var)
		x.setEdge = false
	}
	if x.setNode {
		delete(x.ec.b, x.st.To.Var)
		x.setNode = false
	}
}

func (x *expandIter) next() (bool, error) {
	ec := x.ec
	st := x.st
	for {
		if !x.active {
			ok, err := x.input.next()
			if err != nil || !ok {
				return false, err
			}
			v, ok := ec.b[st.From]
			if !ok || v.Kind != KindNode {
				continue // non-node binding (e.g. optional null): no expansion
			}
			x.inc = ec.e.view.IncidentEdges(x.inc[:0], v.Node.ID,
				expandDir(st.Edge.Dir, st.Reverse), st.Edge.Type)
			x.ei = 0
			x.synth = strings.HasPrefix(st.Edge.Var, "$")
			x.active = true
		}
		x.undo()
		for x.ei < len(x.inc) {
			he := x.inc[x.ei]
			x.ei++
			other := ec.e.view.Node(he.Other)
			if other == nil {
				continue
			}
			if !x.synth {
				if prev, bound := ec.b[st.Edge.Var]; bound {
					if prev.Kind != KindEdge || prev.Edge.ID != he.ID {
						continue
					}
				} else if ed := ec.e.view.Edge(he.ID); ed != nil {
					ec.b[st.Edge.Var] = EdgeValue(ed)
					x.setEdge = true
				} else {
					continue
				}
			}
			if !nodeMatches(st.To, other, ec.ps) {
				x.undo()
				continue
			}
			if prev, bound := ec.b[st.To.Var]; bound {
				if prev.Kind != KindNode || prev.Node.ID != other.ID {
					x.undo()
					continue
				}
			} else {
				ec.b[st.To.Var] = NodeValue(other)
				x.setNode = true
			}
			ok, err := evalPreds(st.Filters, ec.b, ec.ps)
			if err != nil {
				return false, err
			}
			if !ok {
				x.undo()
				continue
			}
			return true, nil
		}
		x.active = false
	}
}

// --- variable-length expand ---

// varExpandIter streams the bounded BFS of a variable-length pattern:
// for every input row it computes the set of nodes whose shortest
// distance from the anchor lies within the hop range (bfsTargets, shared
// with the legacy matcher) and binds the target variable once per
// distinct endpoint.
type varExpandIter struct {
	ec      *execCtx
	st      *VarExpandStage
	input   iter
	active  bool
	targets []graph.NodeID
	ti      int
	set     bool
}

func (x *varExpandIter) next() (bool, error) {
	ec := x.ec
	st := x.st
	for {
		if !x.active {
			ok, err := x.input.next()
			if err != nil || !ok {
				return false, err
			}
			v, ok := ec.b[st.From]
			if !ok || v.Kind != KindNode {
				continue // non-node binding (e.g. optional null): nothing reachable
			}
			x.targets = ec.e.bfsTargets(v.Node.ID, st.Edge, st.Reverse)
			x.ti = 0
			x.active = true
		}
		if x.set {
			delete(ec.b, st.To.Var)
			x.set = false
		}
		for x.ti < len(x.targets) {
			n := ec.e.view.Node(x.targets[x.ti])
			x.ti++
			if n == nil || !nodeMatches(st.To, n, ec.ps) {
				continue
			}
			if prev, bound := ec.b[st.To.Var]; bound {
				if prev.Kind != KindNode || prev.Node.ID != n.ID {
					continue
				}
			} else {
				ec.b[st.To.Var] = NodeValue(n)
				x.set = true
			}
			ok, err := evalPreds(st.Filters, ec.b, ec.ps)
			if err != nil {
				return false, err
			}
			if !ok {
				if x.set {
					delete(ec.b, st.To.Var)
					x.set = false
				}
				continue
			}
			return true, nil
		}
		x.active = false
	}
}

// --- hash join ---

// joinKey evaluates the key expressions against a binding and renders
// them as one hashable string. ok=false when any component is null: a
// null key can never satisfy the equality the join implements, so the
// row is dropped exactly as the predicate filter would have dropped it.
func joinKey(keys []Expr, b binding, ps params) (string, bool, error) {
	var sb strings.Builder
	for i, k := range keys {
		v, err := evalExpr(k, b, ps)
		if err != nil {
			return "", false, err
		}
		if v.Kind == KindNull {
			return "", false, nil
		}
		if i > 0 {
			sb.WriteByte(0)
		}
		sb.WriteString(v.key())
	}
	return sb.String(), true, nil
}

// hashJoinIter executes a HashJoinStage. Build-side rows are charged to
// the query's byte budget as they are retained — the hash table is the
// stage's one materialization point. Bucket contents keep insertion
// order and the chain enumerates deterministically, so output order is
// byte-stable across runs.
type hashJoinIter struct {
	ec      *execCtx
	st      *HashJoinStage
	input   iter
	started bool

	// build=chain mode: chain rows hashed, input rows probe.
	buckets   map[string][][]Value
	matches   [][]Value
	mi        int
	installed bool

	// build=input mode: input rows hashed, chain streams as probe.
	inBuckets map[string][]binding
	chain     iter
	chainB    binding
	inMatches []binding
	imi       int
	merged    binding  // bucket row currently extended with chain vars
	mergedSet []string // chain vars installed into merged (for undo)
}

func (h *hashJoinIter) undo() {
	if h.installed {
		for _, v := range h.st.BuildVars {
			delete(h.ec.b, v)
		}
		h.installed = false
	}
}

func (h *hashJoinIter) next() (bool, error) {
	if h.st.BuildInput {
		return h.nextBuildInput()
	}
	ec := h.ec
	if !h.started {
		h.started = true
		h.buckets = map[string][][]Value{}
		// The build sub-pipeline runs once in its own binding namespace;
		// it shares the engine, parameters and byte budget.
		bec := &execCtx{e: ec.e, b: binding{}, ps: ec.ps, bud: ec.bud, prof: ec.prof}
		chain := buildStageChain(bec, h.st.Build, nil)
		for {
			ok, err := chain.next()
			if err != nil {
				return false, err
			}
			if !ok {
				break
			}
			key, ok, err := joinKey(h.st.BuildKeys, bec.b, ec.ps)
			if err != nil {
				return false, err
			}
			if !ok {
				continue
			}
			row := make([]Value, len(h.st.BuildVars))
			for i, v := range h.st.BuildVars {
				row[i] = bec.b[v]
			}
			if err := ec.bud.charge(24 + len(key) + rowBytes(row)); err != nil {
				return false, err
			}
			h.buckets[key] = append(h.buckets[key], row)
		}
	}
	for {
		h.undo()
		for h.mi < len(h.matches) {
			row := h.matches[h.mi]
			h.mi++
			for i, v := range h.st.BuildVars {
				ec.b[v] = row[i]
			}
			h.installed = true
			ok, err := evalPreds(h.st.Filters, ec.b, ec.ps)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
			h.undo()
		}
		ok, err := h.input.next()
		if err != nil || !ok {
			return false, err
		}
		key, ok, err := joinKey(h.st.ProbeKeys, ec.b, ec.ps)
		if err != nil {
			return false, err
		}
		if !ok {
			continue
		}
		h.matches, h.mi = h.buckets[key], 0
	}
}

// nextBuildInput is the flipped mode: the incoming rows are the cheaper
// side, so they are drained into the hash table and the chain streams
// as the probe. The segment binding is swapped wholesale per emitted
// row (the same technique mutationIter uses to re-stream buffered rows).
func (h *hashJoinIter) nextBuildInput() (bool, error) {
	ec := h.ec
	if !h.started {
		h.started = true
		h.inBuckets = map[string][]binding{}
		for {
			ok, err := h.input.next()
			if err != nil {
				return false, err
			}
			if !ok {
				break
			}
			key, ok, err := joinKey(h.st.ProbeKeys, ec.b, ec.ps)
			if err != nil {
				return false, err
			}
			if !ok {
				continue
			}
			if err := ec.bud.charge(bindingBytes(ec.b)); err != nil {
				return false, err
			}
			h.inBuckets[key] = append(h.inBuckets[key], ec.b.clone())
		}
		h.chainB = binding{}
		ec.b = h.chainB
		h.chain = buildStageChain(ec, h.st.Build, nil)
	}
	for {
		// Restore the previously emitted bucket row before reusing it (or
		// any other) — the same install/undo discipline the build=chain
		// mode applies to the shared binding, so no per-row clones.
		if h.merged != nil {
			for _, v := range h.mergedSet {
				delete(h.merged, v)
			}
			h.merged, h.mergedSet = nil, h.mergedSet[:0]
		}
		if h.imi < len(h.inMatches) {
			outer := h.inMatches[h.imi]
			h.imi++
			// BuildVars are disjoint from every probe row's keys (bound
			// and synthetic vars are excluded at plan time), so installing
			// into the bucket row cannot shadow anything.
			for _, v := range h.st.BuildVars {
				if val, ok := h.chainB[v]; ok {
					outer[v] = val
					h.mergedSet = append(h.mergedSet, v)
				}
			}
			h.merged = outer
			ec.b = outer
			ok, err := evalPreds(h.st.Filters, ec.b, ec.ps)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
			continue
		}
		ec.b = h.chainB
		ok, err := h.chain.next()
		if err != nil || !ok {
			return false, err
		}
		key, ok, err := joinKey(h.st.BuildKeys, h.chainB, ec.ps)
		if err != nil {
			return false, err
		}
		if !ok {
			continue
		}
		h.inMatches, h.imi = h.inBuckets[key], 0
	}
}

// --- bidirectional (counted) expand ---

// biExpandIter executes a BiExpandStage: per input row it runs a counted
// frontier expansion — each BFS level maps node → number of walks
// reaching it, so multiplicities collapse level by level instead of
// being enumerated path by path. With the far endpoint already bound it
// expands from both ends and intersects the counts at the middle level;
// otherwise it streams the final level in node-ID order (deterministic),
// emitting each row once per walk so the output multiset is exactly the
// nested Expand chain's.
type biExpandIter struct {
	ec    *execCtx
	st    *BiExpandStage
	input iter

	active    bool
	remaining int // duplicate emissions left for the current row
	ids       []graph.NodeID
	counts    map[graph.NodeID]int
	i         int
	set       bool
	inc       []graph.IncidentEdge // reusable incidence buffer
}

// stepCounts advances one counted BFS level across one hop: every walk
// count flows along each matching edge, landing only on nodes that
// match the hop's target pattern.
func (x *biExpandIter) stepCounts(cur map[graph.NodeID]int, edge EdgePattern, to NodePattern, reverse bool) map[graph.NodeID]int {
	ec := x.ec
	next := map[graph.NodeID]int{}
	dir := expandDir(edge.Dir, reverse)
	for id, c := range cur {
		x.inc = ec.e.view.IncidentEdges(x.inc[:0], id, dir, edge.Type)
		for _, he := range x.inc {
			otherID := he.Other
			if _, seen := next[otherID]; !seen {
				n := ec.e.view.Node(otherID)
				if n == nil || !nodeMatches(to, n, ec.ps) {
					next[otherID] = -1 // rejected: cached so we match each node once
					continue
				}
				next[otherID] = 0
			}
			if next[otherID] >= 0 {
				next[otherID] += c
			}
		}
	}
	for id, c := range next {
		if c <= 0 {
			delete(next, id)
		}
	}
	return next
}

// forwardCounts runs the counted expansion over hops[0:n].
func (x *biExpandIter) forwardCounts(from graph.NodeID, hops []BiHop) map[graph.NodeID]int {
	cur := map[graph.NodeID]int{from: 1}
	for _, h := range hops {
		if len(cur) == 0 {
			return cur
		}
		cur = x.stepCounts(cur, h.Edge, h.To, h.Reverse)
	}
	return cur
}

// meetCount counts the walks from `from` to the bound node `to`:
// forward over the first half of the hops, backward (directions
// flipped) over the second half, then the dot product of the two count
// maps over the middle frontier.
func (x *biExpandIter) meetCount(from, to graph.NodeID) int {
	hops := x.st.Hops
	l := len(hops) / 2
	fwd := x.forwardCounts(from, hops[:l])
	if len(fwd) == 0 {
		return 0
	}
	bwd := map[graph.NodeID]int{to: 1}
	for j := len(hops) - 1; j >= l; j-- {
		if len(bwd) == 0 {
			return 0
		}
		// Walking hop j from its target back to its source: flip the
		// orientation; the landing nodes are hop j-1's targets.
		bwd = x.stepCounts(bwd, hops[j].Edge, hops[j-1].To, !hops[j].Reverse)
	}
	total := 0
	for id, c := range fwd {
		total += c * bwd[id]
	}
	return total
}

func (x *biExpandIter) clear() {
	if x.set {
		delete(x.ec.b, x.st.toPattern().Var)
		x.set = false
	}
}

func (x *biExpandIter) next() (bool, error) {
	ec := x.ec
	to := x.st.toPattern()
	for {
		if x.remaining > 0 {
			x.remaining--
			return true, nil
		}
		if !x.active {
			x.clear()
			ok, err := x.input.next()
			if err != nil || !ok {
				return false, err
			}
			v, ok := ec.b[x.st.From]
			if !ok || v.Kind != KindNode {
				continue // non-node binding (e.g. optional null): no walks
			}
			if prev, bound := ec.b[to.Var]; bound {
				// Far endpoint already bound: meet in the middle.
				if prev.Kind != KindNode || !nodeMatches(to, prev.Node, ec.ps) {
					continue
				}
				c := x.meetCount(v.Node.ID, prev.Node.ID)
				if c == 0 {
					continue
				}
				ok, err := evalPreds(x.st.Filters, ec.b, ec.ps)
				if err != nil {
					return false, err
				}
				if !ok {
					continue
				}
				x.remaining = c
				continue
			}
			x.counts = x.forwardCounts(v.Node.ID, x.st.Hops)
			x.ids = x.ids[:0]
			for id := range x.counts {
				x.ids = append(x.ids, id)
			}
			sort.Slice(x.ids, func(i, j int) bool { return x.ids[i] < x.ids[j] })
			x.i = 0
			x.active = true
		}
		x.clear()
		for x.i < len(x.ids) {
			id := x.ids[x.i]
			x.i++
			n := ec.e.view.Node(id)
			if n == nil {
				continue
			}
			ec.b[to.Var] = NodeValue(n)
			x.set = true
			ok, err := evalPreds(x.st.Filters, ec.b, ec.ps)
			if err != nil {
				return false, err
			}
			if !ok {
				x.clear()
				continue
			}
			x.remaining = x.counts[id] - 1
			return true, nil
		}
		x.active = false
	}
}

// --- optional ---

// optionalIter runs the optional sub-pipeline once per input row. Rows
// with at least one extension stream each of them; rows with none pass
// through once with the sub-pipeline's variables bound to null. The
// inner iterator chain is rebuilt per input row (stage state is cheap)
// and shares the segment's binding, so anchored scans and expands read
// the outer row's variables directly.
type optionalIter struct {
	ec      *execCtx
	st      *OptionalStage
	input   iter
	inner   iter
	matched bool
	padded  bool
}

func (o *optionalIter) clearPad() {
	if o.padded {
		for _, v := range o.st.Vars {
			delete(o.ec.b, v)
		}
		o.padded = false
	}
}

func (o *optionalIter) next() (bool, error) {
	for {
		if o.inner == nil {
			o.clearPad()
			ok, err := o.input.next()
			if err != nil || !ok {
				return false, err
			}
			o.inner = buildStageChain(o.ec, o.st.Inner, nil)
			o.matched = false
		}
		ok, err := o.inner.next()
		if err != nil {
			return false, err
		}
		if ok {
			o.matched = true
			return true, nil
		}
		o.inner = nil
		if !o.matched {
			for _, v := range o.st.Vars {
				o.ec.b[v] = NullValue()
			}
			o.padded = true
			return true, nil
		}
	}
}

// --- unwind ---

// unwindIter evaluates the UNWIND expression once per input row and
// streams its elements one at a time, binding each to Alias with the
// same install/undo discipline the expand iterators use. Null unwinds
// to zero rows; a non-list value unwinds to itself (one row). It never
// materializes more than the already-evaluated list, so a 10k-row
// $batch flows element by element into the eager MutationStage.
type unwindIter struct {
	ec     *execCtx
	st     *UnwindStage
	input  iter
	active bool
	list   []Value
	one    [1]Value // non-list backing: avoids a per-row allocation
	i      int
	set    bool
}

func (u *unwindIter) next() (bool, error) {
	ec := u.ec
	for {
		if !u.active {
			if u.set {
				delete(ec.b, u.st.Alias)
				u.set = false
			}
			ok, err := u.input.next()
			if err != nil || !ok {
				return false, err
			}
			v, err := evalExpr(u.st.Expr, ec.b, ec.ps)
			if err != nil {
				return false, err
			}
			switch v.Kind {
			case KindNull:
				continue
			case KindList:
				u.list = v.List
			default:
				u.one[0] = v
				u.list = u.one[:]
			}
			u.i = 0
			u.active = true
		}
		if u.set {
			delete(ec.b, u.st.Alias)
			u.set = false
		}
		if u.i < len(u.list) {
			ec.b[u.st.Alias] = u.list[u.i]
			u.i++
			u.set = true
			return true, nil
		}
		u.active = false
	}
}

// --- mutation (eager write barrier) ---

// mutationIter applies a part's writing clauses: on the first pull it
// drains its entire input, cloning each row (charged to the byte
// budget), applies the writes once per buffered row in input order —
// all mutations complete before the first row leaves the stage — then
// re-streams the rows by installing each buffered (and write-extended)
// binding as the segment's current row. The input is nil for a
// write-only query rooted at the single virtual row.
type mutationIter struct {
	ec      *execCtx
	st      *MutationStage
	input   iter
	started bool
	buf     []binding
	i       int
}

func (m *mutationIter) next() (bool, error) {
	ec := m.ec
	if !m.started {
		m.started = true
		if m.input == nil {
			m.buf = append(m.buf, ec.b.clone())
		} else {
			for {
				ok, err := m.input.next()
				if err != nil {
					return false, err
				}
				if !ok {
					break
				}
				if err := ec.bud.charge(bindingBytes(ec.b)); err != nil {
					return false, err
				}
				m.buf = append(m.buf, ec.b.clone())
			}
		}
		for _, b := range m.buf {
			if err := ec.e.applyWrites(m.st.Writes, b, ec.ps, ec.writes); err != nil {
				return false, err
			}
		}
	}
	if m.i >= len(m.buf) {
		return false, nil
	}
	ec.b = m.buf[m.i]
	m.i++
	return true, nil
}

// --- WITH segment bridge ---

// withIter bridges two pipeline segments: it pulls the upstream
// segment's rows, projects them through the WITH items (aggregating or
// deduplicating when asked), applies the post-WITH WHERE filter, and
// re-roots the downstream segment's binding namespace to exactly the
// projected aliases. Non-aggregating bridges stream row by row, so a
// downstream LIMIT still stops upstream matching early; aggregating
// bridges materialize their group table on first pull, charging the
// query's byte budget for every row consumed and every row projected.
type withIter struct {
	srcEC *execCtx
	dstEC *execCtx
	seg   *PlanSegment
	src   iter

	seen    map[string]bool // DISTINCT
	buf     [][]Value       // aggregate groups
	bi      int
	started bool
}

// emit installs a projected row as the downstream binding and applies
// the WITH ... WHERE filter.
func (w *withIter) emit(row []Value) (bool, error) {
	for i, it := range w.seg.Items {
		w.dstEC.b[it.Alias] = row[i]
	}
	if w.seg.Filter != nil {
		v, err := evalExpr(w.seg.Filter, w.dstEC.b, w.dstEC.ps)
		if err != nil {
			return false, err
		}
		if !v.Truthy() {
			return false, nil
		}
	}
	return true, nil
}

func (w *withIter) next() (bool, error) {
	if w.seg.HasAggregate {
		if !w.started {
			w.started = true
			res := &Result{}
			if err := aggregateRows(w.seg.Items, res, func() (binding, error) {
				ok, err := w.src.next()
				if err != nil || !ok {
					return nil, err
				}
				if err := w.srcEC.bud.charge(aggRowCost); err != nil {
					return nil, err
				}
				return w.srcEC.b, nil
			}, w.srcEC.ps); err != nil {
				return false, err
			}
			w.buf = res.Rows
		}
		for w.bi < len(w.buf) {
			row := w.buf[w.bi]
			w.bi++
			ok, err := w.emit(row)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	for {
		ok, err := w.src.next()
		if err != nil || !ok {
			return false, err
		}
		row, err := projectRow(w.seg.Items, w.srcEC.b, w.srcEC.ps)
		if err != nil {
			return false, err
		}
		if err := w.srcEC.bud.charge(rowBytes(row)); err != nil {
			return false, err
		}
		if w.seen != nil {
			k := rowKey(row)
			if w.seen[k] {
				continue
			}
			w.seen[k] = true
		}
		ok, err = w.emit(row)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
}

// --- plan execution ---

// runPlanned plans and executes q through the streaming pipeline,
// materializing the cursor (Engine.Query's MaxRows semantics).
func (e *Engine) runPlanned(q *Query, ps params) (*Result, error) {
	pl, err := e.planQuery(q)
	if err != nil {
		return nil, err
	}
	if q.Explain {
		if q.Analyze {
			return e.analyzeResult(pl, ps)
		}
		return explainResult(pl), nil
	}
	rows, err := e.rowsForPlan(pl, ps)
	if err != nil {
		return nil, err
	}
	return materialize(rows, e.opts.MaxRows)
}

func explainResult(pl *Plan) *Result {
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimSuffix(pl.String(), "\n"), "\n") {
		res.Rows = append(res.Rows, []Value{StringValue(line)})
	}
	return res
}
