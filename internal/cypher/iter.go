package cypher

import (
	"strings"

	"securitykg/internal/graph"
)

// The executor runs plans as lazy pull-based iterators (Volcano style,
// but with a single shared binding mutated in place and undone on
// backtrack instead of cloned per level). Each stage's iterator pulls
// from its input only when it needs another row, so LIMIT, MaxRows and
// aggregate early exits stop pattern matching upstream instead of
// truncating a fully-materialized match set.

// iter advances the shared binding to the next complete extension.
type iter interface {
	next() (bool, error)
}

// execCtx is the shared execution state: the engine and the one binding
// all stage iterators extend and unwind.
type execCtx struct {
	e *Engine
	b binding
}

func (s *ScanStage) newIter(ec *execCtx, input iter) iter {
	return &scanIter{ec: ec, st: s, input: input}
}

func (s *ExpandStage) newIter(ec *execCtx, input iter) iter {
	return &expandIter{ec: ec, st: s, input: input}
}

func evalPreds(preds []Expr, b binding) (bool, error) {
	for _, p := range preds {
		v, err := evalExpr(p, b)
		if err != nil {
			return false, err
		}
		if !v.Truthy() {
			return false, nil
		}
	}
	return true, nil
}

// --- scan ---

type scanIter struct {
	ec        *execCtx
	st        *ScanStage
	input     iter // nil for the first stage (single virtual input row)
	started   bool
	active    bool
	fetched   bool // ids loaded once; the access path is constant per query
	ids       []graph.NodeID
	i         int
	boundCand *graph.Node // AccessBound: the single candidate
	set       bool        // we bound Node.Var on the last emitted row
}

func (s *scanIter) fetchIDs() []graph.NodeID {
	st := s.ec.e.store
	switch s.st.Access {
	case AccessLabel:
		return st.NodeIDsByType(s.st.Label)
	case AccessName:
		return st.NodeIDsByName(s.st.Name)
	case AccessLabelName:
		if n := st.FindNode(s.st.Label, s.st.Name); n != nil {
			return []graph.NodeID{n.ID}
		}
		return nil
	case AccessAttr:
		return st.NodeIDsByAttr(s.st.AttrKey, s.st.AttrVal)
	case AccessLabelAttr:
		return st.NodeIDsByTypeAttr(s.st.Label, s.st.AttrKey, s.st.AttrVal)
	}
	return st.AllNodeIDs()
}

func (s *scanIter) next() (bool, error) {
	ec := s.ec
	np := s.st.Node
	for {
		if !s.active {
			if s.input == nil {
				if s.started {
					return false, nil
				}
				s.started = true
			} else {
				ok, err := s.input.next()
				if err != nil || !ok {
					return false, err
				}
			}
			s.active = true
			s.i = 0
			s.boundCand = nil
			if s.st.Access == AccessBound {
				if v, ok := ec.b[np.Var]; ok && v.Kind == KindNode {
					s.boundCand = v.Node
				}
			} else if !s.fetched {
				s.ids = s.fetchIDs()
				s.fetched = true
			}
		}
		if s.set {
			delete(ec.b, np.Var)
			s.set = false
		}
		for {
			var n *graph.Node
			if s.st.Access == AccessBound {
				if s.boundCand == nil {
					break
				}
				n, s.boundCand = s.boundCand, nil
			} else {
				if s.i >= len(s.ids) {
					break
				}
				n = ec.e.store.Node(s.ids[s.i])
				s.i++
				if n == nil {
					continue
				}
			}
			if !nodeMatches(np, n) {
				continue
			}
			if s.st.Access != AccessBound {
				if prev, bound := ec.b[np.Var]; bound {
					if prev.Kind != KindNode || prev.Node.ID != n.ID {
						continue
					}
				} else {
					ec.b[np.Var] = NodeValue(n)
					s.set = true
				}
			}
			ok, err := evalPreds(s.st.Filters, ec.b)
			if err != nil {
				return false, err
			}
			if !ok {
				if s.set {
					delete(ec.b, np.Var)
					s.set = false
				}
				continue
			}
			return true, nil
		}
		s.active = false
	}
}

// --- expand ---

type expandIter struct {
	ec      *execCtx
	st      *ExpandStage
	input   iter
	active  bool
	fromID  graph.NodeID
	dirs    []graph.Direction
	di      int
	edges   []*graph.Edge
	ei      int
	setEdge bool
	setNode bool
}

// expandDirs maps an edge pattern direction onto store traversal
// directions from the expansion's starting endpoint. Reverse means the
// chain is being walked right-to-left, flipping the arrow.
func expandDirs(d EdgeDir, reverse bool) []graph.Direction {
	switch d {
	case DirRight:
		if reverse {
			return []graph.Direction{graph.In}
		}
		return []graph.Direction{graph.Out}
	case DirLeft:
		if reverse {
			return []graph.Direction{graph.Out}
		}
		return []graph.Direction{graph.In}
	}
	return []graph.Direction{graph.Out, graph.In}
}

func (x *expandIter) undo() {
	if x.setEdge {
		delete(x.ec.b, x.st.Edge.Var)
		x.setEdge = false
	}
	if x.setNode {
		delete(x.ec.b, x.st.To.Var)
		x.setNode = false
	}
}

func (x *expandIter) next() (bool, error) {
	ec := x.ec
	st := x.st
	for {
		if !x.active {
			ok, err := x.input.next()
			if err != nil || !ok {
				return false, err
			}
			v, ok := ec.b[st.From]
			if !ok || v.Kind != KindNode {
				continue // non-node binding: no expansion from it
			}
			x.fromID = v.Node.ID
			x.dirs = expandDirs(st.Edge.Dir, st.Reverse)
			x.di = 0
			x.edges = ec.e.store.Edges(x.fromID, x.dirs[0])
			x.ei = 0
			x.active = true
		}
		x.undo()
		for {
			if x.ei >= len(x.edges) {
				x.di++
				if x.di >= len(x.dirs) {
					break
				}
				x.edges = ec.e.store.Edges(x.fromID, x.dirs[x.di])
				x.ei = 0
				continue
			}
			ed := x.edges[x.ei]
			x.ei++
			if st.Edge.Type != "" && ed.Type != st.Edge.Type {
				continue
			}
			otherID := ed.To
			if x.dirs[x.di] == graph.In {
				otherID = ed.From
			}
			other := ec.e.store.Node(otherID)
			if other == nil {
				continue
			}
			if prev, bound := ec.b[st.Edge.Var]; bound {
				if prev.Kind != KindEdge || prev.Edge.ID != ed.ID {
					continue
				}
			} else {
				ec.b[st.Edge.Var] = EdgeValue(ed)
				x.setEdge = true
			}
			if !nodeMatches(st.To, other) {
				x.undo()
				continue
			}
			if prev, bound := ec.b[st.To.Var]; bound {
				if prev.Kind != KindNode || prev.Node.ID != other.ID {
					x.undo()
					continue
				}
			} else {
				ec.b[st.To.Var] = NodeValue(other)
				x.setNode = true
			}
			ok, err := evalPreds(st.Filters, ec.b)
			if err != nil {
				return false, err
			}
			if !ok {
				x.undo()
				continue
			}
			return true, nil
		}
		x.active = false
	}
}

// --- plan execution ---

// runPlanned plans and executes q through the streaming pipeline.
func (e *Engine) runPlanned(q *Query) (*Result, error) {
	pl, err := e.planQuery(q)
	if err != nil {
		return nil, err
	}
	if q.Explain {
		return explainResult(pl), nil
	}
	return e.execPlan(pl)
}

// execPlan executes a (possibly cached) plan through the streaming
// iterator pipeline.
func (e *Engine) execPlan(pl *Plan) (*Result, error) {
	res := &Result{}
	for _, it := range pl.Returns {
		res.Columns = append(res.Columns, it.Alias)
	}
	keyCols, err := orderKeyColumns(pl.OrderBy, res.Columns)
	if err != nil {
		return nil, err
	}

	ec := &execCtx{e: e, b: binding{}}
	var root iter
	for _, st := range pl.Stages {
		root = st.newIter(ec, root)
	}

	// matchCap bounds total enumeration on the paths that cannot
	// short-circuit (aggregation, sorting) — the same MaxRows*4+1000
	// slack the legacy matcher applied to its match set.
	matchCap := -1
	if e.opts.MaxRows > 0 {
		matchCap = e.opts.MaxRows*4 + 1000
	}

	if pl.HasAggregate {
		consumed := 0
		if err := aggregateRows(pl.Returns, res, func() (binding, error) {
			if matchCap >= 0 && consumed >= matchCap {
				res.Truncated = true
				return nil, nil
			}
			ok, err := root.next()
			if err != nil || !ok {
				return nil, err
			}
			consumed++
			return ec.b, nil
		}); err != nil {
			return nil, err
		}
		finishRows(pl.OrderBy, pl.Skip, pl.Limit, res, keyCols, e.opts.MaxRows)
		return res, nil
	}

	var seen map[string]bool
	if pl.Distinct {
		seen = map[string]bool{}
	}
	// pull produces the next accepted (projected, deduplicated) row.
	pull := func() ([]Value, error) {
		for {
			ok, err := root.next()
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, nil
			}
			row, err := projectRow(pl.Returns, ec.b)
			if err != nil {
				return nil, err
			}
			if seen != nil {
				k := rowKey(row)
				if seen[k] {
					continue
				}
				seen[k] = true
			}
			return row, nil
		}
	}
	maxRows := e.opts.MaxRows

	if len(keyCols) > 0 {
		if pl.Limit >= 0 {
			// ORDER BY + LIMIT: bounded top-k. Every matched row is
			// considered, but the buffer is periodically sorted and cut to
			// the first Skip+Limit rows, so memory stays O(k) and the
			// result is the correct global top-k.
			k := pl.Skip + pl.Limit
			if k == 0 {
				return res, nil
			}
			window := 2*k + 1024
			pulled := 0
			for {
				if matchCap >= 0 && pulled >= matchCap {
					res.Truncated = true
					break
				}
				row, err := pull()
				if err != nil {
					return nil, err
				}
				if row == nil {
					break
				}
				pulled++
				res.Rows = append(res.Rows, row)
				if len(res.Rows) >= window {
					sortRows(pl.OrderBy, res.Rows, keyCols)
					res.Rows = res.Rows[:k]
				}
			}
			finishRows(pl.OrderBy, pl.Skip, pl.Limit, res, keyCols, maxRows)
			return res, nil
		}
		// ORDER BY without LIMIT needs the full row set for a correct
		// sort; matchCap bounds materialization best-effort.
		for {
			row, err := pull()
			if err != nil {
				return nil, err
			}
			if row == nil {
				break
			}
			if matchCap >= 0 && len(res.Rows) == matchCap {
				res.Truncated = true
				break
			}
			res.Rows = append(res.Rows, row)
		}
		finishRows(pl.OrderBy, pl.Skip, pl.Limit, res, keyCols, maxRows)
		return res, nil
	}

	// Streaming path: LIMIT and MaxRows short-circuit matching.
	if pl.Limit == 0 {
		return res, nil
	}
	skipped := 0
	for {
		row, err := pull()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		if skipped < pl.Skip {
			skipped++
			continue
		}
		res.Rows = append(res.Rows, row)
		if pl.Limit >= 0 && len(res.Rows) >= pl.Limit {
			break
		}
		if maxRows > 0 && len(res.Rows) >= maxRows {
			// Probe one more row so Truncated reflects dropped results.
			probe, err := pull()
			if err != nil {
				return nil, err
			}
			if probe != nil {
				res.Truncated = true
			}
			break
		}
	}
	return res, nil
}

func explainResult(pl *Plan) *Result {
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimSuffix(pl.String(), "\n"), "\n") {
		res.Rows = append(res.Rows, []Value{StringValue(line)})
	}
	return res
}
