package cypher

import (
	"fmt"
	"math"
)

// The planner turns a parsed query into a Plan in three steps:
//
//  1. Predicate pushdown: the WHERE clause is split into AND-conjuncts;
//     equality conjuncts against string literals become index hints, and
//     every conjunct is attached to the earliest pipeline stage at which
//     all of its variables are bound, so rows are discarded as soon as
//     they can be.
//  2. Greedy ordering (the "greedy beats optimal" strategy from the
//     janus-datalog line of work): among all pattern chains and all
//     possible entry nodes, repeatedly start at the node with the
//     smallest estimated candidate count — a bound variable is free, an
//     exact (label, name) seek is ~1, a label scan costs the label
//     cardinality, a full scan costs the node count — then grow the
//     chain in whichever direction has the smaller estimated fan-out
//     (average edge-type degree × target selectivity).
//  3. The resulting stages execute as lazy pull iterators (iter.go), so
//     downstream LIMIT/MaxRows stop matching instead of truncating a
//     materialized result.
//
// Statistics come from the graph store's selectivity layer (CountByType,
// CountByName, CountByTypeAttr, AvgDegree, ...), kept live by the
// indexes, so planning is O(pattern size) with O(1) stat lookups.

// planQuery builds the plan for q against the engine's store and options.
func (e *Engine) planQuery(q *Query) (*Plan, error) {
	if len(q.Returns) == 0 {
		return nil, fmt.Errorf("cypher: empty RETURN")
	}
	pats := withSyntheticVars(q.Patterns)

	var conjs []Expr
	splitConjuncts(q.Where, &conjs)
	eq := equalityHints(conjs)

	pl := &Plan{
		Returns:  q.Returns,
		Distinct: q.Distinct,
		OrderBy:  q.OrderBy,
		Skip:     q.Skip,
		Limit:    q.Limit,
	}
	for _, it := range q.Returns {
		if isAggregate(it.Expr) {
			pl.HasAggregate = true
		}
	}

	// Greedy chain ordering: repeatedly pick the unplanned chain with the
	// cheapest entry node (bound variables are free, enabling join-connected
	// chains to piggyback on earlier ones), then plan it outward from there.
	bound := map[string]bool{}
	planned := make([]bool, len(pats))
	cur := 1.0 // running cumulative cardinality estimate
	for {
		best, bestNode := -1, 0
		bestCost := math.Inf(1)
		for pi, p := range pats {
			if planned[pi] {
				continue
			}
			for ni, np := range p.Nodes {
				cost := math.Inf(1)
				if bound[np.Var] {
					cost = 0
				} else {
					_, _, _, _, _, est := e.accessFor(np, eq[np.Var])
					cost = est
				}
				if cost < bestCost {
					best, bestNode, bestCost = pi, ni, cost
				}
			}
		}
		if best < 0 {
			break
		}
		cur = e.planChain(pl, pats[best], bestNode, bound, eq, cur)
		planned[best] = true
	}

	assignPredicates(pl, conjs, q.Where)
	return pl, nil
}

// planChain emits the stages for one pattern chain entered at node index
// start, returning the updated cumulative cardinality estimate.
func (e *Engine) planChain(pl *Plan, p Pattern, start int, bound map[string]bool,
	eq map[string]map[string]string, cur float64) float64 {
	np := p.Nodes[start]
	if bound[np.Var] {
		pl.Stages = append(pl.Stages, &ScanStage{Node: np, Access: AccessBound, Est: cur})
	} else {
		kind, label, name, ak, av, est := e.accessFor(np, eq[np.Var])
		cur *= est
		pl.Stages = append(pl.Stages, &ScanStage{
			Node: np, Access: kind, Label: label, Name: name, AttrKey: ak, AttrVal: av, Est: cur,
		})
		bound[np.Var] = true
	}

	lo, hi := start, start
	for lo > 0 || hi < len(p.Nodes)-1 {
		right := math.Inf(1)
		if hi < len(p.Nodes)-1 {
			right = e.expandFactor(p.Edges[hi], p.Nodes[hi+1], bound, eq)
		}
		left := math.Inf(1)
		if lo > 0 {
			left = e.expandFactor(p.Edges[lo-1], p.Nodes[lo-1], bound, eq)
		}
		if right <= left {
			cur = e.emitExpand(pl, p.Nodes[hi].Var, p.Edges[hi], p.Nodes[hi+1], false, bound, cur*right)
			hi++
		} else {
			cur = e.emitExpand(pl, p.Nodes[lo].Var, p.Edges[lo-1], p.Nodes[lo-1], true, bound, cur*left)
			lo--
		}
	}
	return cur
}

func (e *Engine) emitExpand(pl *Plan, from string, ep EdgePattern, to NodePattern,
	reverse bool, bound map[string]bool, est float64) float64 {
	if est < 1 {
		est = 1 // keep running products from collapsing to zero
	}
	// Whether Edge.Var/To.Var are already bound is re-derived from the
	// runtime binding by the executor, which handles both cases.
	pl.Stages = append(pl.Stages, &ExpandStage{
		From: from, Edge: ep, To: to, Reverse: reverse, Est: est,
	})
	bound[ep.Var] = true
	bound[to.Var] = true
	return est
}

// expandFactor estimates the per-row multiplier of expanding one edge
// pattern onto a target node pattern: average fan-out of the edge type
// times the target's selectivity.
func (e *Engine) expandFactor(ep EdgePattern, to NodePattern, bound map[string]bool,
	eq map[string]map[string]string) float64 {
	deg := e.store.AvgDegree(ep.Type)
	if ep.Dir == DirAny {
		deg *= 2
	}
	total := e.store.CountNodes()
	if total == 0 {
		return 0
	}
	var sel float64
	if bound[to.Var] {
		sel = 1 / float64(total) // join check: at most one node qualifies
	} else {
		_, _, _, _, _, est := e.accessFor(to, eq[to.Var])
		sel = est / float64(total)
	}
	return deg * sel
}

// accessFor selects the cheapest access path for a node pattern given its
// equality hints (inline string props merged with pushed-down WHERE
// equalities) and returns the estimated candidate count. The returned
// label is the one the access path must use: the pattern's own, or one
// inferred from a type-equality predicate (n.type = "Malware" scans like
// (:Malware)).
func (e *Engine) accessFor(np NodePattern, hints map[string]string) (kind AccessKind, label, name, attrKey, attrVal string, est float64) {
	st := e.store
	total := float64(st.CountNodes())
	if !e.opts.UseIndexes {
		return AccessAll, "", "", "", "", total
	}

	merged := map[string]string{}
	for k, v := range np.Props {
		if v.Kind == KindString {
			merged[k] = v.Str
		}
	}
	for k, v := range hints {
		if _, ok := merged[k]; !ok {
			merged[k] = v
		}
	}
	label = np.Label
	if label == "" {
		if t, ok := merged["type"]; ok {
			label = t
		} else if t, ok := merged["label"]; ok {
			label = t
		}
	}

	if n, hasName := merged["name"]; hasName {
		if label != "" {
			return AccessLabelName, label, n, "", "", float64(st.CountByTypeName(label, n))
		}
		return AccessName, "", n, "", "", float64(st.CountByName(n))
	}

	// Best indexed attribute equality, composite with the label when known.
	kind, est = AccessAll, total
	if label != "" {
		kind, est = AccessLabel, float64(st.CountByType(label))
	}
	for k, v := range merged {
		if k == "name" || k == "type" || k == "label" || k == "id" || !st.HasAttrIndex(k) {
			continue
		}
		if label != "" {
			if n, ok := st.CountByTypeAttr(label, k, v); ok && float64(n) < est {
				kind, attrKey, attrVal, est = AccessLabelAttr, k, v, float64(n)
			}
		} else {
			if n, ok := st.CountByAttr(k, v); ok && float64(n) < est {
				kind, attrKey, attrVal, est = AccessAttr, k, v, float64(n)
			}
		}
	}
	if kind == AccessAll {
		label = ""
	}
	return kind, label, "", attrKey, attrVal, est
}

// withSyntheticVars copies the patterns, naming every anonymous node and
// edge ($n0, $e1, ...) so the executor can address them in bindings. "$"
// cannot appear in user identifiers, so the names never collide.
func withSyntheticVars(pats []Pattern) []Pattern {
	out := make([]Pattern, len(pats))
	n := 0
	for pi, p := range pats {
		cp := Pattern{Nodes: append([]NodePattern{}, p.Nodes...), Edges: append([]EdgePattern{}, p.Edges...)}
		for i := range cp.Nodes {
			if cp.Nodes[i].Var == "" {
				cp.Nodes[i].Var = fmt.Sprintf("$n%d", n)
				n++
			}
		}
		for i := range cp.Edges {
			if cp.Edges[i].Var == "" {
				cp.Edges[i].Var = fmt.Sprintf("$e%d", n)
				n++
			}
		}
		out[pi] = cp
	}
	return out
}

// splitConjuncts flattens top-level ANDs into a conjunct list.
func splitConjuncts(e Expr, out *[]Expr) {
	if e == nil {
		return
	}
	if b, ok := e.(BoolExpr); ok && b.Op == "and" {
		splitConjuncts(b.Left, out)
		splitConjuncts(b.Right, out)
		return
	}
	*out = append(*out, e)
}

// equalityHints extracts var.prop = "literal" conjuncts usable as index
// hints, keyed by variable.
func equalityHints(conjs []Expr) map[string]map[string]string {
	out := map[string]map[string]string{}
	for _, c := range conjs {
		cmp, ok := c.(CmpExpr)
		if !ok || cmp.Op != "=" {
			continue
		}
		pe, okL := cmp.Left.(PropExpr)
		lit, okR := cmp.Right.(LitExpr)
		if !okL || !okR {
			pe, okL = cmp.Right.(PropExpr)
			lit, okR = cmp.Left.(LitExpr)
		}
		if okL && okR && lit.Val.Kind == KindString {
			if out[pe.Var] == nil {
				out[pe.Var] = map[string]string{}
			}
			out[pe.Var][pe.Prop] = lit.Val.Str
		}
	}
	return out
}

// exprVars collects the variables an expression references.
func exprVars(e Expr, set map[string]bool) {
	switch v := e.(type) {
	case VarExpr:
		set[v.Name] = true
	case PropExpr:
		set[v.Var] = true
	case CmpExpr:
		exprVars(v.Left, set)
		exprVars(v.Right, set)
	case BoolExpr:
		exprVars(v.Left, set)
		exprVars(v.Right, set)
	case NotExpr:
		exprVars(v.Inner, set)
	case FuncExpr:
		if v.Arg != nil {
			exprVars(v.Arg, set)
		}
	}
}

// hasCountCall reports whether the expression contains a count() call,
// which always errors when evaluated outside RETURN.
func hasCountCall(e Expr) bool {
	switch v := e.(type) {
	case CmpExpr:
		return hasCountCall(v.Left) || hasCountCall(v.Right)
	case BoolExpr:
		return hasCountCall(v.Left) || hasCountCall(v.Right)
	case NotExpr:
		return hasCountCall(v.Inner)
	case FuncExpr:
		if v.Name == "count" {
			return true
		}
		if v.Arg != nil {
			return hasCountCall(v.Arg)
		}
	}
	return false
}

// assignPredicates attaches each WHERE conjunct to the earliest stage at
// which all of its variables are bound. Conjuncts that can error when
// evaluated — count() calls, or references to variables no pattern binds
// — force a fallback: the whole original WHERE runs at the last stage,
// preserving the tree-walking engine's left-to-right short-circuit
// semantics (a false left conjunct hides an erroring right one).
func assignPredicates(pl *Plan, conjs []Expr, whole Expr) {
	if len(conjs) == 0 || len(pl.Stages) == 0 {
		return
	}
	boundAfter := make([]map[string]bool, len(pl.Stages))
	acc := map[string]bool{}
	for i, st := range pl.Stages {
		switch s := st.(type) {
		case *ScanStage:
			acc[s.Node.Var] = true
		case *ExpandStage:
			acc[s.From] = true
			acc[s.Edge.Var] = true
			acc[s.To.Var] = true
		}
		after := make(map[string]bool, len(acc))
		for k := range acc {
			after[k] = true
		}
		boundAfter[i] = after
	}
	last := len(pl.Stages) - 1
	allBound := boundAfter[last]
	attach := func(i int, c Expr) {
		switch s := pl.Stages[i].(type) {
		case *ScanStage:
			s.Filters = append(s.Filters, c)
		case *ExpandStage:
			s.Filters = append(s.Filters, c)
		}
	}
	for _, c := range conjs {
		vars := map[string]bool{}
		exprVars(c, vars)
		for v := range vars {
			if !allBound[v] {
				attach(last, whole)
				return
			}
		}
		if hasCountCall(c) {
			attach(last, whole)
			return
		}
	}
	for _, c := range conjs {
		vars := map[string]bool{}
		exprVars(c, vars)
		target := last
		for i := range pl.Stages {
			all := true
			for v := range vars {
				if !boundAfter[i][v] {
					all = false
					break
				}
			}
			if all {
				target = i
				break
			}
		}
		attach(target, c)
	}
}
