package cypher

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"securitykg/internal/graph"
)

// The planner turns a parsed query into a Plan in three steps:
//
//  1. Predicate pushdown: each run of required MATCH clauses has its
//     WHERE split into AND-conjuncts; equality conjuncts against string
//     literals become index hints, and every conjunct is attached to the
//     earliest pipeline stage at which all of its variables are bound, so
//     rows are discarded as soon as they can be.
//  2. Greedy ordering (the "greedy beats optimal" strategy from the
//     janus-datalog line of work): among all pattern chains and all
//     possible entry nodes, repeatedly start at the node with the
//     smallest estimated candidate count — a bound variable is free, an
//     exact (label, name) seek is ~1, a label scan costs the label
//     cardinality, a full scan costs the node count — then grow the
//     chain in whichever direction has the smaller estimated fan-out
//     (average edge-type degree × target selectivity). Variable-length
//     expansions cost the geometric sum of the per-hop fan-out over the
//     hop range. OPTIONAL MATCH clauses plan in place (after the
//     required stages that bind their anchors) as nested sub-pipelines,
//     preserving clause order across null-padding boundaries.
//  3. The resulting stages execute as lazy pull iterators (iter.go), so
//     downstream LIMIT/MaxRows stop matching instead of truncating a
//     materialized result. WITH boundaries become segment bridges that
//     re-root the binding namespace.
//
// Statistics come from the graph store's selectivity layer (CountByType,
// CountByName, CountByTypeAttr, DegreeHistogram, ...), kept live by the
// indexes, so planning is O(pattern size) with O(1) stat lookups.

// planQuery builds the plan for q against the engine's store and options.
// $parameter predicates are costed with stats defaults (average index
// bucket sizes) so one plan serves every binding; the chosen access
// path's key is resolved per execution by the scan iterator.
func (e *Engine) planQuery(q *Query) (*Plan, error) {
	if len(q.Parts) == 0 {
		return nil, fmt.Errorf("cypher: empty query")
	}
	pl := &Plan{Params: q.Params, HasWrites: q.HasWrites()}
	bound := map[string]bool{}
	synth := 0
	for pi := range q.Parts {
		part := &q.Parts[pi]
		final := pi == len(q.Parts)-1
		seg, err := e.planPart(part, final, bound, &synth)
		if err != nil {
			return nil, err
		}
		pl.Segments = append(pl.Segments, seg)
		if part.Unwind != nil && part.HasWrites() {
			pl.Batch = true
		}
		// The next segment sees only the projected aliases.
		bound = map[string]bool{}
		for _, it := range part.Items {
			bound[it.Alias] = true
		}
	}
	e.markParallelScan(pl)
	return pl, nil
}

// unwindEstFanout is the planner's assumed element count of an UNWIND
// list whose length is unknown at plan time (a $parameter batch).
const unwindEstFanout = 64

// parallelScanMinRows is the estimated (and at runtime, actual) row
// count below which partitioning a scan is not worth the goroutine
// fan-out.
const parallelScanMinRows = 2048

// markParallelScan marks the plan's root scan for partitioned execution
// when it is a large full/label scan feeding a barrier that drains the
// whole scan before the first row leaves the query anyway. Streaming
// plans — even without a LIMIT — stay sequential: the partitioned path
// filters every partition up front, which would cost a LIMIT its early
// cutoff, an abandoned cursor its cheap close, and a tight byte budget
// its stream-until-tripped behavior.
func (e *Engine) markParallelScan(pl *Plan) {
	seg := pl.Segments[0]
	if len(seg.Stages) == 0 {
		return
	}
	sc, ok := seg.Stages[0].(*ScanStage)
	if !ok || (sc.Access != AccessAll && sc.Access != AccessLabel) {
		return
	}
	if sc.Est < parallelScanMinRows {
		return
	}
	if !scanFeedsBarrier(pl) {
		return
	}
	sc.Parallel = true
}

// scanFeedsBarrier reports whether something downstream of the root
// scan consumes the entire scan before emitting: a final aggregation or
// ORDER BY, an aggregating WITH bridge, or an eager mutation stage.
func scanFeedsBarrier(pl *Plan) bool {
	fin := pl.final()
	if fin.HasAggregate || len(fin.OrderBy) > 0 {
		return true
	}
	for i, seg := range pl.Segments {
		if i < len(pl.Segments)-1 && seg.HasAggregate {
			return true
		}
		for _, st := range seg.Stages {
			if _, ok := st.(*MutationStage); ok {
				return true
			}
		}
	}
	return false
}

// planPart plans one WITH-delimited segment. preBound names the
// variables carried in from the previous segment's projection.
func (e *Engine) planPart(part *QueryPart, final bool, preBound map[string]bool, synth *int) (*PlanSegment, error) {
	if len(part.Items) == 0 && !(final && part.HasWrites()) {
		return nil, fmt.Errorf("cypher: empty RETURN")
	}
	seg := &PlanSegment{
		Items:    part.Items,
		Distinct: part.Distinct,
		OrderBy:  part.OrderBy,
		Skip:     part.Skip,
		Limit:    part.Limit,
	}
	if !final {
		seg.Filter = part.Where
	}
	for _, it := range part.Items {
		if isAggregate(it.Expr) {
			seg.HasAggregate = true
		}
	}
	seg.cols = make([]string, len(seg.Items))
	for i, it := range seg.Items {
		seg.cols[i] = it.Alias
	}
	if final {
		op, err := resolveOrderKeys(part.OrderBy, part.Items, seg.Distinct, seg.HasAggregate)
		if err != nil {
			return nil, err
		}
		seg.op = op
	}

	bound := copyBound(preBound)
	cur := 1.0
	if part.Unwind != nil {
		if bound[part.Unwind.Alias] {
			return nil, fmt.Errorf("cypher: UNWIND alias %q is already bound", part.Unwind.Alias)
		}
		// The list length is unknown at plan time (it is typically a
		// $parameter); cost it at a nominal batch fan-out so downstream
		// estimates scale with "many rows" rather than one.
		cur *= unwindEstFanout
		seg.Stages = append(seg.Stages, &UnwindStage{
			Expr: part.Unwind.Expr, Alias: part.Unwind.Alias, Est: cur,
		})
		bound[part.Unwind.Alias] = true
	}
	for _, run := range requiredRuns(part.Matches) {
		if run.optional != nil {
			st, err := e.planOptional(*run.optional, bound, synth, cur)
			if err != nil {
				return nil, err
			}
			seg.Stages = append(seg.Stages, st)
			cur = st.Est
			continue
		}
		pats := withSyntheticVars(run.pats, synth)
		var conjs []Expr
		splitConjuncts(run.where, &conjs)
		eq := equalityHints(conjs)
		runStart := len(seg.Stages)
		preRun := copyBound(bound)
		cur = e.planPatterns(&seg.Stages, pats, bound, eq, conjs, true, cur)
		assignPredicates(seg.Stages[runStart:], conjs, run.where, preRun)
	}
	if wc := writeClausesOf(part); wc != nil {
		// Writes run after every read of the part has materialized
		// (the stage is an eager barrier) and bind their created
		// variables for the projection.
		seg.Stages = append(seg.Stages, &MutationStage{Writes: wc, Est: cur})
	}
	return seg, nil
}

// planOptional plans one OPTIONAL MATCH clause as a nested sub-pipeline
// anchored on the variables bound so far, recording which variables it
// introduces so the executor can null-pad them on no-match.
func (e *Engine) planOptional(mc MatchClause, bound map[string]bool, synth *int, cur float64) (*OptionalStage, error) {
	pats := withSyntheticVars(mc.Patterns, synth)
	var conjs []Expr
	splitConjuncts(mc.Where, &conjs)
	eq := equalityHints(conjs)
	pre := copyBound(bound)
	innerBound := copyBound(bound)
	var inner []Stage
	// Optional sub-pipelines rebuild their iterators per input row, so a
	// hash join there would re-run its build side per row: joins stay
	// disabled inside OPTIONAL MATCH.
	est := e.planPatterns(&inner, pats, innerBound, eq, conjs, false, cur)
	assignPredicates(inner, conjs, mc.Where, pre)
	var vars []string
	for v := range innerBound {
		if !pre[v] {
			vars = append(vars, v)
		}
	}
	sort.Strings(vars)
	// The introduced variables stay in scope (possibly null) downstream.
	for _, v := range vars {
		bound[v] = true
	}
	if est < cur {
		est = cur // null-padding means optional stages never shrink the stream
	}
	return &OptionalStage{Inner: inner, Vars: vars, Est: est}, nil
}

// planPatterns greedily orders a group of pattern chains: repeatedly pick
// the unplanned chain with the cheapest entry node (bound variables are
// free, enabling join-connected chains to piggyback on earlier ones),
// then plan it outward from there — or, when the chain is linked to the
// rows planned so far only through equality (a cross-chain predicate or
// a shared variable) and the histograms say hashing one side is cheaper
// than re-expanding per row, as a HashJoinStage. Mutates bound; returns
// the updated cumulative cardinality estimate.
func (e *Engine) planPatterns(stages *[]Stage, pats []Pattern, bound map[string]bool,
	eq map[string]map[string]hintVal, conjs []Expr, allowJoin bool, cur float64) float64 {
	planned := make([]bool, len(pats))
	for {
		best, bestNode := -1, 0
		bestCost := math.Inf(1)
		for pi, p := range pats {
			if planned[pi] {
				continue
			}
			ni, cost := e.bestEntry(p, bound, eq)
			if cost < bestCost {
				best, bestNode, bestCost = pi, ni, cost
			}
		}
		if best < 0 {
			return cur
		}
		if allowJoin {
			if st, est, ok := e.planHashJoin(pats[best], bound, eq, conjs, cur); ok {
				*stages = append(*stages, st)
				for v := range patternVars(pats[best]) {
					bound[v] = true
				}
				cur = est
				planned[best] = true
				continue
			}
		}
		cur = e.planChain(stages, pats[best], bestNode, bound, eq, cur)
		planned[best] = true
	}
}

// bestEntry returns the cheapest entry node of a chain and its estimated
// candidate count (bound variables are free).
func (e *Engine) bestEntry(p Pattern, bound map[string]bool, eq map[string]map[string]hintVal) (int, float64) {
	best, bestCost := 0, math.Inf(1)
	for ni, np := range p.Nodes {
		cost := math.Inf(1)
		if bound[np.Var] {
			cost = 0
		} else {
			cost = e.accessFor(np, eq[np.Var]).est
		}
		if cost < bestCost {
			best, bestCost = ni, cost
		}
	}
	return best, bestCost
}

// planChain emits the stages for one pattern chain entered at node index
// start, returning the updated cumulative cardinality estimate. Long
// runs of anonymous single-hop edges collapse into a BiExpandStage when
// the degree histograms put path enumeration deep into walk-explosion
// territory (tryBiExpand).
func (e *Engine) planChain(stages *[]Stage, p Pattern, start int, bound map[string]bool,
	eq map[string]map[string]hintVal, cur float64) float64 {
	np := p.Nodes[start]
	if bound[np.Var] {
		*stages = append(*stages, &ScanStage{Node: np, Access: AccessBound, Est: cur})
	} else {
		ap := e.accessFor(np, eq[np.Var])
		cur *= ap.est
		*stages = append(*stages, &ScanStage{
			Node: np, Access: ap.kind, Label: ap.label,
			Name: ap.name, NameParam: ap.nameParam,
			AttrKey: ap.attrKey, AttrVal: ap.attrVal, AttrParam: ap.attrParam,
			Est: cur,
		})
		bound[np.Var] = true
	}

	lo, hi := start, start
	for lo > 0 || hi < len(p.Nodes)-1 {
		right := math.Inf(1)
		if hi < len(p.Nodes)-1 {
			right = e.expandFactor(p.Nodes[hi], p.Edges[hi], p.Nodes[hi+1], false, bound, eq)
		}
		left := math.Inf(1)
		if lo > 0 {
			left = e.expandFactor(p.Nodes[lo], p.Edges[lo-1], p.Nodes[lo-1], true, bound, eq)
		}
		if right <= left {
			if hops, est, ok := e.tryBiExpand(stages, p, hi, false, bound, eq, cur); ok {
				hi += hops
				cur = est
				continue
			}
			cur = e.emitExpand(stages, p.Nodes[hi], p.Edges[hi], p.Nodes[hi+1], false, bound, eq, cur*right)
			hi++
		} else {
			if hops, est, ok := e.tryBiExpand(stages, p, lo, true, bound, eq, cur); ok {
				lo -= hops
				cur = est
				continue
			}
			cur = e.emitExpand(stages, p.Nodes[lo], p.Edges[lo-1], p.Nodes[lo-1], true, bound, eq, cur*left)
			lo--
		}
	}
	return cur
}

// biExpandMinHops is the shortest collapsible run worth counted
// expansion: below it the per-level map bookkeeping costs more than the
// walks it collapses.
const biExpandMinHops = 3

// tryBiExpand collapses the maximal run of single-hop, anonymous-interior
// edges starting at chain position idx (walking leftward or rightward)
// into one BiExpandStage — if the run is long enough and the per-hop
// degree product says enumeration would explode: past ~32 walks per row
// when the far endpoint is already bound (meet-in-the-middle pays
// immediately), or past 4× the node count when it is free (counts only
// collapse work once walks outnumber distinct nodes). Returns the number
// of hops consumed and the updated cumulative estimate.
func (e *Engine) tryBiExpand(stages *[]Stage, p Pattern, idx int, leftward bool,
	bound map[string]bool, eq map[string]map[string]hintVal, cur float64) (int, float64, bool) {
	var hops []BiHop
	prodDeg, est := 1.0, cur
	node := p.Nodes[idx]
	j := idx
	for {
		var edge EdgePattern
		var next NodePattern
		if leftward {
			if j == 0 {
				break
			}
			edge, next = p.Edges[j-1], p.Nodes[j-1]
		} else {
			if j == len(p.Nodes)-1 {
				break
			}
			edge, next = p.Edges[j], p.Nodes[j+1]
		}
		// Interior edges must be anonymous single hops (synthetic "$"
		// names cannot be referenced, so collapsing them is invisible).
		if edge.VarLength() || !strings.HasPrefix(edge.Var, "$") {
			break
		}
		hops = append(hops, BiHop{Edge: edge, To: next, Reverse: leftward})
		prodDeg *= e.hopDegree(nodeLabelFor(node, eq), edge, leftward)
		est *= e.expandFactor(node, edge, next, leftward, bound, eq)
		node = next
		if leftward {
			j--
		} else {
			j++
		}
		// The run ends at the first named (bindable) node.
		if !strings.HasPrefix(next.Var, "$") {
			break
		}
	}
	if len(hops) < biExpandMinHops {
		return 0, 0, false
	}
	to := hops[len(hops)-1].To
	if bound[to.Var] {
		if prodDeg <= 32 {
			return 0, 0, false
		}
	} else if prodDeg <= 4*math.Max(1, float64(e.store.CountNodes())) {
		return 0, 0, false
	}
	if est < 1 {
		est = 1
	}
	*stages = append(*stages, &BiExpandStage{
		From: p.Nodes[idx].Var, Hops: hops, Est: est,
		SrcLabel: nodeLabelFor(p.Nodes[idx], eq),
	})
	bound[to.Var] = true
	return len(hops), est, true
}

func (e *Engine) emitExpand(stages *[]Stage, src NodePattern, ep EdgePattern, to NodePattern,
	reverse bool, bound map[string]bool, eq map[string]map[string]hintVal, est float64) float64 {
	if est < 1 {
		est = 1 // keep running products from collapsing to zero
	}
	// The planner-assumed source label travels with the stage so ANALYZE
	// drift observations key back to the histogram that priced this hop.
	srcLabel := nodeLabelFor(src, eq)
	// Whether Edge.Var/To.Var are already bound is re-derived from the
	// runtime binding by the executor, which handles both cases.
	if ep.VarLength() {
		*stages = append(*stages, &VarExpandStage{
			From: src.Var, Edge: ep, To: to, Reverse: reverse, Est: est, SrcLabel: srcLabel,
		})
	} else {
		*stages = append(*stages, &ExpandStage{
			From: src.Var, Edge: ep, To: to, Reverse: reverse, Est: est, SrcLabel: srcLabel,
		})
		bound[ep.Var] = true
	}
	bound[to.Var] = true
	return est
}

// nodeLabelFor resolves the label the planner may assume for a node
// pattern: its own, or one pinned by a literal type-equality hint.
func nodeLabelFor(np NodePattern, eq map[string]map[string]hintVal) string {
	if np.Label != "" {
		return np.Label
	}
	if h := eq[np.Var]; h != nil {
		if t, ok := h["type"]; ok && t.param == "" {
			return t.lit
		}
		if t, ok := h["label"]; ok && t.param == "" {
			return t.lit
		}
	}
	return ""
}

// dirFor maps an edge pattern direction (and chain walk orientation)
// onto the store direction a histogram lookup needs.
func dirFor(d EdgeDir, reverse bool) graph.Direction {
	switch {
	case d == DirAny:
		return graph.Both
	case (d == DirRight) != reverse:
		return graph.Out
	}
	return graph.In
}

// hopDegree is the histogram-measured average fan-out of one hop: edges
// of the pattern's type, in the traversal direction, out of nodes with
// the source's label — replacing the old uniform AvgDegree assumption,
// so a hub label costs what the hub label actually fans out.
func (e *Engine) hopDegree(fromLabel string, ep EdgePattern, reverse bool) float64 {
	return e.store.DegreeHistogram(fromLabel, ep.Type, dirFor(ep.Dir, reverse)).Avg()
}

// expandFactor estimates the per-row multiplier of expanding one edge
// pattern onto a target node pattern: the (source label, edge type,
// direction) degree histogram's average fan-out times the target's
// selectivity. Variable-length patterns cost the geometric sum of the
// per-hop fan-out over the hop range — the first hop at the source
// label's measured degree, later hops at the label-blind degree
// (unbounded ranges are capped at a costing horizon; execution is
// exact).
func (e *Engine) expandFactor(from NodePattern, ep EdgePattern, to NodePattern, reverse bool,
	bound map[string]bool, eq map[string]map[string]hintVal) float64 {
	deg := e.hopDegree(nodeLabelFor(from, eq), ep, reverse)
	if ep.VarLength() {
		tail := e.hopDegree("", ep, reverse)
		deg = varExpandFanout(deg, tail, ep.MinHops, ep.MaxHops)
	}
	total := e.store.CountNodes()
	if total == 0 {
		return 0
	}
	var sel float64
	if bound[to.Var] {
		sel = 1 / float64(total) // join check: at most one node qualifies
	} else {
		sel = e.accessFor(to, eq[to.Var]).est / float64(total)
	}
	return deg * sel
}

// varExpandFanout sums the expected frontier over hops in [min, max]:
// the first hop fans out at the source label's measured degree, later
// hops at the tail degree. max < 0 (unbounded) is capped at min+8 for
// costing only.
func varExpandFanout(first, tail float64, min, max int) float64 {
	if max < 0 || max > min+8 {
		max = min + 8
	}
	fan := 0.0
	if min == 0 {
		fan = 1 // the start node itself
	}
	pow := 1.0
	for h := 1; h <= max; h++ {
		if h == 1 {
			pow *= first
		} else {
			pow *= tail
		}
		if h >= min {
			fan += pow
		}
		if pow > 1e12 {
			break
		}
	}
	return fan
}

// --- hash-join planning ---

// joinMode is the planner's decision for one equality-linked chain.
type joinMode int

const (
	joinNested    joinMode = iota // keep the nested-loop re-expand / cartesian
	joinHashChain                 // hash the standalone chain, probe with input rows
	joinHashInput                 // hash the input rows, probe with the chain
)

// hashJoinMaxBuild caps the estimated row count of the hashed side: past
// it the build table's memory dominates whatever work the join saves, so
// the planner keeps the pipelined nested loop.
const hashJoinMaxBuild = 1 << 17

// chooseJoin is the pure cost decision between a nested-loop plan and a
// hash join, from the planner's estimates: the incoming row count, the
// standalone chain's output rows and enumeration work, the nested plan's
// work, and the join's estimated output. The chain is fully enumerated
// under either hash mode (as build or as probe), so hash work is
// chainWork + one pass over the input + the output itself; nested work
// must beat that by 1.5× before the hash table is worth building, and
// the hashed (cheaper) side must fit under hashJoinMaxBuild.
func chooseJoin(inputRows, chainRows, chainWork, nestedWork, outRows float64) joinMode {
	hashWork := chainWork + inputRows + outRows
	if hashWork*1.5 >= nestedWork {
		return joinNested
	}
	if math.Min(inputRows, chainRows) > hashJoinMaxBuild {
		return joinNested
	}
	if chainRows <= inputRows {
		return joinHashChain
	}
	return joinHashInput
}

// patternVars collects the bindable variables of a chain: node variables
// plus single-hop edge variables (variable-length edges never bind).
func patternVars(p Pattern) map[string]bool {
	vs := map[string]bool{}
	for _, np := range p.Nodes {
		if np.Var != "" {
			vs[np.Var] = true
		}
	}
	for _, ep := range p.Edges {
		if ep.Var != "" && !ep.VarLength() {
			vs[ep.Var] = true
		}
	}
	return vs
}

func sumEst(stages []Stage) float64 {
	t := 0.0
	for _, st := range stages {
		t += st.estRows()
	}
	return t
}

// planHashJoin decides whether the next chain should join the rows
// planned so far through a hash table instead of a nested re-expand.
// Join keys are the chain's shared bound node variables plus every
// cross-chain equality conjunct with one side evaluable on each scope;
// without at least one key there is nothing to hash on (a pure cartesian
// stays nested). The chain is scratch-planned twice — once anchored on
// the bound variables (the nested alternative) and once standalone (the
// build side) — and chooseJoin picks from the resulting estimates.
func (e *Engine) planHashJoin(p Pattern, bound map[string]bool,
	eq map[string]map[string]hintVal, conjs []Expr, cur float64) (*HashJoinStage, float64, bool) {
	if cur <= 1 {
		return nil, 0, false // single-row probe side: nested is at least as good
	}
	pv := patternVars(p)
	var probeKeys, buildKeys []Expr
	var shared []string
	for v := range pv {
		if bound[v] {
			shared = append(shared, v)
		}
	}
	sort.Strings(shared)
	for _, v := range shared {
		probeKeys = append(probeKeys, VarExpr{Name: v})
		buildKeys = append(buildKeys, VarExpr{Name: v})
	}
	crossKeys := 0
	for _, c := range conjs {
		cmp, ok := c.(CmpExpr)
		if !ok || cmp.Op != "=" || hasAggCall(c) {
			continue
		}
		lv, rv := map[string]bool{}, map[string]bool{}
		exprVars(cmp.Left, lv)
		exprVars(cmp.Right, rv)
		if len(lv) == 0 || len(rv) == 0 {
			continue
		}
		lB, rB := subsetOf(lv, bound), subsetOf(rv, bound)
		lP, rP := subsetOf(lv, pv), subsetOf(rv, pv)
		switch {
		case lB && rP && !rB:
			probeKeys = append(probeKeys, cmp.Left)
			buildKeys = append(buildKeys, cmp.Right)
		case rB && lP && !lB:
			probeKeys = append(probeKeys, cmp.Right)
			buildKeys = append(buildKeys, cmp.Left)
		default:
			continue
		}
		crossKeys++
	}
	if len(probeKeys) == 0 {
		return nil, 0, false
	}
	buildVars := make([]string, 0, len(pv))
	for v := range pv {
		// Synthetic "$" names are unreferencable (users cannot type them):
		// storing them in the hash table would charge the byte budget for
		// values no expression can read. Row multiplicity is preserved
		// regardless — each build match is its own bucket entry.
		if !bound[v] && !strings.HasPrefix(v, "$") {
			buildVars = append(buildVars, v)
		}
	}
	if len(buildVars) == 0 {
		return nil, 0, false // nothing referencable to bind: keep the nested plan
	}
	sort.Strings(buildVars)

	// Scratch-plan both alternatives.
	nb := copyBound(bound)
	var nested []Stage
	entry, _ := e.bestEntry(p, nb, eq)
	nestedEst := e.planChain(&nested, p, entry, nb, eq, cur)
	sb := map[string]bool{}
	var build []Stage
	sEntry, _ := e.bestEntry(p, sb, eq)
	buildEst := e.planChain(&build, p, sEntry, sb, eq, 1)
	// Push chain-local conjuncts into the build sub-pipeline so the hash
	// table holds filtered rows only. The caller's assignPredicates will
	// also attach them at the join stage (belt and braces, like scan
	// hints); aggregate calls and conjuncts referencing outer variables
	// must stay outside — they cannot evaluate in the build's namespace.
	var local []Expr
	for _, c := range conjs {
		if hasAggCall(c) {
			continue
		}
		vs := map[string]bool{}
		exprVars(c, vs)
		if len(vs) > 0 && subsetOf(vs, pv) {
			local = append(local, c)
		}
	}
	assignPredicates(build, local, andAll(local), map[string]bool{})

	outEst := nestedEst
	if crossKeys > 0 {
		// Classic equality-join selectivity with unknown distinct counts:
		// |R ⋈ S| ≈ |R|·|S| / max(|R|, |S|).
		outEst = math.Max(1, nestedEst/math.Max(1, math.Max(cur, buildEst)))
	}
	mode := chooseJoin(cur, buildEst, sumEst(build), sumEst(nested), outEst)
	if mode == joinNested {
		return nil, 0, false
	}
	return &HashJoinStage{
		Build:      build,
		BuildVars:  buildVars,
		ProbeKeys:  probeKeys,
		BuildKeys:  buildKeys,
		BuildInput: mode == joinHashInput,
		Est:        outEst,
	}, outEst, true
}

// subsetOf reports whether every variable in vs is present in set.
func subsetOf(vs map[string]bool, set map[string]bool) bool {
	for v := range vs {
		if !set[v] {
			return false
		}
	}
	return true
}

// accessPath is the planner's chosen way to locate a node pattern's
// candidates plus its estimated candidate count. Exactly one of
// name/nameParam (or attrVal/attrParam) is set for seek paths: params
// defer the key to bind time.
type accessPath struct {
	kind      AccessKind
	label     string
	name      string
	nameParam string
	attrKey   string
	attrVal   string
	attrParam string
	est       float64
}

// accessFor selects the cheapest access path for a node pattern given its
// equality hints (inline props and $params merged with pushed-down WHERE
// equalities) and returns the estimated candidate count. The returned
// label is the one the access path must use: the pattern's own, or one
// inferred from a literal type-equality predicate (n.type = "Malware"
// scans like (:Malware)). Parameter-valued hints select the same index
// kinds as literals but are costed with stats defaults — the average
// name/attribute bucket size — since the bound value is unknown at plan
// time. The index *kind* never depends on the bound value, so the plan
// is reusable across bindings without re-costing.
func (e *Engine) accessFor(np NodePattern, hints map[string]hintVal) accessPath {
	st := e.store
	total := float64(st.CountNodes())
	if !e.opts.UseIndexes {
		return accessPath{kind: AccessAll, est: total}
	}

	merged := map[string]hintVal{}
	for k, v := range np.Props {
		if v.Kind == KindString {
			merged[k] = hintVal{lit: v.Str}
		}
	}
	for k, pn := range np.ParamProps {
		if _, ok := merged[k]; !ok {
			merged[k] = hintVal{param: pn}
		}
	}
	for k, v := range hints {
		if _, ok := merged[k]; !ok {
			merged[k] = v
		}
	}
	label := np.Label
	if label == "" {
		// Only literal type predicates can pin the scan label: a
		// $param-valued one would change the access path per binding.
		if t, ok := merged["type"]; ok && t.param == "" {
			label = t.lit
		} else if t, ok := merged["label"]; ok && t.param == "" {
			label = t.lit
		}
	}

	if n, hasName := merged["name"]; hasName {
		if n.param != "" {
			est := st.AvgNameBucket()
			if label != "" {
				// (label, name) pairs are unique in the store.
				if est > 1 {
					est = 1
				}
				return accessPath{kind: AccessLabelName, label: label, nameParam: n.param, est: est}
			}
			return accessPath{kind: AccessName, nameParam: n.param, est: est}
		}
		if label != "" {
			return accessPath{kind: AccessLabelName, label: label, name: n.lit,
				est: float64(st.CountByTypeName(label, n.lit))}
		}
		return accessPath{kind: AccessName, name: n.lit, est: float64(st.CountByName(n.lit))}
	}

	// Best indexed attribute equality, composite with the label when known.
	ap := accessPath{kind: AccessAll, label: label, est: total}
	if label != "" {
		ap.kind, ap.est = AccessLabel, float64(st.CountByType(label))
	}
	for k, v := range merged {
		if k == "name" || k == "type" || k == "label" || k == "id" || !st.HasAttrIndex(k) {
			continue
		}
		var n float64
		var ok bool
		if v.param != "" {
			n, ok = st.AvgAttrBucket(k)
		} else if label != "" {
			var c int
			c, ok = st.CountByTypeAttr(label, k, v.lit)
			n = float64(c)
		} else {
			var c int
			c, ok = st.CountByAttr(k, v.lit)
			n = float64(c)
		}
		if !ok || n >= ap.est {
			continue
		}
		if label != "" {
			ap.kind = AccessLabelAttr
		} else {
			ap.kind = AccessAttr
		}
		ap.attrKey, ap.attrVal, ap.attrParam, ap.est = k, v.lit, v.param, n
		if v.param != "" {
			ap.attrVal = ""
		}
	}
	if ap.kind == AccessAll {
		ap.label = ""
	}
	return ap
}

// withSyntheticVars copies the patterns, naming every anonymous node and
// single-hop edge ($n0, $e1, ...) so the executor can address them in
// bindings. Variable-length edges never bind, so they stay anonymous.
// "$" cannot appear in user identifiers, so the names never collide.
func withSyntheticVars(pats []Pattern, counter *int) []Pattern {
	out := make([]Pattern, len(pats))
	for pi, p := range pats {
		cp := Pattern{Nodes: append([]NodePattern{}, p.Nodes...), Edges: append([]EdgePattern{}, p.Edges...)}
		for i := range cp.Nodes {
			if cp.Nodes[i].Var == "" {
				cp.Nodes[i].Var = fmt.Sprintf("$n%d", *counter)
				*counter++
			}
		}
		for i := range cp.Edges {
			if cp.Edges[i].Var == "" && !cp.Edges[i].VarLength() {
				cp.Edges[i].Var = fmt.Sprintf("$e%d", *counter)
				*counter++
			}
		}
		out[pi] = cp
	}
	return out
}

func copyBound(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// matchRun is one maximal group of consecutive clauses within a part:
// either a single OPTIONAL MATCH, or a run of required MATCHes merged
// into one joint pattern set with their WHEREs AND-folded. Both engines
// plan/execute runs identically (requiredRuns is shared), so clause
// grouping cannot drift between them.
type matchRun struct {
	optional *MatchClause // set for an optional run
	pats     []Pattern    // required run: merged patterns
	where    Expr         // required run: AND-fold of the clauses' WHEREs
}

// requiredRuns splits a part's clauses into ordered runs: consecutive
// required MATCHes join as one group (joins are commutative), optional
// clauses stand alone so clause order is preserved across null-padding
// boundaries.
func requiredRuns(matches []MatchClause) []matchRun {
	var runs []matchRun
	i := 0
	for i < len(matches) {
		if matches[i].Optional {
			runs = append(runs, matchRun{optional: &matches[i]})
			i++
			continue
		}
		var run matchRun
		var wheres []Expr
		for i < len(matches) && !matches[i].Optional {
			run.pats = append(run.pats, matches[i].Patterns...)
			if matches[i].Where != nil {
				wheres = append(wheres, matches[i].Where)
			}
			i++
		}
		run.where = andAll(wheres)
		runs = append(runs, run)
	}
	return runs
}

// andAll folds expressions left-to-right into one AND conjunction,
// preserving the evaluation order the legacy engine uses.
func andAll(exprs []Expr) Expr {
	var out Expr
	for _, ex := range exprs {
		if out == nil {
			out = ex
		} else {
			out = BoolExpr{Op: "and", Left: out, Right: ex}
		}
	}
	return out
}

// splitConjuncts flattens top-level ANDs into a conjunct list.
func splitConjuncts(e Expr, out *[]Expr) {
	if e == nil {
		return
	}
	if b, ok := e.(BoolExpr); ok && b.Op == "and" {
		splitConjuncts(b.Left, out)
		splitConjuncts(b.Right, out)
		return
	}
	*out = append(*out, e)
}

// hintVal is one equality hint's value: a string literal known at plan
// time, or a $parameter resolved at bind time.
type hintVal struct {
	lit   string
	param string // non-empty when the hint is $param-valued
}

// resolve returns the concrete string for the hint under the execution's
// parameter bindings (ok=false for a param bound to a non-string value,
// which can never equal a name/attribute and so provides no seek key).
func (h hintVal) resolve(ps params) (string, bool) {
	if h.param == "" {
		return h.lit, true
	}
	v, ok := ps.get(h.param)
	if !ok || v.Kind != KindString {
		return "", false
	}
	return v.Str, true
}

// equalityHints extracts var.prop = "literal" and var.prop = $param
// conjuncts usable as index hints, keyed by variable.
func equalityHints(conjs []Expr) map[string]map[string]hintVal {
	out := map[string]map[string]hintVal{}
	for _, c := range conjs {
		cmp, ok := c.(CmpExpr)
		if !ok || cmp.Op != "=" {
			continue
		}
		pe, okL := cmp.Left.(PropExpr)
		rhs := cmp.Right
		if !okL {
			pe, okL = cmp.Right.(PropExpr)
			rhs = cmp.Left
		}
		if !okL {
			continue
		}
		var hv hintVal
		switch r := rhs.(type) {
		case LitExpr:
			if r.Val.Kind != KindString {
				continue
			}
			hv = hintVal{lit: r.Val.Str}
		case ParamExpr:
			hv = hintVal{param: r.Name}
		default:
			continue
		}
		if out[pe.Var] == nil {
			out[pe.Var] = map[string]hintVal{}
		}
		out[pe.Var][pe.Prop] = hv
	}
	return out
}

// exprVars collects the variables an expression references.
func exprVars(e Expr, set map[string]bool) {
	switch v := e.(type) {
	case VarExpr:
		set[v.Name] = true
	case PropExpr:
		set[v.Var] = true
	case CmpExpr:
		exprVars(v.Left, set)
		exprVars(v.Right, set)
	case BoolExpr:
		exprVars(v.Left, set)
		exprVars(v.Right, set)
	case NotExpr:
		exprVars(v.Inner, set)
	case FuncExpr:
		if v.Arg != nil {
			exprVars(v.Arg, set)
		}
	case ListExpr:
		for _, ee := range v.Elems {
			exprVars(ee, set)
		}
	}
}

// hasAggCall reports whether the expression contains an aggregate call
// (count/min/max/sum/collect), which always errors when evaluated
// outside a projection.
func hasAggCall(e Expr) bool {
	switch v := e.(type) {
	case CmpExpr:
		return hasAggCall(v.Left) || hasAggCall(v.Right)
	case BoolExpr:
		return hasAggCall(v.Left) || hasAggCall(v.Right)
	case NotExpr:
		return hasAggCall(v.Inner)
	case FuncExpr:
		if isAggName(v.Name) {
			return true
		}
		if v.Arg != nil {
			return hasAggCall(v.Arg)
		}
	case ListExpr:
		for _, ee := range v.Elems {
			if hasAggCall(ee) {
				return true
			}
		}
	}
	return false
}

// stageBinds records the variables a stage makes available.
func stageBinds(st Stage, acc map[string]bool) {
	switch s := st.(type) {
	case *UnwindStage:
		acc[s.Alias] = true
	case *ScanStage:
		acc[s.Node.Var] = true
	case *ExpandStage:
		acc[s.From] = true
		acc[s.Edge.Var] = true
		acc[s.To.Var] = true
	case *VarExpandStage:
		acc[s.From] = true
		acc[s.To.Var] = true
	case *HashJoinStage:
		for _, v := range s.BuildVars {
			acc[v] = true
		}
	case *BiExpandStage:
		acc[s.From] = true
		acc[s.toPattern().Var] = true
	case *OptionalStage:
		for _, v := range s.Vars {
			acc[v] = true
		}
	}
}

// assignPredicates attaches each WHERE conjunct to the earliest stage at
// which all of its variables are bound (preBound names variables already
// bound before these stages run). Conjuncts that can error when
// evaluated — aggregate calls, or references to variables no pattern
// binds — force a fallback: the whole original WHERE runs at the last
// stage, preserving the tree-walking engine's left-to-right
// short-circuit semantics (a false left conjunct hides an erroring right
// one).
func assignPredicates(stages []Stage, conjs []Expr, whole Expr, preBound map[string]bool) {
	if len(conjs) == 0 || len(stages) == 0 {
		return
	}
	boundAfter := make([]map[string]bool, len(stages))
	acc := copyBound(preBound)
	for i, st := range stages {
		stageBinds(st, acc)
		boundAfter[i] = copyBound(acc)
	}
	last := len(stages) - 1
	allBound := boundAfter[last]
	attach := func(i int, c Expr) {
		switch s := stages[i].(type) {
		case *ScanStage:
			s.Filters = append(s.Filters, c)
		case *ExpandStage:
			s.Filters = append(s.Filters, c)
		case *VarExpandStage:
			s.Filters = append(s.Filters, c)
		case *HashJoinStage:
			s.Filters = append(s.Filters, c)
		case *BiExpandStage:
			s.Filters = append(s.Filters, c)
		}
	}
	for _, c := range conjs {
		vars := map[string]bool{}
		exprVars(c, vars)
		for v := range vars {
			if !allBound[v] {
				attach(last, whole)
				return
			}
		}
		if hasAggCall(c) {
			attach(last, whole)
			return
		}
	}
	for _, c := range conjs {
		vars := map[string]bool{}
		exprVars(c, vars)
		target := last
		for i := range stages {
			all := true
			for v := range vars {
				if !boundAfter[i][v] {
					all = false
					break
				}
			}
			if all {
				target = i
				break
			}
		}
		attach(target, c)
	}
}
