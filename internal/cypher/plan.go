package cypher

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file defines the logical/physical plan the planner emits and the
// executor runs. A plan is a chain of pipeline segments (one per WITH
// boundary plus the final RETURN); each segment is a linear left-deep
// pipeline of binding-producing stages (scans and expansions, each with
// pushed-down filters) followed by its projection. The final segment also
// carries the row-level operators (distinct, sort, skip/limit). EXPLAIN
// renders this structure.

// AccessKind is how a ScanStage locates its candidate nodes.
type AccessKind int

const (
	AccessAll       AccessKind = iota // full node scan
	AccessLabel                       // label index scan
	AccessName                        // name index seek (any label)
	AccessLabelName                   // exact (label, name) point seek
	AccessAttr                        // attribute index seek
	AccessLabelAttr                   // composite (label, attribute) index seek
	AccessBound                       // variable already bound by an earlier stage
)

func (k AccessKind) String() string {
	switch k {
	case AccessAll:
		return "AllNodesScan"
	case AccessLabel:
		return "LabelScan"
	case AccessName:
		return "IndexSeek(name)"
	case AccessLabelName:
		return "IndexSeek(label+name)"
	case AccessAttr:
		return "IndexSeek(attr)"
	case AccessLabelAttr:
		return "IndexSeek(label+attr)"
	case AccessBound:
		return "BoundRef"
	}
	return "?"
}

// Stage is one binding-producing pipeline operator.
type Stage interface {
	// newIter wires the stage into the Volcano pipeline; input is nil for
	// the first stage.
	newIter(ec *execCtx, input iter) iter
	// estRows is the planner's estimated cumulative row count after this
	// stage.
	estRows() float64
	describe() string
	filters() []Expr
}

// ScanStage produces bindings for one pattern node, either from an index
// access path or by re-checking an already-bound variable (AccessBound,
// used when a later pattern starts at a variable an earlier one bound).
// Seek keys are literals (Name/AttrVal) or $parameter names
// (NameParam/AttrParam) resolved per execution, which is what lets one
// cached plan serve every parameter binding.
type ScanStage struct {
	Node      NodePattern
	Access    AccessKind
	Label     string // resolved label for the access path: Node.Label, or one inferred from a type-equality predicate
	Name      string // name literal for name seeks
	NameParam string // $parameter supplying the name at bind time
	AttrKey   string // attribute key/value for attr seeks
	AttrVal   string
	AttrParam string // $parameter supplying the attribute value at bind time
	Filters   []Expr // pushed-down predicates evaluable once Node.Var is bound
	// Parallel marks a large full/label scan at the root of the pipeline
	// for partitioned execution: the ID list is split across workers that
	// apply the pattern and pushed-down filters concurrently, and the
	// accepted nodes are re-merged in ID order, so downstream stages see
	// exactly the sequential stream (planner.go markParallelScan).
	Parallel bool
	Est      float64
}

func (s *ScanStage) estRows() float64 { return s.Est }
func (s *ScanStage) filters() []Expr  { return s.Filters }

func (s *ScanStage) describe() string {
	var b strings.Builder
	b.WriteString(s.Access.String())
	if s.Parallel {
		b.WriteString("(parallel)")
	}
	b.WriteString(" ")
	b.WriteString(patternNodeText(s.Node))
	if s.Label != "" && s.Node.Label == "" {
		fmt.Fprintf(&b, " label=%q", s.Label)
	}
	switch s.Access {
	case AccessName, AccessLabelName:
		if s.NameParam != "" {
			fmt.Fprintf(&b, " name=$%s", s.NameParam)
		} else {
			fmt.Fprintf(&b, " name=%q", s.Name)
		}
	case AccessAttr, AccessLabelAttr:
		if s.AttrParam != "" {
			fmt.Fprintf(&b, " %s=$%s", s.AttrKey, s.AttrParam)
		} else {
			fmt.Fprintf(&b, " %s=%q", s.AttrKey, s.AttrVal)
		}
	}
	return b.String()
}

// edgeText renders the edge pattern between its endpoints for EXPLAIN,
// honoring the chain traversal direction (Reverse flips the arrow).
func edgeText(ep EdgePattern, reverse bool) string {
	left, right := "-", "-"
	switch {
	case ep.Dir == DirRight && !reverse, ep.Dir == DirLeft && reverse:
		right = "->"
	case ep.Dir == DirLeft && !reverse, ep.Dir == DirRight && reverse:
		left = "<-"
	}
	edge := ""
	if displayVar(ep.Var) != "" || ep.Type != "" || ep.VarLength() {
		edge = "[" + displayVar(ep.Var)
		if ep.Type != "" {
			edge += ":" + ep.Type
		}
		if ep.VarLength() {
			edge += "*" + hopRangeText(ep)
		}
		edge += "]"
	}
	return left + edge + right
}

func hopRangeText(ep EdgePattern) string {
	if ep.MinHops == ep.MaxHops {
		return strconv.Itoa(ep.MinHops)
	}
	if ep.MaxHops < 0 {
		if ep.MinHops == 1 {
			return ""
		}
		return fmt.Sprintf("%d..", ep.MinHops)
	}
	return fmt.Sprintf("%d..%d", ep.MinHops, ep.MaxHops)
}

// ExpandStage traverses one edge pattern from a bound variable to its
// neighbor, binding the edge and target variables (or checking them when
// already bound).
type ExpandStage struct {
	From    string // bound node variable the expansion starts at
	Edge    EdgePattern
	To      NodePattern
	Reverse bool // chain traversed right-to-left: edge direction flips
	Filters []Expr
	Est     float64
	// SrcLabel is the source label the planner's degree-histogram lookup
	// assumed ("" = all nodes) — kept on the stage so ANALYZE can key
	// cardinality-drift observations to the histogram that produced Est.
	SrcLabel string
}

func (s *ExpandStage) estRows() float64 { return s.Est }
func (s *ExpandStage) filters() []Expr  { return s.Filters }

func (s *ExpandStage) describe() string {
	return fmt.Sprintf("Expand (%s)%s%s", s.From, edgeText(s.Edge, s.Reverse), patternNodeText(s.To))
}

// VarExpandStage traverses a variable-length edge pattern from a bound
// variable: a bounded BFS that binds the target variable once per
// distinct endpoint whose shortest distance lies in [MinHops, MaxHops]
// (reachability semantics, not path enumeration).
type VarExpandStage struct {
	From     string
	Edge     EdgePattern // VarLength() is true
	To       NodePattern
	Reverse  bool
	Filters  []Expr
	Est      float64
	SrcLabel string // planner-assumed source label (see ExpandStage)
}

func (s *VarExpandStage) estRows() float64 { return s.Est }
func (s *VarExpandStage) filters() []Expr  { return s.Filters }

func (s *VarExpandStage) describe() string {
	return fmt.Sprintf("VarExpand (%s)%s%s", s.From, edgeText(s.Edge, s.Reverse), patternNodeText(s.To))
}

// HashJoinStage joins the incoming row stream against an independently
// planned pattern chain on equality keys, replacing the O(n·m)
// nested re-expand the planner used to emit for chains linked only by a
// cross-chain equality predicate (a.x = b.y) or a shared node variable.
// The cheaper side is hashed: with BuildInput false the chain
// sub-pipeline runs once and its rows are hashed by BuildKeys, then each
// incoming row probes by ProbeKeys; with BuildInput true the incoming
// rows are drained and hashed instead and the chain streams as the
// probe. Rows whose key evaluates to null never match (Cypher equality
// semantics), exactly as the predicate filter would have decided.
type HashJoinStage struct {
	Build      []Stage  // standalone sub-pipeline for the joined chain
	BuildVars  []string // variables the chain introduces (installed on match)
	ProbeKeys  []Expr   // evaluated against the incoming row
	BuildKeys  []Expr   // evaluated against the chain row, aligned with ProbeKeys
	BuildInput bool     // hash the incoming side instead (it is the cheaper one)
	Filters    []Expr
	Est        float64
}

func (s *HashJoinStage) estRows() float64 { return s.Est }
func (s *HashJoinStage) filters() []Expr  { return s.Filters }

func (s *HashJoinStage) describe() string {
	keys := make([]string, len(s.ProbeKeys))
	for i := range s.ProbeKeys {
		p, b := exprString(s.ProbeKeys[i]), exprString(s.BuildKeys[i])
		if p == b {
			keys[i] = p
		} else {
			keys[i] = p + " = " + b
		}
	}
	side := "chain"
	if s.BuildInput {
		side = "input"
	}
	return fmt.Sprintf("HashJoin on %s (build=%s)", strings.Join(keys, ", "), side)
}

// BiHop is one hop of a collapsed chain segment: its edge pattern, the
// node pattern the hop lands on, and whether the chain is being walked
// right-to-left at that hop.
type BiHop struct {
	Edge    EdgePattern
	To      NodePattern
	Reverse bool
}

// BiExpandStage traverses a run of ≥3 single-hop edges whose interior
// nodes and edges are anonymous, using counted frontier expansion
// instead of path enumeration: each BFS level carries a walk count per
// node, so multiplicities collapse level by level instead of being
// enumerated path by path. When the far endpoint is already bound the
// stage expands from both endpoints and intersects the counts at the
// middle level (meet-in-the-middle); otherwise it streams the final
// level's nodes in ID order, emitting each row once per walk. The
// multiset of rows is identical to the equivalent Expand chain — only
// the enumeration strategy changes.
type BiExpandStage struct {
	From     string
	Hops     []BiHop
	Filters  []Expr
	Est      float64
	SrcLabel string // planner-assumed source label (see ExpandStage)
}

func (s *BiExpandStage) toPattern() NodePattern { return s.Hops[len(s.Hops)-1].To }

func (s *BiExpandStage) estRows() float64 { return s.Est }
func (s *BiExpandStage) filters() []Expr  { return s.Filters }

func (s *BiExpandStage) describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BiExpand (%s)", displayVar(s.From))
	for _, h := range s.Hops {
		b.WriteString(edgeText(h.Edge, h.Reverse))
		b.WriteString(patternNodeText(h.To))
	}
	fmt.Fprintf(&b, " [%d hops, meet@%d]", len(s.Hops), len(s.Hops)/2)
	return b.String()
}

// OptionalStage runs an inner pipeline for every input row; when the
// inner pipeline produces no extension, the row passes through once with
// the inner pipeline's variables bound to null instead of being dropped.
type OptionalStage struct {
	Inner []Stage  // sub-pipeline, anchored on already-bound variables
	Vars  []string // variables the inner pipeline introduces (null-padded)
	Est   float64
}

func (s *OptionalStage) estRows() float64 { return s.Est }
func (s *OptionalStage) filters() []Expr  { return nil }

func (s *OptionalStage) describe() string {
	vars := make([]string, 0, len(s.Vars))
	for _, v := range s.Vars {
		if displayVar(v) != "" {
			vars = append(vars, v)
		}
	}
	sort.Strings(vars)
	return fmt.Sprintf("Optional [introduces %s]", strings.Join(vars, ", "))
}

// UnwindStage evaluates its expression once per input row (once total
// when it roots the pipeline) and emits one row per element of the
// resulting list with the element bound to Alias. Null unwinds to zero
// rows; a non-list value unwinds to itself (one row). It is the entry
// point of the batch-ingest pipeline: "UNWIND $batch AS row CREATE ..."
// streams each batch row into the eager MutationStage.
type UnwindStage struct {
	Expr  Expr
	Alias string
	Est   float64
}

func (s *UnwindStage) estRows() float64 { return s.Est }
func (s *UnwindStage) filters() []Expr  { return nil }

func (s *UnwindStage) describe() string {
	return fmt.Sprintf("Unwind %s AS %s", exprString(s.Expr), s.Alias)
}

// MutationStage applies a part's writing clauses. It is an eager
// barrier: on first pull it drains and buffers its entire input (the
// part's reading clauses), applies CREATE/MERGE, SET and DELETE once
// per buffered row — so writes can never feed the very match that
// produced them — then re-streams the rows, with created entities bound
// to their pattern variables.
type MutationStage struct {
	Writes *writeClauses
	Est    float64
}

func (s *MutationStage) estRows() float64 { return s.Est }
func (s *MutationStage) filters() []Expr  { return nil }

func (s *MutationStage) describe() string {
	var parts []string
	for _, cc := range s.Writes.creates {
		kw := "Create"
		if cc.Merge {
			kw = "Merge"
		}
		parts = append(parts, fmt.Sprintf("%s %d pattern(s)", kw, len(cc.Patterns)))
	}
	if n := len(s.Writes.sets); n > 0 {
		parts = append(parts, fmt.Sprintf("Set %d prop(s)", n))
	}
	if dc := s.Writes.del; dc != nil {
		kw := "Delete"
		if dc.Detach {
			kw = "DetachDelete"
		}
		parts = append(parts, fmt.Sprintf("%s %s", kw, strings.Join(dc.Vars, ", ")))
	}
	return "Mutate (eager) [" + strings.Join(parts, "; ") + "]"
}

// PlanSegment is one WITH-delimited pipeline segment: stages producing
// bindings, then a projection. Non-final segments feed their projected
// rows to the next segment as fresh bindings; the final segment carries
// the row-level result operators.
type PlanSegment struct {
	Stages       []Stage
	Items        []ReturnItem
	Distinct     bool
	HasAggregate bool
	Filter       Expr // WITH ... WHERE on projected values (nil on final)
	OrderBy      []OrderKey
	Skip         int
	Limit        int // -1 when absent

	// Resolved once at plan time (both are plan-invariant), so repeated
	// executions of a cached plan skip the work: the projected column
	// names, and the ORDER BY strategy (nil without ORDER BY).
	cols []string
	op   *orderPlan
}

// Plan is the executable query plan: a chain of pipeline segments.
// Params carries the $parameter names the plan's query references, so a
// cache hit can validate bindings without re-parsing the text.
// HasWrites marks plans with mutation stages: they refuse to run on a
// read-only engine and report WriteStats.
type Plan struct {
	Segments  []*PlanSegment
	Params    []string
	HasWrites bool
	// Batch marks a batch-mutation plan (an UNWIND feeding writes): its
	// implicit transaction runs in store bulk mode, so the whole batch
	// commits as one WAL tx group with a single stats-materiality
	// judgement and one adjacency seal instead of per-row checks.
	Batch bool
}

// final returns the RETURN segment.
func (p *Plan) final() *PlanSegment { return p.Segments[len(p.Segments)-1] }

// String renders the plan for EXPLAIN: numbered pipeline stages with
// their pushed-down filters (optional sub-pipelines indented), WITH
// boundaries between segments, then the row-level operators in order.
func (p *Plan) String() string { return p.render(nil) }

// render is String plus optional ANALYZE annotations: with a non-nil
// profile, every stage line gains observed cardinality (act), rows-in,
// invocation count and inclusive wall time (plus a drift! marker when
// act diverges from est past the feedback threshold), the projection
// lines gain [in/out/time], and the Sort line gains [in/time]. The
// un-profiled rendering is byte-identical to the pre-ANALYZE EXPLAIN
// output — the golden plan suite pins that.
func (p *Plan) render(prof *planProf) string {
	var b strings.Builder
	if prof != nil {
		b.WriteString("plan (streaming, greedy-ordered, analyzed):\n")
	} else {
		b.WriteString("plan (streaming, greedy-ordered):\n")
	}
	n := 0
	for si, seg := range p.Segments {
		for _, st := range seg.Stages {
			n++
			fmt.Fprintf(&b, "  %2d. %-60s est≈%s%s\n", n, st.describe(), fmtEst(st.estRows()), prof.stageSuffix(st))
			for _, f := range st.filters() {
				fmt.Fprintf(&b, "      where %s\n", exprString(f))
			}
			var inner []Stage
			switch is := st.(type) {
			case *OptionalStage:
				inner = is.Inner
			case *HashJoinStage:
				inner = is.Build
			}
			for ii, ist := range inner {
				fmt.Fprintf(&b, "      %2d.%d %-55s est≈%s%s\n", n, ii+1, ist.describe(), fmtEst(ist.estRows()), prof.stageSuffix(ist))
				for _, f := range ist.filters() {
					fmt.Fprintf(&b, "           where %s\n", exprString(f))
				}
			}
		}
		var cols []string
		for _, it := range seg.Items {
			cols = append(cols, exprString(it.Expr))
		}
		final := si == len(p.Segments)-1
		op := "With"
		if final {
			op = "Project"
			if seg.HasAggregate {
				op = "Aggregate"
			}
		} else if seg.HasAggregate {
			op = "With (aggregating)"
		}
		colsText := strings.Join(cols, ", ")
		if colsText == "" {
			colsText = "(write counts only)"
		}
		fmt.Fprintf(&b, "   => %s %s%s\n", op, colsText, prof.opSuffix(seg))
		if seg.Distinct && !seg.HasAggregate {
			b.WriteString("   => Distinct\n")
		}
		if seg.Filter != nil {
			fmt.Fprintf(&b, "      where %s\n", exprString(seg.Filter))
		}
		if final {
			if len(seg.OrderBy) > 0 {
				var keys []string
				for _, k := range seg.OrderBy {
					t := exprString(k.Expr)
					if k.Desc {
						t += " desc"
					}
					keys = append(keys, t)
				}
				fmt.Fprintf(&b, "   => Sort %s%s\n", strings.Join(keys, ", "), prof.sortSuffix(seg))
			}
			if seg.Skip > 0 {
				fmt.Fprintf(&b, "   => Skip %d\n", seg.Skip)
			}
			if seg.Limit >= 0 {
				fmt.Fprintf(&b, "   => Limit %d (early cutoff)\n", seg.Limit)
			}
		}
	}
	return b.String()
}

func fmtEst(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

// displayVar hides the synthetic names the planner assigns to anonymous
// pattern elements.
func displayVar(v string) string {
	if strings.HasPrefix(v, "$") {
		return ""
	}
	return v
}

func patternNodeText(np NodePattern) string {
	var b strings.Builder
	b.WriteString("(")
	b.WriteString(displayVar(np.Var))
	if np.Label != "" {
		b.WriteString(":")
		b.WriteString(np.Label)
	}
	if len(np.Props) > 0 {
		keys := make([]string, 0, len(np.Props))
		for k := range np.Props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			v := np.Props[k]
			if v.Kind == KindString {
				parts[i] = fmt.Sprintf("%s: %q", k, v.Str)
			} else {
				parts[i] = fmt.Sprintf("%s: %s", k, v.String())
			}
		}
		b.WriteString(" {")
		b.WriteString(strings.Join(parts, ", "))
		b.WriteString("}")
	}
	b.WriteString(")")
	return b.String()
}

// exprString renders any expression for EXPLAIN output.
func exprString(e Expr) string {
	switch v := e.(type) {
	case VarExpr:
		return v.Name
	case PropExpr:
		return v.Var + "." + v.Prop
	case LitExpr:
		if v.Val.Kind == KindString {
			return strconv.Quote(v.Val.Str)
		}
		return v.Val.String()
	case CmpExpr:
		op := v.Op
		switch op {
		case "starts":
			op = "starts with"
		case "ends":
			op = "ends with"
		}
		return exprString(v.Left) + " " + op + " " + exprString(v.Right)
	case BoolExpr:
		return "(" + exprString(v.Left) + " " + v.Op + " " + exprString(v.Right) + ")"
	case NotExpr:
		return "not " + exprString(v.Inner)
	case ParamExpr:
		return "$" + v.Name
	case FuncExpr:
		if v.Star {
			return v.Name + "(*)"
		}
		return v.Name + "(" + exprString(v.Arg) + ")"
	case ListExpr:
		parts := make([]string, len(v.Elems))
		for i, ee := range v.Elems {
			parts[i] = exprString(ee)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	}
	return "expr"
}
