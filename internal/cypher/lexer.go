// Package cypher implements the query language of SecurityKG's exploration
// stack: a practical subset of Neo4j's Cypher sufficient for the paper's
// demo scenarios and the threat-hunting workloads. Supported shape:
//
//	MATCH (a:Label {prop: "v"})-[r:RELTYPE]->(b), (c)
//	OPTIONAL MATCH (a)-[:USES*1..3]->(d) WHERE d.name <> $excluded
//	WITH a, collect(d.name) AS tools WHERE a.name CONTAINS $fragment
//	MATCH (a)-[:DROP]->(f)
//	RETURN DISTINCT a, tools, min(f.name), count(*)
//	ORDER BY a.name DESC SKIP 2 LIMIT 10
//
// The write surface mutates the graph through the same statement shape:
//
//	CREATE (m:Malware {name: $ioc})-[:CONNECT {proto: "tcp"}]->(ip:IP {name: "10.0.0.1"})
//	MERGE (t:Tool {name: "mimikatz"})
//	MATCH (m:Malware {name: $ioc}) SET m.triaged = "true"
//	MATCH (m:Malware {name: $ioc}) DETACH DELETE m
//
// CREATE and MERGE both land on the store's exact-(label, name) merge
// rule (Section 2.5: nodes with exactly the same description text are
// one node), so creation is idempotent; returned WriteStats count what
// actually came into existence. Writes are eager — a segment's reads
// fully materialize before its writes run — and RETURN is optional on a
// writing statement. Every mutation is observed by the store's
// mutation hook, which is how the durability layer (internal/storage)
// write-ahead-logs Cypher writes.
//
// "$name" placeholders are query parameters, usable wherever a literal
// is (inline property maps, WHERE operands, projections). They are
// resolved when the statement is executed, so one parsed-and-planned
// statement serves every binding and values are never spliced into
// query text.
//
// Variable-length patterns ("-[:T*m..n]->") use reachability semantics:
// an endpoint matches when its shortest distance from the start along
// edges of the given type/direction lies in [m, n], and each endpoint is
// bound once per input row (bounded BFS with a visited set), not once per
// path. collect() returns a canonically ordered list so results are
// deterministic. Identifier comparison is case-insensitive for keywords,
// case-sensitive for labels, relation types, and property values.
package cypher

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokLBrace
	tokRBrace
	tokColon
	tokComma
	tokDot
	tokDotDot // .. (variable-length hop range)
	tokDash
	tokArrowRight // ->
	tokArrowLeft  // <-
	tokEq
	tokNeq
	tokLt
	tokGt
	tokLe
	tokGe
	tokStar
	tokParam // $name placeholder; token text is the bare name
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '[':
			l.emit(tokLBracket, "[")
		case c == ']':
			l.emit(tokRBracket, "]")
		case c == '{':
			l.emit(tokLBrace, "{")
		case c == '}':
			l.emit(tokRBrace, "}")
		case c == ':':
			l.emit(tokColon, ":")
		case c == ',':
			l.emit(tokComma, ",")
		case c == '.':
			if strings.HasPrefix(l.src[l.pos:], "..") {
				l.emitN(tokDotDot, "..", 2)
			} else {
				l.emit(tokDot, ".")
			}
		case c == '*':
			l.emit(tokStar, "*")
		case c == '-':
			if strings.HasPrefix(l.src[l.pos:], "->") {
				l.emitN(tokArrowRight, "->", 2)
			} else {
				l.emit(tokDash, "-")
			}
		case c == '<':
			switch {
			case strings.HasPrefix(l.src[l.pos:], "<>"):
				l.emitN(tokNeq, "<>", 2)
			case strings.HasPrefix(l.src[l.pos:], "<="):
				l.emitN(tokLe, "<=", 2)
			case strings.HasPrefix(l.src[l.pos:], "<-"):
				l.emitN(tokArrowLeft, "<-", 2)
			default:
				l.emit(tokLt, "<")
			}
		case c == '>':
			if strings.HasPrefix(l.src[l.pos:], ">=") {
				l.emitN(tokGe, ">=", 2)
			} else {
				l.emit(tokGt, ">")
			}
		case c == '=':
			l.emit(tokEq, "=")
		case c == '!':
			if strings.HasPrefix(l.src[l.pos:], "!=") {
				l.emitN(tokNeq, "!=", 2)
			} else {
				return nil, fmt.Errorf("cypher: unexpected '!' at %d", l.pos)
			}
		case c == '"' || c == '\'':
			s, err := l.lexString(c)
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{tokString, s, l.pos})
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			// A fractional part needs a digit after the dot, so "1..3"
			// lexes as NUMBER DOTDOT NUMBER, not one malformed number.
			if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
				l.pos++
				for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
					l.pos++
				}
			}
			l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		case c == '$':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			if l.pos == start+1 {
				return nil, fmt.Errorf("cypher: '$' must be followed by a parameter name at %d", start)
			}
			l.toks = append(l.toks, token{tokParam, l.src[start+1 : l.pos], start})
		case c == '`':
			// Backquoted identifier (allows special characters).
			end := strings.IndexByte(l.src[l.pos+1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("cypher: unterminated backquote at %d", l.pos)
			}
			l.toks = append(l.toks, token{tokIdent, l.src[l.pos+1 : l.pos+1+end], l.pos})
			l.pos += end + 2
		default:
			return nil, fmt.Errorf("cypher: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, t string) { l.toks = append(l.toks, token{k, t, l.pos}); l.pos++ }
func (l *lexer) emitN(k tokKind, t string, n int) {
	l.toks = append(l.toks, token{k, t, l.pos})
	l.pos += n
}

func (l *lexer) lexString(quote byte) (string, error) {
	var b strings.Builder
	i := l.pos + 1
	for i < len(l.src) {
		c := l.src[i]
		if c == '\\' && i+1 < len(l.src) {
			next := l.src[i+1]
			switch next {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"', '\'':
				b.WriteByte(next)
			default:
				b.WriteByte(next)
			}
			i += 2
			continue
		}
		if c == quote {
			l.pos = i + 1
			return b.String(), nil
		}
		b.WriteByte(c)
		i++
	}
	return "", fmt.Errorf("cypher: unterminated string at %d", l.pos)
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }
