package cypher

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"securitykg/internal/graph"
)

// writeFixture builds the store both write-test engines start from.
func writeFixture() *graph.Store {
	s := graph.New()
	s.IndexAttr("platform")
	m, _ := s.MergeNode("Malware", "wannacry", map[string]string{"platform": "windows"})
	ip, _ := s.MergeNode("IP", "10.1.2.3", nil)
	t1, _ := s.MergeNode("Tool", "t1", nil)
	t2, _ := s.MergeNode("Tool", "t2", nil)
	actor, _ := s.MergeNode("ThreatActor", "apt0", nil)
	s.AddEdge(m, "CONNECT", ip, nil)
	s.AddEdge(m, "USE", t1, nil)
	s.AddEdge(actor, "USE", t1, nil)
	s.AddEdge(t1, "USE", t2, nil)
	return s
}

func storeBytes(t *testing.T, s *graph.Store) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// resultFingerprint renders a result for cross-engine comparison.
func resultFingerprint(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cols=%v\n", res.Columns)
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(v.String())
		}
		b.WriteString("\n")
	}
	if res.Writes != nil {
		fmt.Fprintf(&b, "writes=%s\n", res.Writes)
	}
	return b.String()
}

// runWriteDifferential executes the statement sequence on two fresh
// fixture stores — streaming engine on one, legacy on the other —
// asserting after every statement that results (or errors) agree and
// finally that the two stores' Save output is byte-identical. A "!"
// prefix marks a statement that MUST error (identically on both
// engines); unprefixed statements must succeed, so an intended
// success case can never silently rot into a parse error.
func runWriteDifferential(t *testing.T, stmts []string, args map[string]any) {
	t.Helper()
	planned := writeFixture()
	legacy := writeFixture()
	pe := NewEngine(planned, Options{UseIndexes: true, MaxBytes: 16 << 20})
	le := NewEngine(legacy, Options{UseIndexes: true, MaxBytes: 16 << 20, Legacy: true})
	for i, src := range stmts {
		wantErr := strings.HasPrefix(src, "!")
		src = strings.TrimPrefix(src, "!")
		pr, perr := pe.Query(src, args)
		lr, lerr := le.Query(src, args)
		if (perr == nil) != (lerr == nil) {
			t.Fatalf("stmt %d %q: planned err=%v legacy err=%v", i, src, perr, lerr)
		}
		if (perr != nil) != wantErr {
			t.Fatalf("stmt %d %q: wantErr=%v got planned err=%v", i, src, wantErr, perr)
		}
		if perr != nil {
			continue
		}
		if pf, lf := resultFingerprint(pr), resultFingerprint(lr); pf != lf {
			t.Fatalf("stmt %d %q:\nplanned:\n%s\nlegacy:\n%s", i, src, pf, lf)
		}
	}
	if !bytes.Equal(storeBytes(t, planned), storeBytes(t, legacy)) {
		t.Fatalf("final stores diverged after %d statements", len(stmts))
	}
}

// TestWriteDifferentialScripted runs the full write surface — CREATE,
// MERGE, SET, DELETE, DETACH DELETE, $params, WITH chaining, optional
// RETURN — identically through both engines.
func TestWriteDifferentialScripted(t *testing.T) {
	args := map[string]any{"ioc": "10.9.9.9", "fam": "worm", "actor": "apt0"}
	runWriteDifferential(t, []string{
		`create (x:Malware {name: "petya", platform: "windows"})`,
		`create (x:Malware {name: "petya"})`, // merge-by-name: creates nothing
		`merge (x:Malware {name: "petya"}) return x.platform`,
		`create (a:IP {name: $ioc})`,
		`match (m:Malware {name: "petya"}), (ip:IP {name: $ioc}) create (m)-[c:CONNECT {proto: "tcp"}]->(ip) return type(c)`,
		`match (m:Malware) set m.family = $fam return m.name, m.family order by m.name`,
		`match (m:Malware {name: "petya"}) set m.score = 7, m.active = true return m.score, m.active`,
		`match (a:ThreatActor {name: $actor}) optional match (a)-[:ATTRIB]->(x) set x.seen = "1" return a.name, x`,
		`create (f:FileName {name: "a.exe"})-[:DROPPED_BY]->(m:Malware {name: "petya"})`,
		`match (m:Malware {name: "petya"})<-[r:DROPPED_BY]-(f) delete r return f.name`,
		`match (f:FileName {name: "a.exe"}) delete f`,
		`match (m:Malware {name: "wannacry"}) detach delete m`,
		`match (t:Tool) with t where t.name = "t1" create (g:ThreatActor {name: "ghost"})-[:USE]->(t) return g.name, t.name`,
		`merge (g:ThreatActor {name: "ghost"}) merge (h:ThreatActor {name: "ghost2"}) create (g)-[:PEERS]->(h)`,
		`match (x:ThreatActor) where x.name starts with "ghost" detach delete x`,
		// Error paths must agree too (connected node without DETACH,
		// label-less create, SET on structural props, bad deletes).
		`!match (ip:IP {name: $ioc}) delete ip`,
		`!create (x {name: "nolabel"})`,
		`!create (x:T)`,
		`!match (t:Tool) set t.name = "renamed" return t`,
		`!match (t:Tool)-[r:USE]->(u) set r.w = "1" return r`,
		`!match (t:Tool) delete missing`,
		`!create (a:A {name: "a"})-[:E]-(b:B {name: "b"})`,
	}, args)
}

// TestWriteDifferentialRandom fuzzes short random write scripts through
// both engines: any divergence in results, errors, or final store bytes
// is a bug regardless of how nonsensical the script is.
func TestWriteDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	names := []string{"wannacry", "petya", "t1", "t2", "n-%d", "10.1.2.3"}
	labels := []string{"Malware", "Tool", "IP", "Host"}
	rels := []string{"CONNECT", "USE", "DROP"}
	pick := func(ss []string) string {
		s := ss[rng.Intn(len(ss))]
		if strings.Contains(s, "%d") {
			s = fmt.Sprintf(s, rng.Intn(5))
		}
		return s
	}
	for round := 0; round < 40; round++ {
		var stmts []string
		for n := 0; n < 6; n++ {
			switch rng.Intn(6) {
			case 0:
				stmts = append(stmts, fmt.Sprintf(`create (x:%s {name: %q})`, pick(labels), pick(names)))
			case 1:
				stmts = append(stmts, fmt.Sprintf(`merge (x:%s {name: %q}) return x.name`, pick(labels), pick(names)))
			case 2:
				stmts = append(stmts, fmt.Sprintf(`match (a {name: %q}), (b {name: %q}) create (a)-[:%s]->(b)`,
					pick(names), pick(names), pick(rels)))
			case 3:
				stmts = append(stmts, fmt.Sprintf(`match (x:%s) set x.mark = %q return count(x)`, pick(labels), pick(names)))
			case 4:
				stmts = append(stmts, fmt.Sprintf(`match (x {name: %q}) detach delete x`, pick(names)))
			case 5:
				stmts = append(stmts, fmt.Sprintf(`match (a)-[r:%s]->(b) delete r return count(*)`, pick(rels)))
			}
		}
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			runWriteDifferential(t, stmts, nil)
		})
	}
}

// TestWriteOnlyRowsCursor: a write-only statement streams zero rows but
// applies its mutations on the first pull and reports counts.
func TestWriteOnlyRowsCursor(t *testing.T) {
	s := writeFixture()
	eng := NewEngine(s, DefaultOptions())
	rows, err := eng.QueryRows(`create (x:Host {name: "h9"})`, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if len(rows.Columns()) != 0 {
		t.Fatalf("write-only columns: %v", rows.Columns())
	}
	if rows.Next() {
		t.Fatal("write-only statement produced a row")
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if ws := rows.Writes(); ws == nil || ws.NodesCreated != 1 {
		t.Fatalf("writes: %+v", ws)
	}
	if s.FindNode("Host", "h9") == nil {
		t.Fatal("mutation not applied")
	}
}

// TestReadOnlyEngineRejectsWrites: both engines refuse writes under
// Options.ReadOnly; EXPLAIN of a write statement stays allowed.
func TestReadOnlyEngineRejectsWrites(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		s := writeFixture()
		eng := NewEngine(s, Options{UseIndexes: true, ReadOnly: true, Legacy: legacy})
		if _, err := eng.Query(`create (x:A {name: "a"})`, nil); err == nil {
			t.Fatalf("legacy=%v: read-only engine accepted a write", legacy)
		}
		if _, err := eng.Query(`match (n) return count(*)`, nil); err != nil {
			t.Fatalf("legacy=%v: read-only engine rejected a read: %v", legacy, err)
		}
		if _, err := eng.Query(`explain create (x:A {name: "a"})`, nil); err != nil {
			t.Fatalf("legacy=%v: read-only engine rejected EXPLAIN of a write: %v", legacy, err)
		}
	}
}

// TestWriteEagerness: the Halloween guard — a CREATE can never extend
// the very match set that produced it, even though the scan is lazy.
func TestWriteEagerness(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		s := graph.New()
		s.MergeNode("T", "seed-1", nil)
		s.MergeNode("T", "seed-2", nil)
		eng := NewEngine(s, Options{UseIndexes: true, Legacy: legacy})
		res, err := eng.Query(`match (n:T) create (c:T {name: "clone"}) return count(n)`, nil)
		if err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		// Two seed rows → count is 2 (the clone never joins its own
		// match), and the clone was created once then merged once.
		if res.Rows[0][0].Num != 2 {
			t.Fatalf("legacy=%v: CREATE fed its own MATCH: count=%v", legacy, res.Rows[0][0])
		}
		if res.Writes.NodesCreated != 1 {
			t.Fatalf("legacy=%v: writes %+v", legacy, res.Writes)
		}
	}
}

// TestMaterialMutationInvalidatesPlanCache: mutations that materially
// change a planner-visible count (bulk deletes, bulk inserts) bump the
// store's stats version, so the shared plan cache re-plans instead of
// serving plans costed against stale statistics.
func TestMaterialMutationInvalidatesPlanCache(t *testing.T) {
	s := graph.New()
	var mals []graph.NodeID
	for i := 0; i < 100; i++ {
		m, _ := s.MergeNode("Malware", fmt.Sprintf("m%d", i), nil)
		ip, _ := s.MergeNode("IP", fmt.Sprintf("10.0.0.%d", i), nil)
		s.AddEdge(m, "CONNECT", ip, nil)
		mals = append(mals, m)
	}
	eng := NewEngine(s, DefaultOptions())
	const q = `match (m:Malware)-[:CONNECT]->(ip) return ip.name`
	for i := 0; i < 2; i++ {
		if _, err := eng.Query(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.PlanCacheStats()
	if st.Hits < 1 {
		t.Fatalf("warmup did not hit the cache: %+v", st)
	}
	before := eng.PlanCacheStats()
	for _, id := range mals[:40] { // 40% of the Malware label: material
		if err := s.DeleteNode(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	after := eng.PlanCacheStats()
	if after.Misses == before.Misses {
		t.Fatalf("bulk delete did not invalidate the cached plan (stats %+v -> %+v)", before, after)
	}
}

// TestWriteHeavyPreparedKeepsCacheHits is the epoch-granularity
// regression from the ROADMAP: single-row writes on a store whose shape
// stays roughly stable are immaterial to the planner, so a write-heavy
// prepared workload must keep hitting the shared plan cache instead of
// re-planning after every mutation (the old per-mutation epoch evicted
// everything on every effective write).
func TestWriteHeavyPreparedKeepsCacheHits(t *testing.T) {
	s := graph.New()
	for i := 0; i < 300; i++ {
		m, _ := s.MergeNode("Malware", fmt.Sprintf("m%d", i), nil)
		ip, _ := s.MergeNode("IP", fmt.Sprintf("10.0.%d.%d", i/250, i%250), nil)
		s.AddEdge(m, "CONNECT", ip, nil)
	}
	eng := NewEngine(s, DefaultOptions())
	const read = `match (m:Malware {name: $name})-[:CONNECT]->(ip) return ip.name`
	// Warm the read plan.
	if _, err := eng.Query(read, map[string]any{"name": "m0"}); err != nil {
		t.Fatal(err)
	}
	write, err := eng.Prepare(`match (m:Malware {name: $name}) set m.seen = $seen`)
	if err != nil {
		t.Fatal(err)
	}
	defer write.Close()
	base := eng.PlanCacheStats()
	const rounds = 50
	for i := 0; i < rounds; i++ {
		// Effective mutation every round: the value changes each time.
		if _, err := write.Query(map[string]any{"name": fmt.Sprintf("m%d", i%300), "seen": fmt.Sprintf("t%d", i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Query(read, map[string]any{"name": fmt.Sprintf("m%d", i%300)}); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.PlanCacheStats()
	if got := st.Misses - base.Misses; got != 0 {
		t.Errorf("write-heavy workload re-planned %d times; want 0 (stats %+v -> %+v)", got, base, st)
	}
	// One prepared-write plan + interleaved reads: every execution after
	// warmup must be a hit.
	if got := st.Hits - base.Hits; got < rounds {
		t.Errorf("hits grew by %d, want >= %d", st.Hits-base.Hits, rounds)
	}
}

// TestPreparedWriteStatement: a prepared MERGE runs per binding with
// one plan, and parameters stay data (no splicing).
func TestPreparedWriteStatement(t *testing.T) {
	s := graph.New()
	eng := NewEngine(s, DefaultOptions())
	stmt, err := eng.Prepare(`merge (m:Malware {name: $ioc}) set m.seen = $seen`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if got := stmt.Params(); !reflect.DeepEqual(got, []string{"ioc", "seen"}) {
		t.Fatalf("params: %v", got)
	}
	iocs := []string{"a", "b", `") detach delete (x`, "a"}
	for _, ioc := range iocs {
		res, err := stmt.Query(map[string]any{"ioc": ioc, "seen": "1"})
		if err != nil {
			t.Fatalf("%q: %v", ioc, err)
		}
		if res.Writes == nil {
			t.Fatalf("%q: no write stats", ioc)
		}
	}
	// 3 distinct names → 3 nodes; the injection attempt is a node name.
	if n := s.CountByType("Malware"); n != 3 {
		t.Fatalf("expected 3 Malware nodes, got %d", n)
	}
	if len(s.NodesByName(`") detach delete (x`)) != 1 {
		t.Fatal("injection-shaped parameter was not treated as data")
	}
}

// TestMutationExplain: EXPLAIN renders the eager mutation stage.
func TestMutationExplain(t *testing.T) {
	s := writeFixture()
	eng := NewEngine(s, DefaultOptions())
	plan, err := eng.Explain(`match (m:Malware) set m.x = "1" detach delete m`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Mutate (eager)") || !strings.Contains(plan, "DetachDelete") {
		t.Fatalf("EXPLAIN missing mutation stage:\n%s", plan)
	}
	if !strings.Contains(plan, "write counts only") {
		t.Fatalf("EXPLAIN missing write-only projection marker:\n%s", plan)
	}
}

// TestWriteParseErrors: write-clause grammar violations fail cleanly.
func TestWriteParseErrors(t *testing.T) {
	bad := []string{
		`create (a)-[:T*1..2]->(b)`,                     // var-length create
		`create (a:A {name:"a"})-[]->(b:B {name:"b"})`,  // untyped edge
		`create (a:A {name:"a"})-[:T]-(b:B {name:"b"})`, // undirected edge
		`match (a)-[r:T {w: "1"}]->(b) return a`,        // edge props outside create
		`detach match (n) return n`,                     // detach without delete
		`match (n) delete`,                              // missing delete target
		`match (n) set n = "x"`,                         // SET needs var.prop
		`create (a:A {name:"a"}) match (b) return b`,    // match after create
		`match (n) return n create (x:A {name:"a"})`,    // create after return
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
	// RETURN stays optional only when the statement writes.
	if _, err := Parse(`match (n)`); err == nil {
		t.Error("Parse accepted a read-only statement without RETURN")
	}
	if _, err := Parse(`create (a:A {name: "x"})`); err != nil {
		t.Errorf("Parse rejected a write-only statement: %v", err)
	}
}

// TestSetNoOpNotCounted: SET writing the value already present changes
// nothing — no count, no epoch bump, no WAL record — so WriteStats
// agrees with the store and the durability log.
func TestSetNoOpNotCounted(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		s := writeFixture()
		eng := NewEngine(s, Options{UseIndexes: true, Legacy: legacy})
		const q = `match (m:Malware {name: "wannacry"}) set m.mark = "1" return m.mark`
		res, err := eng.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Writes.PropsSet != 1 {
			t.Fatalf("legacy=%v first set: %+v", legacy, res.Writes)
		}
		epoch := s.IndexEpoch()
		res, err = eng.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Writes.PropsSet != 0 {
			t.Fatalf("legacy=%v no-op set counted: %+v", legacy, res.Writes)
		}
		if s.IndexEpoch() != epoch {
			t.Fatalf("legacy=%v no-op set bumped the epoch", legacy)
		}
	}
}

// TestSelfLoopDeleteCount: a self-loop is one edge, in both the plain
// DELETE refusal message and the DETACH DELETE counters.
func TestSelfLoopDeleteCount(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		s := graph.New()
		eng := NewEngine(s, Options{UseIndexes: true, Legacy: legacy})
		if _, err := eng.Query(`create (a:A {name: "a"})-[:T]->(a)`, nil); err != nil {
			t.Fatal(err)
		}
		_, err := eng.Query(`match (a:A {name: "a"}) delete a`, nil)
		if err == nil || !strings.Contains(err.Error(), "1 relationship") {
			t.Fatalf("legacy=%v plain delete: %v", legacy, err)
		}
		res, err := eng.Query(`match (a:A {name: "a"}) detach delete a`, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Writes.NodesDeleted != 1 || res.Writes.EdgesDeleted != 1 {
			t.Fatalf("legacy=%v self-loop counts: %+v", legacy, res.Writes)
		}
	}
}

// TestWriteCursorCloseAppliesMutations: a write cursor handed to a
// caller must apply its mutations even if the caller closes it without
// ever calling Next.
func TestWriteCursorCloseAppliesMutations(t *testing.T) {
	s := graph.New()
	eng := NewEngine(s, DefaultOptions())
	rows, err := eng.QueryRows(`create (x:T {name: "close-only"})`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if s.FindNode("T", "close-only") == nil {
		t.Fatal("Close without Next dropped the write")
	}
	if ws := rows.Writes(); ws == nil || ws.NodesCreated != 1 {
		t.Fatalf("writes after close: %+v", ws)
	}
	// After a Next, Close must NOT re-apply or pull further.
	rows, err = eng.QueryRows(`match (x:T) set x.seen = "1" return x.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if ws := rows.Writes(); ws.PropsSet != 1 {
		t.Fatalf("writes after Next+Close: %+v", ws)
	}
}

// TestWriteWithLimitZero: LIMIT 0 returns no rows but the writes still
// apply — identically on both engines.
func TestWriteWithLimitZero(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		s := writeFixture()
		eng := NewEngine(s, Options{UseIndexes: true, Legacy: legacy})
		res, err := eng.Query(`match (t:Tool) set t.mark = "1" return t.name limit 0`, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("legacy=%v LIMIT 0 returned rows: %v", legacy, res.Rows)
		}
		if res.Writes.PropsSet != 2 {
			t.Fatalf("legacy=%v LIMIT 0 dropped writes: %+v", legacy, res.Writes)
		}
		for _, name := range []string{"t1", "t2"} {
			if n := s.FindNode("Tool", name); n == nil || n.Attrs["mark"] != "1" {
				t.Fatalf("legacy=%v %s not written: %+v", legacy, name, n)
			}
		}
	}
}

// TestMergeAugmentCounted: a MERGE that adds new attributes to an
// existing node is a real (WAL-logged) mutation and counts as props
// set, never as an all-zero write.
func TestMergeAugmentCounted(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		s := writeFixture()
		eng := NewEngine(s, Options{UseIndexes: true, Legacy: legacy})
		res, err := eng.Query(`merge (m:Malware {name: "wannacry", triaged: "1", platform: "ignored"})`, nil)
		if err != nil {
			t.Fatal(err)
		}
		// platform already exists (first-writer-wins: not counted);
		// triaged is new.
		if res.Writes.NodesCreated != 0 || res.Writes.PropsSet != 1 {
			t.Fatalf("legacy=%v augmenting merge counts: %+v", legacy, res.Writes)
		}
		res, err = eng.Query(`merge (m:Malware {name: "wannacry", triaged: "1"})`, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Writes.Zero() {
			t.Fatalf("legacy=%v pure merge hit counted: %+v", legacy, res.Writes)
		}
	}
}

// TestEdgeAugmentCounted: re-merging an existing edge with new
// attributes is a WAL-logged mutation and counts as props set.
func TestEdgeAugmentCounted(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		s := graph.New()
		eng := NewEngine(s, Options{UseIndexes: true, Legacy: legacy})
		if _, err := eng.Query(`create (a:A {name: "a"})-[:pair]->(b:B {name: "b"})`, nil); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Query(`match (a:A {name: "a"}), (b:B {name: "b"}) merge (a)-[:pair {proto: "udp"}]->(b)`, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Writes.EdgesCreated != 0 || res.Writes.PropsSet != 1 {
			t.Fatalf("legacy=%v edge augment counts: %+v", legacy, res.Writes)
		}
		res, err = eng.Query(`match (a:A {name: "a"}), (b:B {name: "b"}) merge (a)-[:pair {proto: "udp"}]->(b)`, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Writes.Zero() {
			t.Fatalf("legacy=%v idempotent edge merge counted: %+v", legacy, res.Writes)
		}
	}
}

// TestClauseOrderDiagnostics: reads/creates after SET/DELETE name the
// WITH remedy instead of a generic expected-token error.
func TestClauseOrderDiagnostics(t *testing.T) {
	for _, src := range []string{
		`match (n:Host) set n.seen = "1" create (m:Audit {name: "a1"})`,
		`match (n) delete n match (m) return m`,
		`match (n) detach delete n set n.x = "1"`,
	} {
		_, err := Parse(src)
		if err == nil || !strings.Contains(err.Error(), "separate them with WITH") {
			t.Errorf("%q: %v", src, err)
		}
	}
}
