package cypher

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"securitykg/internal/graph"
)

// skewedStore has 1 Malware hub and many IP leaves so start-node choice
// is unambiguous.
func skewedStore(t *testing.T) *graph.Store {
	t.Helper()
	s := graph.New()
	mal, _ := s.MergeNode("Malware", "hub", nil)
	for i := 0; i < 500; i++ {
		ip, _ := s.MergeNode("IP", fmt.Sprintf("10.0.%d.%d", i/250, i%250), nil)
		if _, _, err := s.AddEdge(mal, "CONNECT", ip, nil); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func plan(t *testing.T, s *graph.Store, q string) *Plan {
	t.Helper()
	parsed, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	pl, err := NewEngine(s, DefaultOptions()).planQuery(parsed)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	return pl
}

func TestPlannerStartsAtSelectiveLabel(t *testing.T) {
	// Written order starts at the 500-node IP side; the planner must
	// reverse it and enter at the single Malware node.
	pl := plan(t, skewedStore(t), `match (ip:IP)<-[:CONNECT]-(m:Malware) return ip.name`)
	scan, ok := pl.Segments[0].Stages[0].(*ScanStage)
	if !ok {
		t.Fatalf("first stage is %T, want ScanStage", pl.Segments[0].Stages[0])
	}
	if scan.Node.Label != "Malware" || scan.Access != AccessLabel {
		t.Errorf("start = %s %s, want LabelScan on Malware", scan.Access, scan.Node.Label)
	}
	exp, ok := pl.Segments[0].Stages[1].(*ExpandStage)
	if !ok {
		t.Fatalf("second stage is %T, want ExpandStage", pl.Segments[0].Stages[1])
	}
	if !exp.Reverse || exp.From != "m" || exp.To.Var != "ip" {
		t.Errorf("expand = %+v, want reverse m->ip", exp)
	}
}

func TestPlannerNameSeekPushdown(t *testing.T) {
	// A WHERE name equality plus a type equality must collapse into an
	// exact (label, name) point seek.
	pl := plan(t, skewedStore(t), `match (n) where n.name = "hub" and n.type = "Malware" return n`)
	scan := pl.Segments[0].Stages[0].(*ScanStage)
	if scan.Access != AccessLabelName || scan.Name != "hub" {
		t.Errorf("access = %s name=%q, want IndexSeek(label+name) hub", scan.Access, scan.Name)
	}
	if scan.Est != 1 {
		t.Errorf("est = %f, want 1", scan.Est)
	}
	// Both conjuncts stay attached as stage filters (belt and braces).
	if len(scan.Filters) != 2 {
		t.Errorf("filters = %d, want 2", len(scan.Filters))
	}
}

func TestPlannerCompositeAttrSeek(t *testing.T) {
	s := graph.New()
	s.IndexAttr("platform")
	for i := 0; i < 100; i++ {
		plat := "windows"
		if i%10 == 0 {
			plat = "solaris"
		}
		s.MergeNode("Malware", fmt.Sprintf("m%d", i), map[string]string{"platform": plat})
	}
	pl := plan(t, s, `match (m:Malware) where m.platform = "solaris" return m.name`)
	scan := pl.Segments[0].Stages[0].(*ScanStage)
	if scan.Access != AccessLabelAttr || scan.AttrKey != "platform" || scan.AttrVal != "solaris" {
		t.Errorf("access = %s %s=%s, want composite seek on platform=solaris", scan.Access, scan.AttrKey, scan.AttrVal)
	}
	if scan.Est != 10 {
		t.Errorf("est = %f, want 10", scan.Est)
	}
	res, err := NewEngine(s, DefaultOptions()).Run(`match (m:Malware) where m.platform = "solaris" return m.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("rows = %d, want 10", len(res.Rows))
	}
}

func TestPlannerBoundChainPiggybacks(t *testing.T) {
	// The second pattern shares m, so it must start from the bound
	// variable instead of a fresh scan.
	pl := plan(t, skewedStore(t), `match (m:Malware)-[:CONNECT]->(ip), (m)-[:CONNECT]->(ip2) return ip.name, ip2.name`)
	bounds := 0
	for _, st := range pl.Segments[0].Stages {
		if sc, ok := st.(*ScanStage); ok && sc.Access == AccessBound {
			bounds++
		}
	}
	if bounds != 1 {
		t.Errorf("bound-start stages = %d, want 1", bounds)
	}
}

func TestPlannerNoIndexesForcesFullScan(t *testing.T) {
	pl := func() *Plan {
		parsed, err := Parse(`match (m:Malware) return m`)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewEngine(skewedStore(t), Options{UseIndexes: false}).planQuery(parsed)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}()
	if scan := pl.Segments[0].Stages[0].(*ScanStage); scan.Access != AccessAll {
		t.Errorf("access = %s, want AllNodesScan when indexes are disabled", scan.Access)
	}
}

func TestExplainStatement(t *testing.T) {
	s := skewedStore(t)
	res, err := NewEngine(s, DefaultOptions()).Run(
		`explain match (m:Malware)-[:CONNECT]->(ip) where ip.name contains "10." return ip.name limit 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("explain columns: %v", res.Columns)
	}
	text := ""
	for _, r := range res.Rows {
		text += r[0].Str + "\n"
	}
	for _, want := range []string{"LabelScan", "Expand", "Limit 5", `contains "10."`} {
		if !strings.Contains(text, want) {
			t.Errorf("explain output missing %q:\n%s", want, text)
		}
	}
}

func TestExplainDoesNotExecute(t *testing.T) {
	s := skewedStore(t)
	res, err := NewEngine(s, DefaultOptions()).Run(`explain match (n) return n`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r[0].Kind != KindString {
			t.Fatalf("explain produced non-plan row: %+v", r)
		}
	}
}

func TestMaxRowsTruncatedFlag(t *testing.T) {
	s := graph.New()
	for i := 0; i < 50; i++ {
		s.MergeNode("T", fmt.Sprintf("n%d", i), nil)
	}
	eng := NewEngine(s, Options{UseIndexes: true, MaxRows: 10})
	res, err := eng.Run(`match (n) return n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 || !res.Truncated {
		t.Errorf("rows=%d truncated=%v, want 10/true", len(res.Rows), res.Truncated)
	}
	// An explicit LIMIT below the cap is not a truncation.
	res, err = eng.Run(`match (n) return n limit 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 || res.Truncated {
		t.Errorf("rows=%d truncated=%v, want 5/false", len(res.Rows), res.Truncated)
	}
	// A result that fits exactly is not truncated either.
	eng = NewEngine(s, Options{UseIndexes: true, MaxRows: 50})
	res, err = eng.Run(`match (n) return n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 50 || res.Truncated {
		t.Errorf("rows=%d truncated=%v, want 50/false", len(res.Rows), res.Truncated)
	}
}

func TestStreamingLimitShortCircuits(t *testing.T) {
	// With a LIMIT and no ORDER BY the executor must stop pulling after
	// the limit: on a 500-leaf hub this returns quickly and exactly.
	s := skewedStore(t)
	res, err := NewEngine(s, DefaultOptions()).Run(
		`match (m:Malware)-[:CONNECT]->(ip) return ip.name limit 7`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 || res.Truncated {
		t.Errorf("rows=%d truncated=%v, want 7/false", len(res.Rows), res.Truncated)
	}
}

func TestTypeEqualityPredicateScans(t *testing.T) {
	// Regression: a label inferred from n.type = "X" must actually be used
	// by the scan, not just for costing.
	s := graph.New()
	for i := 0; i < 5; i++ {
		s.MergeNode("A", fmt.Sprintf("a%d", i), nil)
		s.MergeNode("B", fmt.Sprintf("b%d", i), nil)
	}
	for _, q := range []string{
		`match (n) where n.type = "A" return n.name`,
		`match (n) where n.label = "A" return n.name`,
	} {
		res, err := NewEngine(s, DefaultOptions()).Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 {
			t.Errorf("%s: %d rows, want 5", q, len(res.Rows))
		}
	}
	pl := plan(t, s, `match (n) where n.type = "A" return n.name`)
	scan := pl.Segments[0].Stages[0].(*ScanStage)
	if scan.Access != AccessLabel || scan.Label != "A" {
		t.Errorf("access = %s label=%q, want LabelScan with inferred label A", scan.Access, scan.Label)
	}
}

func TestErroringConjunctKeepsShortCircuit(t *testing.T) {
	// Regression: the legacy engine short-circuits `false and count(...)`
	// without erroring; pushdown must not reorder evaluation into an error.
	s := graph.New()
	p, _ := s.MergeNode("P", "p0", nil)
	qn, _ := s.MergeNode("Q", "q0", nil)
	s.AddEdge(p, "E", qn, nil)
	query := `match (p)-[:E]->(q) where q.name contains "zzz" and count(p) > 0 return p.name`
	legacy, lerr := NewEngine(s, Options{UseIndexes: true, Legacy: true}).Run(query)
	planned, perr := NewEngine(s, Options{UseIndexes: true}).Run(query)
	if (lerr == nil) != (perr == nil) {
		t.Fatalf("error mismatch: legacy=%v planned=%v", lerr, perr)
	}
	if lerr == nil && !sameMultiset(renderRows(planned), renderRows(legacy)) {
		t.Errorf("rows differ: planned=%v legacy=%v", renderRows(planned), renderRows(legacy))
	}
	// And when the guard passes, the count() error must still surface.
	query2 := `match (p)-[:E]->(q) where q.name contains "q" and count(p) > 0 return p.name`
	_, lerr2 := NewEngine(s, Options{UseIndexes: true, Legacy: true}).Run(query2)
	_, perr2 := NewEngine(s, Options{UseIndexes: true}).Run(query2)
	if (lerr2 == nil) != (perr2 == nil) || lerr2 == nil {
		t.Errorf("count() error mismatch: legacy=%v planned=%v", lerr2, perr2)
	}
}

func TestAggregateBudgetBoundsEnumeration(t *testing.T) {
	// The byte budget replaced the MaxRows*4+1000 match cap: with no
	// budget an aggregate over a cross product is exact (no silent
	// truncation), and with a tight budget both engines abort with a
	// typed *BudgetError instead of returning a quietly wrong count.
	s := graph.New()
	for i := 0; i < 50; i++ {
		s.MergeNode("T", fmt.Sprintf("n%d", i), nil)
	}
	q := `match (a), (b), (c) return count(*)` // 125000 bindings
	for _, legacy := range []bool{false, true} {
		res, err := NewEngine(s, Options{UseIndexes: true, MaxRows: 10, Legacy: legacy}).Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Num != 125000 || res.Truncated {
			t.Errorf("legacy=%v: count=%v truncated=%v, want exact 125000/false",
				legacy, res.Rows[0][0].Num, res.Truncated)
		}
		_, err = NewEngine(s, Options{UseIndexes: true, MaxBytes: 32 << 10, Legacy: legacy}).Run(q)
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Errorf("legacy=%v: want *BudgetError under a 32KiB budget, got %v", legacy, err)
		}
	}
}

func TestPlannedAndLegacyAgreeOnDemoGraph(t *testing.T) {
	s := buildDemoGraph(t)
	queries := []string{
		`match (m:Malware)-[:CONNECT]->(x) return x.name order by x.name`,
		`match (r:MalwareReport)-[:DESCRIBES]->(m)-[:EXPLOIT]->(v) return r.name, m.name, v.name`,
		`match (a:ThreatActor {name: "cozyduke"})-[:USE]->(t)<-[:USE]-(o) where o.name <> "cozyduke" return distinct o.name`,
		`match (a:Technique), (b:ThreatActor) return a.name, b.name order by a.name, b.name`,
		`match (m:Malware)-[:EXPLOIT]->(v), (m)-[:DROP]->(f) return m.name, v.name, f.name`,
	}
	for _, q := range queries {
		planned, err := NewEngine(s, Options{UseIndexes: true}).Run(q)
		if err != nil {
			t.Fatalf("planned %q: %v", q, err)
		}
		legacy, err := NewEngine(s, Options{UseIndexes: true, Legacy: true}).Run(q)
		if err != nil {
			t.Fatalf("legacy %q: %v", q, err)
		}
		if got, want := renderRows(planned), renderRows(legacy); !sameMultiset(got, want) {
			t.Errorf("%s:\nplanned: %v\nlegacy:  %v", q, got, want)
		}
	}
}

func TestPlanCacheInvalidatedByIndexAttr(t *testing.T) {
	// Regression: the cache used to evict only on cardinality drift, so a
	// plan chosen before IndexAttr kept label-scanning forever.
	s := graph.New()
	for i := 0; i < 100; i++ {
		plat := "windows"
		if i%10 == 0 {
			plat = "solaris"
		}
		s.MergeNode("Malware", fmt.Sprintf("m%d", i), map[string]string{"platform": plat})
	}
	eng := NewEngine(s, DefaultOptions())
	q := `match (m:Malware) where m.platform = "solaris" return m.name`
	res, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("pre-index rows: %d", len(res.Rows))
	}
	if scan := eng.cachedPlan(q).Segments[0].Stages[0].(*ScanStage); scan.Access != AccessLabel {
		t.Fatalf("pre-index access = %s, want LabelScan", scan.Access)
	}
	s.IndexAttr("platform")
	if eng.cachedPlan(q) != nil {
		t.Fatal("stale plan survived IndexAttr")
	}
	res, err = eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("post-index rows: %d", len(res.Rows))
	}
	if scan := eng.cachedPlan(q).Segments[0].Stages[0].(*ScanStage); scan.Access != AccessLabelAttr {
		t.Errorf("post-index access = %s, want IndexSeek(label+attr)", scan.Access)
	}
}
