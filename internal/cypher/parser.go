package cypher

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

type parser struct {
	toks   []token
	i      int
	params map[string]bool // $parameter names seen so far
}

// Parse compiles a Cypher statement into a Query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, params: map[string]bool{}}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("cypher: trailing input at %q", p.cur().text)
	}
	for name := range p.params {
		q.Params = append(q.Params, name)
	}
	sort.Strings(q.Params)
	return q, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, fmt.Errorf("cypher: expected %s near position %d (got %q)", what, t.pos, t.text)
	}
	p.i++
	return t, nil
}

// peekKeyword reports whether the current token is the given keyword
// without consuming it.
func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if p.keyword("explain") {
		q.Explain = true
		// EXPLAIN ANALYZE executes the statement and annotates the plan
		// with observed per-stage cardinalities and timings.
		if p.keyword("analyze") {
			q.Analyze = true
		}
	}
	if op, ok := p.parseTxControl(); ok {
		if q.Explain {
			return nil, fmt.Errorf("cypher: cannot EXPLAIN a transaction-control statement")
		}
		q.TxOp = op
		return q, nil
	}
	for {
		part, final, err := p.parsePart(len(q.Parts) == 0)
		if err != nil {
			return nil, err
		}
		q.Parts = append(q.Parts, part)
		if final {
			return q, nil
		}
		if len(q.Parts) > 32 {
			return nil, fmt.Errorf("cypher: too many WITH segments")
		}
	}
}

// parseTxControl consumes a BEGIN / COMMIT / ROLLBACK statement head,
// each with an optional TRANSACTION keyword. The caller's trailing-EOF
// check rejects anything after it ("BEGIN MATCH ..." is an error, not a
// transaction plus a query).
func (p *parser) parseTxControl() (TxOp, bool) {
	switch {
	case p.keyword("begin"):
		p.keyword("transaction")
		return TxBegin, true
	case p.keyword("commit"):
		p.keyword("transaction")
		return TxCommit, true
	case p.keyword("rollback"):
		p.keyword("transaction")
		return TxRollback, true
	}
	return TxNone, false
}

// parsePart parses one pipeline segment: MATCH/OPTIONAL MATCH reading
// clauses interleaved-in-order with CREATE/MERGE writing clauses —
// except that a MATCH may not follow a write in the same segment (add a
// WITH boundary; writes are applied after the segment's reads
// materialize, so a later MATCH could not see them anyway) — then SET,
// then [DETACH] DELETE, then WITH (final=false) or RETURN (final=true).
// RETURN is optional on a segment that writes.
func (p *parser) parsePart(first bool) (QueryPart, bool, error) {
	part := QueryPart{Limit: -1}
	if p.keyword("unwind") {
		e, err := p.parseAtom()
		if err != nil {
			return part, false, err
		}
		if !p.keyword("as") {
			return part, false, fmt.Errorf("cypher: UNWIND requires AS <alias>")
		}
		t, err := p.expect(tokIdent, "UNWIND alias")
		if err != nil {
			return part, false, err
		}
		part.Unwind = &UnwindClause{Expr: e, Alias: t.text}
	}
	for {
		optional := false
		if p.peekKeyword("optional") {
			p.i++
			if !p.keyword("match") {
				return part, false, fmt.Errorf("cypher: OPTIONAL must be followed by MATCH")
			}
			optional = true
		} else if p.peekKeyword("match") {
			p.i++
		} else if p.peekKeyword("create") || p.peekKeyword("merge") {
			cc := CreateClause{Merge: strings.EqualFold(p.next().text, "merge")}
			if err := p.parseCreatePatterns(&cc); err != nil {
				return part, false, err
			}
			part.Creates = append(part.Creates, cc)
			continue
		} else {
			break
		}
		if len(part.Creates) > 0 {
			return part, false, fmt.Errorf("cypher: MATCH after CREATE/MERGE in the same segment; separate them with WITH")
		}
		mc := MatchClause{Optional: optional}
		for {
			pat, err := p.parsePattern(false)
			if err != nil {
				return part, false, err
			}
			mc.Patterns = append(mc.Patterns, pat)
			if p.cur().kind == tokComma {
				p.i++
				continue
			}
			break
		}
		if p.keyword("where") {
			e, err := p.parseOr()
			if err != nil {
				return part, false, err
			}
			mc.Where = e
		}
		part.Matches = append(part.Matches, mc)
	}
	if first && part.Unwind == nil && len(part.Matches) == 0 && len(part.Creates) == 0 {
		return part, false, fmt.Errorf("cypher: query must start with MATCH, CREATE, MERGE or UNWIND")
	}
	if err := p.parseSet(&part); err != nil {
		return part, false, err
	}
	if err := p.parseDelete(&part); err != nil {
		return part, false, err
	}
	// Reads and creates cannot follow SET/DELETE within one segment (the
	// segment's clause order is reads → creates → sets → delete); name
	// the remedy instead of listing the rejected keyword as expected.
	if len(part.Sets) > 0 || part.Delete != nil {
		for _, kw := range []string{"match", "optional", "create", "merge", "set"} {
			if p.peekKeyword(kw) {
				return part, false, fmt.Errorf("cypher: %s cannot follow SET/DELETE in the same segment; separate them with WITH", strings.ToUpper(kw))
			}
		}
	}
	switch {
	case p.cur().kind == tokEOF && part.HasWrites():
		// Write-only final segment: counts are the result.
		return part, true, nil
	case p.keyword("with"):
		if p.keyword("distinct") {
			part.Distinct = true
		}
		if err := p.parseItems(&part); err != nil {
			return part, false, err
		}
		if p.keyword("where") {
			e, err := p.parseOr()
			if err != nil {
				return part, false, err
			}
			part.Where = e
		}
		return part, false, nil
	case p.keyword("return"):
		if p.keyword("distinct") {
			part.Distinct = true
		}
		if err := p.parseItems(&part); err != nil {
			return part, false, err
		}
		if err := p.parseTail(&part); err != nil {
			return part, false, err
		}
		return part, true, nil
	}
	return part, false, fmt.Errorf("cypher: expected MATCH, CREATE, MERGE, SET, DELETE, WITH or RETURN near %q", p.cur().text)
}

// parseCreatePatterns parses the comma-separated pattern list of one
// CREATE/MERGE clause and enforces the write-pattern restrictions that
// make creation well defined: every edge needs an explicit type and
// direction, and variable-length edges cannot be created.
func (p *parser) parseCreatePatterns(cc *CreateClause) error {
	for {
		pat, err := p.parsePattern(true)
		if err != nil {
			return err
		}
		for _, ep := range pat.Edges {
			if ep.VarLength() {
				return fmt.Errorf("cypher: cannot CREATE a variable-length relationship")
			}
			if ep.Type == "" {
				return fmt.Errorf("cypher: CREATE requires a relationship type (-[:TYPE]->)")
			}
			if ep.Dir == DirAny {
				return fmt.Errorf("cypher: CREATE requires a directed relationship (-> or <-)")
			}
		}
		cc.Patterns = append(cc.Patterns, pat)
		if p.cur().kind == tokComma {
			p.i++
			continue
		}
		return nil
	}
}

// parseSet parses "SET var.prop = atom [, ...]" clauses (repeatable).
func (p *parser) parseSet(part *QueryPart) error {
	for p.keyword("set") {
		for {
			v, err := p.expect(tokIdent, "variable")
			if err != nil {
				return err
			}
			if _, err := p.expect(tokDot, "."); err != nil {
				return err
			}
			prop, err := p.expect(tokIdent, "property name")
			if err != nil {
				return err
			}
			if _, err := p.expect(tokEq, "="); err != nil {
				return err
			}
			val, err := p.parseAtom()
			if err != nil {
				return err
			}
			part.Sets = append(part.Sets, SetItem{Var: v.text, Prop: prop.text, Val: val})
			if p.cur().kind == tokComma {
				p.i++
				continue
			}
			break
		}
	}
	return nil
}

// parseDelete parses "[DETACH] DELETE var [, ...]".
func (p *parser) parseDelete(part *QueryPart) error {
	detach := false
	if p.peekKeyword("detach") {
		p.i++
		if !p.peekKeyword("delete") {
			return fmt.Errorf("cypher: DETACH must be followed by DELETE")
		}
		detach = true
	}
	if !p.keyword("delete") {
		if detach {
			return fmt.Errorf("cypher: DETACH must be followed by DELETE")
		}
		return nil
	}
	dc := &DeleteClause{Detach: detach}
	for {
		v, err := p.expect(tokIdent, "variable to delete")
		if err != nil {
			return err
		}
		dc.Vars = append(dc.Vars, v.text)
		if p.cur().kind == tokComma {
			p.i++
			continue
		}
		break
	}
	part.Delete = dc
	return nil
}

func (p *parser) parseItems(part *QueryPart) error {
	for {
		item, err := p.parseReturnItem()
		if err != nil {
			return err
		}
		part.Items = append(part.Items, item)
		if p.cur().kind == tokComma {
			p.i++
			continue
		}
		return nil
	}
}

// parseTail parses ORDER BY / SKIP / LIMIT on the final (RETURN) part.
func (p *parser) parseTail(part *QueryPart) error {
	if p.keyword("order") {
		if !p.keyword("by") {
			return fmt.Errorf("cypher: ORDER must be followed by BY")
		}
		for {
			e, err := p.parseAtom()
			if err != nil {
				return err
			}
			key := OrderKey{Expr: e}
			if p.keyword("desc") {
				key.Desc = true
			} else {
				p.keyword("asc")
			}
			part.OrderBy = append(part.OrderBy, key)
			if p.cur().kind == tokComma {
				p.i++
				continue
			}
			break
		}
	}
	if p.keyword("skip") {
		t, err := p.expect(tokNumber, "SKIP count")
		if err != nil {
			return err
		}
		v, err := strconv.Atoi(t.text)
		if err != nil || v < 0 {
			return fmt.Errorf("cypher: bad SKIP %q", t.text)
		}
		part.Skip = v
	}
	if p.keyword("limit") {
		t, err := p.expect(tokNumber, "LIMIT count")
		if err != nil {
			return err
		}
		v, err := strconv.Atoi(t.text)
		if err != nil || v < 0 {
			return fmt.Errorf("cypher: bad LIMIT %q", t.text)
		}
		part.Limit = v
	}
	return nil
}

// parsePattern parses one node-edge-node chain. writeCtx marks a
// CREATE/MERGE pattern, the only place edge property maps are legal.
func (p *parser) parsePattern(writeCtx bool) (Pattern, error) {
	var pat Pattern
	n, err := p.parseNodePattern(writeCtx)
	if err != nil {
		return pat, err
	}
	pat.Nodes = append(pat.Nodes, n)
	for {
		var dir EdgeDir
		switch p.cur().kind {
		case tokDash:
			p.i++
			dir = DirAny
		case tokArrowLeft:
			p.i++
			dir = DirLeft
		default:
			return pat, nil
		}
		ep := EdgePattern{Dir: dir, MinHops: 1, MaxHops: 1}
		if p.cur().kind == tokLBracket {
			p.i++
			if p.cur().kind == tokIdent {
				ep.Var = p.next().text
			}
			if p.cur().kind == tokColon {
				p.i++
				t, err := p.expect(tokIdent, "relationship type")
				if err != nil {
					return pat, err
				}
				ep.Type = t.text
			}
			if p.cur().kind == tokStar {
				p.i++
				if ep.Var != "" {
					return pat, fmt.Errorf("cypher: variable-length relationship cannot bind a variable (%q)", ep.Var)
				}
				if err := p.parseHopRange(&ep); err != nil {
					return pat, err
				}
			}
			if p.cur().kind == tokLBrace {
				if !writeCtx {
					return pat, fmt.Errorf("cypher: relationship property maps are only supported in CREATE/MERGE")
				}
				props, paramProps, exprProps, err := p.parsePropMap()
				if err != nil {
					return pat, err
				}
				ep.Props, ep.ParamProps, ep.ExprProps = props, paramProps, exprProps
			}
			if _, err := p.expect(tokRBracket, "]"); err != nil {
				return pat, err
			}
		}
		// Closing side of the edge.
		switch p.cur().kind {
		case tokArrowRight:
			if ep.Dir == DirLeft {
				return pat, fmt.Errorf("cypher: edge with both arrow heads")
			}
			ep.Dir = DirRight
			p.i++
		case tokDash:
			p.i++
			// left stays left, any stays any
		default:
			return pat, fmt.Errorf("cypher: dangling edge pattern near %q", p.cur().text)
		}
		nn, err := p.parseNodePattern(writeCtx)
		if err != nil {
			return pat, err
		}
		pat.Edges = append(pat.Edges, ep)
		pat.Nodes = append(pat.Nodes, nn)
	}
}

// parseHopRange parses the bounds after the '*' of a variable-length
// relationship: "*", "*n", "*m..n", "*m..", "*..n". MaxHops -1 means
// unbounded (the bounded-BFS executor still terminates: each node is
// visited at most once per input row).
func (p *parser) parseHopRange(ep *EdgePattern) error {
	hop := func(what string) (int, error) {
		t, err := p.expect(tokNumber, what)
		if err != nil {
			return 0, err
		}
		v, err := strconv.Atoi(t.text)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("cypher: bad hop count %q", t.text)
		}
		return v, nil
	}
	ep.VarLen = true
	ep.MinHops, ep.MaxHops = 1, -1
	if p.cur().kind == tokNumber {
		n, err := hop("hop count")
		if err != nil {
			return err
		}
		ep.MinHops, ep.MaxHops = n, n
	}
	if p.cur().kind == tokDotDot {
		p.i++
		ep.MaxHops = -1
		if p.cur().kind == tokNumber {
			n, err := hop("max hop count")
			if err != nil {
				return err
			}
			ep.MaxHops = n
		}
	}
	if ep.MaxHops >= 0 && ep.MaxHops < ep.MinHops {
		return fmt.Errorf("cypher: empty hop range *%d..%d", ep.MinHops, ep.MaxHops)
	}
	return nil
}

func (p *parser) parseNodePattern(writeCtx bool) (NodePattern, error) {
	var np NodePattern
	if _, err := p.expect(tokLParen, "("); err != nil {
		return np, err
	}
	if p.cur().kind == tokIdent {
		np.Var = p.next().text
	}
	if p.cur().kind == tokColon {
		p.i++
		t, err := p.expect(tokIdent, "node label")
		if err != nil {
			return np, err
		}
		np.Label = t.text
	}
	if p.cur().kind == tokLBrace {
		props, paramProps, exprProps, err := p.parsePropMap()
		if err != nil {
			return np, err
		}
		if len(exprProps) > 0 && !writeCtx {
			return np, fmt.Errorf("cypher: expression property values are only supported in CREATE/MERGE")
		}
		np.Props, np.ParamProps, np.ExprProps = props, paramProps, exprProps
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return np, err
	}
	return np, nil
}

// parsePropMap parses "{key: value, ...}" (the opening brace is the
// current token), splitting literal props from $parameter-valued ones
// and — for CREATE/MERGE patterns — arbitrary expressions over the
// row's bindings (e.g. "{name: row.name}"). Callers in reading clauses
// reject the expression bucket.
func (p *parser) parsePropMap() (map[string]Value, map[string]string, map[string]Expr, error) {
	p.i++ // consume '{'
	props := map[string]Value{}
	var paramProps map[string]string
	var exprProps map[string]Expr
	for {
		k, err := p.expect(tokIdent, "property name")
		if err != nil {
			return nil, nil, nil, err
		}
		if _, err := p.expect(tokColon, ":"); err != nil {
			return nil, nil, nil, err
		}
		switch t := p.cur(); {
		case t.kind == tokParam:
			p.i++
			p.params[t.text] = true
			if paramProps == nil {
				paramProps = map[string]string{}
			}
			paramProps[k.text] = t.text
		case t.kind == tokString || t.kind == tokNumber ||
			(t.kind == tokIdent && isLiteralWord(t.text)):
			v, err := p.parseLiteral()
			if err != nil {
				return nil, nil, nil, err
			}
			props[k.text] = v
		default:
			e, err := p.parseAtom()
			if err != nil {
				return nil, nil, nil, err
			}
			if exprProps == nil {
				exprProps = map[string]Expr{}
			}
			exprProps[k.text] = e
		}
		if p.cur().kind == tokComma {
			p.i++
			continue
		}
		break
	}
	if _, err := p.expect(tokRBrace, "}"); err != nil {
		return nil, nil, nil, err
	}
	return props, paramProps, exprProps, nil
}

// isLiteralWord reports whether an identifier spells a keyword literal.
func isLiteralWord(s string) bool {
	switch strings.ToLower(s) {
	case "true", "false", "null":
		return true
	}
	return false
}

func (p *parser) parseLiteral() (Value, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.i++
		return StringValue(t.text), nil
	case tokNumber:
		p.i++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("cypher: bad number %q", t.text)
		}
		return NumberValue(f), nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			p.i++
			return BoolValue(true), nil
		case "false":
			p.i++
			return BoolValue(false), nil
		case "null":
			p.i++
			return NullValue(), nil
		}
	}
	return Value{}, fmt.Errorf("cypher: expected literal near %q", t.text)
}

// Expression precedence: OR < AND < NOT < comparison < atom.

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = BoolExpr{Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = BoolExpr{Op: "and", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.keyword("not") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{Inner: inner}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	switch t.kind {
	case tokEq:
		p.i++
		right, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return CmpExpr{Op: "=", Left: left, Right: right}, nil
	case tokNeq:
		p.i++
		right, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return CmpExpr{Op: "<>", Left: left, Right: right}, nil
	case tokLt, tokGt, tokLe, tokGe:
		p.i++
		right, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		op := map[tokKind]string{tokLt: "<", tokGt: ">", tokLe: "<=", tokGe: ">="}[t.kind]
		return CmpExpr{Op: op, Left: left, Right: right}, nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "contains":
			p.i++
			right, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			return CmpExpr{Op: "contains", Left: left, Right: right}, nil
		case "starts":
			p.i++
			if !p.keyword("with") {
				return nil, fmt.Errorf("cypher: STARTS must be followed by WITH")
			}
			right, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			return CmpExpr{Op: "starts", Left: left, Right: right}, nil
		case "ends":
			p.i++
			if !p.keyword("with") {
				return nil, fmt.Errorf("cypher: ENDS must be followed by WITH")
			}
			right, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			return CmpExpr{Op: "ends", Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokParam:
		p.i++
		p.params[t.text] = true
		return ParamExpr{Name: t.text}, nil
	case tokLParen:
		p.i++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case tokString, tokNumber:
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return LitExpr{Val: v}, nil
	case tokLBracket:
		p.i++
		var le ListExpr
		if p.cur().kind != tokRBracket {
			for {
				e, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				le.Elems = append(le.Elems, e)
				if p.cur().kind != tokComma {
					break
				}
				p.i++
			}
		}
		if _, err := p.expect(tokRBracket, "]"); err != nil {
			return nil, err
		}
		return le, nil
	case tokIdent:
		lower := strings.ToLower(t.text)
		switch lower {
		case "true", "false", "null":
			v, _ := p.parseLiteral()
			return LitExpr{Val: v}, nil
		case "count", "min", "max", "sum", "collect", "type", "id", "labels", "lower", "upper":
			// function call if followed by '('
			if p.toks[p.i+1].kind == tokLParen {
				p.i += 2
				fe := FuncExpr{Name: lower}
				if p.cur().kind == tokStar {
					if lower != "count" {
						return nil, fmt.Errorf("cypher: %s(*) is not supported", lower)
					}
					p.i++
					fe.Star = true
				} else {
					arg, err := p.parseAtom()
					if err != nil {
						return nil, err
					}
					fe.Arg = arg
				}
				if _, err := p.expect(tokRParen, ")"); err != nil {
					return nil, err
				}
				return fe, nil
			}
		}
		p.i++
		if p.cur().kind == tokDot {
			p.i++
			prop, err := p.expect(tokIdent, "property name")
			if err != nil {
				return nil, err
			}
			return PropExpr{Var: t.text, Prop: prop.text}, nil
		}
		return VarExpr{Name: t.text}, nil
	}
	return nil, fmt.Errorf("cypher: unexpected token %q in expression", t.text)
}

func (p *parser) parseReturnItem() (ReturnItem, error) {
	e, err := p.parseAtom()
	if err != nil {
		return ReturnItem{}, err
	}
	item := ReturnItem{Expr: e, Alias: exprText(e)}
	if p.keyword("as") {
		t, err := p.expect(tokIdent, "alias")
		if err != nil {
			return ReturnItem{}, err
		}
		item.Alias = t.text
	}
	return item, nil
}

func exprText(e Expr) string {
	switch v := e.(type) {
	case VarExpr:
		return v.Name
	case PropExpr:
		return v.Var + "." + v.Prop
	case FuncExpr:
		if v.Star {
			return v.Name + "(*)"
		}
		return v.Name + "(" + exprText(v.Arg) + ")"
	case LitExpr:
		return v.Val.String()
	case ParamExpr:
		return "$" + v.Name
	}
	return "expr"
}
