package cypher

import (
	"fmt"

	"securitykg/internal/graph"
)

// This file is the write path shared by both engines: one function
// (applyWrites) applies a part's CREATE/MERGE, SET and DELETE clauses
// to one matched row, so mutation semantics cannot drift between the
// planned pipeline (mutationIter) and the legacy matcher. Writes are
// eager: a part's reading clauses fully materialize before its writes
// run, which is what keeps a CREATE from feeding its own MATCH
// (the Halloween problem) and keeps both engines row-for-row identical.
//
// Statements are atomic: every write statement runs inside a store
// transaction (tx.go) — an implicit one committed when its cursor
// closes, or the enclosing explicit BEGIN transaction. A statement that
// errors mid-way (a connected node hit by plain DELETE on row 3, a type
// error in a SET expression) rolls back wholesale: the earlier rows'
// mutations are undone and nothing reaches the WAL.
//
// Mutations go through e.w, whose Latest* reads see the transaction's
// own uncommitted writes (the write path must act on latest state — a
// MERGE must augment the node as it now is, not as the statement's
// pinned snapshot saw it).

// WriteStats counts what a write query changed. Merged-but-not-created
// entities (the store's exact-(type, name) merge rule firing) do not
// count as created. The counts are exact for a single writer; under
// CONCURRENT writers racing on the same keys they are best-effort (the
// "did it change" pre-checks run outside the store op's critical
// section), while the store state and the WAL stay exact — tightening
// this means the store ops reporting their own deltas, which belongs
// with the transaction layer (see ROADMAP).
type WriteStats struct {
	NodesCreated int `json:"nodes_created"`
	EdgesCreated int `json:"edges_created"`
	PropsSet     int `json:"props_set"`
	NodesDeleted int `json:"nodes_deleted"`
	EdgesDeleted int `json:"edges_deleted"`
}

// Zero reports whether nothing was changed.
func (w WriteStats) Zero() bool { return w == WriteStats{} }

func (w WriteStats) String() string {
	return fmt.Sprintf("nodes created: %d, edges created: %d, props set: %d, nodes deleted: %d, edges deleted: %d",
		w.NodesCreated, w.EdgesCreated, w.PropsSet, w.NodesDeleted, w.EdgesDeleted)
}

// writeClauses bundles one part's writing clauses in application order.
type writeClauses struct {
	creates []CreateClause
	sets    []SetItem
	del     *DeleteClause
}

// writeClausesOf extracts a part's writes (nil for read-only parts).
func writeClausesOf(part *QueryPart) *writeClauses {
	if !part.HasWrites() {
		return nil
	}
	return &writeClauses{creates: part.Creates, sets: part.Sets, del: part.Delete}
}

// applyWrites applies one part's writes for one row, mutating the
// binding in place: CREATE/MERGE bind their pattern variables to the
// created-or-merged entities, SET refreshes the variable it updates so
// downstream projections see the new value. Every count lands in stats.
func (e *Engine) applyWrites(wc *writeClauses, b binding, ps params, stats *WriteStats) error {
	for i := range wc.creates {
		cc := &wc.creates[i]
		for pi := range cc.Patterns {
			if err := e.createPattern(&cc.Patterns[pi], b, ps, stats); err != nil {
				return err
			}
		}
	}
	for i := range wc.sets {
		if err := e.applySet(&wc.sets[i], b, ps, stats); err != nil {
			return err
		}
	}
	if wc.del != nil {
		if err := e.applyDelete(wc.del, b, stats); err != nil {
			return err
		}
	}
	return nil
}

// createPattern merges one pattern chain into the store: nodes left to
// right, then the edges between them.
func (e *Engine) createPattern(p *Pattern, b binding, ps params, stats *WriteStats) error {
	ids := make([]graph.NodeID, len(p.Nodes))
	for i := range p.Nodes {
		id, err := e.createNode(&p.Nodes[i], b, ps, stats)
		if err != nil {
			return err
		}
		ids[i] = id
	}
	for i := range p.Edges {
		ep := &p.Edges[i]
		from, to := ids[i], ids[i+1]
		if ep.Dir == DirLeft {
			from, to = to, from
		}
		attrs, err := resolveAttrs(ep.Props, ep.ParamProps, ep.ExprProps, b, ps)
		if err != nil {
			return err
		}
		// Like createNode: an existing edge augmented with new attributes
		// is a real (WAL-logged) mutation, counted as props set.
		augmented := 0
		if len(attrs) > 0 {
			for _, ed := range e.w.LatestEdges(from, graph.Out) {
				if ed.Type != ep.Type || ed.To != to {
					continue
				}
				for k := range attrs {
					if _, has := ed.Attrs[k]; !has {
						augmented++
					}
				}
				break
			}
		}
		id, created, err := e.w.AddEdge(from, ep.Type, to, attrs)
		if err != nil {
			return err
		}
		if created {
			stats.EdgesCreated++
		} else {
			stats.PropsSet += augmented
		}
		if ep.Var != "" {
			if _, bound := b[ep.Var]; bound {
				return fmt.Errorf("cypher: relationship variable %q already bound in CREATE", ep.Var)
			}
			b[ep.Var] = EdgeValue(e.w.LatestEdge(id))
		}
	}
	return nil
}

// createNode resolves one CREATE pattern node: an already-bound
// variable refers to the existing node (and may carry no further
// pattern), anything else needs a label and a name and is merged in.
func (e *Engine) createNode(np *NodePattern, b binding, ps params, stats *WriteStats) (graph.NodeID, error) {
	if np.Var != "" {
		if v, bound := b[np.Var]; bound {
			if v.Kind != KindNode {
				return 0, fmt.Errorf("cypher: CREATE endpoint %q is not a node (null from OPTIONAL MATCH?)", np.Var)
			}
			if np.Label != "" || len(np.Props) > 0 || len(np.ParamProps) > 0 || len(np.ExprProps) > 0 {
				return 0, fmt.Errorf("cypher: variable %q is already bound; a CREATE/MERGE reuse cannot restate a label or properties", np.Var)
			}
			if e.w.LatestNode(v.Node.ID) == nil {
				return 0, fmt.Errorf("cypher: CREATE endpoint %q refers to a deleted node", np.Var)
			}
			return v.Node.ID, nil
		}
	}
	if np.Label == "" {
		return 0, fmt.Errorf("cypher: CREATE/MERGE requires a label on (%s)", displayVar(np.Var))
	}
	attrs, err := resolveAttrs(np.Props, np.ParamProps, np.ExprProps, b, ps)
	if err != nil {
		return 0, err
	}
	name, ok := attrs["name"]
	if !ok {
		return 0, fmt.Errorf("cypher: CREATE/MERGE requires a name property on (%s:%s) — the store merges on exact (label, name)", displayVar(np.Var), np.Label)
	}
	delete(attrs, "name")
	if len(attrs) == 0 {
		attrs = nil
	}
	// A merge hit that augments an existing node with new attributes is
	// a real mutation (it is WAL-logged); count the added properties so
	// the stats never claim "nothing changed" for a write that changed
	// something. Diffed before the merge because MergeNode only reports
	// whether the node itself was created.
	augmented := 0
	if existing := e.w.LatestFindNode(np.Label, name); existing != nil {
		for k := range attrs {
			if _, has := existing.Attrs[k]; !has {
				augmented++
			}
		}
	}
	id, created := e.w.MergeNode(np.Label, name, attrs)
	if created {
		stats.NodesCreated++
	} else {
		stats.PropsSet += augmented
	}
	if np.Var != "" {
		b[np.Var] = NodeValue(e.w.LatestNode(id))
	}
	return id, nil
}

// resolveAttrs renders a pattern's literal, $parameter and expression
// properties as store attributes. Expression properties (e.g.
// "{name: row.name}" inside an UNWIND batch) evaluate against the row's
// bindings; a null result is an error — merge keys and attributes must
// be concrete.
func resolveAttrs(props map[string]Value, paramProps map[string]string,
	exprProps map[string]Expr, b binding, ps params) (map[string]string, error) {
	if len(props) == 0 && len(paramProps) == 0 && len(exprProps) == 0 {
		return nil, nil
	}
	attrs := make(map[string]string, len(props)+len(paramProps)+len(exprProps))
	for k, v := range props {
		s, err := attrString(k, v)
		if err != nil {
			return nil, err
		}
		attrs[k] = s
	}
	for k, pn := range paramProps {
		v, ok := ps.get(pn)
		if !ok {
			return nil, fmt.Errorf("cypher: missing parameter $%s", pn)
		}
		s, err := attrString(k, v)
		if err != nil {
			return nil, err
		}
		attrs[k] = s
	}
	for k, ex := range exprProps {
		v, err := evalExpr(ex, b, ps)
		if err != nil {
			return nil, err
		}
		if v.Kind == KindNull {
			return nil, fmt.Errorf("cypher: property %q evaluated to null in CREATE/MERGE", k)
		}
		s, err := attrString(k, v)
		if err != nil {
			return nil, err
		}
		attrs[k] = s
	}
	return attrs, nil
}

// attrString renders a value as a store attribute (attributes are
// strings; numbers and booleans use their canonical rendering).
func attrString(key string, v Value) (string, error) {
	switch v.Kind {
	case KindString, KindNumber, KindBool:
		return v.String(), nil
	}
	return "", fmt.Errorf("cypher: property %q must be a string, number or boolean (got %s)", key, v.String())
}

// applySet applies one SET assignment for one row. Null targets (an
// OPTIONAL MATCH that found nothing) skip silently, mirroring Neo4j.
func (e *Engine) applySet(it *SetItem, b binding, ps params, stats *WriteStats) error {
	v, bound := b[it.Var]
	if !bound {
		return fmt.Errorf("cypher: SET references unbound variable %q", it.Var)
	}
	if v.Kind == KindNull {
		return nil
	}
	if v.Kind != KindNode {
		return fmt.Errorf("cypher: SET is only supported on nodes (%q is %s)", it.Var, v.String())
	}
	switch it.Prop {
	case "name", "type", "label", "id":
		return fmt.Errorf("cypher: cannot SET %s.%s — it is structural (drives the merge and label indexes)", it.Var, it.Prop)
	}
	val, err := evalExpr(it.Val, b, ps)
	if err != nil {
		return err
	}
	if val.Kind == KindNull {
		return fmt.Errorf("cypher: cannot SET %s.%s to null (attribute removal is not supported)", it.Var, it.Prop)
	}
	s, err := attrString(it.Prop, val)
	if err != nil {
		return err
	}
	// Writing the value already present is a no-op everywhere (the store
	// neither logs nor bumps its epoch), so the counter agrees with the
	// WAL: PropsSet counts what actually changed.
	cur := e.w.LatestNode(v.Node.ID)
	if cur == nil {
		return fmt.Errorf("cypher: SET %s.%s: node was deleted", it.Var, it.Prop)
	}
	if old, had := cur.Attrs[it.Prop]; had && old == s {
		b[it.Var] = NodeValue(cur)
		return nil
	}
	if err := e.w.SetAttr(v.Node.ID, it.Prop, s); err != nil {
		return err
	}
	stats.PropsSet++
	// Refresh the binding so downstream projections see the new value.
	b[it.Var] = NodeValue(e.w.LatestNode(v.Node.ID))
	return nil
}

// applyDelete deletes the row's bound entities. Entities a previous row
// already removed (or edges that vanished with a DETACH-deleted
// endpoint) skip silently; the store is the source of truth.
func (e *Engine) applyDelete(dc *DeleteClause, b binding, stats *WriteStats) error {
	for _, name := range dc.Vars {
		v, bound := b[name]
		if !bound {
			return fmt.Errorf("cypher: DELETE references unbound variable %q", name)
		}
		switch v.Kind {
		case KindNull:
			continue
		case KindEdge:
			if e.w.LatestEdge(v.Edge.ID) == nil {
				continue
			}
			if err := e.w.DeleteEdge(v.Edge.ID); err != nil {
				return err
			}
			stats.EdgesDeleted++
		case KindNode:
			if e.w.LatestNode(v.Node.ID) == nil {
				continue
			}
			// Count distinct incident edges: a self-loop appears in both
			// the out and in incidence lists but is one edge.
			seen := map[graph.EdgeID]struct{}{}
			for _, ed := range e.w.LatestEdges(v.Node.ID, graph.Both) {
				seen[ed.ID] = struct{}{}
			}
			incident := len(seen)
			if incident > 0 && !dc.Detach {
				return fmt.Errorf("cypher: cannot DELETE %q: node still has %d relationship(s) — use DETACH DELETE", name, incident)
			}
			if err := e.w.DeleteNode(v.Node.ID); err != nil {
				return err
			}
			stats.NodesDeleted++
			stats.EdgesDeleted += incident
		default:
			return fmt.Errorf("cypher: DELETE expects a node or relationship (%q is %s)", name, v.String())
		}
	}
	return nil
}
