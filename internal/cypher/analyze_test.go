package cypher

import (
	"errors"
	"regexp"
	"strings"
	"testing"

	"securitykg/internal/graph"
)

// The ANALYZE golden suite pins the profiled-plan rendering on the same
// fixture stores the golden-plan suite uses: per-operator actual rows,
// input rows, and iterator calls are exact (the fixtures and plans are
// deterministic); wall times are masked, since they are the one
// nondeterministic field.

var analyzeTimeRe = regexp.MustCompile(`time=[^\s\]]+`)

// analyzeGolden runs the statement under EXPLAIN ANALYZE and returns
// the profiled plan with durations masked.
func analyzeGolden(t *testing.T, s *graph.Store, q string) string {
	t.Helper()
	_, plan, err := NewEngine(s, DefaultOptions()).QueryAnalyze(q, nil)
	if err != nil {
		t.Fatalf("analyze %q: %v", q, err)
	}
	return analyzeTimeRe.ReplaceAllString(plan, "time=*")
}

func TestAnalyzeGoldenScanExpandAggregate(t *testing.T) {
	got := analyzeGolden(t, goldenMeshStore(),
		`match (a:H {name: "h0"})-[:R]->(b) return count(*)`)
	assertGolden(t, got, `
plan (streaming, greedy-ordered, analyzed):
   1. IndexSeek(label+name) (a:H {name: "h0"}) name="h0"           est≈1 act=1 in=1 calls=2 time=*
   2. Expand (a)-[:R]->(b)                                         est≈39 act=39 in=1 calls=40 time=*
   => Aggregate count(*) [in=39 out=1 time=*]
`)
}

func TestAnalyzeGoldenVarExpandDrift(t *testing.T) {
	// The uniform-walk estimate over a clique wildly overshoots the
	// deduplicated reachable set (est 1560 vs 39 actual): the stage line
	// must carry the drift! marker.
	got := analyzeGolden(t, goldenMeshStore(),
		`match (a:H {name: "h0"})-[:R*1..2]->(b) return count(*)`)
	assertGolden(t, got, `
plan (streaming, greedy-ordered, analyzed):
   1. IndexSeek(label+name) (a:H {name: "h0"}) name="h0"           est≈1 act=1 in=1 calls=2 time=*
   2. VarExpand (a)-[:R*1..2]->(b)                                 est≈1560 act=39 in=1 calls=40 time=* drift!
   => Aggregate count(*) [in=39 out=1 time=*]
`)
}

func TestAnalyzeGoldenHashJoinSort(t *testing.T) {
	// HashJoin act=200 (the 300/300 name overlap), plus profiled
	// Project and Sort ops under a limit.
	got := analyzeGolden(t, goldenJoinStore(),
		`match (a:Src), (b:Dst) where a.name = b.name return a.name, b.name order by a.name limit 5`)
	assertGolden(t, got, `
plan (streaming, greedy-ordered, analyzed):
   1. LabelScan (a:Src)                                            est≈300 act=300 in=1 calls=301 time=*
   2. HashJoin on a.name = b.name (build=chain)                    est≈300 act=200 in=300 calls=201 time=*
      where a.name = b.name
       2.1 LabelScan (b:Dst)                                       est≈300 act=300 in=1 calls=301 time=*
   => Project a.name, b.name [in=200 out=5 time=*]
   => Sort a.name [in=200 time=*]
   => Limit 5 (early cutoff)
`)
}

func TestAnalyzeGoldenBiExpand(t *testing.T) {
	got := analyzeGolden(t, goldenMeshStore(),
		`match (a:H {name: "h0"})-[:R]->()-[:R]->()-[:R]->()-[:R]->(b:H {name: "h1"}) return count(*)`)
	assertGolden(t, got, `
plan (streaming, greedy-ordered, analyzed):
   1. IndexSeek(label+name) (a:H {name: "h0"}) name="h0"           est≈1 act=1 in=1 calls=2 time=*
   2. BiExpand (a)-[:R]->()-[:R]->()-[:R]->()-[:R]->(b:H {name: "h1"}) [4 hops, meet@2] est≈57836.0 act=57836 in=1 calls=57837 time=*
   => Aggregate count(*) [in=57836 out=1 time=*]
`)
}

func TestAnalyzeGoldenOptional(t *testing.T) {
	// The inner chain profiles too: the Expand under Optional produced
	// zero rows (no :NOPE edges), yet the Optional stage still emits its
	// input row with x unbound.
	got := analyzeGolden(t, goldenMeshStore(),
		`match (a:H {name: "h0"}) optional match (a)-[:NOPE]->(x) return a.name, x.name`)
	assertGolden(t, got, `
plan (streaming, greedy-ordered, analyzed):
   1. IndexSeek(label+name) (a:H {name: "h0"}) name="h0"           est≈1 act=1 in=1 calls=2 time=*
   2. Optional [introduces x]                                      est≈1 act=1 in=1 calls=2 time=*
       2.1 BoundRef (a)                                            est≈1 act=1 in=1 calls=2 time=*
       2.2 Expand (a)-[:NOPE]->(x)                                 est≈1 act=0 in=1 calls=1 time=*
   => Project a.name, x.name [in=1 out=1 time=*]
`)
}

func TestAnalyzeGoldenFilterSortDesc(t *testing.T) {
	// A filtered scan: act counts rows surviving the where clause (111
	// of 300 names contain "k1"), making filter selectivity visible.
	got := analyzeGolden(t, goldenJoinStore(),
		`match (a:Src) where a.name contains "k1" return a.name order by a.name desc limit 3`)
	assertGolden(t, got, `
plan (streaming, greedy-ordered, analyzed):
   1. LabelScan (a:Src)                                            est≈300 act=111 in=1 calls=112 time=*
      where a.name contains "k1"
   => Project a.name [in=111 out=3 time=*]
   => Sort a.name desc [in=111 time=*]
   => Limit 3 (early cutoff)
`)
}

func TestAnalyzeGoldenMutations(t *testing.T) {
	s := graph.New()
	got := analyzeGolden(t, s,
		`create (m:Malware {name: "wannacry"})-[:USE]->(t:Technique {name: "T1486"})`)
	assertGolden(t, got, `
plan (streaming, greedy-ordered, analyzed):
   1. Mutate (eager) [Create 1 pattern(s)]                         est≈1 act=1 in=1 calls=2 time=*
   => Project (write counts only) [in=1 out=0 time=*]
`)
	// ANALYZE executes for real: the created pattern must be visible.
	if s.Stats().Nodes != 2 || s.Stats().Edges != 1 {
		t.Fatalf("analyzed CREATE did not apply: %+v", s.Stats())
	}

	got = analyzeGolden(t, goldenJoinStore(),
		`match (a:Src {name: "k7"}) set a.triaged = "yes" return a.name`)
	assertGolden(t, got, `
plan (streaming, greedy-ordered, analyzed):
   1. IndexSeek(label+name) (a:Src {name: "k7"}) name="k7"         est≈1 act=1 in=1 calls=2 time=*
   2. Mutate (eager) [Set 1 prop(s)]                               est≈1 act=1 in=1 calls=2 time=*
   => Project a.name [in=1 out=1 time=*]
`)
}

// TestAnalyzeDifferentialRows pins ANALYZE's execution equivalence:
// the result rows of an analyzed statement are byte-identical to the
// same statement executed plainly.
func TestAnalyzeDifferentialRows(t *testing.T) {
	queries := []string{
		`match (a:Src), (b:Dst) where a.name = b.name return a.name, b.name order by a.name, b.name`,
		`match (a:Src) where a.name contains "k1" return a.name order by a.name desc limit 10`,
		`match (a:Src) return count(*)`,
	}
	for _, q := range queries {
		plainEng := NewEngine(goldenJoinStore(), DefaultOptions())
		plain, err := plainEng.Query(q, nil)
		if err != nil {
			t.Fatalf("plain %q: %v", q, err)
		}
		analyzedEng := NewEngine(goldenJoinStore(), DefaultOptions())
		analyzed, _, err := analyzedEng.QueryAnalyze(q, nil)
		if err != nil {
			t.Fatalf("analyze %q: %v", q, err)
		}
		if render := renderRowsText(analyzed); render != renderRowsText(plain) {
			t.Errorf("%q: analyzed rows diverge from plain execution:\n--- analyzed ---\n%s--- plain ---\n%s",
				q, render, renderRowsText(plain))
		}
	}
}

func renderRowsText(res *Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, "|"))
	b.WriteByte('\n')
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestExplainAnalyzeStatement drives the parser path: an
// "explain analyze <stmt>" statement through the plain Query API
// executes fully and returns the profiled plan as rows.
func TestExplainAnalyzeStatement(t *testing.T) {
	s := graph.New()
	e := NewEngine(s, DefaultOptions())
	res, err := e.Query(`explain analyze create (m:Malware {name: "x"})`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("columns = %v, want [plan]", res.Columns)
	}
	joined := ""
	for _, row := range res.Rows {
		joined += row[0].String() + "\n"
	}
	if !strings.Contains(joined, "analyzed") || !strings.Contains(joined, "act=1") {
		t.Fatalf("plan rows missing profile annotations:\n%s", joined)
	}
	if res.Writes == nil || res.Writes.NodesCreated != 1 {
		t.Fatalf("explain analyze create must report its write: %+v", res.Writes)
	}
	if s.Stats().Nodes != 1 {
		t.Fatalf("explain analyze create must apply: %+v", s.Stats())
	}
	// Plain EXPLAIN still must not execute.
	if _, err := e.Query(`explain create (m:Malware {name: "y"})`, nil); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Nodes != 1 {
		t.Fatal("plain EXPLAIN executed a write")
	}
}

// TestAnalyzeDriftFeedback pins the stats feedback loop: repeated
// drifting estimates retire the cached degree histogram and bump the
// stats version, invalidating cached plans.
func TestAnalyzeDriftFeedback(t *testing.T) {
	s := goldenMeshStore()
	e := NewEngine(s, DefaultOptions())
	const q = `match (a:H {name: "h0"})-[:R*1..2]->(b) return count(*)`

	before := s.StatsVersion()
	// graph.driftRefreshAfter (3) observations of one key trigger a
	// histogram refresh and a stats-version bump.
	for i := 0; i < 3; i++ {
		if _, _, err := e.QueryAnalyze(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	stats := s.DriftStats()
	if len(stats) == 0 {
		t.Fatal("drifting VarExpand recorded no drift stats")
	}
	found := false
	for _, d := range stats {
		if d.Key.Label == "H" && d.Key.EdgeType == "R" && d.Key.Dir == graph.Out {
			found = true
			if d.Count < 3 {
				t.Errorf("drift count for (H,R,out) = %d, want >= 3", d.Count)
			}
			if d.Refreshes < 1 {
				t.Errorf("refreshes for (H,R,out) = %d, want >= 1", d.Refreshes)
			}
		}
	}
	if !found {
		t.Fatalf("no drift entry for (H, R, out): %+v", stats)
	}
	if after := s.StatsVersion(); after <= before {
		t.Fatalf("stats version did not bump on drift refresh: %d -> %d", before, after)
	}
}

// TestAnalyzeBudgetStillEnforced: the profiled path threads the same
// byte budget as plain execution.
func TestAnalyzeBudgetStillEnforced(t *testing.T) {
	s := goldenMeshStore()
	opts := DefaultOptions()
	opts.MaxBytes = 1 << 10
	e := NewEngine(s, opts)
	_, _, err := e.QueryAnalyze(`match (a:H)-[:R]->(b) return a.name, b.name`, nil)
	if err == nil {
		t.Fatal("expected byte-budget abort under ANALYZE")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want BudgetError, got %T: %v", err, err)
	}
}

// TestAnalyzeParamsNeverInPlan: parameter *values* must not leak into
// the profiled plan text — only $names appear (the plan is logged and
// scraped, bindings may hold hunted IOCs).
func TestAnalyzeParamsNeverInPlan(t *testing.T) {
	s := goldenJoinStore()
	e := NewEngine(s, DefaultOptions())
	_, plan, err := e.QueryAnalyze(
		`match (a:Src) where a.name = $secret return a.name`,
		map[string]any{"secret": "k7-sensitive-value"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "k7-sensitive-value") {
		t.Fatalf("parameter value leaked into plan text:\n%s", plan)
	}
	if !strings.Contains(plan, "$secret") {
		t.Fatalf("plan should reference the parameter by placeholder:\n%s", plan)
	}
}
