package cypher

import (
	"time"

	"securitykg/internal/metrics"
)

// Engine-level metrics on the process-wide registry. Statement
// observations happen once per cursor, at close — never per row — and
// the labeled histogram children are resolved once at init, so the
// warm query path pays two atomic histogram observations and no
// allocations.
var (
	mQuerySeconds = metrics.NewHistogramVec("skg_query_seconds",
		"Cypher statement wall time from execution start to cursor close, by statement kind.",
		[]string{"kind"}, metrics.DurationBuckets)
	mQueryRows = metrics.NewHistogramVec("skg_query_rows",
		"Rows emitted per Cypher statement, by statement kind.",
		[]string{"kind"}, metrics.CountBuckets)
	mBudgetAborts = metrics.NewCounter("skg_query_budget_aborts_total",
		"Cypher statements aborted by the per-query byte budget.")
	mPlanCacheHits = metrics.NewCounter("skg_plan_cache_hits_total",
		"Plan-cache lookups served by a cached plan.")
	mPlanCacheMisses = metrics.NewCounter("skg_plan_cache_misses_total",
		"Plan-cache lookups that required a fresh parse/plan (stats-version evictions included).")
	mAnalyzeRuns = metrics.NewCounter("skg_analyze_runs_total",
		"EXPLAIN ANALYZE executions (profiled statements).")

	qSecondsRead  = mQuerySeconds.With("read")
	qSecondsWrite = mQuerySeconds.With("write")
	qRowsRead     = mQueryRows.With("read")
	qRowsWrite    = mQueryRows.With("write")
)

// observeStatement records one finished statement cursor.
func observeStatement(kind byte, elapsed time.Duration, rows int64, err error) {
	sec, rh := qSecondsRead, qRowsRead
	if kind == 'w' {
		sec, rh = qSecondsWrite, qRowsWrite
	}
	sec.Observe(elapsed.Seconds())
	rh.Observe(float64(rows))
	if _, ok := err.(*BudgetError); ok {
		mBudgetAborts.Inc()
	}
}
