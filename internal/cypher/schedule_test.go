package cypher

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"securitykg/internal/graph"
)

// Schedule-driven concurrency harness for MVCC snapshot reads and
// multi-statement transactions.
//
// Sessions (2-4 of them) run a key/value workload over KV nodes —
// SET/GET/DEL plus BEGIN/COMMIT/ROLLBACK — against one engine, with the
// interleaving fixed by a schedule: scripted anomaly scenarios plus
// randomized schedules replayed deterministically per seed. Every GET
// is checked against a snapshot-isolation model (the serial oracle:
// committed map + per-transaction snapshot + own-writes overlay), and
// the final store must equal the model's committed state exactly.
//
// The store is single-writer: a transaction that has written holds the
// writer lock until it ends, so the schedule generator allows at most
// one session with pending uncommitted writes and suspends all other
// writes (including autocommit ones) while it is pending — a turn-based
// schedule must never generate a turn that would block. Reads never
// block, which is precisely the MVCC property under test.
//
// make test runs this file twice: once inside the full -race suite and
// once more as a dedicated -race schedule pass.

// schedOp is one turn of a schedule: session `sess` performs `kind`.
type schedOp struct {
	sess int
	kind string // begin | commit | rollback | set | del | get
	key  string
	val  string
}

// kvEnt is one committed key: its value plus a generation that changes
// when the key's backing node is re-created. Writes in this engine act
// on *latest* state (a MERGE augments the node as it now is), so the
// oracle tracks node identity to predict them exactly.
type kvEnt struct {
	val string
	gen int64
}

// sessModel is the oracle's view of one session.
type sessModel struct {
	inTx    bool
	writes  bool
	snap    map[string]kvEnt  // committed state at BEGIN
	overlay map[string]*kvEnt // own writes; nil value = deleted
}

// kvModel is the snapshot-isolation oracle.
type kvModel struct {
	committed map[string]kvEnt
	sessions  []*sessModel
	nextGen   int64
}

func newKVModel(sessions int) *kvModel {
	m := &kvModel{committed: map[string]kvEnt{}}
	for i := 0; i < sessions; i++ {
		m.sessions = append(m.sessions, &sessModel{})
	}
	return m
}

// get predicts what session sess must read for key.
func (m *kvModel) get(sess int, key string) (string, bool) {
	sm := m.sessions[sess]
	if sm.inTx {
		if e, touched := sm.overlay[key]; touched {
			if e == nil {
				return "", false
			}
			return e.val, true
		}
		e, ok := sm.snap[key]
		return e.val, ok
	}
	e, ok := m.committed[key]
	return e.val, ok
}

// writerPending reports whether some transaction holds the writer lock.
func (m *kvModel) writerPending() (int, bool) {
	for i, sm := range m.sessions {
		if sm.inTx && sm.writes {
			return i, true
		}
	}
	return 0, false
}

// canWrite reports whether a SET (del=false) or DEL (del=true) of key
// by sess is schedulable with exact oracle semantics. Inside a
// transaction, writes act on latest state while reads see the
// snapshot; the two agree — and the oracle stays exact — only when the
// key's backing node is identity-stable: untouched keys must still be
// backed by the node the snapshot saw (same generation), a DEL needs a
// visible target, and an invisible-but-recreated key must not be
// merged into (the transaction's reads would then see two nodes).
func (m *kvModel) canWrite(sess int, key string, del bool) bool {
	sm := m.sessions[sess]
	if !sm.inTx {
		return true
	}
	if e, touched := sm.overlay[key]; touched {
		return !del || e != nil
	}
	sEnt, inSnap := sm.snap[key]
	cEnt, inCommitted := m.committed[key]
	if !inSnap {
		// A SET merges into the latest node (or creates one) and the
		// transaction reads only its own resulting version — exact. A DEL
		// would no-op (no visible target): unschedulable.
		return !del
	}
	return inCommitted && cEnt.gen == sEnt.gen
}

// writeGen is the generation a SET inside a transaction binds: merges
// land on the latest node when one exists, else create a fresh one.
func (m *kvModel) writeGen(sess int, key string) int64 {
	sm := m.sessions[sess]
	if e, touched := sm.overlay[key]; touched && e != nil {
		return e.gen
	} else if touched {
		m.nextGen++
		return m.nextGen // own-deleted, re-created fresh
	}
	if e, ok := m.committed[key]; ok {
		return e.gen
	}
	m.nextGen++
	return m.nextGen
}

func copyKV(src map[string]kvEnt) map[string]kvEnt {
	dst := make(map[string]kvEnt, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// schedHarness executes a schedule against a real engine while stepping
// the model in lockstep.
type schedHarness struct {
	t     *testing.T
	store *graph.Store
	e     *Engine
	txs   []*Tx
	model *kvModel
}

func newSchedHarness(t *testing.T, sessions int) *schedHarness {
	s := graph.New()
	e := NewEngine(s, Options{UseIndexes: true, MaxBytes: 16 << 20})
	return &schedHarness{t: t, store: s, e: e, txs: make([]*Tx, sessions), model: newKVModel(sessions)}
}

// query routes one statement through the session's transaction or the
// shared engine (autocommit).
func (h *schedHarness) query(sess int, src string, args map[string]any) (*Result, error) {
	if tx := h.txs[sess]; tx != nil {
		return tx.Query(src, args)
	}
	return h.e.Query(src, args)
}

// step executes one schedule turn and checks it against the model.
func (h *schedHarness) step(i int, op schedOp) {
	t := h.t
	t.Helper()
	sm := h.model.sessions[op.sess]
	fail := func(format string, a ...any) {
		t.Helper()
		t.Fatalf("turn %d (S%d %s %s): %s", i, op.sess, op.kind, op.key, fmt.Sprintf(format, a...))
	}
	switch op.kind {
	case "begin":
		if h.txs[op.sess] != nil {
			fail("schedule bug: session already in a transaction")
		}
		tx, err := h.e.Begin()
		if err != nil {
			fail("Begin: %v", err)
		}
		h.txs[op.sess] = tx
		sm.inTx, sm.writes = true, false
		sm.snap = copyKV(h.model.committed)
		sm.overlay = map[string]*kvEnt{}
	case "commit":
		if err := h.txs[op.sess].Commit(); err != nil {
			fail("Commit: %v", err)
		}
		h.txs[op.sess] = nil
		for k, e := range sm.overlay {
			if e == nil {
				delete(h.model.committed, k)
			} else {
				h.model.committed[k] = *e
			}
		}
		sm.inTx, sm.writes, sm.snap, sm.overlay = false, false, nil, nil
	case "rollback":
		if err := h.txs[op.sess].Rollback(); err != nil {
			fail("Rollback: %v", err)
		}
		h.txs[op.sess] = nil
		sm.inTx, sm.writes, sm.snap, sm.overlay = false, false, nil, nil
	case "set":
		if !h.model.canWrite(op.sess, op.key, false) {
			fail("schedule bug: SET not identity-safe here")
		}
		gen := h.model.writeGen(op.sess, op.key)
		_, err := h.query(op.sess, `merge (n:KV {name: $k}) set n.val = $v`,
			map[string]any{"k": op.key, "v": op.val})
		if err != nil {
			fail("SET: %v", err)
		}
		if sm.inTx {
			sm.overlay[op.key] = &kvEnt{val: op.val, gen: gen}
			sm.writes = true
		} else {
			h.model.committed[op.key] = kvEnt{val: op.val, gen: gen}
		}
	case "del":
		if !h.model.canWrite(op.sess, op.key, true) {
			fail("schedule bug: DEL not identity-safe here")
		}
		_, err := h.query(op.sess, `match (n:KV {name: $k}) detach delete n`,
			map[string]any{"k": op.key})
		if err != nil {
			fail("DEL: %v", err)
		}
		if sm.inTx {
			sm.overlay[op.key] = nil
			sm.writes = true
		} else {
			delete(h.model.committed, op.key)
		}
	case "get":
		res, err := h.query(op.sess, `match (n:KV {name: $k}) return n.val`,
			map[string]any{"k": op.key})
		if err != nil {
			fail("GET: %v", err)
		}
		wantVal, wantOK := h.model.get(op.sess, op.key)
		switch {
		case len(res.Rows) == 0:
			if wantOK {
				fail("read missing, model says %q", wantVal)
			}
		case len(res.Rows) == 1:
			got := res.Rows[0][0].String()
			if !wantOK {
				fail("read %q, model says missing", got)
			}
			if got != wantVal {
				fail("read %q, model says %q — snapshot isolation violated", got, wantVal)
			}
		default:
			fail("%d rows for one key", len(res.Rows))
		}
	default:
		fail("unknown op")
	}
}

// finish ends any still-open transactions (committing when told to) and
// checks the final store against the model's committed state.
func (h *schedHarness) finish(commitOpen bool) {
	t := h.t
	t.Helper()
	for sess, tx := range h.txs {
		if tx == nil {
			continue
		}
		kind := "rollback"
		if commitOpen {
			kind = "commit"
		}
		h.step(-1, schedOp{sess: sess, kind: kind})
	}
	got := map[string]string{}
	res, err := h.e.Query(`match (n:KV) return n.name, n.val`, nil)
	if err != nil {
		t.Fatalf("final scan: %v", err)
	}
	for _, row := range res.Rows {
		got[row[0].String()] = row[1].String()
	}
	if len(got) != len(h.model.committed) {
		t.Fatalf("final state has %d keys, model has %d\nstore: %v\nmodel: %v",
			len(got), len(h.model.committed), got, h.model.committed)
	}
	for k, v := range h.model.committed {
		if got[k] != v.val {
			t.Fatalf("final state[%s] = %q, model says %q", k, got[k], v.val)
		}
	}
	// MVCC bookkeeping must be fully purged once no snapshot or
	// transaction remains: steady state is the exact pre-MVCC store.
	if h.store.MVCCStats() != (graph.MVCCStats{}) {
		t.Fatalf("history not purged after all sessions ended: %+v", h.store.MVCCStats())
	}
}

func runSchedule(t *testing.T, sessions int, ops []schedOp, commitOpen bool) {
	t.Helper()
	h := newSchedHarness(t, sessions)
	for i, op := range ops {
		h.step(i, op)
	}
	h.finish(commitOpen)
}

// TestScheduleDirtyRead: another session must never observe a
// transaction's uncommitted write — and must observe it right after
// commit.
func TestScheduleDirtyRead(t *testing.T) {
	runSchedule(t, 2, []schedOp{
		{sess: 1, kind: "set", key: "k1", val: "old"},
		{sess: 0, kind: "begin"},
		{sess: 0, kind: "set", key: "k1", val: "new"},
		{sess: 0, kind: "set", key: "k2", val: "extra"},
		{sess: 1, kind: "get", key: "k1"}, // model: "old" — dirty read would see "new"
		{sess: 1, kind: "get", key: "k2"}, // model: missing
		{sess: 0, kind: "get", key: "k1"}, // own write: "new"
		{sess: 0, kind: "commit"},
		{sess: 1, kind: "get", key: "k1"}, // now "new"
		{sess: 1, kind: "get", key: "k2"},
	}, false)
}

// TestScheduleRepeatableRead: a transaction's reads stay pinned at its
// BEGIN even as other sessions commit over the same keys.
func TestScheduleRepeatableRead(t *testing.T) {
	runSchedule(t, 3, []schedOp{
		{sess: 1, kind: "set", key: "k1", val: "v1"},
		{sess: 0, kind: "begin"},
		{sess: 0, kind: "get", key: "k1"}, // v1
		{sess: 1, kind: "set", key: "k1", val: "v2"},
		{sess: 2, kind: "set", key: "k3", val: "late"},
		{sess: 0, kind: "get", key: "k1"}, // still v1
		{sess: 0, kind: "get", key: "k3"}, // still missing
		{sess: 1, kind: "del", key: "k1"},
		{sess: 0, kind: "get", key: "k1"}, // still v1: deleted version resolved from history
		{sess: 0, kind: "commit"},
		{sess: 0, kind: "get", key: "k1"}, // gone now
		{sess: 0, kind: "get", key: "k3"},
	}, false)
}

// TestScheduleRollbackAtomicity: a rolled-back transaction's writes —
// sets and deletes across several statements — all vanish.
func TestScheduleRollbackAtomicity(t *testing.T) {
	runSchedule(t, 2, []schedOp{
		{sess: 1, kind: "set", key: "a", val: "keep"},
		{sess: 1, kind: "set", key: "b", val: "keep"},
		{sess: 0, kind: "begin"},
		{sess: 0, kind: "set", key: "a", val: "clobber"},
		{sess: 0, kind: "del", key: "b"},
		{sess: 0, kind: "set", key: "c", val: "phantom"},
		{sess: 0, kind: "get", key: "c"}, // own write visible pre-rollback
		{sess: 0, kind: "rollback"},
		{sess: 1, kind: "get", key: "a"}, // keep
		{sess: 1, kind: "get", key: "b"}, // keep
		{sess: 1, kind: "get", key: "c"}, // missing
	}, false)
}

// TestScheduleOwnWritesAcrossStatements: read-your-writes inside a
// transaction, including deletes and re-creates of the same key.
func TestScheduleOwnWritesAcrossStatements(t *testing.T) {
	runSchedule(t, 2, []schedOp{
		{sess: 0, kind: "begin"},
		{sess: 0, kind: "set", key: "k", val: "one"},
		{sess: 0, kind: "get", key: "k"},
		{sess: 0, kind: "del", key: "k"},
		{sess: 0, kind: "get", key: "k"}, // deleted by own write
		{sess: 0, kind: "set", key: "k", val: "two"},
		{sess: 0, kind: "get", key: "k"},
		{sess: 1, kind: "get", key: "k"}, // outside: never existed
	}, true) // commit the open transaction; final state must hold k=two
}

// TestScheduleRandomInterleavings replays randomized schedules — 2-4
// sessions, ~40 turns each — deterministically per seed, holding the
// generator to the single-writer discipline and the checker to the
// snapshot-isolation oracle.
func TestScheduleRandomInterleavings(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomSchedule(t, int64(seed))
		})
	}
}

func runRandomSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	sessions := 2 + rng.Intn(3)
	h := newSchedHarness(t, sessions)
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5"}

	for i := 0; i < 40; i++ {
		// Draw candidate turns until a legal one comes up (an autocommit
		// GET is always legal, so this terminates).
		for {
			sess := rng.Intn(sessions)
			sm := h.model.sessions[sess]
			op := schedOp{sess: sess, key: keys[rng.Intn(len(keys))], val: "v" + strconv.Itoa(rng.Intn(50))}
			writer, pending := h.model.writerPending()
			r := rng.Intn(100)
			if sm.inTx {
				switch {
				case r < 45:
					op.kind = "get"
				case r < 75:
					// A write inside this transaction: legal only if no OTHER
					// transaction already holds the writer lock, and only on
					// identity-safe keys (canWrite keeps the oracle exact).
					if pending && writer != sess {
						continue
					}
					del := rng.Intn(4) == 0
					if !h.model.canWrite(sess, op.key, del) {
						continue
					}
					if del {
						op.kind = "del"
					} else {
						op.kind = "set"
					}
				case r < 90:
					op.kind = "commit"
				default:
					op.kind = "rollback"
				}
			} else {
				switch {
				case r < 20:
					op.kind = "begin"
				case r < 65:
					op.kind = "get"
				default:
					// Autocommit writes block behind a pending tx writer:
					// not schedulable on this turn.
					if pending {
						continue
					}
					if rng.Intn(4) == 0 {
						op.kind = "del"
					} else {
						op.kind = "set"
					}
				}
			}
			h.step(i, op)
			break
		}
	}
	h.finish(rng.Intn(2) == 0)
}

// TestConcurrentReadersSeeAtomicWrites is the genuinely-parallel half
// of the harness, meaningful under -race: a writer updates a pair of
// keys to the same value — sometimes in one statement (implicit
// transaction), sometimes across two statements of an explicit one —
// while reader goroutines continuously assert the pair is never torn
// and never goes backwards. Before MVCC a reader could interleave with
// a half-applied statement; now every query reads one snapshot.
func TestConcurrentReadersSeeAtomicWrites(t *testing.T) {
	s := graph.New()
	s.MergeNode("KV", "left", map[string]string{"val": "0"})
	s.MergeNode("KV", "right", map[string]string{"val": "0"})
	e := NewEngine(s, Options{UseIndexes: true, MaxBytes: 16 << 20})

	const iters = 200
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 1; i <= iters; i++ {
			args := map[string]any{"v": strconv.Itoa(i)}
			if i%3 == 0 {
				tx, err := e.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := tx.Query(`match (a:KV {name: "left"}) set a.val = $v`, args); err != nil {
					t.Error(err)
					return
				}
				if _, err := tx.Query(`match (b:KV {name: "right"}) set b.val = $v`, args); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			} else if _, err := e.Query(
				`match (a:KV {name: "left"}), (b:KV {name: "right"}) set a.val = $v, b.val = $v`, args); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.Query(`match (a:KV {name: "left"}), (b:KV {name: "right"}) return a.val, b.val`, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Rows) != 1 {
					t.Errorf("pair read returned %d rows", len(res.Rows))
					return
				}
				l, rr := res.Rows[0][0].String(), res.Rows[0][1].String()
				if l != rr {
					t.Errorf("torn read: left=%s right=%s", l, rr)
					return
				}
				n, err := strconv.Atoi(l)
				if err != nil {
					t.Errorf("bad value %q", l)
					return
				}
				if n < last {
					t.Errorf("non-monotonic read: %d after %d", n, last)
					return
				}
				last = n
			}
		}()
	}
	wg.Wait()
}
