package cypher

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"securitykg/internal/graph"
)

// renderRows flattens a result into one string per row for comparison.
func renderRows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		out[i] = strings.Join(cells, "|")
	}
	return out
}

// sameMultiset compares two row sets ignoring order.
func sameMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]string{}, a...), append([]string{}, b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// randomStore builds a random typed graph from a seed.
func randomStore(seed int64, n int) *graph.Store {
	rng := rand.New(rand.NewSource(seed))
	s := graph.New()
	types := []string{"Malware", "IP", "Domain", "ThreatActor"}
	rels := []string{"CONNECT", "USE", "RELATED_TO"}
	var ids []graph.NodeID
	for i := 0; i < n; i++ {
		id, _ := s.MergeNode(types[rng.Intn(len(types))], fmt.Sprintf("n%d", rng.Intn(n)), nil)
		ids = append(ids, id)
	}
	for i := 0; i < 2*n; i++ {
		s.AddEdge(ids[rng.Intn(len(ids))], rels[rng.Intn(len(rels))], ids[rng.Intn(len(ids))], nil)
	}
	return s
}

// Property: for any random graph and a family of queries, index-based and
// full-scan execution return the same multiset of rows.
func TestIndexScanEquivalenceQuick(t *testing.T) {
	queries := []string{
		`match (n) where n.name = "n5" return n.type, n.name order by n.type`,
		`match (n:Malware) return count(*)`,
		`match (a:Malware)-[:CONNECT]->(b) return a.name, b.name order by a.name, b.name`,
		`match (a {name: "n3"})-[r]-(b) return type(r), b.name order by b.name`,
		`match (a)-[:USE]->(b:IP) return distinct a.name order by a.name`,
	}
	f := func(seed int64, qi uint8) bool {
		s := randomStore(seed%1000, 40)
		q := queries[int(qi)%len(queries)]
		idxEng := NewEngine(s, Options{UseIndexes: true, MaxRows: 0})
		scanEng := NewEngine(s, Options{UseIndexes: false, MaxRows: 0})
		a, err1 := idxEng.Run(q)
		b, err2 := scanEng.Run(q)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if len(a.Rows) != len(b.Rows) {
			return false
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j].String() != b.Rows[i][j].String() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: LIMIT k never returns more than k rows, and SKIP s + the
// returned rows never exceed the unpaged result.
func TestLimitSkipBoundsQuick(t *testing.T) {
	s := randomStore(7, 60)
	eng := NewEngine(s, DefaultOptions())
	f := func(k, sk uint8) bool {
		limit := int(k%20) + 1
		skip := int(sk % 20)
		base, err := eng.Run(`match (n) return n.name order by n.name`)
		if err != nil {
			return false
		}
		paged, err := eng.Run(fmt.Sprintf(
			`match (n) return n.name order by n.name skip %d limit %d`, skip, limit))
		if err != nil {
			return false
		}
		if len(paged.Rows) > limit {
			return false
		}
		want := len(base.Rows) - skip
		if want < 0 {
			want = 0
		}
		if want > limit {
			want = limit
		}
		return len(paged.Rows) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the planned streaming executor returns the same row multiset
// as the legacy tree-walking matcher, over randomized graphs and a query
// family covering chains, reverse/undirected edges, shared variables,
// cross products, WHERE operators, DISTINCT and aggregation.
func TestPlannedLegacyEquivalenceQuick(t *testing.T) {
	queries := []string{
		`match (n) return n.type, n.name`,
		`match (n:Malware) return n.name`,
		`match (n) where n.name = "n5" return n.type, n.name`,
		`match (n) where n.type = "Malware" return n.name`,
		`match (a)-[:CONNECT]->(b) return a.name, b.name`,
		`match (a)<-[:USE]-(b:Malware) return a.name, b.name`,
		`match (a {name: "n3"})-[r]-(b) return type(r), b.name`,
		`match (a:Malware)-[:CONNECT]->(b)-[:RELATED_TO]->(c) return a.name, b.name, c.name`,
		`match (a)-[:USE]->(b:IP) return distinct a.name`,
		`match (a:Domain), (b:ThreatActor) return a.name, b.name`,
		`match (a)-[:CONNECT]->(b), (a)-[:USE]->(c) return a.name, b.name, c.name`,
		`match (a)-[r]->(a) return a.name, type(r)`,
		`match (a)-[:RELATED_TO]->(b) where a.name contains "1" and not b.name = "n2" return a.name, b.name`,
		`match (a)-[:CONNECT]->(b) where a.name = "n4" or b.name starts with "n1" return a.name, b.name`,
		`match (a:Malware)-[:USE]->(b) return a.name, count(b)`,
		`match (a)-[:CONNECT]->(b) return count(*)`,
		`match (a:Malware)-[:CONNECT*1..2]->(b) return a.name, b.name`,
		`match (a {name: "n3"})-[:RELATED_TO*]-(b) return b.name`,
		`match (a:Malware) optional match (a)-[:USE]->(b:IP) return a.name, b.name`,
		`match (a)-[:USE]->(b) with a, count(b) as c where c > 1 return a.name, c`,
		`match (a:ThreatActor) optional match (a)-[:USE*1..2]->(x) with a, collect(x.name) as xs return a.name, xs`,
		`match (a:Malware)-[:CONNECT]->(b) return a.name, min(b.name), max(b.name), sum(id(b))`,
	}
	f := func(seed int64, qi uint8) bool {
		s := randomStore(seed%1000, 40)
		q := queries[int(qi)%len(queries)]
		planned, err1 := NewEngine(s, Options{UseIndexes: true}).Run(q)
		legacy, err2 := NewEngine(s, Options{UseIndexes: true, Legacy: true}).Run(q)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("error mismatch for %q: planned=%v legacy=%v", q, err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		if !sameMultiset(renderRows(planned), renderRows(legacy)) {
			t.Logf("row mismatch for %q (seed %d):\nplanned: %v\nlegacy:  %v",
				q, seed, renderRows(planned), renderRows(legacy))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: with indexes disabled the planned engine still matches the
// legacy engine (the ablation path stays correct).
func TestPlannedLegacyEquivalenceNoIndexQuick(t *testing.T) {
	queries := []string{
		`match (a:Malware)-[:CONNECT]->(b) return a.name, b.name`,
		`match (n) where n.name = "n7" return n.type`,
		`match (a)-[:USE]->(b)<-[:USE]-(c) return a.name, c.name`,
	}
	f := func(seed int64, qi uint8) bool {
		s := randomStore(seed%500, 30)
		q := queries[int(qi)%len(queries)]
		planned, err1 := NewEngine(s, Options{UseIndexes: false}).Run(q)
		legacy, err2 := NewEngine(s, Options{UseIndexes: false, Legacy: true}).Run(q)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return sameMultiset(renderRows(planned), renderRows(legacy))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: with an ORDER BY whose keys cover every projected column,
// the planned and legacy engines return identical ordered rows for any
// SKIP/LIMIT combination — including LIMIT 0.
func TestOrderSkipLimitEquivalenceQuick(t *testing.T) {
	f := func(seed int64, k, sk uint8) bool {
		s := randomStore(seed%500, 40)
		limit := int(k % 12) // 0 is a valid LIMIT
		skip := int(sk % 10)
		q := fmt.Sprintf(`match (a)-[:CONNECT]->(b) return a.type, a.name, b.name order by a.type, a.name, b.name skip %d limit %d`, skip, limit)
		planned, e1 := NewEngine(s, Options{UseIndexes: true}).Run(q)
		legacy, e2 := NewEngine(s, Options{UseIndexes: true, Legacy: true}).Run(q)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if e1 != nil {
			return true
		}
		a, b := renderRows(planned), renderRows(legacy)
		if len(a) != len(b) {
			t.Logf("row count mismatch skip=%d limit=%d: planned=%d legacy=%d", skip, limit, len(a), len(b))
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				t.Logf("row %d mismatch skip=%d limit=%d: %q vs %q", i, skip, limit, a[i], b[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: both engines agree on how many rows the MaxRows safety valve
// leaves and on the Truncated flag; with ORDER BY + LIMIT under the cap
// they agree on the exact top-k rows.
func TestMaxRowsEquivalenceQuick(t *testing.T) {
	f := func(seed int64, mr uint8) bool {
		s := randomStore(seed%500, 40)
		max := int(mr%20) + 1
		plannedEng := NewEngine(s, Options{UseIndexes: true, MaxRows: max})
		legacyEng := NewEngine(s, Options{UseIndexes: true, MaxRows: max, Legacy: true})
		q := `match (a)-[:CONNECT]->(b) return a.name, b.name`
		planned, e1 := plannedEng.Run(q)
		legacy, e2 := legacyEng.Run(q)
		if e1 != nil || e2 != nil {
			return false
		}
		if len(planned.Rows) != len(legacy.Rows) || planned.Truncated != legacy.Truncated {
			t.Logf("maxRows=%d: planned %d rows (trunc=%v), legacy %d rows (trunc=%v)",
				max, len(planned.Rows), planned.Truncated, len(legacy.Rows), legacy.Truncated)
			return false
		}
		// Global top-k under the cap must be the true top-k.
		limit := max
		if limit > 5 {
			limit = 5
		}
		qTop := fmt.Sprintf(`match (a)-[:CONNECT]->(b) return a.type, a.name, b.name order by a.type, a.name, b.name limit %d`, limit)
		pTop, e3 := plannedEng.Run(qTop)
		lTop, e4 := legacyEng.Run(qTop)
		if e3 != nil || e4 != nil {
			return false
		}
		a, b := renderRows(pTop), renderRows(lTop)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				t.Logf("top-k mismatch maxRows=%d limit=%d: %q vs %q", max, limit, a[i], b[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: count(*) equals the number of rows the same pattern returns
// without aggregation.
func TestCountAgreesWithRowsQuick(t *testing.T) {
	f := func(seed int64) bool {
		s := randomStore(seed%500, 30)
		eng := NewEngine(s, Options{UseIndexes: true, MaxRows: 0})
		rows, err := eng.Run(`match (a)-[:CONNECT]->(b) return a.name, b.name`)
		if err != nil {
			return false
		}
		cnt, err := eng.Run(`match (a)-[:CONNECT]->(b) return count(*)`)
		if err != nil {
			return false
		}
		if len(rows.Rows) == 0 {
			return len(cnt.Rows) == 0 || cnt.Rows[0][0].Num == 0
		}
		return cnt.Rows[0][0].Num == float64(len(rows.Rows))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- expanded-surface differential testing ---

// legacySupports is the explicit skip-gate for differential testing:
// query shapes the legacy tree-walker cannot execute are skipped rather
// than silently compared. The legacy matcher currently implements the
// full dialect (variable-length BFS, OPTIONAL MATCH, WITH chaining and
// all aggregates share code or semantics with the streaming engine), so
// nothing is gated; new surface that lands planner-first must be listed
// here until the legacy engine catches up.
func legacySupports(q string) bool {
	_ = q
	return true
}

// genSurfaceQuery emits a random query exercising variable-length
// paths, OPTIONAL MATCH and WITH chaining over the randomStore schema.
// LIMIT/SKIP are deliberately absent: without a total order the two
// engines may legitimately keep different subsets.
func genSurfaceQuery(rng *rand.Rand) string {
	types := []string{"Malware", "IP", "Domain", "ThreatActor"}
	rels := []string{"CONNECT", "USE", "RELATED_TO"}
	label := func() string {
		if rng.Intn(2) == 0 {
			return ":" + types[rng.Intn(len(types))]
		}
		return ""
	}
	rel := func() string { return rels[rng.Intn(len(rels))] }
	hops := func() string {
		switch rng.Intn(5) {
		case 0:
			return "*"
		case 1:
			return fmt.Sprintf("*%d", 1+rng.Intn(3))
		case 2:
			lo := rng.Intn(2)
			return fmt.Sprintf("*%d..%d", lo, lo+1+rng.Intn(2))
		case 3:
			return fmt.Sprintf("*..%d", 1+rng.Intn(3))
		default:
			return fmt.Sprintf("*%d..", 1+rng.Intn(2))
		}
	}
	arrow := func(edge string) string {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("-[%s]->", edge)
		case 1:
			return fmt.Sprintf("<-[%s]-", edge)
		default:
			return fmt.Sprintf("-[%s]-", edge)
		}
	}
	switch rng.Intn(9) {
	case 0: // plain var-length chain
		return fmt.Sprintf(`match (a%s)%s(b%s) return a.name, b.name`,
			label(), arrow(":"+rel()+hops()), label())
	case 1: // var-length plus fixed hop
		return fmt.Sprintf(`match (a%s)%s(b)-[:%s]->(c) return a.name, b.name, c.name`,
			label(), arrow(":"+rel()+hops()), rel())
	case 2: // optional match, possibly var-length
		e := ":" + rel()
		if rng.Intn(2) == 0 {
			e += hops()
		}
		return fmt.Sprintf(`match (a%s) optional match (a)%s(b%s) return a.name, b.name`,
			label(), arrow(e), label())
	case 3: // with + aggregate + filter on the aggregate
		return fmt.Sprintf(`match (a%s)-[:%s]->(b) with a, count(b) as c where c >= %d return a.name, c`,
			label(), rel(), rng.Intn(3))
	case 4: // optional + with + collect (canonically ordered list)
		return fmt.Sprintf(`match (a%s) optional match (a)%s(b) with a, collect(b.name) as ns return a.name, ns`,
			label(), arrow(":"+rel()+hops()))
	case 5: // with-rename chain plus second match on the carried var
		return fmt.Sprintf(`match (a%s)-[:%s]->(b) with b as x match (x)%s(c) return x.name, c.name`,
			label(), rel(), arrow(":"+rel()))
	case 6: // multi-chain with a cross-chain equality predicate (hash join)
		return fmt.Sprintf(`match (a%s)-[:%s]->(b), (c%s)-[:%s]->(d) where b.name = d.name return a.name, b.name, c.name, d.name`,
			label(), rel(), label(), rel())
	case 7: // long anonymous chain, both endpoints name-constrained
		return fmt.Sprintf(`match (a {name: "n%d"})%s()%s()%s(b {name: "n%d"}) return count(*)`,
			rng.Intn(30), arrow(":"+rel()), arrow(":"+rel()), arrow(":"+rel()), rng.Intn(30))
	default: // disjoint single-node chains linked only by equality
		return fmt.Sprintf(`match (a%s), (b%s) where a.name = b.name return a.name, b.name`,
			label(), label())
	}
}

// denseRandomStore builds a small high-degree graph — the
// walk-explosion regime where the planner picks BiExpand — so generator
// runs exercise the counted-expansion operator against the legacy
// matcher, not just sparse nested plans.
func denseRandomStore(seed int64, n int) *graph.Store {
	rng := rand.New(rand.NewSource(seed))
	s := graph.New()
	types := []string{"Malware", "IP", "Domain", "ThreatActor"}
	rels := []string{"CONNECT", "USE", "RELATED_TO"}
	var ids []graph.NodeID
	for i := 0; i < n; i++ {
		id, _ := s.MergeNode(types[rng.Intn(len(types))], fmt.Sprintf("n%d", i), nil)
		ids = append(ids, id)
	}
	for i := 0; i < 15*n; i++ {
		s.AddEdge(ids[rng.Intn(n)], rels[rng.Intn(len(rels))], ids[rng.Intn(n)], nil)
	}
	return s
}

// Property: the planned streaming executor and the legacy matcher agree
// on the full expanded surface — variable-length paths, OPTIONAL MATCH,
// WITH chaining, cross-chain equality joins and long symmetric chains —
// over randomized graphs (every third round a dense one, so hash-join
// and bidirectional-expand plans are exercised) and randomized queries.
func TestExpandedSurfaceEquivalenceQuick(t *testing.T) {
	f := func(seed int64, qseed int64) bool {
		s := randomStore(seed%1000, 30)
		if qseed%3 == 0 {
			s = denseRandomStore(seed%1000, 12)
		}
		rng := rand.New(rand.NewSource(qseed))
		q := genSurfaceQuery(rng)
		if !legacySupports(q) {
			return true
		}
		planned, err1 := NewEngine(s, Options{UseIndexes: true}).Run(q)
		legacy, err2 := NewEngine(s, Options{UseIndexes: true, Legacy: true}).Run(q)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("error mismatch for %q: planned=%v legacy=%v", q, err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		if !sameMultiset(renderRows(planned), renderRows(legacy)) {
			t.Logf("row mismatch for %q (graph seed %d):\nplanned: %v\nlegacy:  %v",
				q, seed, renderRows(planned), renderRows(legacy))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: with indexes disabled the expanded surface still agrees
// (the ablation path stays correct for the new operators too).
func TestExpandedSurfaceNoIndexEquivalenceQuick(t *testing.T) {
	queries := []string{
		`match (a:Malware)-[:CONNECT*1..2]->(b) return a.name, b.name`,
		`match (a) optional match (a)-[:USE]->(b:IP) return a.name, b.name`,
		`match (a)-[:CONNECT]->(b) with a, count(b) as c return a.name, c`,
	}
	f := func(seed int64, qi uint8) bool {
		s := randomStore(seed%500, 25)
		q := queries[int(qi)%len(queries)]
		planned, err1 := NewEngine(s, Options{UseIndexes: false}).Run(q)
		legacy, err2 := NewEngine(s, Options{UseIndexes: false, Legacy: true}).Run(q)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return sameMultiset(renderRows(planned), renderRows(legacy))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
