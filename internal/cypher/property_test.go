package cypher

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"securitykg/internal/graph"
)

// randomStore builds a random typed graph from a seed.
func randomStore(seed int64, n int) *graph.Store {
	rng := rand.New(rand.NewSource(seed))
	s := graph.New()
	types := []string{"Malware", "IP", "Domain", "ThreatActor"}
	rels := []string{"CONNECT", "USE", "RELATED_TO"}
	var ids []graph.NodeID
	for i := 0; i < n; i++ {
		id, _ := s.MergeNode(types[rng.Intn(len(types))], fmt.Sprintf("n%d", rng.Intn(n)), nil)
		ids = append(ids, id)
	}
	for i := 0; i < 2*n; i++ {
		s.AddEdge(ids[rng.Intn(len(ids))], rels[rng.Intn(len(rels))], ids[rng.Intn(len(ids))], nil)
	}
	return s
}

// Property: for any random graph and a family of queries, index-based and
// full-scan execution return the same multiset of rows.
func TestIndexScanEquivalenceQuick(t *testing.T) {
	queries := []string{
		`match (n) where n.name = "n5" return n.type, n.name order by n.type`,
		`match (n:Malware) return count(*)`,
		`match (a:Malware)-[:CONNECT]->(b) return a.name, b.name order by a.name, b.name`,
		`match (a {name: "n3"})-[r]-(b) return type(r), b.name order by b.name`,
		`match (a)-[:USE]->(b:IP) return distinct a.name order by a.name`,
	}
	f := func(seed int64, qi uint8) bool {
		s := randomStore(seed%1000, 40)
		q := queries[int(qi)%len(queries)]
		idxEng := NewEngine(s, Options{UseIndexes: true, MaxRows: 0})
		scanEng := NewEngine(s, Options{UseIndexes: false, MaxRows: 0})
		a, err1 := idxEng.Run(q)
		b, err2 := scanEng.Run(q)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if len(a.Rows) != len(b.Rows) {
			return false
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j].String() != b.Rows[i][j].String() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: LIMIT k never returns more than k rows, and SKIP s + the
// returned rows never exceed the unpaged result.
func TestLimitSkipBoundsQuick(t *testing.T) {
	s := randomStore(7, 60)
	eng := NewEngine(s, DefaultOptions())
	f := func(k, sk uint8) bool {
		limit := int(k%20) + 1
		skip := int(sk % 20)
		base, err := eng.Run(`match (n) return n.name order by n.name`)
		if err != nil {
			return false
		}
		paged, err := eng.Run(fmt.Sprintf(
			`match (n) return n.name order by n.name skip %d limit %d`, skip, limit))
		if err != nil {
			return false
		}
		if len(paged.Rows) > limit {
			return false
		}
		want := len(base.Rows) - skip
		if want < 0 {
			want = 0
		}
		if want > limit {
			want = limit
		}
		return len(paged.Rows) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: count(*) equals the number of rows the same pattern returns
// without aggregation.
func TestCountAgreesWithRowsQuick(t *testing.T) {
	f := func(seed int64) bool {
		s := randomStore(seed%500, 30)
		eng := NewEngine(s, Options{UseIndexes: true, MaxRows: 0})
		rows, err := eng.Run(`match (a)-[:CONNECT]->(b) return a.name, b.name`)
		if err != nil {
			return false
		}
		cnt, err := eng.Run(`match (a)-[:CONNECT]->(b) return count(*)`)
		if err != nil {
			return false
		}
		if len(rows.Rows) == 0 {
			return len(cnt.Rows) == 0 || cnt.Rows[0][0].Num == 0
		}
		return cnt.Rows[0][0].Num == float64(len(rows.Rows))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
