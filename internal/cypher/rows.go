package cypher

import (
	"fmt"
	"time"
)

// Rows is an incremental cursor over a query's result stream, in the
// spirit of database/sql.Rows: rows are produced as the caller pulls
// them, so a LIMIT-ed or abandoned query never materializes its full
// match set. Usage:
//
//	rows, err := eng.QueryRows(src, args)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var name string
//		if err := rows.Scan(&name); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Aggregation and ORDER BY cannot emit their first row before consuming
// their input; those queries buffer internally on the first Next call
// (charging the byte budget), then stream the buffered result.
type Rows struct {
	cols    []string
	src     rowSource
	cur     []Value
	err     error
	done    bool
	started bool // Next was called at least once
	writes  *WriteStats
	// finish ends the cursor's execution scope (tx.go) exactly once, at
	// close: commit the statement's implicit transaction (nil error) or
	// roll it back (non-nil), or release the pinned read snapshot. The
	// whole statement is atomic — a write statement's mutations become
	// visible to other sessions only when its cursor closes cleanly.
	finish func(error) error
	// Statement observability (metrics.go): kind is 'r'/'w' for cursors
	// produced by plan execution (0 for adapted results, which were
	// observed by their own execution), began anchors the latency
	// histogram, nrows counts emitted rows, bud exposes budget use.
	kind  byte
	began time.Time
	nrows int64
	bud   *byteBudget
}

// BudgetUsed returns the bytes charged against the statement's byte
// budget so far (0 when the budget is unlimited). Slow-query logs
// report it as a proxy for how much the statement enumerated.
func (r *Rows) BudgetUsed() int64 {
	if r.bud == nil {
		return 0
	}
	return r.bud.used
}

// Writes returns the statement's write counters (nil for read-only
// statements). A write statement applies all of its mutations on the
// first Next call (the mutation stage is an eager barrier); closing a
// write cursor that was never advanced applies them too (Close pulls
// once), so the counters are complete once the cursor is exhausted or
// closed. An error during that deferred application surfaces via Err.
func (r *Rows) Writes() *WriteStats { return r.writes }

// rowSource produces rows one at a time; nil row = exhausted. Sources
// are small structs rather than closures so a cursor costs one
// allocation, not one per captured variable — prepared-statement
// workloads execute millions of these.
type rowSource interface {
	pull() ([]Value, error)
}

func newRows(cols []string, src rowSource) *Rows {
	return &Rows{cols: cols, src: src}
}

// Columns returns the result column names, available before the first
// Next call. The caller must not modify the returned slice.
func (r *Rows) Columns() []string { return r.cols }

// Next advances to the next row, returning false when the stream is
// exhausted or failed (check Err to tell the two apart).
func (r *Rows) Next() bool {
	if r.done {
		return false
	}
	r.started = true
	row, err := r.src.pull()
	if err != nil {
		r.err = err
		r.close()
		return false
	}
	if row == nil {
		r.close()
		return false
	}
	r.nrows++
	r.cur = row
	return true
}

// Row returns the current row's values. The slice is valid until the
// next call to Next or Close.
func (r *Rows) Row() []Value { return r.cur }

// Scan copies the current row into dest, one destination per column.
// Supported destinations: *Value (verbatim), *string (rendered),
// *float64/*int (numbers), *bool, and *any (plain Go representation).
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("cypher: Scan called without a row (call Next first)")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("cypher: Scan expects %d destinations, got %d", len(r.cur), len(dest))
	}
	for i, d := range dest {
		v := r.cur[i]
		switch p := d.(type) {
		case *Value:
			*p = v
		case *string:
			*p = v.String()
		case *float64:
			if v.Kind != KindNumber {
				return fmt.Errorf("cypher: column %q is not a number", r.cols[i])
			}
			*p = v.Num
		case *int:
			if v.Kind != KindNumber {
				return fmt.Errorf("cypher: column %q is not a number", r.cols[i])
			}
			*p = int(v.Num)
		case *bool:
			if v.Kind != KindBool {
				return fmt.Errorf("cypher: column %q is not a boolean", r.cols[i])
			}
			*p = v.Bool
		case *any:
			*p = v.Go()
		default:
			return fmt.Errorf("cypher: unsupported Scan destination %T for column %q", d, r.cols[i])
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any. A query that
// exceeds its byte budget surfaces a *BudgetError here.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor. Abandoning a cursor early (e.g. after the
// first row of interest) stops all upstream pattern matching — nothing
// past the pulled rows is ever computed. The one exception is a write
// statement whose cursor was never advanced: its mutations have not
// run yet (they apply on the first pull), so Close pulls once to apply
// them — a write a caller was handed must not silently evaporate. Any
// error from that application lands in Err.
func (r *Rows) Close() error {
	if r.writes != nil && !r.started && !r.done && r.src != nil {
		if _, err := r.src.pull(); err != nil {
			r.err = err
		}
	}
	r.close()
	return r.err
}

func (r *Rows) close() {
	if !r.done && r.kind != 0 {
		observeStatement(r.kind, time.Since(r.began), r.nrows, r.err)
	}
	r.done = true
	r.cur = nil
	r.src = nil
	if r.finish != nil {
		fin := r.finish
		r.finish = nil
		if err := fin(r.err); err != nil && r.err == nil {
			r.err = err // commit failure: the statement did not land
		}
	}
}

// sliceSource streams an already-materialized row set (legacy engine,
// EXPLAIN output, buffered sort/aggregate results).
type sliceSource struct {
	rows [][]Value
	i    int
}

func (s *sliceSource) pull() ([]Value, error) {
	if s.i >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.i]
	s.i++
	return row, nil
}

// rowsFromResult adapts an already-materialized result to the cursor
// interface.
func rowsFromResult(res *Result) *Rows {
	r := newRows(res.Columns, &sliceSource{rows: res.Rows})
	r.writes = res.Writes
	return r
}

// materialize drains a cursor into a rectangular Result, honoring the
// deprecated-but-honored MaxRows safety valve: when the cap drops rows,
// Result.Truncated is set (a probe distinguishes an exactly-cap stream
// from a truncated one).
func materialize(rows *Rows, maxRows int) (*Result, error) {
	res := &Result{Columns: rows.Columns()}
	for rows.Next() {
		res.Rows = append(res.Rows, rows.Row())
		if maxRows > 0 && len(res.Rows) >= maxRows {
			if rows.Next() {
				res.Truncated = true
			}
			break
		}
	}
	// Close before checking Err: closing ends the statement's execution
	// scope, and a commit failure surfaces there.
	if err := rows.Close(); err != nil {
		return nil, err
	}
	res.Writes = rows.Writes()
	res.BudgetUsed = rows.BudgetUsed()
	return res, nil
}

// --- byte budget ---

// BudgetError is the typed error a query returns when it exceeds its
// Options.MaxBytes byte budget. It replaces the silent match-set
// truncation the engine used to apply: an over-budget query fails
// loudly instead of returning quietly wrong (truncated) aggregates.
type BudgetError struct {
	Limit int64 // the configured budget
	Used  int64 // bytes charged when the budget tripped
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("cypher: query exceeded its %d-byte budget (≈%d bytes streamed/materialized); add a LIMIT, narrow the match, or raise Options.MaxBytes", e.Limit, e.Used)
}

// byteBudget accrues the bytes a query streams or materializes. A nil
// budget (MaxBytes <= 0) is unlimited. Charges are coarse estimates —
// the point is bounding runaway queries, not exact accounting.
type byteBudget struct {
	limit int64
	used  int64
}

func newBudget(limit int64) *byteBudget {
	if limit <= 0 {
		return nil
	}
	return &byteBudget{limit: limit}
}

func (b *byteBudget) charge(n int) error {
	if b == nil {
		return nil
	}
	b.used += int64(n)
	if b.used > b.limit {
		return &BudgetError{Limit: b.limit, Used: b.used}
	}
	return nil
}

// aggRowCost is the flat per-row charge for rows consumed by an
// aggregation: the row itself is folded, not retained, so the charge
// models enumeration work (and bounds unbounded cross products) rather
// than held memory.
const aggRowCost = 64

// bindingBytes charges one materialized binding (legacy engine).
func bindingBytes(b binding) int {
	n := 48
	for _, v := range b {
		n += 16 + valueBytes(v)
	}
	return n
}

// --- plan execution as a row stream ---

// rowsForPlan wires a (possibly cached, possibly shared) plan into the
// streaming iterator pipeline and returns a cursor over its output.
// Every projected row is charged against the query's byte budget as it
// streams, whether the caller keeps it or not — rows dropped by
// DISTINCT included, so the charge bounds enumeration, not just
// retained memory.
func (e *Engine) rowsForPlan(pl *Plan, ps params) (*Rows, error) {
	return e.rowsForPlanProf(pl, ps, nil)
}

// rowsForPlanProf is rowsForPlan with an optional ANALYZE profile: when
// prof is non-nil, every stage iterator and row source is wrapped in a
// profiling decorator (analyze.go).
func (e *Engine) rowsForPlanProf(pl *Plan, ps params, prof *planProf) (*Rows, error) {
	if pl.HasWrites && e.opts.ReadOnly {
		return nil, ErrReadOnly
	}
	// Scope the statement (tx.go): reads pin a snapshot, writes open an
	// implicit store transaction. The returned cursor carries the scope's
	// finish hook; errors before the cursor exists end the scope here.
	ex, finish, err := e.beginScope(pl.HasWrites, pl.Batch)
	if err != nil {
		return nil, err
	}
	rows, err := ex.rowsForPlanScoped(pl, ps, prof)
	if err != nil {
		return nil, finish(err)
	}
	rows.finish = finish
	return rows, nil
}

// rowsForPlanScoped is rowsForPlan's body, running on the per-statement
// scoped engine.
func (e *Engine) rowsForPlanScoped(pl *Plan, ps params, prof *planProf) (*Rows, error) {
	fin := pl.final()
	bud := newBudget(e.opts.MaxBytes)
	var writes *WriteStats
	if pl.HasWrites {
		writes = &WriteStats{}
	}
	began := time.Now()
	ec := &execCtx{e: e, b: binding{}, ps: ps, bud: bud, writes: writes, prof: prof}
	var root iter
	for si, seg := range pl.Segments {
		for _, st := range seg.Stages {
			if _, ok := st.(*OptionalStage); ok {
				// Optional sub-pipelines rebuild their iterators per input
				// row; cache their scans' constant ID lists.
				ec.cacheScans = true
				break
			}
		}
		root = buildStageChain(ec, seg.Stages, root)
		if si < len(pl.Segments)-1 {
			nec := &execCtx{e: e, b: binding{}, ps: ps, bud: bud, writes: writes, prof: prof}
			w := &withIter{srcEC: ec, dstEC: nec, seg: seg, src: root}
			if seg.Distinct && !seg.HasAggregate {
				w.seen = map[string]bool{}
			}
			if prof != nil {
				root = prof.wrapOp(seg, w, root)
			} else {
				root = w
			}
			ec = nec
		}
	}

	if writes != nil && fin.Limit == 0 && len(fin.Items) > 0 {
		// LIMIT 0 returns no rows, but the statement's writes must still
		// apply (the legacy engine applies them; row sources would
		// short-circuit without ever pulling the mutation stage). Drain
		// the pipeline now; the source below then emits nothing.
		for {
			ok, err := root.next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}

	var src rowSource
	switch {
	case len(fin.Items) == 0:
		// Write-only statement: drain the pipeline (applying every
		// mutation), emit no rows.
		src = &drainSource{root: root}
	case fin.HasAggregate:
		src = &aggSource{fin: fin, root: root, ec: ec}
	case fin.op != nil:
		ss := &sortedSource{fin: fin, root: root, ec: ec}
		if fin.Distinct {
			ss.seen = map[string]bool{}
		}
		src = ss
	default:
		st := &streamSource{fin: fin, root: root, ec: ec}
		if fin.Distinct {
			st.seen = map[string]bool{}
		}
		src = st
	}
	if prof != nil {
		src = &profSource{src: src, sp: prof.opFor(fin, root)}
	}
	r := newRows(fin.cols, src)
	r.writes = writes
	r.began = began
	r.bud = bud
	r.kind = 'r'
	if pl.HasWrites {
		r.kind = 'w'
	}
	return r, nil
}

// drainSource exhausts the pipeline without projecting: the execution
// path of a write-only statement, whose result is its WriteStats.
type drainSource struct {
	root iter
	done bool
}

func (d *drainSource) pull() ([]Value, error) {
	if d.done {
		return nil, nil
	}
	d.done = true
	for {
		ok, err := d.root.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
	}
}

// basePull produces the next accepted (projected, budget-charged,
// deduplicated) row for the sorted path, with hidden ORDER BY key
// columns appended.
func basePull(fin *PlanSegment, root iter, ec *execCtx, seen map[string]bool) ([]Value, error) {
	for {
		ok, err := root.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		row, err := projectRow(fin.Items, ec.b, ec.ps)
		if err != nil {
			return nil, err
		}
		if err := ec.bud.charge(rowBytes(row)); err != nil {
			return nil, err
		}
		if seen != nil {
			k := rowKey(row)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		row, err = appendHiddenKeys(row, fin.op, ec.b, ec.ps)
		if err != nil {
			return nil, err
		}
		return row, nil
	}
}

// streamSource is the fully incremental path: projection, DISTINCT,
// SKIP and LIMIT are applied row by row, so a satisfied LIMIT stops
// upstream matching immediately.
type streamSource struct {
	fin     *PlanSegment
	root    iter
	ec      *execCtx
	seen    map[string]bool
	skipped int
	emitted int
	done    bool
}

func (s *streamSource) pull() ([]Value, error) {
	fin := s.fin
	if s.done || (fin.Limit >= 0 && s.emitted >= fin.Limit) {
		s.done = true
		return nil, nil
	}
	for {
		ok, err := s.root.next()
		if err != nil {
			s.done = true
			return nil, err
		}
		if !ok {
			s.done = true
			return nil, nil
		}
		row, err := projectRow(fin.Items, s.ec.b, s.ec.ps)
		if err != nil {
			return nil, err
		}
		if err := s.ec.bud.charge(rowBytes(row)); err != nil {
			s.done = true
			return nil, err
		}
		if s.seen != nil {
			k := rowKey(row)
			if s.seen[k] {
				continue
			}
			s.seen[k] = true
		}
		if s.skipped < fin.Skip {
			s.skipped++
			continue
		}
		s.emitted++
		return row, nil
	}
}

// sortedSource buffers, sorts and pages the stream on the first pull.
// With a LIMIT it keeps a bounded top-k window: the buffer is
// periodically sorted and cut to Skip+Limit rows, so memory stays O(k)
// while every matched row is still considered.
type sortedSource struct {
	fin     *PlanSegment
	root    iter
	ec      *execCtx
	seen    map[string]bool
	started bool
	buf     [][]Value
	bi      int
}

func (s *sortedSource) pull() ([]Value, error) {
	fin := s.fin
	if !s.started {
		s.started = true
		if fin.Limit == 0 {
			return nil, nil
		}
		prof := s.ec.prof
		var fed int64
		var sortTime time.Duration
		if k := fin.Skip + fin.Limit; fin.Limit > 0 {
			window := 2*k + 1024
			for {
				row, err := basePull(fin, s.root, s.ec, s.seen)
				if err != nil {
					return nil, err
				}
				if row == nil {
					break
				}
				s.buf = append(s.buf, row)
				fed++
				if len(s.buf) >= window {
					t := time.Now()
					sortRows(fin.OrderBy, s.buf, fin.op.keyCols)
					sortTime += time.Since(t)
					s.buf = s.buf[:k]
				}
			}
		} else {
			for {
				row, err := basePull(fin, s.root, s.ec, s.seen)
				if err != nil {
					return nil, err
				}
				if row == nil {
					break
				}
				s.buf = append(s.buf, row)
				fed++
			}
		}
		t := time.Now()
		sortRows(fin.OrderBy, s.buf, fin.op.keyCols)
		sortTime += time.Since(t)
		if prof != nil {
			prof.noteSort(fin, fed, sortTime)
		}
		if len(fin.op.hidden) > 0 {
			visible := len(fin.cols)
			for i, r := range s.buf {
				s.buf[i] = r[:visible]
			}
		}
		s.buf = pageRows(s.buf, fin.Skip, fin.Limit)
	}
	if s.bi >= len(s.buf) {
		return nil, nil
	}
	row := s.buf[s.bi]
	s.bi++
	return row, nil
}

// aggSource lazily runs the final aggregation on the first pull
// (sorting the group table when asked), then streams the SKIP/LIMIT
// window.
type aggSource struct {
	fin     *PlanSegment
	root    iter
	ec      *execCtx
	started bool
	buf     [][]Value
	bi      int
}

func (s *aggSource) pull() ([]Value, error) {
	fin := s.fin
	if !s.started {
		s.started = true
		res := &Result{}
		if err := aggregateRows(fin.Items, res, s.consume, s.ec.ps); err != nil {
			return nil, err
		}
		if fin.op != nil {
			sortRows(fin.OrderBy, res.Rows, fin.op.keyCols)
		}
		s.buf = pageRows(res.Rows, fin.Skip, fin.Limit)
	}
	if s.bi >= len(s.buf) {
		return nil, nil
	}
	row := s.buf[s.bi]
	s.bi++
	return row, nil
}

// consume feeds one upstream binding to the aggregation, charging the
// byte budget so unbounded enumerations abort instead of hanging.
func (s *aggSource) consume() (binding, error) {
	ok, err := s.root.next()
	if err != nil || !ok {
		return nil, err
	}
	if err := s.ec.bud.charge(aggRowCost); err != nil {
		return nil, err
	}
	return s.ec.b, nil
}

// pageRows applies SKIP and LIMIT to a materialized row buffer.
func pageRows(rows [][]Value, skip, limit int) [][]Value {
	if skip > 0 {
		if skip >= len(rows) {
			return nil
		}
		rows = rows[skip:]
	}
	if limit >= 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows
}
