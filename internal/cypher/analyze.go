package cypher

import (
	"fmt"
	"strings"
	"time"

	"securitykg/internal/graph"
)

// EXPLAIN ANALYZE profiling. The executor's iterators are untouched:
// when a statement is analyzed, buildStageChain wraps each stage
// iterator in a profIter (and the row sources in a profSource) that
// counts pulls and rows and accumulates monotonic wall time. The wrap
// happens only when execCtx.prof is non-nil — one pointer test at
// pipeline *construction* time — so an un-analyzed execution runs the
// exact same iterator chain as before, with zero per-row overhead and
// zero extra allocations.
//
// Reported times are inclusive of the operator's inputs (each iterator
// pulls its upstream inside next()), matching the convention EXPLAIN
// ANALYZE users know from Postgres.

// stageProf accumulates the observed runtime behavior of one plan
// operator across the whole execution. Operators whose iterators are
// rebuilt per input row (optional sub-pipelines, hash-join build
// chains) share one stageProf per Stage, so their counts accumulate.
type stageProf struct {
	in      *stageProf // upstream operator's profile; nil at pipeline roots
	calls   int64      // next()/pull() invocations
	rows    int64      // rows produced (rows-out)
	elapsed time.Duration
}

// inRows is the operator's rows-in: the upstream's rows-out, or the
// single virtual input row at a pipeline root.
func (sp *stageProf) inRows() int64 {
	if sp.in == nil {
		return 1
	}
	return sp.in.rows
}

// sortProf captures the final ORDER BY separately from the projection
// operator: rows fed into the sort and time spent inside sortRows.
type sortProf struct {
	rows    int64
	elapsed time.Duration
}

// planProf is one analyzed execution's profile, keyed by operator
// identity (Stage pointers and segment pointers are stable for the
// plan's lifetime; the profile itself is per-execution, so a shared
// cached plan never sees another execution's counts).
type planProf struct {
	stages map[Stage]*stageProf
	ops    map[*PlanSegment]*stageProf // projection (With/Project/Aggregate)
	sorts  map[*PlanSegment]*sortProf
}

func newPlanProf() *planProf {
	return &planProf{
		stages: map[Stage]*stageProf{},
		ops:    map[*PlanSegment]*stageProf{},
		sorts:  map[*PlanSegment]*sortProf{},
	}
}

func (p *planProf) stageFor(st Stage) *stageProf {
	sp, ok := p.stages[st]
	if !ok {
		sp = &stageProf{}
		p.stages[st] = sp
	}
	return sp
}

// wrap instruments one stage iterator. input is the already-wrapped
// upstream iterator (nil at pipeline roots).
func (p *planProf) wrap(st Stage, it iter, input iter) iter {
	sp := p.stageFor(st)
	if pi, ok := input.(*profIter); ok {
		sp.in = pi.sp
	}
	return &profIter{inner: it, sp: sp}
}

// wrapOp instruments a segment's projection operator (the withIter
// bridging into the next segment).
func (p *planProf) wrapOp(seg *PlanSegment, it iter, input iter) iter {
	sp := p.opFor(seg, input)
	return &profIter{inner: it, sp: sp}
}

// opFor returns (creating) the projection profile for a segment, wiring
// its rows-in to the segment's last stage.
func (p *planProf) opFor(seg *PlanSegment, input iter) *stageProf {
	sp, ok := p.ops[seg]
	if !ok {
		sp = &stageProf{}
		p.ops[seg] = sp
	}
	if pi, ok := input.(*profIter); ok {
		sp.in = pi.sp
	}
	return sp
}

// noteSort records the final segment's sort: rows buffered in, time
// spent sorting.
func (p *planProf) noteSort(seg *PlanSegment, rows int64, elapsed time.Duration) {
	sp, ok := p.sorts[seg]
	if !ok {
		sp = &sortProf{}
		p.sorts[seg] = sp
	}
	sp.rows += rows
	sp.elapsed += elapsed
}

// profIter times and counts one operator's next() calls.
type profIter struct {
	inner iter
	sp    *stageProf
}

func (p *profIter) next() (bool, error) {
	start := time.Now()
	ok, err := p.inner.next()
	p.sp.elapsed += time.Since(start)
	p.sp.calls++
	if ok {
		p.sp.rows++
	}
	return ok, err
}

// profSource times and counts the final row source (projection,
// aggregation, sort+page) feeding the cursor.
type profSource struct {
	src rowSource
	sp  *stageProf
}

func (p *profSource) pull() ([]Value, error) {
	start := time.Now()
	row, err := p.src.pull()
	p.sp.elapsed += time.Since(start)
	p.sp.calls++
	if row != nil {
		p.sp.rows++
	}
	return row, err
}

// --- annotated rendering (plan.go's render consumes these) ---

// stageSuffix renders the observed counters appended to a stage line,
// or "" when the plan is rendered un-analyzed (plain EXPLAIN).
func (p *planProf) stageSuffix(st Stage) string {
	if p == nil {
		return ""
	}
	sp := p.stages[st]
	if sp == nil {
		return " act=0 in=0 calls=0 time=0s" // planned but never pulled
	}
	s := fmt.Sprintf(" act=%d in=%d calls=%d time=%s", sp.rows, sp.inRows(), sp.calls, sp.elapsed)
	if cardinalityDrifted(st.estRows(), float64(sp.rows)) {
		s += " drift!"
	}
	return s
}

// opSuffix renders the projection operator's counters.
func (p *planProf) opSuffix(seg *PlanSegment) string {
	if p == nil {
		return ""
	}
	sp := p.ops[seg]
	if sp == nil {
		return ""
	}
	return fmt.Sprintf(" [in=%d out=%d time=%s]", sp.inRows(), sp.rows, sp.elapsed)
}

// sortSuffix renders the final sort's counters.
func (p *planProf) sortSuffix(seg *PlanSegment) string {
	if p == nil {
		return ""
	}
	sp := p.sorts[seg]
	if sp == nil {
		return ""
	}
	return fmt.Sprintf(" [in=%d time=%s]", sp.rows, sp.elapsed)
}

// --- cardinality drift feedback ---

// A stage has drifted when its observed cumulative cardinality is a
// driftRatio multiple away from the estimate, with a small-floor guard
// so tiny absolute differences (est 2, act 0) never count: below the
// floor the planner's choice cannot have been wrong by enough to
// matter.
const (
	driftRatio = 8.0
	driftFloor = 16.0
)

func cardinalityDrifted(est, act float64) bool {
	if est < driftFloor && act < driftFloor {
		return false
	}
	return act > est*driftRatio || est > act*driftRatio
}

// noteDrift walks an analyzed plan and reports every drifted expansion
// stage to the store's stats layer, keyed by (source label, edge type,
// direction) — the same key the planner's degree-histogram lookup uses,
// so the store can retire exactly the histogram that misled the cost
// model (graph.RecordEstimateDrift).
func (e *Engine) noteDrift(pl *Plan, prof *planProf) {
	for _, seg := range pl.Segments {
		e.noteStageDrift(seg.Stages, prof)
	}
}

func (e *Engine) noteStageDrift(stages []Stage, prof *planProf) {
	for _, st := range stages {
		switch s := st.(type) {
		case *OptionalStage:
			e.noteStageDrift(s.Inner, prof)
			continue
		case *HashJoinStage:
			e.noteStageDrift(s.Build, prof)
		}
		sp := prof.stages[st]
		if sp == nil || sp.calls == 0 {
			continue
		}
		if !cardinalityDrifted(st.estRows(), float64(sp.rows)) {
			continue
		}
		key, ok := driftKeyFor(st)
		if !ok {
			continue
		}
		e.store.RecordEstimateDrift(key, st.estRows(), float64(sp.rows))
	}
}

// driftKeyFor maps a drifted stage onto the histogram key its estimate
// came from. Only expansion stages have one — a scan misestimate is an
// index-count matter, not a fan-out matter.
func driftKeyFor(st Stage) (graph.DriftKey, bool) {
	switch s := st.(type) {
	case *ExpandStage:
		return graph.DriftKey{Label: s.SrcLabel, EdgeType: s.Edge.Type, Dir: dirFor(s.Edge.Dir, s.Reverse)}, true
	case *VarExpandStage:
		return graph.DriftKey{Label: s.SrcLabel, EdgeType: s.Edge.Type, Dir: dirFor(s.Edge.Dir, s.Reverse)}, true
	case *BiExpandStage:
		h := s.Hops[0]
		return graph.DriftKey{Label: s.SrcLabel, EdgeType: h.Edge.Type, Dir: dirFor(h.Edge.Dir, h.Reverse)}, true
	}
	return graph.DriftKey{}, false
}

// --- execution entry points ---

// analyzeResult executes pl fully under profiling, discards its rows,
// and returns the annotated plan rendered as an EXPLAIN-shaped result —
// the statement form `EXPLAIN ANALYZE <query>`. The statement's writes
// (if any) apply exactly as they would un-analyzed.
func (e *Engine) analyzeResult(pl *Plan, ps params) (*Result, error) {
	prof := newPlanProf()
	rows, err := e.rowsForPlanProf(pl, ps, prof)
	if err != nil {
		return nil, err
	}
	for rows.Next() {
	}
	if err := rows.Close(); err != nil {
		return nil, err
	}
	mAnalyzeRuns.Inc()
	e.noteDrift(pl, prof)
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimSuffix(pl.render(prof), "\n"), "\n") {
		res.Rows = append(res.Rows, []Value{StringValue(line)})
	}
	res.Writes = rows.Writes()
	return res, nil
}

// QueryAnalyze executes a statement exactly as Query would — same rows,
// same writes, same budget — while profiling every pipeline stage, and
// returns the materialized result together with the annotated plan
// text. Drift observations feed the store's stats layer as a side
// effect (see graph.RecordEstimateDrift).
func (e *Engine) QueryAnalyze(src string, args map[string]any) (*Result, string, error) {
	if e.opts.Legacy {
		return nil, "", fmt.Errorf("cypher: EXPLAIN ANALYZE requires the streaming engine (Options.Legacy is set)")
	}
	q, err := Parse(src)
	if err != nil {
		return nil, "", err
	}
	if q.TxOp != TxNone {
		return nil, "", errTxControl
	}
	pl, err := e.planQuery(q)
	if err != nil {
		return nil, "", err
	}
	ps, err := bindParams(q.Params, args)
	if err != nil {
		return nil, "", err
	}
	prof := newPlanProf()
	rows, err := e.rowsForPlanProf(pl, ps, prof)
	if err != nil {
		return nil, "", err
	}
	res, err := materialize(rows, e.opts.MaxRows)
	if err != nil {
		return nil, "", err
	}
	mAnalyzeRuns.Inc()
	e.noteDrift(pl, prof)
	return res, pl.render(prof), nil
}
