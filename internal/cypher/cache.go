package cypher

import (
	"sync"

	"securitykg/internal/graph"
)

// The plan cache is shared per graph.Store: every Engine built over one
// store (API server handlers, prepared statements, ad-hoc shells) reads
// and writes the same cache, so a plan compiled by one engine serves
// them all. Entries are keyed by query text — parameterized statements
// therefore share one entry across all bindings, where literal-spliced
// query strings each miss. The key also carries the engine's UseIndexes
// flag, since it changes which access paths the planner may pick.

// planEntry is a cached plan plus the store stats version it was costed
// against, so plans are re-planned once the planner-visible statistics
// have materially changed or a new index has appeared.
type planEntry struct {
	pl           *Plan
	statsVersion int64
}

const planCacheMax = 512

// planCache is the store-scoped compiled-plan cache. Hits and misses
// are counted so callers can verify reuse (a read-only prepared
// statement run N times against an unchanging store must show N hits
// and one miss; statements that write invalidate their own entry).
type planCache struct {
	mu      sync.Mutex
	entries map[string]planEntry
	hits    int64
	misses  int64
}

// cacheFor returns the store's shared plan cache, creating it on first
// use. Anchoring the cache to the store ties its lifetime to the graph:
// dropping the store drops every cached plan with it.
func cacheFor(s *graph.Store) *planCache {
	return s.QueryCache(func() any {
		return &planCache{entries: make(map[string]planEntry)}
	}).(*planCache)
}

// get returns the cached plan for key if the store's stats version has
// not moved since it was costed. The version bumps when IndexAttr
// creates a new access path and when a planner-visible count (total
// nodes/edges, any label or edge-type cardinality) drifts materially —
// but NOT on every effective mutation, so a write-heavy prepared
// workload whose store shape stays roughly stable keeps its cache hits
// instead of re-planning per write (the pre-PR-5 behavior). Cached
// plans stay correct under mutation either way (access paths never
// become invalid); the version only protects optimality.
func (c *planCache) get(key string, s *graph.Store) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[key]
	if !ok {
		c.misses++
		mPlanCacheMisses.Inc()
		return nil
	}
	if ent.statsVersion != s.StatsVersion() {
		delete(c.entries, key)
		c.misses++
		mPlanCacheMisses.Inc()
		return nil
	}
	c.hits++
	mPlanCacheHits.Inc()
	return ent.pl
}

func (c *planCache) put(key string, pl *Plan, s *graph.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= planCacheMax {
		for k := range c.entries {
			delete(c.entries, k)
			break
		}
	}
	c.entries[key] = planEntry{pl: pl, statsVersion: s.StatsVersion()}
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// CacheStats is a snapshot of the store-shared plan cache's counters.
type CacheStats struct {
	Hits    int64 // lookups served by a cached plan (parse+plan skipped)
	Misses  int64 // lookups that required (or will require) a fresh plan
	Entries int
}

// PlanCacheStats reports the shared cache's counters for the engine's
// store. All engines over one store see the same numbers.
func (e *Engine) PlanCacheStats() CacheStats { return e.cache.stats() }

// cacheKey scopes a query text to the option bits that change planning.
func (e *Engine) cacheKey(src string) string {
	if e.opts.UseIndexes {
		return "i\x00" + src
	}
	return "s\x00" + src
}

// cachedPlan returns the shared cache's plan for src, if still valid.
func (e *Engine) cachedPlan(src string) *Plan {
	return e.cache.get(e.cacheKey(src), e.store)
}

func (e *Engine) storePlan(src string, pl *Plan) {
	e.cache.put(e.cacheKey(src), pl, e.store)
}
