package cypher

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"securitykg/internal/graph"
)

// ValueKind discriminates runtime values.
type ValueKind int

const (
	KindNull ValueKind = iota
	KindString
	KindNumber
	KindBool
	KindNode
	KindEdge
	KindList
	KindMap
)

// Value is one runtime value produced during query evaluation.
type Value struct {
	Kind ValueKind
	Str  string
	Num  float64
	Bool bool
	Node *graph.Node
	Edge *graph.Edge
	List []Value
	Map  map[string]Value
}

// NullValue returns the null value.
func NullValue() Value { return Value{Kind: KindNull} }

// StringValue wraps a string.
func StringValue(s string) Value { return Value{Kind: KindString, Str: s} }

// NumberValue wraps a float64.
func NumberValue(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// BoolValue wraps a bool.
func BoolValue(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// NodeValue wraps a graph node.
func NodeValue(n *graph.Node) Value { return Value{Kind: KindNode, Node: n} }

// EdgeValue wraps a graph edge.
func EdgeValue(e *graph.Edge) Value { return Value{Kind: KindEdge, Edge: e} }

// ListValue wraps a list of values (the collect() aggregate result).
func ListValue(vs []Value) Value { return Value{Kind: KindList, List: vs} }

// MapValue wraps a string-keyed map — the shape of one UNWIND batch row.
func MapValue(m map[string]Value) Value { return Value{Kind: KindMap, Map: m} }

// ToValue converts a plain Go value into a query Value; it is how
// parameter bindings supplied as map[string]any enter the engine.
// Supported: nil, string, bool, every built-in numeric type, Value
// itself, and []any (recursively).
func ToValue(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return NullValue(), nil
	case Value:
		return x, nil
	case string:
		return StringValue(x), nil
	case bool:
		return BoolValue(x), nil
	case float64:
		return NumberValue(x), nil
	case float32:
		return NumberValue(float64(x)), nil
	case int:
		return NumberValue(float64(x)), nil
	case int8:
		return NumberValue(float64(x)), nil
	case int16:
		return NumberValue(float64(x)), nil
	case int32:
		return NumberValue(float64(x)), nil
	case int64:
		return NumberValue(float64(x)), nil
	case uint:
		return NumberValue(float64(x)), nil
	case uint8:
		return NumberValue(float64(x)), nil
	case uint16:
		return NumberValue(float64(x)), nil
	case uint32:
		return NumberValue(float64(x)), nil
	case uint64:
		return NumberValue(float64(x)), nil
	case []any:
		vs := make([]Value, len(x))
		for i, e := range x {
			ev, err := ToValue(e)
			if err != nil {
				return Value{}, err
			}
			vs[i] = ev
		}
		return ListValue(vs), nil
	case map[string]any:
		m := make(map[string]Value, len(x))
		for k, e := range x {
			ev, err := ToValue(e)
			if err != nil {
				return Value{}, err
			}
			m[k] = ev
		}
		return MapValue(m), nil
	}
	return Value{}, fmt.Errorf("cypher: unsupported parameter type %T", v)
}

// Go returns the plain Go representation of a value (inverse of ToValue
// where one exists); nodes and edges come back as their graph pointers.
func (v Value) Go() any {
	switch v.Kind {
	case KindNull:
		return nil
	case KindString:
		return v.Str
	case KindNumber:
		return v.Num
	case KindBool:
		return v.Bool
	case KindNode:
		return v.Node
	case KindEdge:
		return v.Edge
	case KindList:
		out := make([]any, len(v.List))
		for i, e := range v.List {
			out[i] = e.Go()
		}
		return out
	case KindMap:
		out := make(map[string]any, len(v.Map))
		for k, e := range v.Map {
			out[k] = e.Go()
		}
		return out
	}
	return nil
}

// valueBytes is the byte-budget charge for one value: a coarse estimate
// of its in-memory footprint (struct header plus owned string bytes,
// lists recursively). Node/edge values charge only the header — the
// store owns the pointed-to data.
func valueBytes(v Value) int {
	n := 48 + len(v.Str)
	for _, e := range v.List {
		n += valueBytes(e)
	}
	for k, e := range v.Map {
		n += len(k) + valueBytes(e)
	}
	return n
}

// rowBytes charges a projected row: slice header plus its values.
func rowBytes(row []Value) int {
	n := 24
	for _, v := range row {
		n += valueBytes(v)
	}
	return n
}

// String renders a value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindString:
		return v.Str
	case KindNumber:
		if v.Num == float64(int64(v.Num)) {
			return strconv.FormatInt(int64(v.Num), 10)
		}
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.Bool)
	case KindNode:
		return fmt.Sprintf("(:%s {name: %q})", v.Node.Type, v.Node.Name)
	case KindEdge:
		return fmt.Sprintf("[:%s]", v.Edge.Type)
	case KindList:
		parts := make([]string, len(v.List))
		for i, e := range v.List {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case KindMap:
		parts := make([]string, 0, len(v.Map))
		for _, k := range v.sortedMapKeys() {
			parts = append(parts, k+": "+v.Map[k].String())
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
	return "?"
}

// sortedMapKeys returns the map's keys in sorted order so every map
// rendering (String, key) is deterministic.
func (v Value) sortedMapKeys() []string {
	keys := make([]string, 0, len(v.Map))
	for k := range v.Map {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Truthy reports the boolean interpretation used by WHERE.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindBool:
		return v.Bool
	case KindNull:
		return false
	case KindString:
		return v.Str != ""
	case KindNumber:
		return v.Num != 0
	case KindList:
		return len(v.List) > 0
	case KindMap:
		return len(v.Map) > 0
	}
	return true
}

// Equal compares two values with Cypher-like semantics (null equals
// nothing, numbers compare numerically, nodes/edges by identity).
func (v Value) Equal(o Value) bool {
	if v.Kind == KindNull || o.Kind == KindNull {
		return false
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.Str == o.Str
	case KindNumber:
		return v.Num == o.Num
	case KindBool:
		return v.Bool == o.Bool
	case KindNode:
		return v.Node.ID == o.Node.ID
	case KindEdge:
		return v.Edge.ID == o.Edge.ID
	case KindList:
		if len(v.List) != len(o.List) {
			return false
		}
		for i := range v.List {
			if !v.List[i].Equal(o.List[i]) {
				return false
			}
		}
		return true
	case KindMap:
		if len(v.Map) != len(o.Map) {
			return false
		}
		for k, e := range v.Map {
			oe, ok := o.Map[k]
			if !ok || !e.Equal(oe) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare returns -1/0/+1 for orderable values; ok=false when the pair is
// not comparable (mixed kinds, nodes, nulls).
func (v Value) Compare(o Value) (int, bool) {
	if v.Kind != o.Kind {
		return 0, false
	}
	switch v.Kind {
	case KindString:
		switch {
		case v.Str < o.Str:
			return -1, true
		case v.Str > o.Str:
			return 1, true
		}
		return 0, true
	case KindNumber:
		switch {
		case v.Num < o.Num:
			return -1, true
		case v.Num > o.Num:
			return 1, true
		}
		return 0, true
	case KindBool:
		a, b := 0, 0
		if v.Bool {
			a = 1
		}
		if o.Bool {
			b = 1
		}
		return a - b, true
	}
	return 0, false
}

// key returns a map key identifying the value for DISTINCT/grouping.
func (v Value) key() string {
	switch v.Kind {
	case KindNull:
		return "\x00null"
	case KindString:
		return "s:" + v.Str
	case KindNumber:
		return "n:" + strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindBool:
		return "b:" + strconv.FormatBool(v.Bool)
	case KindNode:
		return "N:" + strconv.FormatInt(int64(v.Node.ID), 10)
	case KindEdge:
		return "E:" + strconv.FormatInt(int64(v.Edge.ID), 10)
	case KindList:
		parts := make([]string, len(v.List))
		for i, e := range v.List {
			parts[i] = e.key()
		}
		return "L:" + strings.Join(parts, "\x01")
	case KindMap:
		parts := make([]string, 0, len(v.Map))
		for _, k := range v.sortedMapKeys() {
			parts = append(parts, k+"\x02"+v.Map[k].key())
		}
		return "M:" + strings.Join(parts, "\x01")
	}
	return "?"
}

// totalLess is a total order over all values, used by min()/max() and
// the canonical ordering of collect() so aggregates are deterministic
// regardless of match enumeration order. Kinds order by their enum value;
// within a kind, the natural order (numbers numerically, strings
// lexically, nodes/edges by ID, lists lexicographically).
func (v Value) totalLess(o Value) bool {
	if v.Kind != o.Kind {
		return v.Kind < o.Kind
	}
	switch v.Kind {
	case KindString:
		return v.Str < o.Str
	case KindNumber:
		return v.Num < o.Num
	case KindBool:
		return !v.Bool && o.Bool
	case KindNode:
		return v.Node.ID < o.Node.ID
	case KindEdge:
		return v.Edge.ID < o.Edge.ID
	case KindList:
		for i := range v.List {
			if i >= len(o.List) {
				return false
			}
			if v.List[i].totalLess(o.List[i]) {
				return true
			}
			if o.List[i].totalLess(v.List[i]) {
				return false
			}
		}
		return len(v.List) < len(o.List)
	case KindMap:
		// Maps order by their canonical grouping key: deterministic, and
		// maps are never hot in ORDER BY paths.
		return v.key() < o.key()
	}
	return false
}
