package cypher

// Tests for the driver-grade query API: $parameter binding, prepared
// statements over the store-shared plan cache, the streaming Rows
// cursor, and the byte budget's typed error.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"securitykg/internal/graph"
)

func TestParseCollectsParams(t *testing.T) {
	q, err := Parse(`match (a {name: $who})-[:USE]->(b) where b.name <> $other and b.name contains $frag return b.name, $who`)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(q.Params, ",")
	if got != "frag,other,who" {
		t.Errorf("params = %q, want frag,other,who", got)
	}
	np := q.Parts[0].Matches[0].Patterns[0].Nodes[0]
	if np.ParamProps["name"] != "who" {
		t.Errorf("ParamProps = %v, want name->who", np.ParamProps)
	}
	if _, err := Parse(`match (n) where n.name = $ return n`); err == nil {
		t.Error("bare '$' parsed without error")
	}
}

func TestMissingAndBadParams(t *testing.T) {
	s := randomStore(1, 20)
	eng := NewEngine(s, DefaultOptions())
	if _, err := eng.Query(`match (n {name: $who}) return n`, nil); err == nil ||
		!strings.Contains(err.Error(), "missing parameter $who") {
		t.Errorf("want missing-parameter error, got %v", err)
	}
	if _, err := eng.Query(`match (n {name: $who}) return n`,
		map[string]any{"who": struct{}{}}); err == nil ||
		!strings.Contains(err.Error(), "unsupported parameter type") {
		t.Errorf("want unsupported-type error, got %v", err)
	}
	// Extra bindings are allowed (shells keep one set for many queries).
	if _, err := eng.Query(`match (n) return count(*)`,
		map[string]any{"unused": 1}); err != nil {
		t.Errorf("extra binding rejected: %v", err)
	}
}

func TestParamEquivalentToLiteral(t *testing.T) {
	// A parameterized statement must return exactly what the same
	// statement with the value spliced as a literal returns — on both
	// engines, with and without indexes.
	s := randomStore(3, 40)
	for _, legacy := range []bool{false, true} {
		for _, useIdx := range []bool{true, false} {
			eng := NewEngine(s, Options{UseIndexes: useIdx, Legacy: legacy})
			for _, name := range []string{"n1", "n17", "does-not-exist"} {
				lit, err := eng.Query(fmt.Sprintf(`match (a {name: %q})-[r]-(b) return type(r), b.name`, name), nil)
				if err != nil {
					t.Fatal(err)
				}
				par, err := eng.Query(`match (a {name: $n})-[r]-(b) return type(r), b.name`,
					map[string]any{"n": name})
				if err != nil {
					t.Fatal(err)
				}
				if !sameMultiset(renderRows(lit), renderRows(par)) {
					t.Errorf("legacy=%v idx=%v name=%s:\nliteral: %v\nparam:   %v",
						legacy, useIdx, name, renderRows(lit), renderRows(par))
				}
			}
		}
	}
}

// paramQueryTemplates are the differential shapes for randomized
// parameter bindings: inline props, WHERE equalities (the index-hint
// path), string operators, numeric comparisons after aggregation, and
// var-length anchors.
var paramQueryTemplates = []string{
	`match (n {name: $a}) return n.type, n.name`,
	`match (n) where n.name = $a return n.type, n.name`,
	`match (n:Malware) where n.name = $a or n.name = $b return n.name`,
	`match (x)-[:CONNECT]->(y) where x.name = $a or y.name starts with $b return x.name, y.name`,
	`match (n) where n.name contains $a and not n.name = $b return n.name`,
	`match (a {name: $a})-[:RELATED_TO*1..2]-(b) return b.name`,
	`match (a {name: $a}) optional match (a)-[r]-(b) return a.name, b.name`,
	`match (a)-[:USE]->(b) with a, count(b) as c where c >= $k return a.name, c`,
	`match (n) where n.name = $a return n.name, $b`,
}

// Property: over randomized graphs, queries and parameter bindings, the
// planned engine and the legacy matcher agree row-for-row.
func TestParamDifferentialQuick(t *testing.T) {
	f := func(seed int64, qi uint8, av, bv uint8, kv int8) bool {
		s := randomStore(seed%1000, 40)
		q := paramQueryTemplates[int(qi)%len(paramQueryTemplates)]
		args := map[string]any{
			"a": fmt.Sprintf("n%d", int(av)%45),
			"b": fmt.Sprintf("n%d", int(bv)%45),
			"k": int(kv % 4),
		}
		planned, err1 := NewEngine(s, Options{UseIndexes: true}).Query(q, args)
		legacy, err2 := NewEngine(s, Options{UseIndexes: true, Legacy: true}).Query(q, args)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("error mismatch for %q %v: planned=%v legacy=%v", q, args, err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		if !sameMultiset(renderRows(planned), renderRows(legacy)) {
			t.Logf("row mismatch for %q %v (seed %d):\nplanned: %v\nlegacy:  %v",
				q, args, seed, renderRows(planned), renderRows(legacy))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestPreparedReuseOnePlanManyBindings(t *testing.T) {
	// The acceptance-criteria shape: one prepared statement, 100 distinct
	// bindings, exactly one parse+plan — verified by the shared cache's
	// hit/miss counters and by every binding returning its own row.
	s := graph.New()
	for i := 0; i < 200; i++ {
		s.MergeNode("Malware", fmt.Sprintf("m%d", i), nil)
	}
	eng := NewEngine(s, DefaultOptions())
	base := eng.PlanCacheStats()
	stmt, err := eng.Prepare(`match (n:Malware {name: $name}) return n.name`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if got := stmt.Params(); len(got) != 1 || got[0] != "name" {
		t.Fatalf("stmt.Params() = %v", got)
	}
	for i := 0; i < 100; i++ {
		res, err := stmt.Query(map[string]any{"name": fmt.Sprintf("m%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Str != fmt.Sprintf("m%d", i) {
			t.Fatalf("binding %d: rows %v", i, renderRows(res))
		}
	}
	st := eng.PlanCacheStats()
	if misses := st.Misses - base.Misses; misses != 1 {
		t.Errorf("plan builds = %d, want exactly 1 (parse+plan only at Prepare)", misses)
	}
	if hits := st.Hits - base.Hits; hits != 100 {
		t.Errorf("plan-cache hits = %d, want 100 (one per execution)", hits)
	}
}

func TestSharedPlanCacheAcrossEngines(t *testing.T) {
	// Satellite regression: two engines over one store must hit each
	// other's plans — the cache is keyed per store, not per engine.
	s := graph.New()
	for i := 0; i < 50; i++ {
		s.MergeNode("T", fmt.Sprintf("n%d", i), nil)
	}
	q := `match (n:T) where n.name = $x return n.name`
	eng1 := NewEngine(s, DefaultOptions())
	base := eng1.PlanCacheStats()
	if _, err := eng1.Query(q, map[string]any{"x": "n5"}); err != nil {
		t.Fatal(err)
	}
	eng2 := NewEngine(s, DefaultOptions())
	res, err := eng2.Query(q, map[string]any{"x": "n7"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "n7" {
		t.Fatalf("eng2 rows: %v", renderRows(res))
	}
	st := eng2.PlanCacheStats()
	if st.Misses-base.Misses != 1 || st.Hits-base.Hits != 1 {
		t.Errorf("misses=%d hits=%d after two engines ran the same text, want 1/1",
			st.Misses-base.Misses, st.Hits-base.Hits)
	}
	// Engines with different planning options must NOT share entries.
	eng3 := NewEngine(s, Options{UseIndexes: false})
	if _, err := eng3.Query(q, map[string]any{"x": "n5"}); err != nil {
		t.Fatal(err)
	}
	if got := eng3.PlanCacheStats().Misses - base.Misses; got != 2 {
		t.Errorf("no-index engine misses = %d, want its own entry (2 total misses)", got)
	}
}

func TestParamValuesNeverParsedAsQueryText(t *testing.T) {
	// The injection-shaped footgun: a value full of Cypher syntax binds
	// as an inert string. Spliced, it would change the statement; bound,
	// it matches (or not) literally.
	s := graph.New()
	hostile := `x" return n // `
	s.MergeNode("Malware", hostile, nil)
	s.MergeNode("Malware", "benign", nil)
	for _, legacy := range []bool{false, true} {
		eng := NewEngine(s, Options{UseIndexes: true, Legacy: legacy})
		res, err := eng.Query(`match (n {name: $v}) return n.name, labels(n)`,
			map[string]any{"v": hostile})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Str != hostile {
			t.Errorf("legacy=%v: hostile value did not bind literally: %v", legacy, renderRows(res))
		}
	}
}

func TestParamSeekPlansLikeLiteral(t *testing.T) {
	// A $param name equality must pick the same index kinds a literal
	// does, with the param carried in the plan (visible via EXPLAIN).
	s := graph.New()
	s.IndexAttr("platform")
	for i := 0; i < 100; i++ {
		// Ten distinct platform values: the average bucket (10) beats the
		// label scan (100), so the stats-default costing must pick the
		// composite attr seek even though the bound value is unknown.
		s.MergeNode("Malware", fmt.Sprintf("m%d", i), map[string]string{"platform": fmt.Sprintf("os%d", i%10)})
	}
	eng := NewEngine(s, DefaultOptions())
	plan, err := eng.Explain(`match (n:Malware {name: $who}) return n`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "IndexSeek(label+name)") || !strings.Contains(plan, "name=$who") {
		t.Errorf("param name seek missing from plan:\n%s", plan)
	}
	plan, err = eng.Explain(`match (n:Malware) where n.platform = $p return n`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "IndexSeek(label+attr)") || !strings.Contains(plan, "platform=$p") {
		t.Errorf("param attr seek missing from plan:\n%s", plan)
	}
	// Non-string bindings for a name seek are an empty (not erroneous) match.
	res, err := eng.Query(`match (n {name: $who}) return n`, map[string]any{"who": 7})
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("numeric name binding: rows=%v err=%v, want empty/nil", res, err)
	}
	// EXPLAIN never executes, so it must not require bindings — on any
	// entry point, including the legacy engine.
	for _, legacy := range []bool{false, true} {
		res, err := NewEngine(s, Options{UseIndexes: true, Legacy: legacy}).
			Run(`explain match (n:Malware {name: $who}) return n`)
		if err != nil || len(res.Rows) == 0 {
			t.Errorf("legacy=%v: EXPLAIN of unbound param statement: rows=%v err=%v", legacy, res, err)
		}
	}
}

// --- Rows cursor ---

func TestRowsStreamsFirstRowWithoutMaterializing(t *testing.T) {
	// Acceptance shape: a LIMIT 1 over an effectively unbounded cross
	// product (1000^3 = 1e9 combinations). Materializing would run for
	// hours; the cursor must surface its row immediately because the
	// executor only pulls what the cursor asks for.
	s := graph.New()
	for i := 0; i < 1000; i++ {
		s.MergeNode("T", fmt.Sprintf("n%d", i), nil)
	}
	eng := NewEngine(s, DefaultOptions())
	rows, err := eng.QueryRows(`match (a), (b), (c) return a.name, b.name, c.name limit 1`, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if rows.Next() {
		t.Error("LIMIT 1 produced a second row")
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}

	// Without a LIMIT, pulling a handful of rows and abandoning the
	// cursor must be equally immediate.
	rows, err = eng.QueryRows(`match (a), (b), (c) return a.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !rows.Next() {
			t.Fatalf("row %d missing: %v", i, rows.Err())
		}
	}
	rows.Close()
	if rows.Next() {
		t.Error("Next returned true after Close")
	}
}

func TestRowsColumnsAndScan(t *testing.T) {
	s := graph.New()
	s.MergeNode("Malware", "wannacry", nil)
	eng := NewEngine(s, DefaultOptions())
	rows, err := eng.QueryRows(`match (n:Malware) return n.name as name, count(*) as c`, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "name" || cols[1] != "c" {
		t.Fatalf("columns = %v", rows.Columns())
	}
	if err := rows.Scan(new(string)); err == nil {
		t.Error("Scan before Next succeeded")
	}
	if !rows.Next() {
		t.Fatalf("no row: %v", rows.Err())
	}
	var name string
	var c int
	if err := rows.Scan(&name, &c); err != nil {
		t.Fatal(err)
	}
	if name != "wannacry" || c != 1 {
		t.Errorf("scanned %q/%d", name, c)
	}
	if err := rows.Scan(&name); err == nil {
		t.Error("arity-mismatched Scan succeeded")
	}
	if err := rows.Scan(new(bool), new(int)); err == nil {
		t.Error("type-mismatched Scan succeeded")
	}
}

func TestRowsOrderedAndAggregatedPaths(t *testing.T) {
	// The buffered cursor paths (sort, aggregate) must agree with the
	// materializing API.
	s := randomStore(11, 40)
	eng := NewEngine(s, DefaultOptions())
	for _, q := range []string{
		`match (n) return n.name order by n.name desc skip 3 limit 4`,
		`match (a)-[:CONNECT]->(b) return a.type, count(b) order by a.type`,
		`match (n) return distinct n.type order by n.type`,
	} {
		res, err := eng.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := eng.QueryRows(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for rows.Next() {
			cells := make([]string, len(rows.Row()))
			for i, v := range rows.Row() {
				cells[i] = v.String()
			}
			got = append(got, strings.Join(cells, "|"))
		}
		rows.Close()
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		want := renderRows(res)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("%s:\ncursor: %v\nquery:  %v", q, got, want)
		}
	}
}

func TestBudgetErrorIsTypedNotTruncation(t *testing.T) {
	// Acceptance: exceeding the byte budget surfaces *BudgetError — on
	// the streaming path, through the cursor, and on the legacy engine.
	s := graph.New()
	for i := 0; i < 2000; i++ {
		s.MergeNode("T", fmt.Sprintf("node-with-a-long-name-%d", i), nil)
	}
	opts := Options{UseIndexes: true, MaxBytes: 8 << 10}
	_, err := NewEngine(s, opts).Run(`match (n) return n.name`)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("materialized: want *BudgetError, got %v", err)
	}
	if be.Limit != 8<<10 || be.Used <= be.Limit {
		t.Errorf("budget fields: limit=%d used=%d", be.Limit, be.Used)
	}

	rows, err := NewEngine(s, opts).QueryRows(`match (n) return n.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if !errors.As(rows.Err(), &be) {
		t.Fatalf("cursor: want *BudgetError after %d rows, got %v", n, rows.Err())
	}
	if n == 0 {
		t.Error("cursor produced no rows before tripping the budget")
	}

	_, err = NewEngine(s, Options{UseIndexes: true, MaxBytes: 8 << 10, Legacy: true}).
		Run(`match (n) return n.name`)
	if !errors.As(err, &be) {
		t.Fatalf("legacy: want *BudgetError, got %v", err)
	}

	// Under the budget the same query succeeds exactly.
	res, err := NewEngine(s, Options{UseIndexes: true, MaxBytes: 1 << 20}).Run(`match (n) return count(*)`)
	if err != nil || res.Rows[0][0].Num != 2000 {
		t.Errorf("under budget: res=%v err=%v", res, err)
	}
}

func TestRowsParamStreamRandomBindings(t *testing.T) {
	// Streaming with rotating bindings over one prepared statement:
	// every pull must see its own binding's rows (no state bleed).
	s := randomStore(5, 60)
	eng := NewEngine(s, DefaultOptions())
	stmt, err := eng.Prepare(`match (a {name: $who})-[r]-(b) return type(r), b.name`)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		who := fmt.Sprintf("n%d", rng.Intn(60))
		want, err := eng.Query(fmt.Sprintf(`match (a {name: %q})-[r]-(b) return type(r), b.name`, who), nil)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := stmt.QueryRows(map[string]any{"who": who})
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for rows.Next() {
			cells := make([]string, len(rows.Row()))
			for j, v := range rows.Row() {
				cells[j] = v.String()
			}
			got = append(got, strings.Join(cells, "|"))
		}
		rows.Close()
		if !sameMultiset(got, renderRows(want)) {
			t.Fatalf("binding %q: cursor %v, query %v", who, got, renderRows(want))
		}
	}
}
