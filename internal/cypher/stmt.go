package cypher

import "fmt"

// Stmt is a prepared statement: the query is parsed once at Prepare and
// planned once into the store-shared plan cache, so executing it with N
// different parameter bindings costs N cache lookups, not N parses and
// plans. The plan is cached by query text — the $parameter placeholders
// stay in the text, which is what lets one entry serve every binding.
//
//	stmt, _ := eng.Prepare(`match (m {name: $ioc})-[:CONNECT*1..2]-(x) return x.name`)
//	for _, ioc := range observed {
//		rows, _ := stmt.QueryRows(map[string]any{"ioc": ioc})
//		for rows.Next() { ... }
//		rows.Close()
//	}
type Stmt struct {
	e   *Engine
	src string
	key string // precomputed plan-cache key
	q   *Query
}

// Prepare parses src and (for the streaming engine) plans it into the
// shared cache, returning a statement that can be executed any number
// of times with different parameter bindings.
func (e *Engine) Prepare(src string) (*Stmt, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if q.TxOp != TxNone {
		return nil, errTxControl
	}
	if len(q.Parts) == 0 {
		return nil, fmt.Errorf("cypher: empty query")
	}
	if fin := &q.Parts[len(q.Parts)-1]; len(fin.Items) == 0 && !fin.HasWrites() {
		return nil, fmt.Errorf("cypher: empty RETURN")
	}
	st := &Stmt{e: e, src: src, key: e.cacheKey(src), q: q}
	if !e.opts.Legacy && !q.Explain {
		if _, err := st.plan(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// Params returns the sorted $parameter names the statement requires.
func (s *Stmt) Params() []string { return append([]string(nil), s.q.Params...) }

// plan fetches the statement's plan from the shared cache, re-planning
// (without re-parsing) when the cache evicted it or the store drifted
// past the entry's validity bounds.
func (s *Stmt) plan() (*Plan, error) {
	if pl := s.e.cache.get(s.key, s.e.store); pl != nil {
		return pl, nil
	}
	pl, err := s.e.planQuery(s.q)
	if err != nil {
		return nil, err
	}
	s.e.cache.put(s.key, pl, s.e.store)
	return pl, nil
}

// QueryRows executes the statement with the given bindings and returns
// a streaming cursor.
func (s *Stmt) QueryRows(args map[string]any) (*Rows, error) {
	if s.e.opts.Legacy || s.q.Explain {
		return s.e.QueryRows(s.src, args)
	}
	pl, err := s.plan()
	if err != nil {
		return nil, err
	}
	ps, err := bindParams(pl.Params, args)
	if err != nil {
		return nil, err
	}
	return s.e.rowsForPlan(pl, ps)
}

// Query executes the statement with the given bindings and materializes
// the full result (honoring the MaxRows safety valve, like Engine.Query).
func (s *Stmt) Query(args map[string]any) (*Result, error) {
	if s.e.opts.Legacy {
		return s.e.Query(s.src, args)
	}
	rows, err := s.QueryRows(args)
	if err != nil {
		return nil, err
	}
	return materialize(rows, s.e.opts.MaxRows)
}

// Close releases the statement. It exists for database/sql-style call
// sites; the statement holds no resources beyond its parsed form.
func (s *Stmt) Close() error { return nil }
