package cypher

import (
	"fmt"
	"strings"
	"testing"

	"securitykg/internal/graph"
)

// The golden-plan suite pins the planner's choices on canonical shapes
// over fixture stores with known skew: full EXPLAIN snapshots where the
// whole plan matters, operator assertions where only the choice does.
// Cost-model edits that change a choice fail loudly here instead of
// silently regressing plans. Everything is deterministic: the fixtures
// are fixed, and estimates come from histograms over them.

// goldenJoinStore: 300 :Src and 300 :Dst nodes overlapping on name —
// the canonical cross-chain equality shape.
func goldenJoinStore() *graph.Store {
	s := graph.New()
	for i := 0; i < 300; i++ {
		s.MergeNode("Src", fmt.Sprintf("k%d", i), nil)
		s.MergeNode("Dst", fmt.Sprintf("k%d", i+100), nil)
	}
	return s
}

// goldenMeshStore: a 40-node directed :H clique — the walk-explosion
// regime for chain expansion.
func goldenMeshStore() *graph.Store {
	s := graph.New()
	ids := make([]graph.NodeID, 40)
	for i := range ids {
		ids[i], _ = s.MergeNode("H", fmt.Sprintf("h%d", i), nil)
	}
	for i := range ids {
		for j := range ids {
			if i != j {
				s.AddEdge(ids[i], "R", ids[j], nil)
			}
		}
	}
	return s
}

func explain(t *testing.T, s *graph.Store, q string) string {
	t.Helper()
	text, err := NewEngine(s, DefaultOptions()).Explain(q)
	if err != nil {
		t.Fatalf("explain %q: %v", q, err)
	}
	return text
}

func assertGolden(t *testing.T, got, want string) {
	t.Helper()
	got, want = strings.TrimSpace(got), strings.TrimSpace(want)
	if got != want {
		t.Errorf("plan drifted from golden snapshot:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestGoldenHashJoinPlan(t *testing.T) {
	got := explain(t, goldenJoinStore(),
		`match (a:Src), (b:Dst) where a.name = b.name return a.name, b.name`)
	assertGolden(t, got, `
plan (streaming, greedy-ordered):
   1. LabelScan (a:Src)                                            est≈300
   2. HashJoin on a.name = b.name (build=chain)                    est≈300
      where a.name = b.name
       2.1 LabelScan (b:Dst)                                       est≈300
   => Project a.name, b.name
`)
}

func TestGoldenHashJoinFallbackOnSelectiveProbe(t *testing.T) {
	// A point-seek probe side produces one row: the histograms say the
	// nested loop enumerates the other chain exactly once either way, so
	// building a hash table buys nothing and the planner must fall back.
	pl := plan(t, goldenJoinStore(),
		`match (a:Src {name: "k7"}), (b:Dst) where a.name = b.name return b.name`)
	if planHas(pl, isHashJoin) {
		t.Fatalf("selective probe side must keep the nested loop:\n%s", pl.String())
	}
}

func TestGoldenHashJoinFallbackOnOversizedBuild(t *testing.T) {
	// Both sides past hashJoinMaxBuild: the build table cannot fit, so
	// the planner keeps the pipelined nested loop. Exercised through the
	// pure decision function — building a 10^6-node fixture store for
	// this would dominate the suite's runtime.
	if got := chooseJoin(1<<20, 1<<21, 1<<21, 1e18, 1<<20); got != joinNested {
		t.Fatalf("oversized build side chose %v, want nested", got)
	}
	// Just under the cap, the same shape hashes.
	if got := chooseJoin(1<<16, 1<<21, 1<<21, 1e18, 1<<16); got != joinHashInput {
		t.Fatalf("fitting build side chose %v, want hash(input)", got)
	}
}

func TestGoldenBiExpandPlan(t *testing.T) {
	got := explain(t, goldenMeshStore(),
		`match (a:H {name: "h0"})-[:R]->()-[:R]->()-[:R]->()-[:R]->(b:H {name: "h1"}) return count(*)`)
	assertGolden(t, got, `
plan (streaming, greedy-ordered):
   1. IndexSeek(label+name) (a:H {name: "h0"}) name="h0"           est≈1
   2. BiExpand (a)-[:R]->()-[:R]->()-[:R]->()-[:R]->(b:H {name: "h1"}) [4 hops, meet@2] est≈57836.0
   => Aggregate count(*)
`)
}

func TestGoldenBiExpandFallbackOnShortChain(t *testing.T) {
	// Two hops: the per-level map bookkeeping outweighs collapsing, so
	// the chain stays plain Expand stages.
	pl := plan(t, goldenMeshStore(),
		`match (a:H {name: "h0"})-[:R]->()-[:R]->(b:H {name: "h1"}) return count(*)`)
	if planHas(pl, isBiExpand) {
		t.Fatalf("2-hop chain must stay nested:\n%s", pl.String())
	}
}

func TestGoldenBiExpandFallbackOnSparseGraph(t *testing.T) {
	// A sparse chain graph: walks never outnumber nodes, so counted
	// expansion would only add map overhead — enumeration stays.
	s := graph.New()
	prev, _ := s.MergeNode("H", "h0", nil)
	for i := 1; i < 200; i++ {
		cur, _ := s.MergeNode("H", fmt.Sprintf("h%d", i), nil)
		s.AddEdge(prev, "R", cur, nil)
		prev = cur
	}
	pl := plan(t, s,
		`match (a:H {name: "h0"})-[:R]->()-[:R]->()-[:R]->()-[:R]->(b) return b.name`)
	if planHas(pl, isBiExpand) {
		t.Fatalf("sparse chain must stay nested:\n%s", pl.String())
	}
}

func TestGoldenParallelScanPlan(t *testing.T) {
	s := graph.New()
	for i := 0; i < 2500; i++ {
		s.MergeNode("T", fmt.Sprintf("node-%04d", i), nil)
	}
	got := explain(t, s, `match (n:T) where n.name contains "7" return count(*)`)
	assertGolden(t, got, `
plan (streaming, greedy-ordered):
   1. LabelScan(parallel) (n:T)                                    est≈2500
      where n.name contains "7"
   => Aggregate count(*)
`)
	// Below the partition threshold the scan stays sequential.
	small := graph.New()
	for i := 0; i < 500; i++ {
		small.MergeNode("T", fmt.Sprintf("n%d", i), nil)
	}
	if sc := plan(t, small, `match (n:T) return count(*)`).Segments[0].Stages[0].(*ScanStage); sc.Parallel {
		t.Error("500-row scan must not be partitioned")
	}
}
