//go:build !race

// Allocation regression guards for the executor hot path. AllocsPerRun
// is meaningless under the race detector, so these run in the plain
// pass `make test` adds alongside the -race suite.

package cypher

import (
	"fmt"
	"testing"

	"securitykg/internal/graph"
)

// TestAnalyzeDisabledAllocs locks down that EXPLAIN ANALYZE
// instrumentation costs nothing when it is off: the profiling
// decorators are attached at pipeline construction only when a profile
// sink exists, so the ordinary warm prepared path (plan-cache hit,
// 200-row expand) must stay at its pre-instrumentation allocation
// count. The ceilings carry a few allocs of headroom for incidental
// churn, but any unconditional per-pull bookkeeping — one allocation
// per row pulled — overshoots them by ~200 and fails loudly.
func TestAnalyzeDisabledAllocs(t *testing.T) {
	s := graph.New()
	hub, _ := s.MergeNode("Malware", "hub", nil)
	for i := 0; i < 200; i++ {
		ip, _ := s.MergeNode("IP", fmt.Sprintf("10.0.0.%d", i), nil)
		s.AddEdge(hub, "CONNECT", ip, nil)
	}
	eng := NewEngine(s, DefaultOptions())
	args := map[string]any{"name": "hub"}

	agg, err := eng.Prepare(`match (m:Malware {name: $name})-[:CONNECT]->(ip) return count(*)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Query(args); err != nil { // warm the plan cache
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := agg.Query(args); err != nil {
			t.Fatal(err)
		}
	}); allocs > 240 {
		t.Errorf("warm expand+aggregate allocates %.0f/op, want <= 240 (baseline 230): disabled instrumentation must add nothing", allocs)
	}

	proj, err := eng.Prepare(`match (m:Malware {name: $name})-[:CONNECT]->(ip) return ip.name`)
	if err != nil {
		t.Fatal(err)
	}
	drain := func() {
		rows, err := proj.QueryRows(args)
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
	}
	drain()
	if allocs := testing.AllocsPerRun(200, drain); allocs > 235 {
		t.Errorf("warm expand cursor drain allocates %.0f/op, want <= 235 (baseline 223)", allocs)
	}
}
