package cypher

// Native Go fuzz targets for the query surface. Invariants:
//
//   - FuzzParse: the parser never panics, whatever the input bytes.
//   - FuzzEngineQuery: any input the parser accepts either executes or
//     returns an error — the engines (planned and legacy) never panic
//     and never hang (MaxRows bounds enumeration; variable-length BFS
//     is visited-set bounded).
//
// The seed corpus is every query string already used across the package
// tests, the examples and the benchmarks, so the fuzzers start from the
// full grammar instead of rediscovering it. Run with:
//
//	go test ./internal/cypher -fuzz FuzzParse -fuzztime 30s
//	go test ./internal/cypher -fuzz FuzzEngineQuery -fuzztime 30s

import (
	"sync"
	"testing"

	"securitykg/internal/graph"
)

// seedQueries is the corpus: every statement shape the tests, examples
// and benchmarks exercise, including the expanded surface.
var seedQueries = []string{
	// Paper demo scenarios and basic matching.
	`match(n) where n.name = "wannacry" return n`,
	`match (m:Malware {name: "wannacry"}) return m.name`,
	`match (m:Malware)-[:CONNECT]->(x) return x.name order by x.name`,
	`match (x)<-[:CONNECT]-(m) return m.name, x.name order by x.name`,
	`match (a {name: "10.1.2.3"})-[r]-(b) return type(r), b.name`,
	`match (r:MalwareReport)-[:DESCRIBES]->(m)-[:EXPLOIT]->(v) return r.name, m.name, v.name`,
	`match (a:ThreatActor {name: "cozyduke"})-[:USE]->(t)<-[:USE]-(other) where other.name <> "cozyduke" return distinct other.name`,
	`match (n) where n.name contains "duke" return n`,
	`match (n) where n.name starts with "CVE" return n`,
	`match (n) where n.name ends with ".exe" return n`,
	`match (n:ThreatActor) where not n.name = "apt29" return n`,
	`match (n:Technique) where n.name = "spearphishing" or n.name = "credential dumping" return n`,
	`match (n) where n.name <> n.name return n`,
	`match (a:ThreatActor)-[:USE]->(t) return a.name, count(t) order by a.name`,
	`match (n) return count(*)`,
	`match (n) return n.name order by n.name desc limit 3`,
	`match (n) return n.name order by n.name skip 8`,
	`match (n {name: "wannacry"}) return n.name as malware_name`,
	`match (n {name: "wannacry"}) return labels(n), id(n), upper(n.name)`,
	`match (n:Malware) where n.platform = "windows" return n.name`,
	`match (a:Technique), (b:ThreatActor) return a.name, b.name`,
	`match (m:Malware)-[:EXPLOIT]->(v), (m)-[:DROP]->(f) return m.name, v.name, f.name`,
	`MATCH (n) WHERE n.name = "wannacry" RETURN n LIMIT 5`,
	`match (n) where n.type = "A" return n.name`,
	`match (n) where n.label = "A" return n.name`,
	`match (p)-[:E]->(q) where q.name contains "zzz" and count(p) > 0 return p.name`,
	`match (a), (b), (c) return count(*)`,
	`match (ip:IP)<-[:CONNECT]-(m:Malware) return ip.name`,
	`match (n) where n.name = "hub" and n.type = "Malware" return n`,
	`match (m:Malware) where m.platform = "solaris" return m.name`,
	`match (m:Malware)-[:CONNECT]->(ip), (m)-[:CONNECT]->(ip2) return ip.name, ip2.name`,
	`explain match (m:Malware)-[:CONNECT]->(ip) where ip.name contains "10." return ip.name limit 5`,
	`explain match (n) return n`,
	`match (m {name: "malware-5000"})-[:CONNECT]->(ip)<-[:CONNECT]-(m2) return m2.name`,
	`match (m:Malware)-[:CONNECT]->(ip) return m.name, ip.name limit 10`,
	`match (m {name: "wannacry"})-[:ATTRIBUTED_TO]->(a:ThreatActor) return a.name`,
	`match (r)-[:DESCRIBES]->(m {name: "x"}) return r.name, r.source`,
	// Expanded surface: variable-length, OPTIONAL MATCH, WITH, aggregates.
	`match (a:Malware {name:"X"})-[:uses*1..3]->(b) return b.name`,
	`match (a:Malware {name:"X"})-[:uses*2]->(b) return b.name`,
	`match (a:Malware {name:"X"})-[:uses*..2]->(b) return b.name`,
	`match (a:Malware {name:"X"})-[:uses*2..]->(b) return b.name`,
	`match (a:Malware {name:"X"})-[:uses*]->(b) return b.name`,
	`match (a)-[*2]->(b) return a`,
	`match (a)-[:T*0..1]->(b) return b.name`,
	`match (h:Host {name:"h1"})<-[:uses*1..3]-(b) return b.name`,
	`match (m {name:"t1"})-[:uses*1..1]-(b) return b.name`,
	`match (a:Tool) optional match (a)-[:uses]->(b:Tool) return a.name, b.name order by a.name`,
	`match (a:Malware) optional match (a)-[:uses]->(b) where b.name = "nope" return a.name, b.name`,
	`match (h:Host) optional match (h)-[:uses]->(x) optional match (x)-[:uses]->(y) return h.name, x.name, y.name`,
	`optional match (n:Nothing) return n.name`,
	`match (a:Malware)-[:uses]->(b) with b as tool match (tool)-[:uses]->(c) return tool.name, c.name`,
	`match (n:Tool) with n.name as nm where nm <> "t1" return nm`,
	`match (n)-[]->(m) with distinct m.type as ty return ty order by ty`,
	`match (n:Tool) with n.name as nm with nm where nm starts with "t" return nm order by nm`,
	`match (a)-[:uses]->(b) with a, count(b) as fanout where fanout >= 1 match (a)-[:drops]->(f) return a.name, fanout, f.name`,
	`match (a:Actor)-[:USE]->(t) return a.name, min(t.name), max(t.name), sum(id(t)), collect(t.name), count(t)`,
	`match (m:Malware {name:"X"}) optional match (m)-[:uses*1..3]->(asset) with m, collect(asset.name) as reachable return m.name, reachable`,
	`match (n) return n.name order by n.rank`,
	`explain match (m:Malware {name:"X"})-[:uses*1..3]->(b) optional match (b)-[:uses]->(c) with b, count(c) as deps where deps >= 0 return b.name, deps order by b.name limit 5`,
	// Parameterized surface: inline $param props, WHERE operands on both
	// sides, projections, and params the fixed binding set doesn't cover
	// (which must error cleanly, not crash).
	`match (n {name: $p}) return n`,
	`match (n:Malware {name: $p, platform: $plat}) return n.name`,
	`match (n) where n.name = $p or $p = n.name return n.name`,
	`match (n) where n.name contains $frag and not n.name = $p return n.name, $num`,
	`match (a {name: $p})-[:uses*1..2]->(b) return b.name`,
	`match (a:Tool) optional match (a)-[:uses]->(b {name: $p}) return a.name, b.name`,
	`match (a)-[:uses]->(b) with a, count(b) as c where c >= $num return a.name, c`,
	`explain match (n {name: $p}) return n`,
	`match (n {name: $unbound_param}) return n`,
	`match (n) where n.name = $ return n`,
	// Write surface: CREATE/MERGE/SET/DELETE, edge props, params,
	// optional RETURN, WITH chaining across writes.
	`create (m:Malware {name: "petya"})`,
	`create (m:Malware {name: $p, platform: $plat})-[:CONNECT {proto: "tcp"}]->(ip:IP {name: "10.0.0.9"})`,
	`merge (t:Tool {name: "t9"}) return t.name`,
	`merge (t:Tool {name: $p}) set t.seen = $num return t.name, t.seen`,
	`match (m:Malware) set m.family = "worm", m.active = true return m.name order by m.name`,
	`match (a:Tool) optional match (a)-[:uses]->(b) set b.mark = "1" return a.name`,
	`match (m {name: "wannacry"})-[r]-(x) delete r return count(*)`,
	`match (m:Malware {name: "X"}) detach delete m`,
	`match (t:Tool) with t where t.name = "t1" create (g:Host {name: "h7"})-[:runs]->(t) return g.name`,
	`create (a:A {name: "a"}), (b:B {name: "b"}) create (a)-[:pair]->(b)`,
	`match (a:A {name: "a"}), (b:B {name: "b"}) merge (a)-[:pair]->(b)`,
	`match (n:Host) delete n`,
	`create (x:T)`,
	`create (x {name: "nolabel"})`,
	`match (t:Tool) set t.name = "nope"`,
	`create (a:A {name:"a"})-[:T*1..2]->(b:B {name:"b"})`,
	`match (a)-[r:uses {w: "1"}]->(b) return a`,
	`detach delete n`,
	// Transaction control: standalone statements routed by sessions, plus
	// malformed mixes that must fail in the parser, never the executor.
	`begin`,
	`BEGIN`,
	`begin transaction`,
	`commit`,
	`COMMIT TRANSACTION`,
	`rollback`,
	`rollback transaction`,
	`  begin  `,
	`begin match (n) return n`,
	`commit (n)`,
	`explain begin`,
	`beginner`,
	// Historic parse-error corpus (must keep failing cleanly).
	``,
	`return 1`,
	`match (n) return`,
	`match (n where x return n`,
	`match (n) where n.name = return n`,
	`match (n)-[r->(m) return n`,
	`match (n) return n order by`,
	`match (n) return n limit -1`,
	`match (n) return n trailing`,
	`match (n) where n.name = "unterminated return n`,
	`match (a)-[r:T*1..3]->(b) return a`,
	`match (a)-[:T*3..1]->(b) return a`,
	`match (a)-[:T*1.5]->(b) return a`,
	`match (n) return min(*)`,
	`match (n) with return n`,
	`match (n) with n order by n.name return n`,
	`match (n) return n with n`,
	`match (a:Malware), (b:IP) where a.name = b.name return a.name, b.name`,
	`match (a)-[:uses]->(x), (b)-[:uses]->(y) where x.name = y.name and a.name = b.name return count(*)`,
	`match (a {name: "x"})-[:uses]->()-[:uses]->()-[:uses]->(b) return b.name, count(*)`,
	`match (a {name: "x"})-[:uses]->()-[:uses]->()-[:uses]->(a) return count(*)`,
}

// buildFuzzStore constructs the small graph the engine fuzz target
// queries. Read-only executions share one instance (fuzzStore); write
// statements get a fresh copy per execution so mutations cannot leak
// across fuzz iterations.
func buildFuzzStore() *graph.Store {
	s := graph.New()
	s.IndexAttr("platform")
	x, _ := s.MergeNode("Malware", "X", map[string]string{"platform": "windows"})
	t1, _ := s.MergeNode("Tool", "t1", nil)
	t2, _ := s.MergeNode("Tool", "t2", nil)
	h1, _ := s.MergeNode("Host", "h1", nil)
	wc, _ := s.MergeNode("Malware", "wannacry", nil)
	ip, _ := s.MergeNode("IP", "10.1.2.3", nil)
	s.AddEdge(x, "uses", t1, nil)
	s.AddEdge(t1, "uses", t2, nil)
	s.AddEdge(t2, "uses", h1, nil)
	s.AddEdge(wc, "CONNECT", ip, nil)
	s.AddEdge(wc, "uses", x, nil) // cycle via x -> ... plus cross-type edge
	s.AddEdge(h1, "uses", x, nil) // real cycle for unbounded BFS
	return s
}

// fuzzStore is the shared read-only instance; built once because fuzz
// workers call the target millions of times.
var (
	fuzzStoreOnce sync.Once
	fuzzStoreVal  *graph.Store
)

func fuzzStore() *graph.Store {
	fuzzStoreOnce.Do(func() { fuzzStoreVal = buildFuzzStore() })
	return fuzzStoreVal
}

// FuzzParse asserts the parser never panics on arbitrary input.
func FuzzParse(f *testing.F) {
	for _, q := range seedQueries {
		f.Add(q)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err == nil && q == nil {
			t.Fatal("Parse returned nil query without error")
		}
	})
}

// fuzzArgs is the fixed binding set the engine fuzz target executes
// with: enough names/kinds to exercise param seeks, inline param props
// and numeric comparisons. Queries referencing other $params must error
// cleanly ("missing parameter"), never panic.
var fuzzArgs = map[string]any{
	"p":    "X",
	"plat": "windows",
	"frag": "1",
	"num":  1,
}

// FuzzEngineQuery asserts both engines return an error rather than
// crashing on any parse-accepted input. The byte budget (1 MiB) bounds
// enumeration — unbounded cross products abort with *BudgetError
// instead of hanging.
func FuzzEngineQuery(f *testing.F) {
	for _, q := range seedQueries {
		f.Add(q)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // parser rejected it; FuzzParse covers the no-panic side
		}
		if q.TxOp != TxNone {
			// Transaction control parses but must be rejected by the plain
			// entry points and handled (or cleanly refused) by a session.
			eng := NewEngine(fuzzStore(), Options{UseIndexes: true, MaxRows: 50, MaxBytes: 1 << 20})
			if _, err := eng.Query(src, fuzzArgs); err == nil {
				t.Fatalf("tx control %q executed through plain Query", src)
			}
			tx, err := eng.Begin()
			if err != nil {
				t.Fatalf("Begin: %v", err)
			}
			tx.Query(src, fuzzArgs) // COMMIT/ROLLBACK finish it; nested BEGIN errors
			if !tx.Done() {
				tx.Rollback()
			}
			return
		}
		writes := q.HasWrites()
		for _, legacy := range []bool{false, true} {
			s := fuzzStore()
			if writes {
				// Write statements mutate: give each engine its own store
				// so iterations stay independent.
				s = buildFuzzStore()
			}
			eng := NewEngine(s, Options{UseIndexes: true, MaxRows: 50, MaxBytes: 1 << 20, Legacy: legacy})
			res, err := eng.Query(src, fuzzArgs)
			if err == nil && res == nil {
				t.Fatalf("legacy=%v: nil result without error for %q", legacy, src)
			}
		}
	})
}
