package cypher

import (
	"fmt"
	"strings"

	"securitykg/internal/graph"
)

// This file scopes statement execution onto the store's MVCC layer
// (internal/graph/mvcc.go) and exposes explicit multi-statement
// transactions.
//
// Every statement executes against a consistent view taken when its
// cursor opens:
//
//   - A read statement pins a Snap; long streaming reads (and parallel
//     scans) never observe concurrent commits, and never block writers.
//   - A write statement opens an implicit graph.Tx: its reads see the
//     transaction's snapshot, its writes buffer in the transaction, and
//     the cursor's close commits (or, on any error, rolls back — the
//     whole statement is atomic, including its WAL group).
//   - Engine.Begin opens an explicit transaction: a scoped engine whose
//     statements all run against one graph.Tx until Commit/Rollback. A
//     failed statement aborts the transaction wholesale.
//
// BEGIN / COMMIT / ROLLBACK parse as TxOp statements and are routed by
// a session owner (Tx.Query, the HTTP tx-token handler); the plain
// Query entry points reject them with errTxControl.

// graphWriter is the mutation surface the write path (write.go) runs
// against: the bare *graph.Store on an unscoped engine, a *graph.Tx
// inside a statement or explicit-transaction scope. The Latest* reads
// deliberately bypass the pinned snapshot — a writer must act on (and
// bind) the latest state, including its own uncommitted writes.
type graphWriter interface {
	MergeNode(typ, name string, attrs map[string]string) (graph.NodeID, bool)
	AddEdge(from graph.NodeID, typ string, to graph.NodeID, attrs map[string]string) (graph.EdgeID, bool, error)
	SetAttr(id graph.NodeID, key, val string) error
	DeleteNode(id graph.NodeID) error
	DeleteEdge(id graph.EdgeID) error

	LatestNode(id graph.NodeID) *graph.Node
	LatestEdge(id graph.EdgeID) *graph.Edge
	LatestEdges(id graph.NodeID, dir graph.Direction) []*graph.Edge
	LatestFindNode(typ, name string) *graph.Node
}

var (
	_ graphWriter = (*graph.Store)(nil)
	_ graphWriter = (*graph.Tx)(nil)
)

// errTxControl is returned when BEGIN/COMMIT/ROLLBACK reaches a plain
// query entry point; transaction control belongs to a session.
var errTxControl = fmt.Errorf("cypher: BEGIN/COMMIT/ROLLBACK are transaction-control statements — run them through Engine.Begin / a transaction session, not Query")

// beginScope opens the execution scope for one statement and returns
// the engine the statement runs on plus a finish hook the caller must
// invoke exactly once with the statement's final error:
//
//   - pinned engine (explicit transaction): the statement runs on the
//     transaction's view as-is; finish reports an error to the
//     transaction's abort hook (poisoning it) but neither commits nor
//     releases anything.
//   - write statement: an implicit graph.Tx; finish(nil) commits,
//     finish(err) rolls back. When batch is set (UNWIND-driven batch
//     mutation, Plan.Batch), the transaction runs in store bulk mode:
//     per-mutation stats checks and adjacency compaction are deferred
//     to one sealing judgement at commit, so a batch of any size moves
//     StatsVersion at most once and lands as one WAL tx group.
//   - read statement: a pinned Snap; finish releases it.
func (e *Engine) beginScope(writes, batch bool) (*Engine, func(error) error, error) {
	if e.pinned {
		fail := e.failTx
		return e, func(err error) error {
			if err != nil && fail != nil {
				fail(err)
			}
			return err
		}, nil
	}
	if writes {
		gtx := e.store.BeginTx()
		if batch {
			gtx.SetBulk()
		}
		ex := *e
		ex.view, ex.w = gtx, gtx
		finish := func(err error) error {
			if err != nil {
				gtx.Rollback()
				return err
			}
			return gtx.Commit()
		}
		return &ex, finish, nil
	}
	snap := e.store.Snapshot()
	ex := *e
	ex.view = snap
	finish := func(err error) error {
		snap.Release()
		return err
	}
	return &ex, finish, nil
}

// Tx is an explicit multi-statement transaction over one engine: every
// statement run through it sees one consistent snapshot plus the
// transaction's own writes, and nothing is visible to other sessions
// (or the WAL) until Commit. A statement error aborts the transaction —
// its writes are rolled back immediately, subsequent statements fail,
// and only Rollback ends it cleanly.
type Tx struct {
	e    *Engine
	gtx  *graph.Tx
	done bool
	err  error // abort cause; non-nil after a failed statement
}

// Begin opens an explicit transaction. The engine itself stays usable
// for other (autocommit) statements; writes on them will block until
// this transaction commits or rolls back once it has written (the store
// is single-writer).
func (e *Engine) Begin() (*Tx, error) {
	if e.pinned {
		return nil, fmt.Errorf("cypher: nested BEGIN — a transaction is already open")
	}
	t := &Tx{gtx: e.store.BeginTx()}
	ex := *e
	ex.pinned = true
	ex.view, ex.w = t.gtx, t.gtx
	ex.failTx = t.abort
	t.e = &ex
	return t, nil
}

// abort poisons the transaction after a failed statement: its writes
// are rolled back now, and everything but Rollback errors from here on.
func (t *Tx) abort(err error) {
	if t.done || t.err != nil {
		return
	}
	t.err = err
	t.gtx.Rollback()
}

// state gates a new statement on the transaction still being live.
func (t *Tx) state() error {
	if t.done {
		return fmt.Errorf("cypher: transaction already finished")
	}
	if t.err != nil {
		return fmt.Errorf("cypher: transaction aborted by earlier error: %w — ROLLBACK to end it", t.err)
	}
	return nil
}

// Query executes one statement inside the transaction, materialized.
// COMMIT and ROLLBACK statements finish the transaction; BEGIN errors
// (no nesting).
func (t *Tx) Query(src string, args map[string]any) (*Result, error) {
	op, err := TxOpOf(src)
	if err != nil {
		return nil, err
	}
	switch op {
	case TxBegin:
		return nil, fmt.Errorf("cypher: nested BEGIN — a transaction is already open")
	case TxCommit:
		return &Result{}, t.Commit()
	case TxRollback:
		return &Result{}, t.Rollback()
	}
	if err := t.state(); err != nil {
		return nil, err
	}
	return t.e.Query(src, args)
}

// QueryRows executes one statement inside the transaction as a cursor.
// Transaction-control statements are handled like Query (returning an
// empty exhausted cursor).
func (t *Tx) QueryRows(src string, args map[string]any) (*Rows, error) {
	op, err := TxOpOf(src)
	if err != nil {
		return nil, err
	}
	switch op {
	case TxBegin:
		return nil, fmt.Errorf("cypher: nested BEGIN — a transaction is already open")
	case TxCommit:
		if err := t.Commit(); err != nil {
			return nil, err
		}
		return rowsFromResult(&Result{}), nil
	case TxRollback:
		if err := t.Rollback(); err != nil {
			return nil, err
		}
		return rowsFromResult(&Result{}), nil
	}
	if err := t.state(); err != nil {
		return nil, err
	}
	return t.e.QueryRows(src, args)
}

// Done reports whether the transaction has finished (committed or
// rolled back). An aborted transaction is not done until Rollback.
func (t *Tx) Done() bool { return t.done }

// Commit makes the transaction's writes visible and durable (the WAL
// group lands here). Committing an aborted transaction errors; the
// writes are already gone.
func (t *Tx) Commit() error {
	if err := t.state(); err != nil {
		return err
	}
	t.done = true
	return t.gtx.Commit()
}

// Rollback discards the transaction's writes. Safe (and the only clean
// end) after an abort; errors only if already finished.
func (t *Tx) Rollback() error {
	if t.done {
		return fmt.Errorf("cypher: transaction already finished")
	}
	t.done = true
	if t.err != nil {
		return nil // aborted: the store tx is already rolled back
	}
	return t.gtx.Rollback()
}

// TxOpOf classifies a statement as transaction control (BEGIN / COMMIT /
// ROLLBACK) without planning it, so session owners can route before
// execution. Statements whose first word is not a transaction keyword
// return TxNone with no parse; ones that are get fully parsed, so
// malformed control statements ("BEGIN MATCH ...") error here.
func TxOpOf(src string) (TxOp, error) {
	switch firstWord(src) {
	case "begin", "commit", "rollback":
		q, err := Parse(src)
		if err != nil {
			return TxNone, err
		}
		return q.TxOp, nil
	}
	return TxNone, nil
}

// firstWord returns the statement's leading identifier, lowercased.
func firstWord(src string) string {
	s := strings.TrimSpace(src)
	end := 0
	for end < len(s) {
		c := s[end]
		if (c < 'a' || c > 'z') && (c < 'A' || c > 'Z') {
			break
		}
		end++
	}
	return strings.ToLower(s[:end])
}
