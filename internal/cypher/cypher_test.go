package cypher

import (
	"fmt"
	"strings"
	"testing"

	"securitykg/internal/graph"
)

// buildDemoGraph assembles the small KG used across query tests: the
// WannaCry neighborhood plus a CozyDuke actor, mirroring the demo
// scenarios in Section 3 of the paper.
func buildDemoGraph(t *testing.T) *graph.Store {
	t.Helper()
	s := graph.New()
	add := func(typ, name string) graph.NodeID {
		id, _ := s.MergeNode(typ, name, nil)
		return id
	}
	edge := func(a graph.NodeID, rel string, b graph.NodeID) {
		if _, _, err := s.AddEdge(a, rel, b, nil); err != nil {
			t.Fatal(err)
		}
	}
	wc := add("Malware", "wannacry")
	fam := add("MalwareFamily", "ransomware")
	ip := add("IP", "10.1.2.3")
	dom := add("Domain", "kill.switch.com")
	cve := add("Vulnerability", "CVE-2017-0144")
	f1 := add("FileName", "tasksche.exe")
	cozy := add("ThreatActor", "cozyduke")
	t1 := add("Technique", "spearphishing")
	t2 := add("Technique", "credential dumping")
	apt29 := add("ThreatActor", "apt29")
	rep := add("MalwareReport", "report-001")
	vendor := add("CTIVendor", "AcmeSec")

	edge(wc, "BELONG_TO", fam)
	edge(wc, "CONNECT", ip)
	edge(wc, "CONNECT", dom)
	edge(wc, "EXPLOIT", cve)
	edge(wc, "DROP", f1)
	edge(cozy, "USE", t1)
	edge(cozy, "USE", t2)
	edge(apt29, "USE", t1)
	edge(apt29, "USE", t2)
	edge(rep, "DESCRIBES", wc)
	edge(rep, "REPORTED_BY", vendor)
	return s
}

func run(t *testing.T, s *graph.Store, q string) *Result {
	t.Helper()
	res, err := NewEngine(s, DefaultOptions()).Run(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func TestPaperDemoQuery(t *testing.T) {
	// The literal third demo scenario from the paper:
	// match(n) where n.name = "wannacry" return n
	s := buildDemoGraph(t)
	res := run(t, s, `match(n) where n.name = "wannacry" return n`)
	if len(res.Rows) != 1 {
		t.Fatalf("expected 1 row, got %d", len(res.Rows))
	}
	v := res.Rows[0][0]
	if v.Kind != KindNode || v.Node.Name != "wannacry" || v.Node.Type != "Malware" {
		t.Errorf("wrong node: %v", v)
	}
}

func TestMatchWithLabelAndInlineProps(t *testing.T) {
	s := buildDemoGraph(t)
	res := run(t, s, `match (m:Malware {name: "wannacry"}) return m.name`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "wannacry" {
		t.Fatalf("rows: %+v", res.Rows)
	}
	res = run(t, s, `match (m:Tool {name: "wannacry"}) return m`)
	if len(res.Rows) != 0 {
		t.Errorf("label mismatch should return no rows")
	}
}

func TestMatchDirectedEdge(t *testing.T) {
	s := buildDemoGraph(t)
	res := run(t, s, `match (m:Malware)-[:CONNECT]->(x) return x.name order by x.name`)
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 connect targets, got %+v", res.Rows)
	}
	if res.Rows[0][0].Str != "10.1.2.3" || res.Rows[1][0].Str != "kill.switch.com" {
		t.Errorf("targets: %+v", res.Rows)
	}
}

func TestMatchReverseDirection(t *testing.T) {
	s := buildDemoGraph(t)
	res := run(t, s, `match (x)<-[:CONNECT]-(m) return m.name, x.name order by x.name`)
	if len(res.Rows) != 2 {
		t.Fatalf("reverse arrow rows: %+v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[0].Str != "wannacry" {
			t.Errorf("source should be wannacry: %+v", r)
		}
	}
}

func TestMatchUndirectedEdge(t *testing.T) {
	s := buildDemoGraph(t)
	res := run(t, s, `match (a {name: "10.1.2.3"})-[r]-(b) return type(r), b.name`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "CONNECT" || res.Rows[0][1].Str != "wannacry" {
		t.Fatalf("undirected match: %+v", res.Rows)
	}
}

func TestMultiHopChain(t *testing.T) {
	s := buildDemoGraph(t)
	res := run(t, s, `match (r:MalwareReport)-[:DESCRIBES]->(m)-[:EXPLOIT]->(v) return r.name, m.name, v.name`)
	if len(res.Rows) != 1 {
		t.Fatalf("multi-hop rows: %+v", res.Rows)
	}
	row := res.Rows[0]
	if row[0].Str != "report-001" || row[1].Str != "wannacry" || row[2].Str != "CVE-2017-0144" {
		t.Errorf("chain wrong: %+v", row)
	}
}

func TestSharedTechniquesScenario(t *testing.T) {
	// The paper's CozyDuke scenario: find other actors using the same
	// techniques.
	s := buildDemoGraph(t)
	res := run(t, s, `match (a:ThreatActor {name: "cozyduke"})-[:USE]->(t)<-[:USE]-(other)
		where other.name <> "cozyduke"
		return distinct other.name`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "apt29" {
		t.Fatalf("shared-technique actors: %+v", res.Rows)
	}
}

func TestWhereOperators(t *testing.T) {
	s := buildDemoGraph(t)
	cases := []struct {
		q    string
		want int
	}{
		{`match (n) where n.name contains "duke" return n`, 1},
		{`match (n) where n.name starts with "CVE" return n`, 1},
		{`match (n) where n.name ends with ".exe" return n`, 1},
		{`match (n:ThreatActor) where not n.name = "apt29" return n`, 1},
		{`match (n:Technique) where n.name = "spearphishing" or n.name = "credential dumping" return n`, 2},
		{`match (n:Technique) where n.name = "spearphishing" and n.name = "credential dumping" return n`, 0},
		{`match (n) where n.name <> n.name return n`, 0},
	}
	for _, c := range cases {
		if got := len(run(t, s, c.q).Rows); got != c.want {
			t.Errorf("%s: got %d rows, want %d", c.q, got, c.want)
		}
	}
}

func TestCountAggregation(t *testing.T) {
	s := buildDemoGraph(t)
	res := run(t, s, `match (a:ThreatActor)-[:USE]->(t) return a.name, count(t) order by a.name`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups: %+v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].Num != 2 {
			t.Errorf("each actor uses 2 techniques: %+v", r)
		}
	}
	res = run(t, s, `match (n) return count(*)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Num != 12 {
		t.Errorf("count(*): %+v", res.Rows)
	}
}

func TestOrderLimitSkip(t *testing.T) {
	s := graph.New()
	for i := 0; i < 10; i++ {
		s.MergeNode("Malware", fmt.Sprintf("m%02d", i), nil)
	}
	res := run(t, s, `match (n) return n.name order by n.name desc limit 3`)
	if len(res.Rows) != 3 || res.Rows[0][0].Str != "m09" {
		t.Fatalf("order/limit: %+v", res.Rows)
	}
	res = run(t, s, `match (n) return n.name order by n.name skip 8`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "m08" {
		t.Fatalf("skip: %+v", res.Rows)
	}
}

func TestReturnAlias(t *testing.T) {
	s := buildDemoGraph(t)
	res := run(t, s, `match (n {name: "wannacry"}) return n.name as malware_name`)
	if res.Columns[0] != "malware_name" {
		t.Errorf("alias column: %+v", res.Columns)
	}
}

func TestFunctions(t *testing.T) {
	s := buildDemoGraph(t)
	res := run(t, s, `match (n {name: "wannacry"}) return labels(n), id(n), upper(n.name)`)
	if res.Rows[0][0].Str != "Malware" {
		t.Errorf("labels(): %+v", res.Rows[0])
	}
	if res.Rows[0][1].Kind != KindNumber {
		t.Errorf("id(): %+v", res.Rows[0])
	}
	if res.Rows[0][2].Str != "WANNACRY" {
		t.Errorf("upper(): %+v", res.Rows[0])
	}
}

func TestNodeAttrsAccessibleAsProps(t *testing.T) {
	s := graph.New()
	s.MergeNode("Malware", "x", map[string]string{"platform": "windows"})
	s.MergeNode("Malware", "y", map[string]string{"platform": "linux"})
	res := run(t, s, `match (n:Malware) where n.platform = "windows" return n.name`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "x" {
		t.Fatalf("attr filter: %+v", res.Rows)
	}
	// Missing attr evaluates to null and never equals.
	res = run(t, s, `match (n:Malware) where n.missing = "windows" return n`)
	if len(res.Rows) != 0 {
		t.Errorf("null attr matched: %+v", res.Rows)
	}
}

func TestCrossProductPatterns(t *testing.T) {
	s := buildDemoGraph(t)
	res := run(t, s, `match (a:Technique), (b:ThreatActor) return a.name, b.name`)
	if len(res.Rows) != 4 { // 2 techniques x 2 actors
		t.Fatalf("cross product: %d rows", len(res.Rows))
	}
}

func TestIndexAndScanAgree(t *testing.T) {
	s := graph.New()
	for i := 0; i < 200; i++ {
		s.MergeNode("Malware", fmt.Sprintf("m%d", i), nil)
	}
	s.MergeNode("Malware", "needle", nil)
	q := `match (n:Malware) where n.name = "needle" return n.name`
	idx, err := NewEngine(s, Options{UseIndexes: true, MaxRows: 0}).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := NewEngine(s, Options{UseIndexes: false, MaxRows: 0}).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Rows) != 1 || len(scan.Rows) != 1 {
		t.Fatalf("index=%d scan=%d rows, want 1/1", len(idx.Rows), len(scan.Rows))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`return 1`,
		`match (n) return`,
		`match (n where x return n`,
		`match (n) where n.name = return n`,
		`match (n)-[r->(m) return n`,
		`match (n) return n order by`,
		`match (n) return n limit -1`,
		`match (n) return n trailing`,
		`match (n) where n.name = "unterminated return n`,
	}
	s := graph.New()
	eng := NewEngine(s, DefaultOptions())
	for _, q := range bad {
		if _, err := eng.Run(q); err == nil {
			t.Errorf("query %q should fail to parse/run", q)
		}
	}
}

func TestOrderByNonReturnedExpression(t *testing.T) {
	s := graph.New()
	s.MergeNode("T", "b", map[string]string{"rank": "2"})
	s.MergeNode("T", "c", map[string]string{"rank": "1"})
	s.MergeNode("T", "a", map[string]string{"rank": "3"})
	// The sort key is not projected: it is evaluated against the match
	// binding as a hidden column and stripped after the sort.
	res := run(t, s, `match (n) return n.name order by n.rank`)
	if len(res.Rows) != 3 || len(res.Rows[0]) != 1 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	got := res.Rows[0][0].Str + res.Rows[1][0].Str + res.Rows[2][0].Str
	if got != "cba" {
		t.Errorf("hidden-key order: %q, want cba", got)
	}
	// Under DISTINCT or aggregation the binding is out of scope per
	// output row, so non-returned sort keys are rejected.
	for _, q := range []string{
		`match (n) return distinct n.name order by n.rank`,
		`match (n) return n.type, count(*) order by n.rank`,
	} {
		if _, err := NewEngine(s, DefaultOptions()).Run(q); err == nil || !strings.Contains(err.Error(), "ORDER BY") {
			t.Errorf("%s: expected ORDER BY error, got %v", q, err)
		}
	}
	// Legacy engine agrees on both semantics.
	lres, err := NewEngine(s, Options{UseIndexes: true, Legacy: true}).Run(`match (n) return n.name order by n.rank`)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(renderRows(res), renderRows(lres)) || lres.Rows[0][0].Str != "c" {
		t.Errorf("legacy hidden-key order: %+v", lres.Rows)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	s := buildDemoGraph(t)
	res := run(t, s, `MATCH (n) WHERE n.name = "wannacry" RETURN n LIMIT 5`)
	if len(res.Rows) != 1 {
		t.Errorf("uppercase keywords failed: %+v", res.Rows)
	}
}

func TestBoundVariableReusedAcrossPatterns(t *testing.T) {
	s := buildDemoGraph(t)
	// m is bound by the first pattern and constrained in the second.
	res := run(t, s, `match (m:Malware)-[:EXPLOIT]->(v), (m)-[:DROP]->(f) return m.name, v.name, f.name`)
	if len(res.Rows) != 1 {
		t.Fatalf("join on shared var: %+v", res.Rows)
	}
	if res.Rows[0][2].Str != "tasksche.exe" {
		t.Errorf("joined row wrong: %+v", res.Rows[0])
	}
}

func TestValueStringRendering(t *testing.T) {
	if got := NumberValue(3).String(); got != "3" {
		t.Errorf("int-like number: %q", got)
	}
	if got := NumberValue(3.5).String(); got != "3.5" {
		t.Errorf("float: %q", got)
	}
	if got := NullValue().String(); got != "null" {
		t.Errorf("null: %q", got)
	}
	n := &graph.Node{ID: 1, Type: "Malware", Name: "x"}
	if got := NodeValue(n).String(); !strings.Contains(got, "Malware") {
		t.Errorf("node: %q", got)
	}
}

func TestMaxRowsCap(t *testing.T) {
	s := graph.New()
	for i := 0; i < 50; i++ {
		s.MergeNode("T", fmt.Sprintf("n%d", i), nil)
	}
	res, err := NewEngine(s, Options{UseIndexes: true, MaxRows: 10}).Run(`match (n) return n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("MaxRows not enforced: %d", len(res.Rows))
	}
}
