package cypher

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"securitykg/internal/graph"
)

// This file locks down the PR-5 join strategies: hash joins for
// equality-linked chains, bidirectional counted expansion for long
// anonymous chains, and partitioned parallel scans. Every new plan shape
// is (a) asserted to actually appear in the plan — so the differential
// comparisons below exercise the new operators, not a silent fallback —
// and (b) pinned to the legacy tree-walking matcher's rows, errors and
// ordering.

// planHas reports whether any stage (recursively through optional and
// hash-join sub-pipelines) satisfies pred.
func planHas(pl *Plan, pred func(Stage) bool) bool {
	var walk func(st []Stage) bool
	walk = func(st []Stage) bool {
		for _, s := range st {
			if pred(s) {
				return true
			}
			switch is := s.(type) {
			case *OptionalStage:
				if walk(is.Inner) {
					return true
				}
			case *HashJoinStage:
				if walk(is.Build) {
					return true
				}
			}
		}
		return false
	}
	for _, seg := range pl.Segments {
		if walk(seg.Stages) {
			return true
		}
	}
	return false
}

func isHashJoin(s Stage) bool { _, ok := s.(*HashJoinStage); return ok }
func isBiExpand(s Stage) bool { _, ok := s.(*BiExpandStage); return ok }

// diffEngines runs q on both engines over the same store and fails on
// any divergence in error status or row multiset.
func diffEngines(t *testing.T, s *graph.Store, q string) {
	t.Helper()
	planned, err1 := NewEngine(s, Options{UseIndexes: true}).Run(q)
	legacy, err2 := NewEngine(s, Options{UseIndexes: true, Legacy: true}).Run(q)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("error mismatch for %q: planned=%v legacy=%v", q, err1, err2)
	}
	if err1 != nil {
		return
	}
	if !sameMultiset(renderRows(planned), renderRows(legacy)) {
		t.Fatalf("row mismatch for %q:\nplanned: %v\nlegacy:  %v", q, renderRows(planned), renderRows(legacy))
	}
}

// joinStore: two disjoint chains whose only link is name equality, with
// enough rows on both sides that the planner picks a hash join.
func joinStore() *graph.Store {
	s := graph.New()
	for i := 0; i < 120; i++ {
		a, _ := s.MergeNode("Src", fmt.Sprintf("k%d", i%60), map[string]string{"grp": fmt.Sprintf("g%d", i%5)})
		ax, _ := s.MergeNode("SrcX", fmt.Sprintf("x%d", i), nil)
		s.AddEdge(a, "FEEDS", ax, nil)
		b, _ := s.MergeNode("Dst", fmt.Sprintf("k%d", (i+30)%90), nil)
		bx, _ := s.MergeNode("DstX", fmt.Sprintf("y%d", i), nil)
		s.AddEdge(b, "FEEDS", bx, nil)
	}
	return s
}

func TestHashJoinPlanShapeAndDifferential(t *testing.T) {
	s := joinStore()
	queries := []string{
		// Plain cross-chain equality over two label scans.
		`match (a:Src), (b:Dst) where a.name = b.name return a.name, b.name`,
		// Chains (not just single nodes) on both sides.
		`match (a:Src)-[:FEEDS]->(x), (b:Dst)-[:FEEDS]->(y) where a.name = b.name return a.name, x.name, y.name`,
		// Expression keys (function of a property).
		`match (a:Src), (b:Dst) where upper(a.name) = upper(b.name) return a.name`,
		// Null keys on both sides: a.missing is null everywhere, so the
		// join must produce no rows (null never equals null).
		`match (a:Src), (b:Dst) where a.missing = b.missing return a.name, b.name`,
		// Composite key: two equality conjuncts across the same chains.
		`match (a:Src), (b:Dst) where a.name = b.name and a.grp = b.grp return a.name`,
		// Aggregation over the join.
		`match (a:Src), (b:Dst) where a.name = b.name return count(*)`,
		// Residual non-equality predicate rides along.
		`match (a:Src), (b:Dst) where a.name = b.name and a.name contains "1" return a.name, b.name`,
		// Three chains: the join cascades.
		`match (a:Src), (b:Dst), (c:SrcX) where a.name = b.name and c.name = a.name return a.name`,
	}
	hashJoins := 0
	for _, q := range queries {
		pl := plan(t, s, q)
		if planHas(pl, isHashJoin) {
			hashJoins++
		}
		diffEngines(t, s, q)
	}
	if hashJoins < 5 {
		t.Errorf("only %d/%d queries planned a hash join; the differential is not exercising the operator", hashJoins, len(queries))
	}
}

func TestHashJoinOrderingAndLimit(t *testing.T) {
	// With a total ORDER BY both engines must agree on exact ordered rows
	// through a hash-join plan, for every SKIP/LIMIT combination.
	s := joinStore()
	q := `match (a:Src), (b:Dst) where a.name = b.name return a.name, b.name order by a.name, b.name skip 3 limit 7`
	if !planHas(plan(t, s, q), isHashJoin) {
		t.Fatal("expected a hash-join plan")
	}
	planned, err := NewEngine(s, Options{UseIndexes: true}).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := NewEngine(s, Options{UseIndexes: true, Legacy: true}).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderRows(planned), renderRows(legacy)
	if len(a) != len(b) {
		t.Fatalf("row counts: planned=%d legacy=%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestHashJoinSharedVariable(t *testing.T) {
	// A chain reaching a shared variable from a selective far end: the
	// planner may hash on the shared node, and either way the rows must
	// match the legacy matcher.
	s := graph.New()
	hub, _ := s.MergeNode("Hub", "hub", nil)
	for i := 0; i < 200; i++ {
		ip, _ := s.MergeNode("IP", fmt.Sprintf("10.0.0.%d", i), nil)
		s.AddEdge(hub, "CONNECT", ip, nil)
		d, _ := s.MergeNode("Domain", fmt.Sprintf("d%d", i), nil)
		s.AddEdge(d, "RESOLVES", ip, nil)
	}
	for _, q := range []string{
		`match (h:Hub)-[:CONNECT]->(ip), (d:Domain)-[:RESOLVES]->(ip) return d.name, ip.name`,
		`match (h:Hub)-[:CONNECT]->(ip), (d:Domain {name: "d7"})-[:RESOLVES]->(ip) return ip.name`,
	} {
		diffEngines(t, s, q)
	}
}

// meshStore is a dense directed clique on n :H nodes — the walk-explosion
// regime where counted expansion beats path enumeration.
func meshStore(n int) *graph.Store {
	s := graph.New()
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i], _ = s.MergeNode("H", fmt.Sprintf("h%d", i), nil)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s.AddEdge(ids[i], "R", ids[j], nil)
			}
		}
	}
	return s
}

func TestBiExpandPlanShapeAndDifferential(t *testing.T) {
	s := meshStore(12)
	queries := []string{
		// Both endpoints pinned: walk counting end to end.
		`match (a:H {name: "h0"})-[:R]->()-[:R]->()-[:R]->()-[:R]->(b:H {name: "h1"}) return count(*)`,
		// Far endpoint free: multiplicity emission per distinct endpoint.
		`match (a:H {name: "h0"})-[:R]->()-[:R]->()-[:R]->(b) return b.name, count(*)`,
		// Cycle: the far endpoint is the (bound) start — meet in the middle.
		`match (a:H {name: "h3"})-[:R]->()-[:R]->()-[:R]->(a) return count(*)`,
		// Mixed directions inside the run.
		`match (a:H {name: "h2"})-[:R]->()<-[:R]-()-[:R]->(b:H {name: "h5"}) return count(*)`,
		// Labeled interior nodes still collapse (synthetic vars, user label).
		`match (a:H {name: "h0"})-[:R]->(:H)-[:R]->(:H)-[:R]->(b:H {name: "h4"}) return count(*)`,
	}
	biplans := 0
	for _, q := range queries {
		if planHas(plan(t, s, q), isBiExpand) {
			biplans++
		}
		diffEngines(t, s, q)
	}
	if biplans < 4 {
		t.Errorf("only %d/%d queries planned a BiExpand; the differential is not exercising the operator", biplans, len(queries))
	}
}

func TestBiExpandRandomizedDifferential(t *testing.T) {
	// Random dense graphs × random 3-5 hop anonymous chains. Fixed seed
	// range keeps failures reproducible.
	rels := []string{"R", "S"}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := graph.New()
		n := 8 + rng.Intn(6)
		ids := make([]graph.NodeID, n)
		for i := range ids {
			ids[i], _ = s.MergeNode("H", fmt.Sprintf("h%d", i), nil)
		}
		for i := 0; i < n*n; i++ {
			s.AddEdge(ids[rng.Intn(n)], rels[rng.Intn(2)], ids[rng.Intn(n)], nil)
		}
		hops := 3 + rng.Intn(3)
		var q strings.Builder
		fmt.Fprintf(&q, `match (a {name: "h%d"})`, rng.Intn(n))
		for h := 0; h < hops; h++ {
			arrow := []string{`-[:%s]->`, `<-[:%s]-`, `-[:%s]-`}[rng.Intn(3)]
			fmt.Fprintf(&q, arrow, rels[rng.Intn(2)])
			if h < hops-1 {
				q.WriteString("()")
			}
		}
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&q, `(b {name: "h%d"}) return count(*)`, rng.Intn(n))
		case 1:
			q.WriteString(`(b) return b.name, count(*)`)
		default:
			q.WriteString(`(a) return count(*)`) // cycle back to the start
		}
		diffEngines(t, s, q.String())
	}
}

func TestParallelScanDeterminismAndDifferential(t *testing.T) {
	s := graph.New()
	for i := 0; i < 3000; i++ {
		s.MergeNode("T", fmt.Sprintf("node-%04d", i), nil)
	}
	q := `match (n:T) where n.name contains "7" return n.name order by n.name`
	pl := plan(t, s, q)
	sc, ok := pl.Segments[0].Stages[0].(*ScanStage)
	if !ok || !sc.Parallel {
		t.Fatalf("expected a parallel label scan, got %+v", pl.Segments[0].Stages[0])
	}
	// Byte-stable: the partitioned scan must return exactly the sequential
	// engine's rows in exactly its order. Workers are forced to 4 so the
	// concurrent path runs (and races surface under -race) even on a
	// single-core machine where auto would resolve to 1.
	par, err := NewEngine(s, Options{UseIndexes: true, ScanWorkers: 4}).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewEngine(s, Options{UseIndexes: true, ScanWorkers: 1}).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderRows(par), renderRows(seq)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: parallel=%d sequential=%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %q vs %q", i, a[i], b[i])
		}
	}
	diffEngines(t, s, q)
	diffEngines(t, s, `match (n:T) return count(*)`)

	// Errors inside worker partitions surface deterministically and match
	// the legacy engine (aggregate call in WHERE errors at evaluation;
	// the ORDER BY keeps the scan on the partitioned path).
	qErr := `match (n:T) where count(n) > 0 return n.name order by n.name`
	_, err1 := NewEngine(s, Options{UseIndexes: true, ScanWorkers: 4}).Run(qErr)
	_, err2 := NewEngine(s, Options{UseIndexes: true, Legacy: true}).Run(qErr)
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("error mismatch: planned=%v legacy=%v", err1, err2)
	}
}

func TestParallelScanSkippedForStreamingPlans(t *testing.T) {
	s := graph.New()
	for i := 0; i < 3000; i++ {
		s.MergeNode("T", fmt.Sprintf("n%d", i), nil)
	}
	// Streaming plans stay sequential — with a LIMIT (the early cutoff
	// must keep its effect) and without one (time-to-first-row, cheap
	// cursor abandonment, stream-until-budget-trips all depend on it).
	pl := plan(t, s, `match (n:T) return n.name limit 5`)
	if sc := pl.Segments[0].Stages[0].(*ScanStage); sc.Parallel {
		t.Error("LIMIT-ed streaming scan must not be parallel")
	}
	pl = plan(t, s, `match (n:T) return n.name`)
	if sc := pl.Segments[0].Stages[0].(*ScanStage); sc.Parallel {
		t.Error("plain streaming scan must not be parallel")
	}
	// With ORDER BY the whole input is consumed anyway: parallel is fine.
	pl = plan(t, s, `match (n:T) return n.name order by n.name limit 5`)
	if sc := pl.Segments[0].Stages[0].(*ScanStage); !sc.Parallel {
		t.Error("ORDER BY + LIMIT consumes the full scan; expected parallel")
	}
	// An aggregating WITH bridge is a barrier: the final LIMIT can never
	// cut the scan short, so the scan must still be parallelized.
	pl = plan(t, s, `match (n:T) with n.name as g, count(*) as c return g, c limit 3`)
	if sc := pl.Segments[0].Stages[0].(*ScanStage); !sc.Parallel {
		t.Error("aggregating WITH consumes the full scan; expected parallel despite the final LIMIT")
	}
	// A write stage is an eager barrier too.
	pl = plan(t, s, `match (n:T) set n.seen = "1" return n.name limit 3`)
	if sc := pl.Segments[0].Stages[0].(*ScanStage); !sc.Parallel {
		t.Error("mutation barrier consumes the full scan; expected parallel despite the LIMIT")
	}
}

func TestParallelScanBudgetParity(t *testing.T) {
	// The partitioned scan retains only accepted IDs — strictly smaller
	// than the candidate list every scan already holds — so a budget the
	// sequential scan satisfies must never fail just because the planner
	// parallelized, and a budget neither fits under must fail for both.
	s := graph.New()
	for i := 0; i < 3000; i++ {
		s.MergeNode("T", fmt.Sprintf("node-%04d", i), map[string]string{"k": "vvvvvvvv"})
	}
	q := `match (n:T) return count(*)`
	// 256KiB > 3000 × aggRowCost: both succeed with the same count.
	for _, workers := range []int{1, 4} {
		res, err := NewEngine(s, Options{UseIndexes: true, ScanWorkers: workers, MaxBytes: 256 << 10}).Run(q)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Rows[0][0].Num != 3000 {
			t.Fatalf("workers=%d: count = %v, want 3000", workers, res.Rows[0][0].Num)
		}
	}
	// 32KiB < the aggregate's enumeration charge: both fail, typed.
	for _, workers := range []int{1, 4} {
		_, err := NewEngine(s, Options{UseIndexes: true, ScanWorkers: workers, MaxBytes: 32 << 10}).Run(q)
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("workers=%d: want *BudgetError, got %v", workers, err)
		}
	}
}

func TestHashJoinPushesChainLocalFilterIntoBuild(t *testing.T) {
	// A conjunct referencing only the build chain's variables must run
	// inside the build sub-pipeline, so the hash table holds filtered
	// rows instead of every chain row.
	s := joinStore()
	q := `match (a:Src), (b:Dst) where a.name = b.name and b.name contains "3" return a.name`
	pl := plan(t, s, q)
	var hj *HashJoinStage
	for _, st := range pl.Segments[0].Stages {
		if j, ok := st.(*HashJoinStage); ok {
			hj = j
		}
	}
	if hj == nil {
		t.Fatalf("expected a hash join:\n%s", pl.String())
	}
	found := false
	for _, st := range hj.Build {
		for _, f := range st.filters() {
			if exprString(f) == `b.name contains "3"` {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("chain-local filter not pushed into the build side:\n%s", pl.String())
	}
	diffEngines(t, s, q)
}

func TestHashJoinBuildVarsExcludeSynthetic(t *testing.T) {
	// Anonymous nodes/edges in the build chain get synthetic "$" names no
	// expression can reference: the hash table must not store (or
	// budget-charge) their values, while row multiplicity via duplicate
	// bucket entries is preserved — checked by the differential.
	s := joinStore()
	q := `match (a:Src)-[]->(), (b:Dst)-[]->() where a.name = b.name return a.name, b.name`
	pl := plan(t, s, q)
	var hj *HashJoinStage
	for _, st := range pl.Segments[0].Stages {
		if j, ok := st.(*HashJoinStage); ok {
			hj = j
		}
	}
	if hj == nil {
		t.Fatalf("expected a hash join:\n%s", pl.String())
	}
	for _, v := range hj.BuildVars {
		if strings.HasPrefix(v, "$") {
			t.Errorf("synthetic variable %q retained in the hash table", v)
		}
	}
	diffEngines(t, s, q)
}

func TestChooseJoinDecision(t *testing.T) {
	cases := []struct {
		name                                                 string
		inputRows, chainRows, chainWork, nestedWork, outRows float64
		want                                                 joinMode
	}{
		// 300×300 cartesian with an equality key: classic hash-join win.
		{"cartesian-win", 300, 300, 300, 90000, 300, joinHashChain},
		// Tiny probe side whose nested plan is anchored (cheap per row):
		// building a table saves nothing.
		{"tiny-probe", 2, 300, 300, 420, 2, joinNested},
		// Input side smaller than the chain: hash the input.
		{"input-cheaper", 50, 5000, 5000, 250000, 50, joinHashInput},
		// Both sides huge: the histogram says the build side cannot fit.
		{"build-too-big", 1 << 20, 1 << 20, 1 << 20, math.Inf(1), 1 << 20, joinNested},
		// Nested work comparable to hash work: stay pipelined.
		{"comparable", 500, 500, 501, 251000, 250000, joinNested},
	}
	for _, c := range cases {
		if got := chooseJoin(c.inputRows, c.chainRows, c.chainWork, c.nestedWork, c.outRows); got != c.want {
			t.Errorf("%s: chooseJoin = %v, want %v", c.name, got, c.want)
		}
	}
}
