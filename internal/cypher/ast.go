package cypher

// Query is the parsed form of a supported Cypher statement: a chain of
// WITH-delimited parts, the last of which carries the RETURN projection.
type Query struct {
	Explain bool        // EXPLAIN prefix: render the plan instead of running it
	Analyze bool        // EXPLAIN ANALYZE: execute fully, render the profiled plan
	Parts   []QueryPart // WITH-chained segments; the final one is the RETURN
	// Params lists the $parameter names the statement references (sorted,
	// deduplicated). Every listed name must be bound at execution time.
	Params []string
	// TxOp marks a transaction-control statement (BEGIN / COMMIT /
	// ROLLBACK, each with an optional TRANSACTION keyword). Such a
	// statement has no parts; it is routed by a transaction session
	// (Engine.Begin / the HTTP tx token), never planned or executed.
	TxOp TxOp
}

// TxOp classifies a transaction-control statement.
type TxOp int

const (
	TxNone     TxOp = iota // a regular query
	TxBegin                // BEGIN [TRANSACTION]
	TxCommit               // COMMIT [TRANSACTION]
	TxRollback             // ROLLBACK [TRANSACTION]
)

// QueryPart is one pipeline segment: its reading clauses (MATCH /
// OPTIONAL MATCH), then its writing clauses (CREATE / MERGE, SET,
// DELETE — applied in that order, once per matched row, after the reads
// fully materialize so writes can never feed their own match), followed
// by a projection (WITH for intermediate parts, RETURN for the final
// one — RETURN is optional when the final part writes). ORDER BY /
// SKIP / LIMIT are only accepted on the final part; Where is the
// post-WITH filter on projected values.
type QueryPart struct {
	Unwind   *UnwindClause // UNWIND <expr> AS <var>, before the part's matches
	Matches  []MatchClause
	Creates  []CreateClause
	Sets     []SetItem
	Delete   *DeleteClause
	Distinct bool
	Items    []ReturnItem
	Where    Expr // WITH ... WHERE <expr>: filters projected rows (nil on the final part)
	OrderBy  []OrderKey
	Limit    int // -1 when absent
	Skip     int // 0 when absent
}

// UnwindClause is "UNWIND <expr> AS <alias>": the expression (typically a
// $parameter holding a batch of row maps) is evaluated once per incoming
// row and each list element is bound to Alias in turn. Null unwinds to
// zero rows; a non-list value unwinds to itself (one row).
type UnwindClause struct {
	Expr  Expr
	Alias string
}

// HasWrites reports whether the part carries any writing clause.
func (p *QueryPart) HasWrites() bool {
	return len(p.Creates) > 0 || len(p.Sets) > 0 || p.Delete != nil
}

// CreateClause is one CREATE or MERGE clause. Both map onto the store's
// exact-(type, name) merge semantics — the paper's storage-time merge
// rule means a "create" of an already-present node augments it instead
// of duplicating — so the two clauses differ only in intent; created
// counts reflect what actually came into existence.
type CreateClause struct {
	Merge    bool
	Patterns []Pattern
}

// SetItem is one "SET var.prop = expr" assignment, applied per row.
type SetItem struct {
	Var  string
	Prop string
	Val  Expr
}

// DeleteClause is "DELETE var, ..." or "DETACH DELETE var, ...". Plain
// DELETE refuses nodes that still have relationships; DETACH removes
// them along with the node. Null bindings (from OPTIONAL MATCH) are
// skipped, as are entities already deleted by an earlier row.
type DeleteClause struct {
	Detach bool
	Vars   []string
}

// HasWrites reports whether any part of the query mutates the graph.
func (q *Query) HasWrites() bool {
	for i := range q.Parts {
		if q.Parts[i].HasWrites() {
			return true
		}
	}
	return false
}

// MatchClause is one MATCH or OPTIONAL MATCH with its own WHERE. An
// optional clause null-pads the variables it fails to bind instead of
// dropping the row.
type MatchClause struct {
	Optional bool
	Patterns []Pattern // comma-separated patterns
	Where    Expr      // nil when absent
}

// Pattern is one linear node-edge-node-... chain.
type Pattern struct {
	Nodes []NodePattern
	Edges []EdgePattern // len(Edges) == len(Nodes)-1
}

// NodePattern is "(var:Label {prop: value, ...})"; all parts optional.
// Property values are literals (Props), $parameters resolved at bind
// time (ParamProps, keyed by property name, valued by parameter name),
// or — inside CREATE / MERGE patterns only — arbitrary expressions over
// the row's bindings (ExprProps, e.g. "{name: row.name}").
type NodePattern struct {
	Var        string
	Label      string
	Props      map[string]Value
	ParamProps map[string]string
	ExprProps  map[string]Expr
}

// EdgeDir is the direction of an edge pattern.
type EdgeDir int

const (
	DirRight EdgeDir = iota // -[]->
	DirLeft                 // <-[]-
	DirAny                  // -[]-
)

// EdgePattern is "-[var:TYPE]->" and friends. A variable-length pattern
// "-[:TYPE*m..n]->" sets VarLen plus MinHops/MaxHops; plain single-hop
// patterns have both at 1 with VarLen false. MaxHops < 0 means unbounded
// ("*m.."). Variable-length patterns cannot bind an edge variable.
// Props/ParamProps are edge attributes, accepted only inside CREATE /
// MERGE patterns (the parser rejects them in reading clauses).
type EdgePattern struct {
	Var        string
	Type       string
	Dir        EdgeDir
	VarLen     bool // any "*" range, including "*1": reachability semantics
	MinHops    int  // 1 for plain edges
	MaxHops    int  // 1 for plain edges; -1 = unbounded
	Props      map[string]Value
	ParamProps map[string]string
	ExprProps  map[string]Expr
}

// VarLength reports whether the pattern uses variable-length (BFS
// reachability) semantics. "*1" is var-length even though it spans
// exactly one hop: it binds each distinct neighbor once, where a plain
// edge binds once per connecting edge.
func (ep EdgePattern) VarLength() bool { return ep.VarLen }

// ReturnItem is one projection: an expression plus an optional alias.
type ReturnItem struct {
	Expr  Expr
	Alias string
}

// OrderKey orders results by a returned column (matched by alias/text) or,
// for non-aggregate non-DISTINCT queries, by any expression evaluable
// against the match bindings.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Expr is an evaluable expression node.
type Expr interface{ exprNode() }

// VarExpr references a pattern variable (node or edge binding).
type VarExpr struct{ Name string }

// PropExpr references a property of a bound variable: v.prop.
type PropExpr struct {
	Var  string
	Prop string
}

// LitExpr is a literal value.
type LitExpr struct{ Val Value }

// ListExpr is a list literal: [e1, e2, ...]. Primarily the inline form
// of an UNWIND input; usable anywhere an expression is.
type ListExpr struct{ Elems []Expr }

// ParamExpr references a $parameter supplied at bind time. The same
// parsed query (and its cached plan) serves every binding, which is why
// parameterized statements hit the plan cache where literal-substituted
// query strings miss.
type ParamExpr struct{ Name string }

// CmpExpr compares two sub-expressions.
type CmpExpr struct {
	Op    string // "=", "<>", "<", ">", "<=", ">=", "contains", "starts", "ends", "in"
	Left  Expr
	Right Expr
}

// BoolExpr combines expressions with and/or.
type BoolExpr struct {
	Op    string // "and" | "or"
	Left  Expr
	Right Expr
}

// NotExpr negates an expression.
type NotExpr struct{ Inner Expr }

// FuncExpr is a function call: count(*), count(x), min(x), max(x),
// sum(x), collect(x), type(r), id(n), labels(n), lower(x), upper(x).
type FuncExpr struct {
	Name string
	Arg  Expr // nil for count(*)
	Star bool
}

func (VarExpr) exprNode()   {}
func (PropExpr) exprNode()  {}
func (LitExpr) exprNode()   {}
func (ParamExpr) exprNode() {}
func (CmpExpr) exprNode()   {}
func (BoolExpr) exprNode()  {}
func (NotExpr) exprNode()   {}
func (FuncExpr) exprNode()  {}
func (ListExpr) exprNode()  {}
