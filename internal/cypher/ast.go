package cypher

// Query is the parsed form of a supported Cypher statement.
type Query struct {
	Explain  bool      // EXPLAIN prefix: render the plan instead of running it
	Patterns []Pattern // comma-separated MATCH patterns
	Where    Expr      // nil when absent
	Distinct bool
	Returns  []ReturnItem
	OrderBy  []OrderKey
	Limit    int // -1 when absent
	Skip     int // 0 when absent
}

// Pattern is one linear node-edge-node-... chain.
type Pattern struct {
	Nodes []NodePattern
	Edges []EdgePattern // len(Edges) == len(Nodes)-1
}

// NodePattern is "(var:Label {prop: value, ...})"; all parts optional.
type NodePattern struct {
	Var   string
	Label string
	Props map[string]Value
}

// EdgeDir is the direction of an edge pattern.
type EdgeDir int

const (
	DirRight EdgeDir = iota // -[]->
	DirLeft                 // <-[]-
	DirAny                  // -[]-
)

// EdgePattern is "-[var:TYPE]->" and friends.
type EdgePattern struct {
	Var  string
	Type string
	Dir  EdgeDir
}

// ReturnItem is one projection: an expression plus an optional alias.
type ReturnItem struct {
	Expr  Expr
	Alias string
}

// OrderKey orders results by a returned column (by alias/text) or
// expression.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Expr is an evaluable expression node.
type Expr interface{ exprNode() }

// VarExpr references a pattern variable (node or edge binding).
type VarExpr struct{ Name string }

// PropExpr references a property of a bound variable: v.prop.
type PropExpr struct {
	Var  string
	Prop string
}

// LitExpr is a literal value.
type LitExpr struct{ Val Value }

// CmpExpr compares two sub-expressions.
type CmpExpr struct {
	Op    string // "=", "<>", "<", ">", "<=", ">=", "contains", "starts", "ends", "in"
	Left  Expr
	Right Expr
}

// BoolExpr combines expressions with and/or.
type BoolExpr struct {
	Op    string // "and" | "or"
	Left  Expr
	Right Expr
}

// NotExpr negates an expression.
type NotExpr struct{ Inner Expr }

// FuncExpr is a function call: count(*), count(x), type(r), id(n),
// labels(n), lower(x), upper(x).
type FuncExpr struct {
	Name string
	Arg  Expr // nil for count(*)
	Star bool
}

func (VarExpr) exprNode()  {}
func (PropExpr) exprNode() {}
func (LitExpr) exprNode()  {}
func (CmpExpr) exprNode()  {}
func (BoolExpr) exprNode() {}
func (NotExpr) exprNode()  {}
func (FuncExpr) exprNode() {}
