package cypher

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"securitykg/internal/graph"
)

// Tests for statement atomicity and explicit transactions (tx.go): the
// documented mid-statement rollback bug, WAL grouping, snapshot-pinned
// cursors, and the Tx session lifecycle.

// TestStatementAtomicityRollback is the regression for the documented
// non-atomicity bug: a plain DELETE that matches several rows and
// errors on a later one (connected node without DETACH) must undo the
// earlier rows' deletes — and nothing may reach the WAL hook.
func TestStatementAtomicityRollback(t *testing.T) {
	for _, name := range []string{"planned", "legacy"} {
		legacy := name == "legacy"
		t.Run(name, func(t *testing.T) {
			s := graph.New()
			// Lower-ID isolated tools delete fine on rows 1-2; the
			// connected one errors on row 3.
			s.MergeNode("Tool", "iso1", nil)
			s.MergeNode("Tool", "iso2", nil)
			conn, _ := s.MergeNode("Tool", "conn", nil)
			ip, _ := s.MergeNode("IP", "10.0.0.1", nil)
			s.AddEdge(conn, "USE", ip, nil)
			before := storeBytes(t, s)

			var logged []graph.MutationOp
			s.SetMutationHook(func(m graph.Mutation) { logged = append(logged, m.Op) })
			e := NewEngine(s, Options{UseIndexes: true, MaxBytes: 16 << 20, Legacy: legacy})
			_, err := e.Query(`match (t:Tool) delete t`, nil)
			s.SetMutationHook(nil)
			if err == nil || !strings.Contains(err.Error(), "DETACH") {
				t.Fatalf("want DETACH error, got %v", err)
			}
			if len(logged) != 0 {
				t.Fatalf("failed statement leaked %d mutations to the WAL hook: %v", len(logged), logged)
			}
			if got := storeBytes(t, s); !bytes.Equal(got, before) {
				t.Fatalf("failed statement left the store changed: earlier rows' deletes were not rolled back")
			}
			for _, n := range []string{"iso1", "iso2", "conn"} {
				if s.FindNode("Tool", n) == nil {
					t.Fatalf("node %q missing after rolled-back statement", n)
				}
			}
		})
	}
}

// TestStatementWALGroup pins the WAL grouping contract: a statement
// with several mutations logs them wrapped in tx_begin/tx_commit; a
// single-mutation statement logs one bare record (byte-compatible with
// pre-transaction logs); a read logs nothing.
func TestStatementWALGroup(t *testing.T) {
	s := graph.New()
	e := NewEngine(s, Options{UseIndexes: true, MaxBytes: 16 << 20})
	var logged []graph.MutationOp
	s.SetMutationHook(func(m graph.Mutation) { logged = append(logged, m.Op) })
	defer s.SetMutationHook(nil)

	mustQuery(t, e, `create (a:Tool {name: "x"})-[:USE]->(b:Tool {name: "y"})`)
	want := []graph.MutationOp{graph.OpTxBegin, graph.OpMergeNode, graph.OpMergeNode, graph.OpAddEdge, graph.OpTxCommit}
	if len(logged) != len(want) {
		t.Fatalf("multi-mutation statement logged %v, want %v", logged, want)
	}
	for i := range want {
		if logged[i] != want[i] {
			t.Fatalf("multi-mutation statement logged %v, want %v", logged, want)
		}
	}

	logged = nil
	mustQuery(t, e, `create (c:Tool {name: "z"})`)
	if len(logged) != 1 || logged[0] != graph.OpMergeNode {
		t.Fatalf("single-mutation statement logged %v, want one bare merge_node", logged)
	}

	logged = nil
	mustQuery(t, e, `match (t:Tool) return count(t)`)
	if len(logged) != 0 {
		t.Fatalf("read statement logged %v", logged)
	}
}

func mustQuery(t *testing.T, e *Engine, src string) *Result {
	t.Helper()
	res, err := e.Query(src, nil)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return res
}

func mustTxQuery(t *testing.T, tx *Tx, src string) *Result {
	t.Helper()
	res, err := tx.Query(src, nil)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return res
}

func countOf(t *testing.T, res *Result) string {
	t.Helper()
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("want one count row, got %v", res.Rows)
	}
	return res.Rows[0][0].String()
}

// TestCursorPinsSnapshot: a streaming cursor opened before a write
// reads the store as of its open, not as of each Next call.
func TestCursorPinsSnapshot(t *testing.T) {
	s := graph.New()
	s.MergeNode("Tool", "a", nil)
	s.MergeNode("Tool", "b", nil)
	e := NewEngine(s, Options{UseIndexes: true, MaxBytes: 16 << 20})

	rows, err := e.QueryRows(`match (t:Tool) return t.name order by t.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	// Mutate between Next calls: the open cursor must not see it.
	s.MergeNode("Tool", "c", nil)
	s.DeleteNode(s.FindNode("Tool", "b").ID)
	got := []string{rows.Row()[0].String()}
	for rows.Next() {
		got = append(got, rows.Row()[0].String())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("cursor saw %v; want the snapshot [a b]", got)
	}
	// A fresh query sees the post-mutation state.
	res := mustQuery(t, e, `match (t:Tool) return count(t)`)
	if countOf(t, res) != "2" {
		t.Fatalf("fresh query count = %s, want 2 (a, c)", countOf(t, res))
	}
}

// TestTxLifecycle: own-writes visibility inside the transaction,
// invisibility outside until commit, rollback discarding everything,
// and WAL silence until the commit group.
func TestTxLifecycle(t *testing.T) {
	s := graph.New()
	s.MergeNode("Tool", "base", nil)
	e := NewEngine(s, Options{UseIndexes: true, MaxBytes: 16 << 20})
	var logged []graph.MutationOp
	s.SetMutationHook(func(m graph.Mutation) { logged = append(logged, m.Op) })
	defer s.SetMutationHook(nil)

	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	mustTxQuery(t, tx, `create (x:Tool {name: "mine"})`)
	mustTxQuery(t, tx, `match (t:Tool {name: "mine"}) set t.score = 9`)
	if len(logged) != 0 {
		t.Fatalf("uncommitted transaction reached the WAL hook: %v", logged)
	}
	// Own writes visible inside...
	res := mustTxQuery(t, tx, `match (t:Tool) return count(t)`)
	if countOf(t, res) != "2" {
		t.Fatalf("tx sees count %s, want 2", countOf(t, res))
	}
	// ...invisible outside: the write sits in latest state under the
	// writer lock, but a plain engine query runs on a snapshot and must
	// not see it.
	outside := mustQuery(t, e, `match (t:Tool) return count(t)`)
	if countOf(t, outside) != "1" {
		t.Fatalf("concurrent reader sees count %s before commit, want 1", countOf(t, outside))
	}

	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !tx.Done() {
		t.Fatal("committed tx not Done")
	}
	if len(logged) == 0 || logged[0] != graph.OpTxBegin || logged[len(logged)-1] != graph.OpTxCommit {
		t.Fatalf("commit logged %v, want a tx_begin..tx_commit group", logged)
	}
	after := mustQuery(t, e, `match (t:Tool) return count(t)`)
	if countOf(t, after) != "2" {
		t.Fatalf("post-commit count %s, want 2", countOf(t, after))
	}

	// Rollback path: nothing survives, nothing is logged.
	logged = nil
	tx2, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	mustTxQuery(t, tx2, `create (x:Tool {name: "gone"})`)
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(logged) != 0 {
		t.Fatalf("rolled-back transaction logged %v", logged)
	}
	if s.FindNode("Tool", "gone") != nil {
		t.Fatal("rolled-back node survived")
	}
}

// TestTxAbortOnError: a failed statement aborts the transaction — its
// writes are undone immediately, later statements and Commit error, and
// only Rollback ends it cleanly.
func TestTxAbortOnError(t *testing.T) {
	s := graph.New()
	conn, _ := s.MergeNode("Tool", "conn", nil)
	ip, _ := s.MergeNode("IP", "10.0.0.1", nil)
	s.AddEdge(conn, "USE", ip, nil)
	e := NewEngine(s, Options{UseIndexes: true, MaxBytes: 16 << 20})

	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	mustTxQuery(t, tx, `create (x:Tool {name: "pre"})`)
	if _, err := tx.Query(`match (t:Tool {name: "conn"}) delete t`, nil); err == nil {
		t.Fatal("connected DELETE inside tx did not error")
	}
	if _, err := tx.Query(`match (t:Tool) return count(t)`, nil); err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("statement after abort: want aborted error, got %v", err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("Commit after abort succeeded")
	}
	if tx.Done() {
		t.Fatal("aborted tx reports Done before Rollback")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("Rollback after abort: %v", err)
	}
	if !tx.Done() {
		t.Fatal("rolled-back tx not Done")
	}
	if s.FindNode("Tool", "pre") != nil {
		t.Fatal("write from before the failed statement survived the abort")
	}
	// The engine is fully usable afterwards.
	mustQuery(t, e, `match (t:Tool) return count(t)`)
}

// TestTxControlRouting: BEGIN/COMMIT/ROLLBACK parse, route through
// sessions only, and are rejected by every plain entry point.
func TestTxControlRouting(t *testing.T) {
	s := graph.New()
	e := NewEngine(s, Options{UseIndexes: true, MaxBytes: 16 << 20})

	for _, src := range []string{"BEGIN", "begin transaction", "COMMIT", "rollback TRANSACTION"} {
		if _, err := e.Query(src, nil); err == nil || !strings.Contains(err.Error(), "transaction") {
			t.Fatalf("Query(%q): want tx-control rejection, got %v", src, err)
		}
		if _, err := e.QueryRows(src, nil); err == nil {
			t.Fatalf("QueryRows(%q): want tx-control rejection", src)
		}
		if _, err := e.Prepare(src); err == nil {
			t.Fatalf("Prepare(%q): want tx-control rejection", src)
		}
	}
	if _, err := Parse("BEGIN MATCH (n) RETURN n"); err == nil {
		t.Fatal("BEGIN with trailing clauses parsed")
	}
	if _, err := Parse("EXPLAIN BEGIN"); err == nil {
		t.Fatal("EXPLAIN of a tx-control statement parsed")
	}

	// TxOpOf classifies without planning and only parses tx keywords.
	for src, want := range map[string]TxOp{
		"BEGIN":                             TxBegin,
		"  commit transaction":              TxCommit,
		"Rollback":                          TxRollback,
		"match (n) return n":                TxNone,
		"create (n:T {name: \"beginner\"})": TxNone,
	} {
		op, err := TxOpOf(src)
		if err != nil {
			t.Fatalf("TxOpOf(%q): %v", src, err)
		}
		if op != want {
			t.Fatalf("TxOpOf(%q) = %v, want %v", src, op, want)
		}
	}
	if _, err := TxOpOf("BEGIN MATCH (n) RETURN n"); err == nil {
		t.Fatal("TxOpOf accepted a malformed BEGIN")
	}

	// Inside a session: control statements route, nesting errors.
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Query("BEGIN", nil); err == nil {
		t.Fatal("nested BEGIN accepted")
	}
	if _, err := e.Begin(); err != nil {
		// Begin on the base engine is fine — it is not pinned. Only the
		// scoped engine inside tx rejects nesting; exercise that via the
		// session API instead.
		t.Fatalf("independent Begin on base engine: %v", err)
	}
	mustTxQuery(t, tx, `create (x:Tool {name: "a"})`)
	if _, err := tx.Query("COMMIT", nil); err != nil {
		t.Fatalf("COMMIT via statement: %v", err)
	}
	if !tx.Done() {
		t.Fatal("COMMIT statement did not finish the tx")
	}
	if _, err := tx.Query(`match (n) return n`, nil); err == nil {
		t.Fatal("statement on finished tx accepted")
	}
	if s.FindNode("Tool", "a") == nil {
		t.Fatal("COMMIT statement did not publish the write")
	}

	tx2, _ := e.Begin()
	mustTxQuery(t, tx2, `create (x:Tool {name: "b"})`)
	if _, err := tx2.Query("ROLLBACK", nil); err != nil {
		t.Fatalf("ROLLBACK via statement: %v", err)
	}
	if s.FindNode("Tool", "b") != nil {
		t.Fatal("ROLLBACK statement kept the write")
	}
}

// TestTxSnapshotIsolation: a transaction's reads stay pinned at Begin
// even as autocommit writers land concurrently (from the transaction's
// point of view), and the writers' changes appear only to queries run
// after the transaction ends.
func TestTxSnapshotIsolation(t *testing.T) {
	s := graph.New()
	s.MergeNode("Tool", "a", nil)
	e := NewEngine(s, Options{UseIndexes: true, MaxBytes: 16 << 20})

	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	res := mustTxQuery(t, tx, `match (t:Tool) return count(t)`)
	if countOf(t, res) != "1" {
		t.Fatalf("tx baseline count %s", countOf(t, res))
	}
	// A bare store write commits while the transaction is open (the
	// read-only transaction holds no writer lock).
	s.MergeNode("Tool", "b", nil)
	res = mustTxQuery(t, tx, `match (t:Tool) return count(t)`)
	if countOf(t, res) != "1" {
		t.Fatalf("non-repeatable read: tx count became %s after a concurrent commit", countOf(t, res))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res = mustQuery(t, e, `match (t:Tool) return count(t)`)
	if countOf(t, res) != "2" {
		t.Fatalf("post-tx count %s, want 2", countOf(t, res))
	}
}

// TestTxDifferentialAutoCommit: with no concurrent sessions, a write
// sequence executed inside one explicit transaction must land the store
// in exactly the state the same sequence produces as autocommit
// statements — byte-identical snapshots (same IDs, attrs, edges) — and
// must leave no MVCC history behind once committed.
func TestTxDifferentialAutoCommit(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			stmts := genWriteStmts(rand.New(rand.NewSource(int64(seed))))

			auto := graph.New()
			autoEng := NewEngine(auto, Options{UseIndexes: true, MaxBytes: 16 << 20})
			for _, src := range stmts {
				if _, err := autoEng.Query(src, nil); err != nil {
					t.Fatalf("autocommit %s: %v", src, err)
				}
			}

			wrapped := graph.New()
			wrapEng := NewEngine(wrapped, Options{UseIndexes: true, MaxBytes: 16 << 20})
			tx, err := wrapEng.Begin()
			if err != nil {
				t.Fatal(err)
			}
			for _, src := range stmts {
				if _, err := tx.Query(src, nil); err != nil {
					t.Fatalf("tx %s: %v", src, err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("commit: %v", err)
			}

			if a, w := storeBytes(t, auto), storeBytes(t, wrapped); !bytes.Equal(a, w) {
				t.Fatalf("tx-wrapped sequence diverged from autocommit (%d statements)", len(stmts))
			}
			if wrapped.MVCCStats() != (graph.MVCCStats{}) {
				t.Fatalf("history not purged after commit: %+v", wrapped.MVCCStats())
			}
		})
	}
}

// genWriteStmts draws a random write workload over a small key space:
// merges, attribute sets, edge creates through matches, detach deletes.
func genWriteStmts(rng *rand.Rand) []string {
	n := 6 + rng.Intn(10)
	stmts := make([]string, 0, n)
	key := func() string { return fmt.Sprintf("k%d", rng.Intn(5)) }
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			stmts = append(stmts, fmt.Sprintf(`merge (n:KV {name: %q}) set n.val = "v%d"`, key(), i))
		case 4, 5:
			stmts = append(stmts, fmt.Sprintf(`match (a:KV {name: %q}), (b:KV {name: %q}) create (a)-[:LINK {seq: "%d"}]->(b)`, key(), key(), i))
		case 6:
			stmts = append(stmts, fmt.Sprintf(`match (n:KV {name: %q}) detach delete n`, key()))
		case 7:
			stmts = append(stmts, fmt.Sprintf(`match (n:KV {name: %q}) set n.touched = "t%d"`, key(), i))
		default:
			stmts = append(stmts, fmt.Sprintf(`create (x:Blob {name: "b%d"})`, i))
		}
	}
	return stmts
}
