package cypher

import (
	"fmt"
	"testing"

	"securitykg/internal/graph"
)

// TestUnwindReadSemantics: UNWIND expansion rules on both engines —
// list literals fan out, null unwinds to zero rows, a scalar unwinds
// to itself, and the unwound variable participates in downstream
// clauses like any other binding.
func TestUnwindReadSemantics(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		name := "planned"
		if legacy {
			name = "legacy"
		}
		t.Run(name, func(t *testing.T) {
			s := writeFixture()
			e := NewEngine(s, Options{UseIndexes: true, MaxBytes: 16 << 20, Legacy: legacy})

			res, err := e.Query("UNWIND [1, 2, 3] AS x RETURN x", nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 3 {
				t.Errorf("UNWIND [1,2,3]: %d rows, want 3", len(res.Rows))
			}

			res, err = e.Query("UNWIND $xs AS x RETURN x", map[string]any{"xs": nil})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 0 {
				t.Errorf("UNWIND null: %d rows, want 0", len(res.Rows))
			}

			res, err = e.Query("UNWIND $xs AS x RETURN x", map[string]any{"xs": "solo"})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 1 || res.Rows[0][0].String() != "solo" {
				t.Errorf("UNWIND scalar: rows = %v, want one row %q", res.Rows, "solo")
			}

			// Unwound value drives a MATCH filter.
			res, err = e.Query(
				"UNWIND $names AS nm MATCH (m:Malware) WHERE m.name = nm RETURN m.name",
				map[string]any{"names": []any{"wannacry", "absent"}})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 1 || res.Rows[0][0].String() != "wannacry" {
				t.Errorf("UNWIND+MATCH: rows = %v, want [wannacry]", res.Rows)
			}
		})
	}
}

// TestUnwindCreateDifferential: batch mutation through UNWIND produces
// identical stores on the planned and legacy engines.
func TestUnwindCreateDifferential(t *testing.T) {
	runWriteDifferential(t, []string{
		"UNWIND $batch AS row CREATE (h:Host {name: row.name, os: row.os})",
		"UNWIND $batch AS row MERGE (h:Host {name: row.name}) SET h.seen = 'yes'",
		"UNWIND [1, 2] AS x CREATE (n:Tick {name: x})",
	}, map[string]any{
		"batch": []any{
			map[string]any{"name": "h1", "os": "linux"},
			map[string]any{"name": "h2", "os": "windows"},
			map[string]any{"name": "h3", "os": "linux"},
		},
	})
}

// TestUnwindBatchSingleWALGroup is the ingest acceptance test: a 10k-row
// UNWIND batch creating a node and an edge per row reaches the WAL as
// exactly ONE transaction group (one tx_begin, one tx_commit, one
// group-commit fsync decision downstream) and moves the planner stats
// version at most once.
func TestUnwindBatchSingleWALGroup(t *testing.T) {
	const n = 10_000
	batch := make([]any, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, map[string]any{
			"name": fmt.Sprintf("host-%d", i),
			"ip":   fmt.Sprintf("10.0.%d.%d", i/256, i%256),
		})
	}

	s := graph.New()
	var ops []graph.MutationOp
	s.SetMutationHook(func(m graph.Mutation) { ops = append(ops, m.Op) })
	e := NewEngine(s, Options{UseIndexes: true, MaxBytes: 64 << 20})

	sv0 := s.StatsVersion()
	res, err := e.Query(
		"UNWIND $batch AS row CREATE (h:Host {name: row.name})-[:SCANS]->(t:IP {name: row.ip})",
		map[string]any{"batch": batch})
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes == nil || res.Writes.NodesCreated != 2*n || res.Writes.EdgesCreated != n {
		t.Fatalf("writes = %+v, want %d nodes and %d edges created", res.Writes, 2*n, n)
	}

	begins, commits, bare := 0, 0, 0
	for _, op := range ops {
		switch op {
		case graph.OpTxBegin:
			begins++
		case graph.OpTxCommit:
			commits++
		default:
			bare++
		}
	}
	if begins != 1 || commits != 1 {
		t.Errorf("WAL saw %d tx_begin / %d tx_commit markers, want exactly one group", begins, commits)
	}
	if bare != 3*n {
		t.Errorf("WAL saw %d mutations inside the group, want %d", bare, 3*n)
	}
	if bumps := s.StatsVersion() - sv0; bumps > 1 {
		t.Errorf("StatsVersion moved %d times during the batch, want at most 1", bumps)
	}
	if got := s.CountNodes(); got != 2*n {
		t.Errorf("CountNodes = %d, want %d", got, 2*n)
	}
}
