// Package ioc recognizes low-level Indicators of Compromise in raw text and
// implements the paper's "IOC protection" trick: before generic NLP modules
// run, every IOC span is replaced by a plain placeholder word so that
// tokenization and sentence segmentation see well-formed tokens; the spans
// are restored afterwards.
//
// Recognized kinds mirror the ontology's IOC entity types: IPv4 addresses,
// URLs, email addresses, domain names, Windows registry keys, file paths,
// file names, and MD5/SHA-1/SHA-256 hashes, plus CVE identifiers (mapped to
// Vulnerability entities downstream). Defanged forms (hxxp://, 1.2.3[.]4,
// evil[at]example.com) are refanged before matching.
package ioc

import (
	"regexp"
	"sort"
	"strings"

	"securitykg/internal/ontology"
)

// Kind names an IOC category.
type Kind string

const (
	KindIP       Kind = "ip"
	KindURL      Kind = "url"
	KindEmail    Kind = "email"
	KindDomain   Kind = "domain"
	KindRegistry Kind = "registry"
	KindFilePath Kind = "filepath"
	KindFileName Kind = "filename"
	KindHash     Kind = "hash"
	KindCVE      Kind = "cve"
)

// Kinds lists every IOC kind in priority order (most specific first).
func Kinds() []Kind {
	return []Kind{KindURL, KindEmail, KindCVE, KindRegistry, KindHash,
		KindIP, KindFilePath, KindFileName, KindDomain}
}

// EntityType maps an IOC kind to its ontology entity type.
func (k Kind) EntityType() ontology.EntityType {
	switch k {
	case KindIP:
		return ontology.TypeIP
	case KindURL:
		return ontology.TypeURL
	case KindEmail:
		return ontology.TypeEmail
	case KindDomain:
		return ontology.TypeDomain
	case KindRegistry:
		return ontology.TypeRegistry
	case KindFilePath:
		return ontology.TypeFilePath
	case KindFileName:
		return ontology.TypeFileName
	case KindHash:
		return ontology.TypeHash
	case KindCVE:
		return ontology.TypeVulnerability
	}
	return ontology.TypeHash
}

// Match is one recognized IOC occurrence.
type Match struct {
	Kind  Kind
	Value string // canonical (refanged, punctuation-trimmed) value
	Start int    // byte offset in the refanged text
	End   int
}

// Refang normalizes common defanging conventions so IOCs match:
// hxxp -> http, [.] ( .) {.} [dot] -> ., [at] -> @, [:] -> :.
func Refang(s string) string {
	r := strings.NewReplacer(
		"hxxps://", "https://",
		"hxxp://", "http://",
		"hXXps://", "https://",
		"hXXp://", "http://",
		"[.]", ".", "(.)", ".", "{.}", ".", "[dot]", ".", "(dot)", ".",
		"[at]", "@", "(at)", "@", "[@]", "@",
		"[:]", ":", "[://]", "://",
	)
	return r.Replace(s)
}

var (
	reURL      = regexp.MustCompile(`\bhttps?://[A-Za-z0-9.\-]+(?::\d{1,5})?(?:/[A-Za-z0-9._~:/?#\[\]@!$&'()*+,;=%\-]*)?`)
	reEmail    = regexp.MustCompile(`\b[A-Za-z0-9._%+\-]+@[A-Za-z0-9.\-]+\.[A-Za-z]{2,}\b`)
	reIP       = regexp.MustCompile(`\b(?:(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)\.){3}(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)\b`)
	reHash     = regexp.MustCompile(`\b[a-fA-F0-9]{64}\b|\b[a-fA-F0-9]{40}\b|\b[a-fA-F0-9]{32}\b`)
	reCVE      = regexp.MustCompile(`\bCVE-\d{4}-\d{4,7}\b`)
	reRegistry = regexp.MustCompile(`\b(?:HKEY_LOCAL_MACHINE|HKEY_CURRENT_USER|HKEY_CLASSES_ROOT|HKEY_USERS|HKLM|HKCU|HKCR|HKU)\\[A-Za-z0-9_\\\.{}\-]+`)
	reWinPath  = regexp.MustCompile(`\b[A-Za-z]:\\(?:[A-Za-z0-9_. ${}%\-]+\\)*[A-Za-z0-9_.${}%\-]+`)
	reUnixPath = regexp.MustCompile(`(?:^|[\s"'(])(/(?:usr|etc|tmp|var|home|opt|bin|sbin|lib|dev|proc|root)(?:/[A-Za-z0-9_.\-]+)+)`)
	reFileName = regexp.MustCompile(`\b[A-Za-z0-9_\-]{1,64}\.(?:exe|dll|bat|ps1|vbs|js|jar|doc|docx|docm|xls|xlsx|xlsm|ppt|pptx|pdf|zip|rar|7z|tmp|dat|bin|sys|scr|lnk|hta|iso|img|py|sh|elf|apk|dmg|msi|cab|rtf|chm|wsf|cmd)\b`)
	reDomain   = regexp.MustCompile(`\b(?:[a-zA-Z0-9](?:[a-zA-Z0-9\-]{0,61}[a-zA-Z0-9])?\.)+(?:com|net|org|info|biz|ru|cn|io|co|uk|de|fr|xyz|top|onion|su|tk|ml|ga|cf|gq|pw|cc|ws|me|site|online|club|live|store|tech|space|fun|icu)\b`)
)

type matcher struct {
	kind Kind
	re   *regexp.Regexp
	grp  int // capture group index holding the value (0 = whole match)
}

// matchers in priority order: more specific kinds first so overlap
// resolution keeps the most informative reading (URL over domain, email
// over domain, registry key over file path, ...).
var matchers = []matcher{
	{KindURL, reURL, 0},
	{KindEmail, reEmail, 0},
	{KindCVE, reCVE, 0},
	{KindRegistry, reRegistry, 0},
	{KindHash, reHash, 0},
	{KindIP, reIP, 0},
	{KindFilePath, reWinPath, 0},
	{KindFilePath, reUnixPath, 1},
	{KindFileName, reFileName, 0},
	{KindDomain, reDomain, 0},
}

// Scan finds all IOCs in text after refanging. Overlapping matches are
// resolved by matcher priority, then by length (longest wins), then by
// position. The returned offsets refer to the refanged text, which Scan
// also returns so callers can index into it.
func Scan(text string) ([]Match, string) {
	rf := Refang(text)
	type cand struct {
		m    Match
		prio int
	}
	var cands []cand
	for p, mt := range matchers {
		for _, loc := range mt.re.FindAllStringSubmatchIndex(rf, -1) {
			s, e := loc[2*mt.grp], loc[2*mt.grp+1]
			if s < 0 || e <= s {
				continue
			}
			val := rf[s:e]
			for len(val) > 0 && strings.ContainsRune(".,;:)]}>'\"", rune(val[len(val)-1])) {
				val = val[:len(val)-1]
				e--
			}
			if val == "" {
				continue
			}
			cands = append(cands, cand{Match{Kind: mt.kind, Value: val, Start: s, End: e}, p})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		al, bl := a.m.End-a.m.Start, b.m.End-b.m.Start
		if al != bl {
			return al > bl
		}
		return a.m.Start < b.m.Start
	})
	taken := make([]bool, len(rf))
	free := func(s, e int) bool {
		for i := s; i < e; i++ {
			if taken[i] {
				return false
			}
		}
		return true
	}
	var out []Match
	for _, c := range cands {
		if !free(c.m.Start, c.m.End) {
			continue
		}
		for i := c.m.Start; i < c.m.End; i++ {
			taken[i] = true
		}
		out = append(out, c.m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, rf
}

// HashAlgo guesses the algorithm of a hex hash value by length.
func HashAlgo(h string) string {
	switch len(h) {
	case 32:
		return "md5"
	case 40:
		return "sha1"
	case 64:
		return "sha256"
	}
	return "unknown"
}
