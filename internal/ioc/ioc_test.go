package ioc

import (
	"strings"
	"testing"
	"testing/quick"

	"securitykg/internal/ontology"
	"securitykg/internal/textproc"
)

func findKind(ms []Match, k Kind) []Match {
	var out []Match
	for _, m := range ms {
		if m.Kind == k {
			out = append(out, m)
		}
	}
	return out
}

func TestScanIP(t *testing.T) {
	ms, _ := Scan("The malware beacons to 192.168.10.5 and 8.8.8.8 daily.")
	ips := findKind(ms, KindIP)
	if len(ips) != 2 {
		t.Fatalf("expected 2 IPs, got %+v", ms)
	}
	if ips[0].Value != "192.168.10.5" || ips[1].Value != "8.8.8.8" {
		t.Errorf("wrong IP values: %+v", ips)
	}
}

func TestScanRejectsInvalidIPOctets(t *testing.T) {
	ms, _ := Scan("not an ip: 999.999.999.999")
	if got := findKind(ms, KindIP); len(got) != 0 {
		t.Errorf("matched invalid IP: %+v", got)
	}
}

func TestScanURLSubsumesDomain(t *testing.T) {
	ms, _ := Scan("Payload hosted at http://evil-domain.com/drop.exe for weeks.")
	urls := findKind(ms, KindURL)
	if len(urls) != 1 || urls[0].Value != "http://evil-domain.com/drop.exe" {
		t.Fatalf("URL match wrong: %+v", ms)
	}
	if doms := findKind(ms, KindDomain); len(doms) != 0 {
		t.Errorf("domain inside URL should be subsumed: %+v", doms)
	}
}

func TestScanEmailAndDomain(t *testing.T) {
	ms, _ := Scan("Contact spam@bad-mail.ru or visit c2-panel.net today.")
	if e := findKind(ms, KindEmail); len(e) != 1 || e[0].Value != "spam@bad-mail.ru" {
		t.Errorf("email wrong: %+v", e)
	}
	if d := findKind(ms, KindDomain); len(d) != 1 || d[0].Value != "c2-panel.net" {
		t.Errorf("domain wrong: %+v", d)
	}
}

func TestScanHashes(t *testing.T) {
	md5 := strings.Repeat("ab", 16)
	sha1 := strings.Repeat("cd", 20)
	sha256 := strings.Repeat("ef", 32)
	ms, _ := Scan("hashes: " + md5 + " " + sha1 + " " + sha256)
	hs := findKind(ms, KindHash)
	if len(hs) != 3 {
		t.Fatalf("expected 3 hashes, got %+v", hs)
	}
	if HashAlgo(hs[0].Value) != "md5" || HashAlgo(hs[1].Value) != "sha1" || HashAlgo(hs[2].Value) != "sha256" {
		t.Errorf("hash algos wrong: %v %v %v",
			HashAlgo(hs[0].Value), HashAlgo(hs[1].Value), HashAlgo(hs[2].Value))
	}
}

func TestScanCVE(t *testing.T) {
	ms, _ := Scan("Exploits CVE-2017-0144 via EternalBlue.")
	cs := findKind(ms, KindCVE)
	if len(cs) != 1 || cs[0].Value != "CVE-2017-0144" {
		t.Fatalf("CVE wrong: %+v", ms)
	}
	if cs[0].Kind.EntityType() != ontology.TypeVulnerability {
		t.Errorf("CVE should map to Vulnerability entity")
	}
}

func TestScanRegistryAndPaths(t *testing.T) {
	text := `Persistence via HKEY_LOCAL_MACHINE\Software\Microsoft\Windows\CurrentVersion\Run and drops C:\Windows\Temp\payload.exe plus /etc/cron.d/backdoor entries.`
	ms, _ := Scan(text)
	if r := findKind(ms, KindRegistry); len(r) != 1 || !strings.HasPrefix(r[0].Value, "HKEY_LOCAL_MACHINE") {
		t.Errorf("registry wrong: %+v", r)
	}
	paths := findKind(ms, KindFilePath)
	if len(paths) != 2 {
		t.Fatalf("expected 2 file paths, got %+v", paths)
	}
	if !strings.HasPrefix(paths[0].Value, `C:\Windows`) {
		t.Errorf("windows path wrong: %+v", paths[0])
	}
	if paths[1].Value != "/etc/cron.d/backdoor" {
		t.Errorf("unix path wrong: %+v", paths[1])
	}
}

func TestScanFileName(t *testing.T) {
	ms, _ := Scan("The dropper invoice_2021.docm writes svch0st.exe on launch.")
	fs := findKind(ms, KindFileName)
	if len(fs) != 2 {
		t.Fatalf("expected 2 file names, got %+v", fs)
	}
}

func TestScanFileNameInsidePathSubsumed(t *testing.T) {
	ms, _ := Scan(`dropped at C:\Users\victim\evil.exe`)
	if fs := findKind(ms, KindFileName); len(fs) != 0 {
		t.Errorf("file name inside path should be subsumed: %+v", fs)
	}
	if ps := findKind(ms, KindFilePath); len(ps) != 1 {
		t.Errorf("expected 1 path: %+v", ms)
	}
}

func TestRefangDefangedIOCs(t *testing.T) {
	ms, _ := Scan("C2 at hxxp://bad[.]site[.]com/gate and 10[.]0[.]0[.]99, mail evil[at]dark.net")
	if u := findKind(ms, KindURL); len(u) != 1 || u[0].Value != "http://bad.site.com/gate" {
		t.Errorf("defanged URL wrong: %+v", u)
	}
	if ip := findKind(ms, KindIP); len(ip) != 1 || ip[0].Value != "10.0.0.99" {
		t.Errorf("defanged IP wrong: %+v", ip)
	}
	if e := findKind(ms, KindEmail); len(e) != 1 || e[0].Value != "evil@dark.net" {
		t.Errorf("defanged email wrong: %+v", e)
	}
}

func TestScanOffsetsIndexRefangedText(t *testing.T) {
	ms, rf := Scan("see 1.2.3.4 and hxxp://a.com/x now")
	for _, m := range ms {
		if rf[m.Start:m.End] != m.Value {
			t.Errorf("offset mismatch for %q: rf[%d:%d]=%q",
				m.Value, m.Start, m.End, rf[m.Start:m.End])
		}
	}
}

func TestScanTrailingSentencePunctuation(t *testing.T) {
	ms, _ := Scan("It contacts control.bad-zone.ru. Later it stops.")
	ds := findKind(ms, KindDomain)
	if len(ds) != 1 || ds[0].Value != "control.bad-zone.ru" {
		t.Fatalf("trailing dot not trimmed: %+v", ds)
	}
}

func TestScanNoFalsePositivesOnPlainProse(t *testing.T) {
	ms, _ := Scan("The attacker moved laterally and escalated privileges quietly.")
	if len(ms) != 0 {
		t.Errorf("plain prose produced IOCs: %+v", ms)
	}
}

func TestProtectRestoreRoundTrip(t *testing.T) {
	text := "WannaCry beacons to 10.0.0.5, drops C:\\Temp\\wc.exe and visits http://kill.switch.com/x."
	p := Protect(text)
	if strings.Contains(p.Protected, "10.0.0.5") ||
		strings.Contains(p.Protected, `C:\Temp\wc.exe`) {
		t.Errorf("IOCs remain in protected text: %q", p.Protected)
	}
	restored := p.Restore(p.Protected)
	_, rf := Scan(text)
	if restored != rf {
		t.Errorf("restore mismatch:\n got %q\nwant %q", restored, rf)
	}
}

func TestProtectedTextTokenizesCleanly(t *testing.T) {
	// The whole point of IOC protection: after protection, each IOC is one
	// well-formed token and sentence segmentation is not confused by dots.
	text := "The sample connects to 8.8.4.4. It downloads from http://x.bad-host.com/a.php. Finally it stops."
	p := Protect(text)
	sents := textproc.SplitSentences(p.Protected)
	if len(sents) != 3 {
		t.Fatalf("protected text should split into 3 sentences, got %d: %+v", len(sents), sents)
	}
	toks := textproc.Tokenize(p.Protected)
	nPlaceholders := 0
	for _, tk := range toks {
		if _, ok := p.IsPlaceholder(tk.Text); ok {
			nPlaceholders++
		}
	}
	if nPlaceholders != 2 {
		t.Errorf("expected 2 intact placeholder tokens, got %d", nPlaceholders)
	}
}

func TestUnprotectedIOCBreaksSegmentationBaseline(t *testing.T) {
	// Documents the failure mode IOC protection exists to fix: without it,
	// segmentation counts differ from the protected version on IOC-dense text.
	text := "It fetches http://x.bad-host.com/a.php. Then it stops."
	raw := textproc.SplitSentences(text)
	prot := textproc.SplitSentences(Protect(text).Protected)
	if len(prot) != 2 {
		t.Fatalf("protected segmentation should yield 2 sentences, got %d", len(prot))
	}
	_ = raw // raw count is unspecified; the guarantee only holds under protection
}

func TestProtectionMatchesOrder(t *testing.T) {
	p := Protect("a 1.1.1.1 b 2.2.2.2 c 3.3.3.3")
	ms := p.Matches()
	if len(ms) != 3 {
		t.Fatalf("expected 3 matches, got %d", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Start >= ms[i].Start {
			t.Errorf("matches out of order: %+v", ms)
		}
	}
}

func TestKindsCoverEntityTypes(t *testing.T) {
	for _, k := range Kinds() {
		et := k.EntityType()
		if !ontology.KnownEntityType(et) {
			t.Errorf("kind %s maps to unknown entity type %s", k, et)
		}
	}
}

// Property: scanning output spans never overlap.
func TestScanNonOverlappingQuick(t *testing.T) {
	seeds := []string{
		"ip 10.0.0.1 url http://a.com/x hash " + strings.Repeat("a1", 16),
		"mail a@b.com domain c.net path C:\\x\\y.exe cve CVE-2020-1234",
	}
	f := func(i, j uint8) bool {
		text := seeds[int(i)%len(seeds)] + " " + seeds[int(j)%len(seeds)]
		ms, _ := Scan(text)
		for k := 1; k < len(ms); k++ {
			if ms[k].Start < ms[k-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Restore(Protect(x).Protected) equals Refang(x) for IOC-bearing
// synthetic strings.
func TestProtectRestoreQuick(t *testing.T) {
	parts := []string{"the malware", "10.0.0.7", "talks to", "bad.host.com",
		"and", "http://c2.evil.net/g", "daily", "a@b.org"}
	f := func(idx []uint8) bool {
		var sb strings.Builder
		for _, i := range idx {
			sb.WriteString(parts[int(i)%len(parts)])
			sb.WriteByte(' ')
		}
		text := sb.String()
		p := Protect(text)
		return p.Restore(p.Protected) == Refang(text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
