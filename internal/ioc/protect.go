package ioc

import (
	"fmt"
	"strings"
)

// Protection records the IOC spans replaced by placeholder words so the
// original values can be restored after tokenization-based processing —
// the "IOC protection" method of the paper (Section 2.4).
type Protection struct {
	// Protected is the text with every IOC replaced by a placeholder word.
	Protected string
	// Placeholders maps placeholder word -> the IOC match it replaced.
	Placeholders map[string]Match
	// order preserves left-to-right placeholder sequence.
	order []string
}

// placeholderWord builds the natural-language-looking replacement token.
// Underscore keeps it a single token through tokenization, and the stable
// prefix makes restored lookup exact.
func placeholderWord(i int) string { return fmt.Sprintf("iocterm_%04d", i) }

// Protect scans text for IOCs and replaces each with a placeholder word.
// It returns the protection record; the original (refanged) text is
// recoverable via Restore.
func Protect(text string) *Protection {
	matches, rf := Scan(text)
	p := &Protection{Placeholders: make(map[string]Match, len(matches))}
	var b strings.Builder
	b.Grow(len(rf))
	prev := 0
	for i, m := range matches {
		b.WriteString(rf[prev:m.Start])
		ph := placeholderWord(i)
		b.WriteString(ph)
		p.Placeholders[ph] = m
		p.order = append(p.order, ph)
		prev = m.End
	}
	b.WriteString(rf[prev:])
	p.Protected = b.String()
	return p
}

// IsPlaceholder reports whether the token is one of this protection's
// placeholder words, returning the underlying IOC match if so.
func (p *Protection) IsPlaceholder(token string) (Match, bool) {
	m, ok := p.Placeholders[token]
	return m, ok
}

// Matches returns the protected IOC matches in text order.
func (p *Protection) Matches() []Match {
	out := make([]Match, 0, len(p.order))
	for _, ph := range p.order {
		out = append(out, p.Placeholders[ph])
	}
	return out
}

// Restore replaces placeholder words in s with their original IOC values.
// s may be any text derived from Protected (for example a detokenized
// sentence); every placeholder occurrence is substituted.
func (p *Protection) Restore(s string) string {
	if len(p.order) == 0 {
		return s
	}
	pairs := make([]string, 0, 2*len(p.order))
	for _, ph := range p.order {
		pairs = append(pairs, ph, p.Placeholders[ph].Value)
	}
	return strings.NewReplacer(pairs...).Replace(s)
}
