package ner

import (
	"strings"

	"securitykg/internal/gazetteer"
	"securitykg/internal/labelmodel"
	"securitykg/internal/textproc"
)

// A labeling function votes one class index per token or abstains.
// These reproduce the paper's data-programming step: curated-list LFs are
// precise, contextual LFs are noisier but cover entities outside the lists,
// and the generative label model weighs them by estimated accuracy.
type labelingFunc struct {
	name string
	vote func(st *sentenceTokens, i int) int
}

// malwareSuffixes are word endings that strongly suggest a malware name.
var malwareSuffixes = []string{"bot", "locker", "crypt", "stealer", "loader",
	"rat", "duke", "worm", "miner", "kit"}

// actorCues are lemmas that precede or follow threat-actor names.
var actorCues = map[string]bool{"group": true, "actor": true, "apt": true,
	"gang": true, "crew": true, "operator": true}

// malwareCues are lemmas that follow malware names ("the X ransomware").
var malwareCues = map[string]bool{"ransomware": true, "trojan": true,
	"malware": true, "worm": true, "backdoor": true, "botnet": true,
	"campaign": true, "sample": true, "variant": true, "implant": true,
	"infection": true, "dropper": true, "loader": true, "stealer": true}

// toolCues are lemmas that precede tool names.
var toolCues = map[string]bool{"tool": true, "utility": true, "framework": true}

// defaultLabelingFuncs builds the LF set.
func defaultLabelingFuncs() []labelingFunc {
	oIdx := 0
	mal := classIndex(gazetteer.ClassMalware)
	act := classIndex(gazetteer.ClassActor)
	tool := classIndex(gazetteer.ClassTool)

	return []labelingFunc{
		// LF1: curated gazetteer lists (high accuracy, limited recall on
		// novel entities).
		{"gazetteer", func(st *sentenceTokens, i int) int {
			if c := st.gazClass[i]; c != "" {
				return classIndex(c)
			}
			return labelmodel.Abstain
		}},
		// LF2: function words, punctuation and placeholders are O.
		{"function-words", func(st *sentenceTokens, i int) int {
			t := st.toks[i]
			if st.placeholder[i] || t.IsPunct() {
				return oIdx
			}
			switch t.POS {
			case textproc.TagDT, textproc.TagIN, textproc.TagCC,
				textproc.TagPRP, textproc.TagPRPS, textproc.TagTO,
				textproc.TagMD, textproc.TagWDT, textproc.TagCD,
				textproc.TagRB, textproc.TagPunct:
				return oIdx
			}
			if textproc.IsVerbTag(t.POS) {
				return oIdx
			}
			return labelmodel.Abstain
		}},
		// LF3: malware-like suffixes on capitalized words.
		{"malware-suffix", func(st *sentenceTokens, i int) int {
			t := st.toks[i]
			if t.Text == "" || t.Text[0] < 'A' || t.Text[0] > 'Z' {
				return labelmodel.Abstain
			}
			lw := strings.ToLower(t.Text)
			for _, suf := range malwareSuffixes {
				if strings.HasSuffix(lw, suf) && len(lw) > len(suf)+1 {
					return mal
				}
			}
			return labelmodel.Abstain
		}},
		// LF4: actor context — capitalized word adjacent to an actor cue
		// ("the Sandworm group", "the actor BronzeNight").
		{"actor-context", func(st *sentenceTokens, i int) int {
			t := st.toks[i]
			if t.Text == "" || t.Text[0] < 'A' || t.Text[0] > 'Z' {
				return labelmodel.Abstain
			}
			if i > 0 && actorCues[st.toks[i-1].Lemma] {
				return act
			}
			if i+1 < len(st.toks) && actorCues[st.toks[i+1].Lemma] {
				return act
			}
			return labelmodel.Abstain
		}},
		// LF5: malware context — capitalized word followed by a malware cue
		// or preceded by a verb like "dropped".
		{"malware-context", func(st *sentenceTokens, i int) int {
			t := st.toks[i]
			if t.Text == "" || t.Text[0] < 'A' || t.Text[0] > 'Z' {
				return labelmodel.Abstain
			}
			if i+1 < len(st.toks) && malwareCues[st.toks[i+1].Lemma] {
				return mal
			}
			if i > 0 && malwareCues[st.toks[i-1].Lemma] {
				return mal
			}
			return labelmodel.Abstain
		}},
		// LF6: tool context — capitalized word after a tool cue or after
		// the lemma "use"/"using".
		{"tool-context", func(st *sentenceTokens, i int) int {
			t := st.toks[i]
			if t.Text == "" || t.Text[0] < 'A' || t.Text[0] > 'Z' {
				return labelmodel.Abstain
			}
			if i > 0 && (toolCues[st.toks[i-1].Lemma] || st.toks[i-1].Lemma == "use") {
				return tool
			}
			return labelmodel.Abstain
		}},
		// LF7: lowercase mid-sentence non-gazetteer words lean O (weak
		// prior that entities here are capitalized or curated).
		{"lowercase-o", func(st *sentenceTokens, i int) int {
			t := st.toks[i]
			if st.gazClass[i] != "" {
				return labelmodel.Abstain
			}
			if t.Text != "" && t.Text[0] >= 'a' && t.Text[0] <= 'z' &&
				textproc.Stopwords[strings.ToLower(t.Text)] {
				return oIdx
			}
			return labelmodel.Abstain
		}},
	}
}

// LabelingStrategy selects how LF votes become training labels (E6).
type LabelingStrategy string

const (
	// StrategyLabelModel fits the generative model by EM and uses MAP
	// labels — the paper's data-programming configuration.
	StrategyLabelModel LabelingStrategy = "labelmodel"
	// StrategyMajority uses unweighted majority voting.
	StrategyMajority LabelingStrategy = "majority"
	// StrategyGazetteerOnly uses only the curated-list LF.
	StrategyGazetteerOnly LabelingStrategy = "gazetteer"
)

// voteMatrix applies every LF to every token of the prepared sentences,
// returning the label matrix plus the parallel sentence/token coordinates.
func voteMatrix(sents []sentenceTokens, lfs []labelingFunc) labelmodel.Matrix {
	var m labelmodel.Matrix
	for si := range sents {
		for i := range sents[si].toks {
			row := make([]int, len(lfs))
			for j, lf := range lfs {
				row[j] = lf.vote(&sents[si], i)
			}
			m = append(m, row)
		}
	}
	return m
}

// synthesizeLabels converts LF votes into per-token class indices using the
// chosen strategy. Tokens with no signal become O.
func synthesizeLabels(sents []sentenceTokens, strategy LabelingStrategy) ([][]int, error) {
	lfs := defaultLabelingFuncs()
	if strategy == StrategyGazetteerOnly {
		lfs = lfs[:1]
	}
	matrix := voteMatrix(sents, lfs)
	k := len(classes)

	var post [][]float64
	switch strategy {
	case StrategyMajority, StrategyGazetteerOnly:
		p, err := labelmodel.MajorityVote(matrix, k)
		if err != nil {
			return nil, err
		}
		post = p
	default:
		// Fix a uniform class balance: token labeling is dominated by O,
		// and a learned prior would collapse every minority-class vote.
		balance := make([]float64, k)
		for c := range balance {
			balance[c] = 1 / float64(k)
		}
		model, err := labelmodel.Fit(matrix, k, labelmodel.FitConfig{ClassBalance: balance})
		if err != nil {
			return nil, err
		}
		post = model.ProbLabels(matrix)
	}

	out := make([][]int, len(sents))
	row := 0
	for si := range sents {
		labels := make([]int, len(sents[si].toks))
		for i := range sents[si].toks {
			votes := matrix[row]
			allAbstain := true
			for _, v := range votes {
				if v != labelmodel.Abstain {
					allAbstain = false
					break
				}
			}
			if allAbstain {
				labels[i] = 0 // O
			} else {
				best, bestP := 0, -1.0
				for c, p := range post[row] {
					if p > bestP {
						best, bestP = c, p
					}
				}
				labels[i] = best
			}
			row++
		}
		out[si] = labels
	}
	return out, nil
}

// propagateDocLabels relabels O tokens whose surface form was labeled as
// an entity elsewhere in the same document. Only distinctive tokens
// propagate: capitalized or digit/dot-bearing words longer than 3 runes,
// never stopwords, never gazetteer-covered tokens (those already vote).
func propagateDocLabels(sents []sentenceTokens, labels [][]int) {
	classOfTok := map[string]int{}
	for si := range sents {
		for i, tok := range sents[si].toks {
			if labels[si][i] == 0 {
				continue
			}
			if propagatable(tok.Text) {
				classOfTok[strings.ToLower(tok.Text)] = labels[si][i]
			}
		}
	}
	if len(classOfTok) == 0 {
		return
	}
	for si := range sents {
		for i, tok := range sents[si].toks {
			if labels[si][i] != 0 || sents[si].gazClass[i] != "" {
				continue
			}
			if c, ok := classOfTok[strings.ToLower(tok.Text)]; ok && propagatable(tok.Text) {
				labels[si][i] = c
			}
		}
	}
}

func propagatable(text string) bool {
	if len(text) <= 3 || textproc.Stopwords[strings.ToLower(text)] {
		return false
	}
	if text[0] >= 'A' && text[0] <= 'Z' {
		return true
	}
	return strings.ContainsAny(text, "0123456789.")
}

// toBIO converts per-token class indices into BIO tag strings.
func toBIO(labels []int) []string {
	out := make([]string, len(labels))
	for i, c := range labels {
		if c == 0 {
			out[i] = "O"
			continue
		}
		cls := string(classes[c])
		if i > 0 && labels[i-1] == c {
			out[i] = "I-" + cls
		} else {
			out[i] = "B-" + cls
		}
	}
	return out
}
