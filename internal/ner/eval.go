package ner

import (
	"fmt"
	"sort"
	"strings"

	"securitykg/internal/ontology"
)

// Metrics is a precision/recall/F1 summary, overall and per entity type.
type Metrics struct {
	Precision  float64
	Recall     float64
	F1         float64
	TP, FP, FN int
	PerType    map[ontology.EntityType]TypeMetrics
}

// TypeMetrics is the per-type breakdown.
type TypeMetrics struct {
	Precision  float64
	Recall     float64
	F1         float64
	TP, FP, FN int
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func entKey(e Entity) string {
	return string(e.Type) + "\x00" + strings.ToLower(strings.TrimSpace(e.Name))
}

// Evaluate scores predicted entity sets against gold entity sets, document
// by document, matching on (type, case-insensitive name).
func Evaluate(pred, gold [][]Entity) (Metrics, error) {
	if len(pred) != len(gold) {
		return Metrics{}, fmt.Errorf("ner: evaluate: %d predictions vs %d gold documents",
			len(pred), len(gold))
	}
	m := Metrics{PerType: make(map[ontology.EntityType]TypeMetrics)}
	bump := func(t ontology.EntityType, tp, fp, fn int) {
		tm := m.PerType[t]
		tm.TP += tp
		tm.FP += fp
		tm.FN += fn
		m.PerType[t] = tm
	}
	for d := range gold {
		goldSet := make(map[string]ontology.EntityType)
		for _, g := range gold[d] {
			goldSet[entKey(g)] = g.Type
		}
		predSet := make(map[string]ontology.EntityType)
		for _, p := range pred[d] {
			predSet[entKey(p)] = p.Type
		}
		for k, t := range predSet {
			if _, ok := goldSet[k]; ok {
				m.TP++
				bump(t, 1, 0, 0)
			} else {
				m.FP++
				bump(t, 0, 1, 0)
			}
		}
		for k, t := range goldSet {
			if _, ok := predSet[k]; !ok {
				m.FN++
				bump(t, 0, 0, 1)
			}
		}
	}
	finish := func(tp, fp, fn int) (p, r, f float64) {
		if tp+fp > 0 {
			p = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			r = float64(tp) / float64(tp+fn)
		}
		return p, r, f1(p, r)
	}
	m.Precision, m.Recall, m.F1 = finish(m.TP, m.FP, m.FN)
	for t, tm := range m.PerType {
		tm.Precision, tm.Recall, tm.F1 = finish(tm.TP, tm.FP, tm.FN)
		m.PerType[t] = tm
	}
	return m, nil
}

// String renders the metrics as an aligned table.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "overall P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)\n",
		m.Precision, m.Recall, m.F1, m.TP, m.FP, m.FN)
	types := make([]ontology.EntityType, 0, len(m.PerType))
	for t := range m.PerType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		tm := m.PerType[t]
		fmt.Fprintf(&b, "  %-20s P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)\n",
			t, tm.Precision, tm.Recall, tm.F1, tm.TP, tm.FP, tm.FN)
	}
	return b.String()
}
