package ner

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"securitykg/internal/gazetteer"
	"securitykg/internal/ontology"
)

// corpusDoc is a synthetic training/eval document with gold entities.
type corpusDoc struct {
	text string
	gold []Entity
}

// makeCorpus builds template-based OSCTI-like documents. When unseen is
// true, malware/actor names are synthetic (absent from the gazetteer) so
// the corpus tests generalization.
func makeCorpus(n int, unseen bool, seed int64) []corpusDoc {
	rng := rand.New(rand.NewSource(seed))
	mal := gazetteer.Malware()
	act := gazetteer.ThreatActors()
	tool := gazetteer.Tools()
	tech := gazetteer.Techniques()
	novelMal := []string{"Frostbite", "Nightshade", "Vexlock", "Grimspider",
		"Duskbot", "Palecrypt", "Hollowrat", "Smokeloader2"}
	novelAct := []string{"BronzeNight", "CrimsonFox", "SilentJackal",
		"IronVulture", "GhostLynx", "AmberWasp"}
	var docs []corpusDoc
	for i := 0; i < n; i++ {
		var m, a string
		if unseen {
			m = novelMal[rng.Intn(len(novelMal))]
			a = novelAct[rng.Intn(len(novelAct))]
		} else {
			m = mal[rng.Intn(len(mal))]
			a = act[rng.Intn(len(act))]
		}
		to := tool[rng.Intn(len(tool))]
		te := tech[rng.Intn(len(tech))]
		ip := fmt.Sprintf("10.%d.%d.%d", rng.Intn(250), rng.Intn(250), 1+rng.Intn(250))
		text := fmt.Sprintf(
			"Researchers observed the %s ransomware in a new campaign. "+
				"The %s group deployed the tool %s during the intrusion. "+
				"The malware used %s to move laterally. "+
				"It connects to %s for command and control.",
			m, a, to, te, ip)
		docs = append(docs, corpusDoc{
			text: text,
			gold: []Entity{
				{Type: ontology.TypeMalware, Name: m},
				{Type: ontology.TypeThreatActor, Name: a},
				{Type: ontology.TypeTool, Name: to},
				{Type: ontology.TypeTechnique, Name: te},
				{Type: ontology.TypeIP, Name: ip},
			},
		})
	}
	return docs
}

func texts(docs []corpusDoc) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.text
	}
	return out
}

func trainSmall(t *testing.T, strategy LabelingStrategy) *Extractor {
	t.Helper()
	docs := makeCorpus(60, false, 1)
	ex, err := Train(texts(docs), TrainOptions{Strategy: strategy, Epochs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestTrainAndExtractKnownEntities(t *testing.T) {
	ex := trainSmall(t, StrategyLabelModel)
	ents := ex.Extract("The WannaCry ransomware was observed. The Lazarus Group group used the tool Mimikatz. It connects to 10.1.2.3 today.")
	byType := map[ontology.EntityType][]string{}
	for _, e := range ents {
		byType[e.Type] = append(byType[e.Type], e.Name)
	}
	if !containsFold(byType[ontology.TypeMalware], "WannaCry") {
		t.Errorf("missed WannaCry: %+v", byType)
	}
	if !containsFold(byType[ontology.TypeTool], "Mimikatz") {
		t.Errorf("missed Mimikatz: %+v", byType)
	}
	if !containsFold(byType[ontology.TypeIP], "10.1.2.3") {
		t.Errorf("missed IP: %+v", byType)
	}
}

func containsFold(xs []string, want string) bool {
	for _, x := range xs {
		if strings.EqualFold(x, want) {
			return true
		}
	}
	return false
}

func TestCRFGeneralizesToUnseenEntities(t *testing.T) {
	// Train on curated names; evaluate on documents whose malware/actor
	// names are NOT in any gazetteer. The CRF should still find many of
	// them from context; the gazetteer baseline finds none (paper claim).
	trainDocs := makeCorpus(150, false, 2)
	testDocs := makeCorpus(40, true, 3)
	ex, err := Train(texts(trainDocs), TrainOptions{Epochs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := NewBaseline()

	var predCRF, predBase, gold [][]Entity
	for _, d := range testDocs {
		predCRF = append(predCRF, filterTypes(ex.Extract(d.text),
			ontology.TypeMalware, ontology.TypeThreatActor))
		predBase = append(predBase, filterTypes(base.Extract(d.text),
			ontology.TypeMalware, ontology.TypeThreatActor))
		gold = append(gold, filterTypes(d.gold,
			ontology.TypeMalware, ontology.TypeThreatActor))
	}
	mCRF, err := Evaluate(predCRF, gold)
	if err != nil {
		t.Fatal(err)
	}
	mBase, err := Evaluate(predBase, gold)
	if err != nil {
		t.Fatal(err)
	}
	if mBase.Recall != 0 {
		t.Errorf("baseline cannot recall unseen entities, got R=%.3f", mBase.Recall)
	}
	if mCRF.Recall < 0.5 {
		t.Errorf("CRF recall on unseen entities %.3f, want >= 0.5", mCRF.Recall)
	}
	if mCRF.F1 <= mBase.F1 {
		t.Errorf("CRF F1 %.3f should beat baseline %.3f on unseen entities",
			mCRF.F1, mBase.F1)
	}
}

func filterTypes(es []Entity, types ...ontology.EntityType) []Entity {
	var out []Entity
	for _, e := range es {
		for _, t := range types {
			if e.Type == t {
				out = append(out, e)
			}
		}
	}
	return out
}

func TestBaselineFindsCuratedAndIOCs(t *testing.T) {
	b := NewBaseline()
	ents := b.Extract("Emotet used Cobalt Strike and credential dumping, contacting 8.8.4.4 and evil.example.com.")
	wants := []Entity{
		{Type: ontology.TypeMalware, Name: "Emotet"},
		{Type: ontology.TypeTool, Name: "Cobalt Strike"},
		{Type: ontology.TypeTechnique, Name: "credential dumping"},
		{Type: ontology.TypeIP, Name: "8.8.4.4"},
		{Type: ontology.TypeDomain, Name: "evil.example.com"},
	}
	for _, w := range wants {
		found := false
		for _, e := range ents {
			if e.Type == w.Type && strings.EqualFold(e.Name, w.Name) {
				found = true
			}
		}
		if !found {
			t.Errorf("baseline missed %+v in %+v", w, ents)
		}
	}
}

func TestExtractRestoresIOCsInsideSpans(t *testing.T) {
	ex := trainSmall(t, StrategyLabelModel)
	ents := ex.Extract("The dropper fetches http://bad.c2-host.com/payload for the campaign.")
	for _, e := range ents {
		if strings.Contains(e.Name, "iocterm_") {
			t.Errorf("placeholder leaked into entity name: %+v", e)
		}
	}
}

func TestExtractDedupes(t *testing.T) {
	ex := trainSmall(t, StrategyLabelModel)
	ents := ex.Extract("WannaCry and WannaCry and wannacry appeared. WannaCry persisted.")
	count := 0
	for _, e := range ents {
		if e.Type == ontology.TypeMalware && strings.EqualFold(e.Name, "wannacry") {
			count++
		}
	}
	if count > 1 {
		t.Errorf("duplicate entities not merged: %+v", ents)
	}
}

func TestStrategiesAllTrain(t *testing.T) {
	docs := makeCorpus(30, false, 5)
	for _, s := range []LabelingStrategy{StrategyLabelModel, StrategyMajority, StrategyGazetteerOnly} {
		if _, err := Train(texts(docs), TrainOptions{Strategy: s, Epochs: 2, Seed: 1}); err != nil {
			t.Errorf("strategy %s failed: %v", s, err)
		}
	}
}

func TestTrainEmptyCorpusErrors(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Error("empty corpus should error")
	}
	if _, err := Train([]string{"", "   "}, TrainOptions{}); err == nil {
		t.Error("blank corpus should error")
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(make([][]Entity, 2), make([][]Entity, 3)); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestEvaluateMetricsMath(t *testing.T) {
	pred := [][]Entity{{
		{Type: ontology.TypeMalware, Name: "A"},
		{Type: ontology.TypeMalware, Name: "B"},
	}}
	gold := [][]Entity{{
		{Type: ontology.TypeMalware, Name: "a"}, // case-insensitive match
		{Type: ontology.TypeMalware, Name: "C"},
	}}
	m, err := Evaluate(pred, gold)
	if err != nil {
		t.Fatal(err)
	}
	if m.TP != 1 || m.FP != 1 || m.FN != 1 {
		t.Fatalf("confusion counts wrong: %+v", m)
	}
	if m.Precision != 0.5 || m.Recall != 0.5 || m.F1 != 0.5 {
		t.Errorf("P/R/F1 = %.2f/%.2f/%.2f, want 0.5 each", m.Precision, m.Recall, m.F1)
	}
	if m.String() == "" {
		t.Error("String() empty")
	}
}

func TestEntityTypeOfRoundTrip(t *testing.T) {
	for _, c := range gazetteer.Classes() {
		et, ok := EntityTypeOf(c)
		if !ok {
			t.Errorf("class %s has no entity type", c)
			continue
		}
		back, ok := classOf(et)
		if !ok || back != c {
			t.Errorf("round trip failed: %s -> %s -> %s", c, et, back)
		}
	}
}

func TestBIOConversion(t *testing.T) {
	malIdx := classIndex(gazetteer.ClassMalware)
	actIdx := classIndex(gazetteer.ClassActor)
	labels := []int{0, malIdx, malIdx, 0, actIdx, malIdx}
	bio := toBIO(labels)
	want := []string{"O", "B-MAL", "I-MAL", "O", "B-ACT", "B-MAL"}
	for i := range want {
		if bio[i] != want[i] {
			t.Fatalf("toBIO = %v, want %v", bio, want)
		}
	}
}
