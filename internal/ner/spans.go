package ner

import (
	"strings"

	"securitykg/internal/depparse"
	"securitykg/internal/gazetteer"
	"securitykg/internal/ioc"
	"securitykg/internal/ontology"
	"securitykg/internal/textproc"
)

// SentenceResult is the span-level output the relation extractor consumes:
// the annotated tokens of one sentence plus entity spans anchored to token
// positions (CRF spans and IOC placeholder spans merged).
type SentenceResult struct {
	Tokens []textproc.Token
	Spans  []depparse.EntitySpan
}

// ExtractSpans runs the full NER pipeline, returning per-sentence token
// and span detail. IOC placeholders become typed entity spans (with the
// original IOC value as the name); CRF spans cover the remaining entity
// classes. Overlaps resolve in favor of IOC spans.
func (e *Extractor) ExtractSpans(text string) []SentenceResult {
	prot := ioc.Protect(text)
	var out []SentenceResult
	var coveredAll [][]bool
	// knownEnts maps a lowercased single-token surface form found as an
	// entity anywhere in the document to its type, enabling the
	// document-consistency pass below.
	knownEnts := map[string]ontology.EntityType{}
	for _, s := range textproc.SplitSentences(prot.Protected) {
		st := prepareSentence(s.Text, prot, e.lookup)
		if len(st.toks) == 0 {
			continue
		}
		res := SentenceResult{Tokens: st.toks}
		covered := make([]bool, len(st.toks))
		// IOC placeholder spans first (authoritative).
		for i, tok := range st.toks {
			if m, ok := prot.IsPlaceholder(tok.Text); ok {
				res.Spans = append(res.Spans, depparse.EntitySpan{
					Type: m.Kind.EntityType(), Name: m.Value, Start: i, End: i + 1,
				})
				covered[i] = true
			}
		}
		// CRF spans for the higher-level entity classes.
		tags := e.model.Decode(st.featureMatrix(e.clusters))
		for i := 0; i < len(tags); {
			if len(tags[i]) < 2 || tags[i][0] != 'B' {
				i++
				continue
			}
			cls := gazetteer.Class(tags[i][2:])
			j := i + 1
			for j < len(tags) && tags[j] == "I-"+string(cls) {
				j++
			}
			overlap := false
			for k := i; k < j; k++ {
				if covered[k] {
					overlap = true
				}
			}
			if et, ok := EntityTypeOf(cls); ok && !overlap {
				name := joinTokens(st.toks[i:j])
				res.Spans = append(res.Spans, depparse.EntitySpan{
					Type: et, Name: prot.Restore(name), Start: i, End: j,
				})
				for k := i; k < j; k++ {
					covered[k] = true
				}
				if j == i+1 && propagatable(st.toks[i].Text) {
					knownEnts[joinLower(st.toks[i:j])] = et
				}
			}
			i = j
		}
		out = append(out, res)
		coveredAll = append(coveredAll, covered)
	}
	// Document-consistency pass: an entity recognized in one sentence
	// (usually beside a contextual cue) marks identical uncovered tokens
	// in every other sentence.
	for si := range out {
		toks := out[si].Tokens
		for i, tok := range toks {
			if coveredAll[si][i] || !propagatable(tok.Text) {
				continue
			}
			if et, ok := knownEnts[joinLower(toks[i:i+1])]; ok {
				out[si].Spans = append(out[si].Spans, depparse.EntitySpan{
					Type: et, Name: prot.Restore(tok.Text), Start: i, End: i + 1,
				})
				coveredAll[si][i] = true
			}
		}
	}
	return out
}

func joinLower(toks []textproc.Token) string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = strings.ToLower(t.Text)
	}
	return strings.Join(out, " ")
}

func joinTokens(toks []textproc.Token) string {
	switch len(toks) {
	case 0:
		return ""
	case 1:
		return toks[0].Text
	}
	out := toks[0].Text
	for _, t := range toks[1:] {
		out += " " + t.Text
	}
	return out
}

// ExtractRelations runs span extraction and the dependency-based relation
// extractor over every sentence, returning ontology relations.
func (e *Extractor) ExtractRelations(text string) []ontology.Relation {
	var out []ontology.Relation
	for _, sent := range e.ExtractSpans(text) {
		for _, tr := range depparse.ExtractRelations(sent.Tokens, sent.Spans) {
			out = append(out, ontology.Relation{
				Src:   ontology.Entity{Type: tr.Src.Type, Name: tr.Src.Name},
				Type:  tr.Rel,
				Dst:   ontology.Entity{Type: tr.Dst.Type, Name: tr.Dst.Name},
				Attrs: map[string]string{"verb": tr.Verb},
			})
		}
	}
	return out
}
