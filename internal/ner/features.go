// Package ner implements SecurityKG's security-related entity recognition:
// IOC protection, gazetteer matching, data-programming label synthesis, a
// CRF sequence model with lemma/POS/shape/embedding-cluster features, and
// a regex+gazetteer baseline for comparison (the paper claims the CRF
// outperforms the naive baseline and generalizes to unseen entities).
package ner

import (
	"fmt"
	"strings"

	"securitykg/internal/gazetteer"
	"securitykg/internal/ioc"
	"securitykg/internal/ontology"
	"securitykg/internal/textproc"
)

// classes are the CRF entity classes in vote-index order; index 0 is O.
var classes = append([]gazetteer.Class{"O"}, gazetteer.Classes()...)

// classIndex returns the vote index of a class.
func classIndex(c gazetteer.Class) int {
	for i, x := range classes {
		if x == c {
			return i
		}
	}
	return 0
}

// EntityTypeOf maps a gazetteer/CRF class to its ontology entity type.
func EntityTypeOf(c gazetteer.Class) (ontology.EntityType, bool) {
	switch c {
	case gazetteer.ClassMalware:
		return ontology.TypeMalware, true
	case gazetteer.ClassFamily:
		return ontology.TypeMalwareFamily, true
	case gazetteer.ClassActor:
		return ontology.TypeThreatActor, true
	case gazetteer.ClassTechnique:
		return ontology.TypeTechnique, true
	case gazetteer.ClassTool:
		return ontology.TypeTool, true
	case gazetteer.ClassSoftware:
		return ontology.TypeSoftware, true
	case gazetteer.ClassPlatform:
		return ontology.TypeMalwarePlatform, true
	case gazetteer.ClassVendor:
		return ontology.TypeCTIVendor, true
	}
	return "", false
}

// classOf maps an ontology entity type back to its CRF class.
func classOf(t ontology.EntityType) (gazetteer.Class, bool) {
	for _, c := range gazetteer.Classes() {
		if et, ok := EntityTypeOf(c); ok && et == t {
			return c, true
		}
	}
	return "", false
}

// sentenceTokens is one preprocessed sentence: annotated tokens plus
// per-token gazetteer span info.
type sentenceTokens struct {
	toks []textproc.Token
	// gazClass[i] is the class of the gazetteer span covering token i
	// ("" when uncovered); gazBegin[i] marks span starts.
	gazClass []gazetteer.Class
	gazBegin []bool
	// placeholder[i] is true when the token is an IOC placeholder.
	placeholder []bool
}

// prepareSentence annotates and gazetteer-tags the tokens of one protected
// sentence.
func prepareSentence(text string, prot *ioc.Protection, lookup *gazetteer.Lookup) sentenceTokens {
	toks := textproc.Annotate(text)
	st := sentenceTokens{
		toks:        toks,
		gazClass:    make([]gazetteer.Class, len(toks)),
		gazBegin:    make([]bool, len(toks)),
		placeholder: make([]bool, len(toks)),
	}
	lower := make([]string, len(toks))
	for i, t := range toks {
		lower[i] = strings.ToLower(t.Text)
		if prot != nil {
			if _, ok := prot.IsPlaceholder(t.Text); ok {
				st.placeholder[i] = true
			}
		}
	}
	// Longest-match gazetteer tagging.
	maxLen := lookup.MaxPhraseLen()
	for i := 0; i < len(toks); {
		matched := 0
		var mclass gazetteer.Class
		for n := maxLen; n >= 1; n-- {
			if c, ok := lookup.MatchTokens(lower, i, n); ok {
				matched, mclass = n, c
				break
			}
		}
		if matched == 0 {
			i++
			continue
		}
		st.gazBegin[i] = true
		for k := 0; k < matched; k++ {
			st.gazClass[i+k] = mclass
		}
		i += matched
	}
	return st
}

// features computes the sparse CRF feature strings for token i of the
// sentence, optionally adding embedding cluster features.
func (st *sentenceTokens) features(i int, clusters map[string]int) []string {
	t := st.toks[i]
	lw := strings.ToLower(t.Text)
	fs := make([]string, 0, 24)
	fs = append(fs,
		"bias",
		"w="+lw,
		"lemma="+t.Lemma,
		"pos="+t.POS,
		"shape="+t.Shape,
	)
	if n := len(lw); n >= 3 {
		fs = append(fs, "pre3="+lw[:3], "suf3="+lw[n-3:])
	}
	if i == 0 {
		fs = append(fs, "first")
	}
	if t.Text != "" && t.Text[0] >= 'A' && t.Text[0] <= 'Z' {
		fs = append(fs, "cap")
		if strings.ToUpper(t.Text) == t.Text && len(t.Text) > 1 {
			fs = append(fs, "allcaps")
		}
	}
	if strings.ContainsAny(lw, "0123456789") {
		fs = append(fs, "hasdigit")
	}
	if st.placeholder[i] {
		fs = append(fs, "iocplaceholder")
	}
	if c := st.gazClass[i]; c != "" {
		fs = append(fs, "gaz="+string(c))
		if st.gazBegin[i] {
			fs = append(fs, "gazB="+string(c))
		}
	}
	if clusters != nil {
		if cl, ok := clusters[lw]; ok {
			fs = append(fs, fmt.Sprintf("emb=%d", cl))
		}
	}
	// Context window.
	if i > 0 {
		p := st.toks[i-1]
		fs = append(fs, "-1w="+strings.ToLower(p.Text), "-1pos="+p.POS, "-1lemma="+p.Lemma)
	} else {
		fs = append(fs, "-1w=<s>")
	}
	if i > 1 {
		fs = append(fs, "-2pos="+st.toks[i-2].POS, "-2lemma="+st.toks[i-2].Lemma)
	}
	if i+1 < len(st.toks) {
		n := st.toks[i+1]
		fs = append(fs, "+1w="+strings.ToLower(n.Text), "+1pos="+n.POS, "+1lemma="+n.Lemma)
	} else {
		fs = append(fs, "+1w=</s>")
	}
	if i+2 < len(st.toks) {
		fs = append(fs, "+2pos="+st.toks[i+2].POS, "+2lemma="+st.toks[i+2].Lemma)
	}
	return fs
}

// featureMatrix computes features for every token of the sentence.
func (st *sentenceTokens) featureMatrix(clusters map[string]int) [][]string {
	out := make([][]string, len(st.toks))
	for i := range st.toks {
		out[i] = st.features(i, clusters)
	}
	return out
}
