package ner

import (
	"fmt"
	"strings"

	"securitykg/internal/crf"
	"securitykg/internal/gazetteer"
	"securitykg/internal/ioc"
	"securitykg/internal/ontology"
	"securitykg/internal/textproc"
)

// Entity is one recognized entity occurrence in a text.
type Entity struct {
	Type   ontology.EntityType `json:"type"`
	Name   string              `json:"name"`
	Source string              `json:"source"` // "crf", "ioc", or "gazetteer"
}

// Extractor is the trained NER pipeline: IOC protection + gazetteer
// features + CRF decoding, with IOC regex recognition alongside.
type Extractor struct {
	model    *crf.Model
	lookup   *gazetteer.Lookup
	clusters map[string]int
}

// TrainOptions configure NER training.
type TrainOptions struct {
	Strategy LabelingStrategy // default StrategyLabelModel
	Epochs   int              // CRF epochs (default 6)
	Clusters map[string]int   // optional embedding cluster feature map
	Seed     int64
}

// Train builds an extractor from raw unlabeled report texts using data
// programming: labeling functions synthesize token labels, then a CRF is
// trained on the synthesized corpus. This reproduces the paper's pipeline:
// no manual annotations are consumed.
func Train(texts []string, opts TrainOptions) (*Extractor, error) {
	if opts.Strategy == "" {
		opts.Strategy = StrategyLabelModel
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 6
	}
	lookup := gazetteer.NewLookup()
	var sents []sentenceTokens
	var docRanges [][2]int // [start, end) sentence indices per document
	for _, text := range texts {
		prot := ioc.Protect(text)
		start := len(sents)
		for _, s := range textproc.SplitSentences(prot.Protected) {
			st := prepareSentence(s.Text, prot, lookup)
			if len(st.toks) > 0 {
				sents = append(sents, st)
			}
		}
		if len(sents) > start {
			docRanges = append(docRanges, [2]int{start, len(sents)})
		}
	}
	if len(sents) == 0 {
		return nil, fmt.Errorf("ner: no sentences in training corpus")
	}
	labels, err := synthesizeLabels(sents, opts.Strategy)
	if err != nil {
		return nil, fmt.Errorf("ner: label synthesis: %w", err)
	}
	// Document-level consistency: an entity mention labeled in one
	// sentence (typically beside a contextual cue) labels identical
	// tokens across the whole document, so the CRF sees the entity in
	// ordinary subject positions too.
	for _, dr := range docRanges {
		propagateDocLabels(sents[dr[0]:dr[1]], labels[dr[0]:dr[1]])
	}
	seqs := make([]crf.Sequence, 0, len(sents))
	for si := range sents {
		seqs = append(seqs, crf.Sequence{
			Features: sents[si].featureMatrix(opts.Clusters),
			Labels:   toBIO(labels[si]),
		})
	}
	model, err := crf.Train(seqs, crf.TrainConfig{Epochs: opts.Epochs, Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("ner: crf training: %w", err)
	}
	return &Extractor{model: model, lookup: lookup, clusters: opts.Clusters}, nil
}

// NewFromModel wraps a pre-trained CRF model into an extractor.
func NewFromModel(m *crf.Model, clusters map[string]int) *Extractor {
	return &Extractor{model: m, lookup: gazetteer.NewLookup(), clusters: clusters}
}

// Model exposes the underlying CRF for persistence.
func (e *Extractor) Model() *crf.Model { return e.model }

// Extract recognizes entities in text: IOCs via the scanner (exact, typed)
// and higher-level entities via the CRF over IOC-protected text.
func (e *Extractor) Extract(text string) []Entity {
	prot := ioc.Protect(text)
	out := iocEntities(prot)
	for _, s := range textproc.SplitSentences(prot.Protected) {
		st := prepareSentence(s.Text, prot, e.lookup)
		if len(st.toks) == 0 {
			continue
		}
		tags := e.model.Decode(st.featureMatrix(e.clusters))
		out = append(out, spansFromBIO(st.toks, tags, prot, "crf")...)
	}
	return dedupeEntities(out)
}

// iocEntities converts protected IOC matches into typed entities.
func iocEntities(prot *ioc.Protection) []Entity {
	var out []Entity
	for _, m := range prot.Matches() {
		out = append(out, Entity{
			Type:   m.Kind.EntityType(),
			Name:   m.Value,
			Source: "ioc",
		})
	}
	return out
}

// spansFromBIO converts a BIO tag sequence over tokens into entities,
// restoring any IOC placeholders inside span text.
func spansFromBIO(toks []textproc.Token, tags []string, prot *ioc.Protection, source string) []Entity {
	var out []Entity
	i := 0
	for i < len(tags) {
		tag := tags[i]
		if !strings.HasPrefix(tag, "B-") {
			i++
			continue
		}
		cls := gazetteer.Class(tag[2:])
		j := i + 1
		for j < len(tags) && tags[j] == "I-"+string(cls) {
			j++
		}
		et, ok := EntityTypeOf(cls)
		if ok {
			words := make([]string, 0, j-i)
			for k := i; k < j; k++ {
				words = append(words, toks[k].Text)
			}
			name := strings.Join(words, " ")
			if prot != nil {
				name = prot.Restore(name)
			}
			out = append(out, Entity{Type: et, Name: name, Source: source})
		}
		i = j
	}
	return out
}

func dedupeEntities(es []Entity) []Entity {
	seen := make(map[string]bool, len(es))
	out := es[:0]
	for _, e := range es {
		k := string(e.Type) + "\x00" + strings.ToLower(e.Name)
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	return out
}

// Baseline is the naive regex/gazetteer entity recognizer the paper
// compares against: exact curated-list matching plus IOC regexes. It has
// no ability to generalize to entities outside the lists.
type Baseline struct {
	lookup *gazetteer.Lookup
}

// NewBaseline builds the baseline recognizer.
func NewBaseline() *Baseline { return &Baseline{lookup: gazetteer.NewLookup()} }

// Extract recognizes only curated names and IOC patterns.
func (b *Baseline) Extract(text string) []Entity {
	prot := ioc.Protect(text)
	out := iocEntities(prot)
	for _, s := range textproc.SplitSentences(prot.Protected) {
		st := prepareSentence(s.Text, prot, b.lookup)
		for i := 0; i < len(st.toks); i++ {
			if !st.gazBegin[i] {
				continue
			}
			cls := st.gazClass[i]
			j := i + 1
			for j < len(st.toks) && st.gazClass[j] == cls && !st.gazBegin[j] {
				j++
			}
			if et, ok := EntityTypeOf(cls); ok {
				words := make([]string, 0, j-i)
				for k := i; k < j; k++ {
					words = append(words, st.toks[k].Text)
				}
				out = append(out, Entity{Type: et, Name: strings.Join(words, " "), Source: "gazetteer"})
			}
			i = j - 1
		}
	}
	return dedupeEntities(out)
}
