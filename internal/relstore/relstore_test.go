package relstore

import (
	"fmt"
	"sync"
	"testing"
)

func newT(t *testing.T) *Store {
	t.Helper()
	s := New()
	if err := s.CreateTable("ents", "type", "name"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateTableValidation(t *testing.T) {
	s := newT(t)
	if err := s.CreateTable("ents", "x"); err == nil {
		t.Error("duplicate table accepted")
	}
	if err := s.CreateTable("empty"); err == nil {
		t.Error("zero-column table accepted")
	}
	if err := s.CreateTable("dup", "a", "a"); err == nil {
		t.Error("duplicate column accepted")
	}
	if got := s.Tables(); len(got) != 1 || got[0] != "ents" {
		t.Errorf("tables: %v", got)
	}
}

func TestInsertSelect(t *testing.T) {
	s := newT(t)
	rows := []Row{
		{"type": "Malware", "name": "WannaCry"},
		{"type": "Malware", "name": "Emotet"},
		{"type": "Tool", "name": "Mimikatz"},
	}
	for _, r := range rows {
		if err := s.Insert("ents", r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Select("ents", Row{"type": "Malware"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("select: %+v", got)
	}
	all, _ := s.Select("ents", nil)
	if len(all) != 3 {
		t.Errorf("select all: %d", len(all))
	}
	none, _ := s.Select("ents", Row{"type": "Nope"})
	if len(none) != 0 {
		t.Errorf("select none: %+v", none)
	}
	if n, _ := s.Count("ents"); n != 3 {
		t.Errorf("count: %d", n)
	}
}

func TestInsertUnknownColumnRejected(t *testing.T) {
	s := newT(t)
	if err := s.Insert("ents", Row{"bogus": "x"}); err == nil {
		t.Error("unknown column accepted")
	}
	if err := s.Insert("missing", Row{"type": "x"}); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestMissingColumnsDefaultEmpty(t *testing.T) {
	s := newT(t)
	s.Insert("ents", Row{"name": "OnlyName"})
	got, _ := s.Select("ents", Row{"type": ""})
	if len(got) != 1 || got[0]["name"] != "OnlyName" {
		t.Errorf("default empty column: %+v", got)
	}
}

func TestIndexedSelectMatchesScan(t *testing.T) {
	s := newT(t)
	for i := 0; i < 200; i++ {
		s.Insert("ents", Row{"type": "T", "name": fmt.Sprintf("n%d", i%50)})
	}
	scan, _ := s.Select("ents", Row{"name": "n7"})
	if err := s.CreateIndex("ents", "name"); err != nil {
		t.Fatal(err)
	}
	idx, _ := s.Select("ents", Row{"name": "n7"})
	if len(scan) != len(idx) || len(idx) != 4 {
		t.Errorf("scan=%d idx=%d want 4", len(scan), len(idx))
	}
	// Index stays current for later inserts.
	s.Insert("ents", Row{"type": "T", "name": "n7"})
	idx2, _ := s.Select("ents", Row{"name": "n7"})
	if len(idx2) != 5 {
		t.Errorf("index stale after insert: %d", len(idx2))
	}
}

func TestIndexErrors(t *testing.T) {
	s := newT(t)
	if err := s.CreateIndex("missing", "x"); err == nil {
		t.Error("index on missing table accepted")
	}
	if err := s.CreateIndex("ents", "bogus"); err == nil {
		t.Error("index on missing column accepted")
	}
}

func TestSelectUnknownWhereColumn(t *testing.T) {
	s := newT(t)
	if _, err := s.Select("ents", Row{"bogus": "x"}); err == nil {
		t.Error("unknown where column accepted")
	}
}

func TestSelectReturnsCopies(t *testing.T) {
	s := newT(t)
	s.Insert("ents", Row{"type": "T", "name": "orig"})
	got, _ := s.Select("ents", nil)
	got[0]["name"] = "mutated"
	again, _ := s.Select("ents", nil)
	if again[0]["name"] != "orig" {
		t.Error("Select exposes internal rows")
	}
}

func TestConcurrentInsertSelect(t *testing.T) {
	s := newT(t)
	s.CreateIndex("ents", "name")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Insert("ents", Row{"type": "T", "name": fmt.Sprintf("w%d-%d", w, i)})
				s.Select("ents", Row{"name": fmt.Sprintf("w%d-%d", w, i/2)})
			}
		}(w)
	}
	wg.Wait()
	if n, _ := s.Count("ents"); n != 400 {
		t.Errorf("concurrent inserts lost rows: %d", n)
	}
}
