// Package relstore is the minimal relational backend behind the pipeline's
// SQL connector: typed tables with named string columns, insertion,
// equality selection, and optional hash indexes. The paper's point is that
// connectors are swappable — users who "care less about multi-hop
// relations" can store the knowledge relationally instead of in Neo4j.
package relstore

import (
	"fmt"
	"sort"
	"sync"
)

// Row is one record keyed by column name.
type Row map[string]string

// Table is a named relation.
type Table struct {
	name    string
	cols    []string
	colSet  map[string]bool
	rows    []Row
	indexes map[string]map[string][]int // col -> value -> row ids
}

// Store is a collection of tables, safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// New creates an empty store.
func New() *Store { return &Store{tables: make(map[string]*Table)} }

// CreateTable defines a new table with the given columns.
func (s *Store) CreateTable(name string, cols ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("relstore: table %q already exists", name)
	}
	if len(cols) == 0 {
		return fmt.Errorf("relstore: table %q needs at least one column", name)
	}
	t := &Table{name: name, cols: append([]string{}, cols...),
		colSet: make(map[string]bool), indexes: make(map[string]map[string][]int)}
	for _, c := range cols {
		if t.colSet[c] {
			return fmt.Errorf("relstore: duplicate column %q", c)
		}
		t.colSet[c] = true
	}
	s.tables[name] = t
	return nil
}

// Tables lists table names, sorted.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CreateIndex builds (or rebuilds) a hash index on one column.
func (s *Store) CreateIndex(table, col string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[table]
	if !ok {
		return fmt.Errorf("relstore: no table %q", table)
	}
	if !t.colSet[col] {
		return fmt.Errorf("relstore: table %q has no column %q", table, col)
	}
	idx := make(map[string][]int)
	for i, r := range t.rows {
		idx[r[col]] = append(idx[r[col]], i)
	}
	t.indexes[col] = idx
	return nil
}

// Insert appends one row. Unknown columns are rejected; missing columns
// default to "".
func (s *Store) Insert(table string, row Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[table]
	if !ok {
		return fmt.Errorf("relstore: no table %q", table)
	}
	for c := range row {
		if !t.colSet[c] {
			return fmt.Errorf("relstore: table %q has no column %q", table, c)
		}
	}
	stored := make(Row, len(t.cols))
	for _, c := range t.cols {
		stored[c] = row[c]
	}
	id := len(t.rows)
	t.rows = append(t.rows, stored)
	for col, idx := range t.indexes {
		idx[stored[col]] = append(idx[stored[col]], id)
	}
	return nil
}

// Select returns rows matching every equality predicate in where (all rows
// when where is empty). Indexed columns accelerate the lookup.
func (s *Store) Select(table string, where Row) ([]Row, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", table)
	}
	for c := range where {
		if !t.colSet[c] {
			return nil, fmt.Errorf("relstore: table %q has no column %q", table, c)
		}
	}
	// Choose the most selective available index.
	candidates := -1
	var rowIDs []int
	for col, val := range where {
		if idx, ok := t.indexes[col]; ok {
			ids := idx[val]
			if candidates < 0 || len(ids) < candidates {
				candidates = len(ids)
				rowIDs = ids
			}
		}
	}
	match := func(r Row) bool {
		for c, v := range where {
			if r[c] != v {
				return false
			}
		}
		return true
	}
	var out []Row
	if candidates >= 0 {
		for _, id := range rowIDs {
			if match(t.rows[id]) {
				out = append(out, copyRow(t.rows[id]))
			}
		}
		return out, nil
	}
	for _, r := range t.rows {
		if match(r) {
			out = append(out, copyRow(r))
		}
	}
	return out, nil
}

// Count returns the number of rows in a table.
func (s *Store) Count(table string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %q", table)
	}
	return len(t.rows), nil
}

func copyRow(r Row) Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}
