package embed

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// topicCorpus builds sentences from two disjoint topics so words within a
// topic co-occur and words across topics never do.
func topicCorpus(n int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	topicA := []string{"malware", "trojan", "payload", "dropper", "infection"}
	topicB := []string{"patch", "update", "mitigation", "advisory", "fix"}
	glue := []string{"the", "a", "was", "is"}
	var out [][]string
	for i := 0; i < n; i++ {
		topic := topicA
		if i%2 == 1 {
			topic = topicB
		}
		var sent []string
		for j := 0; j < 8; j++ {
			if rng.Float64() < 0.25 {
				sent = append(sent, glue[rng.Intn(len(glue))])
			} else {
				sent = append(sent, topic[rng.Intn(len(topic))])
			}
		}
		out = append(out, sent)
	}
	return out
}

func trainTopics(t *testing.T) *Embeddings {
	t.Helper()
	e, err := Train(topicCorpus(600, 1), Config{Dim: 16, Epochs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTrainProducesVectorsForFrequentWords(t *testing.T) {
	e := trainTopics(t)
	for _, w := range []string{"malware", "patch", "the"} {
		v, ok := e.Vector(w)
		if !ok {
			t.Errorf("missing vector for %q", w)
			continue
		}
		if len(v) != 16 {
			t.Errorf("vector dim %d, want 16", len(v))
		}
	}
	if _, ok := e.Vector("neverappears"); ok {
		t.Error("OOV word has a vector")
	}
}

func TestMinCountFiltersRareWords(t *testing.T) {
	sentences := [][]string{
		{"common", "common", "rareword", "common"},
		{"common", "other", "common", "other"},
	}
	e, err := Train(sentences, Config{MinCount: 2, Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Vector("rareword"); ok {
		t.Error("rare word survived MinCount")
	}
	if _, ok := e.Vector("common"); !ok {
		t.Error("frequent word dropped")
	}
}

func TestTrainErrorsOnTinyVocab(t *testing.T) {
	if _, err := Train([][]string{{"only"}}, Config{}); err == nil {
		t.Error("tiny vocabulary should error")
	}
	if _, err := Train(nil, Config{}); err == nil {
		t.Error("empty corpus should error")
	}
}

func TestTopicWordsCloserWithinThanAcross(t *testing.T) {
	e := trainTopics(t)
	within := e.Similarity("malware", "trojan")
	across := e.Similarity("malware", "patch")
	if within <= across {
		t.Errorf("within-topic similarity %.3f should exceed across-topic %.3f",
			within, across)
	}
	within2 := e.Similarity("patch", "update")
	across2 := e.Similarity("update", "dropper")
	if within2 <= across2 {
		t.Errorf("topic B: within %.3f vs across %.3f", within2, across2)
	}
}

func TestSimilarityOOVIsZero(t *testing.T) {
	e := trainTopics(t)
	if s := e.Similarity("malware", "zzz"); s != 0 {
		t.Errorf("OOV similarity = %f", s)
	}
}

func TestNearestReturnsTopicSiblings(t *testing.T) {
	e := trainTopics(t)
	near := e.Nearest("trojan", 3)
	if len(near) != 3 {
		t.Fatalf("nearest: %v", near)
	}
	topicA := map[string]bool{"malware": true, "payload": true, "dropper": true, "infection": true}
	hits := 0
	for _, w := range near {
		if topicA[w] {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("nearest(trojan) should be mostly topic A words: %v", near)
	}
}

func TestNearestOOVAndExcessK(t *testing.T) {
	e := trainTopics(t)
	if got := e.Nearest("zzz", 5); got != nil {
		t.Errorf("OOV nearest: %v", got)
	}
	all := e.Nearest("malware", 10000)
	if len(all) != e.Len()-1 {
		t.Errorf("excess k should clamp to vocab-1: %d vs %d", len(all), e.Len()-1)
	}
}

func TestClustersSeparateTopics(t *testing.T) {
	e := trainTopics(t)
	clusters := e.Clusters(2, 30, 1)
	// All topic-A content words should share a cluster distinct from B's
	// majority cluster.
	count := map[int]int{}
	for _, w := range []string{"malware", "trojan", "payload", "dropper"} {
		count[clusters[w]]++
	}
	maxA, clA := 0, 0
	for c, n := range count {
		if n > maxA {
			maxA, clA = n, c
		}
	}
	if maxA < 3 {
		t.Errorf("topic A words scattered across clusters: %v", count)
	}
	countB := map[int]int{}
	for _, w := range []string{"patch", "update", "mitigation", "advisory"} {
		countB[clusters[w]]++
	}
	maxB, clB := 0, 0
	for c, n := range countB {
		if n > maxB {
			maxB, clB = n, c
		}
	}
	if maxB >= 3 && clA == clB {
		t.Errorf("topics share the dominant cluster %d", clA)
	}
}

func TestClustersEdgeCases(t *testing.T) {
	e := trainTopics(t)
	if got := e.Clusters(0, 5, 1); len(got) != 0 {
		t.Error("k=0 should return empty map")
	}
	big := e.Clusters(10000, 5, 1)
	if len(big) != e.Len() {
		t.Errorf("k>vocab should still assign all words: %d", len(big))
	}
	for _, c := range big {
		if c < 0 || c >= e.Len() {
			t.Errorf("cluster id out of range: %d", c)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	corpus := topicCorpus(200, 3)
	e1, _ := Train(corpus, Config{Dim: 8, Seed: 99})
	e2, _ := Train(corpus, Config{Dim: 8, Seed: 99})
	v1, _ := e1.Vector("malware")
	v2, _ := e2.Vector("malware")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("same seed produced different vectors")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := trainTopics(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Len() != e.Len() || e2.Dim() != e.Dim() {
		t.Fatalf("shape mismatch after load")
	}
	for _, w := range []string{"malware", "patch"} {
		v1, _ := e.Vector(w)
		v2, ok := e2.Vector(w)
		if !ok {
			t.Fatalf("lost word %q", w)
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("vector changed for %q", w)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString(`{"magic":"x"}`)); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"magic":"securitykg-emb-v1","dim":2,"words":["a"],"vecs":[]}`)); err == nil {
		t.Error("corrupt shape accepted")
	}
}

func TestWordsSortedStable(t *testing.T) {
	e := trainTopics(t)
	ws := e.Words()
	for i := 1; i < len(ws); i++ {
		if ws[i-1] >= ws[i] {
			t.Fatalf("vocabulary not sorted at %d: %q >= %q", i, ws[i-1], ws[i])
		}
	}
	_ = fmt.Sprint(ws)
}
