// Package embed trains compact word embeddings with skip-gram negative
// sampling (Mikolov et al., NeurIPS 2013) on the collected OSCTI corpus.
// The paper lists word embeddings among the CRF's features; here the
// vectors are discretized into k-means cluster ids so the CRF's sparse
// string-feature interface can consume them ("emb_cluster=17").
package embed

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
)

// Config controls SGNS training.
type Config struct {
	Dim          int     // vector dimension (default 32)
	Window       int     // context window half-size (default 4)
	NegSamples   int     // negatives per positive (default 5)
	Epochs       int     // passes over the corpus (default 3)
	LearningRate float64 // initial step (default 0.025)
	MinCount     int     // drop words rarer than this (default 2)
	Seed         int64   // RNG seed (default 1)
}

func (c *Config) defaults() {
	if c.Dim <= 0 {
		c.Dim = 32
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.NegSamples <= 0 {
		c.NegSamples = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.025
	}
	if c.MinCount <= 0 {
		c.MinCount = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Embeddings holds trained word vectors.
type Embeddings struct {
	dim   int
	words []string
	idx   map[string]int
	vecs  [][]float32
}

// Dim returns the vector dimensionality.
func (e *Embeddings) Dim() int { return e.dim }

// Len returns the vocabulary size.
func (e *Embeddings) Len() int { return len(e.words) }

// Words returns the vocabulary in index order.
func (e *Embeddings) Words() []string {
	out := make([]string, len(e.words))
	copy(out, e.words)
	return out
}

// Vector returns the embedding for a word.
func (e *Embeddings) Vector(word string) ([]float32, bool) {
	i, ok := e.idx[word]
	if !ok {
		return nil, false
	}
	return e.vecs[i], true
}

// Train fits embeddings on tokenized sentences.
func Train(sentences [][]string, cfg Config) (*Embeddings, error) {
	cfg.defaults()
	counts := map[string]int{}
	for _, s := range sentences {
		for _, w := range s {
			counts[w]++
		}
	}
	var vocab []string
	for w, c := range counts {
		if c >= cfg.MinCount {
			vocab = append(vocab, w)
		}
	}
	if len(vocab) < 2 {
		return nil, errors.New("embed: vocabulary too small (check MinCount)")
	}
	sort.Strings(vocab)
	idx := make(map[string]int, len(vocab))
	for i, w := range vocab {
		idx[w] = i
	}

	// Unigram^0.75 negative-sampling table.
	table := buildNegTable(vocab, counts, 1<<17)

	rng := rand.New(rand.NewSource(cfg.Seed))
	V, D := len(vocab), cfg.Dim
	in := make([][]float32, V)  // input vectors (the result)
	out := make([][]float32, V) // output/context vectors
	for i := 0; i < V; i++ {
		in[i] = make([]float32, D)
		out[i] = make([]float32, D)
		for d := 0; d < D; d++ {
			in[i][d] = (rng.Float32() - 0.5) / float32(D)
		}
	}

	// Pre-encode sentences as vocab ids.
	var encoded [][]int
	for _, s := range sentences {
		var enc []int
		for _, w := range s {
			if i, ok := idx[w]; ok {
				enc = append(enc, i)
			}
		}
		if len(enc) > 1 {
			encoded = append(encoded, enc)
		}
	}
	if len(encoded) == 0 {
		return nil, errors.New("embed: no trainable sentences after vocabulary filtering")
	}

	lr := float32(cfg.LearningRate)
	grad := make([]float32, D)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, sent := range encoded {
			for pos, w := range sent {
				win := 1 + rng.Intn(cfg.Window)
				for off := -win; off <= win; off++ {
					if off == 0 {
						continue
					}
					cpos := pos + off
					if cpos < 0 || cpos >= len(sent) {
						continue
					}
					ctx := sent[cpos]
					// One positive + k negative updates on (w -> ctx).
					for d := 0; d < D; d++ {
						grad[d] = 0
					}
					train1(in[w], out[ctx], 1, lr, grad)
					for k := 0; k < cfg.NegSamples; k++ {
						neg := table[rng.Intn(len(table))]
						if neg == ctx {
							continue
						}
						train1(in[w], out[neg], 0, lr, grad)
					}
					for d := 0; d < D; d++ {
						in[w][d] += grad[d]
					}
				}
			}
		}
		lr *= 0.7 // simple decay per epoch
	}
	return &Embeddings{dim: D, words: vocab, idx: idx, vecs: in}, nil
}

// train1 applies one logistic SGNS update for pair (in, out) with the given
// binary label, accumulating the input-vector gradient into grad and
// updating the output vector in place.
func train1(inV, outV []float32, label float32, lr float32, grad []float32) {
	var dot float32
	for d := range inV {
		dot += inV[d] * outV[d]
	}
	pred := float32(1 / (1 + math.Exp(-float64(dot))))
	g := lr * (label - pred)
	for d := range inV {
		grad[d] += g * outV[d]
		outV[d] += g * inV[d]
	}
}

func buildNegTable(vocab []string, counts map[string]int, size int) []int {
	weights := make([]float64, len(vocab))
	var total float64
	for i, w := range vocab {
		weights[i] = math.Pow(float64(counts[w]), 0.75)
		total += weights[i]
	}
	table := make([]int, 0, size)
	for i := range vocab {
		n := int(weights[i] / total * float64(size))
		if n < 1 {
			n = 1
		}
		for j := 0; j < n; j++ {
			table = append(table, i)
		}
	}
	return table
}

// Similarity returns the cosine similarity of two words' vectors, or 0
// when either is out of vocabulary.
func (e *Embeddings) Similarity(a, b string) float64 {
	va, ok := e.Vector(a)
	if !ok {
		return 0
	}
	vb, ok := e.Vector(b)
	if !ok {
		return 0
	}
	return cosine(va, vb)
}

func cosine(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Nearest returns the k vocabulary words most similar to word (excluding
// itself), most similar first.
func (e *Embeddings) Nearest(word string, k int) []string {
	v, ok := e.Vector(word)
	if !ok {
		return nil
	}
	type scored struct {
		w string
		s float64
	}
	var all []scored
	for i, w := range e.words {
		if w == word {
			continue
		}
		all = append(all, scored{w, cosine(v, e.vecs[i])})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].w < all[j].w
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].w
	}
	return out
}

// Clusters assigns every vocabulary word to one of k clusters via k-means
// (deterministic for a seed). The returned map is suitable for CRF features
// like "emb=<cluster id>".
func (e *Embeddings) Clusters(k int, iters int, seed int64) map[string]int {
	if k <= 0 || len(e.words) == 0 {
		return map[string]int{}
	}
	if k > len(e.words) {
		k = len(e.words)
	}
	if iters <= 0 {
		iters = 15
	}
	rng := rand.New(rand.NewSource(seed))
	D := e.dim
	// k-means++ style init: random distinct points.
	perm := rng.Perm(len(e.words))
	centers := make([][]float64, k)
	for c := 0; c < k; c++ {
		centers[c] = make([]float64, D)
		for d := 0; d < D; d++ {
			centers[c][d] = float64(e.vecs[perm[c]][d])
		}
	}
	assign := make([]int, len(e.words))
	for it := 0; it < iters; it++ {
		changed := false
		for i := range e.words {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				var dist float64
				for d := 0; d < D; d++ {
					diff := float64(e.vecs[i][d]) - centers[c][d]
					dist += diff * diff
				}
				if dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centers.
		count := make([]int, k)
		for c := range centers {
			for d := 0; d < D; d++ {
				centers[c][d] = 0
			}
		}
		for i, c := range assign {
			count[c]++
			for d := 0; d < D; d++ {
				centers[c][d] += float64(e.vecs[i][d])
			}
		}
		for c := 0; c < k; c++ {
			if count[c] == 0 {
				continue
			}
			for d := 0; d < D; d++ {
				centers[c][d] /= float64(count[c])
			}
		}
		if !changed {
			break
		}
	}
	out := make(map[string]int, len(e.words))
	for i, w := range e.words {
		out[w] = assign[i]
	}
	return out
}

// --- persistence ---

type persistEmb struct {
	Magic string      `json:"magic"`
	Dim   int         `json:"dim"`
	Words []string    `json:"words"`
	Vecs  [][]float32 `json:"vecs"`
}

const embMagic = "securitykg-emb-v1"

// Save serializes the embeddings as JSON.
func (e *Embeddings) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	err := json.NewEncoder(bw).Encode(persistEmb{
		Magic: embMagic, Dim: e.dim, Words: e.words, Vecs: e.vecs,
	})
	if err != nil {
		return fmt.Errorf("embed: save: %w", err)
	}
	return bw.Flush()
}

// Load reads embeddings written by Save.
func Load(r io.Reader) (*Embeddings, error) {
	var p persistEmb
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&p); err != nil {
		return nil, fmt.Errorf("embed: load: %w", err)
	}
	if p.Magic != embMagic {
		return nil, errors.New("embed: not a securitykg embeddings file")
	}
	if len(p.Words) != len(p.Vecs) {
		return nil, errors.New("embed: corrupt embeddings file")
	}
	e := &Embeddings{dim: p.Dim, words: p.Words, vecs: p.Vecs,
		idx: make(map[string]int, len(p.Words))}
	for i, w := range p.Words {
		e.idx[w] = i
	}
	return e, nil
}
