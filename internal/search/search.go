// Package search implements the keyword-search substrate that plays the
// role Elasticsearch plays in the paper's UI: an in-memory inverted index
// with BM25 ranking, per-field boosts, and incremental add/remove. The
// demo's "wannacry" and "cozyduke" keyword scenarios run on this index.
package search

import (
	"math"
	"sort"
	"strings"
	"sync"

	"securitykg/internal/textproc"
)

// Document is one indexable item: an opaque ID plus named text fields.
type Document struct {
	ID     string
	Fields map[string]string
}

// Hit is one ranked search result.
type Hit struct {
	ID    string
	Score float64
}

// bm25 parameters (standard defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

type posting struct {
	doc string
	tf  float64 // boost-weighted term frequency
}

// Index is a thread-safe inverted index with BM25 scoring.
type Index struct {
	mu       sync.RWMutex
	boosts   map[string]float64 // field -> boost (default 1.0)
	postings map[string][]posting
	docLen   map[string]float64 // boost-weighted token count per doc
	totalLen float64
	docs     int
	// terms per doc kept for removal.
	docTerms map[string]map[string]float64
}

// NewIndex creates an index. boosts maps field names to score multipliers;
// unlisted fields get boost 1.0. Pass nil for uniform weighting.
func NewIndex(boosts map[string]float64) *Index {
	b := make(map[string]float64, len(boosts))
	for k, v := range boosts {
		b[k] = v
	}
	return &Index{
		boosts:   b,
		postings: make(map[string][]posting),
		docLen:   make(map[string]float64),
		docTerms: make(map[string]map[string]float64),
	}
}

// analyze converts text to normalized index terms: lowercase lemmas with
// stopwords and pure punctuation removed.
func analyze(text string) []string {
	toks := textproc.Tokenize(text)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.IsPunct() {
			continue
		}
		w := strings.ToLower(t.Text)
		if textproc.Stopwords[w] || len(w) == 0 {
			continue
		}
		lem := textproc.Lemma(w, "")
		if lem == "" {
			lem = w
		}
		out = append(out, lem)
	}
	return out
}

// Add indexes a document, replacing any previous document with the same ID.
func (ix *Index) Add(doc Document) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docTerms[doc.ID]; ok {
		ix.removeLocked(doc.ID)
	}
	terms := make(map[string]float64)
	var dlen float64
	for field, text := range doc.Fields {
		boost := 1.0
		if b, ok := ix.boosts[field]; ok {
			boost = b
		}
		for _, term := range analyze(text) {
			terms[term] += boost
			dlen += boost
		}
	}
	if len(terms) == 0 {
		// Still track the doc so Len and replacement semantics hold.
		ix.docTerms[doc.ID] = terms
		ix.docLen[doc.ID] = 0
		ix.docs++
		return
	}
	for term, tf := range terms {
		ix.postings[term] = append(ix.postings[term], posting{doc: doc.ID, tf: tf})
	}
	ix.docTerms[doc.ID] = terms
	ix.docLen[doc.ID] = dlen
	ix.totalLen += dlen
	ix.docs++
}

// Remove deletes a document from the index. Unknown IDs are a no-op.
func (ix *Index) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
}

func (ix *Index) removeLocked(id string) {
	terms, ok := ix.docTerms[id]
	if !ok {
		return
	}
	for term := range terms {
		ps := ix.postings[term]
		for i, p := range ps {
			if p.doc == id {
				ix.postings[term] = append(ps[:i], ps[i+1:]...)
				break
			}
		}
		if len(ix.postings[term]) == 0 {
			delete(ix.postings, term)
		}
	}
	ix.totalLen -= ix.docLen[id]
	delete(ix.docLen, id)
	delete(ix.docTerms, id)
	ix.docs--
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docs
}

// Search runs a BM25-ranked keyword query and returns the top k hits
// (all hits if k <= 0). Ties break by document ID for determinism.
func (ix *Index) Search(query string, k int) []Hit {
	terms := analyze(query)
	if len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.docs == 0 {
		return nil
	}
	avgLen := ix.totalLen / float64(ix.docs)
	if avgLen == 0 {
		return nil
	}
	scores := make(map[string]float64)
	for _, term := range terms {
		ps := ix.postings[term]
		if len(ps) == 0 {
			continue
		}
		idf := math.Log(1 + (float64(ix.docs)-float64(len(ps))+0.5)/(float64(len(ps))+0.5))
		for _, p := range ps {
			dl := ix.docLen[p.doc]
			denom := p.tf + bm25K1*(1-bm25B+bm25B*dl/avgLen)
			scores[p.doc] += idf * (p.tf * (bm25K1 + 1)) / denom
		}
	}
	hits := make([]Hit, 0, len(scores))
	for id, sc := range scores {
		hits = append(hits, Hit{ID: id, Score: sc})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}
