package search

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func doc(id string, title, body string) Document {
	return Document{ID: id, Fields: map[string]string{"title": title, "body": body}}
}

func TestSearchBasicRelevance(t *testing.T) {
	ix := NewIndex(nil)
	ix.Add(doc("r1", "WannaCry ransomware analysis", "The WannaCry worm encrypts files and spreads via SMB."))
	ix.Add(doc("r2", "CozyDuke threat actor profile", "CozyDuke uses spearphishing against government targets."))
	ix.Add(doc("r3", "Generic malware trends", "Many families emerged this quarter."))

	hits := ix.Search("wannacry", 10)
	if len(hits) != 1 || hits[0].ID != "r1" {
		t.Fatalf("wannacry hits: %+v", hits)
	}
	hits = ix.Search("cozyduke", 10)
	if len(hits) != 1 || hits[0].ID != "r2" {
		t.Fatalf("cozyduke hits: %+v", hits)
	}
}

func TestSearchRanksFrequencyAndRarity(t *testing.T) {
	ix := NewIndex(nil)
	ix.Add(doc("heavy", "ransomware ransomware ransomware", "ransomware everywhere ransomware"))
	ix.Add(doc("light", "ransomware mention", "one occurrence only"))
	for i := 0; i < 20; i++ {
		ix.Add(doc(fmt.Sprintf("noise%d", i), "unrelated report", "nothing to see here at all"))
	}
	hits := ix.Search("ransomware", 10)
	if len(hits) != 2 {
		t.Fatalf("hits: %+v", hits)
	}
	if hits[0].ID != "heavy" {
		t.Errorf("tf should rank heavy first: %+v", hits)
	}
	// A rare term outscores a common one for the same doc set.
	ix.Add(doc("mix", "ransomware report", "mentions the rare word exfiltration"))
	rare := ix.Search("exfiltration", 10)
	if len(rare) != 1 || rare[0].ID != "mix" {
		t.Fatalf("rare term: %+v", rare)
	}
}

func TestFieldBoosts(t *testing.T) {
	ix := NewIndex(map[string]float64{"title": 3.0})
	ix.Add(doc("title-hit", "emotet campaign", "body without the term of interest here"))
	ix.Add(doc("body-hit", "unrelated heading", "emotet appears in the body text only"))
	hits := ix.Search("emotet", 10)
	if len(hits) != 2 {
		t.Fatalf("hits: %+v", hits)
	}
	if hits[0].ID != "title-hit" {
		t.Errorf("title boost should rank title-hit first: %+v", hits)
	}
}

func TestSearchMultiTermAccumulates(t *testing.T) {
	ix := NewIndex(nil)
	ix.Add(doc("both", "trojan downloader", "connects and downloads payloads"))
	ix.Add(doc("one", "trojan only", "no second keyword"))
	hits := ix.Search("trojan downloader", 10)
	if len(hits) != 2 || hits[0].ID != "both" {
		t.Fatalf("multi-term ranking: %+v", hits)
	}
}

func TestSearchLemmaNormalization(t *testing.T) {
	ix := NewIndex(nil)
	ix.Add(doc("d", "encrypted files", "the malware encrypts documents"))
	for _, q := range []string{"encrypt", "encrypts", "file", "files"} {
		if hits := ix.Search(q, 10); len(hits) != 1 {
			t.Errorf("query %q missed: %+v", q, hits)
		}
	}
}

func TestSearchStopwordsIgnored(t *testing.T) {
	ix := NewIndex(nil)
	ix.Add(doc("d", "a report", "the and of with"))
	if hits := ix.Search("the and of", 10); len(hits) != 0 {
		t.Errorf("stopword-only query should return nothing: %+v", hits)
	}
}

func TestAddReplacesExistingDoc(t *testing.T) {
	ix := NewIndex(nil)
	ix.Add(doc("d", "old topic alpha", ""))
	ix.Add(doc("d", "new topic beta", ""))
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	if hits := ix.Search("alpha", 10); len(hits) != 0 {
		t.Errorf("stale terms remain: %+v", hits)
	}
	if hits := ix.Search("beta", 10); len(hits) != 1 {
		t.Errorf("replacement not indexed: %+v", hits)
	}
}

func TestRemove(t *testing.T) {
	ix := NewIndex(nil)
	ix.Add(doc("a", "needle report", ""))
	ix.Add(doc("b", "needle report too", ""))
	ix.Remove("a")
	if ix.Len() != 1 {
		t.Fatalf("Len after remove = %d", ix.Len())
	}
	hits := ix.Search("needle", 10)
	if len(hits) != 1 || hits[0].ID != "b" {
		t.Errorf("post-remove hits: %+v", hits)
	}
	ix.Remove("missing") // no-op
	if ix.Len() != 1 {
		t.Errorf("removing unknown changed Len")
	}
}

func TestSearchTopK(t *testing.T) {
	ix := NewIndex(nil)
	for i := 0; i < 25; i++ {
		ix.Add(doc(fmt.Sprintf("d%02d", i), "botnet report", "botnet activity"))
	}
	hits := ix.Search("botnet", 5)
	if len(hits) != 5 {
		t.Errorf("top-k: %d hits", len(hits))
	}
	all := ix.Search("botnet", 0)
	if len(all) != 25 {
		t.Errorf("k<=0 should return all: %d", len(all))
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	ix := NewIndex(nil)
	ix.Add(doc("b", "same text here", ""))
	ix.Add(doc("a", "same text here", ""))
	hits := ix.Search("same text", 10)
	if len(hits) != 2 || hits[0].ID != "a" {
		t.Errorf("tie break should be by ID: %+v", hits)
	}
}

func TestEmptyIndexAndEmptyQuery(t *testing.T) {
	ix := NewIndex(nil)
	if hits := ix.Search("anything", 10); hits != nil {
		t.Errorf("empty index returned hits: %+v", hits)
	}
	ix.Add(doc("d", "content here", ""))
	if hits := ix.Search("", 10); hits != nil {
		t.Errorf("empty query returned hits: %+v", hits)
	}
	if hits := ix.Search("...", 10); hits != nil {
		t.Errorf("punctuation query returned hits: %+v", hits)
	}
}

func TestEmptyFieldsDocCounted(t *testing.T) {
	ix := NewIndex(nil)
	ix.Add(Document{ID: "empty", Fields: map[string]string{}})
	if ix.Len() != 1 {
		t.Errorf("empty doc not tracked")
	}
	ix.Remove("empty")
	if ix.Len() != 0 {
		t.Errorf("empty doc not removable")
	}
}

func TestConcurrentAddSearch(t *testing.T) {
	ix := NewIndex(nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ix.Add(doc(fmt.Sprintf("w%d-%d", w, i), "phishing campaign", "details"))
				ix.Search("phishing", 5)
			}
		}(w)
	}
	wg.Wait()
	if ix.Len() != 400 {
		t.Errorf("concurrent adds lost docs: %d", ix.Len())
	}
}

// Property: add then remove returns the index to its previous state
// (query results unaffected).
func TestAddRemoveInverseQuick(t *testing.T) {
	ix := NewIndex(nil)
	ix.Add(doc("base", "stable anchor document", "anchor content"))
	f := func(n uint8) bool {
		id := fmt.Sprintf("tmp%d", n)
		ix.Add(doc(id, "anchor transient", "text"))
		ix.Remove(id)
		hits := ix.Search("anchor", 10)
		return len(hits) == 1 && hits[0].ID == "base"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: scores are non-increasing in rank order.
func TestScoresMonotonicQuick(t *testing.T) {
	ix := NewIndex(nil)
	words := []string{"trojan", "worm", "dropper", "loader", "stealer"}
	for i := 0; i < 40; i++ {
		ix.Add(doc(fmt.Sprintf("d%d", i),
			words[i%len(words)]+" report",
			fmt.Sprintf("%s %s activity", words[i%len(words)], words[(i+1)%len(words)])))
	}
	f := func(qi uint8) bool {
		hits := ix.Search(words[int(qi)%len(words)], 0)
		for i := 1; i < len(hits); i++ {
			if hits[i].Score > hits[i-1].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
