// Package pdf implements the minimal PDF substrate the pipeline needs:
// a writer that renders plain text into valid single- or multi-page PDF
// 1.4 files (used by the synthetic OSCTI web for PDF report sources) and
// a text extractor that recovers the text from such files (used by the
// PDF porter). Content streams are uncompressed; the extractor handles
// BT/ET text objects with Tj and TJ operators and escape sequences.
package pdf

import (
	"fmt"
	"strings"
)

// Generate renders lines of text into a PDF document. Lines are wrapped
// naively at maxLineLen characters; pages break every linesPerPage lines.
func Generate(title string, paragraphs []string) []byte {
	const (
		maxLineLen   = 90
		linesPerPage = 48
	)
	var lines []string
	if title != "" {
		lines = append(lines, title, "")
	}
	for _, p := range paragraphs {
		lines = append(lines, wrap(p, maxLineLen)...)
		lines = append(lines, "")
	}
	var pages [][]string
	for i := 0; i < len(lines); i += linesPerPage {
		end := i + linesPerPage
		if end > len(lines) {
			end = len(lines)
		}
		pages = append(pages, lines[i:end])
	}
	if len(pages) == 0 {
		pages = [][]string{{""}}
	}
	return build(pages)
}

func wrap(s string, width int) []string {
	words := strings.Fields(s)
	var out []string
	var cur strings.Builder
	for _, w := range words {
		if cur.Len() > 0 && cur.Len()+1+len(w) > width {
			out = append(out, cur.String())
			cur.Reset()
		}
		if cur.Len() > 0 {
			cur.WriteByte(' ')
		}
		cur.WriteString(w)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	if len(out) == 0 {
		out = []string{""}
	}
	return out
}

// build assembles the PDF object graph: catalog(1) -> pages(2) -> page(i)
// with font(3) and one content stream per page.
func build(pages [][]string) []byte {
	var objs []string // 1-indexed object bodies

	nPages := len(pages)
	pageFirst := 4 // object ids: 1 catalog, 2 pages, 3 font, then page+content pairs
	var kids []string
	for i := 0; i < nPages; i++ {
		kids = append(kids, fmt.Sprintf("%d 0 R", pageFirst+2*i))
	}
	objs = append(objs, "<< /Type /Catalog /Pages 2 0 R >>")
	objs = append(objs, fmt.Sprintf("<< /Type /Pages /Kids [%s] /Count %d >>",
		strings.Join(kids, " "), nPages))
	objs = append(objs, "<< /Type /Font /Subtype /Type1 /BaseFont /Helvetica >>")

	for i, lines := range pages {
		pageID := pageFirst + 2*i
		contentID := pageID + 1
		objs = append(objs, fmt.Sprintf(
			"<< /Type /Page /Parent 2 0 R /MediaBox [0 0 612 792] /Contents %d 0 R /Resources << /Font << /F1 3 0 R >> >> >>",
			contentID))
		stream := contentStream(lines)
		objs = append(objs, fmt.Sprintf("<< /Length %d >>\nstream\n%s\nendstream", len(stream), stream))
	}

	var b strings.Builder
	b.WriteString("%PDF-1.4\n")
	offsets := make([]int, len(objs)+1)
	for i, body := range objs {
		offsets[i+1] = b.Len()
		fmt.Fprintf(&b, "%d 0 obj\n%s\nendobj\n", i+1, body)
	}
	xref := b.Len()
	fmt.Fprintf(&b, "xref\n0 %d\n", len(objs)+1)
	b.WriteString("0000000000 65535 f \n")
	for i := 1; i <= len(objs); i++ {
		fmt.Fprintf(&b, "%010d 00000 n \n", offsets[i])
	}
	fmt.Fprintf(&b, "trailer\n<< /Size %d /Root 1 0 R >>\nstartxref\n%d\n%%%%EOF\n",
		len(objs)+1, xref)
	return []byte(b.String())
}

func contentStream(lines []string) string {
	var b strings.Builder
	b.WriteString("BT\n/F1 11 Tf\n72 740 Td\n14 TL\n")
	for i, line := range lines {
		if i > 0 {
			b.WriteString("T*\n")
		}
		fmt.Fprintf(&b, "(%s) Tj\n", escape(line))
	}
	b.WriteString("ET")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `(`, `\(`, `)`, `\)`)
	return r.Replace(s)
}

// IsPDF reports whether the bytes look like a PDF document.
func IsPDF(b []byte) bool {
	return len(b) >= 5 && string(b[:5]) == "%PDF-"
}

// ExtractText recovers the text content of a PDF produced with
// uncompressed content streams. Text strings inside BT/ET blocks are
// joined; line operators (T*, Td, TD) become newlines.
func ExtractText(data []byte) (string, error) {
	if !IsPDF(data) {
		return "", fmt.Errorf("pdf: not a PDF document")
	}
	s := string(data)
	var out strings.Builder
	for {
		i := strings.Index(s, "stream")
		if i < 0 {
			break
		}
		rest := s[i+len("stream"):]
		rest = strings.TrimPrefix(rest, "\r\n")
		rest = strings.TrimPrefix(rest, "\n")
		j := strings.Index(rest, "endstream")
		if j < 0 {
			break
		}
		extractFromStream(rest[:j], &out)
		s = rest[j+len("endstream"):]
	}
	return strings.TrimSpace(out.String()), nil
}

// extractFromStream walks one content stream, appending text.
func extractFromStream(stream string, out *strings.Builder) {
	inText := false
	i := 0
	n := len(stream)
	lastWasText := false
	for i < n {
		switch {
		case !inText:
			if strings.HasPrefix(stream[i:], "BT") {
				inText = true
				i += 2
			} else {
				i++
			}
		case strings.HasPrefix(stream[i:], "ET"):
			inText = false
			if lastWasText {
				out.WriteByte('\n')
			}
			i += 2
		case stream[i] == '(':
			str, next := parseString(stream, i)
			out.WriteString(str)
			lastWasText = true
			i = next
		case strings.HasPrefix(stream[i:], "T*"),
			strings.HasPrefix(stream[i:], "Td"),
			strings.HasPrefix(stream[i:], "TD"):
			if lastWasText {
				out.WriteByte('\n')
				lastWasText = false
			}
			i += 2
		case strings.HasPrefix(stream[i:], "TJ"):
			// Array form already emitted its strings; treat as spacing.
			i += 2
		default:
			i++
		}
	}
}

// parseString reads a PDF literal string starting at '(' and returns the
// unescaped content and the index after the closing ')'.
func parseString(s string, start int) (string, int) {
	var b strings.Builder
	depth := 0
	i := start
	for i < len(s) {
		c := s[i]
		switch c {
		case '\\':
			if i+1 < len(s) {
				next := s[i+1]
				switch next {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case 'r':
					b.WriteByte('\r')
				case '(', ')', '\\':
					b.WriteByte(next)
				default:
					b.WriteByte(next)
				}
				i += 2
				continue
			}
			i++
		case '(':
			depth++
			if depth > 1 {
				b.WriteByte('(')
			}
			i++
		case ')':
			depth--
			if depth == 0 {
				return b.String(), i + 1
			}
			b.WriteByte(')')
			i++
		default:
			b.WriteByte(c)
			i++
		}
	}
	return b.String(), i
}
