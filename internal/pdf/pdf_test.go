package pdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateProducesValidHeaderAndTrailer(t *testing.T) {
	b := Generate("Title Here", []string{"Body paragraph one.", "Second paragraph."})
	if !IsPDF(b) {
		t.Fatal("missing %PDF header")
	}
	s := string(b)
	for _, marker := range []string{"xref", "trailer", "startxref", "%%EOF", "/Type /Catalog", "/Type /Page"} {
		if !strings.Contains(s, marker) {
			t.Errorf("missing %q", marker)
		}
	}
}

func TestRoundTripSimpleText(t *testing.T) {
	paras := []string{
		"The WannaCry ransomware encrypts files.",
		"It connects to 10.1.2.3 for command and control.",
	}
	b := Generate("WannaCry Report", paras)
	text, err := ExtractText(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "WannaCry Report") {
		t.Errorf("title lost: %q", text)
	}
	for _, p := range paras {
		for _, word := range strings.Fields(p) {
			if !strings.Contains(text, word) {
				t.Errorf("word %q lost in round trip", word)
			}
		}
	}
}

func TestRoundTripEscapedCharacters(t *testing.T) {
	paras := []string{`Path (quoted) with \backslash and (nested (parens))`}
	b := Generate("", paras)
	text, err := ExtractText(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"(quoted)", `\backslash`, "(nested (parens))"} {
		if !strings.Contains(text, frag) {
			t.Errorf("escaped fragment %q lost: %q", frag, text)
		}
	}
}

func TestMultiPageGeneration(t *testing.T) {
	var paras []string
	for i := 0; i < 80; i++ {
		paras = append(paras, "This is a sufficiently long paragraph used to force pagination across pages of the document.")
	}
	b := Generate("Long Report", paras)
	s := string(b)
	if strings.Count(s, "/Type /Page ") < 2 {
		t.Errorf("expected multiple pages, got %d", strings.Count(s, "/Type /Page "))
	}
	text, err := ExtractText(b)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(text, "pagination") != 80 {
		t.Errorf("lost paragraphs across pages: %d/80", strings.Count(text, "pagination"))
	}
}

func TestLineWrapping(t *testing.T) {
	long := strings.Repeat("word ", 60)
	b := Generate("", []string{long})
	text, err := ExtractText(b)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(text, "word") != 60 {
		t.Errorf("wrapping lost words: %d", strings.Count(text, "word"))
	}
}

func TestExtractRejectsNonPDF(t *testing.T) {
	if _, err := ExtractText([]byte("<html>not a pdf</html>")); err == nil {
		t.Error("non-PDF accepted")
	}
	if IsPDF([]byte("PK\x03\x04")) {
		t.Error("zip magic detected as PDF")
	}
}

func TestEmptyInput(t *testing.T) {
	b := Generate("", nil)
	if !IsPDF(b) {
		t.Fatal("empty doc should still be a valid PDF")
	}
	if _, err := ExtractText(b); err != nil {
		t.Errorf("empty doc extract: %v", err)
	}
}

// Property: every alphanumeric word survives the write/extract round trip.
func TestRoundTripQuick(t *testing.T) {
	words := []string{"malware", "ransomware", "connects", "10.0.0.1",
		"payload.exe", "CVE-2021-1234", "registry", "persistence"}
	f := func(idx []uint8) bool {
		if len(idx) == 0 {
			return true
		}
		var sb strings.Builder
		for _, i := range idx {
			sb.WriteString(words[int(i)%len(words)])
			sb.WriteByte(' ')
		}
		para := strings.TrimSpace(sb.String())
		text, err := ExtractText(Generate("T", []string{para}))
		if err != nil {
			return false
		}
		for _, w := range strings.Fields(para) {
			if !strings.Contains(text, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
