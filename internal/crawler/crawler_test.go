package crawler

import (
	"context"
	"regexp"
	"sync"
	"testing"
	"time"

	"securitykg/internal/ctirep"
	"securitykg/internal/sources"
)

// reContinuation matches continuation-page URLs (/report/<i>/<page>).
var reContinuation = regexp.MustCompile(`/report/\d+/\d+$`)

func collect(t *testing.T, f *Framework) []ctirep.RawFile {
	t.Helper()
	var mu sync.Mutex
	var out []ctirep.RawFile
	err := f.RunOnce(context.Background(), func(rf ctirep.RawFile) {
		mu.Lock()
		out = append(out, rf)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	return out
}

func TestCrawlCollectsAllReports(t *testing.T) {
	specs := sources.DefaultSources(12)[:5]
	web := sources.NewWeb(1, specs)
	f := New(web, specs, Config{Workers: 4})
	files := collect(t, f)

	// Every report emits >= 1 file; multi-page HTML reports emit 2.
	perReport := map[string]bool{}
	extraPages := 0
	for _, rf := range files {
		if reContinuation.MatchString(rf.URL) {
			extraPages++
			continue
		}
		perReport[rf.URL] = true
	}
	want := 5 * 12
	if len(perReport) != want {
		t.Fatalf("collected %d distinct reports, want %d", len(perReport), want)
	}
	st := f.Stats()
	if st.Collected != int64(len(files)) {
		t.Errorf("stats.Collected=%d files=%d", st.Collected, len(files))
	}
	if len(st.PerSource) != 5 {
		t.Errorf("per-source stats missing: %+v", st.PerSource)
	}
}

func TestCrawlPDFAndHTMLFormats(t *testing.T) {
	all := sources.DefaultSources(4)
	var specs []sources.SourceSpec
	for _, s := range all {
		if s.Format == "pdf" {
			specs = append(specs, s)
			break
		}
	}
	for _, s := range all {
		if s.Format == "html" {
			specs = append(specs, s)
			break
		}
	}
	web := sources.NewWeb(1, specs)
	f := New(web, specs, Config{})
	files := collect(t, f)
	formats := map[string]int{}
	for _, rf := range files {
		formats[rf.Format]++
	}
	if formats["pdf"] != 4 {
		t.Errorf("pdf files: %d, want 4", formats["pdf"])
	}
	if formats["html"] < 4 {
		t.Errorf("html files: %d, want >= 4", formats["html"])
	}
}

func TestIncrementalRecrawlSkipsSeen(t *testing.T) {
	specs := sources.DefaultSources(8)[:2]
	web := sources.NewWeb(1, specs)
	f := New(web, specs, Config{})
	first := collect(t, f)
	if len(first) == 0 {
		t.Fatal("first run collected nothing")
	}
	second := collect(t, f)
	if len(second) != 0 {
		t.Errorf("second run re-emitted %d files", len(second))
	}
}

func TestRetryOnTransientFailures(t *testing.T) {
	specs := sources.DefaultSources(6)[:2]
	web := sources.NewWeb(1, specs)
	web.FailEveryN = 3 // a third of URLs fail on first attempt
	f := New(web, specs, Config{RetryDelay: time.Millisecond})
	files := collect(t, f)
	perReport := map[string]bool{}
	for _, rf := range files {
		if !reContinuation.MatchString(rf.URL) {
			perReport[rf.URL] = true
		}
	}
	if len(perReport) != 12 {
		t.Errorf("retries should recover all 12 reports, got %d", len(perReport))
	}
	if f.Stats().Retries == 0 {
		t.Error("expected retries to be counted")
	}
}

func TestRebootAfterPanic(t *testing.T) {
	specs := sources.DefaultSources(3)[:1]
	pf := &panicFetcher{inner: sources.NewWeb(1, specs), panicsLeft: 1}
	f := New(pf, specs, Config{RetryDelay: time.Millisecond})
	files := collect(t, f)
	if len(files) == 0 {
		t.Fatal("crawl did not recover after panic")
	}
	if f.Stats().Reboots != 1 {
		t.Errorf("reboots = %d, want 1", f.Stats().Reboots)
	}
}

type panicFetcher struct {
	inner      sources.Fetcher
	mu         sync.Mutex
	panicsLeft int
}

func (p *panicFetcher) Fetch(url string) (*sources.Page, error) {
	p.mu.Lock()
	if p.panicsLeft > 0 {
		p.panicsLeft--
		p.mu.Unlock()
		panic("injected crawler fault")
	}
	p.mu.Unlock()
	return p.inner.Fetch(url)
}

func TestContextCancellation(t *testing.T) {
	specs := sources.DefaultSources(50)
	web := sources.NewWeb(1, specs)
	web.Latency = 2 * time.Millisecond
	f := New(web, specs, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var count atomic64
	go func() {
		done <- f.RunOnce(ctx, func(ctirep.RawFile) { count.inc() })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Log("run finished before cancellation took effect")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not stop the crawl")
	}
	if count.val() >= int64(50*50) {
		t.Error("crawl completed fully despite cancellation")
	}
}

type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) inc() { a.mu.Lock(); a.v++; a.mu.Unlock() }
func (a *atomic64) val() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

func TestThroughputMeterPositive(t *testing.T) {
	specs := sources.DefaultSources(10)[:4]
	web := sources.NewWeb(1, specs)
	f := New(web, specs, Config{Workers: 4})
	collect(t, f)
	st := f.Stats()
	if st.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
	if rpm := st.ReportsPerMinute(); rpm <= 0 {
		t.Errorf("throughput %f", rpm)
	}
}

func TestPeriodicStartIncrementallyCrawls(t *testing.T) {
	specs := sources.DefaultSources(5)[:1]
	web := sources.NewWeb(1, specs)
	f := New(web, specs, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var count atomic64
	f.Start(ctx, 10*time.Millisecond, func(ctirep.RawFile) { count.inc() })
	deadline := time.After(3 * time.Second)
	for count.val() < 5 {
		select {
		case <-deadline:
			t.Fatalf("periodic crawl collected only %d", count.val())
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Let a few more periods elapse: incremental dedup means no growth.
	time.Sleep(50 * time.Millisecond)
	if got := count.val(); got > 6 { // 5 reports + possible 1 multipage page
		t.Errorf("periodic runs re-collected: %d", got)
	}
}

func TestStatsSnapshotIsolated(t *testing.T) {
	specs := sources.DefaultSources(3)[:1]
	web := sources.NewWeb(1, specs)
	f := New(web, specs, Config{})
	collect(t, f)
	st := f.Stats()
	st.PerSource["tampered"] = 99
	if _, ok := f.Stats().PerSource["tampered"]; ok {
		t.Error("Stats exposes internal map")
	}
}

func TestRateLimitSlowsSameSourceFetches(t *testing.T) {
	specs := sources.DefaultSources(6)[:1]
	web := sources.NewWeb(1, specs)
	limited := New(web, specs, Config{RateLimit: 5 * time.Millisecond})
	start := time.Now()
	collect(t, limited)
	elapsed := time.Since(start)
	// 1 index page + 6 reports (+possible continuation) => >= 7 fetches,
	// each spaced 5ms apart.
	if elapsed < 30*time.Millisecond {
		t.Errorf("rate limit not applied: crawl took %v", elapsed)
	}
	unlimited := New(sources.NewWeb(1, specs), specs, Config{})
	start = time.Now()
	collect(t, unlimited)
	if time.Since(start) > elapsed {
		t.Error("unlimited crawl slower than rate-limited one")
	}
}
