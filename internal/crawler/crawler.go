// Package crawler implements SecurityKG's collection stage: a framework of
// per-source crawlers (one crawler per data source, as in the paper) with
// a shared worker pool, retry with backoff on transient failures, panic
// recovery ("reboot after failure"), incremental dedup so periodic runs
// only emit new reports, and throughput metering for the paper's
// 350+ reports/min claim.
package crawler

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"securitykg/internal/ctirep"
	"securitykg/internal/htmlparse"
	"securitykg/internal/sources"
)

// Config tunes the framework.
type Config struct {
	// Workers is the number of source crawls that run concurrently
	// (default 4).
	Workers int
	// MaxRetries bounds per-URL retry attempts on transient errors
	// (default 3).
	MaxRetries int
	// RetryDelay is the base backoff delay, doubled per attempt
	// (default 50ms).
	RetryDelay time.Duration
	// RateLimit is the minimum interval between fetches to the same
	// source (politeness; 0 disables).
	RateLimit time.Duration
	// Logger receives failure reports; nil silences logging.
	Logger *log.Logger
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 50 * time.Millisecond
	}
}

// Stats aggregates framework counters.
type Stats struct {
	Collected int64         // raw files emitted
	Fetches   int64         // fetch attempts
	Retries   int64         // transient retries
	Failures  int64         // URLs given up on
	Reboots   int64         // crawler goroutines restarted after panic
	Elapsed   time.Duration // wall time of the last run
	PerSource map[string]int64
}

// ReportsPerMinute computes the headline throughput metric.
func (s Stats) ReportsPerMinute() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Collected) / s.Elapsed.Minutes()
}

// Framework coordinates one crawler per source over a shared worker pool.
type Framework struct {
	fetcher sources.Fetcher
	specs   []sources.SourceSpec
	cfg     Config

	mu        sync.Mutex
	seen      map[string]bool // canonical report URLs already collected
	perSource map[string]int64
	lastFetch map[string]time.Time // per-source politeness clock

	collected atomic.Int64
	fetches   atomic.Int64
	retries   atomic.Int64
	failures  atomic.Int64
	reboots   atomic.Int64
	elapsed   atomic.Int64 // nanoseconds
}

// New builds a framework over the fetcher and source specs.
func New(fetcher sources.Fetcher, specs []sources.SourceSpec, cfg Config) *Framework {
	cfg.defaults()
	return &Framework{
		fetcher:   fetcher,
		specs:     specs,
		cfg:       cfg,
		seen:      make(map[string]bool),
		perSource: make(map[string]int64),
		lastFetch: make(map[string]time.Time),
	}
}

// politeWait blocks until the per-source rate limit allows another fetch.
func (f *Framework) politeWait(source string) {
	if f.cfg.RateLimit <= 0 {
		return
	}
	for {
		f.mu.Lock()
		last := f.lastFetch[source]
		now := time.Now()
		if wait := f.cfg.RateLimit - now.Sub(last); wait > 0 {
			f.mu.Unlock()
			time.Sleep(wait)
			continue
		}
		f.lastFetch[source] = now
		f.mu.Unlock()
		return
	}
}

// MarkSeen records canonical report URLs as already collected, so a fresh
// framework can resume another instance's incremental state.
func (f *Framework) MarkSeen(urls []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, u := range urls {
		f.seen[u] = true
	}
}

// Stats returns a snapshot of the counters.
func (f *Framework) Stats() Stats {
	f.mu.Lock()
	per := make(map[string]int64, len(f.perSource))
	for k, v := range f.perSource {
		per[k] = v
	}
	f.mu.Unlock()
	return Stats{
		Collected: f.collected.Load(),
		Fetches:   f.fetches.Load(),
		Retries:   f.retries.Load(),
		Failures:  f.failures.Load(),
		Reboots:   f.reboots.Load(),
		Elapsed:   time.Duration(f.elapsed.Load()),
		PerSource: per,
	}
}

// RunOnce crawls every source once, invoking emit for each newly collected
// raw file (multi-page reports emit one file per page). It is incremental:
// URLs collected in previous runs are skipped.
func (f *Framework) RunOnce(ctx context.Context, emit func(ctirep.RawFile)) error {
	start := time.Now()
	jobs := make(chan sources.SourceSpec)
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for i := 0; i < f.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range jobs {
				if err := f.crawlSourceWithReboot(ctx, spec, emit); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	for _, spec := range f.specs {
		select {
		case jobs <- spec:
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			return ctx.Err()
		}
	}
	close(jobs)
	wg.Wait()
	f.elapsed.Store(int64(time.Since(start)))
	return firstErr
}

// Start schedules periodic incremental crawls every period until the
// context is cancelled. The first run starts immediately.
func (f *Framework) Start(ctx context.Context, period time.Duration, emit func(ctirep.RawFile)) {
	go func() {
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			if err := f.RunOnce(ctx, emit); err != nil && f.cfg.Logger != nil {
				f.cfg.Logger.Printf("crawler: run: %v", err)
			}
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
		}
	}()
}

// crawlSourceWithReboot runs one source crawl, restarting after panics up
// to 3 times (the paper's "reboot after failure" behaviour).
func (f *Framework) crawlSourceWithReboot(ctx context.Context, spec sources.SourceSpec, emit func(ctirep.RawFile)) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		panicked := func() (p bool) {
			defer func() {
				if r := recover(); r != nil {
					p = true
					f.reboots.Add(1)
					if f.cfg.Logger != nil {
						f.cfg.Logger.Printf("crawler %s: panic, rebooting: %v", spec.Slug, r)
					}
				}
			}()
			err = f.crawlSource(ctx, spec, emit)
			return false
		}()
		if !panicked {
			return err
		}
	}
	return fmt.Errorf("crawler %s: gave up after repeated panics", spec.Slug)
}

// crawlSource walks a source's index pages, collecting every new report
// (and its continuation pages).
func (f *Framework) crawlSource(ctx context.Context, spec sources.SourceSpec, emit func(ctirep.RawFile)) error {
	indexURL := fmt.Sprintf("%s/index/0", spec.BaseURL())
	for indexURL != "" {
		if err := ctx.Err(); err != nil {
			return err
		}
		page, err := f.fetchRetry(spec.Slug, indexURL)
		if err != nil {
			f.failures.Add(1)
			return fmt.Errorf("crawler %s: index %s: %w", spec.Slug, indexURL, err)
		}
		doc := htmlparse.Parse(string(page.Body))
		for _, a := range doc.FindAll("a.report-link") {
			href, ok := a.Attr("href")
			if !ok || href == "" {
				continue
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			f.collectReport(spec, href, emit)
		}
		indexURL = ""
		if next := doc.Find("a.next-index"); next != nil {
			if href, ok := next.Attr("href"); ok {
				indexURL = href
			}
		}
	}
	return nil
}

// collectReport fetches one report and its continuation pages, emitting a
// RawFile per page. Already-seen reports are skipped (incremental).
func (f *Framework) collectReport(spec sources.SourceSpec, url string, emit func(ctirep.RawFile)) {
	f.mu.Lock()
	if f.seen[url] {
		f.mu.Unlock()
		return
	}
	f.seen[url] = true
	f.mu.Unlock()

	pageURL := url
	for pageURL != "" {
		page, err := f.fetchRetry(spec.Slug, pageURL)
		if err != nil {
			f.failures.Add(1)
			if f.cfg.Logger != nil {
				f.cfg.Logger.Printf("crawler %s: report %s: %v", spec.Slug, pageURL, err)
			}
			return
		}
		format := "html"
		if strings.Contains(page.ContentType, "pdf") {
			format = "pdf"
		}
		emit(ctirep.RawFile{
			Source:    spec.Slug,
			URL:       pageURL,
			Format:    format,
			Body:      page.Body,
			FetchedAt: time.Now().UTC(),
		})
		f.collected.Add(1)
		f.mu.Lock()
		f.perSource[spec.Slug]++
		f.mu.Unlock()

		pageURL = ""
		if format == "html" {
			doc := htmlparse.Parse(string(page.Body))
			if next := doc.Find("a.next-page"); next != nil {
				if href, ok := next.Attr("href"); ok {
					pageURL = href
				}
			}
		}
	}
}

// fetchRetry fetches a URL with exponential backoff on transient errors,
// honoring the per-source politeness interval.
func (f *Framework) fetchRetry(source, url string) (*sources.Page, error) {
	delay := f.cfg.RetryDelay
	var lastErr error
	for attempt := 0; attempt <= f.cfg.MaxRetries; attempt++ {
		f.politeWait(source)
		f.fetches.Add(1)
		page, err := f.fetcher.Fetch(url)
		if err == nil {
			return page, nil
		}
		lastErr = err
		if _, transient := err.(*sources.TransientError); !transient {
			return nil, err
		}
		f.retries.Add(1)
		time.Sleep(delay)
		delay *= 2
	}
	return nil, fmt.Errorf("crawler: retries exhausted: %w", lastErr)
}
