package experiments

import (
	"os"
	"testing"
)

func TestSmokeAll(t *testing.T) {
	type fn func() (*Table, error)
	cases := map[string]fn{
		"E1":  func() (*Table, error) { return CrawlThroughput([]int{4}, 3, 1) },
		"E2":  func() (*Table, error) { return ScaleIngest(150, 1) },
		"E3":  func() (*Table, error) { return PipelineWorkers(3, []int{2}, 1) },
		"E4":  func() (*Table, error) { return NERQuality(120, 60, 1) },
		"E5":  func() (*Table, error) { return IOCProtection(40, 1) },
		"E6":  func() (*Table, error) { return LabelingStrategies(60, 30, 1) },
		"E7":  func() (*Table, error) { return RelationExtraction(30, 1) },
		"E8":  func() (*Table, error) { return FusionExperiment(4, 1) },
		"E9":  func() (*Table, error) { return OntologyCoverage(4, 1) },
		"E10": func() (*Table, error) { return SearchScenarios(4, 1) },
		"E11": func() (*Table, error) { return CypherScaling([]int{500}, 1) },
		"E12": func() (*Table, error) { return LayoutScaling([]int{200}, 0.5, 1) },
		"E13": func() (*Table, error) { return ExploreOps(2000, 1) },
		"E15": func() (*Table, error) { return PlannerComparison([]int{500}, 1) },
	}
	for id, f := range cases {
		tab, err := f()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		tab.Fprint(os.Stdout)
	}
}
