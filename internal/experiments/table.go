// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md's index (E1-E13), each regenerating the
// corresponding paper claim, table, or figure as a printable table.
// cmd/skg-bench exposes them on the command line; the root bench_test.go
// wraps the hot paths in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result: a titled grid plus free-form notes
// (the paper-vs-measured comparison lives in EXPERIMENTS.md).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
