package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"securitykg/internal/cypher"
	"securitykg/internal/graph"
	"securitykg/internal/layout"
)

// syntheticKG builds a KG-shaped graph of about n nodes: malware hubs with
// IOC fan-out, reports describing them, actors and techniques shared
// across malware (so multi-hop queries have work to do).
func syntheticKG(n int, seed int64) *graph.Store {
	rng := rand.New(rand.NewSource(seed))
	s := graph.New()
	nMal := n / 10
	if nMal < 1 {
		nMal = 1
	}
	actors := make([]graph.NodeID, 0, nMal/5+1)
	for i := 0; i <= nMal/5; i++ {
		id, _ := s.MergeNode("ThreatActor", fmt.Sprintf("actor-%d", i), nil)
		actors = append(actors, id)
	}
	techs := make([]graph.NodeID, 0, 20)
	for i := 0; i < 20; i++ {
		id, _ := s.MergeNode("Technique", fmt.Sprintf("technique-%d", i), nil)
		techs = append(techs, id)
	}
	for m := 0; m < nMal; m++ {
		mal, _ := s.MergeNode("Malware", fmt.Sprintf("malware-%d", m), nil)
		rep, _ := s.MergeNode("MalwareReport", fmt.Sprintf("report-%d", m), nil)
		s.AddEdge(rep, "DESCRIBES", mal, nil)
		s.AddEdge(mal, "ATTRIBUTED_TO", actors[rng.Intn(len(actors))], nil)
		for k := 0; k < 2; k++ {
			s.AddEdge(mal, "USE", techs[rng.Intn(len(techs))], nil)
		}
		fan := 6
		for k := 0; k < fan && s.Stats().Nodes < n; k++ {
			ip, _ := s.MergeNode("IP", fmt.Sprintf("10.%d.%d.%d", m%200, k, rng.Intn(250)), nil)
			s.AddEdge(mal, "CONNECT", ip, nil)
		}
	}
	return s
}

// CypherScaling reproduces E11 (the demo's Cypher scenario): point-query
// and multi-hop latency over growing KG sizes, with indexes on vs off.
func CypherScaling(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "cypher query latency: KG size x index usage",
		Columns: []string{"nodes", "query", "index", "latency", "rows"},
	}
	for _, n := range sizes {
		s := syntheticKG(n, seed)
		actual := s.Stats().Nodes
		target := fmt.Sprintf("malware-%d", n/20)
		queries := []struct {
			name string
			q    string
		}{
			{"point", fmt.Sprintf(`match (n) where n.name = %q return n`, target)},
			{"2-hop", fmt.Sprintf(`match (r:MalwareReport)-[:DESCRIBES]->(m {name: %q})-[:CONNECT]->(ip) return r.name, ip.name`, target)},
			{"shared-technique", fmt.Sprintf(`match (a {name: %q})-[:USE]->(t)<-[:USE]-(other) return distinct other.name`, target)},
		}
		for _, q := range queries {
			for _, useIdx := range []bool{true, false} {
				eng := cypher.NewEngine(s, cypher.Options{UseIndexes: useIdx, MaxRows: 100000})
				// Warm.
				res, err := eng.Run(q.q)
				if err != nil {
					return nil, err
				}
				reps := 20
				if !useIdx && n > 20000 {
					reps = 3
				}
				start := time.Now()
				for i := 0; i < reps; i++ {
					if _, err := eng.Run(q.q); err != nil {
						return nil, err
					}
				}
				lat := time.Since(start) / time.Duration(reps)
				t.AddRow(actual, q.name, useIdx, lat.Round(time.Microsecond).String(), len(res.Rows))
			}
		}
	}
	t.Notes = append(t.Notes,
		"index=false forces full scans: the crossover shows why the name/label indexes exist")
	return t, nil
}

// PlannerComparison (E15) measures the plan-based streaming engine
// against the legacy tree-walking matcher over growing KG sizes. The
// LIMIT-ed multi-hop query is where lazy iteration pays off: the legacy
// path materializes every match before truncating, the planned path
// stops matching after the limit is filled.
func PlannerComparison(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "cypher engine: greedy planner + streaming executor vs legacy matcher",
		Columns: []string{"nodes", "query", "legacy", "planned", "speedup", "rows"},
	}
	for _, n := range sizes {
		s := syntheticKG(n, seed)
		actual := s.Stats().Nodes
		target := fmt.Sprintf("malware-%d", n/20)
		queries := []struct {
			name string
			q    string
		}{
			{"point", fmt.Sprintf(`match (n) where n.name = %q return n`, target)},
			{"2-hop", fmt.Sprintf(`match (r:MalwareReport)-[:DESCRIBES]->(m {name: %q})-[:CONNECT]->(ip) return r.name, ip.name`, target)},
			{"multi-hop+limit", `match (m:Malware)-[:CONNECT]->(ip)<-[:CONNECT]-(m2) return m.name, m2.name limit 20`},
			{"reversed-entry", fmt.Sprintf(`match (ip)<-[:CONNECT]-(m {name: %q}) return ip.name`, target)},
		}
		for _, q := range queries {
			legacyEng := cypher.NewEngine(s, cypher.Options{UseIndexes: true, MaxRows: 100000, Legacy: true})
			plannedEng := cypher.NewEngine(s, cypher.Options{UseIndexes: true, MaxRows: 100000})
			timeOf := func(eng *cypher.Engine) (time.Duration, int, error) {
				res, err := eng.Run(q.q) // warm
				if err != nil {
					return 0, 0, err
				}
				reps := 10
				start := time.Now()
				for i := 0; i < reps; i++ {
					if _, err := eng.Run(q.q); err != nil {
						return 0, 0, err
					}
				}
				return time.Since(start) / time.Duration(reps), len(res.Rows), nil
			}
			lt, rows, err := timeOf(legacyEng)
			if err != nil {
				return nil, err
			}
			pt, prows, err := timeOf(plannedEng)
			if err != nil {
				return nil, err
			}
			if rows != prows {
				return nil, fmt.Errorf("experiments: planner disagreement on %s: legacy %d rows, planned %d", q.name, rows, prows)
			}
			t.AddRow(actual, q.name,
				lt.Round(time.Microsecond).String(), pt.Round(time.Microsecond).String(),
				fmt.Sprintf("%.1fx", float64(lt)/float64(pt)), rows)
		}
	}
	t.Notes = append(t.Notes,
		"planned = greedy join ordering + lazy pull iterators; LIMIT stops matching instead of truncating",
		"planned reps also reuse the engine's per-statement plan cache (repeated queries skip parse+plan), matching the serving workload; legacy re-parses each rep")
	return t, nil
}

// LayoutScaling reproduces E12 (Section 2.6's Barnes-Hut layout): ms per
// iteration for Barnes-Hut vs exact O(N²) repulsion, plus BH force error.
func LayoutScaling(sizes []int, theta float64, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   fmt.Sprintf("graph layout: Barnes-Hut (θ=%.2f) vs exact repulsion", theta),
		Columns: []string{"nodes", "exact ms/iter", "barnes-hut ms/iter", "speedup", "BH force err"},
	}
	for _, n := range sizes {
		g := layoutGraph(n, seed)
		exact := layout.NewEngine(g, layout.Config{Exact: true}, seed)
		bh := layout.NewEngine(g, layout.Config{Theta: theta}, seed)
		iters := 5
		if n > 5000 {
			iters = 2
		}
		timeOf := func(e *layout.Engine) time.Duration {
			start := time.Now()
			for i := 0; i < iters; i++ {
				e.Step()
			}
			return time.Since(start) / time.Duration(iters)
		}
		te := timeOf(exact)
		tb := timeOf(bh)
		errRate := bh.ForceError()
		t.AddRow(n,
			fmt.Sprintf("%.2f", float64(te.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(tb.Microseconds())/1000),
			fmt.Sprintf("%.1fx", float64(te)/float64(tb)),
			fmt.Sprintf("%.4f", errRate))
	}
	t.Notes = append(t.Notes,
		"Barnes-Hut computes approximated repulsive forces from the node distribution (Section 2.6)")
	return t, nil
}

func layoutGraph(n int, seed int64) layout.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := layout.Graph{N: n}
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, [2]int{rng.Intn(i), i})
	}
	return g
}

// ExploreOps reproduces E13 (Section 2.6's interactivity): latency of the
// exploration primitives on a large KG.
func ExploreOps(nodes int, seed int64) (*Table, error) {
	s := syntheticKG(nodes, seed)
	actual := s.Stats().Nodes
	hub := s.FindNode("Malware", "malware-1")
	if hub == nil {
		return nil, fmt.Errorf("experiments: hub node missing")
	}
	t := &Table{
		ID:      "E13",
		Title:   fmt.Sprintf("exploration operations on a %d-node KG", actual),
		Columns: []string{"operation", "latency", "result size"},
	}
	timeIt := func(name string, reps int, op func() int) {
		op() // warm
		start := time.Now()
		size := 0
		for i := 0; i < reps; i++ {
			size = op()
		}
		t.AddRow(name, (time.Since(start) / time.Duration(reps)).Round(time.Microsecond).String(), size)
	}
	timeIt("expand depth=1", 100, func() int {
		return len(s.ExpandFrom([]graph.NodeID{hub.ID}, 1, 25, 100).Nodes)
	})
	timeIt("expand depth=2", 50, func() int {
		return len(s.ExpandFrom([]graph.NodeID{hub.ID}, 2, 25, 200).Nodes)
	})
	timeIt("random subgraph n=50", 50, func() int {
		return len(s.RandomSubgraph(seed, 50).Nodes)
	})
	timeIt("collapse", 100, func() int {
		sg := s.ExpandFrom([]graph.NodeID{hub.ID}, 1, 25, 100)
		return len(s.CollapseFrom(hub.ID, sg.NodeIDs(), sg.NodeIDs()[:1]))
	})
	timeIt("layout 100-node view", 10, func() int {
		sg := s.ExpandFrom([]graph.NodeID{hub.ID}, 2, 25, 100)
		lg := layout.Graph{N: len(sg.Nodes)}
		idx := map[graph.NodeID]int{}
		for i, nd := range sg.Nodes {
			idx[nd.ID] = i
		}
		for _, e := range sg.Edges {
			lg.Edges = append(lg.Edges, [2]int{idx[e.From], idx[e.To]})
		}
		eng := layout.NewEngine(lg, layout.Config{}, seed)
		return eng.Run(100, 0.05)
	})
	return t, nil
}
