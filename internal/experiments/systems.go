package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"securitykg/internal/connector"
	"securitykg/internal/crawler"
	"securitykg/internal/ctirep"
	"securitykg/internal/fusion"
	"securitykg/internal/graph"
	"securitykg/internal/ner"
	"securitykg/internal/ontology"
	"securitykg/internal/pipeline"
	"securitykg/internal/search"
	"securitykg/internal/sources"
)

// trainedNER caches one extractor per seed: several experiments share it
// and CRF training is the expensive step.
var (
	nerMu    sync.Mutex
	nerCache = map[int64]*ner.Extractor{}
)

// TrainNER returns a data-programming-trained extractor over a corpus
// sample from the synthetic web (cached per seed).
func TrainNER(seed int64, docs int) (*ner.Extractor, error) {
	nerMu.Lock()
	defer nerMu.Unlock()
	if ext, ok := nerCache[seed]; ok {
		return ext, nil
	}
	web := sources.NewWeb(seed, sources.DefaultSources(docs/40+2))
	var texts []string
	for _, spec := range web.Sources() {
		for i := 0; i < spec.Reports && len(texts) < docs; i++ {
			truth := web.GenerateTruth(spec, i)
			texts = append(texts, strings.Join(truth.Paragraphs, "\n"))
		}
	}
	ext, err := ner.Train(texts, ner.TrainOptions{Epochs: 5, Seed: seed})
	if err != nil {
		return nil, err
	}
	nerCache[seed] = ext
	return ext, nil
}

// CrawlThroughput reproduces E1 (Section 2.2: "throughput of approximately
// 350+ reports per minute on a single deployed host"): a worker sweep over
// the full 42-source web.
func CrawlThroughput(workerSweep []int, reportsPerSource int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "crawler throughput (paper: 350+ reports/min single host)",
		Columns: []string{"workers", "reports", "fetches", "elapsed", "reports/min"},
	}
	for _, w := range workerSweep {
		specs := sources.DefaultSources(reportsPerSource)
		web := sources.NewWeb(seed, specs)
		web.Latency = 2 * time.Millisecond // simulated network RTT
		fw := crawler.New(web, specs, crawler.Config{Workers: w})
		count := 0
		var mu sync.Mutex
		if err := fw.RunOnce(context.Background(), func(ctirep.RawFile) {
			mu.Lock()
			count++
			mu.Unlock()
		}); err != nil {
			return nil, err
		}
		st := fw.Stats()
		t.AddRow(w, count, st.Fetches, st.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", st.ReportsPerMinute()))
	}
	t.Notes = append(t.Notes,
		"synthetic web with 2ms simulated latency per fetch; the paper's figure is for live sites")
	return t, nil
}

// buildPipeline assembles the standard processing pipeline for experiments.
func buildPipeline(specs []sources.SourceSpec, ext *ner.Extractor, store *graph.Store,
	idx *search.Index, cfg pipeline.Config) *pipeline.Pipeline {
	return &pipeline.Pipeline{
		Porter:   pipeline.NewGroupingPorter(),
		Checkers: []pipeline.Checker{pipeline.NonemptyChecker{}, pipeline.NotAdsChecker{}},
		Parsers:  pipeline.DefaultParsers(specs),
		Extractors: []pipeline.Extractor{
			pipeline.EntityExtractor{NER: ext},
			pipeline.RelationExtractor{NER: ext},
		},
		Connectors: []connector.Connector{connector.NewGraphConnector(store, idx)},
		Cfg:        cfg,
	}
}

// crawlAll collects every raw file of the web.
func crawlAll(web *sources.Web, specs []sources.SourceSpec) ([]ctirep.RawFile, crawler.Stats, error) {
	fw := crawler.New(web, specs, crawler.Config{Workers: 8})
	var mu sync.Mutex
	var files []ctirep.RawFile
	err := fw.RunOnce(context.Background(), func(rf ctirep.RawFile) {
		mu.Lock()
		files = append(files, rf)
		mu.Unlock()
	})
	return files, fw.Stats(), err
}

func feed(files []ctirep.RawFile) <-chan ctirep.RawFile {
	ch := make(chan ctirep.RawFile, 256)
	go func() {
		for _, f := range files {
			ch <- f
		}
		close(ch)
	}()
	return ch
}

// ScaleIngest reproduces E2 (the 120K+ report corpus): end-to-end ingest
// of totalReports reports across the 42 sources, then an incremental
// re-ingest proving dedup, reporting KG size and growth.
func ScaleIngest(totalReports int, seed int64) (*Table, error) {
	perSource := totalReports/42 + 1
	specs := sources.DefaultSources(perSource)
	web := sources.NewWeb(seed, specs)
	ext, err := TrainNER(seed, 120)
	if err != nil {
		return nil, err
	}
	files, cst, err := crawlAll(web, specs)
	if err != nil {
		return nil, err
	}
	store := graph.New()
	idx := search.NewIndex(nil)
	p := buildPipeline(specs, ext, store, idx, pipeline.Config{ExtractWorkers: 8, ConnectWorkers: 4})
	pst, err := p.Run(context.Background(), feed(files))
	if err != nil {
		return nil, err
	}
	gs := store.Stats()
	t := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("corpus-scale ingest (%d reports; paper: 120K+ collected)", int(pst.Connected)),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("reports collected", cst.Collected)
	t.AddRow("reports connected", pst.Connected)
	t.AddRow("ads/empty rejected", pst.Rejected)
	t.AddRow("KG nodes", gs.Nodes)
	t.AddRow("KG edges", gs.Edges)
	t.AddRow("storage-time merges", gs.MergeHits)
	t.AddRow("pipeline reports/min", fmt.Sprintf("%.0f", pst.ReportsPerMinute()))
	t.AddRow("search docs", idx.Len())

	// Incremental re-ingest: same files, graph must not grow.
	p2 := buildPipeline(specs, ext, store, idx, pipeline.Config{ExtractWorkers: 8})
	if _, err := p2.Run(context.Background(), feed(files)); err != nil {
		return nil, err
	}
	gs2 := store.Stats()
	t.AddRow("nodes after re-ingest", gs2.Nodes)
	if gs2.Nodes != gs.Nodes {
		t.Notes = append(t.Notes, "WARNING: re-ingest grew the graph (dedup regression)")
	} else {
		t.Notes = append(t.Notes, "re-ingest left the KG unchanged: incremental collection dedups")
	}
	return t, nil
}

// PipelineWorkers reproduces E3 (Figure 1's staged design): throughput vs
// extractor workers, with the serialized hand-off on and off.
func PipelineWorkers(reportsPerSource int, workerSweep []int, seed int64) (*Table, error) {
	specs := sources.DefaultSources(reportsPerSource)[:12]
	web := sources.NewWeb(seed, specs)
	ext, err := TrainNER(seed, 120)
	if err != nil {
		return nil, err
	}
	files, _, err := crawlAll(web, specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E3",
		Title:   "pipeline scalability: extract workers x serialized hand-off",
		Columns: []string{"workers", "serialize", "elapsed", "reports/min"},
	}
	for _, w := range workerSweep {
		for _, ser := range []bool{false, true} {
			store := graph.New()
			p := buildPipeline(specs, ext, store, nil, pipeline.Config{
				ExtractWorkers: w, Serialize: ser,
			})
			st, err := p.Run(context.Background(), feed(files))
			if err != nil {
				return nil, err
			}
			t.AddRow(w, ser, st.Elapsed.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", st.ReportsPerMinute()))
		}
	}
	t.Notes = append(t.Notes,
		"serialization cost is the price of multi-host deployability (Section 2.1)",
		fmt.Sprintf("GOMAXPROCS=%d on this host: CPU-bound extraction scales with workers only when cores are available; the crawl stage (E1) scales regardless because it hides I/O latency", runtime.GOMAXPROCS(0)))
	return t, nil
}

// FusionExperiment reproduces E8 (Section 2.5): storage-time exact merge
// only vs the separate fusion stage, with alias-variant malware names in
// the corpus.
func FusionExperiment(reportsPerSource int, seed int64) (*Table, error) {
	specs := sources.DefaultSources(reportsPerSource)
	web := sources.NewWeb(seed, specs)
	ext, err := TrainNER(seed, 120)
	if err != nil {
		return nil, err
	}
	files, _, err := crawlAll(web, specs)
	if err != nil {
		return nil, err
	}
	store := graph.New()
	p := buildPipeline(specs, ext, store, nil, pipeline.Config{ExtractWorkers: 8})
	if _, err := p.Run(context.Background(), feed(files)); err != nil {
		return nil, err
	}
	before := store.Stats()
	fst, err := fusion.Fuse(store, fusion.Options{})
	if err != nil {
		return nil, err
	}
	after := store.Stats()

	t := &Table{
		ID:      "E8",
		Title:   "knowledge fusion: exact storage merge vs fusion stage",
		Columns: []string{"metric", "before fusion", "after fusion"},
	}
	t.AddRow("nodes", before.Nodes, after.Nodes)
	t.AddRow("edges", before.Edges, after.Edges)
	t.AddRow("malware nodes", before.NodesByType[string(ontology.TypeMalware)],
		after.NodesByType[string(ontology.TypeMalware)])
	t.AddRow("alias groups fused", "-", fst.Groups)
	t.AddRow("nodes merged", "-", fst.NodesMerged)
	t.AddRow("aliases recorded", "-", fst.AliasesStored)
	t.Notes = append(t.Notes,
		"storage stage merges exact description text only; vendor-convention variants (W32/x, Ransom.Win32.x) merge here")
	return t, nil
}

// OntologyCoverage reproduces E9 (Figure 2): every ontology entity and
// relation type instantiated in the KG after a full ingest.
func OntologyCoverage(reportsPerSource int, seed int64) (*Table, error) {
	specs := sources.DefaultSources(reportsPerSource)
	web := sources.NewWeb(seed, specs)
	ext, err := TrainNER(seed, 120)
	if err != nil {
		return nil, err
	}
	files, _, err := crawlAll(web, specs)
	if err != nil {
		return nil, err
	}
	store := graph.New()
	p := buildPipeline(specs, ext, store, nil, pipeline.Config{ExtractWorkers: 8})
	if _, err := p.Run(context.Background(), feed(files)); err != nil {
		return nil, err
	}
	gs := store.Stats()
	t := &Table{
		ID:      "E9",
		Title:   "ontology coverage (Figure 2): node counts by entity type",
		Columns: []string{"entity type", "nodes"},
	}
	covered := 0
	for _, et := range ontology.EntityTypes() {
		n := gs.NodesByType[string(et)]
		if n > 0 {
			covered++
		}
		t.AddRow(string(et), n)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d/%d entity types instantiated; %d relation types in use",
		covered, len(ontology.EntityTypes()), len(gs.EdgesByType)))
	return t, nil
}

// SearchScenarios reproduces E10 (Section 3's keyword scenarios): BM25
// search for "wannacry" and "cozyduke" over an ingested corpus, with
// latency.
func SearchScenarios(reportsPerSource int, seed int64) (*Table, error) {
	specs := sources.DefaultSources(reportsPerSource)
	web := sources.NewWeb(seed, specs)
	ext, err := TrainNER(seed, 120)
	if err != nil {
		return nil, err
	}
	files, _, err := crawlAll(web, specs)
	if err != nil {
		return nil, err
	}
	store := graph.New()
	idx := search.NewIndex(map[string]float64{"title": 2})
	p := buildPipeline(specs, ext, store, idx, pipeline.Config{ExtractWorkers: 8})
	if _, err := p.Run(context.Background(), feed(files)); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E10",
		Title:   fmt.Sprintf("keyword search scenarios over %d reports", idx.Len()),
		Columns: []string{"query", "hits", "top-10 latency"},
	}
	for _, q := range []string{"wannacry", "cozyduke", "ransomware campaign", "credential dumping"} {
		start := time.Now()
		const reps = 50
		var hits []search.Hit
		for i := 0; i < reps; i++ {
			hits = idx.Search(q, 10)
		}
		lat := time.Since(start) / reps
		t.AddRow(q, len(hits), lat.Round(time.Microsecond).String())
	}
	return t, nil
}
