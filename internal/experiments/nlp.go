package experiments

import (
	"fmt"
	"strings"

	"securitykg/internal/depparse"
	"securitykg/internal/embed"
	"securitykg/internal/ioc"
	"securitykg/internal/ner"
	"securitykg/internal/ontology"
	"securitykg/internal/sources"
	"securitykg/internal/textproc"
)

// truthDocs samples reports (text + ground truth) from the synthetic web.
func truthDocs(seed int64, n int, fromIdx int) []*sources.Truth {
	web := sources.NewWeb(seed, sources.DefaultSources(fromIdx+n/40+2))
	var out []*sources.Truth
	for _, spec := range web.Sources() {
		for i := fromIdx; len(out) < n && i < spec.Reports; i++ {
			out = append(out, web.GenerateTruth(spec, i))
		}
	}
	return out
}

func truthText(t *sources.Truth) string { return strings.Join(t.Paragraphs, "\n") }

// goldEntities converts ground truth into scoreable entity sets, filtered
// to the types the recognizer under test is responsible for.
func goldEntities(t *sources.Truth, types map[ontology.EntityType]bool) []ner.Entity {
	var out []ner.Entity
	for _, e := range t.Entities {
		if types == nil || types[e.Type] {
			out = append(out, ner.Entity{Type: e.Type, Name: e.Name})
		}
	}
	return out
}

// crfTypes are the entity types extracted by the CRF (not the IOC scanner).
var crfTypes = map[ontology.EntityType]bool{
	ontology.TypeMalware:         true,
	ontology.TypeMalwareFamily:   true,
	ontology.TypeThreatActor:     true,
	ontology.TypeTechnique:       true,
	ontology.TypeTool:            true,
	ontology.TypeSoftware:        true,
	ontology.TypeMalwarePlatform: true,
}

// NERQuality reproduces E4 (Section 2.4): CRF vs regex/gazetteer baseline
// on held-out reports, split into seen (curated names) and unseen
// (generated names) subsets — the generalization claim.
func NERQuality(trainDocs, testDocs int, seed int64) (*Table, error) {
	ext, err := TrainNER(seed, trainDocs)
	if err != nil {
		return nil, err
	}
	base := ner.NewBaseline()
	// Held-out reports: indexes beyond the training sample.
	docs := truthDocs(seed, testDocs, trainDocs/40+3)

	malOnly := map[ontology.EntityType]bool{ontology.TypeMalware: true}
	score := func(extract func(string) []ner.Entity, unseenOnly bool,
		types map[ontology.EntityType]bool) (ner.Metrics, int, error) {
		var pred, gold [][]ner.Entity
		n := 0
		for _, d := range docs {
			if unseenOnly != d.UnseenMalware {
				continue
			}
			n++
			var p []ner.Entity
			for _, e := range extract(truthText(d)) {
				if types[e.Type] {
					p = append(p, e)
				}
			}
			pred = append(pred, p)
			gold = append(gold, goldEntities(d, types))
		}
		m, err := ner.Evaluate(pred, gold)
		return m, n, err
	}

	t := &Table{
		ID:      "E4",
		Title:   "security NER: CRF (data programming) vs regex/gazetteer baseline",
		Columns: []string{"system", "subset", "docs", "P", "R", "F1"},
	}
	for _, sys := range []struct {
		name    string
		extract func(string) []ner.Entity
	}{
		{"crf", ext.Extract},
		{"baseline", base.Extract},
	} {
		for _, sub := range []struct {
			name   string
			unseen bool
			types  map[ontology.EntityType]bool
		}{
			{"all-types/seen", false, crfTypes},
			{"all-types/unseen-doc", true, crfTypes},
			{"malware/seen", false, malOnly},
			{"malware/unseen", true, malOnly},
		} {
			m, n, err := score(sys.extract, sub.unseen, sub.types)
			if err != nil {
				return nil, err
			}
			t.AddRow(sys.name, sub.name, n, m.Precision, m.Recall, m.F1)
		}
	}
	t.Notes = append(t.Notes,
		"'malware/unseen' scores only the malware names absent from every curated list — the generalization claim",
		"paper claim: the CRF 'can outperform a naive entity recognition solution that relies on regex rules, and generalize to entities that are not in the training set'")
	return t, nil
}

func filterTypes(es []ner.Entity) []ner.Entity {
	var out []ner.Entity
	for _, e := range es {
		if crfTypes[e.Type] {
			out = append(out, e)
		}
	}
	return out
}

// IOCProtection reproduces E5 (Section 2.4's "IOC protection"): token
// integrity and sentence segmentation with protection on vs off.
func IOCProtection(docsN int, seed int64) (*Table, error) {
	docs := truthDocs(seed, docsN, 0)
	var intactRaw, intactProt, totalIOC int
	var sentRaw, sentProt, sentTruth int
	for _, d := range docs {
		text := truthText(d)
		prot := ioc.Protect(text)
		_, refanged := ioc.Scan(text)

		// Sentence counts: ground truth is one sentence per period-joined
		// template line; approximate with the protected segmentation as
		// reference quality measure vs raw.
		sentRaw += len(textproc.SplitSentences(refanged))
		sentProt += len(textproc.SplitSentences(prot.Protected))
		for _, p := range d.Paragraphs {
			sentTruth += strings.Count(p, ". ") + 1
		}

		// Token integrity: each ground-truth IOC should be exactly one
		// token.
		iocVals := map[string]bool{}
		for _, e := range d.Entities {
			if ontology.IsIOCType(e.Type) {
				iocVals[e.Name] = true
				totalIOC++
			}
		}
		rawTokens := map[string]bool{}
		for _, tok := range textproc.Tokenize(refanged) {
			rawTokens[tok.Text] = true
		}
		protTokens := map[string]bool{}
		for _, tok := range textproc.Tokenize(prot.Protected) {
			if m, ok := prot.IsPlaceholder(tok.Text); ok {
				protTokens[m.Value] = true
			}
		}
		for v := range iocVals {
			if rawTokens[v] {
				intactRaw++
			}
			if protTokens[v] {
				intactProt++
			}
		}
	}
	t := &Table{
		ID:      "E5",
		Title:   "IOC protection: token integrity and sentence segmentation",
		Columns: []string{"metric", "raw text", "with protection"},
	}
	t.AddRow("IOCs surviving as one token",
		fmt.Sprintf("%d/%d (%.1f%%)", intactRaw, totalIOC, 100*float64(intactRaw)/float64(totalIOC)),
		fmt.Sprintf("%d/%d (%.1f%%)", intactProt, totalIOC, 100*float64(intactProt)/float64(totalIOC)))
	t.AddRow("sentences detected", sentRaw, sentProt)
	t.AddRow("sentences expected", sentTruth, sentTruth)
	t.Notes = append(t.Notes,
		"dots inside IPs/URLs/registry keys fragment tokens and split sentences without protection")
	return t, nil
}

// LabelingStrategies reproduces E6: downstream NER F1 by training-label
// strategy — generative label model (data programming) vs majority vote vs
// gazetteer-only labels.
func LabelingStrategies(trainDocs, testDocs int, seed int64) (*Table, error) {
	train := truthDocs(seed, trainDocs, 0)
	test := truthDocs(seed, testDocs, trainDocs/40+3)
	var texts []string
	for _, d := range train {
		texts = append(texts, truthText(d))
	}
	t := &Table{
		ID:      "E6",
		Title:   "data programming ablation: label synthesis strategy vs NER quality",
		Columns: []string{"strategy", "subset", "P", "R", "F1"},
	}
	for _, strat := range []ner.LabelingStrategy{
		ner.StrategyLabelModel, ner.StrategyMajority, ner.StrategyGazetteerOnly,
	} {
		ext, err := ner.Train(texts, ner.TrainOptions{Strategy: strat, Epochs: 5, Seed: seed})
		if err != nil {
			return nil, err
		}
		malOnly := map[ontology.EntityType]bool{ontology.TypeMalware: true}
		for _, sub := range []struct {
			name   string
			unseen bool
			types  map[ontology.EntityType]bool
		}{
			{"all-types", false, crfTypes},
			{"malware/unseen", true, malOnly},
		} {
			var pred, gold [][]ner.Entity
			for _, d := range test {
				if d.UnseenMalware != sub.unseen {
					continue
				}
				var p []ner.Entity
				for _, e := range ext.Extract(truthText(d)) {
					if sub.types[e.Type] {
						p = append(p, e)
					}
				}
				pred = append(pred, p)
				gold = append(gold, goldEntities(d, sub.types))
			}
			m, err := ner.Evaluate(pred, gold)
			if err != nil {
				return nil, err
			}
			t.AddRow(string(strat), sub.name, m.Precision, m.Recall, m.F1)
		}
	}
	t.Notes = append(t.Notes,
		"gazetteer-only labels are precise on curated names but give the CRF no unseen-entity supervision")
	return t, nil
}

// EmbeddingFeatures reproduces E14 (an extension ablation): NER quality
// with and without embedding-cluster CRF features. The paper lists word
// embeddings among the CRF's features; this measures their contribution.
func EmbeddingFeatures(trainDocs, testDocs int, seed int64) (*Table, error) {
	train := truthDocs(seed, trainDocs, 0)
	test := truthDocs(seed, testDocs, trainDocs/40+3)
	var texts []string
	for _, d := range train {
		texts = append(texts, truthText(d))
	}
	clusters, err := trainClusters(texts, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E14",
		Title:   "embedding-cluster CRF features ablation",
		Columns: []string{"features", "P", "R", "F1"},
	}
	for _, cfg := range []struct {
		name     string
		clusters map[string]int
	}{
		{"base", nil},
		{"base+embeddings", clusters},
	} {
		ext, err := ner.Train(texts, ner.TrainOptions{Epochs: 5, Seed: seed, Clusters: cfg.clusters})
		if err != nil {
			return nil, err
		}
		var pred, gold [][]ner.Entity
		for _, d := range test {
			pred = append(pred, filterTypes(ext.Extract(truthText(d))))
			gold = append(gold, goldEntities(d, crfTypes))
		}
		m, err := ner.Evaluate(pred, gold)
		if err != nil {
			return nil, err
		}
		t.AddRow(cfg.name, m.Precision, m.Recall, m.F1)
	}
	t.Notes = append(t.Notes,
		"cluster ids from skip-gram embeddings trained on the same unlabeled corpus",
		"lexical/gazetteer/context features already saturate this synthetic corpus; embeddings matter more on noisier real-world text")
	return t, nil
}

func trainClusters(texts []string, seed int64) (map[string]int, error) {
	var sentences [][]string
	for _, text := range texts {
		prot := ioc.Protect(text)
		for _, s := range textproc.SplitSentences(prot.Protected) {
			var words []string
			for _, tok := range textproc.Tokenize(s.Text) {
				if !tok.IsPunct() {
					words = append(words, strings.ToLower(tok.Text))
				}
			}
			if len(words) > 1 {
				sentences = append(sentences, words)
			}
		}
	}
	emb, err := embed.Train(sentences, embed.Config{Dim: 24, Epochs: 3, Seed: seed, MinCount: 2})
	if err != nil {
		return nil, err
	}
	return emb.Clusters(32, 20, seed), nil
}

// RelationExtraction reproduces E7: dependency-based relation extraction
// vs a nearest-verb co-occurrence baseline, scored against ground-truth
// triples.
func RelationExtraction(docsN int, seed int64) (*Table, error) {
	ext, err := TrainNER(seed, 120)
	if err != nil {
		return nil, err
	}
	docs := truthDocs(seed, docsN, 5)

	relKey := func(st ontology.EntityType, sn string, rel ontology.RelationType,
		dt ontology.EntityType, dn string) string {
		return strings.ToLower(fmt.Sprintf("%s|%s|%s|%s|%s", st, sn, rel, dt, dn))
	}

	score := func(extract func(string) []ontology.Relation) (p, r, f float64) {
		var tp, fp, fn int
		for _, d := range docs {
			pred := map[string]bool{}
			for _, rel := range extract(truthText(d)) {
				pred[relKey(rel.Src.Type, rel.Src.Name, rel.Type, rel.Dst.Type, rel.Dst.Name)] = true
			}
			gold := map[string]bool{}
			for _, rel := range d.Relations {
				gold[relKey(rel.Src.Type, rel.Src.Name, rel.Type, rel.Dst.Type, rel.Dst.Name)] = true
			}
			for k := range pred {
				if gold[k] {
					tp++
				} else {
					fp++
				}
			}
			for k := range gold {
				if !pred[k] {
					fn++
				}
			}
		}
		if tp+fp > 0 {
			p = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			r = float64(tp) / float64(tp+fn)
		}
		if p+r > 0 {
			f = 2 * p * r / (p + r)
		}
		return p, r, f
	}

	depExtract := ext.ExtractRelations
	coocExtract := func(text string) []ontology.Relation {
		return coOccurrenceRelations(ext, text)
	}

	t := &Table{
		ID:      "E7",
		Title:   "relation extraction: dependency paths vs nearest-verb co-occurrence",
		Columns: []string{"system", "P", "R", "F1"},
	}
	p1, r1, f1 := score(depExtract)
	t.AddRow("dependency", p1, r1, f1)
	p2, r2, f2 := score(coocExtract)
	t.AddRow("co-occurrence", p2, r2, f2)
	t.Notes = append(t.Notes,
		"HAS_HASH ground-truth triples span sentences by construction and cap attainable recall",
	)
	return t, nil
}

// coOccurrenceRelations is the E7 baseline: every entity pair in a
// sentence gets the relation of the first verb between them, ignoring
// syntactic structure.
func coOccurrenceRelations(ext *ner.Extractor, text string) []ontology.Relation {
	var out []ontology.Relation
	for _, sent := range ext.ExtractSpans(text) {
		for i := 0; i < len(sent.Spans); i++ {
			for j := 0; j < len(sent.Spans); j++ {
				if i == j {
					continue
				}
				a, b := sent.Spans[i], sent.Spans[j]
				if a.Start >= b.Start {
					continue
				}
				verb := ""
				for k := a.End; k < b.Start && k < len(sent.Tokens); k++ {
					if textproc.IsVerbTag(sent.Tokens[k].POS) {
						verb = sent.Tokens[k].Lemma
						break
					}
				}
				if verb == "" {
					continue
				}
				rel := ontology.VerbRelation(verb)
				if !ontology.Admissible(a.Type, rel, b.Type) {
					rel = ontology.RelRelatedTo
				}
				out = append(out, ontology.Relation{
					Src:  ontology.Entity{Type: a.Type, Name: a.Name},
					Type: rel,
					Dst:  ontology.Entity{Type: b.Type, Name: b.Name},
				})
			}
		}
	}
	return out
}

var _ = depparse.EntitySpan{} // depparse types flow through ner.ExtractSpans
