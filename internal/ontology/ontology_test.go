package ontology

import (
	"testing"
	"testing/quick"
)

func TestKnownEntityTypes(t *testing.T) {
	for _, et := range EntityTypes() {
		if !KnownEntityType(et) {
			t.Errorf("EntityTypes returned unknown type %q", et)
		}
	}
	if KnownEntityType("Bogus") {
		t.Error("Bogus should not be a known entity type")
	}
	if got := len(EntityTypes()); got != 21 {
		t.Errorf("expected 21 entity types (Figure 2 ontology), got %d", got)
	}
}

func TestKnownRelationTypes(t *testing.T) {
	for _, rt := range RelationTypes() {
		if !KnownRelationType(rt) {
			t.Errorf("RelationTypes returned unknown type %q", rt)
		}
	}
	if KnownRelationType("BOGUS_REL") {
		t.Error("BOGUS_REL should not be a known relation type")
	}
}

func TestTypeClassPredicatesDisjoint(t *testing.T) {
	for _, et := range EntityTypes() {
		classes := 0
		if IsReportType(et) {
			classes++
		}
		if IsIOCType(et) {
			classes++
		}
		if IsThreatConcept(et) {
			classes++
		}
		if et == TypeCTIVendor {
			classes++
		}
		if classes != 1 {
			t.Errorf("entity type %q belongs to %d classes, want exactly 1", et, classes)
		}
	}
}

func TestEntityValidate(t *testing.T) {
	cases := []struct {
		name    string
		e       Entity
		wantErr bool
	}{
		{"valid malware", Entity{Type: TypeMalware, Name: "WannaCry"}, false},
		{"valid ioc", Entity{Type: TypeIP, Name: "10.2.3.4"}, false},
		{"unknown type", Entity{Type: "Nope", Name: "x"}, true},
		{"empty name", Entity{Type: TypeMalware, Name: "   "}, true},
	}
	for _, c := range cases {
		err := c.e.Validate()
		if (err != nil) != c.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr=%v", c.name, err, c.wantErr)
		}
	}
}

func TestRelationValidate(t *testing.T) {
	mal := Entity{Type: TypeMalware, Name: "WannaCry"}
	fam := Entity{Type: TypeMalwareFamily, Name: "Ransom.Win32"}
	ip := Entity{Type: TypeIP, Name: "10.0.0.1"}
	vendor := Entity{Type: TypeCTIVendor, Name: "AcmeSec"}

	good := []Relation{
		{Src: mal, Type: RelBelongsTo, Dst: fam},
		{Src: mal, Type: RelConnectsTo, Dst: ip},
		{Src: Entity{Type: TypeMalwareReport, Name: "r1"}, Type: RelReportedBy, Dst: vendor},
		{Src: mal, Type: RelEncrypts, Dst: Entity{Type: TypeFileName, Name: "a.docx"}},
	}
	for i, r := range good {
		if err := r.Validate(); err != nil {
			t.Errorf("good[%d]: unexpected error: %v", i, err)
		}
	}

	bad := []Relation{
		{Src: fam, Type: RelBelongsTo, Dst: mal},                  // wrong direction
		{Src: ip, Type: RelEncrypts, Dst: mal},                    // IOC cannot encrypt
		{Src: vendor, Type: RelReportedBy, Dst: mal},              // vendor is not a report
		{Src: mal, Type: "NOT_A_REL", Dst: ip},                    // unknown relation
		{Src: Entity{Type: TypeMalware}, Type: RelUses, Dst: fam}, // empty name
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad[%d]: expected validation error for %+v", i, r)
		}
	}
}

func TestAdmissibleMatchesSchemaRules(t *testing.T) {
	// Every relation type must admit at least one (src,dst) pair, otherwise
	// the schema entry is dead.
	ets := EntityTypes()
	for _, rel := range RelationTypes() {
		found := false
		for _, s := range ets {
			for _, d := range ets {
				if Admissible(s, rel, d) {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("relation %q admits no entity pair", rel)
		}
	}
}

func TestAdmissibleRelationsSortedAndConsistent(t *testing.T) {
	rels := AdmissibleRelations(TypeMalware, TypeIP)
	if len(rels) == 0 {
		t.Fatal("malware->IP should admit at least one relation")
	}
	for i := 1; i < len(rels); i++ {
		if rels[i-1] >= rels[i] {
			t.Fatalf("AdmissibleRelations not strictly sorted: %v", rels)
		}
	}
	for _, r := range rels {
		if !Admissible(TypeMalware, r, TypeIP) {
			t.Errorf("AdmissibleRelations returned inadmissible %q", r)
		}
	}
}

func TestReportTypeFor(t *testing.T) {
	cases := map[string]EntityType{
		"malware":         TypeMalwareReport,
		"MALWARE":         TypeMalwareReport,
		" vulnerability ": TypeVulnerabilityReport,
		"vuln":            TypeVulnerabilityReport,
		"attack":          TypeAttackReport,
		"whatever":        TypeAttackReport,
		"":                TypeAttackReport,
	}
	for in, want := range cases {
		if got := ReportTypeFor(in); got != want {
			t.Errorf("ReportTypeFor(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestVerbRelationCuratedAndFallback(t *testing.T) {
	if got := VerbRelation("drop"); got != RelDrops {
		t.Errorf("drop -> %s, want DROP", got)
	}
	if got := VerbRelation("ENCRYPT"); got != RelEncrypts {
		t.Errorf("ENCRYPT -> %s, want ENCRYPT (case-insensitive)", got)
	}
	if got := VerbRelation("zorble"); got != RelRelatedTo {
		t.Errorf("unknown verb -> %s, want RELATED_TO fallback", got)
	}
	for _, v := range RelationVerbs() {
		if VerbRelation(v) == RelRelatedTo {
			t.Errorf("curated verb %q maps to fallback", v)
		}
	}
}

func TestEntityKeyUniquePerTypeName(t *testing.T) {
	a := Entity{Type: TypeMalware, Name: "x"}
	b := Entity{Type: TypeTool, Name: "x"}
	c := Entity{Type: TypeMalware, Name: "X"}
	if a.Key() == b.Key() {
		t.Error("different types with same name must have distinct keys")
	}
	if a.Key() == c.Key() {
		t.Error("exact-merge key must be case sensitive (merge is exact text)")
	}
}

// Property: Admissible(s, r, d) implies r is in AdmissibleRelations(s, d),
// and vice versa, for arbitrary type picks.
func TestAdmissibleAgreesWithEnumerationQuick(t *testing.T) {
	ets := EntityTypes()
	rts := RelationTypes()
	f := func(si, ri, di uint) bool {
		s := ets[int(si%uint(len(ets)))]
		r := rts[int(ri%uint(len(rts)))]
		d := ets[int(di%uint(len(ets)))]
		in := false
		for _, rr := range AdmissibleRelations(s, d) {
			if rr == r {
				in = true
			}
		}
		return in == Admissible(s, r, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
