// Package ontology defines the security knowledge ontology of SecurityKG
// (Figure 2 of the paper): the set of entity types, relation types, and the
// schema constraints that say which relation may connect which entity types.
//
// The ontology is deliberately separate from the intermediate CTI
// representation (package ctirep): parsers and extractors fill the wide
// intermediate representation, and connectors refactor it into ontology
// entities and relations just before storage.
package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// EntityType identifies a node type in the security knowledge graph.
type EntityType string

// Entity types of the security knowledge ontology (Figure 2).
const (
	// Report entities. Every collected OSCTI report becomes exactly one
	// of these, according to its classified report kind.
	TypeMalwareReport       EntityType = "MalwareReport"
	TypeVulnerabilityReport EntityType = "VulnerabilityReport"
	TypeAttackReport        EntityType = "AttackReport"

	// TypeCTIVendor is the organization that published a report.
	TypeCTIVendor EntityType = "CTIVendor"

	// High-level threat concepts.
	TypeMalware         EntityType = "Malware"
	TypeMalwareFamily   EntityType = "MalwareFamily"
	TypeMalwarePlatform EntityType = "MalwarePlatform"
	TypeVulnerability   EntityType = "Vulnerability"
	TypeAttack          EntityType = "Attack"
	TypeThreatActor     EntityType = "ThreatActor"
	TypeTechnique       EntityType = "Technique"
	TypeTool            EntityType = "Tool"
	TypeSoftware        EntityType = "Software"

	// IOC entities (the low-level indicators the paper enumerates:
	// file name, file path, IP, URL, email, domain, registry, hashes).
	TypeFileName EntityType = "FileName"
	TypeFilePath EntityType = "FilePath"
	TypeIP       EntityType = "IP"
	TypeURL      EntityType = "URL"
	TypeEmail    EntityType = "Email"
	TypeDomain   EntityType = "Domain"
	TypeRegistry EntityType = "Registry"
	TypeHash     EntityType = "Hash"
)

// RelationType identifies an edge type in the security knowledge graph.
type RelationType string

// Relation types of the security knowledge ontology.
const (
	RelReportedBy    RelationType = "REPORTED_BY"   // report -> CTI vendor
	RelDescribes     RelationType = "DESCRIBES"     // report -> threat concept
	RelMentions      RelationType = "MENTIONS"      // report -> IOC / entity
	RelDrops         RelationType = "DROP"          // malware -> file IOC
	RelUses          RelationType = "USE"           // actor/malware -> tool/technique/malware
	RelTargets       RelationType = "TARGET"        // actor/malware/attack -> software/platform
	RelExploits      RelationType = "EXPLOIT"       // malware/attack/actor -> vulnerability
	RelCommunicates  RelationType = "COMMUNICATE"   // malware -> network IOC
	RelBelongsTo     RelationType = "BELONG_TO"     // malware -> family
	RelRunsOn        RelationType = "RUN_ON"        // malware/software -> platform
	RelAffects       RelationType = "AFFECT"        // vulnerability -> software
	RelIndicates     RelationType = "INDICATE"      // IOC -> threat concept
	RelModifies      RelationType = "MODIFY"        // malware -> registry/file IOC
	RelConnectsTo    RelationType = "CONNECT"       // malware -> IP/domain/URL
	RelDownloads     RelationType = "DOWNLOAD"      // malware -> URL/file
	RelSends         RelationType = "SEND"          // malware -> email/IP
	RelCreates       RelationType = "CREATE"        // malware -> file/registry
	RelDeletes       RelationType = "DELETE"        // malware -> file
	RelEncrypts      RelationType = "ENCRYPT"       // malware -> file
	RelInjects       RelationType = "INJECT"        // malware -> software
	RelAttributedTo  RelationType = "ATTRIBUTED_TO" // malware/attack -> threat actor
	RelAliasOf       RelationType = "ALIAS_OF"      // entity -> entity (same type)
	RelRelatedTo     RelationType = "RELATED_TO"    // generic fallback relation
	RelImplements    RelationType = "IMPLEMENT"     // tool -> technique
	RelMitigates     RelationType = "MITIGATE"      // software -> vulnerability/technique
	RelPhishes       RelationType = "PHISH"         // actor/malware -> email
	RelPersistsVia   RelationType = "PERSIST_VIA"   // malware -> registry/technique
	RelSpreadsVia    RelationType = "SPREAD_VIA"    // malware -> technique/email/URL
	RelExfiltratesTo RelationType = "EXFILTRATE_TO" // malware -> IP/domain/URL
	RelHasHash       RelationType = "HAS_HASH"      // file/malware -> hash
	RelHostedAt      RelationType = "HOSTED_AT"     // file/url -> domain/IP
	RelResolvesTo    RelationType = "RESOLVE_TO"    // domain -> IP
	RelVariantOf     RelationType = "VARIANT_OF"    // malware -> malware/family
	RelLocatedAt     RelationType = "LOCATED_AT"    // file name -> file path
	RelSimilarTo     RelationType = "SIMILAR_TO"    // knowledge-fusion provenance edge
)

// Entity is one typed node candidate: a name plus key-value attributes.
// Name is the canonical description text; the storage layer merges entities
// whose (Type, Name) are exactly equal, per Section 2.5 of the paper.
type Entity struct {
	Type  EntityType        `json:"type"`
	Name  string            `json:"name"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Key returns the exact-merge identity of the entity used by the storage
// stage: the node type plus the description text, case-preserved.
func (e Entity) Key() string { return string(e.Type) + "\x00" + e.Name }

// Validate reports whether the entity is structurally sound.
func (e Entity) Validate() error {
	if !KnownEntityType(e.Type) {
		return fmt.Errorf("ontology: unknown entity type %q", e.Type)
	}
	if strings.TrimSpace(e.Name) == "" {
		return fmt.Errorf("ontology: entity of type %s has empty name", e.Type)
	}
	return nil
}

// Relation is one typed edge candidate between two entities.
type Relation struct {
	Src   Entity            `json:"src"`
	Type  RelationType      `json:"type"`
	Dst   Entity            `json:"dst"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Validate checks both endpoints and the schema admissibility of the triple.
func (r Relation) Validate() error {
	if err := r.Src.Validate(); err != nil {
		return fmt.Errorf("ontology: relation source: %w", err)
	}
	if err := r.Dst.Validate(); err != nil {
		return fmt.Errorf("ontology: relation target: %w", err)
	}
	if !KnownRelationType(r.Type) {
		return fmt.Errorf("ontology: unknown relation type %q", r.Type)
	}
	if !Admissible(r.Src.Type, r.Type, r.Dst.Type) {
		return fmt.Errorf("ontology: triple <%s, %s, %s> violates schema",
			r.Src.Type, r.Type, r.Dst.Type)
	}
	return nil
}

// entityTypes enumerates every known entity type.
var entityTypes = []EntityType{
	TypeMalwareReport, TypeVulnerabilityReport, TypeAttackReport,
	TypeCTIVendor,
	TypeMalware, TypeMalwareFamily, TypeMalwarePlatform,
	TypeVulnerability, TypeAttack, TypeThreatActor,
	TypeTechnique, TypeTool, TypeSoftware,
	TypeFileName, TypeFilePath, TypeIP, TypeURL, TypeEmail,
	TypeDomain, TypeRegistry, TypeHash,
}

// relationTypes enumerates every known relation type.
var relationTypes = []RelationType{
	RelReportedBy, RelDescribes, RelMentions, RelDrops, RelUses,
	RelTargets, RelExploits, RelCommunicates, RelBelongsTo, RelRunsOn,
	RelAffects, RelIndicates, RelModifies, RelConnectsTo, RelDownloads,
	RelSends, RelCreates, RelDeletes, RelEncrypts, RelInjects,
	RelAttributedTo, RelAliasOf, RelRelatedTo, RelImplements, RelMitigates,
	RelPhishes, RelPersistsVia, RelSpreadsVia, RelExfiltratesTo, RelHasHash,
	RelHostedAt, RelResolvesTo, RelVariantOf, RelLocatedAt, RelSimilarTo,
}

var entityTypeSet = func() map[EntityType]bool {
	m := make(map[EntityType]bool, len(entityTypes))
	for _, t := range entityTypes {
		m[t] = true
	}
	return m
}()

var relationTypeSet = func() map[RelationType]bool {
	m := make(map[RelationType]bool, len(relationTypes))
	for _, t := range relationTypes {
		m[t] = true
	}
	return m
}()

// EntityTypes returns all entity types in a stable, sorted order.
func EntityTypes() []EntityType {
	out := make([]EntityType, len(entityTypes))
	copy(out, entityTypes)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RelationTypes returns all relation types in a stable, sorted order.
func RelationTypes() []RelationType {
	out := make([]RelationType, len(relationTypes))
	copy(out, relationTypes)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KnownEntityType reports whether t is part of the ontology.
func KnownEntityType(t EntityType) bool { return entityTypeSet[t] }

// KnownRelationType reports whether t is part of the ontology.
func KnownRelationType(t RelationType) bool { return relationTypeSet[t] }

// IsReportType reports whether t is one of the three report entity types.
func IsReportType(t EntityType) bool {
	return t == TypeMalwareReport || t == TypeVulnerabilityReport || t == TypeAttackReport
}

// IsIOCType reports whether t is a low-level indicator-of-compromise type.
func IsIOCType(t EntityType) bool {
	switch t {
	case TypeFileName, TypeFilePath, TypeIP, TypeURL, TypeEmail,
		TypeDomain, TypeRegistry, TypeHash:
		return true
	}
	return false
}

// IsThreatConcept reports whether t is a high-level threat concept
// (everything that is neither a report, a vendor, nor an IOC).
func IsThreatConcept(t EntityType) bool {
	return KnownEntityType(t) && !IsReportType(t) && !IsIOCType(t) && t != TypeCTIVendor
}

// typeClass groups entity types for compact schema rules.
type typeClass int

const (
	classAny typeClass = iota
	classReport
	classThreat   // high-level threat concepts
	classIOC      // low-level indicators
	classNetIOC   // IP, URL, domain
	classFileIOC  // file name, file path
	classActorish // things that can "act": malware, actor, attack, tool
)

func inClass(t EntityType, c typeClass) bool {
	switch c {
	case classAny:
		return KnownEntityType(t)
	case classReport:
		return IsReportType(t)
	case classThreat:
		return IsThreatConcept(t)
	case classIOC:
		return IsIOCType(t)
	case classNetIOC:
		return t == TypeIP || t == TypeURL || t == TypeDomain
	case classFileIOC:
		return t == TypeFileName || t == TypeFilePath
	case classActorish:
		return t == TypeMalware || t == TypeThreatActor || t == TypeAttack ||
			t == TypeTool || t == TypeMalwareFamily
	}
	return false
}

// schemaRule admits (src, rel, dst) triples where src is in Src class/type
// and dst is in Dst class/type. Exact types take priority over classes.
type schemaRule struct {
	srcClass typeClass
	srcTypes []EntityType // if non-empty, overrides srcClass
	dstClass typeClass
	dstTypes []EntityType
}

func (r schemaRule) matchSrc(t EntityType) bool {
	if len(r.srcTypes) > 0 {
		for _, s := range r.srcTypes {
			if s == t {
				return true
			}
		}
		return false
	}
	return inClass(t, r.srcClass)
}

func (r schemaRule) matchDst(t EntityType) bool {
	if len(r.dstTypes) > 0 {
		for _, d := range r.dstTypes {
			if d == t {
				return true
			}
		}
		return false
	}
	return inClass(t, r.dstClass)
}

// schema maps each relation type to its admissibility rules.
var schema = map[RelationType][]schemaRule{
	RelReportedBy: {{srcClass: classReport, dstTypes: []EntityType{TypeCTIVendor}}},
	RelDescribes:  {{srcClass: classReport, dstClass: classThreat}},
	RelMentions:   {{srcClass: classReport, dstClass: classAny}},
	RelDrops: {{
		srcTypes: []EntityType{TypeMalware, TypeThreatActor, TypeAttack, TypeTool, TypeMalwareFamily},
		dstTypes: []EntityType{TypeFileName, TypeFilePath, TypeHash, TypeTool},
	}},
	RelUses: {{
		srcClass: classActorish,
		dstTypes: []EntityType{TypeTool, TypeTechnique, TypeMalware, TypeMalwareFamily, TypeSoftware, TypeVulnerability},
	}},
	RelTargets: {{
		srcClass: classActorish,
		dstTypes: []EntityType{TypeSoftware, TypeMalwarePlatform, TypeDomain, TypeIP, TypeURL},
	}},
	RelExploits: {{
		srcClass: classActorish,
		dstTypes: []EntityType{TypeVulnerability, TypeSoftware},
	}},
	RelCommunicates: {{srcClass: classActorish, dstClass: classNetIOC}},
	RelBelongsTo: {{
		srcTypes: []EntityType{TypeMalware},
		dstTypes: []EntityType{TypeMalwareFamily},
	}},
	RelRunsOn: {{
		srcTypes: []EntityType{TypeMalware, TypeMalwareFamily, TypeSoftware, TypeTool},
		dstTypes: []EntityType{TypeMalwarePlatform},
	}},
	RelAffects: {{
		srcTypes: []EntityType{TypeVulnerability},
		dstTypes: []EntityType{TypeSoftware, TypeMalwarePlatform},
	}},
	RelIndicates: {{srcClass: classIOC, dstClass: classThreat}},
	RelModifies: {{
		srcClass: classActorish,
		dstTypes: []EntityType{TypeRegistry, TypeFileName, TypeFilePath, TypeSoftware},
	}},
	RelConnectsTo: {{srcClass: classActorish, dstClass: classNetIOC}},
	RelDownloads: {{
		srcClass: classActorish,
		dstTypes: []EntityType{TypeURL, TypeFileName, TypeFilePath, TypeTool, TypeMalware},
	}},
	RelSends: {{
		srcClass: classActorish,
		dstTypes: []EntityType{TypeEmail, TypeIP, TypeURL, TypeDomain},
	}},
	RelCreates: {{
		srcClass: classActorish,
		dstTypes: []EntityType{TypeFileName, TypeFilePath, TypeRegistry},
	}},
	RelDeletes: {{
		srcClass: classActorish,
		dstTypes: []EntityType{TypeFileName, TypeFilePath, TypeRegistry},
	}},
	RelEncrypts: {{
		srcClass: classActorish,
		dstTypes: []EntityType{TypeFileName, TypeFilePath},
	}},
	RelInjects: {{
		srcClass: classActorish,
		dstTypes: []EntityType{TypeSoftware, TypeTool, TypeFileName},
	}},
	RelAttributedTo: {{
		srcTypes: []EntityType{TypeMalware, TypeMalwareFamily, TypeAttack, TypeTool},
		dstTypes: []EntityType{TypeThreatActor},
	}},
	RelAliasOf:   {{srcClass: classAny, dstClass: classAny}},
	RelRelatedTo: {{srcClass: classAny, dstClass: classAny}},
	RelImplements: {{
		srcTypes: []EntityType{TypeTool, TypeMalware, TypeSoftware},
		dstTypes: []EntityType{TypeTechnique},
	}},
	RelMitigates: {{
		srcTypes: []EntityType{TypeSoftware, TypeTool},
		dstTypes: []EntityType{TypeVulnerability, TypeTechnique, TypeMalware},
	}},
	RelPhishes: {{
		srcClass: classActorish,
		dstTypes: []EntityType{TypeEmail, TypeURL, TypeDomain},
	}},
	RelPersistsVia: {{
		srcClass: classActorish,
		dstTypes: []EntityType{TypeRegistry, TypeTechnique, TypeFilePath},
	}},
	RelSpreadsVia: {{
		srcClass: classActorish,
		dstTypes: []EntityType{TypeTechnique, TypeEmail, TypeURL, TypeDomain, TypeSoftware},
	}},
	RelExfiltratesTo: {{srcClass: classActorish, dstClass: classNetIOC}},
	RelHasHash: {{
		srcTypes: []EntityType{TypeFileName, TypeFilePath, TypeMalware, TypeTool},
		dstTypes: []EntityType{TypeHash},
	}},
	RelHostedAt: {{
		srcTypes: []EntityType{TypeFileName, TypeURL, TypeTool, TypeMalware},
		dstTypes: []EntityType{TypeDomain, TypeIP, TypeURL},
	}},
	RelResolvesTo: {{
		srcTypes: []EntityType{TypeDomain, TypeURL},
		dstTypes: []EntityType{TypeIP},
	}},
	RelVariantOf: {{
		srcTypes: []EntityType{TypeMalware},
		dstTypes: []EntityType{TypeMalware, TypeMalwareFamily},
	}},
	RelLocatedAt: {{
		srcTypes: []EntityType{TypeFileName},
		dstTypes: []EntityType{TypeFilePath},
	}},
	RelSimilarTo: {{srcClass: classAny, dstClass: classAny}},
}

// Admissible reports whether the ontology schema admits an edge of type rel
// from an entity of type src to an entity of type dst.
func Admissible(src EntityType, rel RelationType, dst EntityType) bool {
	rules, ok := schema[rel]
	if !ok {
		return false
	}
	for _, r := range rules {
		if r.matchSrc(src) && r.matchDst(dst) {
			return true
		}
	}
	return false
}

// AdmissibleRelations returns every relation type the schema admits between
// src and dst, in sorted order. Useful for relation-extraction verb mapping.
func AdmissibleRelations(src, dst EntityType) []RelationType {
	var out []RelationType
	for rel := range schema {
		if Admissible(src, rel, dst) {
			out = append(out, rel)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReportTypeFor maps a report kind label ("malware", "vulnerability",
// "attack") to the corresponding report entity type. Unknown kinds map to
// TypeAttackReport, the broadest category.
func ReportTypeFor(kind string) EntityType {
	switch strings.ToLower(strings.TrimSpace(kind)) {
	case "malware":
		return TypeMalwareReport
	case "vulnerability", "vuln":
		return TypeVulnerabilityReport
	default:
		return TypeAttackReport
	}
}

// VerbRelation maps a lemmatized relation verb extracted from text to an
// ontology relation type. It returns RelRelatedTo for verbs outside the
// curated mapping so that no extracted relation is silently dropped.
func VerbRelation(verbLemma string) RelationType {
	if r, ok := verbMap[strings.ToLower(verbLemma)]; ok {
		return r
	}
	return RelRelatedTo
}

var verbMap = map[string]RelationType{
	"drop":        RelDrops,
	"use":         RelUses,
	"leverage":    RelUses,
	"employ":      RelUses,
	"utilize":     RelUses,
	"deploy":      RelUses,
	"target":      RelTargets,
	"attack":      RelTargets,
	"compromise":  RelTargets,
	"infect":      RelTargets,
	"exploit":     RelExploits,
	"abuse":       RelExploits,
	"communicate": RelCommunicates,
	"beacon":      RelCommunicates,
	"contact":     RelConnectsTo,
	"connect":     RelConnectsTo,
	"belong":      RelBelongsTo,
	"run":         RelRunsOn,
	"affect":      RelAffects,
	"indicate":    RelIndicates,
	"modify":      RelModifies,
	"alter":       RelModifies,
	"download":    RelDownloads,
	"fetch":       RelDownloads,
	"retrieve":    RelDownloads,
	"send":        RelSends,
	"transmit":    RelSends,
	"create":      RelCreates,
	"write":       RelCreates,
	"install":     RelCreates,
	"delete":      RelDeletes,
	"remove":      RelDeletes,
	"encrypt":     RelEncrypts,
	"inject":      RelInjects,
	"attribute":   RelAttributedTo,
	"implement":   RelImplements,
	"mitigate":    RelMitigates,
	"patch":       RelMitigates,
	"phish":       RelPhishes,
	"persist":     RelPersistsVia,
	"spread":      RelSpreadsVia,
	"propagate":   RelSpreadsVia,
	"exfiltrate":  RelExfiltratesTo,
	"upload":      RelExfiltratesTo,
	"steal":       RelExfiltratesTo,
	"host":        RelHostedAt,
	"resolve":     RelResolvesTo,
}

// RelationVerbs returns the curated verb lemmas that map to a specific
// (non-fallback) relation type, sorted.
func RelationVerbs() []string {
	out := make([]string, 0, len(verbMap))
	for v := range verbMap {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
